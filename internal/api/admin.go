package api

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"

	"github.com/ddnn/ddnn-go"
)

// ModelAdmin is the model-lifecycle surface of the engine the admin
// endpoints drive. *ddnn.Engine satisfies it.
type ModelAdmin interface {
	RegisterModelBytes(data []byte) (uint64, error)
	RolloutModel(ctx context.Context, version uint64) error
	ModelVersion() uint64
	ModelVersions() []uint64
	RolloutState() string
}

// DefaultMaxModelBytes caps an uploaded model artifact. Model artifacts
// are far larger than classify bodies, so they get their own ceiling
// instead of MaxBodyBytes.
const DefaultMaxModelBytes = 64 << 20

// modelsResponse answers GET /v1/admin/models.
type modelsResponse struct {
	Versions      []uint64 `json:"versions"`
	ActiveVersion uint64   `json:"active_version"`
	RolloutState  string   `json:"rollout_state"`
}

// rolloutRequest is the JSON body of POST /v1/admin/rollout.
type rolloutRequest struct {
	Version uint64 `json:"version"`
}

// requireAdmin wraps an admin handler with authentication against the
// admin token class. Admin credentials are disjoint from serving
// credentials: a serving token never grants lifecycle control, and
// admin requests skip the per-client rate limiter (an operator pushing
// a fix must not queue behind classify traffic).
func (s *Server) requireAdmin(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		header := r.Header.Get("Authorization")
		token, ok := strings.CutPrefix(header, "Bearer ")
		if !ok || token == "" {
			w.Header().Set("WWW-Authenticate", `Bearer realm="ddnn-admin"`)
			writeError(w, http.StatusUnauthorized, "missing or malformed Authorization header")
			return
		}
		if _, ok := s.cfg.AdminAuth.Identify(token); !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="ddnn-admin", error="invalid_token"`)
			writeError(w, http.StatusUnauthorized, "unknown admin token")
			return
		}
		next(w, r)
	}
}

// handleAdminModels answers GET /v1/admin/models with the registry
// inventory and the rollout state.
func (s *Server) handleAdminModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, modelsResponse{
		Versions:      s.cfg.ModelAdmin.ModelVersions(),
		ActiveVersion: s.cfg.ModelAdmin.ModelVersion(),
		RolloutState:  s.cfg.ModelAdmin.RolloutState(),
	})
}

// handleAdminRegister answers POST /v1/admin/models: the octet-stream
// body is a versioned model artifact (ddnn.SaveModelVersion), decoded,
// checksum-verified and registered under its stamped version. 201 with
// the version on success; 400 for corrupt or unsupported artifacts, 409
// for a version collision, 422 for an architecture mismatch.
func (s *Server) handleAdminRegister(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	version, err := s.cfg.ModelAdmin.RegisterModelBytes(data)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ddnn.ErrDuplicateModelVersion):
			status = http.StatusConflict
		case errors.Is(err, ddnn.ErrModelConfigMismatch):
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, err.Error())
		return
	}
	s.logger.Info("model registered", "version", version, "bytes", len(data))
	writeJSON(w, http.StatusCreated, map[string]uint64{"version": version})
}

// handleAdminRollout answers POST /v1/admin/rollout: a zero-downtime
// rolling reload onto {"version": N}. 200 when the fleet converged on
// the new version; 404 for an unregistered version, 409 when another
// rollout is in flight, 422 when a canary failed and the fleet rolled
// back (the response carries the typed failure).
func (s *Server) handleAdminRollout(w http.ResponseWriter, r *http.Request) {
	var req rolloutRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBodyError(w, err)
		return
	}
	if req.Version == 0 {
		writeError(w, http.StatusBadRequest, "missing version")
		return
	}
	err := s.cfg.ModelAdmin.RolloutModel(r.Context(), req.Version)
	if err != nil {
		s.metrics.Rollouts.Inc("failed")
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ddnn.ErrModelVersionUnknown):
			status = http.StatusNotFound
		case errors.Is(err, ddnn.ErrRolloutInProgress):
			status = http.StatusConflict
		case errors.Is(err, ddnn.ErrRolloutFailed):
			status = http.StatusUnprocessableEntity
		}
		s.logger.Warn("model rollout failed", "version", req.Version, "err", err)
		writeError(w, status, err.Error())
		return
	}
	s.metrics.Rollouts.Inc("completed")
	s.logger.Info("model rollout completed", "version", req.Version)
	writeJSON(w, http.StatusOK, map[string]any{
		"active_version": s.cfg.ModelAdmin.ModelVersion(),
		"rollout_state":  s.cfg.ModelAdmin.RolloutState(),
	})
}

// mountAdmin wires the admin plane into the mux; called only when both
// an admin authenticator and a ModelAdmin engine surface are configured.
func (s *Server) mountAdmin(mux *http.ServeMux) {
	limit := func(next http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxModelBytes)
			next(w, r)
		}
	}
	mux.HandleFunc("GET /v1/admin/models", s.requireAdmin(s.handleAdminModels))
	mux.HandleFunc("POST /v1/admin/models", s.requireAdmin(limit(s.handleAdminRegister)))
	mux.HandleFunc("POST /v1/admin/rollout", s.requireAdmin(limit(s.handleAdminRollout)))
}

// adminEnabled reports whether the admin plane is mounted.
func (s *Server) adminEnabled() bool {
	return s.cfg.AdminAuth != nil && s.cfg.ModelAdmin != nil
}

// rolloutStateCode maps the engine's rollout state onto the
// ddnn_rollout_state gauge values.
func rolloutStateCode(state string) float64 {
	switch state {
	case ddnn.RolloutRolling:
		return 1
	case ddnn.RolloutRolledBack:
		return 2
	default:
		return 0
	}
}

var _ ModelAdmin = (*ddnn.Engine)(nil)
