package api

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/ddnn/ddnn-go"
)

// The e2e tests run the HTTP front door over a real in-process cluster
// (in-memory transport, trained model) and check that answers served
// over HTTP are bit-identical to the engine's own.
var (
	e2eOnce  sync.Once
	e2eModel *ddnn.Model
	e2eTest  *ddnn.Dataset
)

func e2eFixture(t *testing.T) (*ddnn.Model, *ddnn.Dataset) {
	t.Helper()
	e2eOnce.Do(func() {
		dcfg := ddnn.DefaultDatasetConfig()
		dcfg.Train, dcfg.Test = 120, 40
		train, test := ddnn.GenerateDataset(dcfg)
		cfg := ddnn.DefaultConfig()
		cfg.CloudFilters = 8
		m := ddnn.MustNewModel(cfg)
		tc := ddnn.DefaultTrainConfig()
		tc.Epochs = 3
		if _, err := m.Train(train, tc); err != nil {
			panic(err)
		}
		e2eModel, e2eTest = m, test
	})
	return e2eModel, e2eTest
}

func newE2EServer(t *testing.T, cfg Config) (*ddnn.Engine, *httptest.Server) {
	t.Helper()
	model, test := e2eFixture(t)
	eng, err := ddnn.NewEngine(model, test,
		ddnn.WithMaxConcurrency(8),
		ddnn.WithCloudReplicas(2), // a replicated upper tier, like production
		ddnn.WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	cfg.Engine = eng
	cfg.Devices = model.Cfg.Devices
	if cfg.AdminAuth != nil {
		cfg.ModelAdmin = eng
	}
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return eng, ts
}

// TestE2EClassifyMatchesEngine drives concurrent HTTP clients through a
// real cluster and checks every response against the engine's direct
// answer for the same sample: same class, same exit. Run under -race
// (CI does) it also proves the full HTTP→engine path is race-free.
func TestE2EClassifyMatchesEngine(t *testing.T) {
	eng, ts := newE2EServer(t, Config{})
	ctx := context.Background()

	const samples = 10
	want := make([]ddnn.Result, samples)
	for id := 0; id < samples; id++ {
		res, err := eng.ClassifyShed(ctx, uint64(id), ddnn.ShedNone)
		if err != nil {
			t.Fatalf("baseline sample %d: %v", id, err)
		}
		want[id] = res
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*samples)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := 0; id < samples; id++ {
				resp, err := ts.Client().Post(ts.URL+"/v1/classify", "application/json",
					strings.NewReader(fmt.Sprintf(`{"sample_id": %d}`, id)))
				if err != nil {
					errs <- err
					return
				}
				var cr classifyResponse
				derr := json.NewDecoder(resp.Body).Decode(&cr)
				resp.Body.Close()
				if derr != nil {
					errs <- derr
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("sample %d: status %d", id, resp.StatusCode)
					return
				}
				if cr.Class != want[id].Class || cr.Exit != want[id].Exit.String() {
					errs <- fmt.Errorf("sample %d: got class %d exit %s, engine says class %d exit %v",
						id, cr.Class, cr.Exit, want[id].Class, want[id].Exit)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestE2EUploadMatchesDatasetSample posts a sample's device views as a
// raw tensor body and checks the answer equals classifying the same
// sample by ID — the upload path stages identical inputs.
func TestE2EUploadMatchesDatasetSample(t *testing.T) {
	eng, ts := newE2EServer(t, Config{})
	model, test := e2eFixture(t)
	ctx := context.Background()

	const id = 3
	want, err := eng.ClassifyShed(ctx, id, ddnn.ShedNone)
	if err != nil {
		t.Fatal(err)
	}

	views := test.AllDeviceBatches(model.Cfg.Devices, []int{id})
	viewVals := ddnn.ImageC * ddnn.ImageH * ddnn.ImageW
	raw := make([]byte, 0, len(views)*viewVals*4)
	var buf [4]byte
	for _, v := range views {
		for _, f := range v.Data() {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(f))
			raw = append(raw, buf[:]...)
		}
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/classify", "application/octet-stream", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	var cr classifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Class != want.Class || cr.Exit != want.Exit.String() {
		t.Errorf("upload answered class %d exit %s, sample %d classifies as class %d exit %v",
			cr.Class, cr.Exit, id, want.Class, want.Exit)
	}
}

// TestE2EBatchMatchesEngine checks the batch endpoint against per-sample
// engine answers.
func TestE2EBatchMatchesEngine(t *testing.T) {
	eng, ts := newE2EServer(t, Config{})
	ctx := context.Background()

	ids := []uint64{0, 1, 2, 3, 4}
	want := make([]ddnn.Result, len(ids))
	for i, id := range ids {
		res, err := eng.ClassifyShed(ctx, id, ddnn.ShedNone)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	body, _ := json.Marshal(map[string]any{"sample_ids": ids})
	resp, err := ts.Client().Post(ts.URL+"/v1/classify/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(ids) {
		t.Fatalf("batch answered %d results, want %d", len(br.Results), len(ids))
	}
	for i, cr := range br.Results {
		if cr.SampleID != ids[i] || cr.Class != want[i].Class || cr.Exit != want[i].Exit.String() {
			t.Errorf("batch[%d] = {id %d class %d exit %s}, engine says {id %d class %d exit %v}",
				i, cr.SampleID, cr.Class, cr.Exit, ids[i], want[i].Class, want[i].Exit)
		}
	}
}

// TestE2EShedLevelsStillAnswer forces each shed level through the engine
// and checks every level yields a valid classification — degraded, never
// failed.
func TestE2EShedLevelsStillAnswer(t *testing.T) {
	// MaxInFlight 1 puts every request in the top (device-only) band, so
	// exercise levels directly against the engine instead.
	eng, _ := newE2EServer(t, Config{})
	ctx := context.Background()
	for _, level := range []ddnn.ShedLevel{ddnn.ShedNone, ddnn.ShedPreferEdge, ddnn.ShedLocalOnly} {
		res, err := eng.ClassifyShed(ctx, 0, level)
		if err != nil {
			t.Fatalf("level %v: %v", level, err)
		}
		if res.Class < 0 {
			t.Errorf("level %v: class %d", level, res.Class)
		}
		if level == ddnn.ShedLocalOnly && res.Exit != ddnn.ExitLocal {
			t.Errorf("device-only shed exited at %v", res.Exit)
		}
	}
}
