package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ddnn/ddnn-go"
)

// TestSlowBodyDoesNotHoldAdmissionSlot pins the body-read-before-admit
// contract: a client trickling a raw tensor upload must not occupy a
// MaxInFlight slot while its transfer is in progress, so a fast request
// arriving mid-trickle is admitted normally even at MaxInFlight 1.
func TestSlowBodyDoesNotHoldAdmissionSlot(t *testing.T) {
	fake := newFakeEngine()
	srv, ts := newTestServer(t, Config{Engine: fake, MaxInFlight: 1})

	viewVals := ddnn.ImageC * ddnn.ImageH * ddnn.ImageW
	payload := make([]byte, 2*viewVals*4) // Devices defaults to 2 in newTestServer
	pr, pw := io.Pipe()

	done := make(chan int, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify", pr)
		if err != nil {
			done <- 0
			return
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.ContentLength = int64(len(payload))
		resp, err := ts.Client().Do(req)
		if err != nil {
			done <- 0
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()

	// io.Pipe writes block until the reader consumes them, so returning
	// from this Write proves the handler is inside its body read.
	if _, err := pw.Write(payload[:len(payload)/2]); err != nil {
		t.Fatal(err)
	}

	// The slow upload is mid-transfer; a fast request must still be
	// admitted (the old code held the only slot and answered 503 here).
	resp := doClassify(t, ts, "", classifyBody(1), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast request during slow upload = %d, want 200", resp.StatusCode)
	}

	if _, err := pw.Write(payload[len(payload)/2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("slow upload finished with %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow upload never completed")
	}
	if got := srv.Metrics().InFlight.Value(); got != 0 {
		t.Errorf("inflight after drain = %d, want 0", got)
	}
}

// TestMalformedBodyIsNotShedWork: a request rejected for a bad body is
// never admitted, so it must not increment the shed counters or carry a
// shed-level header.
func TestMalformedBodyIsNotShedWork(t *testing.T) {
	srv, ts := newTestServer(t, Config{Engine: newFakeEngine()})
	resp := doClassify(t, ts, "", strings.NewReader("nonsense{"), "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(shedLevelHeader); got != "" {
		t.Errorf("rejected body carries %s=%q", shedLevelHeader, got)
	}
	m := srv.Metrics()
	for _, level := range []string{"normal", "prefer-edge", "local-only"} {
		if n := m.ShedRequests.Value(level); n != 0 {
			t.Errorf("ShedRequests[%s] = %d after a malformed body, want 0", level, n)
		}
	}
	if got := m.InFlight.Value(); got != 0 {
		t.Errorf("inflight = %d, want 0", got)
	}
}

// TestPanicIsLoggedAndCounted pins panic observability: a panicking
// request still produces an access-log line and increments
// ddnn_http_responses_total{code="500"}.
func TestPanicIsLoggedAndCounted(t *testing.T) {
	fake := newFakeEngine()
	fake.panics = true
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&logMu, &logBuf}, nil))
	srv, ts := newTestServer(t, Config{Engine: fake, Logger: logger})

	resp := doClassify(t, ts, "", classifyBody(1), "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if got := srv.Metrics().Responses.Value("500"); got != 1 {
		t.Errorf(`Responses["500"] = %d, want 1`, got)
	}
	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logged, "handler panic") {
		t.Error("panic line missing from the log")
	}
	if !strings.Contains(logged, "http request") || !strings.Contains(logged, "status=500") {
		t.Errorf("access-log line for the panicking request missing; log:\n%s", logged)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// headerCounter counts WriteHeader calls, standing in for net/http's
// "superfluous response.WriteHeader" complaint.
type headerCounter struct {
	http.ResponseWriter
	calls int
}

func (h *headerCounter) WriteHeader(status int) {
	h.calls++
	h.ResponseWriter.WriteHeader(status)
}

// TestRecoverAfterWriteSkips500: when a handler panics after starting
// its response, the recovery middleware must not write a second status
// line.
func TestRecoverAfterWriteSkips500(t *testing.T) {
	s := &Server{metrics: NewMetrics(), logger: quietLogger()}
	h := s.withRecover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"partial": "yes"})
		panic("after write")
	}))
	rec := httptest.NewRecorder()
	hc := &headerCounter{ResponseWriter: rec}
	h.ServeHTTP(hc, httptest.NewRequest(http.MethodGet, "/", nil))
	if hc.calls != 1 {
		t.Fatalf("WriteHeader called %d times, want 1", hc.calls)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want the handler's 200", rec.Code)
	}
}

// TestParseTokensLongLines: lines beyond bufio.Scanner's 64KB default
// must parse, and a line over the 1MB cap must fail with the line
// number, not an opaque scanner error.
func TestParseTokensLongLines(t *testing.T) {
	long := strings.Repeat("x", 100*1024)
	a, err := ParseTokens(strings.NewReader("big:" + long + "\n"))
	if err != nil {
		t.Fatalf("100KB token rejected: %v", err)
	}
	if c, ok := a.Identify(long); !ok || c != "big" {
		t.Errorf("Identify(long token) = %q, %v", c, ok)
	}

	huge := "ok:fine\nbad:" + strings.Repeat("y", maxTokenLine+1) + "\n"
	_, err = ParseTokens(strings.NewReader(huge))
	if err == nil {
		t.Fatal("over-long line accepted")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("err = %v, want bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want the failing line number", err)
	}
}

// TestExitLatencyObserved: the ExitObserved instrumentation hook must
// feed the per-exit latency histogram, not drop its latency argument.
func TestExitLatencyObserved(t *testing.T) {
	m := NewMetrics()
	in := m.Instrumentation()
	in.ExitObserved(ddnn.ExitLocal, 5*time.Millisecond)
	in.ExitObserved(ddnn.ExitCloud, 20*time.Millisecond)
	if got := m.ExitLatency.Count("local"); got != 1 {
		t.Errorf(`ExitLatency.Count("local") = %d, want 1`, got)
	}
	if got := m.ExitLatency.Count("cloud"); got != 1 {
		t.Errorf(`ExitLatency.Count("cloud") = %d, want 1`, got)
	}
	var buf bytes.Buffer
	if err := m.reg.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ddnn_exit_latency_seconds") {
		t.Error("ddnn_exit_latency_seconds missing from the exposition")
	}
}

// TestPresentFieldSerialized: classify responses expose the observed
// device-presence mask.
func TestPresentFieldSerialized(t *testing.T) {
	res := ddnn.Result{SampleID: 1, Class: 2, Exit: ddnn.ExitLocal, Probs: []float32{0, 1}, Present: []bool{true, false}}
	raw, err := json.Marshal(toResponse(res, ddnn.ShedNone))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	p, ok := m["present"].([]any)
	if !ok || len(p) != 2 || p[0] != true || p[1] != false {
		t.Errorf("present = %v", m["present"])
	}
}
