package promtext

import (
	"strings"
	"sync"
	"testing"
)

// render collects the registry's exposition output as a string.
func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	return sb.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := NewCounter(r, "ddnn_requests_total", "Total requests.")
	c.Inc()
	c.Add(2)
	out := render(t, r)
	for _, want := range []string{
		"# HELP ddnn_requests_total Total requests.\n",
		"# TYPE ddnn_requests_total counter\n",
		"ddnn_requests_total 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 {
		t.Errorf("Value() = %d, want 3", c.Value())
	}
}

func TestCounterVecSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	c := NewCounterVec(r, "ddnn_client_requests_total", "Per-client requests.", "client")
	c.Inc("zeta")
	c.Add("alpha", 5)
	c.Inc(`qu"ote`)
	out := render(t, r)
	alpha := strings.Index(out, `client="alpha"`)
	zeta := strings.Index(out, `client="zeta"`)
	if alpha == -1 || zeta == -1 || alpha > zeta {
		t.Errorf("label values not sorted:\n%s", out)
	}
	if !strings.Contains(out, `ddnn_client_requests_total{client="qu\"ote"} 1`) {
		t.Errorf("quote not escaped:\n%s", out)
	}
	if c.Value("alpha") != 5 || c.Value("missing") != 0 {
		t.Errorf("Value() = %d/%d, want 5/0", c.Value("alpha"), c.Value("missing"))
	}
}

func TestGaugeUpDown(t *testing.T) {
	r := NewRegistry()
	g := NewGauge(r, "ddnn_inflight", "In-flight requests.")
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("Value() = %d, want 1", g.Value())
	}
	g.Set(-7)
	out := render(t, r)
	if !strings.Contains(out, "# TYPE ddnn_inflight gauge\n") || !strings.Contains(out, "ddnn_inflight -7\n") {
		t.Errorf("unexpected gauge output:\n%s", out)
	}
}

func TestGaugeFuncSampledAtScrape(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	NewGaugeFunc(r, "ddnn_pool_healthy", "Healthy replicas.", func() float64 { return v })
	if out := render(t, r); !strings.Contains(out, "ddnn_pool_healthy 1.5\n") {
		t.Errorf("first scrape:\n%s", out)
	}
	v = 3
	if out := render(t, r); !strings.Contains(out, "ddnn_pool_healthy 3\n") {
		t.Errorf("second scrape:\n%s", out)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(r, "ddnn_latency_seconds", "Request latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		"# TYPE ddnn_latency_seconds histogram\n",
		`ddnn_latency_seconds_bucket{le="0.1"} 1` + "\n",
		`ddnn_latency_seconds_bucket{le="1"} 3` + "\n",
		`ddnn_latency_seconds_bucket{le="10"} 4` + "\n",
		`ddnn_latency_seconds_bucket{le="+Inf"} 5` + "\n",
		"ddnn_latency_seconds_sum 56.05\n",
		"ddnn_latency_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
}

func TestHistogramVecPerLabelSamples(t *testing.T) {
	r := NewRegistry()
	h := NewHistogramVec(r, "ddnn_stage_seconds", "Per-tier latency.", "tier", []float64{1})
	h.Observe("device", 0.5)
	h.Observe("device", 2)
	h.Observe("cloud", 0.25)
	out := render(t, r)
	for _, want := range []string{
		`ddnn_stage_seconds_bucket{tier="device",le="1"} 1` + "\n",
		`ddnn_stage_seconds_bucket{tier="device",le="+Inf"} 2` + "\n",
		`ddnn_stage_seconds_count{tier="device"} 2` + "\n",
		`ddnn_stage_seconds_bucket{tier="cloud",le="1"} 1` + "\n",
		`ddnn_stage_seconds_sum{tier="cloud"} 0.25` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count("device") != 2 || h.Count("gone") != 0 {
		t.Errorf("Count() = %d/%d, want 2/0", h.Count("device"), h.Count("gone"))
	}
}

func TestFamiliesSortedByName(t *testing.T) {
	r := NewRegistry()
	NewCounter(r, "zzz_total", "Last.")
	NewGauge(r, "aaa_current", "First.")
	out := render(t, r)
	if a, z := strings.Index(out, "aaa_current"), strings.Index(out, "zzz_total"); a == -1 || z == -1 || a > z {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	NewCounter(r, "dup_total", "One.")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	NewCounter(r, "dup_total", "Two.")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := NewCounter(r, "conc_total", "Concurrent counter.")
	cv := NewCounterVec(r, "conc_by_client_total", "Concurrent vec.", "client")
	h := NewHistogramVec(r, "conc_seconds", "Concurrent histogram.", "tier", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := string(rune('a' + i%3))
			for j := 0; j < 500; j++ {
				c.Inc()
				cv.Inc(client)
				h.Observe(client, float64(j)/1000)
				if j%100 == 0 {
					var sb strings.Builder
					_ = r.Render(&sb)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8*500 {
		t.Errorf("counter = %d, want %d", c.Value(), 8*500)
	}
	total := cv.Value("a") + cv.Value("b") + cv.Value("c")
	if total != 8*500 {
		t.Errorf("vec total = %d, want %d", total, 8*500)
	}
}
