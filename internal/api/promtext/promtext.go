// Package promtext is a minimal, dependency-free metrics registry that
// renders the Prometheus text exposition format (version 0.0.4). It
// implements exactly the instrument kinds the serving front door needs —
// counters, gauges, histograms, each optionally split by one label — so
// /metrics can be scraped by any Prometheus-compatible collector without
// pulling a client library into a stdlib-only module.
//
// All instruments are safe for concurrent use: counters and gauges are
// single atomics, histograms take a short mutex per observation, and
// labelled families guard their child maps with an RWMutex. Collection
// (Render) never blocks writers for longer than one instrument's
// snapshot.
package promtext

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is anything the registry can render.
type metric interface {
	// name returns the family name, for HELP/TYPE headers and ordering.
	name() string
	// write renders the family (HELP, TYPE, then every sample).
	write(w io.Writer) error
}

// Registry holds a set of metric families and renders them in the text
// exposition format. Register instruments once at startup; families
// render sorted by name so scrapes are deterministic.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// register adds a family, panicking on a duplicate name: instrument
// registration is startup-time wiring, and a silent overwrite would
// split one family's samples across two instruments.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.name()]; dup {
		panic(fmt.Sprintf("promtext: duplicate metric %q", m.name()))
	}
	r.metrics[m.name()] = m
}

// Render writes every registered family, sorted by name, in the
// Prometheus text exposition format 0.0.4.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	families := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		families = append(families, m)
	}
	r.mu.Unlock()
	sort.Slice(families, func(i, j int) bool { return families[i].name() < families[j].name() })
	for _, m := range families {
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}

// ContentType is the Content-Type header value for the rendered output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// writeHeader emits the HELP and TYPE lines for a family.
func writeHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
	return err
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects
// (shortest repr; +Inf/-Inf/NaN spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing value.
type Counter struct {
	fname string
	help  string
	v     atomic.Uint64
}

// NewCounter registers a counter family with a single unlabelled sample.
func NewCounter(r *Registry, name, help string) *Counter {
	c := &Counter{fname: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) name() string { return c.fname }

func (c *Counter) write(w io.Writer) error {
	if err := writeHeader(w, c.fname, c.help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.fname, c.v.Load())
	return err
}

// ---------------------------------------------------------------------------
// CounterVec

// CounterVec is a counter family split by one label. Children are
// created on first use and live for the registry's lifetime.
type CounterVec struct {
	fname string
	help  string
	label string

	mu       sync.RWMutex
	children map[string]*atomic.Uint64
}

// NewCounterVec registers a counter family keyed by one label.
func NewCounterVec(r *Registry, name, help, label string) *CounterVec {
	c := &CounterVec{fname: name, help: help, label: label, children: make(map[string]*atomic.Uint64)}
	r.register(c)
	return c
}

// child returns (creating if needed) the counter for a label value.
func (c *CounterVec) child(value string) *atomic.Uint64 {
	c.mu.RLock()
	v := c.children[value]
	c.mu.RUnlock()
	if v != nil {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v = c.children[value]; v == nil {
		v = new(atomic.Uint64)
		c.children[value] = v
	}
	return v
}

// Inc adds one to the label value's sample.
func (c *CounterVec) Inc(value string) { c.child(value).Add(1) }

// Add adds n to the label value's sample.
func (c *CounterVec) Add(value string, n uint64) { c.child(value).Add(n) }

// Value returns the label value's current count (0 if never touched).
func (c *CounterVec) Value(value string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if v := c.children[value]; v != nil {
		return v.Load()
	}
	return 0
}

func (c *CounterVec) name() string { return c.fname }

func (c *CounterVec) write(w io.Writer) error {
	if err := writeHeader(w, c.fname, c.help, "counter"); err != nil {
		return err
	}
	c.mu.RLock()
	values := make([]string, 0, len(c.children))
	for v := range c.children {
		values = append(values, v)
	}
	c.mu.RUnlock()
	sort.Strings(values)
	for _, v := range values {
		c.mu.RLock()
		n := c.children[v].Load()
		c.mu.RUnlock()
		if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", c.fname, c.label, escapeLabel(v), n); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a value that can go up and down.
type Gauge struct {
	fname string
	help  string
	v     atomic.Int64
}

// NewGauge registers a gauge family with a single unlabelled sample.
func NewGauge(r *Registry, name, help string) *Gauge {
	g := &Gauge{fname: name, help: help}
	r.register(g)
	return g
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) name() string { return g.fname }

func (g *Gauge) write(w io.Writer) error {
	if err := writeHeader(w, g.fname, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", g.fname, g.v.Load())
	return err
}

// ---------------------------------------------------------------------------
// GaugeFunc

// GaugeFunc is a gauge sampled at scrape time from a callback — for
// values something else already tracks (pool health, queue depths).
type GaugeFunc struct {
	fname string
	help  string
	fn    func() float64
}

// NewGaugeFunc registers a callback-backed gauge. fn is called once per
// scrape and must be safe for concurrent use.
func NewGaugeFunc(r *Registry, name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{fname: name, help: help, fn: fn}
	r.register(g)
	return g
}

func (g *GaugeFunc) name() string { return g.fname }

func (g *GaugeFunc) write(w io.Writer) error {
	if err := writeHeader(w, g.fname, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", g.fname, formatFloat(g.fn()))
	return err
}

// ---------------------------------------------------------------------------
// Histogram

// DefBuckets are latency-oriented default buckets (seconds), spanning
// 100µs to ~10s — the range between a device-only exit on loopback and a
// timed-out WAN escalation.
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// histogramData is one child's buckets, count and sum.
type histogramData struct {
	mu     sync.Mutex
	counts []uint64 // one per bucket bound; +Inf is implicit via total
	total  uint64
	sum    float64
	uppers []float64
}

func newHistogramData(uppers []float64) *histogramData {
	return &histogramData{counts: make([]uint64, len(uppers)), uppers: uppers}
}

// observe records one value.
func (h *histogramData) observe(v float64) {
	h.mu.Lock()
	for i, upper := range h.uppers {
		if v <= upper {
			h.counts[i]++
		}
	}
	h.total++
	h.sum += v
	h.mu.Unlock()
}

// snapshot copies the child under its lock.
func (h *histogramData) snapshot() (counts []uint64, total uint64, sum float64) {
	h.mu.Lock()
	counts = append([]uint64(nil), h.counts...)
	total, sum = h.total, h.sum
	h.mu.Unlock()
	return counts, total, sum
}

// writeSamples renders one child's bucket/sum/count lines. extraLabel is
// a pre-rendered `name="value",` fragment (empty for unlabelled).
func (h *histogramData) writeSamples(w io.Writer, fname, extraLabel string) error {
	counts, total, sum := h.snapshot()
	for i, upper := range h.uppers {
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", fname, extraLabel, formatFloat(upper), counts[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", fname, extraLabel, total); err != nil {
		return err
	}
	// _sum and _count carry the child's label set without the le label;
	// unlabelled children render bare names, not empty brace pairs.
	suffix := ""
	if extraLabel != "" {
		suffix = "{" + strings.TrimSuffix(extraLabel, ",") + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fname, suffix, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fname, suffix, total)
	return err
}

// Histogram observes a distribution into cumulative buckets.
type Histogram struct {
	fname string
	help  string
	data  *histogramData
}

// NewHistogram registers an unlabelled histogram. nil buckets means
// DefBuckets. Bucket bounds must be sorted ascending.
func NewHistogram(r *Registry, name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := &Histogram{fname: name, help: help, data: newHistogramData(buckets)}
	r.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.data.observe(v) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	_, total, _ := h.data.snapshot()
	return total
}

func (h *Histogram) name() string { return h.fname }

func (h *Histogram) write(w io.Writer) error {
	if err := writeHeader(w, h.fname, h.help, "histogram"); err != nil {
		return err
	}
	return h.data.writeSamples(w, h.fname, "")
}

// ---------------------------------------------------------------------------
// HistogramVec

// HistogramVec is a histogram family split by one label.
type HistogramVec struct {
	fname   string
	help    string
	label   string
	buckets []float64

	mu       sync.RWMutex
	children map[string]*histogramData
}

// NewHistogramVec registers a histogram family keyed by one label. nil
// buckets means DefBuckets.
func NewHistogramVec(r *Registry, name, help, label string, buckets []float64) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := &HistogramVec{fname: name, help: help, label: label, buckets: buckets, children: make(map[string]*histogramData)}
	r.register(h)
	return h
}

// Observe records one value under a label value.
func (h *HistogramVec) Observe(value string, v float64) {
	h.mu.RLock()
	d := h.children[value]
	h.mu.RUnlock()
	if d == nil {
		h.mu.Lock()
		if d = h.children[value]; d == nil {
			d = newHistogramData(h.buckets)
			h.children[value] = d
		}
		h.mu.Unlock()
	}
	d.observe(v)
}

// Count returns the label value's observation count (0 if never touched).
func (h *HistogramVec) Count(value string) uint64 {
	h.mu.RLock()
	d := h.children[value]
	h.mu.RUnlock()
	if d == nil {
		return 0
	}
	_, total, _ := d.snapshot()
	return total
}

func (h *HistogramVec) name() string { return h.fname }

func (h *HistogramVec) write(w io.Writer) error {
	if err := writeHeader(w, h.fname, h.help, "histogram"); err != nil {
		return err
	}
	h.mu.RLock()
	values := make([]string, 0, len(h.children))
	for v := range h.children {
		values = append(values, v)
	}
	h.mu.RUnlock()
	sort.Strings(values)
	for _, v := range values {
		h.mu.RLock()
		d := h.children[v]
		h.mu.RUnlock()
		extra := fmt.Sprintf("%s=\"%s\",", h.label, escapeLabel(v))
		if err := d.writeSamples(w, h.fname, extra); err != nil {
			return err
		}
	}
	return nil
}
