// Package api is the public HTTP front door of a DDNN serving engine:
// an authenticated, rate-limited, observable REST surface over the
// staged device→edge→cloud hierarchy.
//
// The handler chain composes, outermost first: request ID + structured
// access logging, panic recovery (inside the log so panics are logged
// and counted), bearer-token authentication with per-client
// identities, per-client token-bucket rate limiting, and an
// admission controller that bounds in-flight work. Under overload the
// admission controller sheds load gracefully — requests are answered by
// progressively cheaper exits of the hierarchy (normal → prefer-edge →
// device-only) before the server finally answers 503 at capacity — so
// sustained overload degrades answer quality, never availability.
//
// Endpoints:
//
//	POST /v1/classify        one sample (JSON sample_id or raw tensor body)
//	POST /v1/classify/batch  many samples in one call
//	GET  /healthz            process liveness
//	GET  /readyz             upstream replica-pool readiness
//	GET  /metrics            Prometheus text exposition
//	GET  /v1/admin/models    model registry inventory (admin token)
//	POST /v1/admin/models    register a versioned model artifact (admin token)
//	POST /v1/admin/rollout   zero-downtime rolling reload (admin token)
//
// /healthz, /readyz and /metrics bypass authentication and rate
// limiting: probes and scrapers must keep working exactly when the
// serving path is saturated. The /v1/admin endpoints are mounted only
// when Config.AdminAuth is set and authenticate against that separate
// admin token class.
package api

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"

	"github.com/ddnn/ddnn-go"
)

// Config assembles the front door.
type Config struct {
	// Engine is the serving engine behind the API; required.
	Engine Classifier
	// Devices is the number of device views an uploaded sample carries
	// (the model's device count); required for raw tensor bodies.
	Devices int
	// Auth identifies clients by bearer token. nil disables
	// authentication — every request runs as the "anonymous" client.
	Auth *Authenticator
	// AdminAuth identifies operators for the model-lifecycle admin
	// endpoints (POST /v1/admin/models, POST /v1/admin/rollout,
	// GET /v1/admin/models). The admin token class is disjoint from Auth:
	// a serving token never grants lifecycle control. nil leaves the
	// admin plane unmounted.
	AdminAuth *Authenticator
	// ModelAdmin is the lifecycle surface the admin endpoints drive
	// (*ddnn.Engine satisfies it); required when AdminAuth is set.
	ModelAdmin ModelAdmin
	// MaxModelBytes caps an uploaded model artifact on
	// POST /v1/admin/models; <= 0 means DefaultMaxModelBytes.
	MaxModelBytes int64
	// RatePerSec is each client's sustained request budget per second;
	// <= 0 disables rate limiting.
	RatePerSec float64
	// Burst is each client's token-bucket depth; <= 0 means a burst
	// equal to max(1, RatePerSec).
	Burst float64
	// MaxInFlight bounds concurrently admitted classify requests; the
	// admission controller sheds to cheaper exits as the bound nears and
	// answers 503 at it. <= 0 means DefaultMaxInFlight.
	MaxInFlight int
	// MaxBodyBytes caps request body size; <= 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxBatch caps sample_ids per batch request; <= 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// Logger receives access logs; nil means slog.Default().
	Logger *slog.Logger
}

// Defaults for the zero Config values.
const (
	DefaultMaxInFlight  = 64
	DefaultMaxBodyBytes = 4 << 20
	DefaultMaxBatch     = 256
)

// Classifier is the engine surface the handlers call. *ddnn.Engine
// satisfies it; tests substitute fakes.
//
// The front door resolves each request's tenant at admission: the
// authenticated client identity (the name on the bearer token) is the
// tenant, so a tenant configured on the engine via Engine.SetTenant
// under a client's name gives that client its own exit-threshold
// pipeline. Clients without a tenant config — and anonymous requests —
// run the engine's default pipeline.
type Classifier interface {
	ClassifyTenantShed(ctx context.Context, sampleID uint64, tenant string, level ddnn.ShedLevel) (ddnn.Result, error)
	ClassifyBatchTenantShed(ctx context.Context, sampleIDs []uint64, tenant string, level ddnn.ShedLevel) ([]ddnn.Result, error)
	ClassifyUpload(ctx context.Context, views []*ddnn.Tensor, level ddnn.ShedLevel) (ddnn.Result, error)
	UpstreamReplicas() (total, healthy int)
	Topology() ddnn.TopologyConfig
	SetInstrumentation(ddnn.Instrumentation)
}

// Server is the assembled front door; build one with NewServer and
// mount Handler on an http.Server.
type Server struct {
	cfg       Config
	metrics   *Metrics
	auth      *Authenticator
	limiter   *rateLimiter
	admission *admission
	logger    *slog.Logger
}

// NewServer validates the config, wires the metrics catalogue into the
// engine's instrumentation hooks and returns the assembled front door.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("api: Config.Engine is required")
	}
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("api: Config.Devices must be positive")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxModelBytes <= 0 {
		cfg.MaxModelBytes = DefaultMaxModelBytes
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.AdminAuth != nil && cfg.ModelAdmin == nil {
		return nil, fmt.Errorf("api: Config.ModelAdmin is required with AdminAuth")
	}
	m := NewMetrics()
	m.observePool(cfg.Engine)
	m.observeTopology(cfg.Engine)
	if cfg.ModelAdmin != nil {
		m.observeModel(cfg.ModelAdmin)
	}
	cfg.Engine.SetInstrumentation(m.Instrumentation())
	s := &Server{
		cfg:       cfg,
		metrics:   m,
		auth:      cfg.Auth,
		admission: newAdmission(cfg.MaxInFlight),
		logger:    cfg.Logger,
	}
	if cfg.RatePerSec > 0 {
		s.limiter = newRateLimiter(cfg.RatePerSec, cfg.Burst)
	}
	return s, nil
}

// Metrics exposes the server's metrics catalogue (for tests and smoke
// checks; the HTTP surface is /metrics).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler returns the complete front door: routed endpoints wrapped in
// the middleware chain. The access log wraps panic recovery so a
// panicking request still produces an access-log line and a response
// counter increment (the recovered 500 flows through the recorder).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", s.requireAuth(s.handleClassify))
	mux.HandleFunc("POST /v1/classify/batch", s.requireAuth(s.handleClassifyBatch))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.adminEnabled() {
		s.mountAdmin(mux)
	}
	var h http.Handler = mux
	h = s.withRecover(h)
	h = s.withAccessLog(h)
	return h
}
