package api

import (
	"math"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each client accumulates
// `rate` tokens per second up to `burst`, and each admitted request
// spends one. Clients are materialized on first sight and live for the
// server's lifetime (the client set is the token file, which is small).
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injectable for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate, burst float64) *rateLimiter {
	if burst <= 0 {
		burst = math.Max(1, rate)
	}
	return &rateLimiter{
		rate:    rate,
		burst:   burst,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow spends one token from the client's bucket. When the bucket is
// empty it reports false plus how long until the next token accrues —
// the 429 response's Retry-After.
func (l *rateLimiter) allow(client string) (ok bool, retryAfter time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}
