package api

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"github.com/ddnn/ddnn-go"
)

// shedLevelHeader reports which exit pipeline the admission controller
// granted the request, so callers can observe degradation directly.
const shedLevelHeader = "X-Ddnn-Shed-Level"

// errorResponse is the JSON error envelope of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// classifyRequest is the JSON body of POST /v1/classify.
type classifyRequest struct {
	SampleID *uint64 `json:"sample_id"`
}

// classifyResponse is one classified sample. Present marks the device
// views that contributed to the answer, so callers can observe
// degradation (a dead sensor) per sample.
type classifyResponse struct {
	SampleID  uint64    `json:"sample_id"`
	Class     int       `json:"class"`
	Exit      string    `json:"exit"`
	Probs     []float32 `json:"probs"`
	Entropy   float64   `json:"entropy"`
	Present   []bool    `json:"present,omitempty"`
	LatencyMs float64   `json:"latency_ms"`
	ShedLevel string    `json:"shed_level"`
	// ConfigVersion is the topology config version the session ran
	// under (see docs/ARCHITECTURE.md): the answer is bit-identical to
	// the staged reference for the membership and tenant thresholds of
	// that version.
	ConfigVersion uint64 `json:"config_version"`
	// ModelVersion is the model version the session pinned at start:
	// every hop of the hierarchy ran those weights, even mid-rollout.
	ModelVersion uint64 `json:"model_version"`
}

// batchRequest is the JSON body of POST /v1/classify/batch.
type batchRequest struct {
	SampleIDs []uint64 `json:"sample_ids"`
}

// batchResponse answers a batch in sample_ids order.
type batchResponse struct {
	Results   []classifyResponse `json:"results"`
	ShedLevel string             `json:"shed_level"`
}

func toResponse(res ddnn.Result, level ddnn.ShedLevel) classifyResponse {
	return classifyResponse{
		SampleID:      res.SampleID,
		Class:         res.Class,
		Exit:          res.Exit.String(),
		Probs:         res.Probs,
		Entropy:       res.Entropy,
		Present:       res.Present,
		LatencyMs:     float64(res.Latency.Microseconds()) / 1000,
		ShedLevel:     level.String(),
		ConfigVersion: res.ConfigVersion,
		ModelVersion:  res.ModelVersion,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// retryAfterSeconds renders a Retry-After value, rounding up so clients
// never retry early; the minimum is 1 second (the header is integral).
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// writeBodyError answers a request whose body could not be read or
// decoded: 413 when the MaxBodyBytes limit cut it off, 400 otherwise.
func writeBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, "malformed body: "+err.Error())
}

// httpStatus maps the engine's typed errors onto response codes; see
// docs/OPERATIONS.md for the full table.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ddnn.ErrCanceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, ddnn.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ddnn.ErrEngineClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ddnn.ErrUploadUnsupported):
		return http.StatusNotImplemented
	case errors.Is(err, ddnn.ErrCloudUnavailable),
		errors.Is(err, ddnn.ErrEdgeUnavailable),
		errors.Is(err, ddnn.ErrNoHealthyReplica),
		errors.Is(err, ddnn.ErrNoSummaries):
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

// admit runs the admission controller for one classify request,
// stamping the shed-level header or answering 503 at capacity.
func (s *Server) admit(w http.ResponseWriter, client string) (ddnn.ShedLevel, func(), bool) {
	level, release, ok := s.admission.acquire()
	if !ok {
		s.metrics.Overloaded.Inc(client)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "server at capacity")
		return 0, nil, false
	}
	s.metrics.InFlight.Inc()
	s.metrics.ShedRequests.Inc(level.String())
	w.Header().Set(shedLevelHeader, level.String())
	return level, func() { release(); s.metrics.InFlight.Dec() }, true
}

// handleClassify answers POST /v1/classify: a JSON {"sample_id": N}
// body classifies a dataset sample; a raw application/octet-stream body
// of Devices×3×32×32 little-endian float32 values classifies an
// uploaded sample (one view per device, concatenated in device order).
//
// The whole body is read and validated before admission, like
// handleClassifyBatch: a slow client trickling a 4MB upload must not
// hold a MaxInFlight slot for its entire transfer, and malformed bodies
// must not count as shed work or carry a shed-level header.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request, client string) {
	var (
		views    []*ddnn.Tensor
		sampleID uint64
	)
	if isRawTensor(r) {
		v, perr := s.readViews(r.Body)
		if perr != nil {
			writeBodyError(w, perr)
			return
		}
		views = v
	} else {
		var req classifyRequest
		if perr := json.NewDecoder(r.Body).Decode(&req); perr != nil {
			writeBodyError(w, perr)
			return
		}
		if req.SampleID == nil {
			writeError(w, http.StatusBadRequest, "missing sample_id")
			return
		}
		sampleID = *req.SampleID
	}
	level, release, ok := s.admit(w, client)
	if !ok {
		return
	}
	defer release()
	var (
		res ddnn.Result
		err error
	)
	if views != nil {
		res, err = s.cfg.Engine.ClassifyUpload(r.Context(), views, level)
	} else {
		// The authenticated client identity is the tenant: a tenant
		// config registered under the client's name selects its exit
		// thresholds, everyone else runs the default pipeline.
		res, err = s.cfg.Engine.ClassifyTenantShed(r.Context(), sampleID, client, level)
	}
	if err != nil {
		writeError(w, httpStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, toResponse(res, level))
}

// isRawTensor reports whether the request carries a binary tensor body.
func isRawTensor(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return strings.HasPrefix(ct, "application/octet-stream")
}

// readViews parses a raw tensor body into per-device views. The body
// must hold exactly Devices×3×32×32 little-endian float32 values.
func (s *Server) readViews(body io.Reader) ([]*ddnn.Tensor, error) {
	viewVals := ddnn.ImageC * ddnn.ImageH * ddnn.ImageW
	want := s.cfg.Devices * viewVals * 4
	raw, err := io.ReadAll(body)
	if err != nil {
		return nil, fmt.Errorf("reading tensor body: %w", err)
	}
	if len(raw) != want {
		return nil, fmt.Errorf("tensor body is %d bytes, want %d (%d devices × %d×%d×%d float32)",
			len(raw), want, s.cfg.Devices, ddnn.ImageC, ddnn.ImageH, ddnn.ImageW)
	}
	views := make([]*ddnn.Tensor, s.cfg.Devices)
	for d := range views {
		v := ddnn.NewTensor(1, ddnn.ImageC, ddnn.ImageH, ddnn.ImageW)
		data := v.Data()
		base := d * viewVals * 4
		for i := range data {
			bits := binary.LittleEndian.Uint32(raw[base+i*4:])
			data[i] = math.Float32frombits(bits)
		}
		views[d] = v
	}
	return views, nil
}

// handleClassifyBatch answers POST /v1/classify/batch, riding the
// engine's micro-batching: the whole batch shares the shed level the
// admission controller granted at arrival.
func (s *Server) handleClassifyBatch(w http.ResponseWriter, r *http.Request, client string) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBodyError(w, err)
		return
	}
	if len(req.SampleIDs) == 0 {
		writeError(w, http.StatusBadRequest, "empty sample_ids")
		return
	}
	if len(req.SampleIDs) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d samples exceeds the %d-sample limit", len(req.SampleIDs), s.cfg.MaxBatch))
		return
	}
	level, release, ok := s.admit(w, client)
	if !ok {
		return
	}
	defer release()
	results, err := s.cfg.Engine.ClassifyBatchTenantShed(r.Context(), req.SampleIDs, client, level)
	if err != nil {
		writeError(w, httpStatus(err), err.Error())
		return
	}
	resp := batchResponse{Results: make([]classifyResponse, len(results)), ShedLevel: level.String()}
	for i, res := range results {
		resp.Results[i] = toResponse(res, level)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports process liveness: the handler answering is the
// signal.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports serving readiness: ready while the upstream
// replica pool has at least one healthy replica to escalate to.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	total, healthy := s.cfg.Engine.UpstreamReplicas()
	body := map[string]any{"replicas": total, "healthy": healthy}
	if healthy == 0 {
		body["status"] = "unavailable"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body["status"] = "ready"
	writeJSON(w, http.StatusOK, body)
}
