package api

import (
	"net/http"
	"strconv"
	"time"

	"github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/api/promtext"
)

// Metrics is the front door's instrument catalogue, rendered by
// GET /metrics in the Prometheus text exposition format.
type Metrics struct {
	reg *promtext.Registry

	// Requests counts classify requests by authenticated client.
	Requests *promtext.CounterVec
	// RateLimited counts 429 rejections by client.
	RateLimited *promtext.CounterVec
	// Overloaded counts 503 admission rejections by client.
	Overloaded *promtext.CounterVec
	// Responses counts HTTP responses by status code, across all
	// endpoints.
	Responses *promtext.CounterVec
	// ShedRequests counts admitted classify requests by shed level.
	ShedRequests *promtext.CounterVec
	// Exits counts classified samples by the hierarchy exit that
	// answered them.
	Exits *promtext.CounterVec
	// ExitLatency observes whole-session classification latency
	// (seconds) by the hierarchy exit that answered the sample.
	ExitLatency *promtext.HistogramVec
	// StageLatency observes per-tier round-trip latency (seconds): the
	// local device fan-out under "local", escalations under the tier
	// that ran them.
	StageLatency *promtext.HistogramVec
	// RequestLatency observes whole-request HTTP latency (seconds).
	RequestLatency *promtext.Histogram
	// InFlight gauges currently admitted classify requests.
	InFlight *promtext.Gauge
	// Rollouts counts model rollouts driven through the admin plane by
	// outcome ("completed" / "failed").
	Rollouts *promtext.CounterVec
}

// NewMetrics builds the catalogue on a fresh registry.
func NewMetrics() *Metrics {
	reg := promtext.NewRegistry()
	return &Metrics{
		reg:            reg,
		Requests:       promtext.NewCounterVec(reg, "ddnn_http_requests_total", "Classify requests by client.", "client"),
		RateLimited:    promtext.NewCounterVec(reg, "ddnn_http_rate_limited_total", "Requests rejected with 429 by client.", "client"),
		Overloaded:     promtext.NewCounterVec(reg, "ddnn_http_overload_rejected_total", "Requests rejected with 503 at capacity by client.", "client"),
		Responses:      promtext.NewCounterVec(reg, "ddnn_http_responses_total", "HTTP responses by status code.", "code"),
		ShedRequests:   promtext.NewCounterVec(reg, "ddnn_http_shed_requests_total", "Admitted classify requests by shed level.", "level"),
		Exits:          promtext.NewCounterVec(reg, "ddnn_exit_classifications_total", "Classified samples by hierarchy exit.", "exit"),
		ExitLatency:    promtext.NewHistogramVec(reg, "ddnn_exit_latency_seconds", "Whole-session classification latency by hierarchy exit.", "exit", nil),
		StageLatency:   promtext.NewHistogramVec(reg, "ddnn_stage_latency_seconds", "Per-tier round-trip latency.", "tier", nil),
		RequestLatency: promtext.NewHistogram(reg, "ddnn_http_request_seconds", "Whole-request HTTP latency.", nil),
		InFlight:       promtext.NewGauge(reg, "ddnn_http_inflight_requests", "Currently admitted classify requests."),
		Rollouts:       promtext.NewCounterVec(reg, "ddnn_model_rollouts_total", "Model rollouts by outcome.", "outcome"),
	}
}

// observeModel registers scrape-time gauges over the engine's model
// lifecycle: the active version and the rollout state machine
// (0 idle, 1 rolling, 2 rolled back).
func (m *Metrics) observeModel(ma ModelAdmin) {
	promtext.NewGaugeFunc(m.reg, "ddnn_model_version", "Active model version.", func() float64 {
		return float64(ma.ModelVersion())
	})
	promtext.NewGaugeFunc(m.reg, "ddnn_rollout_state", "Model rollout state (0 idle, 1 rolling, 2 rolled back).", func() float64 {
		return rolloutStateCode(ma.RolloutState())
	})
	promtext.NewGaugeFunc(m.reg, "ddnn_model_versions_loaded", "Model versions held in the registry.", func() float64 {
		return float64(len(ma.ModelVersions()))
	})
}

// Instrumentation returns the engine callbacks that feed the per-exit
// and per-tier instruments; install with Engine.SetInstrumentation.
func (m *Metrics) Instrumentation() ddnn.Instrumentation {
	return ddnn.Instrumentation{
		ExitObserved: func(exit ddnn.ExitPoint, latency time.Duration) {
			m.Exits.Inc(exit.String())
			m.ExitLatency.Observe(exit.String(), latency.Seconds())
		},
		StageObserved: func(tier ddnn.ExitPoint, latency time.Duration) {
			m.StageLatency.Observe(tier.String(), latency.Seconds())
		},
	}
}

// observePool registers scrape-time gauges over the engine's upstream
// replica pool.
func (m *Metrics) observePool(eng Classifier) {
	promtext.NewGaugeFunc(m.reg, "ddnn_pool_replicas", "Upstream tier replicas.", func() float64 {
		total, _ := eng.UpstreamReplicas()
		return float64(total)
	})
	promtext.NewGaugeFunc(m.reg, "ddnn_pool_healthy_replicas", "Healthy upstream tier replicas.", func() float64 {
		_, healthy := eng.UpstreamReplicas()
		return float64(healthy)
	})
}

// observeTopology registers scrape-time gauges over the engine's
// versioned runtime topology, so membership churn and tenant changes are
// visible to operators without polling the engine.
func (m *Metrics) observeTopology(eng Classifier) {
	promtext.NewGaugeFunc(m.reg, "ddnn_topology_config_version", "Current topology config version (bumps on every membership or tenant change).", func() float64 {
		return float64(eng.Topology().Version)
	})
	promtext.NewGaugeFunc(m.reg, "ddnn_topology_device_slots", "Total device slots in the hierarchy.", func() float64 {
		return float64(eng.Topology().Slots)
	})
	promtext.NewGaugeFunc(m.reg, "ddnn_topology_present_devices", "Device slots currently occupied by a registered device.", func() float64 {
		present := 0
		for _, p := range eng.Topology().Present {
			if p {
				present++
			}
		}
		return float64(present)
	})
	promtext.NewGaugeFunc(m.reg, "ddnn_topology_tenants", "Configured tenants.", func() float64 {
		return float64(len(eng.Topology().Tenants))
	})
}

// countResponse records one finished HTTP response.
func (m *Metrics) countResponse(status int, elapsed time.Duration) {
	m.Responses.Inc(strconv.Itoa(status))
	m.RequestLatency.Observe(elapsed.Seconds())
}

// handleMetrics renders the catalogue.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", promtext.ContentType)
	_ = s.metrics.reg.Render(w)
}
