package api

import (
	"sync/atomic"

	"github.com/ddnn/ddnn-go"
)

// admission bounds in-flight classify work and converts load into shed
// levels: below half capacity requests run the full hierarchy, up to
// three quarters they stop at the edge, up to the bound they answer at
// the device-local exit, and at the bound they are rejected with 503.
// Overload therefore degrades answer quality stage by stage — every
// admitted request is answered, with bounded queueing, until the server
// is genuinely full.
type admission struct {
	max      int64
	inflight atomic.Int64
}

func newAdmission(maxInFlight int) *admission {
	return &admission{max: int64(maxInFlight)}
}

// acquire admits one request, returning its shed level and a release
// func, or reports rejection (the caller answers 503).
func (a *admission) acquire() (level ddnn.ShedLevel, release func(), ok bool) {
	n := a.inflight.Add(1)
	if n > a.max {
		a.inflight.Add(-1)
		return 0, nil, false
	}
	switch {
	case 2*n <= a.max:
		level = ddnn.ShedNone
	case 4*n <= 3*a.max:
		level = ddnn.ShedPreferEdge
	default:
		level = ddnn.ShedLocalOnly
	}
	return level, func() { a.inflight.Add(-1) }, true
}

// current returns the number of admitted in-flight requests.
func (a *admission) current() int64 { return a.inflight.Load() }
