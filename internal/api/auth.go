package api

import (
	"bufio"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

// Authenticator maps bearer tokens to client identities. Tokens are
// stored only as SHA-256 digests, and lookup compares the presented
// token's digest against every entry with a constant-time comparison,
// so neither a heap dump nor response timing leaks token material.
type Authenticator struct {
	byDigest map[[sha256.Size]byte]string
}

// NewAuthenticator builds an authenticator from client→token pairs.
func NewAuthenticator(tokens map[string]string) *Authenticator {
	a := &Authenticator{byDigest: make(map[[sha256.Size]byte]string, len(tokens))}
	for client, token := range tokens {
		a.byDigest[sha256.Sum256([]byte(token))] = client
	}
	return a
}

// LoadTokenFile reads a token file: one "client:token" pair per line,
// blank lines and #-comments ignored. Tokens may contain colons; the
// client name may not.
func LoadTokenFile(path string) (*Authenticator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("api: token file: %w", err)
	}
	defer f.Close()
	a, err := ParseTokens(f)
	if err != nil {
		return nil, fmt.Errorf("api: token file %s: %w", path, err)
	}
	return a, nil
}

// maxTokenLine bounds one token-file line. bufio.Scanner's 64KB default
// is too small for generously sized machine tokens; anything over 1MB
// on one line is a corrupt file, not a token.
const maxTokenLine = 1 << 20

// ParseTokens parses token lines from a reader; see LoadTokenFile.
func ParseTokens(r io.Reader) (*Authenticator, error) {
	tokens := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTokenLine)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		client, token, ok := strings.Cut(text, ":")
		client, token = strings.TrimSpace(client), strings.TrimSpace(token)
		if !ok || client == "" || token == "" {
			return nil, fmt.Errorf("line %d: want client:token", line)
		}
		if _, dup := tokens[client]; dup {
			return nil, fmt.Errorf("line %d: duplicate client %q", line, client)
		}
		tokens[client] = token
	}
	if err := sc.Err(); err != nil {
		// The scanner stopped on the line after the last one delivered;
		// name it so an over-long or unreadable line is findable.
		return nil, fmt.Errorf("line %d: %w", line+1, err)
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("no tokens")
	}
	return NewAuthenticator(tokens), nil
}

// Len returns the number of registered clients.
func (a *Authenticator) Len() int { return len(a.byDigest) }

// Identify resolves a presented token to its client identity. Every
// registered digest is compared in constant time regardless of where
// (or whether) a match occurs.
func (a *Authenticator) Identify(token string) (client string, ok bool) {
	d := sha256.Sum256([]byte(token))
	for digest, c := range a.byDigest {
		if subtle.ConstantTimeCompare(digest[:], d[:]) == 1 {
			client, ok = c, true
		}
	}
	return client, ok
}

// anonymousClient identifies requests when authentication is disabled.
const anonymousClient = "anonymous"

// clientFor authenticates the request, returning the client identity or
// writing the 401 itself. Without an Authenticator every request runs
// as anonymousClient.
func (s *Server) clientFor(w http.ResponseWriter, r *http.Request) (string, bool) {
	if s.auth == nil {
		return anonymousClient, true
	}
	header := r.Header.Get("Authorization")
	token, ok := strings.CutPrefix(header, "Bearer ")
	if !ok || token == "" {
		w.Header().Set("WWW-Authenticate", `Bearer realm="ddnn"`)
		writeError(w, http.StatusUnauthorized, "missing or malformed Authorization header")
		return "", false
	}
	client, ok := s.auth.Identify(token)
	if !ok {
		w.Header().Set("WWW-Authenticate", `Bearer realm="ddnn", error="invalid_token"`)
		writeError(w, http.StatusUnauthorized, "unknown token")
		return "", false
	}
	return client, true
}
