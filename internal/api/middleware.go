package api

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"
)

// statusRecorder captures the response status for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// requestIDHeader carries the per-request correlation ID, echoed in the
// response and threaded through access logs.
const requestIDHeader = "X-Request-Id"

// newRequestID returns a 16-hex-char random correlation ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// withAccessLog assigns each request an ID (honoring a caller-supplied
// one), logs a structured access line when it finishes and feeds the
// response counters.
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.metrics.countResponse(rec.status, elapsed)
		s.logger.Info("http request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", float64(elapsed.Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

// withRecover converts handler panics into 500s instead of tearing down
// the whole connection (and, pre-1.19 servers, the process). The 500 is
// written only when the handler had not started a response yet — a
// panic after WriteHeader must not write a second status line.
func (s *Server) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				s.logger.Error("handler panic", "path", r.URL.Path, "panic", v)
				if rec.status == 0 {
					writeError(w, http.StatusInternalServerError, "internal error")
				}
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

// requireAuth wraps a classify handler with authentication, per-client
// rate limiting and the request counter. Probe and scrape endpoints
// stay outside this wrapper.
func (s *Server) requireAuth(next func(w http.ResponseWriter, r *http.Request, client string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		client, ok := s.clientFor(w, r)
		if !ok {
			return
		}
		s.metrics.Requests.Inc(client)
		if s.limiter != nil {
			if allowed, retryAfter := s.limiter.allow(client); !allowed {
				s.metrics.RateLimited.Inc(client)
				w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
				writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
				return
			}
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		next(w, r, client)
	}
}
