package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ddnn/ddnn-go"
)

// adminRequest sends one admin-plane request with the given bearer token.
func adminRequest(t *testing.T, method, url, token, contentType string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// artifactBytes serializes a seed-variant of the e2e model as a
// versioned artifact.
func artifactBytes(t *testing.T, base *ddnn.Model, seed int64, version uint64) []byte {
	t.Helper()
	cfg := base.Cfg
	cfg.Seed = seed
	m := ddnn.MustNewModel(cfg)
	path := filepath.Join(t.TempDir(), "model.ddnn")
	if err := ddnn.SaveModelVersion(path, m, version); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestAdminLifecycle drives the whole admin plane over a real cluster:
// token gating, artifact registration (including corrupt and duplicate
// uploads), inventory listing, a successful rollout, and responses
// reporting the new model version afterwards.
func TestAdminLifecycle(t *testing.T) {
	model, _ := e2eFixture(t)
	_, ts := newE2EServer(t, Config{
		Auth:      NewAuthenticator(map[string]string{"client": "serving-token"}),
		AdminAuth: NewAuthenticator(map[string]string{"ops": "admin-token"}),
	})

	// The admin plane rejects missing, serving-class and unknown tokens.
	for _, token := range []string{"", "serving-token", "wrong"} {
		resp := adminRequest(t, http.MethodGet, ts.URL+"/v1/admin/models", token, "", nil)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("token %q: status %d, want 401", token, resp.StatusCode)
		}
	}

	// Fresh engine: version 1 active, idle.
	resp := adminRequest(t, http.MethodGet, ts.URL+"/v1/admin/models", "admin-token", "", nil)
	var inv modelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		t.Fatal(err)
	}
	if inv.ActiveVersion != 1 || inv.RolloutState != ddnn.RolloutIdle || len(inv.Versions) != 1 {
		t.Fatalf("fresh inventory = %+v", inv)
	}

	// A corrupt artifact is rejected with 400 before touching the registry.
	good := artifactBytes(t, model, 909090, 2)
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0xFF
	resp = adminRequest(t, http.MethodPost, ts.URL+"/v1/admin/models", "admin-token", "application/octet-stream", corrupt)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload: status %d, want 400", resp.StatusCode)
	}

	// Registering version 2 answers 201 with the stamped version.
	resp = adminRequest(t, http.MethodPost, ts.URL+"/v1/admin/models", "admin-token", "application/octet-stream", good)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d, want 201", resp.StatusCode)
	}
	var created map[string]uint64
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	if created["version"] != 2 {
		t.Fatalf("registered version = %d, want 2", created["version"])
	}

	// Re-registering the same version collides with 409.
	resp = adminRequest(t, http.MethodPost, ts.URL+"/v1/admin/models", "admin-token", "application/octet-stream", good)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: status %d, want 409", resp.StatusCode)
	}

	// Rolling out an unknown version answers 404.
	resp = adminRequest(t, http.MethodPost, ts.URL+"/v1/admin/rollout", "admin-token", "application/json", []byte(`{"version": 99}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown rollout: status %d, want 404", resp.StatusCode)
	}

	// Rolling out version 2 converges the fleet.
	resp = adminRequest(t, http.MethodPost, ts.URL+"/v1/admin/rollout", "admin-token", "application/json", []byte(`{"version": 2}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollout: status %d, want 200", resp.StatusCode)
	}
	var rolled map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rolled); err != nil {
		t.Fatal(err)
	}
	if v, _ := rolled["active_version"].(float64); v != 2 {
		t.Fatalf("rollout response = %v, want active_version 2", rolled)
	}

	// Serving responses now report the new model version.
	body := strings.NewReader(`{"sample_id": 0}`)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer serving-token")
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("classify after rollout: status %d", cresp.StatusCode)
	}
	var cr classifyResponse
	if err := json.NewDecoder(cresp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.ModelVersion != 2 {
		t.Fatalf("classify model_version = %d, want 2", cr.ModelVersion)
	}

	// The lifecycle gauges reflect the rollout.
	mresp := adminRequest(t, http.MethodGet, ts.URL+"/metrics", "", "", nil)
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"ddnn_model_version 2", "ddnn_rollout_state 0", `ddnn_model_rollouts_total{outcome="completed"} 1`} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestAdminUnmountedWithoutAdminAuth checks the admin plane is absent —
// 404, not 401 — when no admin token class is configured.
func TestAdminUnmountedWithoutAdminAuth(t *testing.T) {
	_, ts := newE2EServer(t, Config{})
	resp := adminRequest(t, http.MethodGet, ts.URL+"/v1/admin/models", "anything", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unmounted admin plane: status %d, want 404", resp.StatusCode)
	}
}
