package api

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ddnn/ddnn-go"
)

// fakeEngine is a scriptable Classifier for handler and middleware
// tests; the real engine is exercised by the e2e test.
type fakeEngine struct {
	mu      sync.Mutex
	classed []uint64         // sample IDs seen by ClassifyTenantShed
	views   [][]*ddnn.Tensor // uploads seen by ClassifyUpload
	levels  []ddnn.ShedLevel // levels granted to each call
	tenants []string         // tenants resolved for each classify call
	block   chan struct{}    // when non-nil, classify blocks until closed
	started chan struct{}    // receives one token per classify entered
	err     error            // forced classify error
	panics  bool             // classify panics
	total   int
	healthy int
}

func newFakeEngine() *fakeEngine { return &fakeEngine{total: 2, healthy: 2} }

func (f *fakeEngine) result(id uint64) ddnn.Result {
	return ddnn.Result{
		SampleID:      id,
		Class:         3,
		Exit:          ddnn.ExitLocal,
		Probs:         []float32{0.1, 0.9},
		Entropy:       0.25,
		Latency:       1500 * time.Microsecond,
		ConfigVersion: 7,
	}
}

func (f *fakeEngine) enter(ctx context.Context, level ddnn.ShedLevel) error {
	f.mu.Lock()
	f.levels = append(f.levels, level)
	block, started := f.block, f.started
	f.mu.Unlock()
	if started != nil {
		started <- struct{}{}
	}
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if f.panics {
		panic("fake engine exploded")
	}
	return f.err
}

func (f *fakeEngine) ClassifyTenantShed(ctx context.Context, id uint64, tenant string, level ddnn.ShedLevel) (ddnn.Result, error) {
	if err := f.enter(ctx, level); err != nil {
		return ddnn.Result{}, err
	}
	f.mu.Lock()
	f.classed = append(f.classed, id)
	f.tenants = append(f.tenants, tenant)
	f.mu.Unlock()
	return f.result(id), nil
}

func (f *fakeEngine) ClassifyBatchTenantShed(ctx context.Context, ids []uint64, tenant string, level ddnn.ShedLevel) ([]ddnn.Result, error) {
	if err := f.enter(ctx, level); err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.tenants = append(f.tenants, tenant)
	f.mu.Unlock()
	out := make([]ddnn.Result, len(ids))
	for i, id := range ids {
		out[i] = f.result(id)
	}
	return out, nil
}

func (f *fakeEngine) ClassifyUpload(ctx context.Context, views []*ddnn.Tensor, level ddnn.ShedLevel) (ddnn.Result, error) {
	if err := f.enter(ctx, level); err != nil {
		return ddnn.Result{}, err
	}
	f.mu.Lock()
	f.views = append(f.views, views)
	f.mu.Unlock()
	return f.result(0), nil
}

func (f *fakeEngine) UpstreamReplicas() (int, int)            { return f.total, f.healthy }
func (f *fakeEngine) SetInstrumentation(ddnn.Instrumentation) {}

func (f *fakeEngine) Topology() ddnn.TopologyConfig {
	return ddnn.TopologyConfig{
		Version: 7,
		Slots:   2,
		Present: []bool{true, true},
		Tenants: map[string]ddnn.TenantConfig{"alice": {LocalThreshold: 0.5, EdgeThreshold: 0.5}},
	}
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Devices == 0 {
		cfg.Devices = 2
	}
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func classifyBody(id uint64) *bytes.Reader {
	return bytes.NewReader([]byte(fmt.Sprintf(`{"sample_id": %d}`, id)))
}

func doClassify(t *testing.T, ts *httptest.Server, token string, body io.Reader, contentType string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify", body)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestClassifyAuthenticated(t *testing.T) {
	fake := newFakeEngine()
	_, ts := newTestServer(t, Config{
		Engine: fake,
		Auth:   NewAuthenticator(map[string]string{"mobile": "s3cret"}),
	})

	// No Authorization header.
	resp := doClassify(t, ts, "", classifyBody(7), "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: status = %d, want 401", resp.StatusCode)
	}
	if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
		t.Errorf("no token: WWW-Authenticate = %q", got)
	}

	// Wrong token.
	resp = doClassify(t, ts, "wrong", classifyBody(7), "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad token: status = %d, want 401", resp.StatusCode)
	}

	// Valid token.
	resp = doClassify(t, ts, "s3cret", classifyBody(7), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good token: status = %d, want 200", resp.StatusCode)
	}
	var cr classifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.SampleID != 7 || cr.Class != 3 || cr.Exit != "local" || cr.ShedLevel != "normal" {
		t.Errorf("response = %+v", cr)
	}
	if cr.LatencyMs != 1.5 {
		t.Errorf("latency_ms = %v, want 1.5", cr.LatencyMs)
	}
	if got := resp.Header.Get(shedLevelHeader); got != "normal" {
		t.Errorf("%s = %q, want normal", shedLevelHeader, got)
	}
	if fake.classed[0] != 7 {
		t.Errorf("engine saw sample %d, want 7", fake.classed[0])
	}
}

// TestTenantRouting checks that the authenticated client identity is
// resolved as the tenant at admission — threaded into both the
// per-sample and the batch classify paths — and that responses carry the
// topology config version the session ran under.
func TestTenantRouting(t *testing.T) {
	fake := newFakeEngine()
	_, ts := newTestServer(t, Config{
		Engine: fake,
		Auth:   NewAuthenticator(map[string]string{"alice": "tok-a", "bob": "tok-b"}),
	})

	resp := doClassify(t, ts, "tok-a", classifyBody(1), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alice classify: status = %d, want 200", resp.StatusCode)
	}
	var cr classifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.ConfigVersion != 7 {
		t.Errorf("config_version = %d, want 7", cr.ConfigVersion)
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify/batch",
		strings.NewReader(`{"sample_ids": [1, 2]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer tok-b")
	bresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("bob batch: status = %d, want 200", bresp.StatusCode)
	}
	var br batchResponse
	if err := json.NewDecoder(bresp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 || br.Results[0].ConfigVersion != 7 {
		t.Errorf("batch results = %+v", br.Results)
	}

	fake.mu.Lock()
	tenants := append([]string(nil), fake.tenants...)
	fake.mu.Unlock()
	want := []string{"alice", "bob"}
	if len(tenants) != len(want) {
		t.Fatalf("tenants = %v, want %v", tenants, want)
	}
	for i := range want {
		if tenants[i] != want[i] {
			t.Errorf("tenant[%d] = %q, want %q", i, tenants[i], want[i])
		}
	}
}

// TestAnonymousTenant checks that with authentication disabled every
// request runs under the anonymous tenant (which engines resolve to the
// default pipeline).
func TestAnonymousTenant(t *testing.T) {
	fake := newFakeEngine()
	_, ts := newTestServer(t, Config{Engine: fake})
	resp := doClassify(t, ts, "", classifyBody(4), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	fake.mu.Lock()
	defer fake.mu.Unlock()
	if len(fake.tenants) != 1 || fake.tenants[0] != anonymousClient {
		t.Errorf("tenants = %v, want [%s]", fake.tenants, anonymousClient)
	}
}

func TestParseTokens(t *testing.T) {
	a, err := ParseTokens(strings.NewReader(`
# comment line

mobile: token-one
backend: se:cret:with:colons
`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
	if c, ok := a.Identify("token-one"); !ok || c != "mobile" {
		t.Errorf("Identify(token-one) = %q, %v", c, ok)
	}
	if c, ok := a.Identify("se:cret:with:colons"); !ok || c != "backend" {
		t.Errorf("Identify(colon token) = %q, %v", c, ok)
	}
	if _, ok := a.Identify("nope"); ok {
		t.Error("unknown token identified")
	}

	for _, bad := range []string{"", "no-colon-here", "a:b\na:c", "  :token", "client:  "} {
		if _, err := ParseTokens(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTokens(%q) accepted", bad)
		}
	}
}

func TestRateLimiting(t *testing.T) {
	// Unit-level: deterministic clock.
	l := newRateLimiter(2, 2) // 2 rps, burst 2
	now := time.Unix(100, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("c"); !ok {
			t.Fatalf("request %d inside burst rejected", i)
		}
	}
	ok, retry := l.allow("c")
	if ok {
		t.Fatal("request over burst allowed")
	}
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 500ms]", retry)
	}
	// Other clients have their own bucket.
	if ok, _ := l.allow("other"); !ok {
		t.Fatal("fresh client rejected")
	}
	// Tokens accrue with time.
	now = now.Add(time.Second)
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("request after refill rejected")
	}

	// HTTP-level: third request answers 429 with Retry-After.
	_, ts := newTestServer(t, Config{Engine: newFakeEngine(), RatePerSec: 0.5, Burst: 2})
	for i := 0; i < 2; i++ {
		if resp := doClassify(t, ts, "", classifyBody(1), ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, resp.StatusCode)
		}
	}
	resp := doClassify(t, ts, "", classifyBody(1), "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"}, {time.Millisecond, "1"}, {time.Second, "1"}, {1100 * time.Millisecond, "2"}, {5 * time.Second, "5"},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %s, want %s", tc.d, got, tc.want)
		}
	}
}

func TestBodySizeLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: newFakeEngine(), MaxBodyBytes: 64})
	big := `{"sample_id": 1, "pad": "` + strings.Repeat("x", 256) + `"}`
	resp := doClassify(t, ts, "", strings.NewReader(big), "")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestMalformedBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: newFakeEngine()})
	for name, body := range map[string]string{
		"not json":          "nonsense{",
		"missing sample_id": `{"other": 1}`,
	} {
		resp := doClassify(t, ts, "", strings.NewReader(body), "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestPanicRecovery(t *testing.T) {
	fake := newFakeEngine()
	fake.panics = true
	_, ts := newTestServer(t, Config{Engine: fake})
	resp := doClassify(t, ts, "", classifyBody(1), "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	// The server survives and answers the next request.
	fake.panics = false
	resp = doClassify(t, ts, "", classifyBody(2), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status = %d, want 200", resp.StatusCode)
	}
}

func TestEngineErrorMapping(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want int
	}{
		{ddnn.ErrCanceled, 499},
		{ddnn.ErrDeadlineExceeded, http.StatusGatewayTimeout},
		{ddnn.ErrEngineClosed, http.StatusServiceUnavailable},
		{ddnn.ErrUploadUnsupported, http.StatusNotImplemented},
		{ddnn.ErrCloudUnavailable, http.StatusBadGateway},
		{ddnn.ErrNoHealthyReplica, http.StatusBadGateway},
		{fmt.Errorf("mystery"), http.StatusInternalServerError},
	} {
		fake := newFakeEngine()
		fake.err = tc.err
		_, ts := newTestServer(t, Config{Engine: fake})
		resp := doClassify(t, ts, "", classifyBody(1), "")
		if resp.StatusCode != tc.want {
			t.Errorf("%v: status = %d, want %d", tc.err, resp.StatusCode, tc.want)
		}
		ts.Close()
	}
}

func TestHealthAndReadiness(t *testing.T) {
	fake := newFakeEngine()
	_, ts := newTestServer(t, Config{Engine: fake, Auth: NewAuthenticator(map[string]string{"c": "t"})})

	// Probes bypass authentication.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}

	fake.healthy = 0
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no healthy replicas = %d, want 503", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "unavailable" {
		t.Errorf("readyz body = %v", body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: newFakeEngine(), Auth: NewAuthenticator(map[string]string{"mobile": "tok"})})
	if resp := doClassify(t, ts, "tok", classifyBody(1), ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("classify = %d", resp.StatusCode)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`ddnn_http_requests_total{client="mobile"} 1`,
		`ddnn_http_shed_requests_total{level="normal"} 1`,
		`ddnn_pool_replicas 2`,
		`ddnn_pool_healthy_replicas 2`,
		`ddnn_http_inflight_requests 0`,
		"ddnn_http_request_seconds_count",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestAdmissionShedProgression(t *testing.T) {
	a := newAdmission(8)
	var releases []func()
	grant := func(want ddnn.ShedLevel) {
		t.Helper()
		level, release, ok := a.acquire()
		if !ok {
			t.Fatalf("request %d rejected", len(releases)+1)
		}
		if level != want {
			t.Fatalf("request %d level = %v, want %v", len(releases)+1, level, want)
		}
		releases = append(releases, release)
	}
	for i := 0; i < 4; i++ {
		grant(ddnn.ShedNone)
	}
	for i := 0; i < 2; i++ {
		grant(ddnn.ShedPreferEdge)
	}
	for i := 0; i < 2; i++ {
		grant(ddnn.ShedLocalOnly)
	}
	if _, _, ok := a.acquire(); ok {
		t.Fatal("request beyond capacity admitted")
	}
	for _, r := range releases {
		r()
	}
	if a.current() != 0 {
		t.Fatalf("inflight after release = %d", a.current())
	}
	if level, release, ok := a.acquire(); !ok || level != ddnn.ShedNone {
		t.Fatalf("post-drain acquire = %v, %v", level, ok)
	} else {
		release()
	}
}

// TestOverloadShedsBeforeRejecting drives the server to its admission
// bound and checks the contract: every admitted request is answered 200
// (with the shed level declared in the header), and only requests beyond
// MaxInFlight are rejected — with 503 and a Retry-After, never a hung
// connection.
func TestOverloadShedsBeforeRejecting(t *testing.T) {
	const maxInFlight = 4
	fake := newFakeEngine()
	fake.block = make(chan struct{})
	fake.started = make(chan struct{}, maxInFlight)
	_, ts := newTestServer(t, Config{Engine: fake, MaxInFlight: maxInFlight})

	var wg sync.WaitGroup
	codes := make(chan int, maxInFlight)
	for i := 0; i < maxInFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := doClassify(t, ts, "", classifyBody(1), "")
			codes <- resp.StatusCode
		}()
	}
	// Wait until all four requests are inside the engine.
	for i := 0; i < maxInFlight; i++ {
		select {
		case <-fake.started:
		case <-time.After(5 * time.Second):
			t.Fatal("blocked requests did not reach the engine")
		}
	}

	// The server is full: one more request must shed, not queue.
	resp := doClassify(t, ts, "", classifyBody(2), "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	close(fake.block)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("admitted request answered %d, want 200", code)
		}
	}
}

func TestRawTensorUpload(t *testing.T) {
	const devices = 2
	fake := newFakeEngine()
	_, ts := newTestServer(t, Config{Engine: fake, Devices: devices})

	viewVals := ddnn.ImageC * ddnn.ImageH * ddnn.ImageW
	raw := make([]byte, devices*viewVals*4)
	for i := 0; i < devices*viewVals; i++ {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(float32(i)))
	}
	resp := doClassify(t, ts, "", bytes.NewReader(raw), "application/octet-stream")
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload = %d: %s", resp.StatusCode, body)
	}
	fake.mu.Lock()
	views := fake.views[0]
	fake.mu.Unlock()
	if len(views) != devices {
		t.Fatalf("engine saw %d views, want %d", len(views), devices)
	}
	for d, v := range views {
		data := v.Data()
		if len(data) != viewVals {
			t.Fatalf("view %d holds %d values, want %d", d, len(data), viewVals)
		}
		if want := float32(d * viewVals); data[0] != want {
			t.Errorf("view %d first value = %v, want %v", d, data[0], want)
		}
	}

	// A short body is rejected before touching the engine.
	resp = doClassify(t, ts, "", bytes.NewReader(raw[:100]), "application/octet-stream")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short upload = %d, want 400", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: newFakeEngine(), MaxBatch: 4})
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v1/classify/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp := post(`{"sample_ids": [5, 9, 2]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d, want 200", resp.StatusCode)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 || br.Results[0].SampleID != 5 || br.Results[2].SampleID != 2 {
		t.Errorf("batch results = %+v", br.Results)
	}
	if br.ShedLevel != "normal" {
		t.Errorf("batch shed_level = %q", br.ShedLevel)
	}

	if resp := post(`{"sample_ids": []}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"sample_ids": [1,2,3,4,5]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch = %d, want 400", resp.StatusCode)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: newFakeEngine()})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify", classifyBody(1))
	req.Header.Set(requestIDHeader, "caller-supplied-id")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(requestIDHeader); got != "caller-supplied-id" {
		t.Errorf("echoed request ID = %q", got)
	}

	resp = doClassify(t, ts, "", classifyBody(1), "")
	if got := resp.Header.Get(requestIDHeader); len(got) != 16 {
		t.Errorf("generated request ID = %q, want 16 hex chars", got)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(Config{Devices: 2}); err == nil {
		t.Error("NewServer accepted a nil engine")
	}
	if _, err := NewServer(Config{Engine: newFakeEngine()}); err == nil {
		t.Error("NewServer accepted zero devices")
	}
}
