package dataset

import (
	"math"
	"testing"
)

func TestGenerateSplitSizes(t *testing.T) {
	train, test := MustGenerate(DefaultConfig())
	if train.Len() != 680 {
		t.Errorf("train size = %d, want 680 (paper §IV-B)", train.Len())
	}
	if test.Len() != 171 {
		t.Errorf("test size = %d, want 171 (paper §IV-B)", test.Len())
	}
	if train.Devices() != NumDevices {
		t.Errorf("devices = %d, want %d", train.Devices(), NumDevices)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := MustGenerate(cfg)
	b, _ := MustGenerate(cfg)
	for i := range a.Samples {
		if a.Samples[i].Label != b.Samples[i].Label {
			t.Fatalf("sample %d label differs between runs", i)
		}
		for d := 0; d < NumDevices; d++ {
			for p := range a.Samples[i].Views[d] {
				if a.Samples[i].Views[d][p] != b.Samples[i].Views[d][p] {
					t.Fatalf("sample %d device %d pixel %d differs", i, d, p)
				}
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := MustGenerate(cfg)
	cfg.Seed = 2
	b, _ := MustGenerate(cfg)
	same := true
	for i := range a.Samples {
		if a.Samples[i].Label != b.Samples[i].Label {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical label sequences")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero train", func(c *Config) { c.Train = 0 }},
		{"zero test", func(c *Config) { c.Test = 0 }},
		{"zero devices", func(c *Config) { c.Devices = 0 }},
		{"presence mismatch", func(c *Config) { c.Presence = c.Presence[:2] }},
		{"noise mismatch", func(c *Config) { c.Noise = c.Noise[:3] }},
		{"priors mismatch", func(c *Config) { c.ClassPriors = []float64{1} }},
		{"negative prior", func(c *Config) { c.ClassPriors = []float64{-1, 1, 1} }},
		{"zero priors", func(c *Config) { c.ClassPriors = []float64{0, 0, 0} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate accepted invalid config")
			}
		})
	}
}

func TestPixelsInUnitRange(t *testing.T) {
	train, _ := MustGenerate(DefaultConfig())
	for i, s := range train.Samples[:50] {
		for d, view := range s.Views {
			for p, v := range view {
				if v < 0 || v > 1 {
					t.Fatalf("sample %d device %d pixel %d = %g out of [0,1]", i, d, p, v)
				}
			}
		}
	}
}

func TestAbsentViewsAreGrey(t *testing.T) {
	train, _ := MustGenerate(DefaultConfig())
	found := false
	for _, s := range train.Samples {
		for d, lbl := range s.ViewLabels {
			if lbl == NotPresent {
				found = true
				for p, v := range s.Views[d] {
					if v != 0.5 {
						t.Fatalf("absent view pixel %d = %g, want 0.5 (all-grey frame)", p, v)
					}
				}
			}
		}
	}
	if !found {
		t.Error("no absent views generated; presence probabilities too high")
	}
}

func TestEverySampleVisibleSomewhere(t *testing.T) {
	train, test := MustGenerate(DefaultConfig())
	for _, ds := range []*Dataset{train, test} {
		for i, s := range ds.Samples {
			present := false
			for _, lbl := range s.ViewLabels {
				if lbl != NotPresent {
					present = true
					break
				}
			}
			if !present {
				t.Fatalf("sample %d visible in no view", i)
			}
		}
	}
}

func TestPresenceRatesTrackConfig(t *testing.T) {
	cfg := DefaultConfig()
	train, _ := MustGenerate(cfg)
	stats := train.Stats()
	for d, st := range stats {
		presentFrac := 1 - float64(st.NotPresent)/float64(train.Len())
		if math.Abs(presentFrac-cfg.Presence[d]) > 0.08 {
			t.Errorf("device %d presence = %.2f, config %.2f", d, presentFrac, cfg.Presence[d])
		}
	}
}

func TestStatsSumToDatasetSize(t *testing.T) {
	train, _ := MustGenerate(DefaultConfig())
	for d, st := range train.Stats() {
		total := st.NotPresent
		for _, c := range st.PerClass {
			total += c
		}
		if total != train.Len() {
			t.Errorf("device %d stats total %d, want %d", d, total, train.Len())
		}
	}
}

func TestClassImbalance(t *testing.T) {
	// Fig. 6 shows an imbalanced class distribution; car must dominate.
	train, _ := MustGenerate(DefaultConfig())
	var counts [NumClasses]int
	for _, s := range train.Samples {
		counts[s.Label]++
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2]) {
		t.Errorf("class counts %v, want car > bus > person", counts)
	}
	for c, n := range counts {
		if n == 0 {
			t.Errorf("class %s has no samples", ClassNames[c])
		}
	}
}

func TestDeviceBatchShapeAndContent(t *testing.T) {
	train, _ := MustGenerate(DefaultConfig())
	b := train.DeviceBatch(0, []int{0, 5, 10})
	wantShape := []int{3, ImageC, ImageH, ImageW}
	for i, d := range wantShape {
		if b.Dim(i) != d {
			t.Fatalf("batch shape %v, want %v", b.Shape(), wantShape)
		}
	}
	for p := 0; p < ImageSize; p++ {
		if b.Data()[ImageSize+p] != train.Samples[5].Views[0][p] {
			t.Fatal("batch row 1 does not match sample 5")
		}
	}
}

func TestDeviceBatchNilSelectsAll(t *testing.T) {
	_, test := MustGenerate(DefaultConfig())
	b := test.DeviceBatch(2, nil)
	if b.Dim(0) != test.Len() {
		t.Errorf("nil-indices batch rows = %d, want %d", b.Dim(0), test.Len())
	}
	labels := test.Labels(nil)
	if len(labels) != test.Len() {
		t.Errorf("nil-indices labels = %d, want %d", len(labels), test.Len())
	}
}

func TestAllDeviceBatches(t *testing.T) {
	train, _ := MustGenerate(DefaultConfig())
	bs := train.AllDeviceBatches(4, []int{0, 1})
	if len(bs) != 4 {
		t.Fatalf("got %d batches, want 4", len(bs))
	}
	for d, b := range bs {
		if b.Dim(0) != 2 {
			t.Errorf("device %d batch rows = %d, want 2", d, b.Dim(0))
		}
	}
}

func TestPresentIndicesExcludeAbsent(t *testing.T) {
	train, _ := MustGenerate(DefaultConfig())
	for d := 0; d < NumDevices; d++ {
		for _, idx := range train.PresentIndices(d) {
			if train.Samples[idx].ViewLabels[d] == NotPresent {
				t.Fatalf("PresentIndices(%d) returned absent sample %d", d, idx)
			}
		}
	}
}

func TestReorderDevices(t *testing.T) {
	train, _ := MustGenerate(DefaultConfig())
	sub := train.ReorderDevices([]int{5, 2})
	if sub.Devices() != 2 {
		t.Fatalf("reordered devices = %d, want 2", sub.Devices())
	}
	if sub.Len() != train.Len() {
		t.Fatalf("reordered samples = %d, want %d", sub.Len(), train.Len())
	}
	for i := 0; i < 20; i++ {
		if sub.Samples[i].ViewLabels[0] != train.Samples[i].ViewLabels[5] {
			t.Fatal("device 0 of reordered set must be old device 5")
		}
		if sub.Samples[i].ViewLabels[1] != train.Samples[i].ViewLabels[2] {
			t.Fatal("device 1 of reordered set must be old device 2")
		}
		for p := 0; p < 10; p++ {
			if sub.Samples[i].Views[0][p] != train.Samples[i].Views[5][p] {
				t.Fatal("view data must be shared, not regenerated")
			}
		}
	}
}

func TestReorderDevicesPanicsOutOfRange(t *testing.T) {
	train, _ := MustGenerate(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range device did not panic")
		}
	}()
	train.ReorderDevices([]int{0, 9})
}

func TestSubset(t *testing.T) {
	train, _ := MustGenerate(DefaultConfig())
	sub := train.Subset([]int{3, 7})
	if sub.Len() != 2 {
		t.Fatalf("subset size = %d, want 2", sub.Len())
	}
	if sub.Samples[0].Label != train.Samples[3].Label {
		t.Error("subset sample 0 mismatch")
	}
	if sub.Devices() != train.Devices() {
		t.Error("subset device count mismatch")
	}
}

func TestViewpointsDifferAcrossDevices(t *testing.T) {
	// The same object must look different from different cameras
	// (otherwise there is nothing to fuse).
	train, _ := MustGenerate(DefaultConfig())
	for _, s := range train.Samples {
		var present []int
		for d, lbl := range s.ViewLabels {
			if lbl != NotPresent {
				present = append(present, d)
			}
		}
		if len(present) < 2 {
			continue
		}
		a, b := s.Views[present[0]], s.Views[present[1]]
		diff := 0
		for p := range a {
			if a[p] != b[p] {
				diff++
			}
		}
		if diff == 0 {
			t.Fatal("two devices produced identical views")
		}
		return // one multi-view sample suffices
	}
}

func TestClassesAreVisuallyDistinct(t *testing.T) {
	// Average images per class from the clean device (device 5 has the
	// least noise) must differ substantially between classes.
	cfg := DefaultConfig()
	train, _ := MustGenerate(cfg)
	var sums [NumClasses][]float32
	var counts [NumClasses]int
	for _, s := range train.Samples {
		if s.ViewLabels[5] == NotPresent {
			continue
		}
		if sums[s.Label] == nil {
			sums[s.Label] = make([]float32, ImageSize)
		}
		for p, v := range s.Views[5] {
			sums[s.Label][p] += v
		}
		counts[s.Label]++
	}
	for a := 0; a < NumClasses; a++ {
		for b := a + 1; b < NumClasses; b++ {
			if counts[a] == 0 || counts[b] == 0 {
				continue
			}
			var dist float64
			for p := range sums[a] {
				d := float64(sums[a][p])/float64(counts[a]) - float64(sums[b][p])/float64(counts[b])
				dist += d * d
			}
			dist = math.Sqrt(dist)
			if dist < 1 {
				t.Errorf("mean images of %s and %s too close (L2 = %g)", ClassNames[a], ClassNames[b], dist)
			}
		}
	}
}
