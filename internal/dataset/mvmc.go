// Package dataset provides a synthetic stand-in for the multi-view
// multi-camera (MVMC) dataset used in the paper's evaluation (§IV-B). The
// original dataset (six cameras observing the same objects, 680 training
// and 171 test samples over three classes) is no longer downloadable, so
// this generator reproduces the properties the evaluation depends on:
//
//   - every sample is one object seen simultaneously by six devices;
//   - each class renders as a distinct geometric/color pattern, deformed by
//     a per-device viewpoint transform;
//   - objects are absent from some views (an all-grey frame labelled −1),
//     with per-device presence probabilities, which drives the wide spread
//     of individual device accuracies in Fig. 8 and the MP-vs-AP local
//     aggregation result in Table I;
//   - per-device noise levels differ (camera quality), further separating
//     individual accuracies;
//   - class frequencies are imbalanced across devices (Fig. 6).
//
// The generator is fully deterministic given a seed.
package dataset

import (
	"fmt"
	"math/rand"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// Dataset geometry shared with the paper's evaluation.
const (
	// NumClasses is |C|: car, bus and person (labels 0, 1, 2; §IV-B).
	NumClasses = 3
	// NumDevices is the number of end devices (cameras).
	NumDevices = 6
	// ImageC, ImageH, ImageW describe the 3×32×32 RGB input samples.
	ImageC = 3
	ImageH = 32
	ImageW = 32
	// NotPresent is the per-view label used when the object does not
	// appear in a device's frame.
	NotPresent = -1
)

// ImageSize is the number of float32 values in one view.
const ImageSize = ImageC * ImageH * ImageW

// ClassNames maps labels to the paper's class names.
var ClassNames = [NumClasses]string{"car", "bus", "person"}

// Sample is one object observed by all devices at the same instant.
type Sample struct {
	// Views holds one 3×32×32 image per device, flattened row-major
	// (channel, row, column). Absent views are all-grey frames.
	Views [][]float32
	// ViewLabels holds the per-view label: the object class when the
	// object appears in the frame, NotPresent otherwise.
	ViewLabels []int
	// Label is the ground-truth object class.
	Label int
}

// Dataset is an in-memory split of MVMC-like samples.
type Dataset struct {
	Samples []Sample
	devices int
}

// Config controls the synthetic generator.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Train and Test are the split sizes. The paper uses 680/171.
	Train, Test int
	// Devices is the number of cameras (paper: 6).
	Devices int
	// Presence[d] is the probability that the object appears in device
	// d's frame. Lower values starve a device of useful views, lowering
	// its individual accuracy exactly as blank frames do in the paper.
	Presence []float64
	// Noise[d] is the per-device Gaussian pixel-noise sigma (camera
	// quality).
	Noise []float64
	// ClassPriors are the global class frequencies (imbalanced, Fig. 6).
	ClassPriors []float64
}

// DefaultConfig returns the configuration used throughout the evaluation:
// six devices whose presence probabilities and noise levels span a wide
// quality range so that individual accuracies spread roughly 40–75% as in
// Fig. 8.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		Train:       680,
		Test:        171,
		Devices:     NumDevices,
		Presence:    []float64{0.48, 0.40, 0.58, 0.68, 0.76, 0.85},
		Noise:       []float64{0.85, 0.95, 0.75, 0.65, 0.55, 0.48},
		ClassPriors: []float64{0.45, 0.33, 0.22},
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Train <= 0 || c.Test <= 0 {
		return fmt.Errorf("dataset: split sizes must be positive, got %d/%d", c.Train, c.Test)
	}
	if c.Devices <= 0 {
		return fmt.Errorf("dataset: need at least one device, got %d", c.Devices)
	}
	if len(c.Presence) != c.Devices || len(c.Noise) != c.Devices {
		return fmt.Errorf("dataset: presence/noise must list %d devices", c.Devices)
	}
	if len(c.ClassPriors) != NumClasses {
		return fmt.Errorf("dataset: class priors must list %d classes", NumClasses)
	}
	var s float64
	for _, p := range c.ClassPriors {
		if p < 0 {
			return fmt.Errorf("dataset: negative class prior %g", p)
		}
		s += p
	}
	if s <= 0 {
		return fmt.Errorf("dataset: class priors sum to %g", s)
	}
	return nil
}

// Generate builds the train and test splits.
func Generate(cfg Config) (train, test *Dataset, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := func(n int) *Dataset {
		ds := &Dataset{Samples: make([]Sample, n), devices: cfg.Devices}
		for i := range ds.Samples {
			ds.Samples[i] = synthesizeSample(rng, cfg)
		}
		return ds
	}
	return gen(cfg.Train), gen(cfg.Test), nil
}

// MustGenerate is Generate for known-good configs; it panics on error.
func MustGenerate(cfg Config) (train, test *Dataset) {
	train, test, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return train, test
}

func sampleClass(rng *rand.Rand, priors []float64) int {
	var total float64
	for _, p := range priors {
		total += p
	}
	r := rng.Float64() * total
	for c, p := range priors {
		if r < p {
			return c
		}
		r -= p
	}
	return len(priors) - 1
}

func synthesizeSample(rng *rand.Rand, cfg Config) Sample {
	label := sampleClass(rng, cfg.ClassPriors)
	s := Sample{
		Views:      make([][]float32, cfg.Devices),
		ViewLabels: make([]int, cfg.Devices),
		Label:      label,
	}
	// Shared per-sample jitter: the same physical object pose seen from
	// every camera.
	jx := rng.Intn(7) - 3
	jy := rng.Intn(5) - 2
	present := 0
	for d := 0; d < cfg.Devices; d++ {
		if rng.Float64() < cfg.Presence[d] {
			s.Views[d] = renderView(rng, label, d, jx, jy, cfg.Noise[d])
			s.ViewLabels[d] = label
			present++
		} else {
			s.Views[d] = greyFrame()
			s.ViewLabels[d] = NotPresent
		}
	}
	// The dataset only contains objects that were captured by at least one
	// camera (every row of the paper's Fig. 5 has at least one real view).
	if present == 0 {
		d := rng.Intn(cfg.Devices)
		s.Views[d] = renderView(rng, label, d, jx, jy, cfg.Noise[d])
		s.ViewLabels[d] = label
	}
	return s
}

// greyFrame is the all-grey image the paper assigns to absent views.
func greyFrame() []float32 {
	img := make([]float32, ImageSize)
	for i := range img {
		img[i] = 0.5
	}
	return img
}

// classShape describes the rendered pattern for a class: a colored
// rectangle whose aspect ratio distinguishes the classes (wide car, large
// bus, tall thin person) plus a class-specific texture.
type classShape struct {
	w, h    int
	r, g, b float32
	stripes bool // horizontal stripe texture (car windows/wheels)
}

// The car and bus share a red-dominant palette and differ mainly in size
// and texture, which keeps them confusable under noise (as real vehicles
// are at 32×32), while the person silhouette is more distinctive.
var classShapes = [NumClasses]classShape{
	{w: 20, h: 10, r: 0.80, g: 0.30, b: 0.25, stripes: true}, // car
	{w: 24, h: 17, r: 0.80, g: 0.55, b: 0.20},                // bus
	{w: 6, h: 22, r: 0.25, g: 0.35, b: 0.80},                 // person
}

// deviceView is a fixed per-device viewpoint: a horizontal parallax shift,
// a foreshortening factor and a color gain (white balance).
type deviceView struct {
	shift    int
	squeezeW float64
	squeezeH float64
	gainR    float32
	gainG    float32
	gainB    float32
}

var deviceViews = [...]deviceView{
	{shift: -8, squeezeW: 0.70, squeezeH: 1.00, gainR: 0.95, gainG: 1.00, gainB: 1.05},
	{shift: 7, squeezeW: 0.80, squeezeH: 0.85, gainR: 1.08, gainG: 0.95, gainB: 0.92},
	{shift: -4, squeezeW: 1.00, squeezeH: 0.75, gainR: 1.00, gainG: 1.05, gainB: 0.95},
	{shift: 3, squeezeW: 0.90, squeezeH: 0.90, gainR: 0.92, gainG: 1.00, gainB: 1.02},
	{shift: -2, squeezeW: 1.10, squeezeH: 0.95, gainR: 1.02, gainG: 0.98, gainB: 1.00},
	{shift: 0, squeezeW: 1.00, squeezeH: 1.00, gainR: 1.00, gainG: 1.00, gainB: 1.00},
}

// renderView draws the class pattern as seen from device d with shared
// object jitter (jx, jy) and per-device noise.
func renderView(rng *rand.Rand, label, d, jx, jy int, noise float64) []float32 {
	img := make([]float32, ImageSize)
	// Background: dim textured clutter.
	for i := range img {
		img[i] = 0.35 + 0.1*rng.Float32()
	}
	// Distractor clutter: random rectangles that resemble no class in
	// particular but overlap all palettes, so devices cannot classify from
	// a single colored pixel.
	for k := rng.Intn(3); k > 0; k-- {
		drawRect(img, rng.Intn(ImageW), rng.Intn(ImageH),
			3+rng.Intn(8), 3+rng.Intn(8),
			[ImageC]float32{0.2 + 0.6*rng.Float32(), 0.2 + 0.6*rng.Float32(), 0.2 + 0.6*rng.Float32()}, 1)
	}
	shape := classShapes[label]
	view := deviceViews[d%len(deviceViews)]
	w := int(float64(shape.w) * view.squeezeW)
	h := int(float64(shape.h) * view.squeezeH)
	if w < 3 {
		w = 3
	}
	if h < 3 {
		h = 3
	}
	cx := ImageW/2 + view.shift + jx
	cy := ImageH/2 + jy
	x0, x1 := clampRange(cx-w/2, cx+w/2, ImageW)
	y0, y1 := clampRange(cy-h/2, cy+h/2, ImageH)
	// Per-view illumination: lighting varies between frames.
	bright := 0.65 + 0.35*rng.Float32()
	colors := [ImageC]float32{
		shape.r * view.gainR * bright,
		shape.g * view.gainG * bright,
		shape.b * view.gainB * bright,
	}
	for y := y0; y < y1; y++ {
		rowDim := float32(1)
		if shape.stripes && y%4 < 2 {
			rowDim = 0.45 // stripe texture
		}
		for x := x0; x < x1; x++ {
			for c := 0; c < ImageC; c++ {
				img[c*ImageH*ImageW+y*ImageW+x] = colors[c] * rowDim
			}
		}
	}
	// Partial occlusion: another object or structure sometimes blocks part
	// of the view.
	if rng.Float64() < 0.2 {
		occW := 4 + rng.Intn(8)
		drawRect(img, x0+rng.Intn(maxInt(1, x1-x0)), 0, occW, ImageH,
			[ImageC]float32{0.45, 0.45, 0.45}, 1)
	}
	if noise > 0 {
		for i := range img {
			img[i] += float32(rng.NormFloat64() * noise)
		}
	}
	// Clamp to valid pixel range.
	for i, v := range img {
		if v < 0 {
			img[i] = 0
		} else if v > 1 {
			img[i] = 1
		}
	}
	return img
}

// drawRect paints a w×h rectangle with its top-left corner at (x, y),
// clipped to the image, scaling the color by dim.
func drawRect(img []float32, x, y, w, h int, color [ImageC]float32, dim float32) {
	x0, x1 := clampRange(x, x+w, ImageW)
	y0, y1 := clampRange(y, y+h, ImageH)
	for yy := y0; yy < y1; yy++ {
		for xx := x0; xx < x1; xx++ {
			for c := 0; c < ImageC; c++ {
				img[c*ImageH*ImageW+yy*ImageW+xx] = color[c] * dim
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampRange(lo, hi, max int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > max {
		hi = max
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Devices returns the number of camera views per sample.
func (d *Dataset) Devices() int { return d.devices }

// Labels returns the ground-truth labels for the given sample indices; a
// nil indices slice selects every sample.
func (d *Dataset) Labels(indices []int) []int {
	if indices == nil {
		indices = d.allIndices()
	}
	out := make([]int, len(indices))
	for i, idx := range indices {
		out[i] = d.Samples[idx].Label
	}
	return out
}

// DeviceBatch assembles the [B, 3, 32, 32] input tensor for one device over
// the given sample indices; a nil indices slice selects every sample.
func (d *Dataset) DeviceBatch(device int, indices []int) *tensor.Tensor {
	if indices == nil {
		indices = d.allIndices()
	}
	t := tensor.New(len(indices), ImageC, ImageH, ImageW)
	td := t.Data()
	for i, idx := range indices {
		copy(td[i*ImageSize:(i+1)*ImageSize], d.Samples[idx].Views[device])
	}
	return t
}

// DeviceView returns one device's view of one sample as a
// [1, C, H, W] tensor sharing the dataset's storage — no copy, so the
// caller must not mutate it. It is the zero-allocation-path analogue of
// DeviceBatch(device, []int{idx}) used by the serving runtime's feeds.
func (d *Dataset) DeviceView(device, idx int) *tensor.Tensor {
	return tensor.FromSlice(d.Samples[idx].Views[device], 1, ImageC, ImageH, ImageW)
}

// AllDeviceBatches assembles the input tensors for the first k devices; a
// nil indices slice selects every sample.
func (d *Dataset) AllDeviceBatches(k int, indices []int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, k)
	for dev := 0; dev < k; dev++ {
		out[dev] = d.DeviceBatch(dev, indices)
	}
	return out
}

func (d *Dataset) allIndices() []int {
	idx := make([]int, len(d.Samples))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// DeviceStats is the Fig. 6 histogram for one device.
type DeviceStats struct {
	// PerClass counts views in which an object of each class appears.
	PerClass [NumClasses]int
	// NotPresent counts all-grey views.
	NotPresent int
}

// Stats computes the per-device class distribution (Fig. 6).
func (d *Dataset) Stats() []DeviceStats {
	stats := make([]DeviceStats, d.devices)
	for _, s := range d.Samples {
		for dev := 0; dev < d.devices; dev++ {
			if s.ViewLabels[dev] == NotPresent {
				stats[dev].NotPresent++
			} else {
				stats[dev].PerClass[s.ViewLabels[dev]]++
			}
		}
	}
	return stats
}

// PresentIndices returns the indices of samples whose object appears in the
// given device's frame. The paper trains individual device models only on
// views where the object is present ("Objects that are not present in a
// frame are not used during training", §IV-B).
func (d *Dataset) PresentIndices(device int) []int {
	var idx []int
	for i, s := range d.Samples {
		if s.ViewLabels[device] != NotPresent {
			idx = append(idx, i)
		}
	}
	return idx
}

// ReorderDevices returns a dataset whose device axis is permuted or
// subset according to order: new device i is old device order[i]. View
// data is shared, not copied. Fig. 8 uses this to add devices in
// worst-to-best individual-accuracy order.
func (d *Dataset) ReorderDevices(order []int) *Dataset {
	for _, o := range order {
		if o < 0 || o >= d.devices {
			panic(fmt.Sprintf("dataset: device %d out of range [0,%d)", o, d.devices))
		}
	}
	out := &Dataset{Samples: make([]Sample, len(d.Samples)), devices: len(order)}
	for i, s := range d.Samples {
		ns := Sample{
			Views:      make([][]float32, len(order)),
			ViewLabels: make([]int, len(order)),
			Label:      s.Label,
		}
		for j, o := range order {
			ns.Views[j] = s.Views[o]
			ns.ViewLabels[j] = s.ViewLabels[o]
		}
		out.Samples[i] = ns
	}
	return out
}

// Subset returns a new dataset sharing the selected samples.
func (d *Dataset) Subset(indices []int) *Dataset {
	out := &Dataset{Samples: make([]Sample, len(indices)), devices: d.devices}
	for i, idx := range indices {
		out.Samples[i] = d.Samples[idx]
	}
	return out
}
