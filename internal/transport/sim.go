package transport

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// LinkProfile describes a simulated network link.
type LinkProfile struct {
	// Latency is the one-way propagation delay added to every write.
	Latency time.Duration
	// BandwidthBps is the serialization rate in bytes per second; zero
	// means unlimited.
	BandwidthBps int64
}

// Common profiles for the hierarchy tiers. The numbers follow the typical
// edge-computing setting the paper motivates: devices reach the local
// gateway over a constrained wireless link, while the cloud sits behind a
// wide-area path with higher latency.
var (
	// DeviceToGateway models a low-power local wireless link.
	DeviceToGateway = LinkProfile{Latency: 2 * time.Millisecond, BandwidthBps: 250 << 10}
	// GatewayToCloud models a WAN path to a datacenter.
	GatewayToCloud = LinkProfile{Latency: 30 * time.Millisecond, BandwidthBps: 2 << 20}
	// GatewayToEdge models a nearby edge (fog) node.
	GatewayToEdge = LinkProfile{Latency: 5 * time.Millisecond, BandwidthBps: 1 << 20}
)

// TransferTime returns the simulated time to move n bytes across the link:
// latency plus serialization at the configured bandwidth.
func (p LinkProfile) TransferTime(n int) time.Duration {
	d := p.Latency
	if p.BandwidthBps > 0 {
		d += p.SerializeTime(n)
	}
	return d
}

// SerializeTime returns the time the link is occupied putting n bytes on
// the wire at the configured bandwidth (zero when unlimited).
func (p LinkProfile) SerializeTime(n int) time.Duration {
	if p.BandwidthBps <= 0 {
		return 0
	}
	return time.Duration(int64(n) * int64(time.Second) / p.BandwidthBps)
}

// simConn imposes a link profile on writes. The sender is blocked only for
// the serialization time — the period the link is actually occupied —
// while the propagation latency is applied by an order-preserving delivery
// queue, so multiple frames can be "in flight" at once exactly as on a
// real link. This is what lets concurrent sessions sharing one connection
// overlap propagation delays instead of serializing on them.
type simConn struct {
	net.Conn
	profile LinkProfile

	wmu    sync.Mutex // serializes senders (the link is one wire)
	sendCh chan delayedFrame

	errMu sync.Mutex
	err   error

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

type delayedFrame struct {
	data      []byte
	deliverAt time.Time
}

// Simulate wraps a connection so every write experiences the link's
// serialization delay (sender-side, where a constrained uplink throttles a
// real device) and its propagation latency (in-flight, overlapping later
// writes).
func Simulate(c net.Conn, p LinkProfile) net.Conn {
	s := &simConn{
		Conn:    c,
		profile: p,
		sendCh:  make(chan delayedFrame, 256),
		done:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.deliverLoop()
	return s
}

func (c *simConn) deliverLoop() {
	defer c.wg.Done()
	for {
		select {
		case f := <-c.sendCh:
			if d := time.Until(f.deliverAt); d > 0 {
				time.Sleep(d)
			}
			if _, err := c.Conn.Write(f.data); err != nil {
				c.setErr(err)
				return
			}
		case <-c.done:
			// Flush whatever is still in flight without further delay.
			for {
				select {
				case f := <-c.sendCh:
					if _, err := c.Conn.Write(f.data); err != nil {
						c.setErr(err)
						return
					}
				default:
					return
				}
			}
		}
	}
}

func (c *simConn) setErr(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

func (c *simConn) getErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

func (c *simConn) Write(b []byte) (int, error) {
	if err := c.getErr(); err != nil {
		return 0, err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if d := c.profile.SerializeTime(len(b)); d > 0 {
		time.Sleep(d)
	}
	frame := delayedFrame{
		data:      append([]byte(nil), b...),
		deliverAt: time.Now().Add(c.profile.Latency),
	}
	select {
	case c.sendCh <- frame:
		return len(b), nil
	case <-c.done:
		return 0, net.ErrClosed
	}
}

// Close flushes in-flight frames and closes the underlying connection.
func (c *simConn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
	return c.Conn.Close()
}

// SimTransport decorates a transport so every dialed connection
// experiences a link profile. Listeners are passed through unchanged; the
// delay is applied on the dialer's writes (its uplink).
type SimTransport struct {
	Inner   Transport
	Profile LinkProfile
}

var _ Transport = SimTransport{}

// Listen delegates to the inner transport.
func (s SimTransport) Listen(addr string) (net.Listener, error) {
	return s.Inner.Listen(addr)
}

// Dial delegates to the inner transport and wraps the connection with the
// link simulation.
func (s SimTransport) Dial(ctx context.Context, addr string) (net.Conn, error) {
	c, err := s.Inner.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return Simulate(c, s.Profile), nil
}

// RouteSim decorates a transport so each dialed connection experiences a
// per-address link profile — device uplinks and the WAN path to the cloud
// carry different latency/bandwidth within one cluster. Listeners pass
// through unchanged; the delay applies to the dialer's writes.
type RouteSim struct {
	Inner Transport
	// Pick returns the link profile for an address.
	Pick func(addr string) LinkProfile
}

var _ Transport = RouteSim{}

// Listen delegates to the inner transport.
func (r RouteSim) Listen(addr string) (net.Listener, error) {
	return r.Inner.Listen(addr)
}

// Dial delegates to the inner transport and wraps the connection with the
// address's link simulation.
func (r RouteSim) Dial(ctx context.Context, addr string) (net.Conn, error) {
	c, err := r.Inner.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return Simulate(c, r.Pick(addr)), nil
}

// CountingConn wraps a connection and counts bytes read and written. It is
// safe for concurrent Read/Write as long as each direction has a single
// user, which is how the cluster nodes use connections.
type CountingConn struct {
	net.Conn
	read    atomic.Int64
	written atomic.Int64
}

// NewCountingConn wraps c with byte counters.
func NewCountingConn(c net.Conn) *CountingConn {
	return &CountingConn{Conn: c}
}

// Read implements net.Conn.
func (c *CountingConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	c.read.Add(int64(n))
	return n, err
}

// Write implements net.Conn.
func (c *CountingConn) Write(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	c.written.Add(int64(n))
	return n, err
}

// BytesRead returns the total bytes read so far.
func (c *CountingConn) BytesRead() int64 { return c.read.Load() }

// BytesWritten returns the total bytes written so far.
func (c *CountingConn) BytesWritten() int64 { return c.written.Load() }
