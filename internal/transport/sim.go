package transport

import (
	"net"
	"sync/atomic"
	"time"
)

// LinkProfile describes a simulated network link.
type LinkProfile struct {
	// Latency is the one-way propagation delay added to every write.
	Latency time.Duration
	// BandwidthBps is the serialization rate in bytes per second; zero
	// means unlimited.
	BandwidthBps int64
}

// Common profiles for the hierarchy tiers. The numbers follow the typical
// edge-computing setting the paper motivates: devices reach the local
// gateway over a constrained wireless link, while the cloud sits behind a
// wide-area path with higher latency.
var (
	// DeviceToGateway models a low-power local wireless link.
	DeviceToGateway = LinkProfile{Latency: 2 * time.Millisecond, BandwidthBps: 250 << 10}
	// GatewayToCloud models a WAN path to a datacenter.
	GatewayToCloud = LinkProfile{Latency: 30 * time.Millisecond, BandwidthBps: 2 << 20}
	// GatewayToEdge models a nearby edge (fog) node.
	GatewayToEdge = LinkProfile{Latency: 5 * time.Millisecond, BandwidthBps: 1 << 20}
)

// TransferTime returns the simulated time to move n bytes across the link:
// latency plus serialization at the configured bandwidth.
func (p LinkProfile) TransferTime(n int) time.Duration {
	d := p.Latency
	if p.BandwidthBps > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / p.BandwidthBps)
	}
	return d
}

// simConn delays writes according to a link profile.
type simConn struct {
	net.Conn
	profile LinkProfile
}

// Simulate wraps a connection so every write experiences the link's
// latency and serialization delay (applied on the sender side, which is
// where a constrained uplink throttles a real device).
func Simulate(c net.Conn, p LinkProfile) net.Conn {
	return &simConn{Conn: c, profile: p}
}

func (c *simConn) Write(b []byte) (int, error) {
	time.Sleep(c.profile.TransferTime(len(b)))
	return c.Conn.Write(b)
}

// SimTransport decorates a transport so every dialed connection
// experiences a link profile. Listeners are passed through unchanged; the
// delay is applied on the dialer's writes (its uplink).
type SimTransport struct {
	Inner   Transport
	Profile LinkProfile
}

var _ Transport = SimTransport{}

// Listen delegates to the inner transport.
func (s SimTransport) Listen(addr string) (net.Listener, error) {
	return s.Inner.Listen(addr)
}

// Dial delegates to the inner transport and wraps the connection with the
// link simulation.
func (s SimTransport) Dial(addr string) (net.Conn, error) {
	c, err := s.Inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return Simulate(c, s.Profile), nil
}

// CountingConn wraps a connection and counts bytes read and written. It is
// safe for concurrent Read/Write as long as each direction has a single
// user, which is how the cluster nodes use connections.
type CountingConn struct {
	net.Conn
	read    atomic.Int64
	written atomic.Int64
}

// NewCountingConn wraps c with byte counters.
func NewCountingConn(c net.Conn) *CountingConn {
	return &CountingConn{Conn: c}
}

// Read implements net.Conn.
func (c *CountingConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	c.read.Add(int64(n))
	return n, err
}

// Write implements net.Conn.
func (c *CountingConn) Write(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	c.written.Add(int64(n))
	return n, err
}

// BytesRead returns the total bytes read so far.
func (c *CountingConn) BytesRead() int64 { return c.read.Load() }

// BytesWritten returns the total bytes written so far.
func (c *CountingConn) BytesWritten() int64 { return c.written.Load() }
