// Package transport abstracts the links between DDNN cluster nodes. It
// provides a real TCP transport, an in-memory transport for tests and
// single-process simulation, a link simulator that imposes propagation
// latency and serialization bandwidth (modelling the bandwidth-constrained
// wireless uplinks of §IV-B), and byte-counting connection wrappers that
// feed the communication accounting.
package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
)

// Transport creates listeners and connections by address. Dial honors the
// context's deadline and cancellation, so callers bound connection setup
// with the same ctx that governs the session using the connection.
type Transport interface {
	Listen(addr string) (net.Listener, error)
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

// TCP is the production transport over real sockets.
type TCP struct{}

var _ Transport = TCP{}

// Listen opens a TCP listener.
func (TCP) Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return l, nil
}

// Dial connects to a TCP listener.
func (TCP) Dial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return c, nil
}

// Mem is an in-process transport: listeners register under arbitrary
// address strings and dials create net.Pipe pairs. It allows the full
// cluster protocol stack to run in one process with no sockets.
type Mem struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

var _ Transport = (*Mem)(nil)

// NewMem builds an empty in-memory transport.
func NewMem() *Mem {
	return &Mem{listeners: make(map[string]*memListener)}
}

// Listen registers a listener under addr.
func (m *Mem) Listen(addr string) (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: address %s already in use", addr)
	}
	l := &memListener{
		addr:   addr,
		conns:  make(chan net.Conn, 16),
		closed: make(chan struct{}),
		parent: m,
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial connects to a registered listener.
func (m *Mem) Dial(ctx context.Context, addr string) (net.Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %s", addr)
	}
	select {
	case <-l.closed:
		return nil, fmt.Errorf("transport: listener at %s closed", addr)
	default:
	}
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("transport: listener at %s closed", addr)
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, fmt.Errorf("transport: dial %s: %w", addr, ctx.Err())
	}
}

func (m *Mem) remove(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.listeners, addr)
}

type memListener struct {
	addr      string
	conns     chan net.Conn
	closed    chan struct{}
	closeOnce sync.Once
	parent    *Mem
}

var _ net.Listener = (*memListener)(nil)

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.parent.remove(l.addr)
		// Close conns that were dialed but never accepted, so their
		// peers observe EOF instead of hanging on a reader-less pipe.
		for {
			select {
			case c := <-l.conns:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }
