package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestMemDialAndListen(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("gateway")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if string(buf) != "hello" {
			t.Errorf("got %q, want hello", buf)
		}
		if _, err := conn.Write([]byte("world")); err != nil {
			t.Errorf("write: %v", err)
		}
	}()

	c, err := m.Dial(context.Background(), "gateway")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Errorf("got %q, want world", buf)
	}
	wg.Wait()
}

func TestMemDialUnknownAddress(t *testing.T) {
	if _, err := NewMem().Dial(context.Background(), "nowhere"); err == nil {
		t.Error("Dial to unregistered address succeeded")
	}
}

func TestMemDialHonorsContext(t *testing.T) {
	m := NewMem()
	if _, err := m.Listen("full"); err != nil {
		t.Fatal(err)
	}
	// Saturate the listener's accept queue so Dial must block, then
	// cancel: the dial has to fail with the context error, not hang.
	ctx, cancel := context.WithCancel(context.Background())
	saturated := false
	for i := 0; i < 64 && !saturated; i++ {
		done := make(chan error, 1)
		go func() {
			_, err := m.Dial(ctx, "full")
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("dial %d failed before saturation: %v", i, err)
			}
		case <-time.After(50 * time.Millisecond):
			saturated = true
		}
	}
	if !saturated {
		t.Skip("accept queue never filled; cannot exercise blocking dial")
	}
	cancel()
	// The blocked dial goroutine exits via ctx; give it a moment.
	time.Sleep(20 * time.Millisecond)
	if _, err := m.Dial(ctx, "full"); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled dial err = %v, want context.Canceled", err)
	}
}

func TestMemDuplicateListen(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := m.Listen("a"); err == nil {
		t.Error("duplicate Listen succeeded")
	}
}

func TestMemListenerCloseUnblocksAccept(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("Accept after Close = %v, want net.ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock after Close")
	}
}

func TestMemAddressReusableAfterClose(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := m.Listen("a")
	if err != nil {
		t.Fatalf("re-Listen after Close: %v", err)
	}
	l2.Close()
}

func TestTCPLoopback(t *testing.T) {
	tr := TCP{}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(conn, conn) // echo
	}()

	c, err := tr.Dial(context.Background(), l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("ping")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Errorf("echo = %q, want ping", buf)
	}
}

func TestLinkProfileTransferTime(t *testing.T) {
	tests := []struct {
		name string
		p    LinkProfile
		n    int
		want time.Duration
	}{
		{"latency only", LinkProfile{Latency: 10 * time.Millisecond}, 1 << 20, 10 * time.Millisecond},
		{"bandwidth only", LinkProfile{BandwidthBps: 1000}, 500, 500 * time.Millisecond},
		{"both", LinkProfile{Latency: time.Millisecond, BandwidthBps: 1 << 20}, 1 << 20, time.Millisecond + time.Second},
		{"zero bytes", LinkProfile{Latency: time.Millisecond, BandwidthBps: 1000}, 0, time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.TransferTime(tt.n); got != tt.want {
				t.Errorf("TransferTime(%d) = %v, want %v", tt.n, got, tt.want)
			}
		})
	}
}

func TestSimulateDelaysDelivery(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	arrived := make(chan time.Time, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1)
		if _, err := io.ReadFull(conn, buf); err == nil {
			arrived <- time.Now()
		}
	}()
	raw, err := m.Dial(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	sim := Simulate(raw, LinkProfile{Latency: 30 * time.Millisecond})
	defer sim.Close()
	start := time.Now()
	if _, err := sim.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	// Propagation happens in flight: the sender returns quickly, the
	// receiver sees the byte only after the link latency.
	if sendTime := time.Since(start); sendTime > 25*time.Millisecond {
		t.Errorf("sender blocked %v; propagation must not occupy the sender", sendTime)
	}
	select {
	case at := <-arrived:
		if elapsed := at.Sub(start); elapsed < 30*time.Millisecond {
			t.Errorf("delivered after %v, want ≥ 30ms", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("byte never delivered")
	}
}

func TestSimulateOverlapsPropagation(t *testing.T) {
	// Two back-to-back writes share the link: with in-flight propagation
	// both must arrive in ~one latency, not two.
	m := NewMem()
	l, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan time.Time, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 2)
		if _, err := io.ReadFull(conn, buf); err == nil {
			done <- time.Now()
		}
	}()
	raw, err := m.Dial(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	sim := Simulate(raw, LinkProfile{Latency: 50 * time.Millisecond})
	defer sim.Close()
	start := time.Now()
	if _, err := sim.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	select {
	case at := <-done:
		if elapsed := at.Sub(start); elapsed > 90*time.Millisecond {
			t.Errorf("two frames took %v, want ~50ms (in-flight overlap), not 100ms", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("frames never delivered")
	}
}

func TestSimTransportWrapsDials(t *testing.T) {
	mem := NewMem()
	l, err := mem.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn)
	}()
	sim := SimTransport{Inner: mem, Profile: LinkProfile{BandwidthBps: 10}}
	c, err := sim.Dial(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	// 1 byte at 10 B/s serializes for 100ms on the sender.
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("dialed conn wrote in %v, want ≥ 100ms serialization", elapsed)
	}
	// Listeners pass through unchanged.
	if _, err := sim.Listen("b"); err != nil {
		t.Errorf("Listen through SimTransport: %v", err)
	}
}

func TestSimTransportDialError(t *testing.T) {
	sim := SimTransport{Inner: NewMem()}
	if _, err := sim.Dial(context.Background(), "missing"); err == nil {
		t.Error("Dial to missing address succeeded")
	}
}

func TestCountingConn(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 3)
		io.ReadFull(conn, buf)
		conn.Write([]byte("abcde"))
	}()
	raw, err := m.Dial(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	cc := NewCountingConn(raw)
	if _, err := cc.Write([]byte("xyz")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(cc, buf); err != nil {
		t.Fatal(err)
	}
	if got := cc.BytesWritten(); got != 3 {
		t.Errorf("BytesWritten = %d, want 3", got)
	}
	if got := cc.BytesRead(); got != 5 {
		t.Errorf("BytesRead = %d, want 5", got)
	}
}
