// Package cliutil holds small flag helpers shared by the cmd binaries.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// AddrList is a repeatable address flag (flag.Value): each occurrence
// appends one address, and an occurrence may also hold a
// comma-separated list. ddnn-gateway and ddnn-edge use it for their
// replica address flags.
type AddrList []string

// String renders the accumulated addresses.
func (a *AddrList) String() string { return strings.Join(*a, ",") }

// Set appends one flag occurrence's addresses.
func (a *AddrList) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			*a = append(*a, s)
		}
	}
	return nil
}

// ParseInts parses a comma-separated list of integers no smaller than
// min, ignoring empty elements. ddnn-bench (-replicas) and ddnn-sim
// (-fail) share it for their list flags.
func ParseInts(s string, min int) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < min {
			return nil, fmt.Errorf("bad list entry %q (want integer >= %d)", part, min)
		}
		out = append(out, n)
	}
	return out, nil
}
