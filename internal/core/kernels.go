package core

import "github.com/ddnn/ddnn-go/internal/tensor"

// KernelPath reports the name of the active compute-kernel dispatch
// path ("naive", "go" or "simd") every section forward runs on. It is
// selected at startup — best supported path by default, forced via the
// DDNN_KERNELS environment variable — and surfaced here so serving
// binaries can log what the process actually executes.
func KernelPath() string { return tensor.CurrentKernelPath().String() }
