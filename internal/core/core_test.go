package core

import (
	"math"
	"sync"
	"testing"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/branchy"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// smallData returns a reduced dataset for fast training tests.
func smallData(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	dcfg := dataset.DefaultConfig()
	dcfg.Train, dcfg.Test = 120, 40
	return dataset.MustGenerate(dcfg)
}

// trainedFixture trains one small DDNN once and shares it across the tests
// that need a converged model rather than architecture checks.
var trainedFixture struct {
	once  sync.Once
	model *Model
	test  *dataset.Dataset
}

func trained(t *testing.T) (*Model, *dataset.Dataset) {
	t.Helper()
	trainedFixture.once.Do(func() {
		dcfg := dataset.DefaultConfig()
		dcfg.Train, dcfg.Test = 240, 60
		train, test := dataset.MustGenerate(dcfg)
		m := MustNewModel(smallConfig())
		tc := DefaultTrainConfig()
		tc.Epochs = 15
		if _, err := m.Train(train, tc); err != nil {
			panic(err)
		}
		trainedFixture.model, trainedFixture.test = m, test
	})
	return trainedFixture.model, trainedFixture.test
}

// smallConfig returns a reduced model for fast tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.CloudFilters = 8
	return cfg
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		wantOK bool
	}{
		{"default", func(c *Config) {}, true},
		{"edge tier", func(c *Config) { c.UseEdge = true }, true},
		{"zero devices", func(c *Config) { c.Devices = 0 }, false},
		{"one class", func(c *Config) { c.Classes = 1 }, false},
		{"bad input", func(c *Config) { c.InputH = 0 }, false},
		{"non-divisible input", func(c *Config) { c.InputH = 30 }, false},
		{"zero device filters", func(c *Config) { c.DeviceFilters = 0 }, false},
		{"zero cloud filters", func(c *Config) { c.CloudFilters = 0 }, false},
		{"bad local agg", func(c *Config) { c.LocalAgg = 0 }, false},
		{"bad cloud agg", func(c *Config) { c.CloudAgg = 99 }, false},
		{"edge without filters", func(c *Config) { c.UseEdge = true; c.EdgeFilters = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.wantOK {
				t.Errorf("Validate() err = %v, want ok=%v", err, tt.wantOK)
			}
		})
	}
}

func TestCommCostMatchesTableII(t *testing.T) {
	// Table II endpoints for f=4, o=256, |C|=3: T=1.0 (l=100%) costs 12 B;
	// T=0.1 (l=0%) costs 140 B.
	cfg := DefaultConfig()
	cfg.DeviceFilters = 4
	if got := cfg.CommCostBytes(1.0); got != 12 {
		t.Errorf("CommCostBytes(l=1) = %g, want 12", got)
	}
	if got := cfg.CommCostBytes(0); got != 140 {
		t.Errorf("CommCostBytes(l=0) = %g, want 140", got)
	}
	// The paper's headline operating point: l=60.82% costs ≈62 B.
	if got := cfg.CommCostBytes(0.6082); math.Abs(got-62.15) > 0.1 {
		t.Errorf("CommCostBytes(l=0.6082) = %g, want ≈62", got)
	}
}

func TestRawOffloadBaseline(t *testing.T) {
	// §IV-H: a 32×32 RGB image costs 3072 B.
	if got := DefaultConfig().RawOffloadBytes(); got != 3072 {
		t.Errorf("RawOffloadBytes = %d, want 3072", got)
	}
}

func TestNewModelAllAggregationCombos(t *testing.T) {
	for _, local := range agg.Schemes() {
		for _, cloud := range agg.Schemes() {
			cfg := smallConfig()
			cfg.LocalAgg, cfg.CloudAgg = local, cloud
			m, err := NewModel(cfg)
			if err != nil {
				t.Fatalf("%v-%v: %v", local, cloud, err)
			}
			if m.ParamCount() == 0 {
				t.Errorf("%v-%v: no parameters", local, cloud)
			}
		}
	}
}

func TestModelDeterministicConstruction(t *testing.T) {
	cfg := smallConfig()
	a := MustNewModel(cfg)
	b := MustNewModel(cfg)
	as, bs := a.StateDict(), b.StateDict()
	for i := range as {
		for j, v := range as[i].T.Data() {
			if bs[i].T.Data()[j] != v {
				t.Fatalf("tensor %q differs between identically-seeded models", as[i].Name)
			}
		}
	}
}

func TestInferShapes(t *testing.T) {
	_, test := smallData(t)
	m := MustNewModel(smallConfig())
	xs := test.AllDeviceBatches(m.Cfg.Devices, []int{0, 1, 2})
	logits := m.Infer(xs, nil)
	if logits.Local.Dim(0) != 3 || logits.Local.Dim(1) != m.Cfg.Classes {
		t.Errorf("local logits shape %v", logits.Local.Shape())
	}
	if logits.Cloud.Dim(0) != 3 || logits.Cloud.Dim(1) != m.Cfg.Classes {
		t.Errorf("cloud logits shape %v", logits.Cloud.Shape())
	}
	if logits.Edge != nil {
		t.Error("edge logits from a model without edge tier")
	}
}

func TestEdgeModelProducesThreeExits(t *testing.T) {
	_, test := smallData(t)
	cfg := smallConfig()
	cfg.UseEdge = true
	m := MustNewModel(cfg)
	xs := test.AllDeviceBatches(m.Cfg.Devices, []int{0, 1})
	logits := m.Infer(xs, nil)
	if logits.Edge == nil {
		t.Fatal("edge-tier model produced no edge logits")
	}
	if logits.Edge.Dim(1) != cfg.Classes {
		t.Errorf("edge logits shape %v", logits.Edge.Shape())
	}
	if cfg.ExitCount() != 3 {
		t.Errorf("ExitCount = %d, want 3", cfg.ExitCount())
	}
}

func TestMixedPrecisionCloud(t *testing.T) {
	train, test := smallData(t)
	cfg := smallConfig()
	cfg.FloatCloud = true
	m := MustNewModel(cfg)

	// Mixed-precision cloud must cost ≈32× the binary cloud's weight
	// memory while the device sections stay binary and small.
	binary := MustNewModel(smallConfig())
	if m.DeviceMemoryBytes() != binary.DeviceMemoryBytes() {
		t.Errorf("device memory changed: %d vs %d", m.DeviceMemoryBytes(), binary.DeviceMemoryBytes())
	}
	if m.CloudMemoryBytes() <= 10*binary.CloudMemoryBytes() {
		t.Errorf("float cloud memory %d B not ≫ binary %d B", m.CloudMemoryBytes(), binary.CloudMemoryBytes())
	}

	tc := DefaultTrainConfig()
	tc.Epochs = 12
	if _, err := m.Train(train, tc); err != nil {
		t.Fatal(err)
	}
	res := m.Evaluate(test, nil, 16)
	if res.CloudAccuracy() < 0.34 {
		t.Errorf("mixed-precision cloud accuracy %g below chance", res.CloudAccuracy())
	}
}

func TestEdgeModelEvaluateAndStagedInference(t *testing.T) {
	train, test := smallData(t)
	cfg := smallConfig()
	cfg.UseEdge = true
	m := MustNewModel(cfg)
	tc := DefaultTrainConfig()
	tc.Epochs = 3
	if _, err := m.Train(train, tc); err != nil {
		t.Fatal(err)
	}
	res := m.Evaluate(test, nil, 16)
	if res.EdgeProbs == nil {
		t.Fatal("edge model evaluation produced no edge probabilities")
	}
	if acc := res.EdgeAccuracy(); acc < 0 || acc > 1 {
		t.Errorf("edge accuracy %g out of range", acc)
	}
	// Three-exit staged inference: fractions over local/edge/cloud sum to 1.
	pol := branchy.NewPolicy(0.5, 0.8, 1)
	fr := res.ExitFractions(pol)
	if len(fr) != 3 {
		t.Fatalf("got %d exit fractions, want 3", len(fr))
	}
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("exit fractions sum to %g", sum)
	}
	// EdgeAccuracy of a no-edge result is defined as 0.
	plain := (&EvalResult{Labels: []int{0}, LocalProbs: [][]float32{{1, 0, 0}}, CloudProbs: [][]float32{{1, 0, 0}}})
	if plain.EdgeAccuracy() != 0 {
		t.Error("EdgeAccuracy without edge tier must be 0")
	}
}

func TestTrainStepAccumulatesAllGradients(t *testing.T) {
	// Every parameter must receive gradient from the joint loss; a zero
	// gradient means a broken routing path through an aggregator.
	train, _ := smallData(t)
	m := MustNewModel(smallConfig())
	xs := train.AllDeviceBatches(m.Cfg.Devices, []int{0, 1, 2, 3, 4, 5, 6, 7})
	labels := train.Labels([]int{0, 1, 2, 3, 4, 5, 6, 7})
	nn.ZeroGrads(m.Params())
	total, perExit := m.TrainStep(xs, labels)
	if total <= 0 {
		t.Fatalf("loss = %g, want > 0", total)
	}
	if len(perExit) != 2 {
		t.Fatalf("got %d per-exit losses, want 2", len(perExit))
	}
	zero := 0
	for _, p := range m.Params() {
		if p.Grad.L2Norm() == 0 {
			zero++
			t.Logf("zero gradient: %s", p.Name)
		}
	}
	// Batch-norm βγ at binarized boundaries can legitimately have tiny
	// gradients, but not whole swaths of parameters.
	if zero > 2 {
		t.Errorf("%d parameters received no gradient", zero)
	}
}

func TestEdgeTrainStepThreeLosses(t *testing.T) {
	train, _ := smallData(t)
	cfg := smallConfig()
	cfg.UseEdge = true
	m := MustNewModel(cfg)
	xs := train.AllDeviceBatches(m.Cfg.Devices, []int{0, 1, 2, 3})
	labels := train.Labels([]int{0, 1, 2, 3})
	nn.ZeroGrads(m.Params())
	_, perExit := m.TrainStep(xs, labels)
	if len(perExit) != 3 {
		t.Fatalf("got %d per-exit losses, want 3 (local, edge, cloud)", len(perExit))
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	train, _ := smallData(t)
	m := MustNewModel(smallConfig())
	tc := DefaultTrainConfig()
	tc.Epochs = 6
	var losses []float64
	tc.Progress = func(epoch int, loss float64) { losses = append(losses, loss) }
	if _, err := m.Train(train, tc); err != nil {
		t.Fatal(err)
	}
	first, last := losses[0], losses[len(losses)-1]
	if last >= first {
		t.Errorf("loss did not decrease: %g → %g", first, last)
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	train, _ := smallData(t)
	m := MustNewModel(smallConfig())
	if _, err := m.Train(train, TrainConfig{Epochs: 0, BatchSize: 32}); err == nil {
		t.Error("Train accepted zero epochs")
	}
	if _, err := m.Train(train, TrainConfig{Epochs: 1, BatchSize: 0}); err == nil {
		t.Error("Train accepted zero batch size")
	}
}

func TestEvaluateAccuracyMeasures(t *testing.T) {
	m, test := trained(t)
	res := m.Evaluate(test, nil, 16)
	if len(res.LocalProbs) != test.Len() || len(res.CloudProbs) != test.Len() {
		t.Fatalf("evaluated %d/%d samples, want %d", len(res.LocalProbs), len(res.CloudProbs), test.Len())
	}
	for _, acc := range []float64{res.LocalAccuracy(), res.CloudAccuracy()} {
		if acc < 0 || acc > 1 {
			t.Errorf("accuracy %g out of [0,1]", acc)
		}
	}
	// A trained model must beat random guessing (1/3) at both exits.
	if res.LocalAccuracy() < 0.45 || res.CloudAccuracy() < 0.45 {
		t.Errorf("local %g / cloud %g below sanity bound", res.LocalAccuracy(), res.CloudAccuracy())
	}

	// T=1 exits everything locally, so overall accuracy equals local.
	polAll := branchy.NewPolicy(1, 1)
	if got := res.OverallAccuracy(polAll); got != res.LocalAccuracy() {
		t.Errorf("overall@T=1 = %g, want local accuracy %g", got, res.LocalAccuracy())
	}
	if got := res.LocalExitFraction(polAll); got != 1 {
		t.Errorf("local exit fraction @T=1 = %g, want 1", got)
	}

	// T=-1 exits nothing locally, so overall accuracy equals cloud.
	polNone := branchy.NewPolicy(-1, 1)
	if got := res.OverallAccuracy(polNone); got != res.CloudAccuracy() {
		t.Errorf("overall@T=-1 = %g, want cloud accuracy %g", got, res.CloudAccuracy())
	}
	if got := res.LocalExitFraction(polNone); got != 0 {
		t.Errorf("local exit fraction @T=-1 = %g, want 0", got)
	}

	// Exit fractions always sum to 1.
	for _, T := range []float64{0, 0.3, 0.5, 0.8, 1} {
		fr := res.ExitFractions(branchy.NewPolicy(T, 1))
		var sum float64
		for _, f := range fr {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("exit fractions at T=%g sum to %g", T, sum)
		}
	}
}

func TestEvaluateWithMaskDegradesGracefully(t *testing.T) {
	m, test := trained(t)
	full := m.Evaluate(test, nil, 16)
	mask := []bool{true, true, false, true, true, true} // device 2 failed
	degraded := m.Evaluate(test, mask, 16)
	if degraded.CloudAccuracy() < 0.33 {
		t.Errorf("masked cloud accuracy %g collapsed below chance", degraded.CloudAccuracy())
	}
	// Failure should not *improve* things dramatically; allow generous
	// slack since the dataset is tiny.
	if degraded.CloudAccuracy() > full.CloudAccuracy()+0.25 {
		t.Errorf("masked accuracy %g suspiciously above full %g", degraded.CloudAccuracy(), full.CloudAccuracy())
	}
}

func TestSectionCompositionMatchesInfer(t *testing.T) {
	// Running the model section by section (as the cluster runtime does)
	// must reproduce Infer exactly.
	train, test := smallData(t)
	m := MustNewModel(smallConfig())
	tc := DefaultTrainConfig()
	tc.Epochs = 2
	if _, err := m.Train(train, tc); err != nil {
		t.Fatal(err)
	}
	idx := []int{0, 1, 2}
	xs := test.AllDeviceBatches(m.Cfg.Devices, idx)
	want := m.Infer(xs, nil)

	var featList, vecList []*tensor.Tensor
	for d := 0; d < m.Cfg.Devices; d++ {
		f, v := m.DeviceForward(d, xs[d])
		featList = append(featList, f)
		vecList = append(vecList, v)
	}
	gotLocal := m.LocalAggregate(vecList, nil)
	gotCloud := m.CloudForward(featList, nil)
	for i, v := range want.Local.Data() {
		if gotLocal.Data()[i] != v {
			t.Fatalf("local logits differ at %d", i)
		}
	}
	for i, v := range want.Cloud.Data() {
		if gotCloud.Data()[i] != v {
			t.Fatalf("cloud logits differ at %d", i)
		}
	}
}

func TestPackUnpackFeatureRoundTrip(t *testing.T) {
	_, test := smallData(t)
	m := MustNewModel(smallConfig())
	x := test.DeviceBatch(0, []int{0})
	feat, _ := m.DeviceForward(0, x)
	bits := m.PackFeature(feat)
	wantBytes := (m.Cfg.DeviceFilters*m.Cfg.FeatureSize() + 7) / 8
	if len(bits) != wantBytes {
		t.Errorf("packed feature = %d bytes, want %d (Eq. 1: f·o/8)", len(bits), wantBytes)
	}
	back, err := m.UnpackFeature(bits, feat.Dim(1), feat.Dim(2), feat.Dim(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range feat.Data() {
		if back.Data()[i] != v {
			t.Fatalf("feature bit %d lost in packing", i)
		}
	}
}

func TestIndividualModelTrainsAboveChance(t *testing.T) {
	train, test := smallData(t)
	im, err := NewIndividualModel(smallConfig(), 5) // cleanest device
	if err != nil {
		t.Fatal(err)
	}
	tc := DefaultTrainConfig()
	tc.Epochs = 6
	if _, err := im.Train(train, tc); err != nil {
		t.Fatal(err)
	}
	if acc := im.Accuracy(test, 16); acc < 0.34 {
		t.Errorf("individual accuracy %g not above chance", acc)
	}
}

func TestIndividualModelRejectsBadDevice(t *testing.T) {
	if _, err := NewIndividualModel(smallConfig(), -1); err == nil {
		t.Error("accepted device -1")
	}
	if _, err := NewIndividualModel(smallConfig(), 6); err == nil {
		t.Error("accepted device beyond range")
	}
}

func TestDeviceMemoryUnder2KB(t *testing.T) {
	// §IV-F: all evaluated device configurations fit under 2 KB.
	for _, f := range []int{1, 2, 4, 8} {
		cfg := smallConfig()
		cfg.DeviceFilters = f
		m := MustNewModel(cfg)
		if got := m.DeviceMemoryBytes(); got >= 2048 {
			t.Errorf("device memory with f=%d: %d B, want < 2048", f, got)
		}
	}
}

func TestOutcomesFeedThresholdSearch(t *testing.T) {
	m, test := trained(t)
	res := m.Evaluate(test, nil, 16)
	outcomes := res.Outcomes()
	if len(outcomes) != test.Len() {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), test.Len())
	}
	best, err := branchy.SearchThreshold(outcomes, branchy.Grid(10))
	if err != nil {
		t.Fatal(err)
	}
	// The searched threshold's accuracy must match OverallAccuracy at the
	// same T (they are two routes to the same quantity).
	pol := branchy.NewPolicy(best.Threshold, 1)
	if got := res.OverallAccuracy(pol); math.Abs(got-best.Accuracy) > 1e-9 {
		t.Errorf("sweep accuracy %g vs OverallAccuracy %g at T=%g", best.Accuracy, got, best.Threshold)
	}
}
