package core

import (
	"fmt"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/bnn"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// The methods in this file expose the DDNN's sections individually so the
// cluster runtime can place each section on its own node (device, edge,
// cloud), mirroring how the trained network is mapped onto the physical
// hierarchy in §III-A. All methods run in inference mode and are
// read-only on a frozen model (NewModel, Train and LoadStateDict freeze
// automatically; see Freeze), so any number of concurrent sessions may
// call them on the same Model without locking.

// DeviceForward runs one device's section on a batch of its sensor views,
// returning the binarized feature map (uploaded to the cloud on a
// local-exit miss) and the exit summary vector sent to the local
// aggregator.
func (m *Model) DeviceForward(device int, x *tensor.Tensor) (feat, exitVec *tensor.Tensor) {
	return m.DeviceForwardPooled(device, x, nil)
}

// DeviceForwardPooled is DeviceForward drawing its outputs and scratch
// from a tensor pool: both returned tensors come from p, and the caller
// should Put them back once consumed. A nil pool allocates, making
// DeviceForward the p == nil special case.
func (m *Model) DeviceForwardPooled(device int, x *tensor.Tensor, p *tensor.Pool) (feat, exitVec *tensor.Tensor) {
	if device < 0 || device >= m.Cfg.Devices {
		panic(fmt.Sprintf("core: device %d out of range [0,%d)", device, m.Cfg.Devices))
	}
	dev := m.devices[device]
	feat = dev.convp.ForwardPooled(x, p)
	exitVec = dev.exit.forwardPooled(feat, p)
	return feat, exitVec
}

// LocalAggregate combines per-device exit vectors into local-exit logits.
// mask marks present devices (nil = all).
func (m *Model) LocalAggregate(exitVecs []*tensor.Tensor, mask []bool) *tensor.Tensor {
	return m.localAgg.Forward(exitVecs, mask, false)
}

// CloudForward aggregates per-device feature maps and runs the cloud
// section, returning cloud-exit logits. mask marks present devices (nil =
// all). It must not be used on models built with an edge tier; those use
// EdgeForward first.
func (m *Model) CloudForward(feats []*tensor.Tensor, mask []bool) *tensor.Tensor {
	return m.CloudForwardPooled(feats, mask, nil)
}

// CloudForwardPooled is CloudForward drawing the aggregation buffer,
// layer intermediates and returned logits from a tensor pool; the caller
// should Put the logits back once consumed. A nil pool allocates.
func (m *Model) CloudForwardPooled(feats []*tensor.Tensor, mask []bool, p *tensor.Pool) *tensor.Tensor {
	if m.edge != nil {
		panic("core: CloudForward on an edge-tier model; use EdgeForward")
	}
	cloudIn := agg.ForwardPooled(m.cloudAgg, feats, mask, p)
	logits := m.cloud.forwardPooled(cloudIn, p)
	p.Put(cloudIn)
	return logits
}

// EdgeForward aggregates device feature maps and runs the edge section,
// returning the edge feature map (forwarded to the cloud) and edge-exit
// logits. It is only valid on models built with UseEdge.
func (m *Model) EdgeForward(feats []*tensor.Tensor, mask []bool) (edgeFeat, edgeLogits *tensor.Tensor) {
	return m.EdgeForwardPooled(feats, mask, nil)
}

// EdgeForwardPooled is EdgeForward drawing its outputs and scratch from
// a tensor pool: both returned tensors come from p, and the caller
// should Put them back once consumed. A nil pool allocates.
func (m *Model) EdgeForwardPooled(feats []*tensor.Tensor, mask []bool, p *tensor.Pool) (edgeFeat, edgeLogits *tensor.Tensor) {
	if m.edge == nil {
		panic("core: EdgeForward on a model without an edge tier")
	}
	edgeIn := agg.ForwardPooled(m.edgeAgg, feats, mask, p)
	edgeFeat = m.edge.convp.ForwardPooled(edgeIn, p)
	p.Put(edgeIn)
	edgeLogits = m.edge.exit.forwardPooled(edgeFeat, p)
	return edgeFeat, edgeLogits
}

// CloudForwardFromEdge runs the cloud section on an edge feature map
// (edge-tier models only).
func (m *Model) CloudForwardFromEdge(edgeFeat *tensor.Tensor) *tensor.Tensor {
	return m.CloudForwardFromEdgePooled(edgeFeat, nil)
}

// CloudForwardFromEdgePooled is CloudForwardFromEdge against a tensor
// pool; the caller should Put the returned logits back once consumed.
func (m *Model) CloudForwardFromEdgePooled(edgeFeat *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	if m.edge == nil {
		panic("core: CloudForwardFromEdge on a model without an edge tier")
	}
	return m.cloud.forwardPooled(edgeFeat, p)
}

// PackFeature bit-packs one sample's binarized feature map for upload
// (eBNN representation, charged at f·o/8 bytes by Eq. 1). The tensor must
// hold a single sample [1, F, H, W].
func (m *Model) PackFeature(feat *tensor.Tensor) []byte {
	return bnn.PackSigns(feat)
}

// UnpackFeature reverses PackFeature into a [1, F, H, W] ±1 tensor.
func (m *Model) UnpackFeature(bits []byte, f, h, w int) (*tensor.Tensor, error) {
	return bnn.UnpackSigns(bits, 1, f, h, w)
}

// PackFeatureSample bit-packs sample i of a batched [N, F, H, W] feature
// map, producing exactly the bytes PackFeature would for that sample
// alone. Batched sessions pack each sample separately so partial exits
// can drop samples from the upload without re-packing the rest.
func (m *Model) PackFeatureSample(feat *tensor.Tensor, i int) []byte {
	return bnn.PackSignsSample(feat, i)
}

// UnpackFeatureInto reverses PackFeatureSample into sample row i of a
// pre-allocated batched ±1 tensor.
func (m *Model) UnpackFeatureInto(dst *tensor.Tensor, i int, bits []byte) error {
	return bnn.UnpackSignsInto(dst.Sample(i), bits)
}
