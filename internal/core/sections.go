package core

import (
	"fmt"

	"github.com/ddnn/ddnn-go/internal/bnn"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// The methods in this file expose the DDNN's sections individually so the
// cluster runtime can place each section on its own node (device, edge,
// cloud), mirroring how the trained network is mapped onto the physical
// hierarchy in §III-A. All methods run in inference mode and are
// read-only on a frozen model (NewModel, Train and LoadStateDict freeze
// automatically; see Freeze), so any number of concurrent sessions may
// call them on the same Model without locking.

// DeviceForward runs one device's section on a batch of its sensor views,
// returning the binarized feature map (uploaded to the cloud on a
// local-exit miss) and the exit summary vector sent to the local
// aggregator.
func (m *Model) DeviceForward(device int, x *tensor.Tensor) (feat, exitVec *tensor.Tensor) {
	if device < 0 || device >= m.Cfg.Devices {
		panic(fmt.Sprintf("core: device %d out of range [0,%d)", device, m.Cfg.Devices))
	}
	dev := m.devices[device]
	feat = dev.convp.Forward(x, false)
	n := feat.Dim(0)
	exitVec = dev.exit.forward(feat.Reshape(n, feat.Size()/n), false)
	return feat, exitVec
}

// LocalAggregate combines per-device exit vectors into local-exit logits.
// mask marks present devices (nil = all).
func (m *Model) LocalAggregate(exitVecs []*tensor.Tensor, mask []bool) *tensor.Tensor {
	return m.localAgg.Forward(exitVecs, mask, false)
}

// CloudForward aggregates per-device feature maps and runs the cloud
// section, returning cloud-exit logits. mask marks present devices (nil =
// all). It must not be used on models built with an edge tier; those use
// EdgeForward first.
func (m *Model) CloudForward(feats []*tensor.Tensor, mask []bool) *tensor.Tensor {
	if m.edge != nil {
		panic("core: CloudForward on an edge-tier model; use EdgeForward")
	}
	return m.cloud.forward(m.cloudAgg.Forward(feats, mask, false), false)
}

// EdgeForward aggregates device feature maps and runs the edge section,
// returning the edge feature map (forwarded to the cloud) and edge-exit
// logits. It is only valid on models built with UseEdge.
func (m *Model) EdgeForward(feats []*tensor.Tensor, mask []bool) (edgeFeat, edgeLogits *tensor.Tensor) {
	if m.edge == nil {
		panic("core: EdgeForward on a model without an edge tier")
	}
	edgeIn := m.edgeAgg.Forward(feats, mask, false)
	edgeFeat = m.edge.convp.Forward(edgeIn, false)
	n := edgeFeat.Dim(0)
	edgeLogits = m.edge.exit.forward(edgeFeat.Reshape(n, edgeFeat.Size()/n), false)
	return edgeFeat, edgeLogits
}

// CloudForwardFromEdge runs the cloud section on an edge feature map
// (edge-tier models only).
func (m *Model) CloudForwardFromEdge(edgeFeat *tensor.Tensor) *tensor.Tensor {
	if m.edge == nil {
		panic("core: CloudForwardFromEdge on a model without an edge tier")
	}
	return m.cloud.forward(edgeFeat, false)
}

// PackFeature bit-packs one sample's binarized feature map for upload
// (eBNN representation, charged at f·o/8 bytes by Eq. 1). The tensor must
// hold a single sample [1, F, H, W].
func (m *Model) PackFeature(feat *tensor.Tensor) []byte {
	return bnn.PackSigns(feat)
}

// UnpackFeature reverses PackFeature into a [1, F, H, W] ±1 tensor.
func (m *Model) UnpackFeature(bits []byte, f, h, w int) (*tensor.Tensor, error) {
	return bnn.UnpackSigns(bits, 1, f, h, w)
}

// PackFeatureSample bit-packs sample i of a batched [N, F, H, W] feature
// map, producing exactly the bytes PackFeature would for that sample
// alone. Batched sessions pack each sample separately so partial exits
// can drop samples from the upload without re-packing the rest.
func (m *Model) PackFeatureSample(feat *tensor.Tensor, i int) []byte {
	return bnn.PackSignsSample(feat, i)
}

// UnpackFeatureInto reverses PackFeatureSample into sample row i of a
// pre-allocated batched ±1 tensor.
func (m *Model) UnpackFeatureInto(dst *tensor.Tensor, i int, bits []byte) error {
	return bnn.UnpackSignsInto(dst.Sample(i), bits)
}
