package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// These tests pin the kernel dispatch layer at the section level: a
// model forward must produce bit-identical tensors on every dispatch
// path, keep the pooled zero-allocation contract on every path, and
// stay correct when many goroutines share one pool on the SIMD path
// (the -race run of this file is the data-race gate for the assembly
// kernels' Go wrappers).

// forEachKernelPath runs fn once per supported dispatch path, forcing
// the path for the duration and restoring the previous one after.
func forEachKernelPath(t *testing.T, fn func(t *testing.T, p tensor.KernelPath)) {
	t.Helper()
	prev := tensor.CurrentKernelPath()
	defer func() {
		if err := tensor.SetKernelPath(prev); err != nil {
			t.Fatal(err)
		}
	}()
	for _, p := range tensor.KernelPaths() {
		if err := tensor.SetKernelPath(p); err != nil {
			t.Fatalf("SetKernelPath(%v): %v", p, err)
		}
		fn(t, p)
	}
}

// TestSectionForwardsMatchAcrossPaths runs the device, cloud and edge
// section forwards once per dispatch path and requires bit-identical
// outputs: the chaos and staged-parity suites assume a classification
// is a pure function of the model and input, independent of which
// kernels the host selected.
func TestSectionForwardsMatchAcrossPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := DefaultConfig()
	cfg.UseEdge = true
	m := MustNewModel(cfg)
	x := tensor.New(2, m.Cfg.InputC, m.Cfg.InputH, m.Cfg.InputW)
	x.FillUniform(rng, 0, 1)
	feats := make([]*tensor.Tensor, m.Cfg.Devices)
	for d := range feats {
		feats[d] = tensor.New(2, m.Cfg.DeviceFilters, m.Cfg.FeatureH(), m.Cfg.FeatureW())
		feats[d].FillUniform(rng, -1, 1)
	}

	equal := func(t *testing.T, name string, p tensor.KernelPath, want, got *tensor.Tensor) {
		t.Helper()
		if !want.SameShape(got) {
			t.Fatalf("%s path=%v: shape %v vs %v", name, p, got.Shape(), want.Shape())
		}
		for i, w := range want.Data() {
			if got.Data()[i] != w {
				t.Fatalf("%s path=%v: element %d = %g, naive %g", name, p, i, got.Data()[i], w)
			}
		}
	}

	var feat, exitVec, ef, el, logits *tensor.Tensor
	forEachKernelPath(t, func(t *testing.T, p tensor.KernelPath) {
		f, e := m.DeviceForward(0, x)
		efp, elp := m.EdgeForward(feats, nil)
		lg := m.CloudForwardFromEdge(efp)
		if feat == nil { // first path (naive) is the reference
			feat, exitVec, ef, el, logits = f, e, efp, elp, lg
			return
		}
		equal(t, "device feat", p, feat, f)
		equal(t, "device exit", p, exitVec, e)
		equal(t, "edge feat", p, ef, efp)
		equal(t, "edge logits", p, el, elp)
		equal(t, "cloud logits", p, logits, lg)
	})
}

// TestDeviceForwardPooledZeroAllocsAllPaths extends the zero-alloc
// contract of TestDeviceForwardPooledZeroAllocs to every dispatch
// path: switching kernels must never reintroduce per-sample heap
// traffic (the SIMD wrappers are //go:noescape for exactly this).
func TestDeviceForwardPooledZeroAllocsAllPaths(t *testing.T) {
	m := MustNewModel(DefaultConfig())
	x := tensor.New(1, m.Cfg.InputC, m.Cfg.InputH, m.Cfg.InputW)
	x.FillUniform(rand.New(rand.NewSource(1)), 0, 1)
	forEachKernelPath(t, func(t *testing.T, p tensor.KernelPath) {
		pool := tensor.NewPool()
		run := func() {
			feat, exitVec := m.DeviceForwardPooled(0, x, pool)
			pool.Put(exitVec)
			pool.Put(feat)
		}
		for i := 0; i < 8; i++ {
			run()
		}
		if n := testing.AllocsPerRun(100, run); n > 0.5 {
			t.Errorf("path=%v: DeviceForwardPooled allocates %.2f times per run, want 0", p, n)
		}
	})
}

// TestSharedPoolConcurrentForwards runs many concurrent device and
// cloud forwards through one shared tensor.Pool on the default
// (best-supported, SIMD where available) path, each compared against
// the serial result. Under -race this is the concurrency gate for the
// dispatch layer and the assembly wrappers.
func TestSharedPoolConcurrentForwards(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m := MustNewModel(DefaultConfig())
	x := tensor.New(1, m.Cfg.InputC, m.Cfg.InputH, m.Cfg.InputW)
	x.FillUniform(rng, 0, 1)
	feats := make([]*tensor.Tensor, m.Cfg.Devices)
	for d := range feats {
		feats[d] = tensor.New(1, m.Cfg.DeviceFilters, m.Cfg.FeatureH(), m.Cfg.FeatureW())
		feats[d].FillUniform(rng, -1, 1)
	}
	wantFeats := make([]*tensor.Tensor, m.Cfg.Devices)
	wantExits := make([]*tensor.Tensor, m.Cfg.Devices)
	for d := 0; d < m.Cfg.Devices; d++ {
		wantFeats[d], wantExits[d] = m.DeviceForward(d, x)
	}
	wantLogits := m.CloudForward(feats, nil)

	pool := tensor.NewPool()
	const workers, rounds = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				d := (w + r) % m.Cfg.Devices
				feat, exitVec := m.DeviceForwardPooled(d, x, pool)
				for i, want := range wantFeats[d].Data() {
					if feat.Data()[i] != want {
						errs <- errMismatch("device feat", d, i)
						return
					}
				}
				for i, want := range wantExits[d].Data() {
					if exitVec.Data()[i] != want {
						errs <- errMismatch("device exit", d, i)
						return
					}
				}
				logits := m.CloudForwardPooled(feats, nil, pool)
				for i, want := range wantLogits.Data() {
					if logits.Data()[i] != want {
						errs <- errMismatch("cloud logits", d, i)
						return
					}
				}
				pool.Put(feat)
				pool.Put(exitVec)
				pool.Put(logits)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func errMismatch(what string, device, i int) error {
	return fmt.Errorf("%s: device %d element %d diverged from the serial result", what, device, i)
}
