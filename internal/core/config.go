// Package core implements the distributed deep neural network (DDNN) of
// the paper: a single jointly-trained DNN whose sections are mapped onto a
// distributed computing hierarchy of end devices, an optional edge tier and
// the cloud (Fig. 2), with an early exit at each physical boundary, learned
// feature aggregation across geographically distributed devices (§III-B),
// entropy-thresholded staged inference (§III-D), the communication-cost
// model of Eq. (1), and the accuracy measures of §III-F.
package core

import (
	"fmt"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/dataset"
)

// Config describes a DDNN instance. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Devices is the number of end devices (paper evaluation: 6).
	Devices int
	// Classes is |C|, the number of target classes.
	Classes int
	// InputC, InputH, InputW describe each device's sensor input.
	InputC, InputH, InputW int
	// DeviceFilters is f, the filter count of the per-device ConvP block.
	// The paper sweeps f in Fig. 9 and uses 4 for Fig. 7/Table II.
	DeviceFilters int
	// CloudFilters is the filter count of the cloud ConvP blocks.
	CloudFilters int
	// LocalAgg and CloudAgg select the aggregation schemes at the local
	// and cloud exit points (Table I). The paper settles on MP-CC.
	LocalAgg agg.Scheme
	CloudAgg agg.Scheme
	// UseEdge inserts an edge tier between the devices and the cloud
	// (configurations (d) and (e) of Fig. 2), adding an edge exit point.
	UseEdge bool
	// EdgeFilters is the filter count of the edge ConvP block.
	EdgeFilters int
	// EdgeAgg selects the aggregation scheme feeding the edge tier.
	EdgeAgg agg.Scheme
	// FloatCloud switches the cloud section to floating-point conv-pool
	// blocks and exit head while the device sections stay binary — the
	// mixed-precision scheme the paper proposes as future work in §VI.
	FloatCloud bool
	// Seed makes weight initialization deterministic.
	Seed int64
}

// DefaultConfig returns the architecture evaluated in §IV: six end devices
// with 4-filter ConvP blocks feeding an MP local aggregator and a CC cloud
// aggregator, no edge tier (configuration (c) of Fig. 2).
func DefaultConfig() Config {
	return Config{
		Devices:       dataset.NumDevices,
		Classes:       dataset.NumClasses,
		InputC:        dataset.ImageC,
		InputH:        dataset.ImageH,
		InputW:        dataset.ImageW,
		DeviceFilters: 4,
		CloudFilters:  16,
		LocalAgg:      agg.MP,
		CloudAgg:      agg.CC,
		EdgeFilters:   8,
		EdgeAgg:       agg.CC,
		Seed:          1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Devices <= 0:
		return fmt.Errorf("core: need at least one device, got %d", c.Devices)
	case c.Classes < 2:
		return fmt.Errorf("core: need at least two classes, got %d", c.Classes)
	case c.InputC <= 0 || c.InputH <= 0 || c.InputW <= 0:
		return fmt.Errorf("core: invalid input shape %d×%d×%d", c.InputC, c.InputH, c.InputW)
	case c.InputH%4 != 0 || c.InputW%4 != 0:
		return fmt.Errorf("core: input spatial dims must be divisible by 4, got %d×%d", c.InputH, c.InputW)
	case c.DeviceFilters <= 0:
		return fmt.Errorf("core: device filters must be positive, got %d", c.DeviceFilters)
	case c.CloudFilters <= 0:
		return fmt.Errorf("core: cloud filters must be positive, got %d", c.CloudFilters)
	case c.UseEdge && c.EdgeFilters <= 0:
		return fmt.Errorf("core: edge filters must be positive, got %d", c.EdgeFilters)
	}
	for _, s := range []agg.Scheme{c.LocalAgg, c.CloudAgg} {
		if s != agg.MP && s != agg.AP && s != agg.CC {
			return fmt.Errorf("core: unknown aggregation scheme %v", s)
		}
	}
	if c.UseEdge && c.EdgeAgg != agg.MP && c.EdgeAgg != agg.AP && c.EdgeAgg != agg.CC {
		return fmt.Errorf("core: unknown edge aggregation scheme %v", c.EdgeAgg)
	}
	return nil
}

// FeatureH and FeatureW return the spatial size of a device's uploaded
// feature map (the ConvP block halves each input dimension).
func (c Config) FeatureH() int { return c.InputH / 2 }

// FeatureW returns the feature-map width after the device ConvP block.
func (c Config) FeatureW() int { return c.InputW / 2 }

// FeatureSize returns o, the per-filter output size of the final device NN
// layer in Eq. (1). For 32×32 inputs this is 16·16 = 256.
func (c Config) FeatureSize() int { return c.FeatureH() * c.FeatureW() }

// ExitCount returns the number of exit points (2 without an edge tier,
// 3 with one).
func (c Config) ExitCount() int {
	if c.UseEdge {
		return 3
	}
	return 2
}

// CommCostBytes evaluates Eq. (1): the expected per-sample communication of
// an end device given the fraction localExit of samples exiting locally,
//
//	c = 4·|C| + (1−l)·f·o/8
//
// The first term is the float32 class-summary vector every sample sends to
// the local aggregator; the second is the bit-packed binarized feature map
// uploaded to the cloud for samples that miss the local exit.
func (c Config) CommCostBytes(localExit float64) float64 {
	return float64(4*c.Classes) + (1-localExit)*float64(c.DeviceFilters*c.FeatureSize())/8
}

// RawOffloadBytes returns the per-sample cost of the baseline that sends
// raw sensor input to the cloud (3072 B for a 32×32 RGB image, §IV-H).
func (c Config) RawOffloadBytes() int { return c.InputC * c.InputH * c.InputW }
