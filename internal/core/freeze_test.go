package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// TestInferenceForwardsAreReadOnly drives every section forward used by the
// cluster runtime from many goroutines at once. On a frozen model these
// paths must not write any shared state, so the test passes under -race
// only if inference is genuinely read-only — the property that lets
// concurrent serving sessions share one model without serializing.
func TestInferenceForwardsAreReadOnly(t *testing.T) {
	dcfg := dataset.DefaultConfig()
	dcfg.Train, dcfg.Test = 60, 20
	train, test := dataset.MustGenerate(dcfg)
	cfg := DefaultConfig()
	cfg.CloudFilters = 8
	m := MustNewModel(cfg)
	tc := DefaultTrainConfig()
	tc.Epochs = 1
	if _, err := m.Train(train, tc); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			device := w % cfg.Devices
			for r := 0; r < rounds; r++ {
				id := (w*rounds + r) % test.Len()
				x := test.DeviceBatch(device, []int{id})
				feat, exitVec := m.DeviceForward(device, x)

				vecs := make([]*tensor.Tensor, cfg.Devices)
				feats := make([]*tensor.Tensor, cfg.Devices)
				for d := range vecs {
					vecs[d] = tensor.New(1, cfg.Classes)
					feats[d] = tensor.New(1, cfg.DeviceFilters, cfg.FeatureH(), cfg.FeatureW())
				}
				copy(vecs[device].Row(0), exitVec.Row(0))
				feats[device] = feat
				mask := make([]bool, cfg.Devices)
				mask[device] = true

				m.LocalAggregate(vecs, mask)
				m.CloudForward(feats, mask)
			}
		}(w)
	}
	wg.Wait()
}

// TestFreezeSyncsBinarizedWeights checks that a manual parameter change is
// invisible to inference until Freeze re-derives the binarized weights.
func TestFreezeSyncsBinarizedWeights(t *testing.T) {
	cfg := DefaultConfig()
	m := MustNewModel(cfg)
	x := tensor.New(1, cfg.InputC, cfg.InputH, cfg.InputW)
	x.FillUniform(rand.New(rand.NewSource(7)), 0, 1)

	_, before := m.DeviceForward(0, x)
	beforeRow := append([]float32(nil), before.Row(0)...)

	// Flip every latent weight of device 0's conv; without Freeze the
	// effective (binarized) weights must be unchanged.
	latent := m.devices[0].convp.Conv.Latent.Value
	ld := latent.Data()
	for i := range ld {
		ld[i] = -ld[i]
	}
	_, stale := m.DeviceForward(0, x)
	for i, v := range stale.Row(0) {
		if v != beforeRow[i] {
			t.Fatalf("inference picked up unsynced latents at %d: %g != %g", i, v, beforeRow[i])
		}
	}

	m.Freeze()
	_, after := m.DeviceForward(0, x)
	same := true
	for i, v := range after.Row(0) {
		if v != beforeRow[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("Freeze did not re-derive binarized weights from flipped latents")
	}
}
