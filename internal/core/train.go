package core

import (
	"fmt"
	"math/rand"

	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/nn"
)

// TrainConfig controls joint DDNN training. The defaults follow §IV-A:
// Adam with α=0.001, β₁=0.9, β₂=0.999, ε=1e-8 for 100 epochs.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float32
	Seed      int64
	// Progress, if non-nil, is called after every epoch with the epoch
	// index (0-based) and mean training loss.
	Progress func(epoch int, loss float64)
}

// DefaultTrainConfig returns the paper's training hyper-parameters.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 100, BatchSize: 32, LR: 0.001, Seed: 1}
}

// Train jointly trains the DDNN on a dataset, minimizing the equally
// weighted sum of the per-exit softmax cross-entropy losses (§III-C). It
// returns the mean training loss of the final epoch.
func (m *Model) Train(ds *dataset.Dataset, cfg TrainConfig) (float64, error) {
	if cfg.Epochs <= 0 {
		return 0, fmt.Errorf("core: epochs must be positive, got %d", cfg.Epochs)
	}
	if cfg.BatchSize <= 0 {
		return 0, fmt.Errorf("core: batch size must be positive, got %d", cfg.BatchSize)
	}
	if ds.Devices() < m.Cfg.Devices {
		return 0, fmt.Errorf("core: dataset has %d devices, model needs %d", ds.Devices(), m.Cfg.Devices)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LR)
	n := ds.Len()
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { indices[i], indices[j] = indices[j], indices[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			if end-start < 2 {
				// Batch norm needs at least two samples for stable batch
				// statistics; fold stragglers into the next epoch.
				continue
			}
			batch := indices[start:end]
			xs := ds.AllDeviceBatches(m.Cfg.Devices, batch)
			labels := ds.Labels(batch)
			nn.ZeroGrads(m.params)
			loss, _ := m.TrainStep(xs, labels)
			opt.Step(m.params)
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.Progress != nil {
			cfg.Progress(epoch, lastLoss)
		}
	}
	// Re-sync the binarized weights from the final optimizer step so
	// inference is up to date and read-only from here on.
	m.Freeze()
	return lastLoss, nil
}
