package core

import (
	"fmt"
	"math/rand"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/bnn"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// exitHead maps a (flattened) feature vector to class logits: a binarized
// linear layer followed by batch normalization. It is the paper's FC block
// without the final binary activation, because exit points must emit
// floating-point class vectors — the local aggregator consumes "a
// floating-point vector of length equal to the number of classes" (§IV-C)
// and the entropy criterion needs a probability distribution.
type exitHead struct {
	lin *bnn.BinaryLinear
	bn  *nn.BatchNorm
}

// head is the common surface of binary and floating-point exit heads, so
// the mixed-precision cloud (§VI) can swap implementations.
type head interface {
	forward(x *tensor.Tensor, train bool) *tensor.Tensor
	forwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor
	backward(grad *tensor.Tensor) *tensor.Tensor
	params() []*nn.Param
	memoryBits() int
	batchNorm() *nn.BatchNorm
	syncWeights()
}

var (
	_ head = (*exitHead)(nil)
	_ head = (*floatExitHead)(nil)
)

func newExitHead(rng *rand.Rand, name string, in, classes int) *exitHead {
	return &exitHead{
		lin: bnn.NewBinaryLinear(rng, name+".exit", in, classes),
		bn:  nn.NewBatchNorm(name+".exitbn", classes),
	}
}

func (e *exitHead) forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return e.bn.Forward(e.lin.Forward(x, train), train)
}

// forwardPooled accepts the unflattened feature map directly — the
// pooled linear layers flatten implicitly, so the hot path skips the
// Reshape view allocation.
func (e *exitHead) forwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	y := e.lin.ForwardPooled(x, p)
	out := e.bn.ForwardPooled(y, p)
	p.Put(y)
	return out
}

func (e *exitHead) backward(grad *tensor.Tensor) *tensor.Tensor {
	return e.lin.Backward(e.bn.Backward(grad))
}

func (e *exitHead) params() []*nn.Param {
	return append(e.lin.Params(), e.bn.Params()...)
}

func (e *exitHead) memoryBits() int { return e.lin.WeightBits() + 2*32*e.bn.C }

func (e *exitHead) batchNorm() *nn.BatchNorm { return e.bn }

func (e *exitHead) syncWeights() { e.lin.SyncWeights() }

// floatExitHead is the floating-point exit used by mixed-precision clouds:
// a plain linear layer with bias and batch normalization.
type floatExitHead struct {
	lin *nn.Linear
	bn  *nn.BatchNorm
}

func newFloatExitHead(rng *rand.Rand, name string, in, classes int) *floatExitHead {
	return &floatExitHead{
		lin: nn.NewLinear(rng, name+".exit", in, classes, true),
		bn:  nn.NewBatchNorm(name+".exitbn", classes),
	}
}

func (e *floatExitHead) forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return e.bn.Forward(e.lin.Forward(x, train), train)
}

func (e *floatExitHead) forwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	y := e.lin.ForwardPooled(x, p)
	out := e.bn.ForwardPooled(y, p)
	p.Put(y)
	return out
}

func (e *floatExitHead) backward(grad *tensor.Tensor) *tensor.Tensor {
	return e.lin.Backward(e.bn.Backward(grad))
}

func (e *floatExitHead) params() []*nn.Param {
	return append(e.lin.Params(), e.bn.Params()...)
}

func (e *floatExitHead) memoryBits() int {
	return 32*(e.lin.Weight.Value.Size()+e.lin.Bias.Value.Size()) + 2*32*e.bn.C
}

func (e *floatExitHead) batchNorm() *nn.BatchNorm { return e.bn }

func (e *floatExitHead) syncWeights() {} // no derived weights

// deviceSection is the slice of the DDNN that runs on one end device: a
// ConvP block producing the binarized feature map that is uploaded on a
// local-exit miss, plus the exit head feeding the local aggregator
// (Fig. 4, red blocks).
type deviceSection struct {
	convp *bnn.ConvP
	exit  *exitHead
}

// cloudSection is the slice that runs in the cloud: two conv-pool blocks
// over the aggregated device (or edge) features and the final exit head
// (Fig. 4, blue blocks). The blocks are binary by default; with the
// mixed-precision option of §VI they are floating-point while the device
// sections stay binary.
type cloudSection struct {
	b1, b2 nn.Layer
	exit   head

	featShape []int // b2 output shape, cached during training forward
}

func newCloudSection(rng *rand.Rand, name string, inC, f, inH, inW, classes int, floatCloud bool) *cloudSection {
	outH, outW := inH/4, inW/4
	if outH < 1 || outW < 1 {
		panic(fmt.Sprintf("core: cloud input %d×%d too small for two ConvP blocks", inH, inW))
	}
	if floatCloud {
		return &cloudSection{
			b1:   nn.NewConvPoolBlock(rng, name+".b1", inC, f),
			b2:   nn.NewConvPoolBlock(rng, name+".b2", f, f),
			exit: newFloatExitHead(rng, name, f*outH*outW, classes),
		}
	}
	return &cloudSection{
		b1:   bnn.NewConvP(rng, name+".b1", inC, f),
		b2:   bnn.NewConvP(rng, name+".b2", f, f),
		exit: newExitHead(rng, name, f*outH*outW, classes),
	}
}

func (c *cloudSection) forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := c.b1.Forward(x, train)
	y = c.b2.Forward(y, train)
	if train {
		c.featShape = y.Shape()
	}
	n := y.Dim(0)
	return c.exit.forward(y.Reshape(n, y.Size()/n), train)
}

func (c *cloudSection) forwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	y1 := nn.ForwardPooled(c.b1, x, p)
	y2 := nn.ForwardPooled(c.b2, y1, p)
	p.Put(y1)
	logits := c.exit.forwardPooled(y2, p)
	p.Put(y2)
	return logits
}

func (c *cloudSection) backward(grad *tensor.Tensor) *tensor.Tensor {
	g := c.exit.backward(grad)
	g = g.Reshape(c.featShape...)
	g = c.b2.Backward(g)
	return c.b1.Backward(g)
}

func (c *cloudSection) params() []*nn.Param {
	ps := c.b1.Params()
	ps = append(ps, c.b2.Params()...)
	return append(ps, c.exit.params()...)
}

// edgeSection is the optional middle tier (configurations (d)/(e) of
// Fig. 2): one ConvP block over the aggregated device features, an edge
// exit head, and a feature output forwarded to the cloud.
type edgeSection struct {
	convp *bnn.ConvP
	exit  *exitHead

	featShape []int
}

func newEdgeSection(rng *rand.Rand, name string, inC, f, inH, inW, classes int) *edgeSection {
	return &edgeSection{
		convp: bnn.NewConvP(rng, name+".convp", inC, f),
		exit:  newExitHead(rng, name, f*(inH/2)*(inW/2), classes),
	}
}

func (e *edgeSection) params() []*nn.Param {
	return append(e.convp.Params(), e.exit.params()...)
}

// Model is a DDNN: per-device sections, aggregators at each exit point, an
// optional edge tier, and the cloud section, all trained jointly.
type Model struct {
	Cfg Config

	devices  []*deviceSection
	localAgg agg.Aggregator
	edgeAgg  agg.Aggregator // nil without edge tier
	edge     *edgeSection   // nil without edge tier
	cloudAgg agg.Aggregator // nil with edge tier (single edge feeds cloud directly)
	cloud    *cloudSection

	params []*nn.Param
}

// NewModel builds a DDNN from a validated configuration.
func NewModel(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg}
	fh, fw := cfg.FeatureH(), cfg.FeatureW()
	featIn := cfg.DeviceFilters * fh * fw
	for d := 0; d < cfg.Devices; d++ {
		name := fmt.Sprintf("dev%d", d)
		m.devices = append(m.devices, &deviceSection{
			convp: bnn.NewConvP(rng, name+".convp", cfg.InputC, cfg.DeviceFilters),
			exit:  newExitHead(rng, name, featIn, cfg.Classes),
		})
	}
	m.localAgg = agg.NewVector(rng, "local", cfg.LocalAgg, cfg.Devices, cfg.Classes)
	if cfg.UseEdge {
		m.edgeAgg = agg.NewFeature(cfg.EdgeAgg, cfg.Devices)
		edgeInC := agg.FeatureOutChannels(cfg.EdgeAgg, cfg.Devices, cfg.DeviceFilters)
		m.edge = newEdgeSection(rng, "edge", edgeInC, cfg.EdgeFilters, fh, fw, cfg.Classes)
		m.cloud = newCloudSection(rng, "cloud", cfg.EdgeFilters, cfg.CloudFilters, fh/2, fw/2, cfg.Classes, cfg.FloatCloud)
	} else {
		m.cloudAgg = agg.NewFeature(cfg.CloudAgg, cfg.Devices)
		cloudInC := agg.FeatureOutChannels(cfg.CloudAgg, cfg.Devices, cfg.DeviceFilters)
		m.cloud = newCloudSection(rng, "cloud", cloudInC, cfg.CloudFilters, fh, fw, cfg.Classes, cfg.FloatCloud)
	}

	for _, d := range m.devices {
		m.params = append(m.params, d.convp.Params()...)
		m.params = append(m.params, d.exit.params()...)
	}
	m.params = append(m.params, m.localAgg.Params()...)
	if m.edge != nil {
		m.params = append(m.params, m.edgeAgg.Params()...)
		m.params = append(m.params, m.edge.params()...)
	}
	if m.cloudAgg != nil {
		m.params = append(m.params, m.cloudAgg.Params()...)
	}
	m.params = append(m.params, m.cloud.params()...)
	m.Freeze()
	return m, nil
}

// MustNewModel is NewModel for known-good configs; it panics on error.
func MustNewModel(cfg Config) *Model {
	m, err := NewModel(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns every learnable parameter of the DDNN.
func (m *Model) Params() []*nn.Param { return m.params }

// ParamCount returns the total number of scalar parameters.
func (m *Model) ParamCount() int { return nn.CountParams(m.params) }

// DeviceMemoryBytes returns the eBNN deployment footprint of one device's
// section (ConvP block + exit head), which the paper keeps under 2 KB
// (§IV-F).
func (m *Model) DeviceMemoryBytes() int {
	d := m.devices[0]
	bits := d.convp.MemoryBits() + d.exit.memoryBits()
	return (bits + 7) / 8
}

// CloudMemoryBytes returns the deployment footprint of the cloud section.
// Binary clouds store 1 bit per weight; mixed-precision clouds (§VI) store
// 32 — the cloud has no memory constraint, which is why the paper suggests
// spending the bits there.
func (m *Model) CloudMemoryBytes() int {
	bits := m.cloud.exit.memoryBits()
	for _, b := range []nn.Layer{m.cloud.b1, m.cloud.b2} {
		mm, ok := b.(interface{ MemoryBits() int })
		if !ok {
			panic(fmt.Sprintf("core: conv block %T lacks MemoryBits", b))
		}
		bits += mm.MemoryBits()
	}
	return (bits + 7) / 8
}

// Logits bundles the raw class scores produced at each exit point.
type Logits struct {
	Local *tensor.Tensor
	Edge  *tensor.Tensor // nil without an edge tier
	Cloud *tensor.Tensor
}

// checkInputs validates a per-device input batch.
func (m *Model) checkInputs(xs []*tensor.Tensor) int {
	if len(xs) != m.Cfg.Devices {
		panic(fmt.Sprintf("core: model has %d devices, got %d inputs", m.Cfg.Devices, len(xs)))
	}
	n := xs[0].Dim(0)
	for d, x := range xs {
		if x.Dims() != 4 || x.Dim(0) != n || x.Dim(1) != m.Cfg.InputC || x.Dim(2) != m.Cfg.InputH || x.Dim(3) != m.Cfg.InputW {
			panic(fmt.Sprintf("core: device %d input shape %v, want [%d %d %d %d]", d, x.Shape(), n, m.Cfg.InputC, m.Cfg.InputH, m.Cfg.InputW))
		}
	}
	return n
}

// forward runs the full DDNN. mask marks present devices (nil = all).
func (m *Model) forward(xs []*tensor.Tensor, mask []bool, train bool) Logits {
	n := m.checkInputs(xs)
	feats := make([]*tensor.Tensor, m.Cfg.Devices)
	exitVecs := make([]*tensor.Tensor, m.Cfg.Devices)
	fh, fw := m.Cfg.FeatureH(), m.Cfg.FeatureW()
	for d, dev := range m.devices {
		if mask != nil && !mask[d] {
			// Failed device: contributes nothing; placeholders keep the
			// aggregator shapes consistent.
			feats[d] = tensor.New(n, m.Cfg.DeviceFilters, fh, fw)
			exitVecs[d] = tensor.New(n, m.Cfg.Classes)
			continue
		}
		feat := dev.convp.Forward(xs[d], train)
		feats[d] = feat
		exitVecs[d] = dev.exit.forward(feat.Reshape(n, feat.Size()/n), train)
	}
	out := Logits{Local: m.localAgg.Forward(exitVecs, mask, train)}
	if m.edge != nil {
		edgeIn := m.edgeAgg.Forward(feats, mask, train)
		edgeFeat := m.edge.convp.Forward(edgeIn, train)
		if train {
			m.edge.featShape = edgeFeat.Shape()
		}
		out.Edge = m.edge.exit.forward(edgeFeat.Reshape(n, edgeFeat.Size()/n), train)
		out.Cloud = m.cloud.forward(edgeFeat, train)
	} else {
		cloudIn := m.cloudAgg.Forward(feats, mask, train)
		out.Cloud = m.cloud.forward(cloudIn, train)
	}
	return out
}

// Infer runs the DDNN without caching gradients. mask marks present
// devices for fault-tolerance evaluation (nil = all present).
func (m *Model) Infer(xs []*tensor.Tensor, mask []bool) Logits {
	return m.forward(xs, mask, false)
}

// TrainStep runs one joint forward/backward pass, accumulating parameter
// gradients for the weighted multi-exit loss Σₙ wₙ·L(exitₙ) (§III-C) with
// equal weights. The caller is responsible for zeroing gradients before and
// stepping the optimizer after. It returns the total loss and the per-exit
// losses.
func (m *Model) TrainStep(xs []*tensor.Tensor, labels []int) (total float64, perExit []float64) {
	logits := m.forward(xs, nil, true)

	localLoss, localGrad := nn.SoftmaxCrossEntropy(logits.Local, labels, 1)
	cloudLoss, cloudGrad := nn.SoftmaxCrossEntropy(logits.Cloud, labels, 1)
	perExit = []float64{localLoss, cloudLoss}
	var edgeGrad *tensor.Tensor
	if m.edge != nil {
		var edgeLoss float64
		edgeLoss, edgeGrad = nn.SoftmaxCrossEntropy(logits.Edge, labels, 1)
		perExit = []float64{localLoss, edgeLoss, cloudLoss}
	}
	for _, l := range perExit {
		total += l
	}

	n := xs[0].Dim(0)
	fh, fw := m.Cfg.FeatureH(), m.Cfg.FeatureW()

	// Gradient of each device's uploaded feature map, accumulated from the
	// cloud (and edge) branch and the local-exit branch.
	featGrads := make([]*tensor.Tensor, m.Cfg.Devices)

	if m.edge != nil {
		// Cloud branch backward into the edge feature map.
		dEdgeFeat := m.cloud.backward(cloudGrad)
		// Edge exit backward adds into the same feature map.
		gEdge := m.edge.exit.backward(edgeGrad)
		dEdgeFeat.Add(gEdge.Reshape(m.edge.featShape...))
		dEdgeIn := m.edge.convp.Backward(dEdgeFeat)
		for d, g := range m.edgeAgg.Backward(dEdgeIn) {
			featGrads[d] = g
		}
	} else {
		dCloudIn := m.cloud.backward(cloudGrad)
		for d, g := range m.cloudAgg.Backward(dCloudIn) {
			featGrads[d] = g
		}
	}

	// Local exit backward: aggregator splits the gradient per device, then
	// each exit head maps it back onto the device's feature map.
	exitGrads := m.localAgg.Backward(localGrad)
	for d, dev := range m.devices {
		gFlat := dev.exit.backward(exitGrads[d])
		featGrads[d].Add(gFlat.Reshape(n, m.Cfg.DeviceFilters, fh, fw))
		dev.convp.Backward(featGrads[d])
	}
	return total, perExit
}
