package core

import (
	"github.com/ddnn/ddnn-go/internal/branchy"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// EvalResult stores the per-sample exit probabilities of a DDNN over a
// dataset, from which every accuracy measure of §III-F can be derived
// without re-running the network.
type EvalResult struct {
	Labels     []int
	LocalProbs [][]float32
	EdgeProbs  [][]float32 // nil without an edge tier
	CloudProbs [][]float32
}

// Evaluate runs the DDNN over the dataset in batches and collects exit
// probabilities. mask marks present devices (nil = all present), enabling
// the fault-tolerance experiments of §IV-G.
func (m *Model) Evaluate(ds *dataset.Dataset, mask []bool, batchSize int) *EvalResult {
	if batchSize <= 0 {
		batchSize = 32
	}
	res := &EvalResult{Labels: ds.Labels(nil)}
	n := ds.Len()
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		xs := ds.AllDeviceBatches(m.Cfg.Devices, idx)
		logits := m.Infer(xs, mask)
		res.LocalProbs = append(res.LocalProbs, probRows(logits.Local)...)
		if logits.Edge != nil {
			res.EdgeProbs = append(res.EdgeProbs, probRows(logits.Edge)...)
		}
		res.CloudProbs = append(res.CloudProbs, probRows(logits.Cloud)...)
	}
	return res
}

func probRows(logits *tensor.Tensor) [][]float32 {
	probs := nn.Softmax(logits)
	rows := make([][]float32, probs.Dim(0))
	for i := range rows {
		row := make([]float32, probs.Dim(1))
		copy(row, probs.Row(i))
		rows[i] = row
	}
	return rows
}

func argmax(row []float32) int {
	best := 0
	for i := 1; i < len(row); i++ {
		if row[i] > row[best] {
			best = i
		}
	}
	return best
}

func accuracyOf(probs [][]float32, labels []int) float64 {
	correct := 0
	for i, row := range probs {
		if argmax(row) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// LocalAccuracy is the accuracy when exiting 100% of samples at the local
// exit (§III-F).
func (r *EvalResult) LocalAccuracy() float64 { return accuracyOf(r.LocalProbs, r.Labels) }

// EdgeAccuracy is the accuracy when exiting 100% of samples at the edge
// exit; it is 0 when the model has no edge tier.
func (r *EvalResult) EdgeAccuracy() float64 {
	if r.EdgeProbs == nil {
		return 0
	}
	return accuracyOf(r.EdgeProbs, r.Labels)
}

// CloudAccuracy is the accuracy when exiting 100% of samples at the cloud
// exit (§III-F).
func (r *EvalResult) CloudAccuracy() float64 { return accuracyOf(r.CloudProbs, r.Labels) }

// OverallAccuracy is the accuracy of staged inference under the exit
// policy: each sample exits at the first exit whose normalized entropy is
// within that exit's threshold, and the final exit always classifies
// (§III-D, §III-F).
func (r *EvalResult) OverallAccuracy(policy branchy.Policy) float64 {
	correct := 0
	for i := range r.Labels {
		if argmax(r.exitProbs(policy, i)) == r.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(r.Labels))
}

// exitProbs returns the probability vector of the exit that classifies
// sample i under the policy.
func (r *EvalResult) exitProbs(policy branchy.Policy, i int) []float32 {
	exits := [][]float32{r.LocalProbs[i]}
	if r.EdgeProbs != nil {
		exits = append(exits, r.EdgeProbs[i])
	}
	exits = append(exits, r.CloudProbs[i])
	for e, probs := range exits {
		if policy.ShouldExit(e, probs) {
			return probs
		}
	}
	return exits[len(exits)-1]
}

// ExitFractions returns the fraction of samples classified at each exit
// point under the policy, ordered local (edge) cloud.
func (r *EvalResult) ExitFractions(policy branchy.Policy) []float64 {
	exits := 2
	if r.EdgeProbs != nil {
		exits = 3
	}
	counts := make([]int, exits)
	for i := range r.Labels {
		all := [][]float32{r.LocalProbs[i]}
		if r.EdgeProbs != nil {
			all = append(all, r.EdgeProbs[i])
		}
		all = append(all, r.CloudProbs[i])
		for e, probs := range all {
			if policy.ShouldExit(e, probs) {
				counts[e]++
				break
			}
		}
	}
	fr := make([]float64, exits)
	for i, c := range counts {
		fr[i] = float64(c) / float64(len(r.Labels))
	}
	return fr
}

// LocalExitFraction is the fraction of samples exiting at the local exit
// under the policy — the l of Eq. (1).
func (r *EvalResult) LocalExitFraction(policy branchy.Policy) float64 {
	return r.ExitFractions(policy)[0]
}

// Outcomes converts the evaluation into branchy.ExitOutcome records for
// threshold search over the local exit. The upper exit is the edge when
// present, otherwise the cloud.
func (r *EvalResult) Outcomes() []branchy.ExitOutcome {
	upper := r.CloudProbs
	if r.EdgeProbs != nil {
		upper = r.EdgeProbs
	}
	out := make([]branchy.ExitOutcome, len(r.Labels))
	for i, lbl := range r.Labels {
		out[i] = branchy.ExitOutcome{
			Entropy:      nn.NormalizedEntropy(r.LocalProbs[i]),
			LocalCorrect: argmax(r.LocalProbs[i]) == lbl,
			UpperCorrect: argmax(upper[i]) == lbl,
		}
	}
	return out
}
