package core

import (
	"fmt"
	"sort"

	"github.com/ddnn/ddnn-go/internal/bnn"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// NamedTensor pairs a state tensor with its stable name for serialization.
type NamedTensor struct {
	Name string
	T    *tensor.Tensor
}

// batchNorms enumerates every batch-norm layer in the model; their running
// statistics are state that Params() does not cover but checkpoints must.
func (m *Model) batchNorms() []*nn.BatchNorm {
	var bns []*nn.BatchNorm
	for _, d := range m.devices {
		bns = append(bns, d.convp.BN, d.exit.bn)
	}
	// The CC projection of the local aggregator is a plain linear layer,
	// covered by Params().
	if m.edge != nil {
		bns = append(bns, m.edge.convp.BN, m.edge.exit.bn)
	}
	bns = append(bns, blockBN(m.cloud.b1), blockBN(m.cloud.b2), m.cloud.exit.batchNorm())
	return bns
}

// blockBN extracts the batch-norm layer from either conv-pool block kind.
func blockBN(l nn.Layer) *nn.BatchNorm {
	switch b := l.(type) {
	case *bnn.ConvP:
		return b.BN
	case *nn.ConvPoolBlock:
		return b.BN
	default:
		panic(fmt.Sprintf("core: unknown conv block %T", l))
	}
}

// StateDict returns every tensor needed to reconstruct the trained model:
// all learnable parameters plus batch-norm running statistics, with stable
// names, sorted by name.
func (m *Model) StateDict() []NamedTensor {
	var out []NamedTensor
	for _, p := range m.params {
		out = append(out, NamedTensor{Name: p.Name, T: p.Value})
	}
	for _, bn := range m.batchNorms() {
		base := bn.Gamma.Name // "<layer>.gamma"
		base = base[:len(base)-len(".gamma")]
		out = append(out, NamedTensor{Name: base + ".running_mean", T: bn.RunningMean})
		out = append(out, NamedTensor{Name: base + ".running_var", T: bn.RunningVar})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LoadStateDict copies values from a saved state into the model. Every
// entry must match an existing tensor by name and size, and every model
// tensor must be covered.
func (m *Model) LoadStateDict(state []NamedTensor) error {
	want := m.StateDict()
	byName := make(map[string]*tensor.Tensor, len(want))
	for _, nt := range want {
		byName[nt.Name] = nt.T
	}
	seen := make(map[string]bool, len(state))
	for _, nt := range state {
		dst, ok := byName[nt.Name]
		if !ok {
			return fmt.Errorf("core: state has unknown tensor %q", nt.Name)
		}
		if seen[nt.Name] {
			return fmt.Errorf("core: state has duplicate tensor %q", nt.Name)
		}
		seen[nt.Name] = true
		if dst.Size() != nt.T.Size() {
			return fmt.Errorf("core: tensor %q has %d elements, model needs %d", nt.Name, nt.T.Size(), dst.Size())
		}
		dst.CopyFrom(nt.T)
	}
	if len(seen) != len(byName) {
		for name := range byName {
			if !seen[name] {
				return fmt.Errorf("core: state is missing tensor %q", name)
			}
		}
	}
	// The loaded latents replace whatever the binarized weights were
	// derived from; re-sync so inference is correct and read-only.
	m.Freeze()
	return nil
}
