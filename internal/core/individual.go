package core

import (
	"fmt"
	"math/rand"

	"github.com/ddnn/ddnn-go/internal/bnn"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// IndividualModel is the per-device baseline of §III-F: a single device's
// NN (a ConvP block followed by an FC exit head) trained separately from
// any DDNN. Its accuracy is the "Individual" curve of Fig. 8.
type IndividualModel struct {
	Device  int
	Classes int
	convp   *bnn.ConvP
	exit    *exitHead
	params  []*nn.Param
	fh, fw  int
}

// NewIndividualModel builds the standalone model for one device using the
// same section architecture as the DDNN device sections.
func NewIndividualModel(cfg Config, device int) (*IndividualModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if device < 0 || device >= cfg.Devices {
		return nil, fmt.Errorf("core: device %d out of range [0,%d)", device, cfg.Devices)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(device)*7919))
	name := fmt.Sprintf("ind%d", device)
	im := &IndividualModel{
		Device:  device,
		Classes: cfg.Classes,
		convp:   bnn.NewConvP(rng, name+".convp", cfg.InputC, cfg.DeviceFilters),
		exit:    newExitHead(rng, name, cfg.DeviceFilters*cfg.FeatureSize(), cfg.Classes),
		fh:      cfg.FeatureH(),
		fw:      cfg.FeatureW(),
	}
	im.params = append(im.params, im.convp.Params()...)
	im.params = append(im.params, im.exit.params()...)
	im.Freeze()
	return im, nil
}

// Params returns the learnable parameters.
func (im *IndividualModel) Params() []*nn.Param { return im.params }

// Forward computes class logits for a batch of this device's views.
func (im *IndividualModel) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	feat := im.convp.Forward(x, train)
	n := feat.Dim(0)
	return im.exit.forward(feat.Reshape(n, feat.Size()/n), train)
}

// Train fits the individual model on the samples in which the object
// appears in this device's frame ("Objects that are not present in a frame
// are not used during training", §IV-B).
func (im *IndividualModel) Train(ds *dataset.Dataset, cfg TrainConfig) (float64, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return 0, fmt.Errorf("core: invalid train config %+v", cfg)
	}
	present := ds.PresentIndices(im.Device)
	if len(present) < cfg.BatchSize {
		return 0, fmt.Errorf("core: device %d has only %d present samples", im.Device, len(present))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LR)
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(present), func(i, j int) { present[i], present[j] = present[j], present[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start+1 < len(present); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(present) {
				end = len(present)
			}
			if end-start < 2 {
				continue
			}
			batch := present[start:end]
			x := ds.DeviceBatch(im.Device, batch)
			labels := ds.Labels(batch)
			logits := im.Forward(x, true)
			loss, grad := nn.SoftmaxCrossEntropy(logits, labels, 1)
			nn.ZeroGrads(im.params)
			im.exitBackward(grad)
			opt.Step(im.params)
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.Progress != nil {
			cfg.Progress(epoch, lastLoss)
		}
	}
	im.Freeze()
	return lastLoss, nil
}

func (im *IndividualModel) exitBackward(grad *tensor.Tensor) {
	g := im.exit.backward(grad)
	im.convp.Backward(g.Reshape(g.Dim(0), im.convp.Filters(), im.fh, im.fw))
}

// Accuracy evaluates the individual model over every sample of the dataset
// (including frames where the object is absent, which it can only guess),
// matching the paper's definition of individual accuracy (§III-F).
func (im *IndividualModel) Accuracy(ds *dataset.Dataset, batchSize int) float64 {
	if batchSize <= 0 {
		batchSize = 32
	}
	labels := ds.Labels(nil)
	n := ds.Len()
	correct := 0
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		logits := im.Forward(ds.DeviceBatch(im.Device, idx), false)
		for i := range idx {
			if logits.ArgMaxRow(i) == labels[start+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}
