package core

import (
	"math/rand"
	"testing"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// TestPooledForwardsMatchUnpooled checks every tier's pooled section
// forward against the plain allocation path — the pooled serving runtime
// must be bit-identical, including when the pool hands back recycled
// dirty buffers (hence several rounds through one pool).
func TestPooledForwardsMatchUnpooled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := MustNewModel(DefaultConfig())
	pool := tensor.NewPool()

	equal := func(name string, a, b *tensor.Tensor) {
		t.Helper()
		if !a.SameShape(b) {
			t.Fatalf("%s: shape %v vs %v", name, a.Shape(), b.Shape())
		}
		for i, v := range a.Data() {
			if b.Data()[i] != v {
				t.Fatalf("%s: element %d = %g pooled, %g unpooled", name, i, b.Data()[i], v)
			}
		}
	}

	for round := 0; round < 3; round++ {
		x := tensor.New(2, m.Cfg.InputC, m.Cfg.InputH, m.Cfg.InputW)
		x.FillUniform(rng, 0, 1)
		feat, exitVec := m.DeviceForward(0, x)
		pfeat, pexit := m.DeviceForwardPooled(0, x, pool)
		equal("device feat", feat, pfeat)
		equal("device exit", exitVec, pexit)

		feats := make([]*tensor.Tensor, m.Cfg.Devices)
		for d := range feats {
			feats[d] = tensor.New(2, m.Cfg.DeviceFilters, m.Cfg.FeatureH(), m.Cfg.FeatureW())
			feats[d].FillUniform(rng, -1, 1)
		}
		mask := []bool{true, false, true, true, true, false}[:m.Cfg.Devices]
		logits := m.CloudForward(feats, mask)
		plogits := m.CloudForwardPooled(feats, mask, pool)
		equal("cloud logits", logits, plogits)

		pool.Put(pfeat)
		pool.Put(pexit)
		pool.Put(plogits)
	}

	// Edge tier: EdgeForwardPooled + CloudForwardFromEdgePooled.
	ecfg := DefaultConfig()
	ecfg.UseEdge = true
	em := MustNewModel(ecfg)
	feats := make([]*tensor.Tensor, em.Cfg.Devices)
	for d := range feats {
		feats[d] = tensor.New(1, em.Cfg.DeviceFilters, em.Cfg.FeatureH(), em.Cfg.FeatureW())
		feats[d].FillUniform(rng, -1, 1)
	}
	ef, el := em.EdgeForward(feats, nil)
	pef, pel := em.EdgeForwardPooled(feats, nil, pool)
	equal("edge feat", ef, pef)
	equal("edge logits", el, pel)
	cl := em.CloudForwardFromEdge(ef)
	pcl := em.CloudForwardFromEdgePooled(pef, pool)
	equal("cloud-from-edge logits", cl, pcl)
}

// TestDeviceForwardPooledZeroAllocs verifies the PR's zero-alloc
// contract: once the pool is warm, a device section forward touches the
// heap zero times per sample. The pool's free lists are deliberately
// GC-proof (not sync.Pool), so this is stable, not a lucky average.
func TestDeviceForwardPooledZeroAllocs(t *testing.T) {
	m := MustNewModel(DefaultConfig())
	x := tensor.New(1, m.Cfg.InputC, m.Cfg.InputH, m.Cfg.InputW)
	x.FillUniform(rand.New(rand.NewSource(1)), 0, 1)
	pool := tensor.NewPool()
	run := func() {
		feat, exitVec := m.DeviceForwardPooled(0, x, pool)
		pool.Put(exitVec)
		pool.Put(feat)
	}
	for i := 0; i < 8; i++ {
		run() // warm the pool
	}
	if n := testing.AllocsPerRun(100, run); n > 0.5 {
		t.Errorf("DeviceForwardPooled allocates %.2f times per run, want 0", n)
	}
}

// TestCloudForwardPooledZeroAllocs is the same contract for the cloud
// section (aggregation + two ConvP blocks + exit head).
func TestCloudForwardPooledZeroAllocs(t *testing.T) {
	m := MustNewModel(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	feats := make([]*tensor.Tensor, m.Cfg.Devices)
	for d := range feats {
		feats[d] = tensor.New(1, m.Cfg.DeviceFilters, m.Cfg.FeatureH(), m.Cfg.FeatureW())
		feats[d].FillUniform(rng, -1, 1)
	}
	pool := tensor.NewPool()
	run := func() {
		pool.Put(m.CloudForwardPooled(feats, nil, pool))
	}
	for i := 0; i < 8; i++ {
		run()
	}
	if n := testing.AllocsPerRun(100, run); n > 0.5 {
		t.Errorf("CloudForwardPooled allocates %.2f times per run, want 0", n)
	}
}
