package core
