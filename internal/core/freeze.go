package core

import (
	"github.com/ddnn/ddnn-go/internal/bnn"
	"github.com/ddnn/ddnn-go/internal/nn"
)

// Freeze syncs every derived weight (the sign-binarized effective weights
// of the binary layers) from the latent parameters, after which all
// inference-mode forwards — DeviceForward, LocalAggregate, CloudForward,
// EdgeForward, Infer, Evaluate — are read-only and safe for concurrent use
// from any number of goroutines.
//
// Freeze is idempotent and is called automatically by NewModel, at the end
// of Train, and by LoadStateDict. Call it manually only after mutating
// parameters by hand (e.g. driving TrainStep + an optimizer directly).
func (m *Model) Freeze() {
	for _, d := range m.devices {
		d.convp.SyncWeights()
		d.exit.lin.SyncWeights()
	}
	if m.edge != nil {
		m.edge.convp.SyncWeights()
		m.edge.exit.lin.SyncWeights()
	}
	syncLayer(m.cloud.b1)
	syncLayer(m.cloud.b2)
	m.cloud.exit.syncWeights()
}

// syncLayer syncs a layer's derived weights when it has any; float layers
// (the mixed-precision cloud of §VI) have none.
func syncLayer(l nn.Layer) {
	if s, ok := l.(bnn.WeightSyncer); ok {
		s.SyncWeights()
	}
}

// Freeze syncs the binarized weights from the latent parameters so that
// inference forwards are read-only; see Model.Freeze.
func (im *IndividualModel) Freeze() {
	im.convp.SyncWeights()
	im.exit.lin.SyncWeights()
}
