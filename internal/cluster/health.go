package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// HealthMonitor probes every device — and every replica of the upstream
// tier (edge or cloud) when upstream addresses are given — over
// dedicated connections and drives the gateway's up/down state: a node
// that misses consecutive heartbeats is marked down (so inference
// sessions skip the device, or the replica pool stops scheduling the
// replica, without waiting for timeouts), and a node that answers again
// is marked up — giving the cluster automatic recovery, the flip side of
// the fault tolerance evaluated in §IV-G. A probe connection that dies
// (e.g. the peer process was killed) is re-dialed on the next tick, so
// a restarted node is re-admitted instead of staying down forever.
type HealthMonitor struct {
	gw       *Gateway
	tr       transport.Transport
	interval time.Duration
	misses   int

	// monitored records that this monitor took over the upstream pool's
	// recovery; Stop must hand it back.
	monitored bool

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// StartHealthMonitor dials a probe connection to each device and to each
// upstream replica and begins heartbeating every interval. A node is
// marked down after `misses` consecutive unanswered probes and marked up
// again on the first answer. Attaching a monitor hands the upstream
// pool's recovery to it: the pool stops sending half-open trial sessions
// to fenced replicas. The context bounds the initial probe dials only.
func (g *Gateway) StartHealthMonitor(ctx context.Context, tr transport.Transport, deviceAddrs []string, upstreamAddrs []string, interval time.Duration, misses int) (*HealthMonitor, error) {
	if len(deviceAddrs) > len(g.devices) {
		return nil, fmt.Errorf("cluster: health monitor got %d device addresses for %d slots: %w", len(deviceAddrs), len(g.devices), ErrDeviceSlotMismatch)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("cluster: health interval must be positive, got %v", interval)
	}
	if misses <= 0 {
		misses = 3
	}
	hm := &HealthMonitor{
		gw:       g,
		tr:       tr,
		interval: interval,
		misses:   misses,
		stop:     make(chan struct{}),
	}
	// Targets: device i probes as target i; upstream replica i probes as
	// target -(i+1), routed to the replica pool's health state. A partial
	// device list (fewer addresses than slots, or empty-string entries)
	// leaves the unnamed slots unprobed — absent slots are kept out of
	// sessions by membership (nil link), not by health, so a probe
	// verdict can never resurrect an unregistered slot.
	targets := make([]int, 0, len(deviceAddrs)+len(upstreamAddrs))
	addrs := make([]string, 0, len(deviceAddrs)+len(upstreamAddrs))
	for i, addr := range deviceAddrs {
		if addr == "" {
			continue
		}
		targets = append(targets, i)
		addrs = append(addrs, addr)
	}
	for i, addr := range upstreamAddrs {
		targets = append(targets, -(i + 1))
		addrs = append(addrs, addr)
	}
	for i, addr := range addrs {
		conn, err := hm.tr.Dial(ctx, addr)
		if err != nil {
			hm.Stop()
			if targets[i] < 0 {
				return nil, fmt.Errorf("cluster: health dial %v replica %d: %w", g.upstreamExit(), -targets[i]-1, err)
			}
			return nil, fmt.Errorf("cluster: health dial device %d: %w", targets[i], err)
		}
		hm.wg.Add(1)
		go hm.probeLoop(targets[i], addr, conn)
	}
	if len(upstreamAddrs) > 0 {
		// Only a running monitor may own the pool's recovery; Stop hands
		// it back to half-open trial sessions.
		hm.monitored = true
		g.upstream.setMonitored(true)
	}
	return hm, nil
}

func (hm *HealthMonitor) probeLoop(target int, addr string, conn net.Conn) {
	defer hm.wg.Done()
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	nodeID := fmt.Sprintf("gw-probe-%d", target)
	if target < 0 {
		nodeID = fmt.Sprintf("gw-probe-upstream-%d", -target-1)
	}
	ticker := time.NewTicker(hm.interval)
	defer ticker.Stop()
	consecutive := 0
	var seq uint64
	for {
		select {
		case <-hm.stop:
			return
		case <-ticker.C:
		}
		seq++
		if conn == nil {
			// The previous probe connection died; re-dial so a restarted
			// node can be re-admitted.
			dctx, cancel := context.WithTimeout(context.Background(), hm.interval)
			c, err := hm.tr.Dial(dctx, addr)
			cancel()
			if err != nil {
				consecutive++
				if consecutive >= hm.misses {
					hm.setDown(target, true)
				}
				continue
			}
			conn = c
		}
		ok, connDead := hm.probeOnce(conn, nodeID, seq)
		if ok {
			consecutive = 0
			hm.setDown(target, false)
			continue
		}
		if connDead {
			conn.Close()
			conn = nil
		}
		consecutive++
		if consecutive >= hm.misses {
			hm.setDown(target, true)
		}
	}
}

// setDown routes a probe verdict to the right availability flag.
func (hm *HealthMonitor) setDown(target int, down bool) {
	if target < 0 {
		hm.gw.setUpstreamReplicaDown(-target-1, down)
		return
	}
	hm.gw.setDeviceDown(target, down)
}

// probeOnce sends one heartbeat and waits up to the probe interval for
// the echo, discarding unrelated stale frames. connDead reports that the
// connection itself failed (write error), as opposed to a live peer that
// stayed silent; dead connections are re-dialed on the next tick.
func (hm *HealthMonitor) probeOnce(conn net.Conn, nodeID string, seq uint64) (ok, connDead bool) {
	// The write carries a deadline too: a peer that stops draining the
	// link (a wedged node, or an unbuffered in-memory pipe whose reader
	// is stuck in its own blocked echo write) would otherwise block this
	// Encode forever, wedging the probe loop and hanging Stop. A write
	// that cannot complete within one probe interval is a dead
	// connection; closing it also unblocks the peer's stuck echo.
	_ = conn.SetWriteDeadline(time.Now().Add(hm.interval))
	_, err := wire.Encode(conn, &wire.Heartbeat{NodeID: nodeID, Seq: seq})
	_ = conn.SetWriteDeadline(time.Time{})
	if err != nil {
		return false, true
	}
	_ = conn.SetReadDeadline(time.Now().Add(hm.interval))
	defer conn.SetReadDeadline(time.Time{})
	for {
		msg, err := wire.Decode(conn)
		if err != nil {
			// A read timeout means the peer stayed silent; any other
			// decode failure poisons the stream, so re-dial.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return false, false
			}
			return false, true
		}
		hb, isHB := msg.(*wire.Heartbeat)
		if !isHB {
			continue
		}
		if hb.Seq >= seq {
			return true, false
		}
		// A stale echo from an earlier probe; keep reading.
	}
}

// Stop terminates all probe loops and closes their connections. If the
// monitor owned the upstream pool's recovery, ownership reverts to the
// pool's half-open trial sessions, so replicas fenced after Stop can
// still be re-admitted.
func (hm *HealthMonitor) Stop() {
	hm.once.Do(func() { close(hm.stop) })
	hm.wg.Wait()
	if hm.monitored {
		hm.gw.upstream.setMonitored(false)
	}
}

// setDeviceDown flips a device's availability from the failure detector.
func (g *Gateway) setDeviceDown(device int, down bool) {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	dl := g.devices[device]
	if dl.down == down {
		return
	}
	dl.down = down
	dl.failures = 0
	if down {
		g.logger.Warn("health monitor marked device down", "device", device)
	} else {
		g.logger.Info("health monitor marked device up", "device", device)
	}
}
