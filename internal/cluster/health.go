package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// HealthMonitor probes every device — and, when an upstream address is
// given, the next tier up (edge or cloud) — over dedicated connections
// and drives the gateway's up/down state: a node that misses consecutive
// heartbeats is marked down (so inference sessions skip it, or fail
// escalations fast, without waiting for timeouts), and a node that
// answers again is marked up — giving the cluster automatic recovery,
// the flip side of the fault tolerance evaluated in §IV-G.
type HealthMonitor struct {
	gw       *Gateway
	interval time.Duration
	misses   int

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// upstreamProbe is the probeLoop target index for the upstream tier.
const upstreamProbe = -1

// StartHealthMonitor dials a probe connection to each device (and to the
// upstream tier when upstreamAddr is non-empty) and begins heartbeating
// every interval. A node is marked down after `misses` consecutive
// unanswered probes and marked up again on the first answer. The context
// bounds the probe dials only.
func (g *Gateway) StartHealthMonitor(ctx context.Context, tr transport.Transport, deviceAddrs []string, upstreamAddr string, interval time.Duration, misses int) (*HealthMonitor, error) {
	if len(deviceAddrs) != len(g.devices) {
		return nil, fmt.Errorf("cluster: health monitor needs %d device addresses, got %d", len(g.devices), len(deviceAddrs))
	}
	if interval <= 0 {
		return nil, fmt.Errorf("cluster: health interval must be positive, got %v", interval)
	}
	if misses <= 0 {
		misses = 3
	}
	hm := &HealthMonitor{
		gw:       g,
		interval: interval,
		misses:   misses,
		stop:     make(chan struct{}),
	}
	targets := make([]int, 0, len(deviceAddrs)+1)
	addrs := make([]string, 0, len(deviceAddrs)+1)
	for i, addr := range deviceAddrs {
		targets = append(targets, i)
		addrs = append(addrs, addr)
	}
	if upstreamAddr != "" {
		targets = append(targets, upstreamProbe)
		addrs = append(addrs, upstreamAddr)
	}
	for i, addr := range addrs {
		conn, err := tr.Dial(ctx, addr)
		if err != nil {
			hm.Stop()
			if targets[i] == upstreamProbe {
				return nil, fmt.Errorf("cluster: health dial %v tier: %w", g.upstreamExit(), err)
			}
			return nil, fmt.Errorf("cluster: health dial device %d: %w", targets[i], err)
		}
		hm.wg.Add(1)
		go hm.probeLoop(targets[i], conn)
	}
	return hm, nil
}

func (hm *HealthMonitor) probeLoop(target int, conn net.Conn) {
	defer hm.wg.Done()
	defer conn.Close()
	nodeID := fmt.Sprintf("gw-probe-%d", target)
	if target == upstreamProbe {
		nodeID = "gw-probe-upstream"
	}
	ticker := time.NewTicker(hm.interval)
	defer ticker.Stop()
	consecutive := 0
	var seq uint64
	for {
		select {
		case <-hm.stop:
			return
		case <-ticker.C:
		}
		seq++
		if ok := hm.probeOnce(conn, nodeID, seq); ok {
			consecutive = 0
			hm.setDown(target, false)
			continue
		}
		consecutive++
		if consecutive >= hm.misses {
			hm.setDown(target, true)
		}
	}
}

// setDown routes a probe verdict to the right availability flag.
func (hm *HealthMonitor) setDown(target int, down bool) {
	if target == upstreamProbe {
		hm.gw.setUpstreamDown(down)
		return
	}
	hm.gw.setDeviceDown(target, down)
}

// probeOnce sends one heartbeat and waits up to the probe interval for the
// echo, discarding unrelated stale frames.
func (hm *HealthMonitor) probeOnce(conn net.Conn, nodeID string, seq uint64) bool {
	if _, err := wire.Encode(conn, &wire.Heartbeat{NodeID: nodeID, Seq: seq}); err != nil {
		return false
	}
	_ = conn.SetReadDeadline(time.Now().Add(hm.interval))
	defer conn.SetReadDeadline(time.Time{})
	for {
		msg, err := wire.Decode(conn)
		if err != nil {
			return false
		}
		hb, ok := msg.(*wire.Heartbeat)
		if !ok {
			continue
		}
		if hb.Seq >= seq {
			return true
		}
		// A stale echo from an earlier probe; keep reading.
	}
}

// Stop terminates all probe loops and closes their connections.
func (hm *HealthMonitor) Stop() {
	hm.once.Do(func() { close(hm.stop) })
	hm.wg.Wait()
}

// setDeviceDown flips a device's availability from the failure detector.
func (g *Gateway) setDeviceDown(device int, down bool) {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	dl := g.devices[device]
	if dl.down == down {
		return
	}
	dl.down = down
	dl.failures = 0
	if down {
		g.logger.Warn("health monitor marked device down", "device", device)
	} else {
		g.logger.Info("health monitor marked device up", "device", device)
	}
}
