package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"testing"
	"time"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// The fixture trains one small DDNN once and shares it across tests; the
// cluster tests exercise protocol behaviour, not model quality.
var (
	fixtureOnce  sync.Once
	fixtureModel *core.Model
	fixtureTest  *dataset.Dataset
)

func fixture(t *testing.T) (*core.Model, *dataset.Dataset) {
	t.Helper()
	fixtureOnce.Do(func() {
		dcfg := dataset.DefaultConfig()
		dcfg.Train, dcfg.Test = 120, 40
		train, test := dataset.MustGenerate(dcfg)
		cfg := core.DefaultConfig()
		cfg.CloudFilters = 8
		m := core.MustNewModel(cfg)
		tc := core.DefaultTrainConfig()
		tc.Epochs = 3
		if _, err := m.Train(train, tc); err != nil {
			panic(err)
		}
		fixtureModel, fixtureTest = m, test
	})
	return fixtureModel, fixtureTest
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(discard{}, &slog.HandlerOptions{Level: slog.LevelError}))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func newSim(t *testing.T, cfg GatewayConfig) *Sim {
	t.Helper()
	model, test := fixture(t)
	sim, err := NewSim(model, test, cfg, transport.NewMem(), quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sim.Close() })
	return sim
}

func TestClusterClassifiesSamples(t *testing.T) {
	sim := newSim(t, DefaultGatewayConfig())
	_, test := fixture(t)
	for id := 0; id < 10; id++ {
		res, err := sim.Gateway.Classify(context.Background(), uint64(id))
		if err != nil {
			t.Fatalf("sample %d: %v", id, err)
		}
		if res.Class < 0 || res.Class >= dataset.NumClasses {
			t.Errorf("sample %d class = %d, out of range", id, res.Class)
		}
		if res.Exit != wire.ExitLocal && res.Exit != wire.ExitCloud {
			t.Errorf("sample %d exit = %v", id, res.Exit)
		}
		if res.Latency <= 0 {
			t.Errorf("sample %d latency not recorded", id)
		}
		_ = test
	}
}

func TestClusterMatchesInProcessInference(t *testing.T) {
	// The distributed pipeline must produce the same decisions as running
	// the model in-process: same exit choice and same predicted class.
	gcfg := DefaultGatewayConfig()
	sim := newSim(t, gcfg)
	model, test := fixture(t)

	for id := 0; id < 25; id++ {
		res, err := sim.Gateway.Classify(context.Background(), uint64(id))
		if err != nil {
			t.Fatalf("sample %d: %v", id, err)
		}

		xs := test.AllDeviceBatches(model.Cfg.Devices, []int{id})
		logits := model.Infer(xs, nil)
		localProbs := nn.Softmax(logits.Local)
		probsRow := make([]float32, model.Cfg.Classes)
		copy(probsRow, localProbs.Row(0))
		wantLocal := nn.NormalizedEntropy(probsRow) <= gcfg.Threshold

		if wantLocal {
			if res.Exit != wire.ExitLocal {
				t.Errorf("sample %d exited at %v, in-process says local", id, res.Exit)
			}
			if want := localProbs.ArgMaxRow(0); res.Class != want {
				t.Errorf("sample %d local class = %d, in-process %d", id, res.Class, want)
			}
		} else {
			if res.Exit != wire.ExitCloud {
				t.Errorf("sample %d exited at %v, in-process says cloud", id, res.Exit)
			}
			if want := logits.Cloud.ArgMaxRow(0); res.Class != want {
				t.Errorf("sample %d cloud class = %d, in-process %d", id, res.Class, want)
			}
		}
	}
}

func TestThresholdZeroAlwaysGoesToCloud(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.Threshold = -1 // even zero entropy cannot pass
	sim := newSim(t, cfg)
	res, err := sim.Gateway.Classify(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != wire.ExitCloud {
		t.Errorf("exit = %v, want cloud with impossible threshold", res.Exit)
	}
}

func TestThresholdOneAlwaysExitsLocally(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.Threshold = 1
	sim := newSim(t, cfg)
	for id := 0; id < 5; id++ {
		res, err := sim.Gateway.Classify(context.Background(), uint64(id))
		if err != nil {
			t.Fatal(err)
		}
		if res.Exit != wire.ExitLocal {
			t.Errorf("sample %d exit = %v, want local with T=1", id, res.Exit)
		}
	}
}

func TestCommMeterTracksEquationOne(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.Threshold = -1 // force cloud escalation: both Eq. (1) terms charged
	sim := newSim(t, cfg)
	model, _ := fixture(t)

	if _, err := sim.Gateway.Classify(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	devices := int64(model.Cfg.Devices)
	wantSummary := devices * int64(wire.SummaryPayloadBytes(model.Cfg.Classes))
	if got := sim.Gateway.Meter.Get("local-summary"); got != wantSummary {
		t.Errorf("local-summary bytes = %d, want %d (= n·4·|C|)", got, wantSummary)
	}
	featBytes := int64(model.Cfg.DeviceFilters*model.Cfg.FeatureSize()) / 8
	if got := sim.Gateway.Meter.Get("cloud-upload"); got != devices*featBytes {
		t.Errorf("cloud-upload bytes = %d, want %d (= n·f·o/8)", got, devices*featBytes)
	}
	if sim.Gateway.WireBytesUp() <= wantSummary {
		t.Error("wire bytes must exceed payload bytes (framing overhead)")
	}
}

func TestLocalExitSendsNoFeatures(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.Threshold = 1 // everything exits locally
	sim := newSim(t, cfg)
	for id := 0; id < 5; id++ {
		if _, err := sim.Gateway.Classify(context.Background(), uint64(id)); err != nil {
			t.Fatal(err)
		}
	}
	if got := sim.Gateway.Meter.Get("cloud-upload"); got != 0 {
		t.Errorf("cloud-upload bytes = %d, want 0 when all samples exit locally", got)
	}
}

func TestFaultToleranceSingleDeviceFailure(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.DeviceTimeout = 200 * time.Millisecond
	sim := newSim(t, cfg)

	sim.Devices[2].SetFailed(true)
	res, err := sim.Gateway.Classify(context.Background(), 3)
	if err != nil {
		t.Fatalf("classification failed with one dead device: %v", err)
	}
	if res.Present[2] {
		t.Error("failed device marked present")
	}
	okCount := 0
	for d, p := range res.Present {
		if p && d == 2 {
			t.Error("dead device contributed")
		}
		if p {
			okCount++
		}
	}
	if okCount == 0 {
		t.Error("no live devices contributed")
	}
}

func TestStickyFailureDetection(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.DeviceTimeout = 100 * time.Millisecond
	cfg.MaxFailures = 2
	sim := newSim(t, cfg)

	sim.Devices[1].SetFailed(true)
	for id := 0; id < 3; id++ {
		if _, err := sim.Gateway.Classify(context.Background(), uint64(id)); err != nil {
			t.Fatal(err)
		}
	}
	down := sim.Gateway.DownDevices()
	if len(down) != 1 || down[0] != 1 {
		t.Errorf("DownDevices = %v, want [1]", down)
	}

	// A down device is skipped immediately: the session must be fast.
	start := time.Now()
	if _, err := sim.Gateway.Classify(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > cfg.DeviceTimeout {
		t.Errorf("session with down device took %v, want < %v (no timeout wait)", elapsed, cfg.DeviceTimeout)
	}
}

func TestAllDevicesFailedReturnsError(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.DeviceTimeout = 100 * time.Millisecond
	sim := newSim(t, cfg)
	for _, d := range sim.Devices {
		d.SetFailed(true)
	}
	if _, err := sim.Gateway.Classify(context.Background(), 0); err == nil {
		t.Error("classification succeeded with every device dead")
	}
}

func TestDeviceRecovery(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.DeviceTimeout = 100 * time.Millisecond
	cfg.MaxFailures = 0 // no sticky marking: retry each session
	sim := newSim(t, cfg)

	sim.Devices[0].SetFailed(true)
	res, err := sim.Gateway.Classify(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Present[0] {
		t.Error("failed device contributed")
	}

	sim.Devices[0].SetFailed(false)
	res, err = sim.Gateway.Classify(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Present[0] {
		t.Error("recovered device still absent")
	}
}

func TestHealthMonitorDetectsFailureAndRecovery(t *testing.T) {
	model, test := fixture(t)
	tr := transport.NewMem()
	cfg := DefaultGatewayConfig()
	cfg.MaxFailures = 0 // leave detection entirely to the health monitor

	addrs := make([]string, model.Cfg.Devices)
	var devices []*Device
	for d := 0; d < model.Cfg.Devices; d++ {
		dev := NewDevice(model, d, DatasetFeed(test, d), quietLogger())
		addrs[d] = "hm-device-" + string(rune('0'+d))
		if err := dev.Serve(tr, addrs[d]); err != nil {
			t.Fatal(err)
		}
		defer dev.Close()
		devices = append(devices, dev)
	}
	cloud := NewCloud(model, quietLogger())
	if err := cloud.Serve(tr, "hm-cloud"); err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()
	gw, err := NewGateway(context.Background(), model, cfg, tr, addrs, []string{"hm-cloud"}, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	hm, err := gw.StartHealthMonitor(context.Background(), tr, addrs, []string{"hm-cloud"}, 25*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hm.Stop()

	// Crash device 3 and wait for the detector.
	devices[3].SetFailed(true)
	deadline := time.Now().Add(3 * time.Second)
	for len(gw.DownDevices()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if down := gw.DownDevices(); len(down) != 1 || down[0] != 3 {
		t.Fatalf("DownDevices = %v, want [3]", down)
	}

	// Classification keeps working and skips the dead device immediately.
	res, err := gw.Classify(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Present[3] {
		t.Error("down device contributed to inference")
	}

	// Recover the device; the monitor must mark it up automatically.
	devices[3].SetFailed(false)
	deadline = time.Now().Add(3 * time.Second)
	for len(gw.DownDevices()) != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if down := gw.DownDevices(); len(down) != 0 {
		t.Fatalf("device did not recover: DownDevices = %v", down)
	}
	res, err = gw.Classify(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Present[3] {
		t.Error("recovered device still excluded from inference")
	}
}

func TestHealthMonitorRejectsBadArgs(t *testing.T) {
	sim := newSim(t, DefaultGatewayConfig())
	tr := transport.NewMem()
	model, _ := fixture(t)
	tooMany := make([]string, model.Cfg.Devices+1)
	if _, err := sim.Gateway.StartHealthMonitor(context.Background(), tr, tooMany, nil, time.Second, 3); !errors.Is(err, ErrDeviceSlotMismatch) {
		t.Errorf("too many addresses: err = %v, want ErrDeviceSlotMismatch", err)
	}
	if _, err := sim.Gateway.StartHealthMonitor(context.Background(), tr, nil, nil, 0, 3); err == nil {
		t.Error("accepted non-positive interval")
	}
}

func TestCloudFailureSurfacesError(t *testing.T) {
	// With the cloud down, confident samples still exit locally, and
	// cloud-bound samples fail with an error instead of hanging.
	cfg := DefaultGatewayConfig()
	cfg.Threshold = -1 // force every sample to the cloud
	cfg.CloudTimeout = 300 * time.Millisecond
	sim := newSim(t, cfg)
	sim.Cloud().Close()

	start := time.Now()
	_, err := sim.Gateway.Classify(context.Background(), 0)
	if err == nil {
		t.Fatal("classification succeeded with the cloud down")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("cloud-down classification took %v; must fail fast", elapsed)
	}

	// Confident samples are unaffected: they never touch the cloud.
	cfg2 := DefaultGatewayConfig()
	cfg2.Threshold = 1
	model, test := fixture(t)
	tr := transport.NewMem()
	sim2, err := NewSim(model, test, cfg2, tr, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer sim2.Close()
	sim2.Cloud().Close()
	if _, err := sim2.Gateway.Classify(context.Background(), 0); err != nil {
		t.Errorf("local-exit classification failed with cloud down: %v", err)
	}
}

func TestCloudRejectsWrongDeviceCount(t *testing.T) {
	model, _ := fixture(t)
	tr := transport.NewMem()
	cloud := NewCloud(model, quietLogger())
	if err := cloud.Serve(tr, "cloud-reject"); err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()
	conn, err := tr.Dial(context.Background(), "cloud-reject")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := wire.Encode(conn, &wire.CloudClassify{SampleID: 1, Devices: 99, Mask: 1}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.Decode(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*wire.Error); !ok {
		t.Errorf("cloud replied %v to bad device count, want Error", msg.MsgType())
	}
}

func TestDeviceRepliesErrorForUnknownSample(t *testing.T) {
	model, test := fixture(t)
	tr := transport.NewMem()
	dev := NewDevice(model, 0, DatasetFeed(test, 0), quietLogger())
	if err := dev.Serve(tr, "dev-unknown"); err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	conn, err := tr.Dial(context.Background(), "dev-unknown")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := wire.Encode(conn, &wire.CaptureRequest{SampleID: 1 << 40}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.Decode(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*wire.Error); !ok {
		t.Errorf("device replied %v to out-of-range sample, want Error", msg.MsgType())
	}
}

func TestClusterOverTCP(t *testing.T) {
	model, test := fixture(t)
	tr := transport.TCP{}

	var devices []*Device
	addrs := make([]string, model.Cfg.Devices)
	for d := 0; d < model.Cfg.Devices; d++ {
		dev := NewDevice(model, d, DatasetFeed(test, d), quietLogger())
		if err := dev.Serve(tr, "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer dev.Close()
		devices = append(devices, dev)
		addrs[d] = dev.listener.Addr().String()
	}
	cloud := NewCloud(model, quietLogger())
	if err := cloud.Serve(tr, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()

	gw, err := NewGateway(context.Background(), model, DefaultGatewayConfig(), tr, addrs, []string{cloud.listener.Addr().String()}, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	for id := 0; id < 5; id++ {
		res, err := gw.Classify(context.Background(), uint64(id))
		if err != nil {
			t.Fatalf("TCP sample %d: %v", id, err)
		}
		if res.Class < 0 || res.Class >= dataset.NumClasses {
			t.Errorf("TCP sample %d class out of range", id)
		}
	}
	_ = devices
}

func TestGatewayConcurrentSessionsMatchSerial(t *testing.T) {
	// Many concurrent sessions must produce exactly the decisions the
	// serial gateway produced: same class, same exit, per sample.
	sim := newSim(t, DefaultGatewayConfig())
	const samples = 12
	want := make([]*Result, samples)
	for id := 0; id < samples; id++ {
		res, err := sim.Gateway.Classify(context.Background(), uint64(id))
		if err != nil {
			t.Fatalf("serial sample %d: %v", id, err)
		}
		want[id] = res
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*samples)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for id := 0; id < samples; id++ {
				res, err := sim.Gateway.Classify(context.Background(), uint64(id))
				if err != nil {
					errs <- fmt.Errorf("worker %d sample %d: %w", w, id, err)
					return
				}
				if res.Class != want[id].Class || res.Exit != want[id].Exit {
					errs <- fmt.Errorf("worker %d sample %d: got class %d exit %v, want %d %v",
						w, id, res.Class, res.Exit, want[id].Class, want[id].Exit)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEngineBoundsConcurrencyAndClassifies(t *testing.T) {
	model, test := fixture(t)
	eng, err := NewEngine(model, test, EngineConfig{
		Gateway:        DefaultGatewayConfig(),
		MaxConcurrency: 4,
		Logger:         quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ids := make([]uint64, 16)
	for i := range ids {
		ids[i] = uint64(i % test.Len())
	}
	results, err := eng.ClassifyBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("result %d missing", i)
		}
		if res.SampleID != ids[i] {
			t.Errorf("result %d is for sample %d, want %d", i, res.SampleID, ids[i])
		}
	}
}

func TestEngineClassifyAfterCloseFails(t *testing.T) {
	model, test := fixture(t)
	eng, err := NewEngine(model, test, EngineConfig{Gateway: DefaultGatewayConfig(), Logger: quietLogger()}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if _, err := eng.Classify(context.Background(), 0); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestClassifyCanceledContext(t *testing.T) {
	sim := newSim(t, DefaultGatewayConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sim.Gateway.Classify(ctx, 0)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v must also wrap context.Canceled", err)
	}
}

func TestClassifyContextDeadline(t *testing.T) {
	// A deadline shorter than any device round trip must surface as
	// ErrDeadlineExceeded even though DeviceTimeout is generous.
	cfg := DefaultGatewayConfig()
	sim := newSim(t, cfg)
	sim.Devices[0].SetFailed(true) // at least one silent device keeps the session waiting
	for _, d := range sim.Devices {
		d.SetFailed(true)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := sim.Gateway.Classify(ctx, 0)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("err = %v, want ErrDeadlineExceeded", err)
	}
}

func TestSimulatedLinksAddLatency(t *testing.T) {
	// With simulated link profiles, a cloud-exit sample must be slower
	// than a local-exit sample (vertical-scaling latency claim of §V).
	model, test := fixture(t)
	tr := transport.NewMem()

	// Local-exit-only gateway.
	simAll, err := NewSim(model, test, GatewayConfig{
		Threshold:     1,
		DeviceTimeout: 2 * time.Second,
		CloudTimeout:  5 * time.Second,
	}, tr, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer simAll.Close()
	resLocal, err := simAll.Gateway.Classify(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}

	tr2 := transport.NewMem()
	simCloud, err := NewSim(model, test, GatewayConfig{
		Threshold:     -1,
		DeviceTimeout: 2 * time.Second,
		CloudTimeout:  5 * time.Second,
	}, tr2, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer simCloud.Close()
	resCloud, err := simCloud.Gateway.Classify(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}

	if resCloud.Latency <= resLocal.Latency {
		t.Logf("note: cloud latency %v vs local %v (no simulated links, close is fine)", resCloud.Latency, resLocal.Latency)
	}
	if resLocal.Exit != wire.ExitLocal || resCloud.Exit != wire.ExitCloud {
		t.Errorf("exits = %v/%v, want local/cloud", resLocal.Exit, resCloud.Exit)
	}
}
