package cluster

import (
	"context"
	"testing"
	"time"

	"github.com/ddnn/ddnn-go/internal/branchy"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// TestCloudReplicaFailoverMidBatch is the availability contract of the
// replicated cloud tier (run with -race in CI): a 2-replica cloud pool
// serves a cloud-bound micro-batched stream, one replica is crashed
// mid-run, and every sample must still be classified with exactly the
// class the staged single-process reference assigns — the failed-over
// escalation re-sends the same bit-packed feature frames to a replica
// holding the same frozen model, so the answer is bit-identical.
func TestCloudReplicaFailoverMidBatch(t *testing.T) {
	model, test := fixture(t)
	ref := model.Evaluate(test, nil, 32)

	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = -1 // force every sample through the cloud pool
	gcfg.CloudTimeout = 400 * time.Millisecond
	eng, err := NewEngine(model, test, EngineConfig{
		Gateway:        gcfg,
		MaxConcurrency: 4,
		Batch:          BatchConfig{MaxBatch: 8},
		CloudReplicas:  2,
		Logger:         quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := len(eng.Clouds()); got != 2 {
		t.Fatalf("engine started %d cloud replicas, want 2", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	n := test.Len()
	killAt := n / 2
	const window = 16
	for base := 0; base < n; base += window {
		if base <= killAt && killAt < base+window {
			eng.Clouds()[0].SetFailed(true)
		}
		end := base + window
		if end > n {
			end = n
		}
		ids := make([]uint64, 0, end-base)
		for id := base; id < end; id++ {
			ids = append(ids, uint64(id))
		}
		results, err := eng.ClassifyBatch(ctx, ids)
		if err != nil {
			t.Fatalf("window at %d (kill at %d): %v", base, killAt, err)
		}
		for i, res := range results {
			if res == nil {
				t.Fatalf("sample %d: nil result", base+i)
			}
			if res.Exit != wire.ExitCloud {
				t.Errorf("sample %d exit = %v, want cloud", base+i, res.Exit)
			}
			if want := argmaxRow(ref.CloudProbs[base+i]); res.Class != want {
				t.Errorf("sample %d class = %d, want %d (bit-identical failover)", base+i, res.Class, want)
			}
		}
	}

	// Under continued traffic the crashed replica must end up fenced
	// (consecutive escalation timeouts), with the survivor serving. The
	// short run above may have routed too few sessions its way, so keep
	// classifying until the detector trips.
	deadline := time.Now().Add(20 * time.Second)
	for eng.Gateway().Upstream().Healthy() != 1 && time.Now().Before(deadline) {
		if _, err := eng.ClassifyBatch(ctx, []uint64{0, 1, 2, 3}); err != nil {
			t.Fatalf("classification while waiting for fencing: %v", err)
		}
	}
	if got := eng.Gateway().Upstream().Healthy(); got != 1 {
		t.Errorf("healthy replicas = %d after the crash, want 1", got)
	}
	if eng.Gateway().UpstreamDown() {
		t.Error("UpstreamDown() = true with one healthy replica left")
	}
}

// TestEdgeReplicaFailoverMidStream is the same contract one tier down in
// the three-tier hierarchy: two edge replicas (each pooling the cloud),
// one crashed mid-stream, every sample still classified exactly as the
// staged reference dictates.
func TestEdgeReplicaFailoverMidStream(t *testing.T) {
	model, test := edgeFixture(t)
	res := model.Evaluate(test, nil, 32)
	const localT, edgeT = -1, 0.8 // skip local, exit edge or cloud
	pol := branchy.NewPolicy(localT, edgeT, 1)

	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = localT
	gcfg.EdgeThreshold = edgeT
	gcfg.EdgeTimeout = 600 * time.Millisecond
	eng, err := NewEngine(model, test, EngineConfig{
		Gateway:        gcfg,
		MaxConcurrency: 4,
		EdgeReplicas:   2,
		Logger:         quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := len(eng.Edges()); got != 2 {
		t.Fatalf("engine started %d edge replicas, want 2", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	n := test.Len()
	killAt := n / 3
	for i := 0; i < n; i++ {
		if i == killAt {
			eng.Edges()[0].SetFailed(true)
		}
		r, err := eng.Classify(ctx, uint64(i))
		if err != nil {
			t.Fatalf("sample %d (kill at %d): %v", i, killAt, err)
		}
		wantExit, wantClass := stagedExpectation(res, pol, i)
		if r.Exit != wantExit || r.Class != wantClass {
			t.Errorf("sample %d = (%v, %d), want (%v, %d)", i, r.Exit, r.Class, wantExit, wantClass)
		}
	}
}
