package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ddnn/ddnn-go/internal/transport"
)

// TestEdgeTierDeviceKillMidStreamNoDeadlock is the §IV-G degradation
// contract under the three-tier hierarchy and concurrency (run with
// -race in CI): device nodes are killed — and partially revived — while
// a stream of sessions is in flight, and every session must end in
// bounded time with either a result whose Present mask excludes dead
// devices or one of the typed serving errors. A deadlock fails the test
// via the watchdog.
func TestEdgeTierDeviceKillMidStreamNoDeadlock(t *testing.T) {
	model, test := edgeFixture(t)
	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = -1 // force escalation so the feature-fetch path races the kills
	gcfg.EdgeThreshold = 0.5
	gcfg.DeviceTimeout = 150 * time.Millisecond
	gcfg.EdgeTimeout = 2 * time.Second
	gcfg.MaxFailures = 0 // no sticky marking: every session re-probes the dead devices
	eng, err := NewEngine(model, test, EngineConfig{
		Gateway:        gcfg,
		MaxConcurrency: 8,
		Logger:         quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const workers = 6
	const perWorker = 10
	errs := make(chan error, workers*perWorker)
	var wg sync.WaitGroup
	var killOnce, reviveOnce sync.Once
	var completed int32
	var mu sync.Mutex

	bump := func() int32 {
		mu.Lock()
		defer mu.Unlock()
		completed++
		return completed
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				res, err := eng.Classify(ctx, uint64((w*perWorker+i)%test.Len()))
				done := bump()
				// Kill half the devices mid-stream once the pipeline is
				// warm, and revive one of them later, racing in-flight
				// capture and feature-fetch rounds.
				if done == workers*perWorker/4 {
					killOnce.Do(func() {
						for d := 0; d < model.Cfg.Devices/2; d++ {
							eng.Devices()[d].SetFailed(true)
						}
					})
				}
				if done == workers*perWorker/2 {
					reviveOnce.Do(func() { eng.Devices()[0].SetFailed(false) })
				}
				if err != nil {
					// §IV-G degradation: failures must surface as one of
					// the typed serving errors, never anything untyped.
					if !errors.Is(err, ErrNoSummaries) &&
						!errors.Is(err, ErrEdgeUnavailable) &&
						!errors.Is(err, ErrCloudUnavailable) &&
						!errors.Is(err, ErrDeadlineExceeded) &&
						!errors.Is(err, ErrCanceled) &&
						!errors.Is(err, ErrClosed) {
						errs <- fmt.Errorf("worker %d sample %d: untyped error: %w", w, i, err)
					}
					continue
				}
				// Masked aggregation: a result produced while devices are
				// dead must not claim contributions from all of them...
				// unless the session raced the kill; what it must never
				// do is claim a class outside the label space.
				if res.Class < 0 || res.Class >= model.Cfg.Classes {
					errs <- fmt.Errorf("worker %d sample %d: class %d out of range", w, i, res.Class)
				}
			}
		}(w)
	}

	// Watchdog: the whole stream must drain well before the context
	// deadline; a stuck session means a deadlock in the escalation path.
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(55 * time.Second):
		t.Fatal("deadlock: fault-injection stream did not drain")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After reviving every device the engine must serve cleanly again.
	for d := 0; d < model.Cfg.Devices; d++ {
		eng.Devices()[d].SetFailed(false)
	}
	res, err := eng.Classify(context.Background(), 0)
	if err != nil {
		t.Fatalf("classification after full recovery: %v", err)
	}
	for d, p := range res.Present {
		if !p {
			t.Errorf("device %d still absent after recovery", d)
		}
	}
}

// TestHealthMonitorFlappingDeviceRecovery exercises recovery flapping
// (run with -race in CI): a device that oscillates down→up→down across
// probe intervals must be skipped while down and re-admitted while up by
// in-flight Classify calls, without races between the monitor's state
// flips and the sessions reading them. Every session must end with a
// result (Present may or may not include the flapping device, depending
// on where the flap landed) or a typed error — never an untyped failure,
// never a deadlock.
func TestHealthMonitorFlappingDeviceRecovery(t *testing.T) {
	model, test := fixture(t)
	gcfg := DefaultGatewayConfig()
	gcfg.MaxFailures = 0 // detection belongs to the health monitor alone
	gcfg.DeviceTimeout = 200 * time.Millisecond
	eng, err := NewEngine(model, test, EngineConfig{
		Gateway:        gcfg,
		MaxConcurrency: 4,
		Logger:         quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	hm, err := eng.StartHealthMonitor(context.Background(), 20*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hm.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stop := make(chan struct{})
	errs := make(chan error, 256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := eng.Classify(ctx, uint64((w*31+i)%test.Len()))
				if err != nil {
					if !errors.Is(err, ErrNoSummaries) && !errors.Is(err, ErrCloudUnavailable) &&
						!errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, ErrCanceled) {
						errs <- fmt.Errorf("worker %d: untyped error: %w", w, err)
						return
					}
					continue
				}
				if res.Class < 0 || res.Class >= model.Cfg.Classes {
					errs <- fmt.Errorf("worker %d: class %d out of range", w, res.Class)
					return
				}
			}
		}(w)
	}

	// Flap device 1 across several probe intervals: down long enough for
	// the detector to mark it (2 misses at 20 ms), up long enough to be
	// re-admitted, repeatedly.
	dev := eng.Devices()[1]
	for cycle := 0; cycle < 4; cycle++ {
		dev.SetFailed(true)
		time.Sleep(90 * time.Millisecond)
		dev.SetFailed(false)
		time.Sleep(90 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// With the device finally healthy, the monitor must re-admit it and
	// sessions must see it present again.
	deadline := time.Now().Add(3 * time.Second)
	for len(eng.Gateway().DownDevices()) != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if down := eng.Gateway().DownDevices(); len(down) != 0 {
		t.Fatalf("flapping device never re-admitted: DownDevices = %v", down)
	}
	res, err := eng.Classify(context.Background(), 0)
	if err != nil {
		t.Fatalf("classification after flap settled: %v", err)
	}
	if !res.Present[1] {
		t.Error("recovered device still absent from inference")
	}
}

// TestHealthMonitorSurvivesUnresponsiveProbePeer pins the probe-write
// deadline: a probed peer that accepts its connection but never drains
// it (a wedged process — over the unbuffered in-memory transport every
// write then blocks until read) must be marked down like any silent
// node, and Stop must still return. Without the write deadline the
// first blocked heartbeat wedged the probe loop forever and Stop hung
// on its WaitGroup; the chaos harness (internal/chaos) found the wedge
// via its drain watchdog.
func TestHealthMonitorSurvivesUnresponsiveProbePeer(t *testing.T) {
	model, test := fixture(t)
	tr := transport.NewMem()
	sim, err := NewSim(model, test, DefaultGatewayConfig(), tr, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()

	// Black-hole listeners: they accept probe connections and never
	// read a byte.
	var (
		mu    sync.Mutex
		conns []interface{ Close() error }
	)
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}()
	addrs := make([]string, model.Cfg.Devices)
	for d := range addrs {
		addrs[d] = fmt.Sprintf("blackhole-%d", d)
		l, err := tr.Listen(addrs[d])
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				mu.Lock()
				conns = append(conns, c)
				mu.Unlock()
			}
		}()
	}

	hm, err := sim.Gateway.StartHealthMonitor(context.Background(), tr, addrs, nil, 20*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}

	// The blocked writes must count as missed probes: every device goes
	// down even though no probe ever errored out at the peer.
	deadline := time.Now().Add(5 * time.Second)
	for len(sim.Gateway.DownDevices()) < model.Cfg.Devices && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if down := sim.Gateway.DownDevices(); len(down) != model.Cfg.Devices {
		t.Fatalf("DownDevices = %v, want all %d devices", down, model.Cfg.Devices)
	}

	// And the probe loops must stay stoppable while every peer wedges.
	done := make(chan struct{})
	go func() {
		hm.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("HealthMonitor.Stop wedged on unresponsive probe peers")
	}
}
