package cluster

import (
	"context"
	"fmt"
	"log/slog"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/transport"
)

// Sim assembles a complete DDNN cluster — device nodes, an edge node for
// edge-tier models, a gateway and a cloud node — over a transport,
// feeding device sensors from a dataset. Sample IDs are dataset indices.
type Sim struct {
	Devices []*Device
	Edge    *Edge // nil without an edge tier
	Cloud   *Cloud
	Gateway *Gateway

	addrs        []string
	upstreamAddr string
}

// DatasetFeed builds a Feed serving one device's views from a dataset.
// The returned feed is safe for concurrent sessions. Frames are views of
// the dataset's storage (no copy); consumers must treat them as
// read-only, which the inference path guarantees.
func DatasetFeed(ds *dataset.Dataset, device int) Feed {
	return func(sampleID uint64) (*tensor.Tensor, error) {
		idx := int(sampleID)
		if idx < 0 || idx >= ds.Len() {
			return nil, fmt.Errorf("cluster: sample %d out of range [0,%d)", idx, ds.Len())
		}
		return ds.DeviceView(device, idx), nil
	}
}

// NewSim starts every node of the hierarchy on the transport and connects
// the gateway to its upstream tier: the edge node for edge-tier models,
// the cloud otherwise. Addresses are synthesized as "device-N", "edge"
// and "cloud"; with a TCP transport pass explicit addresses via
// NewGateway instead.
func NewSim(model *core.Model, ds *dataset.Dataset, cfg GatewayConfig, tr transport.Transport, logger *slog.Logger) (*Sim, error) {
	s := &Sim{}
	addrs := make([]string, model.Cfg.Devices)
	for d := 0; d < model.Cfg.Devices; d++ {
		dev := NewDevice(model, d, DatasetFeed(ds, d), logger)
		addr := fmt.Sprintf("device-%d", d)
		if err := dev.Serve(tr, addr); err != nil {
			s.Close()
			return nil, err
		}
		s.Devices = append(s.Devices, dev)
		addrs[d] = addr
	}
	s.Cloud = NewCloud(model, logger)
	if err := s.Cloud.Serve(tr, "cloud"); err != nil {
		s.Close()
		return nil, err
	}
	upstream := "cloud"
	if model.Cfg.UseEdge {
		edge, err := NewEdge(model, DefaultEdgeConfig(), logger)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.Edge = edge
		if err := edge.Serve(tr, "edge"); err != nil {
			s.Close()
			return nil, err
		}
		if err := edge.ConnectCloud(context.Background(), tr, "cloud"); err != nil {
			s.Close()
			return nil, err
		}
		upstream = "edge"
	}
	gw, err := NewGateway(context.Background(), model, cfg, tr, addrs, upstream, logger)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.Gateway = gw
	s.addrs = addrs
	s.upstreamAddr = upstream
	return s, nil
}

// DeviceAddrs returns the synthesized device addresses, in device order.
func (s *Sim) DeviceAddrs() []string { return append([]string(nil), s.addrs...) }

// UpstreamAddr returns the address of the tier the gateway escalates to.
func (s *Sim) UpstreamAddr() string { return s.upstreamAddr }

// Close tears the whole cluster down.
func (s *Sim) Close() error {
	if s.Gateway != nil {
		s.Gateway.Close()
	}
	for _, d := range s.Devices {
		d.Close()
	}
	if s.Edge != nil {
		s.Edge.Close()
	}
	if s.Cloud != nil {
		s.Cloud.Close()
	}
	return nil
}
