package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"sync"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/transport"
)

// Topology sizes the replicated tiers of an in-process cluster. The zero
// value means one replica per tier — the paper's original single-edge,
// single-cloud hierarchy.
type Topology struct {
	// EdgeReplicas is the number of edge nodes to start for edge-tier
	// models (ignored otherwise); 0 means 1.
	EdgeReplicas int
	// CloudReplicas is the number of cloud nodes to start; 0 means 1.
	CloudReplicas int
	// Edge configures the edge replicas (cloud escalation budget,
	// fallback behavior); nil means DefaultEdgeConfig.
	Edge *EdgeConfig
}

// normalize applies the zero-value defaults.
func (t Topology) normalize() Topology {
	if t.EdgeReplicas <= 0 {
		t.EdgeReplicas = 1
	}
	if t.CloudReplicas <= 0 {
		t.CloudReplicas = 1
	}
	return t
}

// Sim assembles a complete DDNN cluster — device nodes, the edge replicas
// for edge-tier models, a gateway and the cloud replicas — over a
// transport, feeding device sensors from a dataset. Sample IDs are
// dataset indices.
type Sim struct {
	// Devices are the in-process device nodes, in device order.
	Devices []*Device
	// Edges are the edge replicas; empty without an edge tier.
	Edges []*Edge
	// Clouds are the cloud replicas.
	Clouds []*Cloud
	// Gateway is the local aggregator fronting the hierarchy.
	Gateway *Gateway

	addrs         []string
	upstreamAddrs []string
	uploads       *uploadStore

	// Construction inputs retained so RestartEdge/RestartCloud can build
	// replacement replicas on the original addresses.
	model      *core.Model
	tr         transport.Transport
	logger     *slog.Logger
	cloudAddrs []string
	edgeCfg    EdgeConfig

	// mu serializes restarts with each other and with Close, and guards
	// the Edges/Clouds slice elements they replace. Callers that restart
	// replicas at runtime must read them through EdgeReplica/CloudReplica
	// (not the bare slices) to stay race-free.
	mu     sync.Mutex
	closed bool
}

// DatasetFeed builds a Feed serving one device's views from a dataset.
// The returned feed is safe for concurrent sessions. Frames are views of
// the dataset's storage (no copy); consumers must treat them as
// read-only, which the inference path guarantees.
func DatasetFeed(ds *dataset.Dataset, device int) Feed {
	return func(sampleID uint64) (*tensor.Tensor, error) {
		idx := int(sampleID)
		if idx < 0 || idx >= ds.Len() {
			return nil, fmt.Errorf("cluster: sample %d out of range [0,%d)", idx, ds.Len())
		}
		return ds.DeviceView(device, idx), nil
	}
}

// NewSim starts a single-replica hierarchy on the transport; it is
// NewReplicatedSim with the zero Topology.
func NewSim(model *core.Model, ds *dataset.Dataset, cfg GatewayConfig, tr transport.Transport, logger *slog.Logger) (*Sim, error) {
	return NewReplicatedSim(model, ds, cfg, Topology{}, tr, logger)
}

// NewReplicatedSim starts every node of the hierarchy on the transport —
// topo.CloudReplicas cloud nodes, topo.EdgeReplicas edge nodes for
// edge-tier models, one device node per sensor — and connects the
// gateway to its upstream replica pool: the edge tier for edge-tier
// models, the cloud tier otherwise. Every edge replica pools all cloud
// replicas. Addresses are synthesized as "device-N", "edge-N" and
// "cloud-N"; with a TCP transport pass explicit addresses via NewGateway
// instead.
func NewReplicatedSim(model *core.Model, ds *dataset.Dataset, cfg GatewayConfig, topo Topology, tr transport.Transport, logger *slog.Logger) (*Sim, error) {
	topo = topo.normalize()
	s := &Sim{uploads: newUploadStore()}
	addrs := make([]string, model.Cfg.Devices)
	for d := 0; d < model.Cfg.Devices; d++ {
		dev := NewDevice(model, d, uploadFeed(s.uploads, DatasetFeed(ds, d), d), logger)
		addr := fmt.Sprintf("device-%d", d)
		if err := dev.Serve(tr, addr); err != nil {
			s.Close()
			return nil, err
		}
		s.Devices = append(s.Devices, dev)
		addrs[d] = addr
	}
	cloudAddrs := make([]string, topo.CloudReplicas)
	for i := 0; i < topo.CloudReplicas; i++ {
		cloud := NewCloud(model, logger)
		cloudAddrs[i] = fmt.Sprintf("cloud-%d", i)
		if err := cloud.Serve(tr, cloudAddrs[i]); err != nil {
			s.Close()
			return nil, err
		}
		s.Clouds = append(s.Clouds, cloud)
	}
	upstream := cloudAddrs
	edgeCfg := DefaultEdgeConfig()
	if topo.Edge != nil {
		edgeCfg = *topo.Edge
	}
	s.edgeCfg = edgeCfg
	if model.Cfg.UseEdge {
		edgeAddrs := make([]string, topo.EdgeReplicas)
		for i := 0; i < topo.EdgeReplicas; i++ {
			edge, err := NewEdge(model, edgeCfg, logger)
			if err != nil {
				s.Close()
				return nil, err
			}
			s.Edges = append(s.Edges, edge)
			edgeAddrs[i] = fmt.Sprintf("edge-%d", i)
			if err := edge.Serve(tr, edgeAddrs[i]); err != nil {
				s.Close()
				return nil, err
			}
			if err := edge.ConnectCloud(context.Background(), tr, cloudAddrs...); err != nil {
				s.Close()
				return nil, err
			}
		}
		upstream = edgeAddrs
	}
	gw, err := NewGateway(context.Background(), model, cfg, tr, addrs, upstream, logger)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.Gateway = gw
	s.addrs = addrs
	s.upstreamAddrs = upstream
	s.model = model
	s.tr = tr
	s.logger = logger
	s.cloudAddrs = cloudAddrs
	return s, nil
}

// DeviceAddrs returns the synthesized device addresses, in device order.
func (s *Sim) DeviceAddrs() []string { return append([]string(nil), s.addrs...) }

// UpstreamAddrs returns the addresses of the tier the gateway escalates
// to, in replica order.
func (s *Sim) UpstreamAddrs() []string { return append([]string(nil), s.upstreamAddrs...) }

// Edge returns the first edge replica, or nil without an edge tier.
func (s *Sim) Edge() *Edge {
	if len(s.Edges) == 0 {
		return nil
	}
	return s.Edges[0]
}

// Cloud returns the first cloud replica, or nil before construction
// finished.
func (s *Sim) Cloud() *Cloud {
	if len(s.Clouds) == 0 {
		return nil
	}
	return s.Clouds[0]
}

// EdgeReplica returns edge replica i (the current node serving
// "edge-i", which RestartEdge may have replaced), or nil out of range.
func (s *Sim) EdgeReplica(i int) *Edge {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.Edges) {
		return nil
	}
	return s.Edges[i]
}

// CloudReplica returns cloud replica i (the current node serving
// "cloud-i", which RestartCloud may have replaced), or nil out of range.
func (s *Sim) CloudReplica(i int) *Cloud {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.Clouds) {
		return nil
	}
	return s.Clouds[i]
}

// edgeCount returns the number of edge replica slots (fixed for the
// sim's lifetime; restarts replace slots, never resize).
func (s *Sim) edgeCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.Edges)
}

// cloudCount returns the number of cloud replica slots.
func (s *Sim) cloudCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.Clouds)
}

// setModelVersion rebases every node's model registry so the
// construction model is known fleet-wide under version v instead of the
// default 1. Called by NewEngine before traffic starts.
func (s *Sim) setModelVersion(v uint64) {
	for _, d := range s.Devices {
		d.reg = newModelRegistry(s.model, v)
	}
	for _, e := range s.Edges {
		e.reg = newModelRegistry(s.model, v)
	}
	for _, c := range s.Clouds {
		c.reg = newModelRegistry(s.model, v)
	}
	s.Gateway.reg = newModelRegistry(s.model, v)
}

// adoptRegistry seeds a replacement replica's registry from the
// gateway's, so a node restarted mid-lifecycle serves the fleet's
// current versions (and can resolve any version a live session pinned)
// instead of rebooting to the construction model alone.
func (s *Sim) adoptRegistry(r *modelRegistry) {
	if s.Gateway == nil {
		return
	}
	models, active := s.Gateway.reg.snapshot()
	r.adopt(models, active)
}

// RestartCloud hard-restarts cloud replica i: the old node is torn down
// (its listener and every link into it die, unlike the silent-failure
// mode of SetFailed) and a fresh replica starts on the same address.
// Downstream replica pools re-admit it lazily (a session's re-dial or a
// health-monitor probe), exactly as they would a rebooted host.
func (s *Sim) RestartCloud(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("cluster: sim is closed")
	}
	if i < 0 || i >= len(s.Clouds) {
		return fmt.Errorf("cluster: cloud replica %d out of range [0,%d)", i, len(s.Clouds))
	}
	s.Clouds[i].Close()
	cloud := NewCloud(s.model, s.logger)
	s.adoptRegistry(cloud.reg)
	if err := cloud.Serve(s.tr, s.cloudAddrs[i]); err != nil {
		return fmt.Errorf("cluster: restart cloud %d: %w", i, err)
	}
	s.Clouds[i] = cloud
	return nil
}

// RestartEdge hard-restarts edge replica i on its original address; see
// RestartCloud. The replacement is fully wired (cloud pool connected)
// before the old node is torn down, so a cloud replica that is
// unreachable at restart time fails the restart and leaves the old
// node serving.
func (s *Sim) RestartEdge(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("cluster: sim is closed")
	}
	if i < 0 || i >= len(s.Edges) {
		return fmt.Errorf("cluster: edge replica %d out of range [0,%d)", i, len(s.Edges))
	}
	edge, err := NewEdge(s.model, s.edgeCfg, s.logger)
	if err != nil {
		return fmt.Errorf("cluster: restart edge %d: %w", i, err)
	}
	s.adoptRegistry(edge.reg)
	if err := edge.ConnectCloud(context.Background(), s.tr, s.cloudAddrs...); err != nil {
		return fmt.Errorf("cluster: restart edge %d: %w", i, err)
	}
	s.Edges[i].Close()
	if err := edge.Serve(s.tr, s.upstreamAddrs[i]); err != nil {
		return fmt.Errorf("cluster: restart edge %d: %w", i, err)
	}
	s.Edges[i] = edge
	return nil
}

// Close tears the whole cluster down.
func (s *Sim) Close() error {
	s.mu.Lock()
	s.closed = true
	edges := append([]*Edge(nil), s.Edges...)
	clouds := append([]*Cloud(nil), s.Clouds...)
	s.mu.Unlock()
	if s.Gateway != nil {
		s.Gateway.Close()
	}
	for _, d := range s.Devices {
		d.Close()
	}
	for _, e := range edges {
		e.Close()
	}
	for _, c := range clouds {
		c.Close()
	}
	return nil
}
