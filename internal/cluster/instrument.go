package cluster

import (
	"sync/atomic"
	"time"

	"github.com/ddnn/ddnn-go/internal/wire"
)

// Instrumentation receives serving observations from a gateway, so a
// front door (or any other operator surface) can export real metrics —
// per-exit classification counters and per-tier latency histograms —
// without the runtime depending on a metrics library. Callbacks may be
// nil; non-nil callbacks are invoked inline on the session goroutine and
// must be fast, non-blocking and safe for concurrent use.
type Instrumentation struct {
	// ExitObserved is called once per classified sample with the exit
	// point that answered it and the session's wall-clock latency. For
	// batched sessions it fires once per sample, all with the shared
	// session latency.
	ExitObserved func(exit wire.ExitPoint, latency time.Duration)
	// StageObserved is called once per tier round trip of a session:
	// the device capture fan-out plus local-exit decision (reported as
	// wire.ExitLocal) and, for sessions that escalate, the feature
	// fetch + escalation round trip attributed to the upstream tier
	// (wire.ExitEdge or wire.ExitCloud — whichever tier the gateway
	// talks to; a three-tier escalation's cloud hop is inside the edge
	// round trip). Batched sessions report one observation per round
	// trip, not per sample.
	StageObserved func(tier wire.ExitPoint, d time.Duration)
}

// SetInstrumentation installs (or, with the zero value, removes) the
// gateway's instrumentation callbacks. It is safe to call while sessions
// are in flight; in-flight sessions may report through either the old or
// the new callbacks.
func (g *Gateway) SetInstrumentation(in Instrumentation) {
	g.instr.Store(&in)
}

// instrumentation is an atomically-swappable Instrumentation holder.
type instrumentation struct {
	ptr atomic.Pointer[Instrumentation]
}

// Store swaps the installed callbacks.
func (i *instrumentation) Store(in *Instrumentation) { i.ptr.Store(in) }

// observeExit reports one classified sample.
func (i *instrumentation) observeExit(exit wire.ExitPoint, latency time.Duration) {
	if in := i.ptr.Load(); in != nil && in.ExitObserved != nil {
		in.ExitObserved(exit, latency)
	}
}

// observeStage reports one tier round trip.
func (i *instrumentation) observeStage(tier wire.ExitPoint, d time.Duration) {
	if in := i.ptr.Load(); in != nil && in.StageObserved != nil {
		in.StageObserved(tier, d)
	}
}
