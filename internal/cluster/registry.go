package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// registrationDialTimeout bounds the gateway's dial-back to a
// registering device's data-plane address.
const registrationDialTimeout = 5 * time.Second

// ServeRegistration starts the gateway's registration plane on addr: a
// listener accepting DeviceHello / DeviceGoodbye frames so devices can
// join, leave and re-register mid-run without a gateway restart. On a
// hello the gateway dials the device's advertised data-plane address
// back (the data plane keeps its gateway→device dial direction, so the
// capture/feature machinery is unchanged), installs the slot, and
// answers with a DeviceWelcome carrying the new topology config
// version; registration failures answer with a wire.Error. A goodbye
// removes the slot and is acknowledged the same way. The listener runs
// until the gateway closes.
func (g *Gateway) ServeRegistration(tr transport.Transport, addr string) error {
	ln, err := tr.Listen(addr)
	if err != nil {
		return fmt.Errorf("cluster: registration listen %s: %w", addr, err)
	}
	g.regMu.Lock()
	if g.regClosed {
		g.regMu.Unlock()
		ln.Close()
		return ErrClosed
	}
	if g.regListener != nil {
		g.regMu.Unlock()
		ln.Close()
		return fmt.Errorf("cluster: registration plane already serving")
	}
	g.regListener = ln
	if g.regConns == nil {
		g.regConns = make(map[interface{ Close() error }]struct{})
	}
	g.regWaitGroup.Add(1)
	g.regMu.Unlock()
	g.logger.Info("registration plane serving", "addr", addr)
	go g.acceptRegistrations(ln)
	return nil
}

// acceptRegistrations is the registration listener's accept loop.
func (g *Gateway) acceptRegistrations(ln net.Listener) {
	defer g.regWaitGroup.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		g.regMu.Lock()
		if g.regClosed {
			g.regMu.Unlock()
			conn.Close()
			return
		}
		g.regConns[conn] = struct{}{}
		g.regWaitGroup.Add(1)
		g.regMu.Unlock()
		go func() {
			defer g.regWaitGroup.Done()
			g.handleRegistration(conn)
			g.regMu.Lock()
			delete(g.regConns, conn)
			g.regMu.Unlock()
		}()
	}
}

// handleRegistration serves one registration connection: any number of
// hello/goodbye exchanges (a device may register, later deregister, and
// re-register over one connection or fresh ones — both work).
func (g *Gateway) handleRegistration(conn net.Conn) {
	defer conn.Close()
	var wmu sync.Mutex
	send := func(m wire.Message) error {
		wmu.Lock()
		defer wmu.Unlock()
		_, err := wire.Encode(conn, m)
		return err
	}
	for {
		msg, err := wire.Decode(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !g.registrationClosed() {
				g.logger.Warn("registration frame error", "err", err)
			}
			return
		}
		switch m := msg.(type) {
		case *wire.DeviceHello:
			ctx, cancel := context.WithTimeout(context.Background(), registrationDialTimeout)
			v, err := g.AdmitDevice(ctx, int(m.Slot), m.Addr)
			cancel()
			if err != nil {
				g.logger.Warn("registration rejected", "node", m.NodeID, "slot", m.Slot, "err", err)
				code := uint16(400)
				if errors.Is(err, ErrClosed) {
					code = 503
				}
				if send(&wire.Error{Code: code, Msg: err.Error()}) != nil {
					return
				}
				continue
			}
			g.logger.Info("device registered", "node", m.NodeID, "slot", m.Slot, "tenant", m.Tenant, "config_version", v)
			if send(&wire.DeviceWelcome{Slot: m.Slot, Devices: uint16(len(g.devices)), ConfigVersion: v}) != nil {
				return
			}
		case *wire.DeviceGoodbye:
			v, err := g.RemoveDevice(int(m.Slot))
			if err != nil {
				if send(&wire.Error{Code: 400, Msg: err.Error()}) != nil {
					return
				}
				continue
			}
			g.logger.Info("device deregistered", "node", m.NodeID, "slot", m.Slot, "reason", m.Reason, "config_version", v)
			if send(&wire.DeviceWelcome{Slot: m.Slot, Devices: uint16(len(g.devices)), ConfigVersion: v}) != nil {
				return
			}
		case *wire.Heartbeat:
			if send(m) != nil { // echo, same as the data-plane nodes
				return
			}
		default:
			if send(&wire.Error{Code: 400, Msg: fmt.Sprintf("unexpected %v on registration plane", msg.MsgType())}) != nil {
				return
			}
		}
	}
}

// registrationClosed reports whether the registration plane has shut down.
func (g *Gateway) registrationClosed() bool {
	g.regMu.Lock()
	defer g.regMu.Unlock()
	return g.regClosed
}

// closeRegistration tears the registration plane down and waits for its
// handlers to drain.
func (g *Gateway) closeRegistration() {
	g.regMu.Lock()
	if g.regClosed {
		g.regMu.Unlock()
		g.regWaitGroup.Wait()
		return
	}
	g.regClosed = true
	ln := g.regListener
	conns := make([]interface{ Close() error }, 0, len(g.regConns))
	for c := range g.regConns {
		conns = append(conns, c)
	}
	g.regMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	g.regWaitGroup.Wait()
}

// Register performs the device side of the registration handshake: it
// dials the gateway's registration plane, announces the device's slot,
// tenant and data-plane address, and waits for the DeviceWelcome. The
// returned welcome carries the topology config version the admission
// produced. The context bounds the whole exchange.
func Register(ctx context.Context, tr transport.Transport, gatewayAddr string, hello *wire.DeviceHello) (*wire.DeviceWelcome, error) {
	reply, err := registrationExchange(ctx, tr, gatewayAddr, hello)
	if err != nil {
		return nil, fmt.Errorf("cluster: register device %d: %w", hello.Slot, err)
	}
	return reply, nil
}

// Deregister performs the device side of a goodbye: it tells the
// gateway's registration plane the slot is vacating and waits for the
// acknowledging DeviceWelcome.
func Deregister(ctx context.Context, tr transport.Transport, gatewayAddr string, goodbye *wire.DeviceGoodbye) (*wire.DeviceWelcome, error) {
	reply, err := registrationExchange(ctx, tr, gatewayAddr, goodbye)
	if err != nil {
		return nil, fmt.Errorf("cluster: deregister device %d: %w", goodbye.Slot, err)
	}
	return reply, nil
}

// registrationExchange dials the registration plane, sends one frame
// and reads the reply, honoring ctx through a connection deadline.
func registrationExchange(ctx context.Context, tr transport.Transport, addr string, m wire.Message) (*wire.DeviceWelcome, error) {
	conn, err := tr.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	if _, err := wire.Encode(conn, m); err != nil {
		return nil, err
	}
	reply, err := wire.Decode(conn)
	if err != nil {
		return nil, err
	}
	switch r := reply.(type) {
	case *wire.DeviceWelcome:
		return r, nil
	case *wire.Error:
		return nil, fmt.Errorf("gateway refused: %d %s", r.Code, r.Msg)
	default:
		return nil, fmt.Errorf("expected DeviceWelcome, got %v", reply.MsgType())
	}
}
