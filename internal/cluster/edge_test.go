package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// The edge fixture trains one small three-tier DDNN once and shares it
// across tests; like the two-tier fixture, these tests exercise protocol
// behaviour, not model quality.
var (
	edgeFixtureOnce  sync.Once
	edgeFixtureModel *core.Model
	edgeFixtureTest  *dataset.Dataset
)

func edgeFixture(t *testing.T) (*core.Model, *dataset.Dataset) {
	t.Helper()
	edgeFixtureOnce.Do(func() {
		dcfg := dataset.DefaultConfig()
		dcfg.Train, dcfg.Test = 120, 40
		train, test := dataset.MustGenerate(dcfg)
		cfg := core.DefaultConfig()
		cfg.UseEdge = true
		cfg.CloudFilters = 8
		m := core.MustNewModel(cfg)
		tc := core.DefaultTrainConfig()
		tc.Epochs = 3
		if _, err := m.Train(train, tc); err != nil {
			panic(err)
		}
		edgeFixtureModel, edgeFixtureTest = m, test
	})
	return edgeFixtureModel, edgeFixtureTest
}

func newEdgeSim(t *testing.T, cfg GatewayConfig) *Sim {
	t.Helper()
	model, test := edgeFixture(t)
	sim, err := NewSim(model, test, cfg, transport.NewMem(), quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sim.Close() })
	return sim
}

func TestEdgeSimStartsThreeTierTopology(t *testing.T) {
	sim := newEdgeSim(t, DefaultGatewayConfig())
	if sim.Edge() == nil {
		t.Fatal("edge-tier sim has no edge node")
	}
	if addrs := sim.UpstreamAddrs(); len(addrs) != 1 || addrs[0] != "edge-0" {
		t.Errorf("upstream addrs = %v, want [edge-0]", addrs)
	}
	p := sim.Gateway.Pipeline()
	want := []wire.ExitPoint{wire.ExitLocal, wire.ExitEdge, wire.ExitCloud}
	got := p.Exits()
	if len(got) != len(want) {
		t.Fatalf("pipeline exits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pipeline exits = %v, want %v", got, want)
		}
	}
}

// TestEdgeTierStagesAreReachable pins each tier of the pipeline with
// degenerate thresholds: every sample must exit exactly where the
// thresholds dictate.
func TestEdgeTierStagesAreReachable(t *testing.T) {
	cases := []struct {
		name         string
		localT, edgT float64
		want         wire.ExitPoint
	}{
		{"all local", 1, 1, wire.ExitLocal},
		{"all edge", -1, 1, wire.ExitEdge},
		{"all cloud", -1, -1, wire.ExitCloud},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultGatewayConfig()
			cfg.Threshold = tc.localT
			cfg.EdgeThreshold = tc.edgT
			sim := newEdgeSim(t, cfg)
			for id := 0; id < 5; id++ {
				res, err := sim.Gateway.Classify(context.Background(), uint64(id))
				if err != nil {
					t.Fatalf("sample %d: %v", id, err)
				}
				if res.Exit != tc.want {
					t.Errorf("sample %d exit = %v, want %v", id, res.Exit, tc.want)
				}
				if res.Class < 0 || res.Class >= dataset.NumClasses {
					t.Errorf("sample %d class %d out of range", id, res.Class)
				}
			}
		})
	}
}

func TestEdgeTierMetersBothHops(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.Threshold = -1
	cfg.EdgeThreshold = -1 // force the full three-stage escalation
	sim := newEdgeSim(t, cfg)
	model, _ := edgeFixture(t)

	if _, err := sim.Gateway.Classify(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	devices := int64(model.Cfg.Devices)
	wantSummary := devices * int64(wire.SummaryPayloadBytes(model.Cfg.Classes))
	if got := sim.Gateway.Meter.Get("local-summary"); got != wantSummary {
		t.Errorf("local-summary bytes = %d, want %d", got, wantSummary)
	}
	featBytes := int64(model.Cfg.DeviceFilters*model.Cfg.FeatureSize()) / 8
	if got := sim.Gateway.Meter.Get("edge-upload"); got != devices*featBytes {
		t.Errorf("edge-upload bytes = %d, want %d (= n·f·o/8 on the first hop)", got, devices*featBytes)
	}
	if got := sim.Gateway.Meter.Get("cloud-upload"); got != 0 {
		t.Errorf("gateway cloud-upload bytes = %d, want 0 (the edge owns the second hop)", got)
	}
	edgeBytes := int64(model.Cfg.EdgeFilters*(model.Cfg.FeatureH()/2)*(model.Cfg.FeatureW()/2)) / 8
	if got := sim.Edge().Meter.Get("cloud-upload"); got != edgeBytes {
		t.Errorf("edge→cloud bytes = %d, want %d (bit-packed edge features)", got, edgeBytes)
	}
}

func TestEdgeExitSendsNothingToCloud(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.Threshold = -1
	cfg.EdgeThreshold = 1 // every escalated sample answered at the edge
	sim := newEdgeSim(t, cfg)
	for id := 0; id < 5; id++ {
		if _, err := sim.Gateway.Classify(context.Background(), uint64(id)); err != nil {
			t.Fatal(err)
		}
	}
	if got := sim.Edge().Meter.Get("cloud-upload"); got != 0 {
		t.Errorf("edge→cloud bytes = %d, want 0 when the edge answers everything", got)
	}
}

func TestEdgeDownSurfacesTypedError(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.Threshold = -1 // force escalation
	cfg.EdgeTimeout = 300 * time.Millisecond
	sim := newEdgeSim(t, cfg)
	sim.Edge().SetFailed(true)

	start := time.Now()
	_, err := sim.Gateway.Classify(context.Background(), 0)
	if !errors.Is(err, ErrEdgeUnavailable) {
		t.Errorf("err = %v, want ErrEdgeUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("edge-down classification took %v; must fail fast", elapsed)
	}

	// Confident samples never touch the edge and keep working.
	cfg2 := DefaultGatewayConfig()
	cfg2.Threshold = 1
	model, test := edgeFixture(t)
	sim2, err := NewSim(model, test, cfg2, transport.NewMem(), quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer sim2.Close()
	sim2.Edge().SetFailed(true)
	res, err := sim2.Gateway.Classify(context.Background(), 0)
	if err != nil {
		t.Fatalf("local-exit classification failed with edge down: %v", err)
	}
	if res.Exit != wire.ExitLocal {
		t.Errorf("exit = %v, want local", res.Exit)
	}
}

// TestEdgeAnswersWhenCloudDown exercises the masked-degradation path:
// with the WAN tier gone, escalated samples are answered at the edge
// exit instead of failing, so the system keeps serving at reduced
// accuracy.
func TestEdgeAnswersWhenCloudDown(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.Threshold = -1
	cfg.EdgeThreshold = -1 // every sample wants the cloud
	sim := newEdgeSim(t, cfg)
	sim.Cloud().Close()

	start := time.Now()
	res, err := sim.Gateway.Classify(context.Background(), 0)
	if err != nil {
		t.Fatalf("classification failed with the cloud down: %v", err)
	}
	if res.Exit != wire.ExitEdge {
		t.Errorf("exit = %v, want edge fallback with the cloud down", res.Exit)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("cloud-down fallback took %v; must degrade fast", elapsed)
	}
}

func TestEdgeHealthMonitorDrivesUpstreamState(t *testing.T) {
	model, test := edgeFixture(t)
	cfg := DefaultGatewayConfig()
	cfg.Threshold = -1 // escalations exercise the upstream state
	cfg.EdgeTimeout = 500 * time.Millisecond
	cfg.MaxFailures = 0
	eng, err := NewEngine(model, test, EngineConfig{Gateway: cfg, Logger: quietLogger()}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	hm, err := eng.StartHealthMonitor(context.Background(), 25*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hm.Stop()

	eng.Edge().SetFailed(true)
	deadline := time.Now().Add(3 * time.Second)
	for !eng.Gateway().UpstreamDown() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !eng.Gateway().UpstreamDown() {
		t.Fatal("health monitor never marked the edge down")
	}

	// Escalations now fail fast with the typed error, well under the
	// escalation timeout.
	start := time.Now()
	_, err = eng.Classify(context.Background(), 0)
	if !errors.Is(err, ErrEdgeUnavailable) {
		t.Errorf("err = %v, want ErrEdgeUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > cfg.EdgeTimeout {
		t.Errorf("marked-down escalation took %v, want < %v", elapsed, cfg.EdgeTimeout)
	}

	// Recovery flips the flag back and sessions flow again.
	eng.Edge().SetFailed(false)
	deadline = time.Now().Add(3 * time.Second)
	for eng.Gateway().UpstreamDown() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if eng.Gateway().UpstreamDown() {
		t.Fatal("edge did not recover")
	}
	if _, err := eng.Classify(context.Background(), 1); err != nil {
		t.Fatalf("classification after recovery: %v", err)
	}
}

// TestAttachEngineToEdgeTierOverTCP runs the full three-tier topology as
// it would deploy: every node on its own TCP listener (ddnn-device /
// ddnn-edge / ddnn-cloud style) with the engine attached from outside.
func TestAttachEngineToEdgeTierOverTCP(t *testing.T) {
	model, test := edgeFixture(t)
	tr := transport.TCP{}

	addrs := make([]string, model.Cfg.Devices)
	for d := 0; d < model.Cfg.Devices; d++ {
		dev := NewDevice(model, d, DatasetFeed(test, d), quietLogger())
		if err := dev.Serve(tr, "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer dev.Close()
		addrs[d] = dev.Addr()
	}
	cloud := NewCloud(model, quietLogger())
	if err := cloud.Serve(tr, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()
	edge, err := NewEdge(model, DefaultEdgeConfig(), quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := edge.ConnectCloud(context.Background(), tr, cloud.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := edge.Serve(tr, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = -1
	gcfg.EdgeThreshold = -1 // drive the full device→edge→cloud path
	eng, err := AttachEngine(context.Background(), model, EngineConfig{
		Gateway:        gcfg,
		MaxConcurrency: 4,
		Logger:         quietLogger(),
	}, tr, addrs, []string{edge.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	results, err := eng.ClassifyBatch(context.Background(), []uint64{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Exit != wire.ExitCloud {
			t.Errorf("sample %d exit = %v, want cloud over TCP three-tier", i, res.Exit)
		}
	}
	// The attached engine exposes no in-process edge node.
	if eng.Edge() != nil {
		t.Error("attached engine must not expose an in-process edge")
	}
}

// TestTwoGatewaysShareOneEdge pins the session-ID namespacing of the
// edge's shared cloud link: two gateways allocate overlapping session
// IDs (both start at 1), escalate different samples through one edge
// node concurrently, and every verdict must come back for the sample
// that was asked — the edge re-keys its upstream sessions so downstream
// IDs never collide on the cloud link.
func TestTwoGatewaysShareOneEdge(t *testing.T) {
	model, test := edgeFixture(t)
	tr := transport.NewMem()

	addrs := make([]string, model.Cfg.Devices)
	for d := 0; d < model.Cfg.Devices; d++ {
		dev := NewDevice(model, d, DatasetFeed(test, d), quietLogger())
		addrs[d] = fmt.Sprintf("2gw-device-%d", d)
		if err := dev.Serve(tr, addrs[d]); err != nil {
			t.Fatal(err)
		}
		defer dev.Close()
	}
	cloud := NewCloud(model, quietLogger())
	if err := cloud.Serve(tr, "2gw-cloud"); err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()
	edge, err := NewEdge(model, DefaultEdgeConfig(), quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := edge.ConnectCloud(context.Background(), tr, "2gw-cloud"); err != nil {
		t.Fatal(err)
	}
	if err := edge.Serve(tr, "2gw-edge"); err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = -1
	gcfg.EdgeThreshold = -1 // all sessions traverse the shared cloud link
	var gws [2]*Gateway
	for i := range gws {
		gw, err := NewGateway(context.Background(), model, gcfg, tr, addrs, []string{"2gw-edge"}, quietLogger())
		if err != nil {
			t.Fatal(err)
		}
		defer gw.Close()
		gws[i] = gw
	}

	// Baseline from one gateway, serially.
	const samples = 8
	want := make([]*Result, samples)
	for id := 0; id < samples; id++ {
		res, err := gws[0].Classify(context.Background(), uint64(id))
		if err != nil {
			t.Fatalf("baseline sample %d: %v", id, err)
		}
		want[id] = res
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2*samples)
	for g, gw := range gws {
		wg.Add(1)
		go func(g int, gw *Gateway) {
			defer wg.Done()
			// Opposite orders maximize same-session-ID overlap in flight.
			for i := 0; i < samples; i++ {
				id := i
				if g == 1 {
					id = samples - 1 - i
				}
				res, err := gw.Classify(context.Background(), uint64(id))
				if err != nil {
					errs <- fmt.Errorf("gateway %d sample %d: %w", g, id, err)
					return
				}
				if res.SampleID != uint64(id) {
					errs <- fmt.Errorf("gateway %d asked for sample %d, got %d", g, id, res.SampleID)
					return
				}
				if res.Class != want[id].Class || res.Exit != want[id].Exit {
					errs <- fmt.Errorf("gateway %d sample %d: class/exit %d/%v, want %d/%v",
						g, id, res.Class, res.Exit, want[id].Class, want[id].Exit)
					return
				}
			}
		}(g, gw)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCloudRejectsMismatchedTierMessages(t *testing.T) {
	// A two-tier cloud must reject EdgeFeature, and an edge-tier cloud
	// must reject CloudClassify: the hierarchy is part of the protocol
	// contract.
	twoTier, _ := fixture(t)
	threeTier, _ := edgeFixture(t)
	cases := []struct {
		name  string
		model *core.Model
		msg   wire.Message
	}{
		{"two-tier rejects EdgeFeature", twoTier, &wire.EdgeFeature{Session: 1, SampleID: 1, F: 8, H: 8, W: 8, Bits: make([]byte, 64)}},
		{"edge-tier rejects CloudClassify", threeTier, &wire.CloudClassify{Session: 1, SampleID: 1, Devices: 6, Mask: 1}},
		{"edge-tier rejects bad shape", threeTier, &wire.EdgeFeature{Session: 1, SampleID: 1, F: 1, H: 1, W: 1, Bits: make([]byte, 1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := transport.NewMem()
			cloud := NewCloud(tc.model, quietLogger())
			if err := cloud.Serve(tr, "cloud-tier"); err != nil {
				t.Fatal(err)
			}
			defer cloud.Close()
			conn, err := tr.Dial(context.Background(), "cloud-tier")
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := wire.Encode(conn, tc.msg); err != nil {
				t.Fatal(err)
			}
			msg, err := wire.Decode(conn)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := msg.(*wire.Error); !ok {
				t.Errorf("cloud replied %v, want Error", msg.MsgType())
			}
		})
	}
}
