package cluster

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/modelio"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// variantModel builds a second model with the same architecture as base
// but different (seed-variant) weights — a stand-in for a retrained
// checkpoint.
func variantModel(t *testing.T, base *core.Model, seed int64) *core.Model {
	t.Helper()
	cfg := base.Cfg
	cfg.Seed = seed
	return core.MustNewModel(cfg)
}

// TestRolloutRollsFleetUnderTraffic is the zero-downtime contract (run
// with -race in CI): concurrent cloud-bound traffic flows across a
// rolling reload from version 1 to version 2, every result is pinned to
// exactly one of the two versions, and every verdict is bit-identical to
// that version's staged single-process reference. After the rollout the
// fleet serves version 2.
func TestRolloutRollsFleetUnderTraffic(t *testing.T) {
	model, test := fixture(t)
	m2 := variantModel(t, model, 424242)
	ref1 := model.Evaluate(test, nil, 32)
	ref2 := m2.Evaluate(test, nil, 32)

	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = -1 // force every sample through the cloud pool
	eng, err := NewEngine(model, test, EngineConfig{
		Gateway:        gcfg,
		MaxConcurrency: 4,
		CloudReplicas:  2,
		Logger:         quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.RegisterModel(2, m2); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for id := w; !stop.Load(); id = (id + 4) % test.Len() {
				res, err := eng.Classify(ctx, uint64(id))
				if err != nil {
					errs <- err
					return
				}
				var want int
				switch res.ModelVersion {
				case 1:
					want = argmaxRow(ref1.CloudProbs[id])
				case 2:
					want = argmaxRow(ref2.CloudProbs[id])
				default:
					errs <- errors.New("result pinned to unknown model version")
					return
				}
				if res.Class != want {
					t.Errorf("sample %d version %d: class %d, want %d", id, res.ModelVersion, res.Class, want)
					return
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond) // let traffic start
	if err := eng.RolloutModel(ctx, 2); err != nil {
		t.Fatalf("rollout: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // post-rollout traffic on v2
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("traffic during rollout: %v", err)
	}

	if got := eng.ModelVersion(); got != 2 {
		t.Fatalf("active version after rollout = %d, want 2", got)
	}
	if got := eng.RolloutState(); got != RolloutIdle {
		t.Fatalf("rollout state = %q, want %q", got, RolloutIdle)
	}
	res, err := eng.Classify(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelVersion != 2 {
		t.Fatalf("post-rollout session pinned version %d, want 2", res.ModelVersion)
	}
}

// TestRolloutCanaryFailureRollsBack plants a corrupt weight copy on one
// cloud replica via the tamper hook: the canary must catch it, the whole
// three-tier fleet must roll back to version 1, and traffic — flowing
// concurrently throughout — must never fail and never observe version 2.
func TestRolloutCanaryFailureRollsBack(t *testing.T) {
	model, test := edgeFixture(t)
	m2 := variantModel(t, model, 515151)
	bad := variantModel(t, model, 616161)
	ref1 := model.Evaluate(test, nil, 32)

	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = -1 // force escalation through edge (and on to cloud)
	eng, err := NewEngine(model, test, EngineConfig{
		Gateway:        gcfg,
		MaxConcurrency: 4,
		EdgeReplicas:   2,
		CloudReplicas:  2,
		Logger:         quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.RegisterModel(2, m2); err != nil {
		t.Fatal(err)
	}
	eng.SetRolloutTamper(func(tier wire.ExitPoint, replica int) *core.Model {
		if tier == wire.ExitCloud && replica == 1 {
			return bad
		}
		return nil
	})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for id := w; !stop.Load(); id = (id + 2) % test.Len() {
				res, err := eng.Classify(ctx, uint64(id))
				if err != nil {
					errs <- err
					return
				}
				if res.ModelVersion != 1 {
					t.Errorf("sample %d: pinned version %d, want 1 (rollout never completed)", id, res.ModelVersion)
					return
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	err = eng.RolloutModel(ctx, 2)
	if !errors.Is(err, ErrRolloutFailed) {
		t.Fatalf("rollout error = %v, want ErrRolloutFailed", err)
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("traffic during failed rollout: %v", err)
	}

	if got := eng.ModelVersion(); got != 1 {
		t.Fatalf("active version after rollback = %d, want 1", got)
	}
	if got := eng.RolloutState(); got != RolloutRolledBack {
		t.Fatalf("rollout state = %q, want %q", got, RolloutRolledBack)
	}
	// Every node converged back to version 1, and the tampered replica's
	// copy of version 2 was repaired with the engine's good weights.
	for i := 0; i < eng.sim.edgeCount(); i++ {
		if ed := eng.sim.EdgeReplica(i); ed.reg.activeVersion() != 1 {
			t.Errorf("edge %d active = %d, want 1", i, ed.reg.activeVersion())
		}
	}
	for i := 0; i < eng.sim.cloudCount(); i++ {
		c := eng.sim.CloudReplica(i)
		if c.reg.activeVersion() != 1 {
			t.Errorf("cloud %d active = %d, want 1", i, c.reg.activeVersion())
		}
		if got := c.reg.model(2); got != m2 {
			t.Errorf("cloud %d holds unrepaired copy of version 2", i)
		}
	}
	// Rolled-back fleet still answers with version-1 staged parity.
	res, err := eng.Classify(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := argmaxRow(ref1.CloudProbs[3]); res.Class != want || res.ModelVersion != 1 {
		t.Fatalf("post-rollback: class %d version %d, want %d version 1", res.Class, res.ModelVersion, want)
	}
}

// TestRolloutSurvivesReplicaRestart kills and restarts a cloud replica
// while the rollout is mid-flight (via the tamper hook as the sync
// point): the restarted replica adopts the fleet registry, the rollout
// completes, and the fleet converges on the new version.
func TestRolloutSurvivesReplicaRestart(t *testing.T) {
	model, test := fixture(t)
	m2 := variantModel(t, model, 717171)

	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = -1
	eng, err := NewEngine(model, test, EngineConfig{
		Gateway:       gcfg,
		CloudReplicas: 2,
		Logger:        quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.RegisterModel(2, m2); err != nil {
		t.Fatal(err)
	}
	eng.SetRolloutTamper(func(tier wire.ExitPoint, replica int) *core.Model {
		if replica == 0 {
			// While replica 0 is being rolled, hard-restart replica 1: the
			// fresh node must adopt the fleet registry mid-rollout.
			if err := eng.sim.RestartCloud(1); err != nil {
				t.Errorf("restart cloud 1: %v", err)
			}
		}
		return nil
	})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := eng.RolloutModel(ctx, 2); err != nil {
		t.Fatalf("rollout across replica restart: %v", err)
	}
	if got := eng.ModelVersion(); got != 2 {
		t.Fatalf("active version = %d, want 2", got)
	}
	for i := 0; i < eng.sim.cloudCount(); i++ {
		if c := eng.sim.CloudReplica(i); c.reg.activeVersion() != 2 {
			t.Errorf("cloud %d active = %d, want 2", i, c.reg.activeVersion())
		}
	}
	res, err := eng.Classify(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelVersion != 2 {
		t.Fatalf("post-rollout session pinned version %d, want 2", res.ModelVersion)
	}
}

// TestRolloutRegistryAndErrors covers the registration and version
// plumbing: typed duplicate/mismatch/unknown errors, artifact round-trip
// via RegisterModelBytes, no-op rollouts, and rollout serialization.
func TestRolloutRegistryAndErrors(t *testing.T) {
	model, test := fixture(t)
	m2 := variantModel(t, model, 818181)

	eng, err := NewEngine(model, test, EngineConfig{
		Gateway: DefaultGatewayConfig(),
		Logger:  quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx := context.Background()
	if err := eng.RolloutModel(ctx, 99); !errors.Is(err, ErrModelVersionUnknown) {
		t.Errorf("rollout to unknown version: %v, want ErrModelVersionUnknown", err)
	}
	if err := eng.RolloutModel(ctx, 0); !errors.Is(err, ErrModelVersionUnknown) {
		t.Errorf("rollout to version 0: %v, want ErrModelVersionUnknown", err)
	}
	if err := eng.RegisterModel(1, m2); !errors.Is(err, ErrDuplicateModelVersion) {
		t.Errorf("duplicate register: %v, want ErrDuplicateModelVersion", err)
	}
	mismatchCfg := model.Cfg
	mismatchCfg.DeviceFilters++
	if err := eng.RegisterModel(5, core.MustNewModel(mismatchCfg)); !errors.Is(err, ErrModelConfigMismatch) {
		t.Errorf("mismatched register: %v, want ErrModelConfigMismatch", err)
	}

	var buf bytes.Buffer
	if err := modelio.SaveVersion(&buf, m2, 7); err != nil {
		t.Fatal(err)
	}
	v, err := eng.RegisterModelBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("registered version = %d, want 7", v)
	}
	if got := eng.ModelVersions(); len(got) != 2 || got[0] != 1 || got[1] != 7 {
		t.Fatalf("versions = %v, want [1 7]", got)
	}
	data := buf.Bytes()
	data[len(data)-1] ^= 0xFF // corrupt the last tensor's payload
	if _, err := eng.RegisterModelBytes(data); !errors.Is(err, modelio.ErrCorruptModel) {
		t.Errorf("corrupt artifact: %v, want modelio.ErrCorruptModel", err)
	}

	if err := eng.RolloutModel(ctx, 1); err != nil {
		t.Errorf("rollout to active version: %v, want nil no-op", err)
	}

	// A second rollout racing the first fails fast with
	// ErrRolloutInProgress; the tamper hook doubles as the sync point.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	eng.SetRolloutTamper(func(wire.ExitPoint, int) *core.Model {
		once.Do(func() { close(entered); <-release })
		return nil
	})
	done := make(chan error, 1)
	go func() { done <- eng.RolloutModel(ctx, 7) }()
	<-entered
	if err := eng.RolloutModel(ctx, 7); !errors.Is(err, ErrRolloutInProgress) {
		t.Errorf("concurrent rollout: %v, want ErrRolloutInProgress", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first rollout: %v", err)
	}
	if got := eng.ModelVersion(); got != 7 {
		t.Fatalf("active version = %d, want 7", got)
	}
}
