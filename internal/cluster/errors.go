package cluster

import (
	"context"
	"errors"
	"fmt"
)

// Typed serving errors. The public facade re-exports these so callers can
// errors.Is against stable sentinels instead of matching strings.
var (
	// ErrCanceled reports that the session's context was canceled before
	// a classification was produced.
	ErrCanceled = errors.New("ddnn: session canceled")
	// ErrDeadlineExceeded reports that the session's context deadline
	// expired before a classification was produced.
	ErrDeadlineExceeded = errors.New("ddnn: session deadline exceeded")
	// ErrClosed reports an operation on a closed Engine or Gateway.
	ErrClosed = errors.New("ddnn: engine closed")
	// ErrNoSummaries reports that no device produced an exit summary for
	// the sample, so there is nothing to aggregate.
	ErrNoSummaries = errors.New("ddnn: no device produced a summary")
	// ErrCloudUnavailable reports that the sample missed the local exit
	// and the cloud round trip failed.
	ErrCloudUnavailable = errors.New("ddnn: cloud unavailable")
	// ErrEdgeUnavailable reports that the sample missed the local exit
	// and the edge tier — the next escalation stage of a three-tier
	// hierarchy — could not be reached.
	ErrEdgeUnavailable = errors.New("ddnn: edge unavailable")
	// ErrNoHealthyReplica reports that every replica of an upstream tier
	// (edge or cloud pool) is fenced — marked down by the health monitor
	// or by in-session failure detection — so an escalation had no
	// replica to run on. It is always wrapped in the tier's sentinel
	// (ErrEdgeUnavailable or ErrCloudUnavailable).
	ErrNoHealthyReplica = errors.New("ddnn: no healthy replica")
	// ErrUploadUnsupported reports ClassifyUpload on an engine attached to
	// remote nodes: uploaded samples are staged in the in-process cluster's
	// shared store, which remote devices (owning their own sensors) do not
	// consult.
	ErrUploadUnsupported = errors.New("ddnn: uploads require an in-process engine")
	// ErrTooManyDevices reports a hierarchy with more devices than the
	// wire protocol's uint16 present-device masks can describe
	// (wire.MaxDevices); such configs are rejected at gateway
	// construction time instead of silently corrupting the masks.
	ErrTooManyDevices = errors.New("ddnn: hierarchy exceeds wire.MaxDevices devices")
	// ErrDeviceSlotMismatch reports a device-slot reference the model's
	// hierarchy cannot satisfy: more construction addresses than the
	// model has device slots, or an admission/removal naming a slot out
	// of range. The wrapping error names the expected and got counts.
	// (Fewer addresses than slots is not an error — the gateway starts
	// with a partial device set and admits the rest via registration.)
	ErrDeviceSlotMismatch = errors.New("ddnn: device slot mismatch")
	// ErrModelVersionUnknown reports a session pinned to a model version
	// the serving node's registry does not hold — wire error code 426. It
	// can only happen when a registry was mutated outside a rollout (e.g.
	// an eviction raced a very long session); rollouts install a version
	// on every node before any session can pin it.
	ErrModelVersionUnknown = errors.New("ddnn: model version unknown")
	// ErrDuplicateModelVersion reports registering a model under a
	// version number the registry already holds. Versions are immutable
	// once registered; pick a new number.
	ErrDuplicateModelVersion = errors.New("ddnn: model version already registered")
	// ErrModelConfigMismatch reports registering a model whose
	// architecture differs from the serving fleet's (anything beyond the
	// RNG seed). A rollout can swap weights, not topologies.
	ErrModelConfigMismatch = errors.New("ddnn: model config mismatch")
	// ErrRolloutInProgress reports a RolloutModel call while another
	// rollout is still running; rollouts are serialized.
	ErrRolloutInProgress = errors.New("ddnn: rollout already in progress")
	// ErrRolloutFailed reports a rollout aborted by a failed canary or an
	// unreachable replica. The fleet has been rolled back to the prior
	// active version; the wrapping error names the failing replica and
	// stage.
	ErrRolloutFailed = errors.New("ddnn: rollout failed and was rolled back")
)

// ctxErr maps a context error onto the matching typed sentinel while
// keeping the original error in the chain, so both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled) hold.
func ctxErr(err error) error {
	switch {
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	default:
		return err
	}
}
