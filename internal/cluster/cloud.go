package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// Cloud is the cloud node: it owns the cloud section of the DDNN and runs
// the final exit, which always classifies. In a two-tier hierarchy it
// receives the present devices' bit-packed feature maps (CloudClassify +
// FeatureUploads), aggregates them and runs the upper NN layers; in a
// three-tier hierarchy it receives a single pre-aggregated EdgeFeature map
// escalated by the edge node.
//
// Sessions are demultiplexed by wire session ID, so one downstream
// connection carries any number of interleaved sessions; each complete
// session is classified in its own goroutine against the shared read-only
// model.
type Cloud struct {
	model  *core.Model
	reg    *modelRegistry
	logger *slog.Logger

	failed atomic.Bool
	// active counts in-flight classifications (goroutines spawned by the
	// connection handlers); Drain polls it to zero before tearing down.
	active atomic.Int64

	// pool recycles session feature maps and forward tensors across
	// classifications, keeping the steady-state handler allocation-free.
	pool *tensor.Pool

	listener  net.Listener
	wg        sync.WaitGroup
	closeOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewCloud constructs the cloud node around a trained model.
func NewCloud(model *core.Model, logger *slog.Logger) *Cloud {
	if logger == nil {
		logger = slog.Default()
	}
	return &Cloud{
		model:  model,
		reg:    newModelRegistry(model, 1),
		logger: logger.With("node", "cloud"),
		pool:   tensor.NewPool(),
		conns:  make(map[net.Conn]struct{}),
	}
}

// Serve starts accepting gateway connections.
func (c *Cloud) Serve(tr transport.Transport, addr string) error {
	l, err := tr.Listen(addr)
	if err != nil {
		return fmt.Errorf("cluster: cloud: %w", err)
	}
	c.listener = l
	c.wg.Add(1)
	go c.acceptLoop()
	return nil
}

// Addr returns the listener's address; it is only valid after Serve.
func (c *Cloud) Addr() string {
	if c.listener == nil {
		return ""
	}
	return c.listener.Addr().String()
}

// SetFailed toggles simulated failure: a failed cloud replica goes
// silent, which downstream tiers observe as escalation timeouts — their
// replica pools then fence it and fail sessions over to the remaining
// replicas.
func (c *Cloud) SetFailed(failed bool) { c.failed.Store(failed) }

// Failed reports the simulated-failure state.
func (c *Cloud) Failed() bool { return c.failed.Load() }

func (c *Cloud) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			return
		}
		c.connMu.Lock()
		if c.closed {
			c.connMu.Unlock()
			conn.Close()
			continue
		}
		c.conns[conn] = struct{}{}
		c.connMu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer func() {
				conn.Close()
				c.connMu.Lock()
				delete(c.conns, conn)
				c.connMu.Unlock()
			}()
			c.handle(conn)
		}()
	}
}

func (c *Cloud) handle(conn net.Conn) {
	var wmu sync.Mutex
	send := func(m wire.Message) error {
		wmu.Lock()
		defer wmu.Unlock()
		_, err := wire.Encode(conn, m)
		return err
	}
	// Sessions pin the model their version pin resolved to, so every
	// frame computes on the same weights even if the replica's active
	// version flips mid-session.
	type openSession struct {
		session uint64
		model   *core.Model
		up      *uploadSession
	}
	sessions := make(map[uint64]*openSession)
	type openBatch struct {
		session uint64
		model   *core.Model
		up      *batchUploadSession
	}
	batches := make(map[uint64]*openBatch)
	var inflight sync.WaitGroup
	defer inflight.Wait()
	for {
		msg, err := wire.Decode(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				c.logger.Debug("decode error", "err", err)
			}
			return
		}
		if c.failed.Load() {
			// A crashed cloud replica goes silent; the downstream pool's
			// escalation timeout and failover handle the rest.
			continue
		}
		switch m := msg.(type) {
		case *wire.Heartbeat:
			// Echo liveness probes so the downstream tier's failure
			// detector can watch the cloud.
			if err := send(m); err != nil {
				return
			}
		case *wire.CloudClassify:
			if c.model.Cfg.UseEdge {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: "edge-tier model: the cloud accepts EdgeFeature escalations only"})
				continue
			}
			model, _, err := c.reg.resolve(m.ModelVersion)
			if err != nil {
				_ = send(&wire.Error{Session: m.Session, Code: 426, Msg: err.Error()})
				continue
			}
			sess, err := newUploadSession(model.Cfg, m.SampleID, m.Devices, m.Mask, m.PresentCount(), c.pool)
			if err != nil {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: err.Error()})
				continue
			}
			if sess.complete() {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: "empty device mask"})
				continue
			}
			sessions[m.Session] = &openSession{session: m.Session, model: model, up: sess}
		case *wire.FeatureUpload:
			sess, ok := sessions[m.Session]
			if !ok {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: fmt.Sprintf("upload for unknown session %d", m.Session)})
				continue
			}
			if err := sess.up.add(sess.model, m); err != nil {
				delete(sessions, m.Session)
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: err.Error()})
				continue
			}
			if sess.up.complete() {
				delete(sessions, m.Session)
				inflight.Add(1)
				c.active.Add(1)
				go func(sess *openSession) {
					defer inflight.Done()
					defer c.active.Add(-1)
					c.classify(send, sess.session, sess.model, sess.up)
				}(sess)
			}
		case *wire.CloudClassifyBatch:
			if c.model.Cfg.UseEdge {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: "edge-tier model: the cloud accepts EdgeFeature escalations only"})
				continue
			}
			model, _, err := c.reg.resolve(m.ModelVersion)
			if err != nil {
				_ = send(&wire.Error{Session: m.Session, Code: 426, Msg: err.Error()})
				continue
			}
			up, err := newBatchUploadSession(model.Cfg, m.SampleIDs, m.Devices, m.Masks, c.pool)
			if err != nil {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: err.Error()})
				continue
			}
			batches[m.Session] = &openBatch{session: m.Session, model: model, up: up}
		case *wire.FeatureBatch:
			sess, ok := batches[m.Session]
			if !ok {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: fmt.Sprintf("feature batch for unknown session %d", m.Session)})
				continue
			}
			if err := sess.up.add(sess.model, m); err != nil {
				delete(batches, m.Session)
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: err.Error()})
				continue
			}
			if sess.up.complete() {
				delete(batches, m.Session)
				inflight.Add(1)
				c.active.Add(1)
				go func(sess *openBatch) {
					defer inflight.Done()
					defer c.active.Add(-1)
					c.classifyBatch(send, sess.session, sess.model, sess.up)
				}(sess)
			}
		case *wire.EdgeFeatureBatch:
			if !c.model.Cfg.UseEdge {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: "model has no edge tier; send CloudClassifyBatch + FeatureBatches"})
				continue
			}
			model, _, err := c.reg.resolve(m.ModelVersion)
			if err != nil {
				_ = send(&wire.Error{Session: m.Session, Code: 426, Msg: err.Error()})
				continue
			}
			feat, err := c.unpackEdgeFeatureBatch(model, m)
			if err != nil {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: err.Error()})
				continue
			}
			inflight.Add(1)
			c.active.Add(1)
			go func(m *wire.EdgeFeatureBatch, feat *tensor.Tensor) {
				defer inflight.Done()
				defer c.active.Add(-1)
				c.classifyFromEdgeBatch(send, model, m, feat)
			}(m, feat)
		case *wire.EdgeFeature:
			if !c.model.Cfg.UseEdge {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: "model has no edge tier; send CloudClassify + FeatureUploads"})
				continue
			}
			model, _, err := c.reg.resolve(m.ModelVersion)
			if err != nil {
				_ = send(&wire.Error{Session: m.Session, Code: 426, Msg: err.Error()})
				continue
			}
			feat, err := c.unpackEdgeFeature(model, m)
			if err != nil {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: err.Error()})
				continue
			}
			inflight.Add(1)
			c.active.Add(1)
			go func(m *wire.EdgeFeature, feat *tensor.Tensor) {
				defer inflight.Done()
				defer c.active.Add(-1)
				c.classifyFromEdge(send, model, m, feat)
			}(m, feat)
		default:
			_ = send(&wire.Error{Session: sessionOf(msg), Code: 400, Msg: fmt.Sprintf("expected CloudClassify(Batch), FeatureUpload/FeatureBatch or EdgeFeature(Batch), got %v", msg.MsgType())})
		}
	}
}

// unpackEdgeFeature validates an escalated edge feature map against the
// model's edge section output shape.
func (c *Cloud) unpackEdgeFeature(model *core.Model, m *wire.EdgeFeature) (*tensor.Tensor, error) {
	cfg := model.Cfg
	eh, ew := cfg.FeatureH()/2, cfg.FeatureW()/2
	if int(m.F) != cfg.EdgeFilters || int(m.H) != eh || int(m.W) != ew {
		return nil, fmt.Errorf("edge feature shape %d×%d×%d, model expects %d×%d×%d", m.F, m.H, m.W, cfg.EdgeFilters, eh, ew)
	}
	feat := c.pool.GetDirty(1, int(m.F), int(m.H), int(m.W))
	if err := model.UnpackFeatureInto(feat, 0, m.Bits); err != nil {
		c.pool.Put(feat)
		return nil, err
	}
	return feat, nil
}

// classify runs the cloud section for one complete two-tier session. The
// model is frozen (read-only) so sessions run genuinely in parallel.
func (c *Cloud) classify(send func(wire.Message) error, session uint64, model *core.Model, sess *uploadSession) {
	logits := model.CloudForwardPooled(sess.feats, sess.mask, c.pool)
	sess.release(c.pool)
	c.reply(send, session, sess.sampleID, logits)
	c.pool.Put(logits)
}

// classifyFromEdge runs the cloud section on a pre-aggregated edge
// feature map (three-tier hierarchies).
func (c *Cloud) classifyFromEdge(send func(wire.Message) error, model *core.Model, m *wire.EdgeFeature, feat *tensor.Tensor) {
	logits := model.CloudForwardFromEdgePooled(feat, c.pool)
	c.pool.Put(feat)
	c.reply(send, m.Session, m.SampleID, logits)
	c.pool.Put(logits)
}

// classifyBatch runs the cloud section for one complete batched two-tier
// session: samples sharing a device mask classify in one masked forward
// pass, and the whole batch answers with a single ResultBatch whose
// verdicts follow the header's sample order.
func (c *Cloud) classifyBatch(send func(wire.Message) error, session uint64, model *core.Model, up *batchUploadSession) {
	verdicts := make([]wire.BatchVerdict, len(up.ids))
	for _, grp := range groupByMask(up.masks, model.Cfg.Devices) {
		feats := selectGroup(up.feats, grp.indices, len(up.ids), c.pool)
		logits := model.CloudForwardPooled(feats, grp.present, c.pool)
		releaseGroup(up.feats, feats, c.pool)
		probs := nn.Softmax(logits)
		c.pool.Put(logits)
		for k, idx := range grp.indices {
			verdicts[idx] = verdictRow(probs, k, up.ids[idx], wire.ExitCloud)
		}
	}
	up.release(c.pool)
	if err := send(&wire.ResultBatch{Session: session, Verdicts: verdicts}); err != nil {
		c.logger.Debug("batch classify reply failed", "session", session, "err", err)
	}
}

// unpackEdgeFeatureBatch validates an escalated batch of edge feature
// maps against the model's edge section output shape and assembles the
// [N, F, H, W] batch tensor.
func (c *Cloud) unpackEdgeFeatureBatch(model *core.Model, m *wire.EdgeFeatureBatch) (*tensor.Tensor, error) {
	cfg := model.Cfg
	eh, ew := cfg.FeatureH()/2, cfg.FeatureW()/2
	if int(m.F) != cfg.EdgeFilters || int(m.H) != eh || int(m.W) != ew {
		return nil, fmt.Errorf("edge feature shape %d×%d×%d, model expects %d×%d×%d", m.F, m.H, m.W, cfg.EdgeFilters, eh, ew)
	}
	if len(m.SampleIDs) == 0 {
		return nil, fmt.Errorf("empty edge feature batch")
	}
	feat := c.pool.GetDirty(len(m.SampleIDs), int(m.F), int(m.H), int(m.W))
	for i := range m.SampleIDs {
		if err := model.UnpackFeatureInto(feat, i, m.Sample(i)); err != nil {
			c.pool.Put(feat)
			return nil, err
		}
	}
	return feat, nil
}

// classifyFromEdgeBatch runs the cloud section once over a batch of
// pre-aggregated edge feature maps — the samples that missed the edge
// exit — and answers with one ResultBatch in SampleIDs order.
func (c *Cloud) classifyFromEdgeBatch(send func(wire.Message) error, model *core.Model, m *wire.EdgeFeatureBatch, feat *tensor.Tensor) {
	logits := model.CloudForwardFromEdgePooled(feat, c.pool)
	c.pool.Put(feat)
	probs := nn.Softmax(logits)
	c.pool.Put(logits)
	verdicts := make([]wire.BatchVerdict, len(m.SampleIDs))
	for i, id := range m.SampleIDs {
		verdicts[i] = verdictRow(probs, i, id, wire.ExitCloud)
	}
	if err := send(&wire.ResultBatch{Session: m.Session, Verdicts: verdicts}); err != nil {
		c.logger.Debug("edge batch reply failed", "session", m.Session, "err", err)
	}
}

func (c *Cloud) reply(send func(wire.Message) error, session, sampleID uint64, logits *tensor.Tensor) {
	probs := nn.Softmax(logits)
	row := make([]float32, probs.Dim(1))
	copy(row, probs.Row(0))
	if err := send(&wire.ClassifyResult{
		Session:  session,
		SampleID: sampleID,
		Exit:     wire.ExitCloud,
		Class:    uint16(probs.ArgMaxRow(0)),
		Probs:    row,
	}); err != nil {
		c.logger.Debug("classify reply failed", "sample", sampleID, "err", err)
	}
}

// Drain gracefully shuts the cloud node down: it stops accepting new
// connections immediately, then waits for in-flight classifications to
// settle (their replies still go out on the open connections) before
// tearing the node down. Downstream gateways hold their connections open
// indefinitely, so Drain waits on the classification counter, not on
// connection EOFs. When the context expires first, the node is torn down
// anyway and the context error is returned.
func (c *Cloud) Drain(ctx context.Context) error {
	if c.listener != nil {
		c.listener.Close()
	}
	err := awaitIdle(ctx, &c.active)
	c.Close()
	return err
}

// Close stops the cloud node, terminating any in-flight connections.
func (c *Cloud) Close() error {
	c.closeOnce.Do(func() {
		if c.listener != nil {
			c.listener.Close()
		}
		c.connMu.Lock()
		c.closed = true
		for conn := range c.conns {
			conn.Close()
		}
		c.connMu.Unlock()
	})
	c.wg.Wait()
	return nil
}
