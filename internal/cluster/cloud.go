package cluster

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// Cloud is the cloud node: it owns the cloud section of the DDNN. For each
// classification session it receives the present devices' bit-packed
// feature maps, aggregates them, runs the upper NN layers and returns the
// final classification (the last exit, which always classifies).
//
// Sessions are demultiplexed by wire session ID, so one gateway connection
// carries any number of interleaved sessions; each complete session is
// classified in its own goroutine against the shared read-only model.
type Cloud struct {
	model  *core.Model
	logger *slog.Logger

	listener  net.Listener
	wg        sync.WaitGroup
	closeOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// cloudSession accumulates one session's feature uploads until every
// present device's map has arrived.
type cloudSession struct {
	hdr     *wire.CloudClassify
	feats   []*tensor.Tensor
	mask    []bool
	pending int
}

// NewCloud constructs the cloud node around a trained model.
func NewCloud(model *core.Model, logger *slog.Logger) *Cloud {
	if logger == nil {
		logger = slog.Default()
	}
	return &Cloud{
		model:  model,
		logger: logger.With("node", "cloud"),
		conns:  make(map[net.Conn]struct{}),
	}
}

// Serve starts accepting gateway connections.
func (c *Cloud) Serve(tr transport.Transport, addr string) error {
	l, err := tr.Listen(addr)
	if err != nil {
		return fmt.Errorf("cluster: cloud: %w", err)
	}
	c.listener = l
	c.wg.Add(1)
	go c.acceptLoop()
	return nil
}

// Addr returns the listener's address; it is only valid after Serve.
func (c *Cloud) Addr() string {
	if c.listener == nil {
		return ""
	}
	return c.listener.Addr().String()
}

func (c *Cloud) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			return
		}
		c.connMu.Lock()
		if c.closed {
			c.connMu.Unlock()
			conn.Close()
			continue
		}
		c.conns[conn] = struct{}{}
		c.connMu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer func() {
				conn.Close()
				c.connMu.Lock()
				delete(c.conns, conn)
				c.connMu.Unlock()
			}()
			c.handle(conn)
		}()
	}
}

func (c *Cloud) handle(conn net.Conn) {
	var wmu sync.Mutex
	send := func(m wire.Message) error {
		wmu.Lock()
		defer wmu.Unlock()
		_, err := wire.Encode(conn, m)
		return err
	}
	sessions := make(map[uint64]*cloudSession)
	var inflight sync.WaitGroup
	defer inflight.Wait()
	for {
		msg, err := wire.Decode(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				c.logger.Debug("decode error", "err", err)
			}
			return
		}
		switch m := msg.(type) {
		case *wire.CloudClassify:
			sess, err := c.openSession(m)
			if err != nil {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: err.Error()})
				continue
			}
			if sess.pending == 0 {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: "empty device mask"})
				continue
			}
			sessions[m.Session] = sess
		case *wire.FeatureUpload:
			sess, ok := sessions[m.Session]
			if !ok {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: fmt.Sprintf("upload for unknown session %d", m.Session)})
				continue
			}
			if err := c.addUpload(sess, m); err != nil {
				delete(sessions, m.Session)
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: err.Error()})
				continue
			}
			if sess.pending == 0 {
				delete(sessions, m.Session)
				inflight.Add(1)
				go func(sess *cloudSession) {
					defer inflight.Done()
					c.classify(send, sess)
				}(sess)
			}
		default:
			_ = send(&wire.Error{Code: 400, Msg: fmt.Sprintf("expected CloudClassify or FeatureUpload, got %v", msg.MsgType())})
		}
	}
}

func (c *Cloud) openSession(hdr *wire.CloudClassify) (*cloudSession, error) {
	devices := int(hdr.Devices)
	if devices != c.model.Cfg.Devices {
		return nil, fmt.Errorf("model has %d devices, session says %d", c.model.Cfg.Devices, devices)
	}
	cfg := c.model.Cfg
	fh, fw := cfg.FeatureH(), cfg.FeatureW()
	sess := &cloudSession{
		hdr:     hdr,
		feats:   make([]*tensor.Tensor, devices),
		mask:    make([]bool, devices),
		pending: hdr.PresentCount(),
	}
	for d := 0; d < devices; d++ {
		sess.feats[d] = tensor.New(1, cfg.DeviceFilters, fh, fw)
	}
	return sess, nil
}

func (c *Cloud) addUpload(sess *cloudSession, up *wire.FeatureUpload) error {
	if up.SampleID != sess.hdr.SampleID {
		return fmt.Errorf("upload for sample %d inside session for sample %d", up.SampleID, sess.hdr.SampleID)
	}
	dev := int(up.Device)
	if dev < 0 || dev >= len(sess.feats) {
		return fmt.Errorf("upload from unknown device %d", dev)
	}
	if sess.hdr.Mask&(1<<uint(dev)) == 0 || sess.mask[dev] {
		return fmt.Errorf("unexpected upload from device %d", dev)
	}
	feat, err := c.model.UnpackFeature(up.Bits, int(up.F), int(up.H), int(up.W))
	if err != nil {
		return fmt.Errorf("unpack device %d: %w", dev, err)
	}
	sess.feats[dev] = feat
	sess.mask[dev] = true
	sess.pending--
	return nil
}

// classify runs the cloud section for one complete session. The model is
// frozen (read-only) so sessions run genuinely in parallel.
func (c *Cloud) classify(send func(wire.Message) error, sess *cloudSession) {
	logits := c.model.CloudForward(sess.feats, sess.mask)
	probs := nn.Softmax(logits)
	row := make([]float32, probs.Dim(1))
	copy(row, probs.Row(0))
	if err := send(&wire.ClassifyResult{
		Session:  sess.hdr.Session,
		SampleID: sess.hdr.SampleID,
		Exit:     wire.ExitCloud,
		Class:    uint16(probs.ArgMaxRow(0)),
		Probs:    row,
	}); err != nil {
		c.logger.Debug("classify reply failed", "sample", sess.hdr.SampleID, "err", err)
	}
}

// Close stops the cloud node, terminating any in-flight connections.
func (c *Cloud) Close() error {
	c.closeOnce.Do(func() {
		if c.listener != nil {
			c.listener.Close()
		}
		c.connMu.Lock()
		c.closed = true
		for conn := range c.conns {
			conn.Close()
		}
		c.connMu.Unlock()
	})
	c.wg.Wait()
	return nil
}
