package cluster

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// Cloud is the cloud node: it owns the cloud section of the DDNN. For each
// classification session it receives the present devices' bit-packed
// feature maps, aggregates them, runs the upper NN layers and returns the
// final classification (the last exit, which always classifies).
type Cloud struct {
	model  *core.Model
	logger *slog.Logger

	mu sync.Mutex // serializes model use across connections

	listener  net.Listener
	wg        sync.WaitGroup
	closeOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewCloud constructs the cloud node around a trained model.
func NewCloud(model *core.Model, logger *slog.Logger) *Cloud {
	if logger == nil {
		logger = slog.Default()
	}
	return &Cloud{
		model:  model,
		logger: logger.With("node", "cloud"),
		conns:  make(map[net.Conn]struct{}),
	}
}

// Serve starts accepting gateway connections.
func (c *Cloud) Serve(tr transport.Transport, addr string) error {
	l, err := tr.Listen(addr)
	if err != nil {
		return fmt.Errorf("cluster: cloud: %w", err)
	}
	c.listener = l
	c.wg.Add(1)
	go c.acceptLoop()
	return nil
}

// Addr returns the listener's address; it is only valid after Serve.
func (c *Cloud) Addr() string {
	if c.listener == nil {
		return ""
	}
	return c.listener.Addr().String()
}

func (c *Cloud) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			return
		}
		c.connMu.Lock()
		if c.closed {
			c.connMu.Unlock()
			conn.Close()
			continue
		}
		c.conns[conn] = struct{}{}
		c.connMu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer func() {
				conn.Close()
				c.connMu.Lock()
				delete(c.conns, conn)
				c.connMu.Unlock()
			}()
			c.handle(conn)
		}()
	}
}

func (c *Cloud) handle(conn net.Conn) {
	for {
		msg, err := wire.Decode(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				c.logger.Debug("decode error", "err", err)
			}
			return
		}
		hdr, ok := msg.(*wire.CloudClassify)
		if !ok {
			_, _ = wire.Encode(conn, &wire.Error{Code: 400, Msg: fmt.Sprintf("expected CloudClassify, got %v", msg.MsgType())})
			return
		}
		if err := c.classify(conn, hdr); err != nil {
			c.logger.Debug("classify failed", "sample", hdr.SampleID, "err", err)
			return
		}
	}
}

func (c *Cloud) classify(conn net.Conn, hdr *wire.CloudClassify) error {
	devices := int(hdr.Devices)
	if devices != c.model.Cfg.Devices {
		_, err := wire.Encode(conn, &wire.Error{Code: 400, Msg: fmt.Sprintf("model has %d devices, session says %d", c.model.Cfg.Devices, devices)})
		return err
	}
	cfg := c.model.Cfg
	fh, fw := cfg.FeatureH(), cfg.FeatureW()
	feats := make([]*tensor.Tensor, devices)
	mask := make([]bool, devices)
	for d := 0; d < devices; d++ {
		feats[d] = tensor.New(1, cfg.DeviceFilters, fh, fw)
	}
	for i := 0; i < hdr.PresentCount(); i++ {
		msg, err := wire.Decode(conn)
		if err != nil {
			return fmt.Errorf("cluster: cloud read upload %d: %w", i, err)
		}
		up, ok := msg.(*wire.FeatureUpload)
		if !ok {
			return fmt.Errorf("cluster: expected FeatureUpload, got %v", msg.MsgType())
		}
		if up.SampleID != hdr.SampleID {
			return fmt.Errorf("cluster: upload for sample %d inside session %d", up.SampleID, hdr.SampleID)
		}
		dev := int(up.Device)
		if dev < 0 || dev >= devices {
			return fmt.Errorf("cluster: upload from unknown device %d", dev)
		}
		feat, err := c.model.UnpackFeature(up.Bits, int(up.F), int(up.H), int(up.W))
		if err != nil {
			return fmt.Errorf("cluster: unpack device %d: %w", dev, err)
		}
		feats[dev] = feat
		mask[dev] = true
	}

	c.mu.Lock()
	logits := c.model.CloudForward(feats, mask)
	c.mu.Unlock()

	probs := nn.Softmax(logits)
	row := make([]float32, probs.Dim(1))
	copy(row, probs.Row(0))
	_, err := wire.Encode(conn, &wire.ClassifyResult{
		SampleID: hdr.SampleID,
		Exit:     wire.ExitCloud,
		Class:    uint16(probs.ArgMaxRow(0)),
		Probs:    row,
	})
	return err
}

// Close stops the cloud node, terminating any in-flight connections.
func (c *Cloud) Close() error {
	c.closeOnce.Do(func() {
		if c.listener != nil {
			c.listener.Close()
		}
		c.connMu.Lock()
		c.closed = true
		for conn := range c.conns {
			conn.Close()
		}
		c.connMu.Unlock()
	})
	c.wg.Wait()
	return nil
}
