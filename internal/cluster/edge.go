package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/metrics"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// EdgeConfig controls the edge node.
type EdgeConfig struct {
	// CloudTimeout bounds the whole edge→cloud escalation of a sample
	// that misses the edge exit, including any failover retries across
	// cloud replicas — the budget must stay below the gateway's
	// EdgeTimeout or the downstream tier gives up before the edge can
	// answer (or fall back). A replica that dies fast leaves the rest of
	// the budget to the retry; one that hangs consumes it, and the
	// session falls back while fencing removes the replica for later
	// sessions.
	CloudTimeout time.Duration
	// CloudFallback, when true, answers an escalated sample with the
	// edge's own (unconfident) classification if the cloud round trip
	// fails, instead of aborting the session — the serving system keeps
	// answering at reduced accuracy while the WAN path is down.
	CloudFallback bool
}

// DefaultEdgeConfig returns sensible defaults: a 5 s cloud round trip
// bound and best-effort fallback to the edge exit when the cloud is
// unreachable.
func DefaultEdgeConfig() EdgeConfig {
	return EdgeConfig{CloudTimeout: 5 * time.Second, CloudFallback: true}
}

// Edge is the middle tier of a three-tier hierarchy (Fig. 2 configs
// d/e): it receives the present devices' bit-packed feature maps from
// the gateway, aggregates them, runs the edge ConvP section and exit
// head, answers confident samples immediately (ExitEdge), and escalates
// only hard samples' edge feature maps to the cloud (§III-C staged
// escalation, middle stage).
//
// Sessions are demultiplexed by wire session ID on both sides: one
// gateway connection carries any number of interleaved sessions, and
// all sessions share one multiplexed link per cloud replica. The model
// is frozen (read-only), so complete sessions classify in parallel
// goroutines.
type Edge struct {
	model  *core.Model
	reg    *modelRegistry
	cfg    EdgeConfig
	logger *slog.Logger

	// pool recycles session feature maps and forward tensors across
	// classifications, keeping the steady-state handler allocation-free.
	pool *tensor.Pool

	cloud *ReplicaPool // nil until ConnectCloud

	// Meter accumulates the edge→cloud hop's Eq. (1)-style payload
	// bytes under "cloud-upload".
	Meter *metrics.CommMeter

	// nextUpstream numbers the edge's own cloud-pool sessions.
	// Downstream (gateway-assigned) session IDs are only unique per
	// gateway connection, and every connection shares the one cloud
	// replica pool — reusing them there would collide across gateways
	// and misroute verdicts.
	nextUpstream atomic.Uint64

	failed atomic.Bool
	// active counts in-flight classifications (goroutines spawned by the
	// connection handlers); Drain polls it to zero before tearing down.
	active atomic.Int64

	listener  net.Listener
	wg        sync.WaitGroup
	closeOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewEdge constructs the edge node around a trained edge-tier model.
func NewEdge(model *core.Model, cfg EdgeConfig, logger *slog.Logger) (*Edge, error) {
	if !model.Cfg.UseEdge {
		return nil, fmt.Errorf("cluster: edge node needs a model built with UseEdge")
	}
	if logger == nil {
		logger = slog.Default()
	}
	if cfg.CloudTimeout <= 0 {
		cfg.CloudTimeout = DefaultEdgeConfig().CloudTimeout
	}
	return &Edge{
		model:  model,
		reg:    newModelRegistry(model, 1),
		cfg:    cfg,
		logger: logger.With("node", "edge"),
		pool:   tensor.NewPool(),
		Meter:  metrics.NewCommMeter(),
		conns:  make(map[net.Conn]struct{}),
	}, nil
}

// ConnectCloud dials the upstream cloud replicas and pools them: edge
// escalations load-balance across healthy cloud replicas and retry on
// another replica when one dies mid-session. Sessions escalated before
// (or without) a cloud connection fail over per EdgeConfig.CloudFallback.
// The context bounds connection setup only.
func (e *Edge) ConnectCloud(ctx context.Context, tr transport.Transport, addrs ...string) error {
	pool, err := newReplicaPool(ctx, wire.ExitCloud, tr, addrs, e.logger)
	if err != nil {
		return fmt.Errorf("cluster: edge dial cloud: %w", err)
	}
	e.cloud = pool
	return nil
}

// Serve starts accepting gateway connections.
func (e *Edge) Serve(tr transport.Transport, addr string) error {
	l, err := tr.Listen(addr)
	if err != nil {
		return fmt.Errorf("cluster: edge: %w", err)
	}
	e.listener = l
	e.wg.Add(1)
	go e.acceptLoop()
	return nil
}

// Addr returns the listener's address; it is only valid after Serve.
func (e *Edge) Addr() string {
	if e.listener == nil {
		return ""
	}
	return e.listener.Addr().String()
}

// SetFailed toggles simulated failure: a failed edge node goes silent,
// which the gateway observes as escalation timeouts.
func (e *Edge) SetFailed(failed bool) { e.failed.Store(failed) }

// Failed reports the simulated-failure state.
func (e *Edge) Failed() bool { return e.failed.Load() }

func (e *Edge) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return
		}
		e.connMu.Lock()
		if e.closed {
			e.connMu.Unlock()
			conn.Close()
			continue
		}
		e.conns[conn] = struct{}{}
		e.connMu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer func() {
				conn.Close()
				e.connMu.Lock()
				delete(e.conns, conn)
				e.connMu.Unlock()
			}()
			e.handle(conn)
		}()
	}
}

// edgeSession pairs the escalation header with the accumulating device
// uploads and the model the session's version pin resolved to — every
// frame of the session computes on those weights even if the node's
// active version flips mid-session.
type edgeSession struct {
	hdr   *wire.EdgeClassify
	model *core.Model
	up    *uploadSession
}

// edgeBatchSession pairs a batched escalation header with the
// accumulating per-device FeatureBatch frames and the session's pinned
// model.
type edgeBatchSession struct {
	hdr   *wire.EdgeClassifyBatch
	model *core.Model
	up    *batchUploadSession
}

func (e *Edge) handle(conn net.Conn) {
	var wmu sync.Mutex
	send := func(m wire.Message) error {
		wmu.Lock()
		defer wmu.Unlock()
		_, err := wire.Encode(conn, m)
		return err
	}
	sessions := make(map[uint64]*edgeSession)
	batches := make(map[uint64]*edgeBatchSession)
	var inflight sync.WaitGroup
	defer inflight.Wait()
	for {
		msg, err := wire.Decode(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				e.logger.Debug("decode error", "err", err)
			}
			return
		}
		if e.failed.Load() {
			// A crashed edge goes silent; the gateway's escalation
			// timeout handles the rest.
			continue
		}
		switch m := msg.(type) {
		case *wire.Heartbeat:
			// Echo liveness probes for the gateway's failure detector.
			if err := send(m); err != nil {
				return
			}
		case *wire.EdgeClassify:
			model, _, err := e.reg.resolve(m.ModelVersion)
			if err != nil {
				_ = send(&wire.Error{Session: m.Session, Code: 426, Msg: err.Error()})
				continue
			}
			up, err := newUploadSession(model.Cfg, m.SampleID, m.Devices, m.Mask, m.PresentCount(), e.pool)
			if err != nil {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: err.Error()})
				continue
			}
			if up.complete() {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: "empty device mask"})
				continue
			}
			sessions[m.Session] = &edgeSession{hdr: m, model: model, up: up}
		case *wire.FeatureUpload:
			sess, ok := sessions[m.Session]
			if !ok {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: fmt.Sprintf("upload for unknown session %d", m.Session)})
				continue
			}
			if err := sess.up.add(sess.model, m); err != nil {
				delete(sessions, m.Session)
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: err.Error()})
				continue
			}
			if sess.up.complete() {
				delete(sessions, m.Session)
				inflight.Add(1)
				e.active.Add(1)
				go func(sess *edgeSession) {
					defer inflight.Done()
					defer e.active.Add(-1)
					e.classify(send, sess)
				}(sess)
			}
		case *wire.EdgeClassifyBatch:
			model, _, err := e.reg.resolve(m.ModelVersion)
			if err != nil {
				_ = send(&wire.Error{Session: m.Session, Code: 426, Msg: err.Error()})
				continue
			}
			up, err := newBatchUploadSession(model.Cfg, m.SampleIDs, m.Devices, m.Masks, e.pool)
			if err != nil {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: err.Error()})
				continue
			}
			batches[m.Session] = &edgeBatchSession{hdr: m, model: model, up: up}
		case *wire.FeatureBatch:
			sess, ok := batches[m.Session]
			if !ok {
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: fmt.Sprintf("feature batch for unknown session %d", m.Session)})
				continue
			}
			if err := sess.up.add(sess.model, m); err != nil {
				delete(batches, m.Session)
				_ = send(&wire.Error{Session: m.Session, Code: 400, Msg: err.Error()})
				continue
			}
			if sess.up.complete() {
				delete(batches, m.Session)
				inflight.Add(1)
				e.active.Add(1)
				go func(sess *edgeBatchSession) {
					defer inflight.Done()
					defer e.active.Add(-1)
					e.classifyBatch(send, sess)
				}(sess)
			}
		default:
			_ = send(&wire.Error{Session: sessionOf(msg), Code: 400, Msg: fmt.Sprintf("expected EdgeClassify(Batch) or FeatureUpload/FeatureBatch, got %v", msg.MsgType())})
		}
	}
}

// classify runs the edge stage for one complete session: aggregate the
// device feature maps, run the edge section, exit here when confident,
// and otherwise escalate the edge feature map to the cloud.
func (e *Edge) classify(send func(wire.Message) error, sess *edgeSession) {
	edgeFeat, edgeLogits := sess.model.EdgeForwardPooled(sess.up.feats, sess.up.mask, e.pool)
	sess.up.release(e.pool)
	defer e.pool.Put(edgeFeat)
	probs := nn.Softmax(edgeLogits)
	e.pool.Put(edgeLogits)
	row := make([]float32, probs.Dim(1))
	copy(row, probs.Row(0))

	// The first relayed threshold is this tier's exit criterion; an
	// empty list means the edge never exits and always escalates.
	confident := len(sess.hdr.Thresholds) > 0 &&
		nn.NormalizedEntropy(row) <= sess.hdr.Thresholds[0]
	verdict := &wire.ClassifyResult{
		Session:  sess.hdr.Session,
		SampleID: sess.hdr.SampleID,
		Exit:     wire.ExitEdge,
		Class:    uint16(probs.ArgMaxRow(0)),
		Probs:    row,
	}
	if confident {
		if err := send(verdict); err != nil {
			e.logger.Debug("edge verdict failed", "sample", sess.hdr.SampleID, "err", err)
		}
		return
	}

	cloudVerdict, err := e.escalate(sess, edgeFeat)
	if err != nil {
		if e.cfg.CloudFallback {
			// Degrade rather than fail: answer with the edge's own
			// best-effort classification while the cloud is down.
			e.logger.Warn("cloud escalation failed; answering at the edge", "sample", sess.hdr.SampleID, "err", err)
			if err := send(verdict); err != nil {
				e.logger.Debug("edge fallback verdict failed", "sample", sess.hdr.SampleID, "err", err)
			}
			return
		}
		_ = send(&wire.Error{Session: sess.hdr.Session, Code: 503, Msg: fmt.Sprintf("cloud escalation failed: %v", err)})
		return
	}
	if err := send(cloudVerdict); err != nil {
		e.logger.Debug("cloud verdict relay failed", "sample", sess.hdr.SampleID, "err", err)
	}
}

// classifyBatch runs the edge stage for one complete batched session:
// samples sharing a device mask aggregate and run the edge section in one
// forward pass, confident samples exit here (ExitEdge), and only the hard
// remainder rides a single EdgeFeatureBatch to the cloud — the batched
// partial exit that keeps upstream hops small. The whole batch answers
// with one ResultBatch in header order.
func (e *Edge) classifyBatch(send func(wire.Message) error, sess *edgeBatchSession) {
	up := sess.up
	n := len(up.ids)
	cfg := sess.model.Cfg
	eh, ew := cfg.FeatureH()/2, cfg.FeatureW()/2
	edgeFeats := e.pool.GetDirty(n, cfg.EdgeFilters, eh, ew)
	defer e.pool.Put(edgeFeats)
	verdicts := make([]wire.BatchVerdict, n)
	var hard []int
	for _, grp := range groupByMask(up.masks, cfg.Devices) {
		feats := selectGroup(up.feats, grp.indices, n, e.pool)
		edgeFeat, edgeLogits := sess.model.EdgeForwardPooled(feats, grp.present, e.pool)
		releaseGroup(up.feats, feats, e.pool)
		probs := nn.Softmax(edgeLogits)
		e.pool.Put(edgeLogits)
		for k, idx := range grp.indices {
			copy(edgeFeats.Sample(idx), edgeFeat.Sample(k))
			verdicts[idx] = verdictRow(probs, k, up.ids[idx], wire.ExitEdge)
		}
		e.pool.Put(edgeFeat)
	}
	up.release(e.pool)
	// The first relayed threshold is this tier's exit criterion; an empty
	// list means the edge never exits and always escalates.
	for i, v := range verdicts {
		confident := len(sess.hdr.Thresholds) > 0 &&
			nn.NormalizedEntropy(v.Probs) <= sess.hdr.Thresholds[0]
		if !confident {
			hard = append(hard, i)
		}
	}
	if len(hard) > 0 {
		cloudVerdicts, err := e.escalateBatch(sess, up.ids, hard, edgeFeats)
		if err != nil && !e.cfg.CloudFallback {
			_ = send(&wire.Error{Session: sess.hdr.Session, Code: 503, Msg: fmt.Sprintf("cloud escalation failed: %v", err)})
			return
		}
		if err != nil {
			// Degrade rather than fail: the hard samples keep the edge's
			// own best-effort verdicts while the cloud is down.
			e.logger.Warn("cloud escalation failed; answering batch at the edge", "samples", len(hard), "err", err)
		} else {
			for k, idx := range hard {
				verdicts[idx] = cloudVerdicts[k]
			}
		}
	}
	if err := send(&wire.ResultBatch{Session: sess.hdr.Session, Verdicts: verdicts}); err != nil {
		e.logger.Debug("edge batch verdict failed", "session", sess.hdr.Session, "err", err)
	}
}

// escalateBatch packs the hard samples' edge feature rows into one
// EdgeFeatureBatch, forwards it to a pool-scheduled cloud replica under
// a fresh edge-owned session ID and returns the cloud's verdicts in
// hard-index order.
func (e *Edge) escalateBatch(sess *edgeBatchSession, ids []uint64, hard []int, edgeFeats *tensor.Tensor) ([]wire.BatchVerdict, error) {
	if e.cloud == nil {
		return nil, fmt.Errorf("edge has no cloud connection")
	}
	upSession := e.nextUpstream.Add(1)
	hardIDs := make([]uint64, len(hard))
	var bits []byte
	for k, idx := range hard {
		hardIDs[k] = ids[idx]
		bits = append(bits, sess.model.PackFeatureSample(edgeFeats, idx)...)
	}
	msg := &wire.EdgeFeatureBatch{
		Session:      upSession,
		ModelVersion: sess.hdr.ModelVersion,
		F:            uint16(edgeFeats.Dim(1)),
		H:            uint16(edgeFeats.Dim(2)),
		W:            uint16(edgeFeats.Dim(3)),
		SampleIDs:    hardIDs,
		Bits:         bits,
	}
	e.Meter.Add("cloud-upload", int64(len(bits)))
	// One overall budget for pick + send + wait + any failover retries,
	// so N hung replicas cannot stack N full timeouts (see CloudTimeout).
	ctx, cancel := context.WithTimeout(context.Background(), e.cfg.CloudTimeout)
	defer cancel()
	reply, err := e.cloud.relay(ctx, upSession, e.cfg.CloudTimeout, msg)
	if err != nil {
		return nil, err
	}
	switch m := reply.(type) {
	case *wire.ResultBatch:
		if len(m.Verdicts) != len(hardIDs) {
			return nil, fmt.Errorf("cloud answered %d verdicts for %d samples", len(m.Verdicts), len(hardIDs))
		}
		for k, v := range m.Verdicts {
			if v.SampleID != hardIDs[k] {
				return nil, fmt.Errorf("cloud verdict %d is for sample %d, want %d", k, v.SampleID, hardIDs[k])
			}
		}
		return m.Verdicts, nil
	case *wire.Error:
		return nil, fmt.Errorf("cloud error %d: %s", m.Code, m.Msg)
	default:
		return nil, fmt.Errorf("expected ResultBatch, got %v", reply.MsgType())
	}
}

// escalate packs the edge feature map, forwards it to a pool-scheduled
// cloud replica under a fresh edge-owned session ID, waits for the
// verdict on that replica's link and rewrites it back onto the
// downstream session.
func (e *Edge) escalate(sess *edgeSession, edgeFeat *tensor.Tensor) (*wire.ClassifyResult, error) {
	if e.cloud == nil {
		return nil, fmt.Errorf("edge has no cloud connection")
	}
	upSession := e.nextUpstream.Add(1)
	bits := sess.model.PackFeature(edgeFeat)
	up := &wire.EdgeFeature{
		Session:      upSession,
		SampleID:     sess.hdr.SampleID,
		ModelVersion: sess.hdr.ModelVersion,
		F:            uint16(edgeFeat.Dim(1)),
		H:            uint16(edgeFeat.Dim(2)),
		W:            uint16(edgeFeat.Dim(3)),
		Bits:         bits,
	}
	e.Meter.Add("cloud-upload", int64(len(bits)))
	// One overall budget for pick + send + wait + any failover retries,
	// so N hung replicas cannot stack N full timeouts (see CloudTimeout).
	ctx, cancel := context.WithTimeout(context.Background(), e.cfg.CloudTimeout)
	defer cancel()
	msg, err := e.cloud.relay(ctx, upSession, e.cfg.CloudTimeout, up)
	if err != nil {
		return nil, err
	}
	switch m := msg.(type) {
	case *wire.ClassifyResult:
		if m.SampleID != sess.hdr.SampleID {
			return nil, fmt.Errorf("cloud answered sample %d inside session for sample %d", m.SampleID, sess.hdr.SampleID)
		}
		m.Session = sess.hdr.Session
		return m, nil
	case *wire.Error:
		return nil, fmt.Errorf("cloud error %d: %s", m.Code, m.Msg)
	default:
		return nil, fmt.Errorf("expected ClassifyResult, got %v", msg.MsgType())
	}
}

// Drain gracefully shuts the edge node down: it stops accepting new
// connections immediately, then waits for in-flight classifications
// (including their cloud escalations) to settle before tearing the node
// down. Downstream gateways hold their connections open indefinitely, so
// Drain waits on the classification counter, not on connection EOFs.
// When the context expires first, the node is torn down anyway and the
// context error is returned.
func (e *Edge) Drain(ctx context.Context) error {
	if e.listener != nil {
		e.listener.Close()
	}
	err := awaitIdle(ctx, &e.active)
	e.Close()
	return err
}

// Close stops the edge node, terminating any in-flight connections.
func (e *Edge) Close() error {
	e.closeOnce.Do(func() {
		if e.listener != nil {
			e.listener.Close()
		}
		e.connMu.Lock()
		e.closed = true
		for conn := range e.conns {
			conn.Close()
		}
		e.connMu.Unlock()
		if e.cloud != nil {
			e.cloud.close()
		}
	})
	e.wg.Wait()
	return nil
}
