package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/modelio"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// Rollout states, as reported by Engine.RolloutState.
const (
	// RolloutIdle means no rollout is running and the last one (if any)
	// completed successfully.
	RolloutIdle = "idle"
	// RolloutRolling means a rollout is flipping replicas right now.
	RolloutRolling = "rolling"
	// RolloutRolledBack means the last rollout failed a canary (or lost a
	// replica) and the fleet was restored to the prior active version.
	RolloutRolledBack = "rolled_back"
)

const (
	rolloutIdle int32 = iota
	rolloutRolling
	rolloutRolledBack
)

// canarySamples is the size of the held-out batch every freshly flipped
// replica must classify bit-identically to the staged reference before
// the rollout proceeds past it.
const canarySamples = 8

// RegisterModel registers an already-decoded model under an explicit
// version number. The version must be new and the architecture must
// match the serving fleet's; the active version does not change — use
// RolloutModel to start serving it.
func (e *Engine) RegisterModel(version uint64, m *core.Model) error {
	return e.reg.register(version, m)
}

// RegisterModelBytes decodes a versioned model artifact (modelio v2
// format) and registers it under its stamped version, which is
// returned. Decode failures surface modelio's typed errors
// (modelio.ErrCorruptModel, modelio.ErrVersionUnsupported); a version
// collision or architecture mismatch surfaces
// ErrDuplicateModelVersion / ErrModelConfigMismatch.
func (e *Engine) RegisterModelBytes(data []byte) (uint64, error) {
	m, v, err := modelio.LoadVersioned(bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	if err := e.reg.register(v, m); err != nil {
		return 0, err
	}
	return v, nil
}

// ModelVersions returns the versions the engine's registry holds, in
// ascending order.
func (e *Engine) ModelVersions() []uint64 { return e.reg.versions() }

// ModelVersion returns the fleet's active model version.
func (e *Engine) ModelVersion() uint64 { return e.reg.activeVersion() }

// RolloutState reports the lifecycle state of the model rollout machine:
// RolloutIdle, RolloutRolling or RolloutRolledBack.
func (e *Engine) RolloutState() string {
	switch e.rolloutState.Load() {
	case rolloutRolling:
		return RolloutRolling
	case rolloutRolledBack:
		return RolloutRolledBack
	default:
		return RolloutIdle
	}
}

// SetRolloutTamper installs a hook called for every replica a rollout is
// about to canary: a non-nil return replaces the replica's copy of the
// new version with the returned model, making the canary compare that
// (presumably corrupt) copy against the staged reference. Chaos tests
// use it to plant canary failures; pass nil to clear.
func (e *Engine) SetRolloutTamper(f func(tier wire.ExitPoint, replica int) *core.Model) {
	e.tamperMu.Lock()
	e.tamper = f
	e.tamperMu.Unlock()
}

func (e *Engine) tamperFor(tier wire.ExitPoint, replica int) *core.Model {
	e.tamperMu.Lock()
	f := e.tamper
	e.tamperMu.Unlock()
	if f == nil {
		return nil
	}
	return f(tier, replica)
}

// RolloutModel performs a zero-downtime rolling reload of the fleet onto
// an already-registered model version:
//
//  1. The version is installed (but not activated) in every node's
//     registry, so sessions pinned to it resolve anywhere mid-rollout.
//  2. One upstream replica at a time — edge replicas first for
//     three-tier hierarchies, then cloud replicas — is fenced out of its
//     scheduling pool, drained of in-flight sessions, flipped to the new
//     version, and canaried: it must reproduce the staged reference
//     outputs for a held-out sample batch bit-identically, with finite
//     probabilities. Only then is it unfenced and the next replica
//     rolled.
//  3. When every replica passes, the devices, the gateway and the
//     engine flip their active pointers; new sessions pin the new
//     version from then on.
//
// Sessions in flight during the rollout are never disturbed: each pinned
// its model version (and resolved weights) at session start, and fencing
// only diverts new sessions. A failed canary — or a replica lost
// mid-rollout — aborts the rollout and rolls the whole fleet back to the
// prior active version; the returned error wraps ErrRolloutFailed and
// names the failing replica and stage. Rollouts are serialized; a
// concurrent call fails fast with ErrRolloutInProgress.
//
// RolloutModel requires an in-process engine (NewEngine); engines
// attached to remote nodes cannot reach into their registries.
func (e *Engine) RolloutModel(ctx context.Context, version uint64) error {
	if e.sim == nil {
		return fmt.Errorf("cluster: rollout requires an in-process engine")
	}
	if version == 0 {
		return fmt.Errorf("cluster: rollout needs an explicit version: %w", ErrModelVersionUnknown)
	}
	if !e.rolloutMu.TryLock() {
		return ErrRolloutInProgress
	}
	defer e.rolloutMu.Unlock()

	next, _, err := e.reg.resolve(version)
	if err != nil {
		return err
	}
	prev := e.reg.activeVersion()
	if version == prev {
		return nil // already serving this version
	}

	e.rolloutState.Store(rolloutRolling)

	// Stage everywhere first: a session pinned to the new version by an
	// already-flipped replica must resolve on nodes still serving the old
	// active.
	e.installEverywhere(version, next)

	// The staged reference the canaries compare against: the engine's own
	// copy of the new version over the held-out canary batch.
	ref := next.Evaluate(e.canary, nil, canarySamples)

	var failErr error
	for i := 0; i < e.sim.edgeCount() && failErr == nil; i++ {
		failErr = e.rollReplica(ctx, wire.ExitEdge, i, version, ref)
	}
	for i := 0; i < e.sim.cloudCount() && failErr == nil; i++ {
		failErr = e.rollReplica(ctx, wire.ExitCloud, i, version, ref)
	}
	if failErr != nil {
		e.rollbackTo(prev, version, next)
		e.rolloutState.Store(rolloutRolledBack)
		return fmt.Errorf("%w: %w", ErrRolloutFailed, failErr)
	}

	// Flip the gateway (and engine) before refreshing the replicas: a
	// replica hard-restarted mid-rollout seeds its registry from the
	// gateway's under the sim lock, and the refresh loop re-fetches each
	// slot under that same lock, so every restart/flip interleaving
	// leaves the fleet on the new version.
	e.reg.setActive(version)
	e.gw.reg.setActive(version)
	for _, d := range e.sim.Devices {
		d.reg.setActive(version)
	}
	e.refreshReplicas(version, next)
	e.rolloutState.Store(rolloutIdle)
	return nil
}

// refreshReplicas re-stages and re-activates a version on every upstream
// replica, catching nodes that were hard-restarted mid-rollout.
func (e *Engine) refreshReplicas(version uint64, m *core.Model) {
	for i := 0; i < e.sim.edgeCount(); i++ {
		if ed := e.sim.EdgeReplica(i); ed != nil {
			ed.reg.install(version, m)
			ed.reg.setActive(version)
		}
	}
	for i := 0; i < e.sim.cloudCount(); i++ {
		if c := e.sim.CloudReplica(i); c != nil {
			c.reg.install(version, m)
			c.reg.setActive(version)
		}
	}
}

// installEverywhere stages a version in every node registry without
// activating it anywhere.
func (e *Engine) installEverywhere(version uint64, m *core.Model) {
	for _, d := range e.sim.Devices {
		d.reg.install(version, m)
	}
	for i := 0; i < e.sim.edgeCount(); i++ {
		if ed := e.sim.EdgeReplica(i); ed != nil {
			ed.reg.install(version, m)
		}
	}
	for i := 0; i < e.sim.cloudCount(); i++ {
		if c := e.sim.CloudReplica(i); c != nil {
			c.reg.install(version, m)
		}
	}
	e.gw.reg.install(version, m)
}

// rollReplica fences, drains, flips and canaries one upstream replica.
func (e *Engine) rollReplica(ctx context.Context, tier wire.ExitPoint, i int, version uint64, ref *core.EvalResult) error {
	e.setFence(tier, i, true)
	defer e.setFence(tier, i, false)

	// Re-fetch the replica after fencing: a chaos restart may have
	// replaced the node since the rollout started.
	var active *atomic.Int64
	var reg *modelRegistry
	switch tier {
	case wire.ExitEdge:
		ed := e.sim.EdgeReplica(i)
		if ed == nil {
			return fmt.Errorf("edge replica %d: gone", i)
		}
		active, reg = &ed.active, ed.reg
	default:
		c := e.sim.CloudReplica(i)
		if c == nil {
			return fmt.Errorf("cloud replica %d: gone", i)
		}
		active, reg = &c.active, c.reg
	}

	// Drain: wait for the replica's in-flight classifications to settle.
	// Fencing already diverts new sessions to the other replicas.
	if err := awaitIdle(ctx, active); err != nil {
		return fmt.Errorf("%v replica %d: drain: %w", tier, i, err)
	}

	// Swap: a planted tamper (chaos/test hook) can corrupt this replica's
	// copy right before the flip — exactly the failure the canary exists
	// to catch.
	if bad := e.tamperFor(tier, i); bad != nil {
		reg.install(version, bad)
	}
	if err := reg.setActive(version); err != nil {
		return fmt.Errorf("%v replica %d: activate: %w", tier, i, err)
	}

	// Canary: the replica's resolved copy of the new version must
	// reproduce the staged reference bit-identically with finite
	// probabilities before traffic returns.
	m, _, err := reg.resolve(version)
	if err != nil {
		return fmt.Errorf("%v replica %d: canary resolve: %w", tier, i, err)
	}
	if err := canaryCompare(ref, m.Evaluate(e.canary, nil, canarySamples)); err != nil {
		return fmt.Errorf("%v replica %d: canary: %w", tier, i, err)
	}
	return nil
}

// setFence flips a tier replica's scheduling fence in every pool that
// routes to it: the gateway's upstream pool for the tier the gateway
// escalates to, and each edge replica's cloud pool for the cloud tier of
// a three-tier hierarchy.
func (e *Engine) setFence(tier wire.ExitPoint, i int, fenced bool) {
	if tier == e.gw.upstreamExit() {
		e.gw.upstream.setFenced(i, fenced)
		return
	}
	// Cloud tier behind the edge tier: fence in every edge's pool.
	for j := 0; j < e.sim.edgeCount(); j++ {
		if ed := e.sim.EdgeReplica(j); ed != nil && ed.cloud != nil {
			ed.cloud.setFenced(i, fenced)
		}
	}
}

// rollbackTo restores the whole fleet to the prior active version and
// repairs any replica registry a tamper hook corrupted, re-installing
// the engine's good copy of the attempted version so stale pinned
// sessions can still resolve it.
func (e *Engine) rollbackTo(prev, attempted uint64, good *core.Model) {
	prevModel := e.reg.model(prev)
	restore := func(r *modelRegistry) {
		if prevModel != nil {
			r.install(prev, prevModel)
		}
		r.install(attempted, good) // overwrite a tampered copy
		r.setActive(prev)
	}
	// Gateway first, for the same reason RolloutModel flips it before
	// refreshing replicas: a node restarted mid-rollback seeds from the
	// gateway's registry.
	e.reg.setActive(prev)
	restore(e.gw.reg)
	for _, d := range e.sim.Devices {
		restore(d.reg)
	}
	for i := 0; i < e.sim.edgeCount(); i++ {
		if ed := e.sim.EdgeReplica(i); ed != nil {
			restore(ed.reg)
		}
	}
	for i := 0; i < e.sim.cloudCount(); i++ {
		if c := e.sim.CloudReplica(i); c != nil {
			restore(c.reg)
		}
	}
}

// VerifyModelConvergence checks that every node in the hierarchy is
// serving the engine's active model version, returning an error naming
// the first divergent node. Chaos harnesses call it after healing to
// prove rollouts and restarts interleaved without splitting the fleet.
func (e *Engine) VerifyModelConvergence() error {
	if e.sim == nil {
		return nil
	}
	want := e.reg.activeVersion()
	if got := e.gw.reg.activeVersion(); got != want {
		return fmt.Errorf("cluster: gateway active version %d, engine %d", got, want)
	}
	for i, d := range e.sim.Devices {
		if got := d.reg.activeVersion(); got != want {
			return fmt.Errorf("cluster: device %d active version %d, engine %d", i, got, want)
		}
	}
	for i := 0; i < e.sim.edgeCount(); i++ {
		if ed := e.sim.EdgeReplica(i); ed != nil {
			if got := ed.reg.activeVersion(); got != want {
				return fmt.Errorf("cluster: edge replica %d active version %d, engine %d", i, got, want)
			}
		}
	}
	for i := 0; i < e.sim.cloudCount(); i++ {
		if c := e.sim.CloudReplica(i); c != nil {
			if got := c.reg.activeVersion(); got != want {
				return fmt.Errorf("cluster: cloud replica %d active version %d, engine %d", i, got, want)
			}
		}
	}
	return nil
}

// canaryCompare checks a freshly flipped replica's outputs against the
// staged reference: every probability row must be finite and bit-
// identical, and every argmax must agree.
func canaryCompare(ref, got *core.EvalResult) error {
	check := func(stage string, want, have [][]float32) error {
		if len(want) != len(have) {
			return fmt.Errorf("%s: %d rows, want %d", stage, len(have), len(want))
		}
		for i := range want {
			if len(want[i]) != len(have[i]) {
				return fmt.Errorf("%s row %d: %d classes, want %d", stage, i, len(have[i]), len(want[i]))
			}
			for j := range want[i] {
				if math.IsNaN(float64(have[i][j])) || math.IsInf(float64(have[i][j]), 0) {
					return fmt.Errorf("%s row %d: non-finite probability", stage, i)
				}
				if want[i][j] != have[i][j] {
					return fmt.Errorf("%s row %d class %d: prob %g, want %g", stage, i, j, have[i][j], want[i][j])
				}
			}
			if argmax(want[i]) != argmax(have[i]) {
				return fmt.Errorf("%s row %d: argmax %d, want %d", stage, i, argmax(have[i]), argmax(want[i]))
			}
		}
		return nil
	}
	if err := check("local", ref.LocalProbs, got.LocalProbs); err != nil {
		return err
	}
	if ref.EdgeProbs != nil {
		if err := check("edge", ref.EdgeProbs, got.EdgeProbs); err != nil {
			return err
		}
	}
	return check("cloud", ref.CloudProbs, got.CloudProbs)
}

// argmax returns the index of the row's maximum element.
func argmax(row []float32) int {
	best := 0
	for i := 1; i < len(row); i++ {
		if row[i] > row[best] {
			best = i
		}
	}
	return best
}
