package cluster

import (
	"context"
	"testing"

	"github.com/ddnn/ddnn-go/internal/branchy"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// stagedExpectation replays core's staged Evaluate decision for one
// sample: the first exit whose entropy passes its threshold classifies,
// and the final exit always does.
func stagedExpectation(res *core.EvalResult, pol branchy.Policy, i int) (wire.ExitPoint, int) {
	probs := [][]float32{res.LocalProbs[i]}
	exits := []wire.ExitPoint{wire.ExitLocal}
	if res.EdgeProbs != nil {
		probs = append(probs, res.EdgeProbs[i])
		exits = append(exits, wire.ExitEdge)
	}
	probs = append(probs, res.CloudProbs[i])
	exits = append(exits, wire.ExitCloud)
	for e := range probs {
		if pol.ShouldExit(e, probs[e]) {
			return exits[e], argmaxRow(probs[e])
		}
	}
	return exits[len(exits)-1], argmaxRow(probs[len(probs)-1])
}

func argmaxRow(row []float32) int {
	best := 0
	for i := 1; i < len(row); i++ {
		if row[i] > row[best] {
			best = i
		}
	}
	return best
}

// checkStagedParity asserts that Engine.ClassifyBatch over the full test
// set produces exactly the exit point and prediction of core's staged
// Evaluate for every sample, at the given pipeline thresholds.
func checkStagedParity(t *testing.T, model *core.Model, test *dataset.Dataset, localT, edgeT float64) {
	t.Helper()
	res := model.Evaluate(test, nil, 32)
	var pol branchy.Policy
	if model.Cfg.UseEdge {
		pol = branchy.NewPolicy(localT, edgeT, 1)
	} else {
		pol = branchy.NewPolicy(localT, 1)
	}

	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = localT
	gcfg.EdgeThreshold = edgeT
	eng, err := NewEngine(model, test, EngineConfig{
		Gateway:        gcfg,
		MaxConcurrency: 8,
		Logger:         quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ids := make([]uint64, test.Len())
	for i := range ids {
		ids[i] = uint64(i)
	}
	results, err := eng.ClassifyBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range results {
		wantExit, wantClass := stagedExpectation(res, pol, i)
		if got.Exit != wantExit {
			t.Errorf("sample %d: engine exited at %v, staged Evaluate says %v", i, got.Exit, wantExit)
		}
		if got.Class != wantClass {
			t.Errorf("sample %d: engine class %d, staged Evaluate says %d", i, got.Class, wantClass)
		}
	}
}

// TestEngineStagedParityTwoTier checks end-to-end parity between the
// distributed serving runtime and in-process staged inference for the
// two-tier hierarchy, over the full test set at several thresholds.
func TestEngineStagedParityTwoTier(t *testing.T) {
	model, test := fixture(t)
	for _, localT := range []float64{0.3, 0.5, 0.8, 0.95} {
		checkStagedParity(t, model, test, localT, 0.8)
	}
}

// TestEngineStagedParityEdgeTier is the same contract over the
// three-tier device→edge→cloud hierarchy: every sample must take the
// same exit — local, edge or cloud — and produce the same class as
// core's staged Evaluate, across several threshold pairs.
func TestEngineStagedParityEdgeTier(t *testing.T) {
	model, test := edgeFixture(t)
	for _, ts := range [][2]float64{
		{0.3, 0.8},
		{0.5, 0.5},
		{0.8, 0.3},
		{0.8, 0.8},
		{0.95, 0.95},
	} {
		checkStagedParity(t, model, test, ts[0], ts[1])
	}
}
