package cluster

import (
	"context"
	"testing"

	"github.com/ddnn/ddnn-go/internal/branchy"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// stagedExpectation replays core's staged Evaluate decision for one
// sample: the first exit whose entropy passes its threshold classifies,
// and the final exit always does.
func stagedExpectation(res *core.EvalResult, pol branchy.Policy, i int) (wire.ExitPoint, int) {
	probs := [][]float32{res.LocalProbs[i]}
	exits := []wire.ExitPoint{wire.ExitLocal}
	if res.EdgeProbs != nil {
		probs = append(probs, res.EdgeProbs[i])
		exits = append(exits, wire.ExitEdge)
	}
	probs = append(probs, res.CloudProbs[i])
	exits = append(exits, wire.ExitCloud)
	for e := range probs {
		if pol.ShouldExit(e, probs[e]) {
			return exits[e], argmaxRow(probs[e])
		}
	}
	return exits[len(exits)-1], argmaxRow(probs[len(probs)-1])
}

func argmaxRow(row []float32) int {
	best := 0
	for i := 1; i < len(row); i++ {
		if row[i] > row[best] {
			best = i
		}
	}
	return best
}

// checkStagedParity asserts that Engine.ClassifyBatch over the full test
// set produces exactly the exit point and prediction of core's staged
// Evaluate for every sample, at the given pipeline thresholds. batch <= 1
// uses per-sample sessions; larger values drive the micro-batched wire
// path in batch-sized multi-sample sessions.
func checkStagedParity(t *testing.T, model *core.Model, test *dataset.Dataset, localT, edgeT float64, batch int) {
	t.Helper()
	res := model.Evaluate(test, nil, 32)
	var pol branchy.Policy
	if model.Cfg.UseEdge {
		pol = branchy.NewPolicy(localT, edgeT, 1)
	} else {
		pol = branchy.NewPolicy(localT, 1)
	}

	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = localT
	gcfg.EdgeThreshold = edgeT
	eng, err := NewEngine(model, test, EngineConfig{
		Gateway:        gcfg,
		MaxConcurrency: 8,
		Batch:          BatchConfig{MaxBatch: batch},
		Logger:         quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ids := make([]uint64, test.Len())
	for i := range ids {
		ids[i] = uint64(i)
	}
	var results []*Result
	if batch == 1 {
		// Exercise the batched wire path with single-sample batches,
		// which the collector never produces on its own.
		gw := eng.Gateway()
		for _, id := range ids {
			rs, err := gw.ClassifyBatch(context.Background(), []uint64{id})
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, rs...)
		}
	} else {
		results, err = eng.ClassifyBatch(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, got := range results {
		wantExit, wantClass := stagedExpectation(res, pol, i)
		if got.Exit != wantExit {
			t.Errorf("sample %d (batch %d): engine exited at %v, staged Evaluate says %v", i, batch, got.Exit, wantExit)
		}
		if got.Class != wantClass {
			t.Errorf("sample %d (batch %d): engine class %d, staged Evaluate says %d", i, batch, got.Class, wantClass)
		}
	}
}

// TestEngineStagedParityTwoTier checks end-to-end parity between the
// distributed serving runtime and in-process staged inference for the
// two-tier hierarchy, over the full test set at several thresholds.
func TestEngineStagedParityTwoTier(t *testing.T) {
	model, test := fixture(t)
	for _, localT := range []float64{0.3, 0.5, 0.8, 0.95} {
		checkStagedParity(t, model, test, localT, 0.8, 0)
	}
}

// TestEngineStagedParityTwoTierBatched is the same contract through the
// micro-batched path: batch sizes 1, 8 and 32 must all be bit-identical
// to core's staged Evaluate — batching may only change framing and
// dispatch, never decisions.
func TestEngineStagedParityTwoTierBatched(t *testing.T) {
	model, test := fixture(t)
	for _, batch := range []int{1, 8, 32} {
		for _, localT := range []float64{0.5, 0.8} {
			checkStagedParity(t, model, test, localT, 0.8, batch)
		}
	}
}

// TestEngineStagedParityEdgeTier is the same contract over the
// three-tier device→edge→cloud hierarchy: every sample must take the
// same exit — local, edge or cloud — and produce the same class as
// core's staged Evaluate, across several threshold pairs.
func TestEngineStagedParityEdgeTier(t *testing.T) {
	model, test := edgeFixture(t)
	for _, ts := range [][2]float64{
		{0.3, 0.8},
		{0.5, 0.5},
		{0.8, 0.3},
		{0.8, 0.8},
		{0.95, 0.95},
	} {
		checkStagedParity(t, model, test, ts[0], ts[1], 0)
	}
}

// TestEngineStagedParityEdgeTierBatched drives the batched path through
// all three tiers: partial exits must drop confident samples from the
// batch at the local and edge stages while the hard remainder rides to
// the cloud, with every verdict bit-identical to staged Evaluate.
func TestEngineStagedParityEdgeTierBatched(t *testing.T) {
	model, test := edgeFixture(t)
	for _, batch := range []int{1, 8, 32} {
		for _, ts := range [][2]float64{
			{0.5, 0.5},
			{0.8, 0.8},
		} {
			checkStagedParity(t, model, test, ts[0], ts[1], batch)
		}
	}
}
