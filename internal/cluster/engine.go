package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/transport"
)

// DefaultMaxConcurrency bounds in-flight sessions when EngineConfig does
// not say otherwise.
const DefaultMaxConcurrency = 16

// EngineConfig assembles every knob of a serving engine. The public facade
// builds it from functional options.
type EngineConfig struct {
	// Gateway holds the exit threshold, stage timeouts and failure
	// detection settings.
	Gateway GatewayConfig
	// MaxConcurrency bounds the number of in-flight sessions; requests
	// beyond it queue on a semaphore (respecting their contexts). Zero
	// means DefaultMaxConcurrency.
	MaxConcurrency int
	// Logger receives node logs; nil means slog.Default().
	Logger *slog.Logger
	// DeviceLink, EdgeLink and CloudLink, when non-zero, wrap the
	// cluster's dialed connections in link simulators with these
	// profiles (in-process engines only), modelling the constrained
	// wireless uplinks, the nearby edge hop and the WAN path of
	// §IV-B/§V. EdgeLink applies to the gateway↔edge hop of edge-tier
	// models; CloudLink to whichever hop reaches the cloud.
	DeviceLink transport.LinkProfile
	EdgeLink   transport.LinkProfile
	CloudLink  transport.LinkProfile
}

// simulatesLinks reports whether any link profile is configured.
func (c EngineConfig) simulatesLinks() bool {
	zero := transport.LinkProfile{}
	return c.DeviceLink != zero || c.EdgeLink != zero || c.CloudLink != zero
}

// Engine is the concurrent serving runtime: a gateway (plus, for
// in-process engines, the device and cloud nodes it talks to) behind a
// semaphore that bounds in-flight sessions. All methods are safe for
// concurrent use.
type Engine struct {
	gw  *Gateway
	sim *Sim // nil when attached to remote nodes

	tr           transport.Transport
	deviceAddrs  []string
	upstreamAddr string

	sem    chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewEngine starts a complete in-process cluster — device nodes, the
// edge node for edge-tier models, cloud and gateway over the transport —
// and returns a serving engine for it. Sample IDs are indices into ds.
func NewEngine(m *core.Model, ds *dataset.Dataset, cfg EngineConfig, tr transport.Transport) (*Engine, error) {
	simTr := tr
	if cfg.simulatesLinks() {
		simTr = transport.RouteSim{
			Inner: tr,
			Pick: func(addr string) transport.LinkProfile {
				switch addr {
				case "cloud":
					return cfg.CloudLink
				case "edge":
					return cfg.EdgeLink
				default:
					return cfg.DeviceLink
				}
			},
		}
	}
	sim, err := NewSim(m, ds, cfg.Gateway, simTr, cfg.Logger)
	if err != nil {
		return nil, err
	}
	e := newEngine(sim.Gateway, cfg)
	e.sim = sim
	e.tr = simTr
	e.deviceAddrs = sim.DeviceAddrs()
	e.upstreamAddr = sim.UpstreamAddr()
	return e, nil
}

// AttachEngine connects a serving engine to already-running nodes (e.g.
// over TCP): the device nodes plus the gateway's upstream tier — the
// edge node (cmd/ddnn-edge) for models built with UseEdge, the cloud
// node otherwise. The context bounds connection setup.
func AttachEngine(ctx context.Context, m *core.Model, cfg EngineConfig, tr transport.Transport, deviceAddrs []string, upstreamAddr string) (*Engine, error) {
	gw, err := NewGateway(ctx, m, cfg.Gateway, tr, deviceAddrs, upstreamAddr, cfg.Logger)
	if err != nil {
		return nil, err
	}
	e := newEngine(gw, cfg)
	e.tr = tr
	e.deviceAddrs = append([]string(nil), deviceAddrs...)
	e.upstreamAddr = upstreamAddr
	return e, nil
}

func newEngine(gw *Gateway, cfg EngineConfig) *Engine {
	maxC := cfg.MaxConcurrency
	if maxC <= 0 {
		maxC = DefaultMaxConcurrency
	}
	return &Engine{gw: gw, sem: make(chan struct{}, maxC)}
}

// Classify runs one inference session, queueing on the engine's
// concurrency semaphore first. The context governs both the queue wait and
// every stage of the session.
func (e *Engine) Classify(ctx context.Context, sampleID uint64) (*Result, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctxErr(ctx.Err())
	}
	e.wg.Add(1)
	defer func() {
		<-e.sem
		e.wg.Done()
	}()
	if e.closed.Load() {
		return nil, ErrClosed
	}
	return e.gw.Classify(ctx, sampleID)
}

// ClassifyBatch classifies the samples concurrently (bounded by the
// engine's MaxConcurrency) and returns results in input order. The first
// session error cancels the remaining sessions and is returned; results
// for sessions that completed before the failure are still filled in
// (nil entries mark sessions that did not complete).
func (e *Engine) ClassifyBatch(ctx context.Context, sampleIDs []uint64) ([]*Result, error) {
	results := make([]*Result, len(sampleIDs))
	if len(sampleIDs) == 0 {
		return results, nil
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// One worker per semaphore slot, not per sample: huge batches must
	// not allocate a goroutine per ID just to park on the semaphore.
	workers := cap(e.sem)
	if workers > len(sampleIDs) {
		workers = len(sampleIDs)
	}
	indices := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				res, err := e.Classify(bctx, sampleIDs[i])
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("sample %d: %w", sampleIDs[i], err)
						cancel()
					})
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range sampleIDs {
		indices <- i
	}
	close(indices)
	wg.Wait()
	if firstErr != nil {
		return results, firstErr
	}
	return results, nil
}

// Gateway exposes the underlying gateway for stats (Meter, WireBytesUp,
// DownDevices).
func (e *Engine) Gateway() *Gateway { return e.gw }

// Devices returns the in-process device nodes, or nil for an attached
// engine. Simulations use it to inject failures.
func (e *Engine) Devices() []*Device {
	if e.sim == nil {
		return nil
	}
	return e.sim.Devices
}

// Edge returns the in-process edge node, or nil for two-tier models and
// attached engines. Simulations use it to inject failures and read the
// edge→cloud hop's communication meter.
func (e *Engine) Edge() *Edge {
	if e.sim == nil {
		return nil
	}
	return e.sim.Edge
}

// StartHealthMonitor begins heartbeat probing of the engine's devices and
// upstream tier over its transport; see Gateway.StartHealthMonitor.
func (e *Engine) StartHealthMonitor(ctx context.Context, interval time.Duration, misses int) (*HealthMonitor, error) {
	if e.tr == nil || len(e.deviceAddrs) == 0 {
		return nil, fmt.Errorf("cluster: engine has no device addresses to probe")
	}
	return e.gw.StartHealthMonitor(ctx, e.tr, e.deviceAddrs, e.upstreamAddr, interval, misses)
}

// Close drains in-flight sessions and tears the engine (and, for
// in-process engines, the whole cluster) down.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	e.wg.Wait()
	if e.sim != nil {
		return e.sim.Close()
	}
	return e.gw.Close()
}
