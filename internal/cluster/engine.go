package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// DefaultMaxConcurrency bounds in-flight sessions when EngineConfig does
// not say otherwise.
const DefaultMaxConcurrency = 16

// EngineConfig assembles every knob of a serving engine. The public facade
// builds it from functional options.
type EngineConfig struct {
	// Gateway holds the exit threshold, stage timeouts and failure
	// detection settings.
	Gateway GatewayConfig
	// MaxConcurrency bounds the number of in-flight sessions; requests
	// beyond it queue on a semaphore (respecting their contexts). Zero
	// means DefaultMaxConcurrency.
	MaxConcurrency int
	// Batch enables adaptive micro-batching: concurrent Classify calls
	// coalesce into one multi-sample session per tier (see BatchConfig).
	// The zero value disables batching.
	Batch BatchConfig
	// EdgeReplicas is the number of edge nodes an in-process engine
	// starts for edge-tier models (NewEngine only; attached engines take
	// explicit address lists). Zero means one. Sessions load-balance
	// across the replicas and fail over when one dies.
	EdgeReplicas int
	// CloudReplicas is the number of cloud nodes an in-process engine
	// starts (NewEngine only). Zero means one.
	CloudReplicas int
	// Edge configures the in-process edge replicas (NewEngine only);
	// nil means DefaultEdgeConfig.
	Edge *EdgeConfig
	// Workers bounds the worker pool that splits a coalesced batch's
	// tier forwards across cores — per-sample convolutions and
	// output-channel blocks of large single-sample convolutions. Zero
	// keeps the current bound (default GOMAXPROCS). The bound is
	// process-wide (all engines share the machine's cores), so the last
	// configured engine wins; see tensor.SetMaxWorkers.
	Workers int
	// ModelVersion is the version number the engine's starting model is
	// registered under in the fleet-wide model registry. Zero means 1.
	// Later versions arrive via Engine.RegisterModel/RegisterModelBytes
	// and go live via Engine.RolloutModel.
	ModelVersion uint64
	// Logger receives node logs; nil means slog.Default().
	Logger *slog.Logger
	// DeviceLink, EdgeLink and CloudLink, when non-zero, wrap the
	// cluster's dialed connections in link simulators with these
	// profiles (in-process engines only), modelling the constrained
	// wireless uplinks, the nearby edge hop and the WAN path of
	// §IV-B/§V. EdgeLink applies to the gateway↔edge hop of edge-tier
	// models; CloudLink to whichever hop reaches the cloud.
	DeviceLink transport.LinkProfile
	// EdgeLink is the gateway↔edge hop's simulated profile; see DeviceLink.
	EdgeLink transport.LinkProfile
	// CloudLink is the simulated profile of whichever hop reaches the cloud; see DeviceLink.
	CloudLink transport.LinkProfile
}

// simulatesLinks reports whether any link profile is configured.
func (c EngineConfig) simulatesLinks() bool {
	zero := transport.LinkProfile{}
	return c.DeviceLink != zero || c.EdgeLink != zero || c.CloudLink != zero
}

// Engine is the concurrent serving runtime: a gateway (plus, for
// in-process engines, the device and cloud nodes it talks to) behind a
// semaphore that bounds in-flight sessions. All methods are safe for
// concurrent use.
type Engine struct {
	gw  *Gateway
	sim *Sim // nil when attached to remote nodes

	tr            transport.Transport
	deviceAddrs   []string
	upstreamAddrs []string

	sem       chan struct{}
	collector *batchCollector // nil unless Batch.MaxBatch > 1

	// reg is the fleet's source of truth for loaded model versions and
	// the active pointer; every node's registry mirrors it. canary is the
	// held-out batch rollout canaries replay (nil for attached engines,
	// which cannot roll out).
	reg    *modelRegistry
	canary *dataset.Dataset

	rolloutMu    sync.Mutex   // serializes RolloutModel
	rolloutState atomic.Int32 // rolloutIdle / rolloutRolling / rolloutRolledBack
	tamperMu     sync.Mutex
	tamper       func(tier wire.ExitPoint, replica int) *core.Model

	// mu guards the closed/closing flags AND every wg.Add: a session may
	// only register with the WaitGroup while `closed` is false under mu,
	// and Close sets `closed` under mu before calling wg.Wait, so Wait
	// can never race an Add on a zero counter (the documented WaitGroup
	// misuse the previous atomic-flag handshake allowed).
	mu      sync.Mutex
	closed  bool
	closing bool
	wg      sync.WaitGroup
}

// NewEngine starts a complete in-process cluster — device nodes, the
// edge replicas for edge-tier models, the cloud replicas and a gateway
// over the transport — and returns a serving engine for it. Replica
// counts come from EngineConfig.EdgeReplicas/CloudReplicas. Sample IDs
// are indices into ds.
func NewEngine(m *core.Model, ds *dataset.Dataset, cfg EngineConfig, tr transport.Transport) (*Engine, error) {
	simTr := tr
	if cfg.simulatesLinks() {
		simTr = transport.RouteSim{
			Inner: tr,
			Pick: func(addr string) transport.LinkProfile {
				// Replicated tiers listen as "cloud-N" / "edge-N"; every
				// replica of a tier shares that tier's link profile.
				switch {
				case strings.HasPrefix(addr, "cloud"):
					return cfg.CloudLink
				case strings.HasPrefix(addr, "edge"):
					return cfg.EdgeLink
				default:
					return cfg.DeviceLink
				}
			},
		}
	}
	topo := Topology{EdgeReplicas: cfg.EdgeReplicas, CloudReplicas: cfg.CloudReplicas, Edge: cfg.Edge}
	sim, err := NewReplicatedSim(m, ds, cfg.Gateway, topo, simTr, cfg.Logger)
	if err != nil {
		return nil, err
	}
	e := newEngine(sim.Gateway, cfg)
	e.sim = sim
	e.tr = simTr
	e.deviceAddrs = sim.DeviceAddrs()
	e.upstreamAddrs = sim.UpstreamAddrs()
	base := cfg.ModelVersion
	if base == 0 {
		base = 1
	}
	e.reg = newModelRegistry(m, base)
	if base != 1 {
		sim.setModelVersion(base)
	}
	n := ds.Len()
	if n > canarySamples {
		n = canarySamples
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	e.canary = ds.Subset(idx)
	return e, nil
}

// AttachEngine connects a serving engine to already-running nodes (e.g.
// over TCP): the device nodes plus the replicas of the gateway's
// upstream tier — edge nodes (cmd/ddnn-edge) for models built with
// UseEdge, cloud nodes otherwise. Sessions load-balance across the
// upstream replicas. The context bounds connection setup.
func AttachEngine(ctx context.Context, m *core.Model, cfg EngineConfig, tr transport.Transport, deviceAddrs []string, upstreamAddrs []string) (*Engine, error) {
	gw, err := NewGateway(ctx, m, cfg.Gateway, tr, deviceAddrs, upstreamAddrs, cfg.Logger)
	if err != nil {
		return nil, err
	}
	e := newEngine(gw, cfg)
	e.tr = tr
	e.deviceAddrs = append([]string(nil), deviceAddrs...)
	e.upstreamAddrs = append([]string(nil), upstreamAddrs...)
	base := cfg.ModelVersion
	if base == 0 {
		base = 1
	}
	e.reg = newModelRegistry(m, base)
	gw.reg = newModelRegistry(m, base)
	return e, nil
}

func newEngine(gw *Gateway, cfg EngineConfig) *Engine {
	if cfg.Workers > 0 {
		tensor.SetMaxWorkers(cfg.Workers)
	}
	maxC := cfg.MaxConcurrency
	if maxC <= 0 {
		maxC = DefaultMaxConcurrency
	}
	e := &Engine{gw: gw, sem: make(chan struct{}, maxC)}
	if cfg.Batch.enabled() {
		e.collector = newBatchCollector(e, cfg.Batch)
	}
	return e
}

// beginSession registers a session with the engine's lifecycle tracking.
// It must be paired with endSession; it fails once Close has begun.
func (e *Engine) beginSession() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.wg.Add(1)
	return nil
}

func (e *Engine) endSession() { e.wg.Done() }

// Classify runs one inference session, queueing on the engine's
// concurrency semaphore first. The context governs both the queue wait and
// every stage of the session. With micro-batching enabled the call
// instead joins the collector's current batch and shares one
// multi-sample session with other concurrent callers.
func (e *Engine) Classify(ctx context.Context, sampleID uint64) (*Result, error) {
	return e.ClassifyShed(ctx, sampleID, ShedNone)
}

// ClassifyShed is Classify over the exit pipeline tightened for a shed
// level: an overloaded front door degrades answer quality (a cheaper
// exit) instead of availability. Requests at different shed levels never
// share a micro-batch, so a coalesced session's single pipeline stays
// per-request accurate.
func (e *Engine) ClassifyShed(ctx context.Context, sampleID uint64, level ShedLevel) (*Result, error) {
	return e.ClassifyTenantShed(ctx, sampleID, "", level)
}

// ClassifyTenantShed is ClassifyShed under a tenant's exit-threshold
// pipeline: the tenant (resolved at admission from the client identity)
// picks the thresholds, the shed level tightens them. Requests for
// different tenants never share a micro-batch. Unknown tenants — and
// the empty tenant — run the engine's default pipeline.
func (e *Engine) ClassifyTenantShed(ctx context.Context, sampleID uint64, tenant string, level ShedLevel) (*Result, error) {
	if e.collector != nil {
		return e.collector.classify(ctx, sampleID, tenant, level)
	}
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctxErr(ctx.Err())
	}
	defer func() { <-e.sem }()
	if err := e.beginSession(); err != nil {
		return nil, err
	}
	defer e.endSession()
	return e.gw.ClassifyTenantShed(ctx, sampleID, tenant, level)
}

// runBatch runs one multi-sample gateway session under the engine's
// semaphore and lifecycle tracking.
func (e *Engine) runBatch(ctx context.Context, sampleIDs []uint64, tenant string, level ShedLevel) ([]*Result, error) {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctxErr(ctx.Err())
	}
	defer func() { <-e.sem }()
	if err := e.beginSession(); err != nil {
		return nil, err
	}
	defer e.endSession()
	return e.gw.ClassifyBatchTenantShed(ctx, sampleIDs, tenant, level)
}

// ClassifyBatch classifies the samples and returns results in input
// order. With micro-batching enabled the IDs are chunked into
// Batch.MaxBatch-sized multi-sample sessions that run concurrently
// (bounded by MaxConcurrency); otherwise each sample runs as its own
// session. The first session error cancels the remaining sessions and is
// returned; results for sessions that completed before the failure are
// still filled in (nil entries mark samples that did not complete).
func (e *Engine) ClassifyBatch(ctx context.Context, sampleIDs []uint64) ([]*Result, error) {
	return e.ClassifyBatchShed(ctx, sampleIDs, ShedNone)
}

// ClassifyBatchShed is ClassifyBatch over the exit pipeline tightened
// for a shed level; see ClassifyShed.
func (e *Engine) ClassifyBatchShed(ctx context.Context, sampleIDs []uint64, level ShedLevel) ([]*Result, error) {
	return e.ClassifyBatchTenantShed(ctx, sampleIDs, "", level)
}

// ClassifyBatchTenantShed is ClassifyBatch under a tenant's
// exit-threshold pipeline tightened for a shed level; see
// ClassifyTenantShed.
func (e *Engine) ClassifyBatchTenantShed(ctx context.Context, sampleIDs []uint64, tenant string, level ShedLevel) ([]*Result, error) {
	results := make([]*Result, len(sampleIDs))
	if len(sampleIDs) == 0 {
		return results, nil
	}
	if e.collector != nil {
		return e.classifyChunked(ctx, sampleIDs, results, tenant, level)
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// One worker per semaphore slot, not per sample: huge batches must
	// not allocate a goroutine per ID just to park on the semaphore.
	workers := cap(e.sem)
	if workers > len(sampleIDs) {
		workers = len(sampleIDs)
	}
	indices := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				res, err := e.ClassifyTenantShed(bctx, sampleIDs[i], tenant, level)
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("sample %d: %w", sampleIDs[i], err)
						cancel()
					})
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range sampleIDs {
		indices <- i
	}
	close(indices)
	wg.Wait()
	if firstErr != nil {
		return results, firstErr
	}
	return results, nil
}

// classifyChunked splits the IDs into MaxBatch-sized chunks, each a
// single multi-sample session, and runs the chunks concurrently.
func (e *Engine) classifyChunked(ctx context.Context, sampleIDs []uint64, results []*Result, tenant string, level ShedLevel) ([]*Result, error) {
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	size := e.collector.maxBatch
	type chunk struct{ lo, hi int }
	chunks := make(chan chunk)
	workers := cap(e.sem)
	if max := (len(sampleIDs) + size - 1) / size; workers > max {
		workers = max
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range chunks {
				res, err := e.runBatch(bctx, sampleIDs[c.lo:c.hi], tenant, level)
				copy(results[c.lo:c.hi], res)
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
				}
			}
		}()
	}
	for lo := 0; lo < len(sampleIDs); lo += size {
		hi := lo + size
		if hi > len(sampleIDs) {
			hi = len(sampleIDs)
		}
		chunks <- chunk{lo, hi}
	}
	close(chunks)
	wg.Wait()
	return results, firstErr
}

// Gateway exposes the underlying gateway for stats (Meter, WireBytesUp,
// DownDevices).
func (e *Engine) Gateway() *Gateway { return e.gw }

// Devices returns the in-process device nodes, or nil for an attached
// engine. Simulations use it to inject failures.
func (e *Engine) Devices() []*Device {
	if e.sim == nil {
		return nil
	}
	return e.sim.Devices
}

// Edge returns the first in-process edge replica, or nil for two-tier
// models and attached engines. Simulations use it to inject failures and
// read the edge→cloud hop's communication meter.
func (e *Engine) Edge() *Edge {
	if e.sim == nil {
		return nil
	}
	return e.sim.Edge()
}

// Edges returns the in-process edge replicas, or nil for two-tier models
// and attached engines. Simulations use them to inject replica failures.
func (e *Engine) Edges() []*Edge {
	if e.sim == nil {
		return nil
	}
	return e.sim.Edges
}

// Clouds returns the in-process cloud replicas, or nil for attached
// engines. Simulations use them to inject replica failures.
func (e *Engine) Clouds() []*Cloud {
	if e.sim == nil {
		return nil
	}
	return e.sim.Clouds
}

// EdgeReplica returns in-process edge replica i through the Sim's
// restart-safe accessor, or nil for attached engines; see
// Sim.EdgeReplica.
func (e *Engine) EdgeReplica(i int) *Edge {
	if e.sim == nil {
		return nil
	}
	return e.sim.EdgeReplica(i)
}

// CloudReplica returns in-process cloud replica i through the Sim's
// restart-safe accessor, or nil for attached engines; see
// Sim.CloudReplica.
func (e *Engine) CloudReplica(i int) *Cloud {
	if e.sim == nil {
		return nil
	}
	return e.sim.CloudReplica(i)
}

// RestartEdgeReplica hard-restarts in-process edge replica i; see
// Sim.RestartEdge. Attached engines cannot restart their remote nodes.
func (e *Engine) RestartEdgeReplica(i int) error {
	if e.sim == nil {
		return fmt.Errorf("cluster: attached engine cannot restart replicas")
	}
	return e.sim.RestartEdge(i)
}

// RestartCloudReplica hard-restarts in-process cloud replica i; see
// Sim.RestartCloud.
func (e *Engine) RestartCloudReplica(i int) error {
	if e.sim == nil {
		return fmt.Errorf("cluster: attached engine cannot restart replicas")
	}
	return e.sim.RestartCloud(i)
}

// AdmitDevice (re-)admits the device in slot into the live topology by
// dialing its known address — the one the engine was built with — and
// returns the resulting config version; see Gateway.AdmitDevice. Use
// AdmitDeviceAddr when the device moved to a new address.
func (e *Engine) AdmitDevice(ctx context.Context, slot int) (uint64, error) {
	if e.tr == nil || slot < 0 || slot >= len(e.deviceAddrs) {
		return 0, fmt.Errorf("cluster: admit device: engine has no address for slot %d: %w", slot, ErrDeviceSlotMismatch)
	}
	return e.gw.AdmitDevice(ctx, slot, e.deviceAddrs[slot])
}

// AdmitDeviceAddr admits a device at an explicit address into slot; see
// Gateway.AdmitDevice.
func (e *Engine) AdmitDeviceAddr(ctx context.Context, slot int, addr string) (uint64, error) {
	if e.tr == nil {
		return 0, fmt.Errorf("cluster: engine has no transport to dial devices")
	}
	return e.gw.AdmitDevice(ctx, slot, addr)
}

// RemoveDevice deregisters the device in slot from the live topology
// and returns the resulting config version; see Gateway.RemoveDevice.
func (e *Engine) RemoveDevice(slot int) (uint64, error) {
	return e.gw.RemoveDevice(slot)
}

// SetTenant installs or updates a tenant's exit-threshold config; see
// Gateway.SetTenant.
func (e *Engine) SetTenant(name string, tc TenantConfig) (uint64, error) {
	return e.gw.SetTenant(name, tc)
}

// RemoveTenant deletes a tenant's config; see Gateway.RemoveTenant.
func (e *Engine) RemoveTenant(name string) uint64 {
	return e.gw.RemoveTenant(name)
}

// ServeRegistration starts the gateway's registration plane on addr over
// the engine's transport, so devices can join, leave and re-register
// mid-run; see Gateway.ServeRegistration.
func (e *Engine) ServeRegistration(addr string) error {
	if e.tr == nil {
		return fmt.Errorf("cluster: engine has no transport to serve registration")
	}
	return e.gw.ServeRegistration(e.tr, addr)
}

// ConfigVersion returns the current topology config version; see
// Gateway.ConfigVersion.
func (e *Engine) ConfigVersion() uint64 { return e.gw.ConfigVersion() }

// Topology returns a snapshot of the versioned runtime topology; see
// Gateway.Topology.
func (e *Engine) Topology() TopologyConfig { return e.gw.Topology() }

// StartHealthMonitor begins heartbeat probing of the engine's devices
// and every upstream replica over its transport; see
// Gateway.StartHealthMonitor.
func (e *Engine) StartHealthMonitor(ctx context.Context, interval time.Duration, misses int) (*HealthMonitor, error) {
	if e.tr == nil || len(e.deviceAddrs) == 0 {
		return nil, fmt.Errorf("cluster: engine has no device addresses to probe")
	}
	return e.gw.StartHealthMonitor(ctx, e.tr, e.deviceAddrs, e.upstreamAddrs, interval, misses)
}

// Close drains in-flight sessions and tears the engine (and, for
// in-process engines, the whole cluster) down. Samples already queued in
// the micro-batch collector are flushed and complete normally; sessions
// that have not started by then fail with ErrClosed.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closing {
		e.mu.Unlock()
		return nil
	}
	e.closing = true
	e.mu.Unlock()
	if e.collector != nil {
		// Flush pending callers into a final batch session (registered
		// with the WaitGroup before stop returns) so they get results,
		// not ErrClosed.
		e.collector.stop()
	}
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.wg.Wait()
	if e.sim != nil {
		return e.sim.Close()
	}
	return e.gw.Close()
}
