package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ddnn/ddnn-go/internal/branchy"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// membershipCluster starts one device node per model slot plus a cloud
// over the transport and returns the device addresses (the gateway is
// the caller's to build, so tests can construct partial sets).
func membershipCluster(t *testing.T, tr transport.Transport, prefix string) (addrs []string, cloudAddr string) {
	t.Helper()
	model, test := fixture(t)
	addrs = make([]string, model.Cfg.Devices)
	for d := 0; d < model.Cfg.Devices; d++ {
		dev := NewDevice(model, d, DatasetFeed(test, d), quietLogger())
		addrs[d] = fmt.Sprintf("%s-device-%d", prefix, d)
		if err := dev.Serve(tr, addrs[d]); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dev.Close() })
	}
	cloud := NewCloud(model, quietLogger())
	cloudAddr = prefix + "-cloud"
	if err := cloud.Serve(tr, cloudAddr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cloud.Close() })
	return addrs, cloudAddr
}

// maskKey renders a presence mask as a cache key.
func maskKey(present []bool) string {
	b := make([]byte, len(present))
	for i, p := range present {
		if p {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// maskedReference evaluates the staged core reference under one presence
// mask, cached per mask because Evaluate runs the whole test set.
type maskedReference struct {
	mu    sync.Mutex
	model *core.Model
	test  *dataset.Dataset
	refs  map[string]*core.EvalResult
}

func (r *maskedReference) get(present []bool) *core.EvalResult {
	key := maskKey(present)
	r.mu.Lock()
	defer r.mu.Unlock()
	if ref, ok := r.refs[key]; ok {
		return ref
	}
	ref := r.model.Evaluate(r.test, present, 32)
	r.refs[key] = ref
	return ref
}

func TestGatewayRejectsTooManyDeviceAddrs(t *testing.T) {
	model, _ := fixture(t)
	tr := transport.NewMem()
	addrs := make([]string, model.Cfg.Devices+1)
	_, err := NewGateway(context.Background(), model, DefaultGatewayConfig(), tr, addrs, []string{"nope"}, quietLogger())
	if !errors.Is(err, ErrDeviceSlotMismatch) {
		t.Fatalf("err = %v, want ErrDeviceSlotMismatch", err)
	}
}

// TestPartialDeviceSetServesAndAdmits constructs a gateway with one slot
// deliberately absent, checks that classification degrades to the
// present devices with staged parity under the observed mask, then
// admits and removes the missing device at runtime, asserting version
// bumps and membership changes take effect for new sessions.
func TestPartialDeviceSetServesAndAdmits(t *testing.T) {
	model, test := fixture(t)
	tr := transport.NewMem()
	addrs, cloudAddr := membershipCluster(t, tr, "partial")

	absent := model.Cfg.Devices - 1
	partial := append([]string(nil), addrs...)
	partial[absent] = "" // explicitly absent slot
	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = 1 // local exits: the observed mask fully determines the verdict
	gw, err := NewGateway(context.Background(), model, gcfg, tr, partial, []string{cloudAddr}, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	if v := gw.ConfigVersion(); v != 1 {
		t.Errorf("fresh gateway ConfigVersion = %d, want 1", v)
	}
	topo := gw.Topology()
	if topo.Present[absent] {
		t.Errorf("slot %d present at construction, want absent", absent)
	}

	wantMask := make([]bool, model.Cfg.Devices)
	for d := range wantMask {
		wantMask[d] = d != absent
	}
	ref := &maskedReference{model: model, test: test, refs: make(map[string]*core.EvalResult)}
	pol := branchy.NewPolicy(1, 1)
	for id := 0; id < 8; id++ {
		res, err := gw.Classify(context.Background(), uint64(id))
		if err != nil {
			t.Fatalf("sample %d: %v", id, err)
		}
		if res.Present[absent] {
			t.Fatalf("sample %d: absent slot %d contributed", id, absent)
		}
		if res.ConfigVersion != 1 {
			t.Errorf("sample %d: ConfigVersion = %d, want 1", id, res.ConfigVersion)
		}
		wantExit, wantClass := stagedExpectation(ref.get(res.Present), pol, id)
		if res.Exit != wantExit || res.Class != wantClass {
			t.Errorf("sample %d: got %v/%d, staged reference says %v/%d under mask %s",
				id, res.Exit, res.Class, wantExit, wantClass, maskKey(res.Present))
		}
	}

	// Admit the missing device: the next session must include it and run
	// under the bumped version, with parity under the full mask.
	v, err := gw.AdmitDevice(context.Background(), absent, addrs[absent])
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("AdmitDevice version = %d, want 2", v)
	}
	res, err := gw.Classify(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Present[absent] {
		t.Error("admitted device did not contribute")
	}
	if res.ConfigVersion != 2 {
		t.Errorf("post-admission ConfigVersion = %d, want 2", res.ConfigVersion)
	}
	wantExit, wantClass := stagedExpectation(ref.get(res.Present), pol, 0)
	if res.Exit != wantExit || res.Class != wantClass {
		t.Errorf("post-admission: got %v/%d, want %v/%d", res.Exit, res.Class, wantExit, wantClass)
	}

	// Remove it again: membership shrinks, version bumps.
	v, err = gw.RemoveDevice(absent)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Errorf("RemoveDevice version = %d, want 3", v)
	}
	res, err = gw.Classify(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Present[absent] {
		t.Error("removed device still contributed")
	}
	if res.ConfigVersion != 3 {
		t.Errorf("post-removal ConfigVersion = %d, want 3", res.ConfigVersion)
	}

	// Slot bounds are typed errors.
	if _, err := gw.AdmitDevice(context.Background(), model.Cfg.Devices, "x"); !errors.Is(err, ErrDeviceSlotMismatch) {
		t.Errorf("out-of-range admit err = %v, want ErrDeviceSlotMismatch", err)
	}
	if _, err := gw.RemoveDevice(-1); !errors.Is(err, ErrDeviceSlotMismatch) {
		t.Errorf("out-of-range remove err = %v, want ErrDeviceSlotMismatch", err)
	}
}

// TestRegistrationHandshake drives the wire-level registration plane:
// devices join via DeviceHello, leave via DeviceGoodbye, and re-register
// — all against a live gateway, without restarts.
func TestRegistrationHandshake(t *testing.T) {
	model, _ := fixture(t)
	tr := transport.NewMem()
	addrs, cloudAddr := membershipCluster(t, tr, "reg")

	// Start with only device 0 present.
	partial := make([]string, model.Cfg.Devices)
	partial[0] = addrs[0]
	gw, err := NewGateway(context.Background(), model, DefaultGatewayConfig(), tr, partial, []string{cloudAddr}, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	if err := gw.ServeRegistration(tr, "reg-plane"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Join every remaining slot through the handshake.
	for d := 1; d < model.Cfg.Devices; d++ {
		welcome, err := Register(ctx, tr, "reg-plane", &wire.DeviceHello{
			NodeID: fmt.Sprintf("node-%d", d),
			Slot:   uint16(d),
			Addr:   addrs[d],
		})
		if err != nil {
			t.Fatalf("register slot %d: %v", d, err)
		}
		if int(welcome.Slot) != d || int(welcome.Devices) != model.Cfg.Devices {
			t.Errorf("welcome = %+v", welcome)
		}
		// Construction is version 1; each join bumps by one.
		if welcome.ConfigVersion != uint64(d+1) {
			t.Errorf("slot %d welcome version = %d, want %d", d, welcome.ConfigVersion, d+1)
		}
	}
	for d, p := range gw.PresentSlots() {
		if !p {
			t.Errorf("slot %d absent after registration", d)
		}
	}

	// Classification now uses the full membership.
	res, err := gw.Classify(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	for d, p := range res.Present {
		if !p {
			t.Errorf("slot %d missing from session after joining", d)
		}
	}

	// Leave and re-register slot 2.
	before := gw.ConfigVersion()
	welcome, err := Deregister(ctx, tr, "reg-plane", &wire.DeviceGoodbye{NodeID: "node-2", Slot: 2, Reason: "draining"})
	if err != nil {
		t.Fatal(err)
	}
	if welcome.ConfigVersion != before+1 {
		t.Errorf("goodbye version = %d, want %d", welcome.ConfigVersion, before+1)
	}
	if gw.PresentSlots()[2] {
		t.Error("slot 2 still present after goodbye")
	}
	if _, err := Register(ctx, tr, "reg-plane", &wire.DeviceHello{NodeID: "node-2b", Slot: 2, Addr: addrs[2]}); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if !gw.PresentSlots()[2] {
		t.Error("slot 2 absent after re-registration")
	}

	// A hello naming an impossible slot is refused with a wire error.
	if _, err := Register(ctx, tr, "reg-plane", &wire.DeviceHello{NodeID: "bad", Slot: uint16(model.Cfg.Devices), Addr: addrs[0]}); err == nil {
		t.Error("out-of-range hello accepted")
	}
}

// TestTenantPipelinesDifferentExitDistributions serves two tenants with
// opposite thresholds from one running cluster and checks that each
// tenant's traffic follows its own exit policy — with staged parity per
// tenant — while the default pipeline stays untouched.
func TestTenantPipelinesDifferentExitDistributions(t *testing.T) {
	model, test := fixture(t)
	eng, err := NewEngine(model, test, EngineConfig{
		Gateway:        DefaultGatewayConfig(),
		MaxConcurrency: 4,
		Logger:         quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if _, err := eng.SetTenant("lenient", TenantConfig{LocalThreshold: 1, EdgeThreshold: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SetTenant("strict", TenantConfig{LocalThreshold: -1, EdgeThreshold: -1}); err != nil {
		t.Fatal(err)
	}

	const samples = 20
	exits := map[string]map[wire.ExitPoint]int{}
	for _, tenant := range []string{"lenient", "strict"} {
		exits[tenant] = map[wire.ExitPoint]int{}
		for id := 0; id < samples; id++ {
			res, err := eng.ClassifyTenantShed(context.Background(), uint64(id), tenant, ShedNone)
			if err != nil {
				t.Fatalf("tenant %s sample %d: %v", tenant, id, err)
			}
			exits[tenant][res.Exit]++
		}
	}
	if exits["lenient"][wire.ExitLocal] != samples {
		t.Errorf("lenient exits = %v, want all local", exits["lenient"])
	}
	if exits["strict"][wire.ExitCloud] != samples {
		t.Errorf("strict exits = %v, want all cloud", exits["strict"])
	}

	// Tenant parity: each tenant's verdicts must match the staged
	// reference at that tenant's thresholds.
	ref := model.Evaluate(test, nil, 32)
	for _, tc := range []struct {
		tenant string
		pol    branchy.Policy
	}{
		{"lenient", branchy.NewPolicy(1, 1)},
		{"strict", branchy.NewPolicy(-1, 1)},
	} {
		for id := 0; id < samples; id++ {
			res, err := eng.ClassifyTenantShed(context.Background(), uint64(id), tc.tenant, ShedNone)
			if err != nil {
				t.Fatal(err)
			}
			wantExit, wantClass := stagedExpectation(ref, tc.pol, id)
			if res.Exit != wantExit || res.Class != wantClass {
				t.Errorf("tenant %s sample %d: got %v/%d, want %v/%d", tc.tenant, id, res.Exit, res.Class, wantExit, wantClass)
			}
		}
	}

	// An unknown tenant falls back to the default pipeline.
	defRes, err := eng.ClassifyTenantShed(context.Background(), 0, "nobody", ShedNone)
	if err != nil {
		t.Fatal(err)
	}
	defPol := branchy.NewPolicy(DefaultGatewayConfig().Threshold, 1)
	wantExit, wantClass := stagedExpectation(ref, defPol, 0)
	if defRes.Exit != wantExit || defRes.Class != wantClass {
		t.Errorf("unknown tenant: got %v/%d, want default-pipeline %v/%d", defRes.Exit, defRes.Class, wantExit, wantClass)
	}

	// Removing a tenant reverts its traffic to the default pipeline.
	eng.RemoveTenant("strict")
	res, err := eng.ClassifyTenantShed(context.Background(), 0, "strict", ShedNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != wantExit || res.Class != wantClass {
		t.Errorf("removed tenant: got %v/%d, want default-pipeline %v/%d", res.Exit, res.Class, wantExit, wantClass)
	}

	// Invalid tenant thresholds are rejected at admission time, not at
	// classify time (BuildPipeline always yields a valid shape, so drive
	// Validate through a gateway-level SetTenant with a broken model
	// config is not possible; assert version bump bookkeeping instead).
	v1 := eng.ConfigVersion()
	v2, err := eng.SetTenant("lenient", TenantConfig{LocalThreshold: 0.5, EdgeThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1+1 {
		t.Errorf("SetTenant version %d after %d, want +1", v2, v1)
	}
}

// TestMembershipChurnUnderConcurrentTraffic joins, removes and
// re-registers devices while concurrent per-sample and batch sessions
// run. It asserts zero session errors, staged parity under every
// observed presence mask, and monotonically sane config versions — the
// bit-identity contract of the versioned topology. Run with -race.
func TestMembershipChurnUnderConcurrentTraffic(t *testing.T) {
	model, test := fixture(t)
	tr := transport.NewMem()
	addrs, cloudAddr := membershipCluster(t, tr, "churn")

	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = 1   // local exits: each verdict is fully determined by its observed mask
	gcfg.MaxFailures = 0 // churn must not poison slots via sticky marking
	gw, err := NewGateway(context.Background(), model, gcfg, tr, addrs, []string{cloudAddr}, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// Churn slots 1 and 2; the rest stay present so sessions always have
	// summaries.
	churnSlots := []int{1, 2}
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			slot := churnSlots[i%len(churnSlots)]
			if _, err := gw.RemoveDevice(slot); err != nil {
				t.Errorf("churn remove slot %d: %v", slot, err)
				return
			}
			time.Sleep(time.Millisecond)
			if _, err := gw.AdmitDevice(context.Background(), slot, addrs[slot]); err != nil {
				t.Errorf("churn admit slot %d: %v", slot, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	ref := &maskedReference{model: model, test: test, refs: make(map[string]*core.EvalResult)}
	pol := branchy.NewPolicy(1, 1)
	check := func(res *Result, id int) error {
		for _, d := range []int{0, 3} {
			if d < len(res.Present) && !res.Present[d] {
				return fmt.Errorf("sample %d: stable slot %d missing", id, d)
			}
		}
		if res.ConfigVersion < 1 {
			return fmt.Errorf("sample %d: ConfigVersion = %d", id, res.ConfigVersion)
		}
		wantExit, wantClass := stagedExpectation(ref.get(res.Present), pol, id)
		if res.Exit != wantExit || res.Class != wantClass {
			return fmt.Errorf("sample %d: got %v/%d, staged reference says %v/%d under mask %s",
				id, res.Exit, res.Class, wantExit, wantClass, maskKey(res.Present))
		}
		return nil
	}

	const (
		workers    = 4
		iterations = 25
		samples    = 10
	)
	errs := make(chan error, workers*2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				id := (w + i) % samples
				res, err := gw.Classify(context.Background(), uint64(id))
				if err != nil {
					errs <- fmt.Errorf("worker %d: classify sample %d: %w", w, id, err)
					return
				}
				if err := check(res, id); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Batch sessions churn alongside the per-sample ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ids := []uint64{0, 1, 2, 3}
		for i := 0; i < iterations; i++ {
			results, err := gw.ClassifyBatch(context.Background(), ids)
			if err != nil {
				errs <- fmt.Errorf("batch iteration %d: %w", i, err)
				return
			}
			for j, res := range results {
				if err := check(res, int(ids[j])); err != nil {
					errs <- fmt.Errorf("batch iteration %d: %w", i, err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	churnWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// No wedged state: the gateway still serves, with the final
	// membership (all slots re-admitted) and the final config version.
	finalV := gw.ConfigVersion()
	res, err := gw.Classify(context.Background(), 0)
	if err != nil {
		t.Fatalf("post-churn classify: %v", err)
	}
	if res.ConfigVersion != finalV {
		t.Errorf("post-churn ConfigVersion = %d, want %d", res.ConfigVersion, finalV)
	}
	for d, p := range res.Present {
		if !p {
			t.Errorf("post-churn slot %d missing", d)
		}
	}
}

// TestChurnWithEscalation interleaves membership changes with sessions
// that escalate to the cloud: between mutations every verdict must stay
// bit-identical to the staged reference under the mask the session
// observed, across config versions.
func TestChurnWithEscalation(t *testing.T) {
	model, test := fixture(t)
	tr := transport.NewMem()
	addrs, cloudAddr := membershipCluster(t, tr, "churnesc")

	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = 0.5 // a mix of local exits and cloud escalations
	gw, err := NewGateway(context.Background(), model, gcfg, tr, addrs, []string{cloudAddr}, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	ref := &maskedReference{model: model, test: test, refs: make(map[string]*core.EvalResult)}
	pol := branchy.NewPolicy(0.5, 1)
	verify := func(id int) {
		t.Helper()
		res, err := gw.Classify(context.Background(), uint64(id))
		if err != nil {
			t.Fatalf("sample %d: %v", id, err)
		}
		wantExit, wantClass := stagedExpectation(ref.get(res.Present), pol, id)
		if res.Exit != wantExit || res.Class != wantClass {
			t.Errorf("sample %d: got %v/%d, want %v/%d under mask %s",
				id, res.Exit, res.Class, wantExit, wantClass, maskKey(res.Present))
		}
	}

	for round := 0; round < 3; round++ {
		slot := 1 + round%2
		if _, err := gw.RemoveDevice(slot); err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 6; id++ {
			verify(id)
		}
		if _, err := gw.AdmitDevice(context.Background(), slot, addrs[slot]); err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 6; id++ {
			verify(id)
		}
	}
}
