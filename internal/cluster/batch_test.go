package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/transport"
)

// TestBatchCollectorMatchesSerial hammers a batching engine with
// concurrent Classify calls and checks every verdict against the
// per-sample baseline: coalescing sessions must never change results.
func TestBatchCollectorMatchesSerial(t *testing.T) {
	model, test := fixture(t)
	base, err := NewEngine(model, test, EngineConfig{
		Gateway: DefaultGatewayConfig(),
		Logger:  quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	want := make([]*Result, test.Len())
	for i := range want {
		res, err := base.Classify(context.Background(), uint64(i))
		if err != nil {
			t.Fatalf("baseline sample %d: %v", i, err)
		}
		want[i] = res
	}

	eng, err := NewEngine(model, test, EngineConfig{
		Gateway:        DefaultGatewayConfig(),
		MaxConcurrency: 4,
		Batch:          BatchConfig{MaxBatch: 8, MaxLinger: 3 * time.Millisecond},
		Logger:         quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers*test.Len())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < test.Len(); i++ {
				id := (i + w) % test.Len()
				res, err := eng.Classify(context.Background(), uint64(id))
				if err != nil {
					errs <- fmt.Errorf("worker %d sample %d: %w", w, id, err)
					return
				}
				if res.Class != want[id].Class || res.Exit != want[id].Exit {
					errs <- fmt.Errorf("worker %d sample %d: got class %d exit %v, want %d %v",
						w, id, res.Class, res.Exit, want[id].Class, want[id].Exit)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBatchCollectorLingerFlushesPartialBatch checks that a lone Classify
// call on an idle batching engine is answered after at most roughly the
// linger bound instead of waiting forever for the batch to fill.
func TestBatchCollectorLingerFlushesPartialBatch(t *testing.T) {
	model, test := fixture(t)
	eng, err := NewEngine(model, test, EngineConfig{
		Gateway: DefaultGatewayConfig(),
		Batch:   BatchConfig{MaxBatch: 64, MaxLinger: 5 * time.Millisecond},
		Logger:  quietLogger(),
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := eng.Classify(ctx, 0)
	if err != nil {
		t.Fatalf("lone batched Classify: %v", err)
	}
	if res.SampleID != 0 {
		t.Errorf("got sample %d, want 0", res.SampleID)
	}
}

// TestEngineClassifyCloseRace hammers Classify against Close (run with
// -race in CI): Close must never return while a session is still
// registering — the documented sync.WaitGroup Add-vs-Wait misuse of the
// old atomic-flag handshake — and late calls must fail with ErrClosed,
// not crash or hang.
func TestEngineClassifyCloseRace(t *testing.T) {
	model, test := fixture(t)
	for _, batch := range []int{0, 4} {
		for iter := 0; iter < 6; iter++ {
			eng, err := NewEngine(model, test, EngineConfig{
				Gateway:        DefaultGatewayConfig(),
				MaxConcurrency: 4,
				Batch:          BatchConfig{MaxBatch: batch, MaxLinger: time.Millisecond},
				Logger:         quietLogger(),
			}, transport.NewMem())
			if err != nil {
				t.Fatal(err)
			}
			start := make(chan struct{})
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					<-start
					for i := 0; i < 8; i++ {
						_, err := eng.Classify(context.Background(), uint64((w*8+i)%test.Len()))
						if err != nil && !errors.Is(err, ErrClosed) {
							errs <- fmt.Errorf("batch %d worker %d: %w", batch, w, err)
							return
						}
						if errors.Is(err, ErrClosed) {
							return
						}
					}
				}(w)
			}
			close(start)
			// Close while the workers are mid-flight.
			if iter%2 == 0 {
				time.Sleep(time.Duration(iter) * time.Millisecond)
			}
			if err := eng.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if _, err := eng.Classify(context.Background(), 0); !errors.Is(err, ErrClosed) {
				t.Errorf("Classify after Close = %v, want ErrClosed", err)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		}
	}
}

// TestNewGatewayRejectsTooManyDevices pins the uint16 mask-overflow fix:
// a hierarchy with more devices than wire.MaxDevices must be rejected
// with the typed error instead of silently aliasing mask bits.
func TestNewGatewayRejectsTooManyDevices(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Devices = 17
	cfg.DeviceFilters = 1
	cfg.CloudFilters = 1
	model, err := core.NewModel(cfg)
	if err != nil {
		t.Fatalf("building 17-device model: %v", err)
	}
	addrs := make([]string, cfg.Devices)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("overflow-device-%d", i)
	}
	_, err = NewGateway(context.Background(), model, DefaultGatewayConfig(), transport.NewMem(), addrs, []string{"overflow-cloud"}, quietLogger())
	if !errors.Is(err, ErrTooManyDevices) {
		t.Fatalf("NewGateway with 17 devices: err = %v, want ErrTooManyDevices", err)
	}
}

// TestZeroTimeoutConfigDoesNotExpireInstantly pins the link.wait fix: a
// zero-value GatewayConfig (no explicit timeouts) must classify normally
// — previously time.NewTimer(0) made every round trip expire at once.
func TestZeroTimeoutConfigDoesNotExpireInstantly(t *testing.T) {
	model, test := fixture(t)
	cfg := GatewayConfig{Threshold: -1} // force escalation; every timeout field zero
	sim, err := NewSim(model, test, cfg, transport.NewMem(), quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	res, err := sim.Gateway.Classify(context.Background(), 0)
	if err != nil {
		t.Fatalf("zero-timeout config: %v", err)
	}
	if res.Exit == 0 {
		t.Error("no exit recorded")
	}
}

// TestWireBytesBothDirections checks that the gateway reports traffic in
// both directions and that they are distinct counters: uplink bytes
// (summaries, uploads) dominate a forced-escalation session, while the
// downlink carries the much smaller request frames.
func TestWireBytesBothDirections(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.Threshold = -1 // force feature uploads so the uplink dwarfs the downlink
	sim := newSim(t, cfg)
	if _, err := sim.Gateway.Classify(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	up, down := sim.Gateway.WireBytesUp(), sim.Gateway.WireBytesDown()
	if up <= 0 || down <= 0 {
		t.Fatalf("WireBytesUp=%d WireBytesDown=%d, want both positive", up, down)
	}
	if up <= down {
		t.Errorf("uplink (%d B) should exceed downlink (%d B) when features are uploaded", up, down)
	}
}
