// Package cluster is the distributed runtime that deploys a trained DDNN
// over real (or simulated) network links: device nodes run their DNN
// section next to the sensor, a gateway performs local aggregation and the
// entropy-thresholded exit decision, an optional edge node runs the middle
// tier of a three-tier hierarchy (Fig. 2 configs d/e), and a cloud node
// runs the upper NN layers for samples that miss every earlier exit
// (§III-D inference procedure). Exit stages form a first-class Pipeline:
// the gateway evaluates the first stage locally and relays the remaining
// thresholds up the chain — local → edge → cloud — with each tier
// answering the samples it is confident about and escalating only the
// hard ones' feature maps. The runtime degrades gracefully when devices
// fail (§IV-G): the gateway masks out unresponsive devices and
// aggregation proceeds with the rest; when the cloud is unreachable the
// edge answers escalated samples with its own exit as a best effort.
//
// Since the Engine redesign the runtime is fully concurrent: every
// inference session carries a wire-level session ID, connections multiplex
// frames from many sessions, and nodes process requests in parallel —
// model forward passes are read-only on a frozen model (core.Model.Freeze)
// so sessions never serialize on the network weights.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// Feed supplies a device's sensor view for a sample ID as a [1, C, H, W]
// tensor. Returning an error means the device has no frame for the sample.
// Feeds must be safe for concurrent use; DatasetFeed is.
type Feed func(sampleID uint64) (*tensor.Tensor, error)

// maxRetainedFeatures bounds the per-device cache of feature maps kept
// between a capture and a possible feature request. Sessions that exit
// locally never fetch their features, so entries are evicted oldest-first
// once the cache is full.
const maxRetainedFeatures = 256

// Device is an end-device node: it owns one device section of the DDNN and
// serves capture and feature-upload requests from the gateway. Requests
// are served concurrently; the model section is shared read-only.
type Device struct {
	model  *core.Model
	reg    *modelRegistry
	index  int
	feed   Feed
	logger *slog.Logger

	failed atomic.Bool

	// pool recycles the node's forward tensors (feature maps, exit
	// vectors, conv scratch) across sessions, keeping steady-state
	// capture handling free of per-sample heap allocation.
	pool *tensor.Pool

	mu        sync.Mutex // guards features/featOrder only
	features  map[uint64]*retainedFeature
	featOrder []uint64 // insertion order for eviction

	listener net.Listener
	wg       sync.WaitGroup

	closeOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewDevice constructs a device node for device `index` of the model,
// reading frames from feed.
func NewDevice(model *core.Model, index int, feed Feed, logger *slog.Logger) *Device {
	if logger == nil {
		logger = slog.Default()
	}
	return &Device{
		model:    model,
		reg:      newModelRegistry(model, 1),
		index:    index,
		feed:     feed,
		logger:   logger.With("node", fmt.Sprintf("device-%d", index)),
		pool:     tensor.NewPool(),
		features: make(map[uint64]*retainedFeature),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Serve starts accepting gateway connections on the transport address.
// It returns once the listener is active.
func (d *Device) Serve(tr transport.Transport, addr string) error {
	l, err := tr.Listen(addr)
	if err != nil {
		return fmt.Errorf("cluster: device %d: %w", d.index, err)
	}
	d.listener = l
	d.wg.Add(1)
	go d.acceptLoop()
	return nil
}

func (d *Device) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.listener.Accept()
		if err != nil {
			return
		}
		d.connMu.Lock()
		if d.closed {
			d.connMu.Unlock()
			conn.Close()
			continue
		}
		d.conns[conn] = struct{}{}
		d.connMu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer func() {
				conn.Close()
				d.connMu.Lock()
				delete(d.conns, conn)
				d.connMu.Unlock()
			}()
			d.handle(conn)
		}()
	}
}

// Addr returns the listener's address; it is only valid after Serve.
func (d *Device) Addr() string {
	if d.listener == nil {
		return ""
	}
	return d.listener.Addr().String()
}

// SetFailed toggles simulated failure: a failed device stops answering
// requests, which the gateway observes as timeouts (§IV-G).
func (d *Device) SetFailed(failed bool) { d.failed.Store(failed) }

// Failed reports the simulated-failure state.
func (d *Device) Failed() bool { return d.failed.Load() }

// handle decodes frames and serves each request in its own goroutine, so
// one connection carries any number of concurrent sessions. Replies are
// serialized through a per-connection write lock.
func (d *Device) handle(conn net.Conn) {
	var wmu sync.Mutex
	send := func(m wire.Message) error {
		wmu.Lock()
		defer wmu.Unlock()
		_, err := wire.Encode(conn, m)
		return err
	}
	var reqs sync.WaitGroup
	defer reqs.Wait()
	for {
		msg, err := wire.Decode(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				d.logger.Debug("decode error", "err", err)
			}
			return
		}
		if d.failed.Load() {
			// A crashed device goes silent; it neither computes nor
			// replies. The gateway's timeout handles the rest.
			continue
		}
		switch m := msg.(type) {
		case *wire.CaptureRequest:
			reqs.Add(1)
			go func() {
				defer reqs.Done()
				if err := d.onCapture(send, m); err != nil {
					d.logger.Debug("capture failed", "sample", m.SampleID, "err", err)
				}
			}()
		case *wire.FeatureRequest:
			reqs.Add(1)
			go func() {
				defer reqs.Done()
				if err := d.onFeatureRequest(send, m); err != nil {
					d.logger.Debug("feature upload failed", "sample", m.SampleID, "err", err)
				}
			}()
		case *wire.CaptureBatch:
			reqs.Add(1)
			go func() {
				defer reqs.Done()
				if err := d.onCaptureBatch(send, m); err != nil {
					d.logger.Debug("batch capture failed", "session", m.Session, "err", err)
				}
			}()
		case *wire.FeatureBatchRequest:
			reqs.Add(1)
			go func() {
				defer reqs.Done()
				if err := d.onFeatureBatchRequest(send, m); err != nil {
					d.logger.Debug("batch feature upload failed", "session", m.Session, "err", err)
				}
			}()
		case *wire.Heartbeat:
			// Echo liveness probes so the gateway's failure detector can
			// distinguish a live device from a crashed one.
			if err := send(m); err != nil {
				return
			}
		default:
			_ = send(&wire.Error{Session: sessionOf(msg), Code: 400, Msg: fmt.Sprintf("unexpected %v", msg.MsgType())})
		}
	}
}

// onCapture processes the device's sensor frame through its DNN section
// and replies with the exit summary vector. The binarized feature map is
// retained under the session ID so a later FeatureRequest can upload it
// without recomputing.
func (d *Device) onCapture(send func(wire.Message) error, m *wire.CaptureRequest) error {
	model, _, err := d.reg.resolve(m.ModelVersion)
	if err != nil {
		return send(&wire.Error{Session: m.Session, Code: 426, Msg: err.Error()})
	}
	x, err := d.feed(m.SampleID)
	if err != nil {
		return send(&wire.Error{Session: m.Session, Code: 404, Msg: err.Error()})
	}
	feat, exitVec := model.DeviceForwardPooled(d.index, x, d.pool)
	d.retainFeature(m.Session, feat, nil)

	probs := make([]float32, exitVec.Dim(1))
	copy(probs, exitVec.Row(0))
	d.pool.Put(exitVec)
	return send(&wire.LocalSummary{
		Session:  m.Session,
		SampleID: m.SampleID,
		Device:   uint16(d.index),
		Probs:    probs,
	})
}

// retainedFeature caches the binarized feature maps of one capture under
// its session ID: a [N, F, H, W] tensor plus, for batched captures, the
// row index of each sample ID (nil for single-sample captures, whose
// tensor is [1, ...]).
type retainedFeature struct {
	feat *tensor.Tensor
	rows map[uint64]int
}

func (d *Device) retainFeature(session uint64, feat *tensor.Tensor, rows map[uint64]int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if prev, exists := d.features[session]; exists {
		d.pool.Put(prev.feat)
	} else {
		d.featOrder = append(d.featOrder, session)
	}
	d.features[session] = &retainedFeature{feat: feat, rows: rows}
	for len(d.featOrder) > maxRetainedFeatures {
		oldest := d.featOrder[0]
		d.featOrder = d.featOrder[1:]
		if rf, ok := d.features[oldest]; ok {
			d.pool.Put(rf.feat)
		}
		delete(d.features, oldest)
	}
}

func (d *Device) takeFeature(session uint64) (*retainedFeature, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rf, ok := d.features[session]
	if !ok {
		return nil, false
	}
	delete(d.features, session)
	for i, s := range d.featOrder {
		if s == session {
			d.featOrder = append(d.featOrder[:i], d.featOrder[i+1:]...)
			break
		}
	}
	return rf, true
}

func (d *Device) onFeatureRequest(send func(wire.Message) error, m *wire.FeatureRequest) error {
	model, _, rerr := d.reg.resolve(m.ModelVersion)
	if rerr != nil {
		return send(&wire.Error{Session: m.Session, Code: 426, Msg: rerr.Error()})
	}
	var feat *tensor.Tensor
	if rf, ok := d.takeFeature(m.Session); ok && rf.rows == nil {
		// The retained map was computed under the same session — and the
		// gateway stamps one concrete version per session — so it is
		// already the right version's feature map.
		feat = rf.feat
	} else {
		if ok {
			// Batch-retained feature under the same session tag: not
			// usable for a single-sample request, but still pool-owned.
			d.pool.Put(rf.feat)
		}
		// The cached map was evicted (or the capture never happened —
		// e.g. a second gateway attached to this device); recompute from
		// the sensor feed so eviction only costs time, not the session.
		x, err := d.feed(m.SampleID)
		if err != nil {
			return send(&wire.Error{Session: m.Session, Code: 404, Msg: err.Error()})
		}
		var exitVec *tensor.Tensor
		feat, exitVec = model.DeviceForwardPooled(d.index, x, d.pool)
		d.pool.Put(exitVec)
	}
	bits := model.PackFeature(feat)
	f, h, w := feat.Dim(1), feat.Dim(2), feat.Dim(3)
	d.pool.Put(feat)
	return send(&wire.FeatureUpload{
		Session:  m.Session,
		SampleID: m.SampleID,
		Device:   uint16(d.index),
		F:        uint16(f),
		H:        uint16(h),
		W:        uint16(w),
		Bits:     bits,
	})
}

// onCaptureBatch stacks the batch's sensor frames into one tensor and
// runs the device section once, so conv/GEMM setup amortizes across the
// whole micro-batch. Samples whose feed has no frame are marked absent in
// the reply's presence bitmask; the rest get one summary row each, and
// their feature rows are retained for a possible FeatureBatchRequest.
func (d *Device) onCaptureBatch(send func(wire.Message) error, m *wire.CaptureBatch) error {
	model, _, err := d.reg.resolve(m.ModelVersion)
	if err != nil {
		return send(&wire.Error{Session: m.Session, Code: 426, Msg: err.Error()})
	}
	n := len(m.SampleIDs)
	present := make([]bool, n)
	frames := make([]*tensor.Tensor, 0, n)
	rows := make(map[uint64]int, n)
	for i, id := range m.SampleIDs {
		x, err := d.feed(id)
		if err != nil {
			continue // absent frame (object not in view / feed error)
		}
		present[i] = true
		if _, dup := rows[id]; !dup {
			rows[id] = len(frames)
			frames = append(frames, x)
		}
	}
	classes := uint16(model.Cfg.Classes)
	if len(frames) == 0 {
		return send(&wire.SummaryBatch{
			Session: m.Session, Device: uint16(d.index), Classes: classes,
			Count: uint16(n), Present: wire.PackPresent(present),
		})
	}
	cfg := model.Cfg
	stacked := d.pool.GetDirty(len(frames), cfg.InputC, cfg.InputH, cfg.InputW)
	tensor.StackInto(stacked, frames)
	feat, exitVec := model.DeviceForwardPooled(d.index, stacked, d.pool)
	d.pool.Put(stacked)
	d.retainFeature(m.Session, feat, rows)

	probs := make([]float32, 0, n*int(classes))
	for i, id := range m.SampleIDs {
		if !present[i] {
			continue
		}
		probs = append(probs, exitVec.Row(rows[id])...)
	}
	d.pool.Put(exitVec)
	return send(&wire.SummaryBatch{
		Session: m.Session, Device: uint16(d.index), Classes: classes,
		Count: uint16(n), Present: wire.PackPresent(present), Probs: probs,
	})
}

// onFeatureBatchRequest packs the retained feature rows of the requested
// samples — the batch subset that missed the local exit — into one
// FeatureBatch frame. Evicted (or never-captured) samples are recomputed
// from the feed; a sample the feed cannot produce fails the whole fetch,
// and the gateway degrades by dropping this device from the batch.
func (d *Device) onFeatureBatchRequest(send func(wire.Message) error, m *wire.FeatureBatchRequest) error {
	model, _, rerr := d.reg.resolve(m.ModelVersion)
	if rerr != nil {
		return send(&wire.Error{Session: m.Session, Code: 426, Msg: rerr.Error()})
	}
	rf, _ := d.takeFeature(m.Session)
	if rf != nil && rf.rows == nil {
		d.pool.Put(rf.feat)
		rf = nil // single-sample capture under the same session tag
	}
	if rf != nil {
		defer d.pool.Put(rf.feat)
	}
	cfg := model.Cfg
	f, h, w := cfg.DeviceFilters, cfg.FeatureH(), cfg.FeatureW()
	bits := make([]byte, 0, len(m.SampleIDs)*((f*h*w+7)/8))
	for _, id := range m.SampleIDs {
		if rf != nil {
			if row, ok := rf.rows[id]; ok {
				bits = append(bits, model.PackFeatureSample(rf.feat, row)...)
				continue
			}
		}
		x, err := d.feed(id)
		if err != nil {
			return send(&wire.Error{Session: m.Session, Code: 404, Msg: err.Error()})
		}
		feat, exitVec := model.DeviceForwardPooled(d.index, x, d.pool)
		bits = append(bits, model.PackFeature(feat)...)
		d.pool.Put(feat)
		d.pool.Put(exitVec)
	}
	return send(&wire.FeatureBatch{
		Session: m.Session,
		Device:  uint16(d.index),
		F:       uint16(f), H: uint16(h), W: uint16(w),
		Count: uint16(len(m.SampleIDs)),
		Bits:  bits,
	})
}

// Close stops the device node, terminating any in-flight connections.
func (d *Device) Close() error {
	d.closeOnce.Do(func() {
		if d.listener != nil {
			d.listener.Close()
		}
		d.connMu.Lock()
		d.closed = true
		for conn := range d.conns {
			conn.Close()
		}
		d.connMu.Unlock()
	})
	d.wg.Wait()
	return nil
}
