// Package cluster is the distributed runtime that deploys a trained DDNN
// over real (or simulated) network links: device nodes run their DNN
// section next to the sensor, a gateway performs local aggregation and the
// entropy-thresholded exit decision, and a cloud node runs the upper NN
// layers for samples that miss the local exit (§III-D inference procedure).
// The runtime degrades gracefully when devices fail (§IV-G): the gateway
// masks out unresponsive devices and aggregation proceeds with the rest.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// Feed supplies a device's sensor view for a sample ID as a [1, C, H, W]
// tensor. Returning an error means the device has no frame for the sample.
type Feed func(sampleID uint64) (*tensor.Tensor, error)

// Device is an end-device node: it owns one device section of the DDNN and
// serves capture and feature-upload requests from the gateway.
type Device struct {
	model  *core.Model
	index  int
	feed   Feed
	logger *slog.Logger

	failed atomic.Bool

	mu       sync.Mutex // serializes model use across connections
	features map[uint64]*tensor.Tensor

	listener net.Listener
	wg       sync.WaitGroup

	closeOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewDevice constructs a device node for device `index` of the model,
// reading frames from feed.
func NewDevice(model *core.Model, index int, feed Feed, logger *slog.Logger) *Device {
	if logger == nil {
		logger = slog.Default()
	}
	return &Device{
		model:    model,
		index:    index,
		feed:     feed,
		logger:   logger.With("node", fmt.Sprintf("device-%d", index)),
		features: make(map[uint64]*tensor.Tensor),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Serve starts accepting gateway connections on the transport address.
// It returns once the listener is active.
func (d *Device) Serve(tr transport.Transport, addr string) error {
	l, err := tr.Listen(addr)
	if err != nil {
		return fmt.Errorf("cluster: device %d: %w", d.index, err)
	}
	d.listener = l
	d.wg.Add(1)
	go d.acceptLoop()
	return nil
}

func (d *Device) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.listener.Accept()
		if err != nil {
			return
		}
		d.connMu.Lock()
		if d.closed {
			d.connMu.Unlock()
			conn.Close()
			continue
		}
		d.conns[conn] = struct{}{}
		d.connMu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer func() {
				conn.Close()
				d.connMu.Lock()
				delete(d.conns, conn)
				d.connMu.Unlock()
			}()
			d.handle(conn)
		}()
	}
}

// Addr returns the listener's address; it is only valid after Serve.
func (d *Device) Addr() string {
	if d.listener == nil {
		return ""
	}
	return d.listener.Addr().String()
}

// SetFailed toggles simulated failure: a failed device stops answering
// requests, which the gateway observes as timeouts (§IV-G).
func (d *Device) SetFailed(failed bool) { d.failed.Store(failed) }

// Failed reports the simulated-failure state.
func (d *Device) Failed() bool { return d.failed.Load() }

func (d *Device) handle(conn net.Conn) {
	for {
		msg, err := wire.Decode(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				d.logger.Debug("decode error", "err", err)
			}
			return
		}
		if d.failed.Load() {
			// A crashed device goes silent; it neither computes nor
			// replies. The gateway's timeout handles the rest.
			continue
		}
		switch m := msg.(type) {
		case *wire.CaptureRequest:
			if err := d.onCapture(conn, m); err != nil {
				d.logger.Debug("capture failed", "sample", m.SampleID, "err", err)
				return
			}
		case *wire.FeatureRequest:
			if err := d.onFeatureRequest(conn, m); err != nil {
				d.logger.Debug("feature upload failed", "sample", m.SampleID, "err", err)
				return
			}
		case *wire.Heartbeat:
			// Echo liveness probes so the gateway's failure detector can
			// distinguish a live device from a crashed one.
			if _, err := wire.Encode(conn, m); err != nil {
				return
			}
		default:
			_, _ = wire.Encode(conn, &wire.Error{Code: 400, Msg: fmt.Sprintf("unexpected %v", msg.MsgType())})
		}
	}
}

// onCapture processes the device's sensor frame through its DNN section
// and replies with the exit summary vector. The binarized feature map is
// retained so a later FeatureRequest can upload it without recomputing.
func (d *Device) onCapture(conn net.Conn, m *wire.CaptureRequest) error {
	x, err := d.feed(m.SampleID)
	if err != nil {
		_, werr := wire.Encode(conn, &wire.Error{Code: 404, Msg: err.Error()})
		return werr
	}
	d.mu.Lock()
	feat, exitVec := d.model.DeviceForward(d.index, x)
	d.features[m.SampleID] = feat
	d.mu.Unlock()

	probs := make([]float32, exitVec.Dim(1))
	copy(probs, exitVec.Row(0))
	_, err = wire.Encode(conn, &wire.LocalSummary{
		SampleID: m.SampleID,
		Device:   uint16(d.index),
		Probs:    probs,
	})
	return err
}

func (d *Device) onFeatureRequest(conn net.Conn, m *wire.FeatureRequest) error {
	d.mu.Lock()
	feat, ok := d.features[m.SampleID]
	if ok {
		delete(d.features, m.SampleID)
	}
	d.mu.Unlock()
	if !ok {
		_, err := wire.Encode(conn, &wire.Error{Code: 404, Msg: fmt.Sprintf("no features for sample %d", m.SampleID)})
		return err
	}
	bits := d.model.PackFeature(feat)
	_, err := wire.Encode(conn, &wire.FeatureUpload{
		SampleID: m.SampleID,
		Device:   uint16(d.index),
		F:        uint16(feat.Dim(1)),
		H:        uint16(feat.Dim(2)),
		W:        uint16(feat.Dim(3)),
		Bits:     bits,
	})
	return err
}

// Close stops the device node, terminating any in-flight connections.
func (d *Device) Close() error {
	d.closeOnce.Do(func() {
		if d.listener != nil {
			d.listener.Close()
		}
		d.connMu.Lock()
		d.closed = true
		for conn := range d.conns {
			conn.Close()
		}
		d.connMu.Unlock()
	})
	d.wg.Wait()
	return nil
}
