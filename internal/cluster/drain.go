package cluster

import (
	"context"
	"sync/atomic"
	"time"
)

// drainPollInterval is how often awaitIdle re-checks a node's in-flight
// counter while draining.
const drainPollInterval = 5 * time.Millisecond

// awaitIdle waits until the in-flight counter reaches zero or the
// context expires, returning the context error in the latter case. The
// counter is polled rather than signalled because drains are rare,
// human-scale events; a few-millisecond poll keeps the hot classify path
// free of drain bookkeeping.
func awaitIdle(ctx context.Context, active *atomic.Int64) error {
	if active.Load() == 0 {
		return nil
	}
	ticker := time.NewTicker(drainPollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if active.Load() == 0 {
				return nil
			}
		case <-ctx.Done():
			return ctxErr(ctx.Err())
		}
	}
}
