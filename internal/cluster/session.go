package cluster

import (
	"fmt"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// uploadSession accumulates one escalation session's device feature
// uploads until every present device's map has arrived. It is shared by
// the cloud (two-tier hierarchies) and the edge node (three-tier), which
// receive the same CloudClassify/EdgeClassify + FeatureUpload sequence.
type uploadSession struct {
	sampleID uint64
	allowed  uint16 // mask of devices whose uploads are expected
	feats    []*tensor.Tensor
	mask     []bool
	pending  int
}

// newUploadSession validates the escalation header against the model
// configuration and prepares placeholder feature maps for every device,
// so absent devices contribute zeros to the aggregation exactly as in
// masked training (§IV-G).
func newUploadSession(cfg core.Config, sampleID uint64, devices, allowed uint16, present int) (*uploadSession, error) {
	if int(devices) != cfg.Devices {
		return nil, fmt.Errorf("model has %d devices, session says %d", cfg.Devices, devices)
	}
	fh, fw := cfg.FeatureH(), cfg.FeatureW()
	s := &uploadSession{
		sampleID: sampleID,
		allowed:  allowed,
		feats:    make([]*tensor.Tensor, cfg.Devices),
		mask:     make([]bool, cfg.Devices),
		pending:  present,
	}
	for d := 0; d < cfg.Devices; d++ {
		s.feats[d] = tensor.New(1, cfg.DeviceFilters, fh, fw)
	}
	return s, nil
}

// add unpacks one device's upload into the session. It rejects uploads
// for the wrong sample, from devices outside the announced mask, and
// duplicates.
func (s *uploadSession) add(m *core.Model, up *wire.FeatureUpload) error {
	if up.SampleID != s.sampleID {
		return fmt.Errorf("upload for sample %d inside session for sample %d", up.SampleID, s.sampleID)
	}
	dev := int(up.Device)
	if dev < 0 || dev >= len(s.feats) {
		return fmt.Errorf("upload from unknown device %d", dev)
	}
	if s.allowed&(1<<uint(dev)) == 0 || s.mask[dev] {
		return fmt.Errorf("unexpected upload from device %d", dev)
	}
	feat, err := m.UnpackFeature(up.Bits, int(up.F), int(up.H), int(up.W))
	if err != nil {
		return fmt.Errorf("unpack device %d: %w", dev, err)
	}
	s.feats[dev] = feat
	s.mask[dev] = true
	s.pending--
	return nil
}

// complete reports whether every announced upload has arrived.
func (s *uploadSession) complete() bool { return s.pending == 0 }

// sessionOf extracts a message's session tag, or 0 for connection-scoped
// frames, so error replies to unexpected messages still reach the
// session's waiter instead of being dropped by the demultiplexer.
func sessionOf(m wire.Message) uint64 {
	if s, ok := m.(wire.Sessioned); ok {
		return s.SessionID()
	}
	return 0
}
