package cluster

import (
	"fmt"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// uploadSession accumulates one escalation session's device feature
// uploads until every present device's map has arrived. It is shared by
// cloud replicas (two-tier hierarchies) and edge replicas (three-tier),
// which receive the same CloudClassify/EdgeClassify + FeatureUpload
// sequence.
type uploadSession struct {
	sampleID uint64
	allowed  uint16 // mask of devices whose uploads are expected
	feats    []*tensor.Tensor
	mask     []bool
	pending  int
}

// newUploadSession validates the escalation header against the model
// configuration and prepares placeholder feature maps for every device,
// so absent devices contribute zeros to the aggregation exactly as in
// masked training (§IV-G). The placeholders come from pool (nil pool
// allocates); release returns them once the session is classified.
func newUploadSession(cfg core.Config, sampleID uint64, devices, allowed uint16, present int, pool *tensor.Pool) (*uploadSession, error) {
	if int(devices) != cfg.Devices {
		return nil, fmt.Errorf("model has %d devices, session says %d", cfg.Devices, devices)
	}
	fh, fw := cfg.FeatureH(), cfg.FeatureW()
	s := &uploadSession{
		sampleID: sampleID,
		allowed:  allowed,
		feats:    make([]*tensor.Tensor, cfg.Devices),
		mask:     make([]bool, cfg.Devices),
		pending:  present,
	}
	for d := 0; d < cfg.Devices; d++ {
		s.feats[d] = pool.Get(1, cfg.DeviceFilters, fh, fw)
	}
	return s, nil
}

// add unpacks one device's upload into the session's pre-allocated
// feature map. It rejects uploads for the wrong sample, from devices
// outside the announced mask, duplicates, and shape mismatches against
// the model configuration.
func (s *uploadSession) add(m *core.Model, up *wire.FeatureUpload) error {
	if up.SampleID != s.sampleID {
		return fmt.Errorf("upload for sample %d inside session for sample %d", up.SampleID, s.sampleID)
	}
	dev := int(up.Device)
	if dev < 0 || dev >= len(s.feats) {
		return fmt.Errorf("upload from unknown device %d", dev)
	}
	if s.allowed&(1<<uint(dev)) == 0 || s.mask[dev] {
		return fmt.Errorf("unexpected upload from device %d", dev)
	}
	cfg := m.Cfg
	if int(up.F) != cfg.DeviceFilters || int(up.H) != cfg.FeatureH() || int(up.W) != cfg.FeatureW() {
		return fmt.Errorf("device %d feature shape %d×%d×%d, model expects %d×%d×%d",
			dev, up.F, up.H, up.W, cfg.DeviceFilters, cfg.FeatureH(), cfg.FeatureW())
	}
	if err := m.UnpackFeatureInto(s.feats[dev], 0, up.Bits); err != nil {
		return fmt.Errorf("unpack device %d: %w", dev, err)
	}
	s.mask[dev] = true
	s.pending--
	return nil
}

// complete reports whether every announced upload has arrived.
func (s *uploadSession) complete() bool { return s.pending == 0 }

// release returns the session's feature maps to the pool.
func (s *uploadSession) release(pool *tensor.Pool) {
	for _, f := range s.feats {
		pool.Put(f)
	}
}

// batchUploadSession accumulates one batched escalation session's
// per-device FeatureBatch frames until every device in the union of the
// per-sample masks has reported. It is the batched analogue of
// uploadSession, shared by the cloud (CloudClassifyBatch) and the edge
// node (EdgeClassifyBatch).
type batchUploadSession struct {
	ids   []uint64
	masks []uint16
	// feats[d] is the [N, F, H, W] feature tensor of device d; rows of
	// samples the device does not cover stay zero, exactly like the
	// placeholder maps of masked per-sample aggregation (§IV-G).
	feats []*tensor.Tensor
	got   []bool
	// pending counts devices in the mask union that have not uploaded.
	pending int
}

// newBatchUploadSession validates a batched escalation header against the
// model configuration and draws the per-device batch tensors from pool
// (nil pool allocates); release returns them after classification.
func newBatchUploadSession(cfg core.Config, ids []uint64, devices uint16, masks []uint16, pool *tensor.Pool) (*batchUploadSession, error) {
	if int(devices) != cfg.Devices {
		return nil, fmt.Errorf("model has %d devices, session says %d", cfg.Devices, devices)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("empty batch")
	}
	if len(ids) != len(masks) {
		return nil, fmt.Errorf("batch has %d samples but %d masks", len(ids), len(masks))
	}
	var union uint16
	for _, m := range masks {
		union |= m
	}
	if union == 0 {
		return nil, fmt.Errorf("empty device mask")
	}
	fh, fw := cfg.FeatureH(), cfg.FeatureW()
	s := &batchUploadSession{
		ids:   ids,
		masks: masks,
		feats: make([]*tensor.Tensor, cfg.Devices),
		got:   make([]bool, cfg.Devices),
	}
	for d := 0; d < cfg.Devices; d++ {
		s.feats[d] = pool.Get(len(ids), cfg.DeviceFilters, fh, fw)
		if union&(1<<uint(d)) != 0 {
			s.pending++
		}
	}
	return s, nil
}

// release returns the session's batch tensors to the pool.
func (s *batchUploadSession) release(pool *tensor.Pool) {
	for _, f := range s.feats {
		pool.Put(f)
	}
}

// expectedCount returns how many of the batch's samples device d covers.
func (s *batchUploadSession) expectedCount(d int) int {
	c := 0
	for _, m := range s.masks {
		if m&(1<<uint(d)) != 0 {
			c++
		}
	}
	return c
}

// add unpacks one device's FeatureBatch into the session: sample k of the
// frame fills the k-th batch row the device covers, in batch order.
func (s *batchUploadSession) add(m *core.Model, fb *wire.FeatureBatch) error {
	d := int(fb.Device)
	if d < 0 || d >= len(s.feats) {
		return fmt.Errorf("feature batch from unknown device %d", d)
	}
	want := s.expectedCount(d)
	if want == 0 || s.got[d] {
		return fmt.Errorf("unexpected feature batch from device %d", d)
	}
	if int(fb.Count) != want {
		return fmt.Errorf("device %d sent %d feature maps, mask expects %d", d, fb.Count, want)
	}
	cfg := m.Cfg
	if int(fb.F) != cfg.DeviceFilters || int(fb.H) != cfg.FeatureH() || int(fb.W) != cfg.FeatureW() {
		return fmt.Errorf("device %d feature shape %d×%d×%d, model expects %d×%d×%d",
			d, fb.F, fb.H, fb.W, cfg.DeviceFilters, cfg.FeatureH(), cfg.FeatureW())
	}
	k := 0
	for i, mask := range s.masks {
		if mask&(1<<uint(d)) == 0 {
			continue
		}
		if err := m.UnpackFeatureInto(s.feats[d], i, fb.Sample(k)); err != nil {
			return fmt.Errorf("unpack device %d sample %d: %w", d, i, err)
		}
		k++
	}
	s.got[d] = true
	s.pending--
	return nil
}

// complete reports whether every expected device upload has arrived.
func (s *batchUploadSession) complete() bool { return s.pending == 0 }

// selectGroup gathers a mask group's batch rows from each per-device
// tensor into pool-backed sub-batches. When the group spans the whole
// batch — the common all-devices-up case — the original tensors are
// returned as-is, skipping the copy; releaseGroup knows the difference.
func selectGroup(feats []*tensor.Tensor, indices []int, total int, pool *tensor.Pool) []*tensor.Tensor {
	if len(indices) == total {
		return feats
	}
	sel := make([]*tensor.Tensor, len(feats))
	for d, f := range feats {
		shape := append([]int{len(indices)}, f.Shape()[1:]...)
		t := pool.GetDirty(shape...)
		f.SelectSamplesInto(t, indices)
		sel[d] = t
	}
	return sel
}

// releaseGroup returns selectGroup's copies to the pool; a group that
// reused the originals is left alone (the session's release owns them).
func releaseGroup(orig, sel []*tensor.Tensor, pool *tensor.Pool) {
	if len(sel) > 0 && len(orig) > 0 && sel[0] == orig[0] {
		return
	}
	for _, t := range sel {
		pool.Put(t)
	}
}

// maskGroup is a batch subset whose samples share one device-presence
// mask, so a single masked forward pass covers the whole group and stays
// bit-identical to running each sample alone.
type maskGroup struct {
	mask uint16
	// indices are batch positions, in batch order.
	indices []int
	// present is the mask expanded to per-device booleans.
	present []bool
}

// groupByMask splits batch positions by device-presence mask. Group order
// is first-appearance order; the common all-devices-up case yields a
// single group spanning the whole batch.
func groupByMask(masks []uint16, devices int) []maskGroup {
	var groups []maskGroup
	at := make(map[uint16]int)
	for i, m := range masks {
		gi, ok := at[m]
		if !ok {
			present := make([]bool, devices)
			for d := 0; d < devices; d++ {
				present[d] = m&(1<<uint(d)) != 0
			}
			gi = len(groups)
			at[m] = gi
			groups = append(groups, maskGroup{mask: m, present: present})
		}
		groups[gi].indices = append(groups[gi].indices, i)
	}
	return groups
}

// maskOf packs per-device presence booleans into a wire bitmask.
func maskOf(present []bool) uint16 {
	var m uint16
	for d, p := range present {
		if p {
			m |= 1 << uint(d)
		}
	}
	return m
}

// verdictRow assembles one sample's BatchVerdict from row k of a softmax
// probability tensor — the shared tail of every tier's batched classify.
func verdictRow(probs *tensor.Tensor, k int, id uint64, exit wire.ExitPoint) wire.BatchVerdict {
	row := make([]float32, probs.Dim(1))
	copy(row, probs.Row(k))
	return wire.BatchVerdict{
		SampleID: id,
		Exit:     exit,
		Class:    uint16(probs.ArgMaxRow(k)),
		Probs:    row,
	}
}

// sessionOf extracts a message's session tag, or 0 for connection-scoped
// frames, so error replies to unexpected messages still reach the
// session's waiter instead of being dropped by the demultiplexer.
func sessionOf(m wire.Message) uint64 {
	if s, ok := m.(wire.Sessioned); ok {
		return s.SessionID()
	}
	return 0
}
