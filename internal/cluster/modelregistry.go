package cluster

import (
	"fmt"
	"sort"
	"sync"

	"github.com/ddnn/ddnn-go/internal/core"
)

// maxRegistryVersions bounds how many loaded model versions a registry
// retains. When a registration would exceed it, the oldest inactive
// version is evicted — the active version (and the one being installed)
// are never evicted, so a rollback target always survives the rollout
// that needs it.
const maxRegistryVersions = 8

// modelRegistry holds the loaded model versions one serving node (or the
// engine itself) can resolve, plus the node's active pointer. Every node
// owns its own registry — a rolling reload flips replicas' active
// pointers one at a time — but the *core.Model values are shared by
// pointer across the fleet: models are frozen read-only after load, so
// N registries cost one copy of the weights per version, not N.
type modelRegistry struct {
	mu     sync.RWMutex
	models map[uint64]*core.Model
	order  []uint64 // insertion order, for eviction
	active uint64
}

// newModelRegistry returns a registry holding base as the active version.
func newModelRegistry(base *core.Model, version uint64) *modelRegistry {
	if version == 0 {
		version = 1
	}
	return &modelRegistry{
		models: map[uint64]*core.Model{version: base},
		order:  []uint64{version},
		active: version,
	}
}

// configsMatch reports whether two configs describe the same
// architecture. The RNG seed is ignored: it only picks the random init a
// training run started from, and two checkpoints of the same hierarchy
// legitimately differ in it.
func configsMatch(a, b core.Config) bool {
	a.Seed, b.Seed = 0, 0
	return a == b
}

// register adds a model under a new version number. The version must be
// unused and the model's architecture must match the registry's active
// model; registering never changes the active pointer. When the registry
// is full the oldest inactive version is evicted.
func (r *modelRegistry) register(version uint64, m *core.Model) error {
	if version == 0 {
		return fmt.Errorf("cluster: version 0 is reserved for \"active\": %w", ErrModelVersionUnknown)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[version]; dup {
		return fmt.Errorf("cluster: version %d: %w", version, ErrDuplicateModelVersion)
	}
	if !configsMatch(m.Cfg, r.models[r.active].Cfg) {
		return fmt.Errorf("cluster: version %d: %w", version, ErrModelConfigMismatch)
	}
	r.models[version] = m
	r.order = append(r.order, version)
	r.evictLocked(version)
	return nil
}

// install force-sets the model stored under a version, registering it if
// absent. Rollouts use it to push a version onto every node — and to
// repair a replica whose registry entry a chaos tamper hook corrupted.
func (r *modelRegistry) install(version uint64, m *core.Model) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[version]; !ok {
		r.order = append(r.order, version)
	}
	r.models[version] = m
	r.evictLocked(version)
}

// evictLocked drops the oldest inactive versions beyond the capacity
// bound; keep marks the version being installed, which must survive.
func (r *modelRegistry) evictLocked(keep uint64) {
	for len(r.order) > maxRegistryVersions {
		evicted := false
		for i, v := range r.order {
			if v == r.active || v == keep {
				continue
			}
			delete(r.models, v)
			r.order = append(r.order[:i], r.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// resolve returns the model pinned to a session's version; version 0
// means "whatever is active right now". It also reports the concrete
// version resolved, so the caller can stamp it into the session.
func (r *modelRegistry) resolve(version uint64) (*core.Model, uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if version == 0 {
		version = r.active
	}
	m, ok := r.models[version]
	if !ok {
		return nil, 0, fmt.Errorf("cluster: model version %d: %w", version, ErrModelVersionUnknown)
	}
	return m, version, nil
}

// setActive flips the active pointer to an already-registered version.
func (r *modelRegistry) setActive(version uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[version]; !ok {
		return fmt.Errorf("cluster: activate version %d: %w", version, ErrModelVersionUnknown)
	}
	r.active = version
	return nil
}

// activeVersion returns the currently active version number.
func (r *modelRegistry) activeVersion() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.active
}

// versions returns the registered version numbers in ascending order.
func (r *modelRegistry) versions() []uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]uint64(nil), r.order...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// model returns the model stored under a concrete version, or nil.
func (r *modelRegistry) model(version uint64) *core.Model {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.models[version]
}

// snapshot returns every (version, model) pair the registry holds plus
// the active version — used to seed a freshly restarted replica's
// registry with the same version set as the rest of the fleet.
func (r *modelRegistry) snapshot() (map[uint64]*core.Model, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[uint64]*core.Model, len(r.models))
	for v, m := range r.models {
		out[v] = m
	}
	return out, r.active
}

// adopt replaces the registry's contents with a snapshot taken from
// another registry.
func (r *modelRegistry) adopt(models map[uint64]*core.Model, active uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models = make(map[uint64]*core.Model, len(models))
	r.order = r.order[:0]
	for v, m := range models {
		r.models[v] = m
		r.order = append(r.order, v)
	}
	sort.Slice(r.order, func(i, j int) bool { return r.order[i] < r.order[j] })
	if _, ok := r.models[active]; ok {
		r.active = active
	}
}
