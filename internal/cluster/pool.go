package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// Replica-pool tunables. They are constants rather than config because
// every deployment wants the same behavior: fail over fast, re-probe a
// dead replica occasionally, never flap on a single slow response.
const (
	// replicaCooldown is how long a self-detected-down replica stays
	// fenced before a single trial session may probe it again (half-open
	// circuit breaker). Pools driven by a health monitor skip trials —
	// the monitor owns recovery.
	replicaCooldown = time.Second
	// replicaMaxTimeouts marks a replica down after this many consecutive
	// timed-out escalations. A broken connection marks it down
	// immediately; timeouts get one extra chance because a loaded replica
	// can miss a deadline without being dead.
	replicaMaxTimeouts = 2
	// redialTimeout bounds the lazy re-dial of a replica whose data
	// connection died, so a session never spends its whole deadline
	// waiting on connection setup to a dead host.
	redialTimeout = time.Second
)

// errReplicaUnreachable marks an escalation failure attributable to one
// replica (connection death, missed deadline) rather than to the session
// itself; the failover loop retries such failures on another replica.
var errReplicaUnreachable = errors.New("cluster: replica unreachable")

// replica is one member of a ReplicaPool: a dialable upstream endpoint
// with its own multiplexed link, in-flight counter and health state.
type replica struct {
	index int
	addr  string

	// inFlight counts sessions currently escalated to this replica; the
	// pool's power-of-two-choices scheduler compares these counts.
	inFlight atomic.Int64

	mu       sync.Mutex
	lk       *link // nil until dialed; replaced on re-dial
	down     bool
	timeouts int       // consecutive timed-out escalations
	retryAt  time.Time // when a down replica becomes eligible for a trial
	probing  bool      // a trial session is in flight (half-open breaker)
	// fenced takes the replica out of scheduling without marking it
	// unhealthy: a rollout fences one replica at a time to drain and swap
	// its weights. Unlike down, a fenced replica is never eligible for a
	// half-open trial, and failure-detector updates leave the flag alone.
	fenced bool
}

// link returns the replica's current link, or nil when undialed/dead.
func (r *replica) link() *link {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lk != nil && r.lk.broken() {
		return nil
	}
	return r.lk
}

// ensureLink re-dials the replica's data connection if the current one is
// missing or broken. Concurrent callers race benignly: the loser closes
// its spare connection.
func (r *replica) ensureLink(ctx context.Context, tr transport.Transport) error {
	r.mu.Lock()
	if r.lk != nil && !r.lk.broken() {
		r.mu.Unlock()
		return nil
	}
	old := r.lk
	r.lk = nil
	r.mu.Unlock()
	if old != nil {
		old.close()
	}
	dctx, cancel := context.WithTimeout(ctx, redialTimeout)
	conn, err := tr.Dial(dctx, r.addr)
	cancel()
	if err != nil {
		return fmt.Errorf("%w: dial %s: %w", errReplicaUnreachable, r.addr, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lk != nil && !r.lk.broken() {
		// Another session re-dialed first; keep theirs.
		conn.Close()
		return nil
	}
	r.lk = newLink(conn)
	return nil
}

// ReplicaPool holds the N replicas of one upstream tier (edge or cloud)
// behind a single escalation endpoint. It load-balances sessions across
// healthy replicas with power-of-two-choices on in-flight count (ties
// broken round-robin), fences replicas that stop answering (fast-fail),
// re-admits them via health-monitor probes or half-open trial sessions,
// and retries an in-flight escalation on a different replica when one
// dies mid-session — escalations are idempotent because every retry
// re-sends the full bit-packed feature frames.
type ReplicaPool struct {
	tier   wire.ExitPoint
	tr     transport.Transport
	logger *slog.Logger

	replicas []*replica
	rr       atomic.Uint64 // round-robin tie-breaker
	rng      atomic.Uint64 // splitmix64 state for pick-two sampling

	// monitored is set once a health monitor probes this pool's
	// replicas; trial sessions are then disabled, because the monitor
	// both fences and re-admits replicas on its own.
	monitored atomic.Bool
}

// newReplicaPool dials every replica address and returns the pool. All
// initial dials must succeed — a replica that is down at construction
// time is a deployment error, while failures after construction are
// handled by fencing and failover.
func newReplicaPool(ctx context.Context, tier wire.ExitPoint, tr transport.Transport, addrs []string, logger *slog.Logger) (*ReplicaPool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: %v pool needs at least one replica address", tier)
	}
	if len(addrs) > 64 {
		// The failover loop tracks tried replicas in a uint64 bitmask.
		return nil, fmt.Errorf("cluster: %v pool supports at most 64 replicas, got %d", tier, len(addrs))
	}
	if logger == nil {
		logger = slog.Default()
	}
	p := &ReplicaPool{tier: tier, tr: tr, logger: logger}
	p.rng.Store(uint64(uintptr(len(addrs))) + 0x9E3779B97F4A7C15)
	for i, addr := range addrs {
		conn, err := tr.Dial(ctx, addr)
		if err != nil {
			p.close()
			return nil, fmt.Errorf("cluster: dial %v replica %d (%s): %w", tier, i, addr, err)
		}
		p.replicas = append(p.replicas, &replica{index: i, addr: addr, lk: newLink(conn)})
	}
	return p, nil
}

// Size returns the number of replicas in the pool.
func (p *ReplicaPool) Size() int { return len(p.replicas) }

// Addrs returns the replica addresses, in replica order.
func (p *ReplicaPool) Addrs() []string {
	out := make([]string, len(p.replicas))
	for i, r := range p.replicas {
		out[i] = r.addr
	}
	return out
}

// Healthy returns the number of replicas currently schedulable — not
// marked down by failure detection and not fenced by a rollout.
func (p *ReplicaPool) Healthy() int {
	n := 0
	for _, r := range p.replicas {
		r.mu.Lock()
		if !r.down && !r.fenced {
			n++
		}
		r.mu.Unlock()
	}
	return n
}

// Down reports whether no replica can serve right now: every replica is
// fenced and none is eligible for a trial session. Escalations then fail
// fast with ErrNoHealthyReplica instead of waiting out a timeout.
func (p *ReplicaPool) Down() bool {
	now := time.Now()
	for _, r := range p.replicas {
		r.mu.Lock()
		ok := !r.fenced && (!r.down || (!p.monitored.Load() && !r.probing && now.After(r.retryAt)))
		r.mu.Unlock()
		if ok {
			return false
		}
	}
	return true
}

// setMonitored flips whether a health monitor owns this pool's
// recovery. While true, trial sessions to fenced replicas are disabled
// (the monitor both fences and re-admits); a stopped monitor must hand
// recovery back by clearing it.
func (p *ReplicaPool) setMonitored(on bool) { p.monitored.Store(on) }

// splitmix64 advances the pool's sampling state and returns a well-mixed
// 64-bit value; it is lock-free and deterministic per pool.
func (p *ReplicaPool) splitmix64() uint64 {
	z := p.rng.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// pick selects the replica for one escalation attempt: power-of-two-
// choices on in-flight count among healthy, untried replicas, ties
// broken round-robin. When every healthy replica has been tried (or none
// is healthy), a fenced replica whose cooldown has passed may take a
// single half-open trial session — unless a health monitor owns
// recovery. The caller must pair a successful pick with done, and
// should report the outcome via reportSuccess/reportFailure.
func (p *ReplicaPool) pick(ctx context.Context, tried uint64) (*replica, bool, error) {
	var cands []*replica
	for _, r := range p.replicas {
		if tried&(1<<uint(r.index)) != 0 {
			continue
		}
		r.mu.Lock()
		ok := !r.down && !r.fenced
		r.mu.Unlock()
		if ok {
			cands = append(cands, r)
		}
	}
	var chosen *replica
	trial := false
	switch len(cands) {
	case 0:
		chosen = p.startTrial(tried)
		if chosen == nil {
			return nil, false, fmt.Errorf("cluster: %v tier: %w", p.tier, ErrNoHealthyReplica)
		}
		trial = true
	case 1:
		chosen = cands[0]
	default:
		// Power of two choices: sample two distinct candidates, take the
		// one with fewer in-flight sessions; break ties round-robin.
		x := p.splitmix64()
		i := int(x % uint64(len(cands)))
		j := int((x >> 32) % uint64(len(cands)-1))
		if j >= i {
			j++
		}
		a, b := cands[i], cands[j]
		la, lb := a.inFlight.Load(), b.inFlight.Load()
		switch {
		case la < lb:
			chosen = a
		case lb < la:
			chosen = b
		case p.rr.Add(1)%2 == 0:
			chosen = a
		default:
			chosen = b
		}
	}
	if err := chosen.ensureLink(ctx, p.tr); err != nil {
		p.reportFailure(chosen)
		if trial {
			// Release the half-open claim, or no later session could ever
			// re-probe this replica.
			chosen.mu.Lock()
			chosen.probing = false
			chosen.mu.Unlock()
		}
		return nil, false, err
	}
	chosen.inFlight.Add(1)
	return chosen, trial, nil
}

// startTrial claims one fenced replica past its cooldown for a half-open
// trial session, or nil when recovery belongs to a health monitor or no
// replica is eligible.
func (p *ReplicaPool) startTrial(tried uint64) *replica {
	if p.monitored.Load() {
		return nil
	}
	now := time.Now()
	for _, r := range p.replicas {
		if tried&(1<<uint(r.index)) != 0 {
			continue
		}
		r.mu.Lock()
		if r.down && !r.fenced && !r.probing && now.After(r.retryAt) {
			r.probing = true
			r.mu.Unlock()
			return r
		}
		r.mu.Unlock()
	}
	return nil
}

// done releases a picked replica: the in-flight count drops and, for
// the session that claimed a half-open trial, the trial claim is
// cleared. Only the trial holder may clear it — a normal session that
// happened to finish on a since-fenced replica must not wipe another
// session's in-flight trial. (The trial verdict itself comes from
// reportSuccess/reportFailure; a session that ends neutrally — e.g.
// canceled — leaves the replica's health state untouched.)
func (p *ReplicaPool) done(r *replica, trial bool) {
	r.inFlight.Add(-1)
	if trial {
		r.mu.Lock()
		r.probing = false
		r.mu.Unlock()
	}
}

// reportSuccess records a completed escalation: the replica's consecutive
// timeout count resets and a fenced replica is re-admitted.
func (p *ReplicaPool) reportSuccess(r *replica) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.timeouts = 0
	if r.down {
		r.down = false
		p.logger.Info("replica recovered", "tier", p.tier.String(), "replica", r.index, "addr", r.addr)
	}
}

// reportFailure records a failed escalation attempt. A broken connection
// fences the replica immediately; a timeout fences it after
// replicaMaxTimeouts consecutive misses (a loaded replica can miss one
// deadline without being dead). Fencing starts the cooldown clock for
// half-open trials.
func (p *ReplicaPool) reportFailure(r *replica) {
	dead := false
	if lk := r.link(); lk == nil {
		dead = true // connection is gone, not merely slow
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.timeouts++
	if !r.down && (dead || r.timeouts >= replicaMaxTimeouts) {
		r.down = true
		p.logger.Warn("replica fenced", "tier", p.tier.String(), "replica", r.index, "addr", r.addr, "dead_link", dead, "timeouts", r.timeouts)
	}
	if r.down {
		r.retryAt = time.Now().Add(replicaCooldown)
	}
}

// setDown flips one replica's availability from an external failure
// detector (the gateway's health monitor). Marking down fences the
// replica; marking up re-admits it immediately.
func (p *ReplicaPool) setDown(i int, down bool) {
	if i < 0 || i >= len(p.replicas) {
		return
	}
	r := p.replicas[i]
	r.mu.Lock()
	changed := r.down != down
	r.down = down
	r.timeouts = 0
	if down && changed {
		r.retryAt = time.Now().Add(replicaCooldown)
	}
	r.mu.Unlock()
	if changed {
		if down {
			p.logger.Warn("health monitor fenced replica", "tier", p.tier.String(), "replica", i, "addr", r.addr)
		} else {
			p.logger.Info("health monitor re-admitted replica", "tier", p.tier.String(), "replica", i, "addr", r.addr)
		}
	}
}

// setFenced flips one replica's rollout fence: a fenced replica takes no
// new sessions (and no half-open trials) until unfenced, while its
// failure-detection state — down, timeouts, cooldown — is untouched, so
// fencing and unfencing never masks a genuinely dead replica.
func (p *ReplicaPool) setFenced(i int, fenced bool) {
	if i < 0 || i >= len(p.replicas) {
		return
	}
	r := p.replicas[i]
	r.mu.Lock()
	r.fenced = fenced
	r.mu.Unlock()
}

// relay runs one session's escalation with failover: it sends the frames
// to a scheduled replica and waits for the session's reply, retrying on
// a different replica when one proves unreachable mid-session. Retries
// are safe because frames carry the session's complete bit-packed
// feature payload — a replica that half-processed the session before
// dying leaves no state the retry depends on. Non-replica failures
// (context cancellation, protocol errors from a live replica) are
// returned immediately.
func (p *ReplicaPool) relay(ctx context.Context, sid uint64, timeout time.Duration, frames ...wire.Message) (wire.Message, error) {
	var tried uint64
	var lastErr error
	for attempt := 0; attempt < len(p.replicas); attempt++ {
		r, trial, err := p.pick(ctx, tried)
		if err != nil {
			if errors.Is(err, errReplicaUnreachable) {
				// The chosen replica could not even be re-dialed; pick
				// already fenced it, so the next iteration tries the rest.
				lastErr = err
				continue
			}
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last: %w)", err, lastErr)
			}
			return nil, err
		}
		msg, rerr := p.relayOn(ctx, r, sid, timeout, frames)
		p.done(r, trial)
		if rerr == nil {
			p.reportSuccess(r)
			return msg, nil
		}
		if !errors.Is(rerr, errReplicaUnreachable) {
			return nil, rerr // session-fatal: context or protocol error
		}
		p.reportFailure(r)
		p.logger.Warn("escalation failed; retrying on another replica",
			"tier", p.tier.String(), "replica", r.index, "session", sid, "err", rerr)
		tried |= 1 << uint(r.index)
		lastErr = rerr
	}
	return nil, fmt.Errorf("all %d %v replicas failed: %w", len(p.replicas), p.tier, lastErr)
}

// relayOn performs one escalation attempt against a single replica.
func (p *ReplicaPool) relayOn(ctx context.Context, r *replica, sid uint64, timeout time.Duration, frames []wire.Message) (wire.Message, error) {
	lk := r.link()
	if lk == nil {
		return nil, fmt.Errorf("%w: connection lost", errReplicaUnreachable)
	}
	ch, err := lk.subscribe(sid)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errReplicaUnreachable, err)
	}
	defer lk.unsubscribe(sid)
	if err := lk.send(timeout, frames...); err != nil {
		return nil, fmt.Errorf("%w: relay frames: %w", errReplicaUnreachable, err)
	}
	msg, err := lk.wait(ctx, ch, timeout)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, ctxErr(cerr)
		}
		return nil, fmt.Errorf("%w: %w", errReplicaUnreachable, err)
	}
	return msg, nil
}

// close tears down every replica connection.
func (p *ReplicaPool) close() {
	for _, r := range p.replicas {
		r.mu.Lock()
		lk := r.lk
		r.lk = nil
		r.mu.Unlock()
		if lk != nil {
			lk.close()
		}
	}
}
