package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// poolFixture builds a pool over n accept-and-discard listeners; the
// scheduling tests never exchange frames, they only exercise pick/done
// and the health state machine.
func poolFixture(t *testing.T, n int) *ReplicaPool {
	t.Helper()
	tr := transport.NewMem()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("pool-node-%d", i)
		l, err := tr.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				go io.Copy(io.Discard, c)
			}
		}()
	}
	pool, err := newReplicaPool(context.Background(), wire.ExitCloud, tr, addrs, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.close)
	return pool
}

func TestPoolPickSpreadsLoad(t *testing.T) {
	pool := poolFixture(t, 4)
	ctx := context.Background()

	// Instantaneous sessions: every replica must get a meaningful share.
	counts := make([]int, pool.Size())
	for i := 0; i < 400; i++ {
		r, trial, err := pool.pick(ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts[r.index]++
		pool.done(r, trial)
	}
	for i, c := range counts {
		if c < 40 { // fair share is 100; power-of-two stays well above 40
			t.Errorf("replica %d got %d of 400 picks; distribution %v too skewed", i, c, counts)
		}
	}

	// Held sessions: power-of-two-choices on in-flight count must keep
	// the imbalance tiny (classic balls-into-bins with two choices).
	var held []*replica
	for i := 0; i < 200; i++ {
		r, _, err := pool.pick(ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, r)
	}
	min, max := int64(1<<62), int64(-1)
	for _, r := range pool.replicas {
		n := r.inFlight.Load()
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 8 {
		t.Errorf("held-session imbalance %d (min %d, max %d); pick-two must keep replicas level", max-min, min, max)
	}
	for _, r := range held {
		pool.done(r, false)
	}
}

func TestPoolAvoidsLoadedReplica(t *testing.T) {
	pool := poolFixture(t, 3)
	pool.replicas[0].inFlight.Add(100)
	defer pool.replicas[0].inFlight.Add(-100)
	for i := 0; i < 100; i++ {
		r, trial, err := pool.pick(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.index == 0 {
			t.Fatalf("pick %d chose the replica with 100 in-flight sessions over idle ones", i)
		}
		pool.done(r, trial)
	}
}

func TestPoolSkipsFencedReplica(t *testing.T) {
	pool := poolFixture(t, 3)
	pool.setDown(1, true)
	if got := pool.Healthy(); got != 2 {
		t.Fatalf("Healthy() = %d after fencing one of three replicas, want 2", got)
	}
	for i := 0; i < 60; i++ {
		r, trial, err := pool.pick(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.index == 1 {
			t.Fatal("pick chose the fenced replica")
		}
		pool.done(r, trial)
	}
	pool.setDown(1, false)
	if got := pool.Healthy(); got != 3 {
		t.Fatalf("Healthy() = %d after re-admitting, want 3", got)
	}
}

func TestPoolAllDownTypedError(t *testing.T) {
	pool := poolFixture(t, 2)
	pool.setMonitored(true) // the monitor owns recovery: no trial sessions
	pool.setDown(0, true)
	pool.setDown(1, true)
	if !pool.Down() {
		t.Fatal("Down() = false with every replica fenced")
	}
	if _, _, err := pool.pick(context.Background(), 0); !errors.Is(err, ErrNoHealthyReplica) {
		t.Fatalf("pick with all replicas fenced: err = %v, want ErrNoHealthyReplica", err)
	}
	if _, err := pool.relay(context.Background(), 1, time.Second, &wire.Heartbeat{}); !errors.Is(err, ErrNoHealthyReplica) {
		t.Fatalf("relay with all replicas fenced: err = %v, want ErrNoHealthyReplica", err)
	}
}

func TestPoolTrialSessionAfterCooldown(t *testing.T) {
	pool := poolFixture(t, 2)
	pool.setDown(0, true)
	pool.setDown(1, true)

	// Inside the cooldown no replica may serve.
	if !pool.Down() {
		t.Fatal("Down() = false inside the cooldown window")
	}
	if _, _, err := pool.pick(context.Background(), 0); !errors.Is(err, ErrNoHealthyReplica) {
		t.Fatalf("pick inside cooldown: err = %v, want ErrNoHealthyReplica", err)
	}

	// Expire replica 0's cooldown: exactly one trial session may probe it.
	r0 := pool.replicas[0]
	r0.mu.Lock()
	r0.retryAt = time.Now().Add(-time.Millisecond)
	r0.mu.Unlock()
	trial, isTrial, err := pool.pick(context.Background(), 0)
	if err != nil {
		t.Fatalf("pick after cooldown: %v", err)
	}
	if trial.index != 0 || !isTrial {
		t.Fatalf("trial pick = (replica %d, trial %v), want the cooled-down replica 0 as a trial", trial.index, isTrial)
	}
	// A second concurrent session must not pile onto the trial.
	if _, _, err := pool.pick(context.Background(), 0); !errors.Is(err, ErrNoHealthyReplica) {
		t.Fatalf("second pick during trial: err = %v, want ErrNoHealthyReplica", err)
	}
	// A normal session finishing on the fenced replica must not wipe the
	// trial claim (only the trial holder releases it).
	trial.inFlight.Add(1) // as if picked before the fencing
	pool.done(trial, false)
	if _, _, err := pool.pick(context.Background(), 0); !errors.Is(err, ErrNoHealthyReplica) {
		t.Fatalf("pick after a non-trial done: err = %v, want ErrNoHealthyReplica (trial claim held)", err)
	}
	// A successful trial re-admits the replica for everyone.
	pool.done(trial, true)
	pool.reportSuccess(trial)
	if pool.Healthy() != 1 {
		t.Fatalf("Healthy() = %d after successful trial, want 1", pool.Healthy())
	}
	if _, _, err := pool.pick(context.Background(), 0); err != nil {
		t.Fatalf("pick after recovery: %v", err)
	}
}

func TestPoolFencesAfterConsecutiveTimeouts(t *testing.T) {
	pool := poolFixture(t, 2)
	r := pool.replicas[0]
	pool.reportFailure(r) // first timeout: still admitted (link is alive)
	if pool.Healthy() != 2 {
		t.Fatalf("Healthy() = %d after one timeout, want 2", pool.Healthy())
	}
	pool.reportFailure(r) // second consecutive timeout: fenced
	if pool.Healthy() != 1 {
		t.Fatalf("Healthy() = %d after %d consecutive timeouts, want 1", pool.Healthy(), replicaMaxTimeouts)
	}
	pool.reportSuccess(r)
	if pool.Healthy() != 2 {
		t.Fatalf("Healthy() = %d after success, want 2", pool.Healthy())
	}
}
