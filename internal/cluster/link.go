package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/ddnn/ddnn-go/internal/wire"
)

// link multiplexes one connection across concurrent inference sessions.
// Frame writes are serialized by a mutex; a single reader goroutine decodes
// frames and hands each to the waiter subscribed for its session tag.
// Frames for sessions with no waiter — replies that arrive after their
// session timed out — are dropped, which replaces the old lock-step
// protocol's "discard stale sample IDs" loop.
type link struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	waiters map[uint64]chan wire.Message
	err     error // terminal read error, set before done is closed

	done      chan struct{}
	closeOnce sync.Once
}

// newLink wraps conn and starts its reader.
func newLink(conn net.Conn) *link {
	l := &link{
		conn:    conn,
		waiters: make(map[uint64]chan wire.Message),
		done:    make(chan struct{}),
	}
	go l.readLoop()
	return l
}

func (l *link) readLoop() {
	for {
		msg, err := wire.Decode(l.conn)
		if err != nil {
			l.fail(err)
			return
		}
		s, ok := msg.(wire.Sessioned)
		if !ok {
			continue // connection-scoped frame (heartbeat echo etc.)
		}
		l.mu.Lock()
		ch := l.waiters[s.SessionID()]
		l.mu.Unlock()
		if ch != nil {
			select {
			case ch <- msg:
			default: // waiter already satisfied; drop
			}
		}
	}
}

// broken reports whether the link has hit its terminal read error and can
// no longer deliver replies; replica pools re-dial broken links lazily.
func (l *link) broken() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err != nil
}

// fail records the terminal error and wakes every pending waiter.
func (l *link) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
	l.closeOnce.Do(func() { close(l.done) })
}

// subscribe registers a waiter for the session's frames. The returned
// channel holds one frame; unsubscribe must be called when the session is
// done with this link.
func (l *link) subscribe(session uint64) (<-chan wire.Message, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return nil, l.err
	}
	ch := make(chan wire.Message, 1)
	l.waiters[session] = ch
	return ch, nil
}

func (l *link) unsubscribe(session uint64) {
	l.mu.Lock()
	delete(l.waiters, session)
	l.mu.Unlock()
}

// send writes frames atomically with respect to other sessions. A
// positive timeout bounds the whole batch via a write deadline, so a
// stalled peer cannot wedge the link's writer; a zero or negative timeout
// leaves the write unbounded (context-only callers).
func (l *link) send(timeout time.Duration, msgs ...wire.Message) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if timeout > 0 {
		_ = l.conn.SetWriteDeadline(time.Now().Add(timeout))
		defer l.conn.SetWriteDeadline(time.Time{})
	}
	for _, m := range msgs {
		if _, err := wire.Encode(l.conn, m); err != nil {
			return err
		}
	}
	return nil
}

// wait blocks until the session's next frame, the timeout, the context, or
// link failure. A positive timeout bounds this stage even when ctx has no
// deadline; ctx cancellation and earlier ctx deadlines still win. A zero
// or negative timeout means the stage is bounded by the context alone —
// it must never make the wait expire instantly (a zero-value config is
// "no per-stage timeout", not "always time out").
func (l *link) wait(ctx context.Context, ch <-chan wire.Message, timeout time.Duration) (wire.Message, error) {
	var timerC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case msg := <-ch:
		return msg, nil
	case <-timerC:
		return nil, fmt.Errorf("cluster: %w after %v", ErrDeadlineExceeded, timeout)
	case <-ctx.Done():
		return nil, ctxErr(ctx.Err())
	case <-l.done:
		l.mu.Lock()
		err := l.err
		l.mu.Unlock()
		return nil, fmt.Errorf("cluster: link failed: %w", err)
	}
}

// request sends one frame and waits for the session's reply.
func (l *link) request(ctx context.Context, session uint64, req wire.Message, timeout time.Duration) (wire.Message, error) {
	ch, err := l.subscribe(session)
	if err != nil {
		return nil, fmt.Errorf("cluster: link failed: %w", err)
	}
	defer l.unsubscribe(session)
	if err := l.send(timeout, req); err != nil {
		return nil, err
	}
	return l.wait(ctx, ch, timeout)
}

func (l *link) close() error {
	l.closeOnce.Do(func() {
		l.mu.Lock()
		if l.err == nil {
			l.err = net.ErrClosed
		}
		l.mu.Unlock()
		close(l.done)
	})
	return l.conn.Close()
}
