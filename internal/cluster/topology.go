package cluster

import (
	"context"
	"fmt"

	"github.com/ddnn/ddnn-go/internal/transport"
)

// TenantConfig selects the exit-threshold policy one tenant's traffic
// runs under. Each tenant gets its own Pipeline built from these
// thresholds over the shared model, so one cluster serves applications
// with different accuracy/latency trade-offs (§III-D: the threshold is
// the knob that moves samples between exits).
type TenantConfig struct {
	// LocalThreshold is the tenant's local-exit normalized-entropy
	// threshold.
	LocalThreshold float64
	// EdgeThreshold is the tenant's edge-exit threshold, used only when
	// the model has an edge tier.
	EdgeThreshold float64
}

// TopologyConfig is a versioned snapshot of the hierarchy's runtime
// shape: which device slots are occupied and which tenants are
// configured. Every mutation — a device admitted, removed or
// re-registered, a tenant added, changed or deleted — bumps Version.
// Sessions pin the version current when they start and complete under
// it, so staged parity stays bit-identical across membership and
// threshold changes (the same mechanism a model-version rollout needs).
type TopologyConfig struct {
	// Version is the monotonically increasing config version.
	Version uint64
	// Slots is the total device-slot count of the hierarchy
	// (model.Cfg.Devices); it never changes at runtime.
	Slots int
	// Present marks the slots currently occupied by a registered device
	// (regardless of health: a present-but-down device stays a member).
	Present []bool
	// Tenants maps tenant name to its exit-threshold config.
	Tenants map[string]TenantConfig
}

// ConfigVersion returns the current topology config version. It starts
// at 1 for a freshly constructed gateway and bumps on every membership
// or tenant mutation.
func (g *Gateway) ConfigVersion() uint64 {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	return g.configVersion
}

// Topology returns a snapshot of the versioned runtime topology.
func (g *Gateway) Topology() TopologyConfig {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	tc := TopologyConfig{
		Version: g.configVersion,
		Slots:   len(g.devices),
		Present: make([]bool, len(g.devices)),
		Tenants: make(map[string]TenantConfig, len(g.tenants)),
	}
	for i, dl := range g.devices {
		tc.Present[i] = dl.link != nil
	}
	for name, t := range g.tenants {
		tc.Tenants[name] = t.cfg
	}
	return tc
}

// PresentSlots reports which device slots are occupied by a registered
// device (membership, not health).
func (g *Gateway) PresentSlots() []bool {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	out := make([]bool, len(g.devices))
	for i, dl := range g.devices {
		out[i] = dl.link != nil
	}
	return out
}

// AdmitDevice installs (or re-installs) a device into slot: the gateway
// dials the device's data-plane address, swaps the slot's link under the
// state lock and bumps the config version. An occupied slot is replaced
// — that is re-registration: the old link closes, in-flight sessions
// that snapshotted it degrade gracefully, and new sessions use the fresh
// link. Sticky failure state resets, so an admitted device starts live.
// It returns the config version the admission produced.
func (g *Gateway) AdmitDevice(ctx context.Context, slot int, addr string) (uint64, error) {
	if slot < 0 || slot >= len(g.devices) {
		return 0, fmt.Errorf("cluster: admit device: slot %d of %d slots: %w", slot, len(g.devices), ErrDeviceSlotMismatch)
	}
	conn, err := g.tr.Dial(ctx, addr)
	if err != nil {
		return 0, fmt.Errorf("cluster: admit device %d: dial %s: %w", slot, addr, err)
	}
	cc := transport.NewCountingConn(conn)
	l := newLink(cc)
	g.stateMu.Lock()
	if g.closed {
		g.stateMu.Unlock()
		l.close()
		return 0, ErrClosed
	}
	dl := g.devices[slot]
	old := dl.link
	dl.link = l
	dl.failures, dl.down = 0, false
	g.wireConns[slot] = cc
	g.configVersion++
	v := g.configVersion
	g.stateMu.Unlock()
	if old != nil {
		old.close()
	}
	g.logger.Info("device admitted", "slot", slot, "addr", addr, "config_version", v)
	return v, nil
}

// RemoveDevice deregisters the device in slot: the slot becomes absent,
// its link closes and the config version bumps. Sessions in flight
// complete under the membership snapshot they observed (the closed link
// degrades like a device timeout); new sessions no longer fan out to the
// slot. Removing an already-absent slot still bumps the version, so a
// goodbye always produces a fresh version to acknowledge with. It
// returns the resulting config version.
func (g *Gateway) RemoveDevice(slot int) (uint64, error) {
	if slot < 0 || slot >= len(g.devices) {
		return 0, fmt.Errorf("cluster: remove device: slot %d of %d slots: %w", slot, len(g.devices), ErrDeviceSlotMismatch)
	}
	g.stateMu.Lock()
	dl := g.devices[slot]
	old := dl.link
	dl.link = nil
	dl.failures, dl.down = 0, false
	g.wireConns[slot] = nil
	g.configVersion++
	v := g.configVersion
	g.stateMu.Unlock()
	if old != nil {
		old.close()
	}
	g.logger.Info("device removed", "slot", slot, "config_version", v)
	return v, nil
}

// SetTenant installs or updates a tenant's exit-threshold config and
// bumps the config version. The tenant's pipeline is built and validated
// here, at admission time, so classify paths never re-derive it.
func (g *Gateway) SetTenant(name string, tc TenantConfig) (uint64, error) {
	pipeline := BuildPipeline(g.model.Cfg, tc.LocalThreshold, tc.EdgeThreshold)
	if err := pipeline.Validate(); err != nil {
		return 0, fmt.Errorf("cluster: tenant %q: %w", name, err)
	}
	g.stateMu.Lock()
	g.tenants[name] = tenantEntry{cfg: tc, pipeline: pipeline}
	g.configVersion++
	v := g.configVersion
	g.stateMu.Unlock()
	g.logger.Info("tenant configured", "tenant", name, "local_threshold", tc.LocalThreshold, "edge_threshold", tc.EdgeThreshold, "config_version", v)
	return v, nil
}

// RemoveTenant deletes a tenant's config (its traffic falls back to the
// gateway's default pipeline) and bumps the config version.
func (g *Gateway) RemoveTenant(name string) uint64 {
	g.stateMu.Lock()
	delete(g.tenants, name)
	g.configVersion++
	v := g.configVersion
	g.stateMu.Unlock()
	g.logger.Info("tenant removed", "tenant", name, "config_version", v)
	return v
}

// TenantPipeline resolves the exit pipeline a tenant's traffic runs
// under: the tenant's own thresholds when configured, the gateway
// default otherwise (unknown tenants are first-class, they just get the
// default policy).
func (g *Gateway) TenantPipeline(tenant string) Pipeline {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	if t, ok := g.tenants[tenant]; ok {
		return t.pipeline
	}
	return g.pipeline
}

// memberSnapshot is the membership view one session runs under: the
// config version current when the session started and, per slot, the
// link to fan out to (nil for absent or down slots). Sessions never
// re-read membership after this snapshot, which is what keeps a
// completed classification bit-identical to the staged reference under
// the presence mask and config version the session observed, even while
// devices join and leave concurrently.
type memberSnapshot struct {
	version uint64
	links   []*link
}

// snapshotMembers captures the session's membership view under the
// state lock.
func (g *Gateway) snapshotMembers() memberSnapshot {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	links := make([]*link, len(g.devices))
	for i, dl := range g.devices {
		if dl.link != nil && !dl.down {
			links[i] = dl.link
		}
	}
	return memberSnapshot{version: g.configVersion, links: links}
}
