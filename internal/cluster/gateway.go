package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/metrics"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// GatewayConfig controls the local aggregator node.
type GatewayConfig struct {
	// Threshold is the local exit's normalized-entropy threshold T
	// (§III-D; the paper settles on 0.8).
	Threshold float64
	// DeviceTimeout bounds each device round trip; devices that miss it
	// are treated as absent for the sample (graceful degradation, §IV-G).
	DeviceTimeout time.Duration
	// CloudTimeout bounds the cloud round trip.
	CloudTimeout time.Duration
	// MaxFailures marks a device as down after this many consecutive
	// timeouts, so later samples skip it immediately. Zero disables
	// sticky failure detection.
	MaxFailures int
}

// DefaultGatewayConfig returns sensible simulation defaults.
func DefaultGatewayConfig() GatewayConfig {
	return GatewayConfig{
		Threshold:     0.8,
		DeviceTimeout: 2 * time.Second,
		CloudTimeout:  5 * time.Second,
		MaxFailures:   3,
	}
}

// Result is the outcome of one distributed inference session.
type Result struct {
	SampleID uint64
	Class    int
	Exit     wire.ExitPoint
	Probs    []float32
	// Entropy is the normalized entropy of the local aggregate.
	Entropy float64
	// Present marks the devices that contributed to the sample.
	Present []bool
	// Latency is the wall-clock duration of the session.
	Latency time.Duration
}

// Gateway is the local aggregator: it fans capture requests out to the
// devices, aggregates their exit summaries, applies the entropy-threshold
// exit rule, and escalates to the cloud when the local exit is not
// confident.
type Gateway struct {
	model  *core.Model
	cfg    GatewayConfig
	logger *slog.Logger

	devices []*deviceLink
	cloud   net.Conn

	// Meter accumulates Eq. (1) payload bytes by category
	// ("local-summary", "cloud-upload").
	Meter *metrics.CommMeter
	// WireBytes counts actual bytes on each device uplink including
	// framing, for comparison against the analytic model.
	wireConns []*transport.CountingConn

	mu sync.Mutex // serializes Classify sessions
}

type deviceLink struct {
	index    int
	conn     net.Conn
	failures int
	down     bool
}

// NewGateway connects to the device and cloud nodes and returns a ready
// gateway.
func NewGateway(model *core.Model, cfg GatewayConfig, tr transport.Transport, deviceAddrs []string, cloudAddr string, logger *slog.Logger) (*Gateway, error) {
	if logger == nil {
		logger = slog.Default()
	}
	if len(deviceAddrs) != model.Cfg.Devices {
		return nil, fmt.Errorf("cluster: model has %d devices, got %d addresses", model.Cfg.Devices, len(deviceAddrs))
	}
	g := &Gateway{
		model:  model,
		cfg:    cfg,
		logger: logger.With("node", "gateway"),
		Meter:  metrics.NewCommMeter(),
	}
	for i, addr := range deviceAddrs {
		conn, err := tr.Dial(addr)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("cluster: dial device %d: %w", i, err)
		}
		cc := transport.NewCountingConn(conn)
		g.wireConns = append(g.wireConns, cc)
		g.devices = append(g.devices, &deviceLink{index: i, conn: cc})
	}
	conn, err := tr.Dial(cloudAddr)
	if err != nil {
		g.Close()
		return nil, fmt.Errorf("cluster: dial cloud: %w", err)
	}
	g.cloud = conn
	return g, nil
}

// WireBytesUp returns the total bytes written on all device uplinks,
// including protocol framing.
func (g *Gateway) WireBytesUp() int64 {
	var t int64
	for _, c := range g.wireConns {
		t += c.BytesRead() // device→gateway direction
	}
	return t
}

// summaryReply carries one device's response to a capture request.
type summaryReply struct {
	device  int
	probs   []float32
	timeout bool
}

// Classify runs the full staged inference of §III-D for one sample.
func (g *Gateway) Classify(sampleID uint64) (*Result, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	start := time.Now()

	// Stage 1: every device processes its frame and sends its summary to
	// the local aggregator.
	replies := make(chan summaryReply, len(g.devices))
	inFlight := 0
	for _, dl := range g.devices {
		if dl.down {
			continue
		}
		inFlight++
		go g.captureFrom(dl, sampleID, replies)
	}
	exitVecs := make([]*tensor.Tensor, len(g.devices))
	present := make([]bool, len(g.devices))
	classes := g.model.Cfg.Classes
	for d := range exitVecs {
		exitVecs[d] = tensor.New(1, classes)
	}
	for i := 0; i < inFlight; i++ {
		r := <-replies
		dl := g.devices[r.device]
		if r.timeout {
			dl.failures++
			if g.cfg.MaxFailures > 0 && dl.failures >= g.cfg.MaxFailures {
				if !dl.down {
					g.logger.Warn("device marked down", "device", r.device, "consecutive_timeouts", dl.failures)
				}
				dl.down = true
			}
			continue
		}
		dl.failures = 0
		if r.probs == nil {
			continue // device had no frame (object absent / feed error)
		}
		copy(exitVecs[r.device].Row(0), r.probs)
		present[r.device] = true
		g.Meter.Add("local-summary", int64(wire.SummaryPayloadBytes(classes)))
	}

	anyPresent := false
	for _, p := range present {
		anyPresent = anyPresent || p
	}
	if !anyPresent {
		return nil, fmt.Errorf("cluster: no device produced a summary for sample %d", sampleID)
	}

	// Stage 2: aggregate and decide the local exit.
	logits := g.model.LocalAggregate(exitVecs, present)
	probs := nn.Softmax(logits)
	row := make([]float32, classes)
	copy(row, probs.Row(0))
	entropy := nn.NormalizedEntropy(row)
	if entropy <= g.cfg.Threshold {
		return &Result{
			SampleID: sampleID,
			Class:    probs.ArgMaxRow(0),
			Exit:     wire.ExitLocal,
			Probs:    row,
			Entropy:  entropy,
			Present:  present,
			Latency:  time.Since(start),
		}, nil
	}

	// Stage 3: the local exit is not confident; fetch binarized features
	// from present devices and escalate to the cloud.
	res, err := g.escalate(sampleID, present)
	if err != nil {
		return nil, err
	}
	res.Entropy = entropy
	res.Present = present
	res.Latency = time.Since(start)
	return res, nil
}

func (g *Gateway) captureFrom(dl *deviceLink, sampleID uint64, replies chan<- summaryReply) {
	deadline := time.Now().Add(g.cfg.DeviceTimeout)
	if _, err := wire.Encode(dl.conn, &wire.CaptureRequest{SampleID: sampleID}); err != nil {
		replies <- summaryReply{device: dl.index, timeout: true}
		return
	}
	_ = dl.conn.SetReadDeadline(deadline)
	defer dl.conn.SetReadDeadline(time.Time{})
	for {
		msg, err := wire.Decode(dl.conn)
		if err != nil {
			replies <- summaryReply{device: dl.index, timeout: true}
			return
		}
		switch m := msg.(type) {
		case *wire.LocalSummary:
			if m.SampleID != sampleID {
				continue // stale reply from a timed-out earlier sample
			}
			replies <- summaryReply{device: dl.index, probs: m.Probs}
			return
		case *wire.Error:
			replies <- summaryReply{device: dl.index} // absent frame
			return
		default:
			continue
		}
	}
}

// escalate fetches feature maps from present devices and asks the cloud
// for the final classification.
func (g *Gateway) escalate(sampleID uint64, present []bool) (*Result, error) {
	type upload struct {
		device int
		msg    *wire.FeatureUpload
		err    error
	}
	uploads := make(chan upload, len(g.devices))
	inFlight := 0
	for d, p := range present {
		if !p {
			continue
		}
		inFlight++
		go func(dl *deviceLink) {
			m, err := g.fetchFeatures(dl, sampleID)
			uploads <- upload{device: dl.index, msg: m, err: err}
		}(g.devices[d])
	}
	var collected []*wire.FeatureUpload
	var mask uint16
	for i := 0; i < inFlight; i++ {
		u := <-uploads
		if u.err != nil {
			// The device answered the capture but died before the feature
			// upload; degrade to the remaining devices.
			g.logger.Warn("feature fetch failed", "device", u.device, "err", u.err)
			present[u.device] = false
			continue
		}
		collected = append(collected, u.msg)
		mask |= 1 << uint(u.device)
		g.Meter.Add("cloud-upload", int64(len(u.msg.Bits)))
	}
	if len(collected) == 0 {
		return nil, fmt.Errorf("cluster: no features collected for sample %d", sampleID)
	}

	hdr := &wire.CloudClassify{
		SampleID: sampleID,
		Devices:  uint16(g.model.Cfg.Devices),
		Mask:     mask,
	}
	_ = g.cloud.SetDeadline(time.Now().Add(g.cfg.CloudTimeout))
	defer g.cloud.SetDeadline(time.Time{})
	if _, err := wire.Encode(g.cloud, hdr); err != nil {
		return nil, fmt.Errorf("cluster: send cloud header: %w", err)
	}
	for _, up := range collected {
		if _, err := wire.Encode(g.cloud, up); err != nil {
			return nil, fmt.Errorf("cluster: relay features: %w", err)
		}
	}
	msg, err := wire.Decode(g.cloud)
	if err != nil {
		return nil, fmt.Errorf("cluster: cloud reply: %w", err)
	}
	cr, ok := msg.(*wire.ClassifyResult)
	if !ok {
		if e, isErr := msg.(*wire.Error); isErr {
			return nil, fmt.Errorf("cluster: cloud error %d: %s", e.Code, e.Msg)
		}
		return nil, fmt.Errorf("cluster: expected ClassifyResult, got %v", msg.MsgType())
	}
	return &Result{
		SampleID: sampleID,
		Class:    int(cr.Class),
		Exit:     cr.Exit,
		Probs:    cr.Probs,
	}, nil
}

func (g *Gateway) fetchFeatures(dl *deviceLink, sampleID uint64) (*wire.FeatureUpload, error) {
	deadline := time.Now().Add(g.cfg.DeviceTimeout)
	if _, err := wire.Encode(dl.conn, &wire.FeatureRequest{SampleID: sampleID}); err != nil {
		return nil, err
	}
	_ = dl.conn.SetReadDeadline(deadline)
	defer dl.conn.SetReadDeadline(time.Time{})
	for {
		msg, err := wire.Decode(dl.conn)
		if err != nil {
			return nil, err
		}
		switch m := msg.(type) {
		case *wire.FeatureUpload:
			if m.SampleID != sampleID {
				continue
			}
			return m, nil
		case *wire.Error:
			return nil, errors.New(m.Msg)
		default:
			continue
		}
	}
}

// DownDevices returns the indices of devices currently marked down by
// sticky failure detection.
func (g *Gateway) DownDevices() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []int
	for _, dl := range g.devices {
		if dl.down {
			out = append(out, dl.index)
		}
	}
	return out
}

// Close tears down all connections.
func (g *Gateway) Close() error {
	for _, dl := range g.devices {
		if dl.conn != nil {
			dl.conn.Close()
		}
	}
	if g.cloud != nil {
		g.cloud.Close()
	}
	return nil
}
