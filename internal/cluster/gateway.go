package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/metrics"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// GatewayConfig controls the local aggregator node.
type GatewayConfig struct {
	// Threshold is the local exit's normalized-entropy threshold T
	// (§III-D; the paper settles on 0.8).
	Threshold float64
	// EdgeThreshold is the edge exit's normalized-entropy threshold,
	// used only when the model has an edge tier. The gateway forwards
	// it with every escalation so the edge node stays policy-free.
	EdgeThreshold float64
	// DeviceTimeout bounds each device round trip; devices that miss it
	// are treated as absent for the sample (graceful degradation, §IV-G).
	// A context with an earlier deadline wins.
	DeviceTimeout time.Duration
	// CloudTimeout bounds each cloud escalation attempt (two-tier
	// hierarchies); a failover retry on another replica gets its own
	// budget, since nothing above the gateway is waiting on a shorter
	// clock.
	CloudTimeout time.Duration
	// EdgeTimeout bounds each gateway↔edge escalation attempt of a
	// three-tier hierarchy, including any cloud relay behind the edge;
	// as with CloudTimeout, a failover retry gets its own budget.
	EdgeTimeout time.Duration
	// MaxFailures marks a device as down after this many consecutive
	// timeouts, so later samples skip it immediately. Zero disables
	// sticky failure detection.
	MaxFailures int
}

// DefaultGatewayConfig returns sensible simulation defaults.
func DefaultGatewayConfig() GatewayConfig {
	return GatewayConfig{
		Threshold:     0.8,
		EdgeThreshold: 0.8,
		DeviceTimeout: 2 * time.Second,
		CloudTimeout:  5 * time.Second,
		EdgeTimeout:   7 * time.Second,
		MaxFailures:   3,
	}
}

// Result is the outcome of one distributed inference session.
type Result struct {
	// SampleID identifies the sample being classified.
	SampleID uint64
	// Class is the predicted class index.
	Class int
	// Exit names the tier that produced the verdict.
	Exit wire.ExitPoint
	// Probs holds the per-class probabilities.
	Probs []float32
	// Entropy is the normalized entropy of the local aggregate.
	Entropy float64
	// Present marks the devices that contributed to the sample.
	Present []bool
	// ConfigVersion is the topology config version the session pinned
	// when it started; the verdict is bit-identical to the staged
	// reference under that version's membership view.
	ConfigVersion uint64
	// ModelVersion is the model version the session pinned when it
	// started: every hop — device sections, edge, cloud — ran these
	// weights, even if a rolling reload flipped the fleet mid-session.
	ModelVersion uint64
	// Latency is the wall-clock duration of the session.
	Latency time.Duration
}

// Gateway is the local aggregator: it fans capture requests out to the
// devices, aggregates their exit summaries, applies the entropy-threshold
// exit rule of the pipeline's first stage, and escalates samples the
// local exit is not confident about to the next tier up — the edge tier
// of a three-tier hierarchy, or the cloud directly in a two-tier one.
// The upstream tier is a replica pool: escalations load-balance across
// its healthy replicas and fail over to another replica when one dies
// mid-session.
//
// Classify is safe for concurrent use: each call opens an independent
// session, tagged with a unique session ID, and the device and upstream
// links multiplex frames from all in-flight sessions. Only the
// per-device failure bookkeeping is shared, behind a short-lived mutex.
type Gateway struct {
	model    *core.Model
	reg      *modelRegistry
	cfg      GatewayConfig
	pipeline Pipeline
	logger   *slog.Logger
	tr       transport.Transport // retained for membership dial-backs

	devices  []*deviceLink
	upstream *ReplicaPool // edge tier for edge-tier models, cloud otherwise

	nextSession atomic.Uint64

	// Meter accumulates Eq. (1) payload bytes by category
	// ("local-summary", plus "cloud-upload" or "edge-upload" for the
	// device feature maps relayed up the hierarchy's first hop).
	Meter *metrics.CommMeter
	// wireConns counts actual bytes on each device uplink including
	// framing, for comparison against the analytic model. Slot-indexed;
	// nil for absent slots. Guarded by stateMu.
	wireConns []*transport.CountingConn

	// instr holds the optional observability callbacks installed with
	// SetInstrumentation.
	instr instrumentation

	// stateMu guards the versioned topology state: deviceLink.link /
	// .failures / .down, wireConns, tenants, configVersion and closed.
	stateMu       sync.Mutex
	configVersion uint64
	tenants       map[string]tenantEntry
	closed        bool

	// registration is the optional registration-plane listener started
	// by ServeRegistration; guarded by regMu.
	regMu        sync.Mutex
	regListener  interface{ Close() error }
	regConns     map[interface{ Close() error }]struct{}
	regClosed    bool
	regWaitGroup sync.WaitGroup
}

// tenantEntry pairs a tenant's raw config with its resolved, validated
// pipeline so classify paths never rebuild it.
type tenantEntry struct {
	cfg      TenantConfig
	pipeline Pipeline
}

type deviceLink struct {
	index int
	// guarded by Gateway.stateMu:
	link     *link // nil while the slot is absent
	failures int
	down     bool
}

// NewGateway connects to the device nodes and the next tier up — the
// edge replicas for edge-tier models, the cloud replicas otherwise — and
// returns a ready gateway. upstreamAddrs lists the replicas of that one
// tier; sessions load-balance across them. The context bounds connection
// setup only; per-session deadlines come from the contexts passed to
// Classify.
//
// deviceAddrs may name fewer devices than the model has slots — or use
// empty strings for individual slots — to start with a partial device
// set: the unnamed slots begin absent and are admitted later through
// the registration plane (ServeRegistration) or AdmitDevice. More
// addresses than slots is a hard ErrDeviceSlotMismatch, since the extra
// devices could never appear in the presence mask.
func NewGateway(ctx context.Context, model *core.Model, cfg GatewayConfig, tr transport.Transport, deviceAddrs []string, upstreamAddrs []string, logger *slog.Logger) (*Gateway, error) {
	if logger == nil {
		logger = slog.Default()
	}
	if len(deviceAddrs) > model.Cfg.Devices {
		return nil, fmt.Errorf("cluster: model has %d device slots, got %d addresses: %w", model.Cfg.Devices, len(deviceAddrs), ErrDeviceSlotMismatch)
	}
	if model.Cfg.Devices > wire.MaxDevices {
		// The wire protocol's present-device masks are uint16 bitmasks;
		// a 17th device would silently alias bit 0 and corrupt every
		// escalation header, so such hierarchies are rejected up front.
		return nil, fmt.Errorf("cluster: model has %d devices: %w", model.Cfg.Devices, ErrTooManyDevices)
	}
	// Zero timeouts would otherwise expire instantly; an unset
	// GatewayConfig means "use the defaults", not "always time out".
	def := DefaultGatewayConfig()
	if cfg.DeviceTimeout <= 0 {
		cfg.DeviceTimeout = def.DeviceTimeout
	}
	if cfg.CloudTimeout <= 0 {
		cfg.CloudTimeout = def.CloudTimeout
	}
	if cfg.EdgeTimeout <= 0 {
		cfg.EdgeTimeout = def.EdgeTimeout
	}
	pipeline := BuildPipeline(model.Cfg, cfg.Threshold, cfg.EdgeThreshold)
	if err := pipeline.Validate(); err != nil {
		return nil, err
	}
	g := &Gateway{
		model:         model,
		reg:           newModelRegistry(model, 1),
		cfg:           cfg,
		pipeline:      pipeline,
		logger:        logger.With("node", "gateway"),
		tr:            tr,
		Meter:         metrics.NewCommMeter(),
		configVersion: 1,
		tenants:       make(map[string]tenantEntry),
	}
	// All slots exist from construction; the ones without an address
	// begin absent (nil link) and join later via registration.
	g.devices = make([]*deviceLink, model.Cfg.Devices)
	g.wireConns = make([]*transport.CountingConn, model.Cfg.Devices)
	for i := range g.devices {
		g.devices[i] = &deviceLink{index: i}
	}
	for i, addr := range deviceAddrs {
		if addr == "" {
			continue // explicitly absent slot
		}
		conn, err := tr.Dial(ctx, addr)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("cluster: dial device %d: %w", i, err)
		}
		cc := transport.NewCountingConn(conn)
		g.wireConns[i] = cc
		g.devices[i].link = newLink(cc)
	}
	pool, err := newReplicaPool(ctx, g.upstreamExit(), tr, upstreamAddrs, g.logger)
	if err != nil {
		g.Close()
		return nil, err
	}
	g.upstream = pool
	return g, nil
}

// Upstream exposes the gateway's upstream replica pool for stats
// (replica count, health).
func (g *Gateway) Upstream() *ReplicaPool { return g.upstream }

// Pipeline returns the gateway's exit-stage list, lowest tier first.
func (g *Gateway) Pipeline() Pipeline { return g.pipeline }

// upstreamExit names the tier the gateway escalates to.
func (g *Gateway) upstreamExit() wire.ExitPoint { return g.pipeline[1].Exit }

// upstreamSentinel is the typed error for an unreachable upstream tier.
func (g *Gateway) upstreamSentinel() error {
	if g.upstreamExit() == wire.ExitEdge {
		return ErrEdgeUnavailable
	}
	return ErrCloudUnavailable
}

// upstreamTimeout bounds one escalation round trip.
func (g *Gateway) upstreamTimeout() time.Duration {
	if g.upstreamExit() == wire.ExitEdge {
		return g.cfg.EdgeTimeout
	}
	return g.cfg.CloudTimeout
}

// uploadCategory names the Meter bucket for relayed device features.
func (g *Gateway) uploadCategory() string {
	if g.upstreamExit() == wire.ExitEdge {
		return "edge-upload"
	}
	return "cloud-upload"
}

// WireBytesUp returns the total bytes the gateway has received on all
// device uplinks (the device→gateway direction: summaries and feature
// uploads), including protocol framing.
func (g *Gateway) WireBytesUp() int64 {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	var t int64
	for _, c := range g.wireConns {
		if c != nil {
			t += c.BytesRead() // device→gateway direction
		}
	}
	return t
}

// WireBytesDown returns the total bytes the gateway has written to all
// device links (the gateway→device direction: capture and feature
// requests), including protocol framing.
func (g *Gateway) WireBytesDown() int64 {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	var t int64
	for _, c := range g.wireConns {
		if c != nil {
			t += c.BytesWritten() // gateway→device direction
		}
	}
	return t
}

// capReply carries one device's response to a capture request.
type capReply struct {
	device  int
	probs   []float32
	timeout bool
	err     error // session-fatal (context) error
}

// Classify runs the full staged inference of §III-D for one sample as an
// independent session. It honors ctx cancellation and deadlines at every
// stage; on cancellation the error wraps ErrCanceled (or
// ErrDeadlineExceeded) as well as the context error.
func (g *Gateway) Classify(ctx context.Context, sampleID uint64) (*Result, error) {
	return g.classify(ctx, sampleID, g.pipeline)
}

// ClassifyShed is Classify over the pipeline tightened for a shed level:
// the session answers at a cheaper exit than the configured thresholds
// would pick, trading answer quality for upstream-tier load. Results are
// produced by exactly the same staged computation — only the exit
// decision moves.
func (g *Gateway) ClassifyShed(ctx context.Context, sampleID uint64, level ShedLevel) (*Result, error) {
	return g.classify(ctx, sampleID, g.pipeline.Shed(level))
}

// ClassifyTenantShed is ClassifyShed under a tenant's exit-threshold
// pipeline: the tenant resolved at admission (from the auth identity)
// selects the thresholds, then the shed level tightens them. Unknown
// tenants run the gateway default pipeline.
func (g *Gateway) ClassifyTenantShed(ctx context.Context, sampleID uint64, tenant string, level ShedLevel) (*Result, error) {
	return g.classify(ctx, sampleID, g.TenantPipeline(tenant).Shed(level))
}

// classify runs one session over an explicit exit pipeline (the
// configured one, or a per-request shed override).
func (g *Gateway) classify(ctx context.Context, sampleID uint64, pipeline Pipeline) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	sid := g.nextSession.Add(1)
	start := time.Now()

	// Pin the session to the model version active right now and stamp
	// that concrete version (never the 0 sentinel) into every frame: all
	// hops of this session compute on the same weights even while a
	// rolling reload flips the fleet's active pointers one replica at a
	// time.
	model, mv, _ := g.reg.resolve(0)
	classes := model.Cfg.Classes

	// Pin the session to the membership and config version current right
	// now: devices joining or leaving mid-session cannot change which
	// links this session fans out to.
	snap := g.snapshotMembers()

	// Stage 1: every live device processes its frame and sends its summary
	// to the local aggregator.
	replies := make(chan capReply, len(snap.links))
	inFlight := 0
	for d, l := range snap.links {
		if l == nil {
			continue
		}
		inFlight++
		go g.captureFrom(ctx, d, l, sid, sampleID, mv, replies)
	}
	exitVecs := make([]*tensor.Tensor, len(g.devices))
	present := make([]bool, len(g.devices))
	for d := range exitVecs {
		exitVecs[d] = tensor.New(1, classes)
	}
	for i := 0; i < inFlight; i++ {
		r := <-replies
		if r.err != nil {
			return nil, r.err
		}
		if r.timeout {
			g.recordTimeout(r.device, snap.links[r.device])
			continue
		}
		g.recordSuccess(r.device, snap.links[r.device])
		if r.probs == nil {
			continue // device had no frame (object absent / feed error)
		}
		copy(exitVecs[r.device].Row(0), r.probs)
		present[r.device] = true
		g.Meter.Add("local-summary", int64(wire.SummaryPayloadBytes(classes)))
	}

	anyPresent := false
	for _, p := range present {
		anyPresent = anyPresent || p
	}
	if !anyPresent {
		return nil, fmt.Errorf("cluster: sample %d: %w", sampleID, ErrNoSummaries)
	}

	// Stage 2: aggregate and decide the pipeline's first exit.
	logits := model.LocalAggregate(exitVecs, present)
	probs := nn.Softmax(logits)
	row := make([]float32, classes)
	copy(row, probs.Row(0))
	entropy := nn.NormalizedEntropy(row)
	g.instr.observeStage(wire.ExitLocal, time.Since(start))
	if entropy <= pipeline[0].Threshold {
		res := &Result{
			SampleID:      sampleID,
			Class:         probs.ArgMaxRow(0),
			Exit:          wire.ExitLocal,
			Probs:         row,
			Entropy:       entropy,
			Present:       present,
			ConfigVersion: snap.version,
			ModelVersion:  mv,
			Latency:       time.Since(start),
		}
		g.instr.observeExit(res.Exit, res.Latency)
		return res, nil
	}

	// Stage 3: the local exit is not confident; fetch binarized features
	// from present devices and escalate to the next tier up.
	escStart := time.Now()
	res, err := g.escalate(ctx, snap, sid, sampleID, mv, model, present, pipeline)
	if err != nil {
		return nil, err
	}
	g.instr.observeStage(g.upstreamExit(), time.Since(escStart))
	res.Entropy = entropy
	res.Present = present
	res.ConfigVersion = snap.version
	res.ModelVersion = mv
	res.Latency = time.Since(start)
	g.instr.observeExit(res.Exit, res.Latency)
	return res, nil
}

func (g *Gateway) captureFrom(ctx context.Context, device int, l *link, sid, sampleID, mv uint64, replies chan<- capReply) {
	msg, err := l.request(ctx, sid, &wire.CaptureRequest{Session: sid, SampleID: sampleID, ModelVersion: mv}, g.cfg.DeviceTimeout)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			replies <- capReply{device: device, err: ctxErr(cerr)}
			return
		}
		replies <- capReply{device: device, timeout: true}
		return
	}
	switch m := msg.(type) {
	case *wire.LocalSummary:
		replies <- capReply{device: device, probs: m.Probs}
	case *wire.Error:
		if m.Code == 426 {
			// The device's registry no longer holds the session's pinned
			// version; degrading to "absent frame" would silently answer
			// on fewer devices, so the session fails typed instead.
			replies <- capReply{device: device, err: fmt.Errorf("cluster: device %d: %w", device, ErrModelVersionUnknown)}
			return
		}
		replies <- capReply{device: device} // absent frame
	default:
		replies <- capReply{device: device, timeout: true}
	}
}

// escalate fetches feature maps from present devices and relays them to
// the next tier of the pipeline — an edge replica, which answers
// confident samples itself and forwards the rest to the cloud, or a
// cloud replica directly in a two-tier hierarchy. The replica pool picks
// the least-loaded healthy replica and retries on another if the chosen
// one dies mid-session. The relayed thresholds come from the session's
// pipeline, so per-request shed overrides reach the upper tiers.
func (g *Gateway) escalate(ctx context.Context, snap memberSnapshot, sid, sampleID, mv uint64, model *core.Model, present []bool, pipeline Pipeline) (*Result, error) {
	if g.upstream.Down() {
		return nil, fmt.Errorf("cluster: sample %d: %w: %w", sampleID, g.upstreamSentinel(), ErrNoHealthyReplica)
	}
	type upload struct {
		device int
		msg    *wire.FeatureUpload
		err    error
	}
	uploads := make(chan upload, len(snap.links))
	inFlight := 0
	for d, p := range present {
		if !p {
			continue
		}
		inFlight++
		go func(device int, l *link) {
			m, err := g.fetchFeatures(ctx, device, l, sid, sampleID, mv)
			uploads <- upload{device: device, msg: m, err: err}
		}(d, snap.links[d])
	}
	var collected []*wire.FeatureUpload
	var mask uint16
	for i := 0; i < inFlight; i++ {
		u := <-uploads
		if u.err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, ctxErr(cerr)
			}
			if errors.Is(u.err, ErrModelVersionUnknown) {
				return nil, fmt.Errorf("cluster: sample %d: %w", sampleID, u.err)
			}
			// The device answered the capture but died before the feature
			// upload; degrade to the remaining devices.
			g.logger.Warn("feature fetch failed", "device", u.device, "err", u.err)
			present[u.device] = false
			continue
		}
		collected = append(collected, u.msg)
		mask |= 1 << uint(u.device)
		g.Meter.Add(g.uploadCategory(), int64(len(u.msg.Bits)))
	}
	if len(collected) == 0 {
		return nil, fmt.Errorf("cluster: no features collected for sample %d: %w", sampleID, ErrNoSummaries)
	}

	// Relay the session header and all uploads as one atomic batch to a
	// pool-scheduled replica, then wait for this session's verdict on
	// that replica's link. The header names the escalation target: the
	// edge tier consumes its own threshold from the relayed pipeline and
	// forwards the rest, while a two-tier cloud classifies
	// unconditionally. Because the frames carry the session's complete
	// feature payload, the pool can re-send them verbatim to a different
	// replica if the first one dies mid-session.
	sentinel := g.upstreamSentinel()
	timeout := g.upstreamTimeout()
	frames := make([]wire.Message, 0, len(collected)+1)
	if g.upstreamExit() == wire.ExitEdge {
		frames = append(frames, &wire.EdgeClassify{
			Session:      sid,
			SampleID:     sampleID,
			ModelVersion: mv,
			Devices:      uint16(model.Cfg.Devices),
			Mask:         mask,
			Thresholds:   pipeline.RelayThresholds(),
		})
	} else {
		frames = append(frames, &wire.CloudClassify{
			Session:      sid,
			SampleID:     sampleID,
			ModelVersion: mv,
			Devices:      uint16(model.Cfg.Devices),
			Mask:         mask,
		})
	}
	for _, up := range collected {
		up.Session = sid
		frames = append(frames, up)
	}
	msg, err := g.upstream.relay(ctx, sid, timeout, frames...)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, ctxErr(cerr)
		}
		return nil, fmt.Errorf("cluster: %w: %w", sentinel, err)
	}
	cr, ok := msg.(*wire.ClassifyResult)
	if !ok {
		if e, isErr := msg.(*wire.Error); isErr {
			if e.Code == 503 {
				// The edge reached its own exit but the tier above it
				// did not answer.
				return nil, fmt.Errorf("cluster: %w: %v tier: %s", ErrCloudUnavailable, g.upstreamExit(), e.Msg)
			}
			if e.Code == 426 {
				return nil, fmt.Errorf("cluster: %w: %v tier: %s", ErrModelVersionUnknown, g.upstreamExit(), e.Msg)
			}
			return nil, fmt.Errorf("cluster: %w: %v error %d: %s", sentinel, g.upstreamExit(), e.Code, e.Msg)
		}
		return nil, fmt.Errorf("cluster: expected ClassifyResult, got %v", msg.MsgType())
	}
	if cr.SampleID != sampleID {
		return nil, fmt.Errorf("cluster: %v tier answered sample %d inside session for sample %d", g.upstreamExit(), cr.SampleID, sampleID)
	}
	return &Result{
		SampleID: sampleID,
		Class:    int(cr.Class),
		Exit:     cr.Exit,
		Probs:    cr.Probs,
	}, nil
}

func (g *Gateway) fetchFeatures(ctx context.Context, device int, l *link, sid, sampleID, mv uint64) (*wire.FeatureUpload, error) {
	msg, err := l.request(ctx, sid, &wire.FeatureRequest{Session: sid, SampleID: sampleID, ModelVersion: mv}, g.cfg.DeviceTimeout)
	if err != nil {
		return nil, err
	}
	switch m := msg.(type) {
	case *wire.FeatureUpload:
		return m, nil
	case *wire.Error:
		if m.Code == 426 {
			return nil, fmt.Errorf("cluster: device %d: %w", device, ErrModelVersionUnknown)
		}
		return nil, fmt.Errorf("cluster: device %d: %s", device, m.Msg)
	default:
		return nil, fmt.Errorf("cluster: expected FeatureUpload, got %v", msg.MsgType())
	}
}

// recordTimeout counts a consecutive miss and applies sticky marking.
// The session's snapshot link guards against membership churn: a
// timeout observed on a link that has since been replaced (the slot
// re-registered or left) must not count against the slot's current
// occupant.
func (g *Gateway) recordTimeout(device int, l *link) {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	dl := g.devices[device]
	if dl.link != l {
		return // stale observation from before a membership change
	}
	dl.failures++
	if g.cfg.MaxFailures > 0 && dl.failures >= g.cfg.MaxFailures && !dl.down {
		g.logger.Warn("device marked down", "device", device, "consecutive_timeouts", dl.failures)
		dl.down = true
	}
}

// recordSuccess resets the consecutive-miss counter; stale observations
// from before a membership change are dropped (see recordTimeout).
func (g *Gateway) recordSuccess(device int, l *link) {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	dl := g.devices[device]
	if dl.link != l {
		return
	}
	dl.failures = 0
}

// DownDevices returns the indices of devices currently marked down by
// sticky failure detection.
func (g *Gateway) DownDevices() []int {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	var out []int
	for _, dl := range g.devices {
		if dl.down {
			out = append(out, dl.index)
		}
	}
	return out
}

// UpstreamDown reports whether no replica of the next tier up (edge or
// cloud) can currently serve — every replica is fenced by the health
// monitor or by in-session failure detection, and none is eligible for
// a trial. Escalations then fail fast with the tier's typed error
// wrapping ErrNoHealthyReplica instead of waiting out the timeout.
func (g *Gateway) UpstreamDown() bool { return g.upstream.Down() }

// setUpstreamReplicaDown flips one upstream replica's availability from
// the failure detector.
func (g *Gateway) setUpstreamReplicaDown(replica int, down bool) {
	g.upstream.setDown(replica, down)
}

// Close tears down all connections, including the registration plane
// when one is serving.
func (g *Gateway) Close() error {
	g.closeRegistration()
	g.stateMu.Lock()
	g.closed = true
	var links []*link
	for _, dl := range g.devices {
		if dl.link != nil {
			links = append(links, dl.link)
			dl.link = nil
		}
	}
	g.stateMu.Unlock()
	for _, l := range links {
		l.close()
	}
	if g.upstream != nil {
		g.upstream.close()
	}
	return nil
}
