package cluster

import (
	"context"
	"sync"
	"time"

	"github.com/ddnn/ddnn-go/internal/wire"
)

// DefaultMaxLinger is how long the collector holds a partial batch open
// waiting for more Classify calls before flushing it.
const DefaultMaxLinger = 2 * time.Millisecond

// DefaultMaxBatch is a sensible micro-batch cap for callers that enable
// batching without picking a size (the public facade option and the CLI
// -batch flags default to it). It is small enough that one batch's
// frames stay far under wire.MaxPayload while amortizing most of the
// per-session overhead.
const DefaultMaxBatch = 32

// BatchConfig tunes the engine's adaptive micro-batching: concurrent
// Classify calls coalesce into one multi-sample session per tier, so
// wire framing, im2col/conv dispatch and semaphore round trips amortize
// across the batch. Batching trades a bounded amount of added latency
// (at most MaxLinger on an idle engine) for substantially higher
// throughput under load; results are bit-identical to per-sample
// sessions.
type BatchConfig struct {
	// MaxBatch caps the samples coalesced into one session. 0 and 1
	// disable micro-batching; values above wire.MaxBatch (the largest
	// batch one wire frame can carry) are clamped to it.
	MaxBatch int
	// MaxLinger bounds how long a partial batch waits for more callers
	// before flushing. Zero means DefaultMaxLinger.
	MaxLinger time.Duration
}

// enabled reports whether the config actually coalesces sessions.
func (c BatchConfig) enabled() bool { return c.MaxBatch > 1 }

// linger returns the effective linger bound.
func (c BatchConfig) linger() time.Duration {
	if c.MaxLinger <= 0 {
		return DefaultMaxLinger
	}
	return c.MaxLinger
}

// batchOutcome is one caller's share of a flushed batch session.
type batchOutcome struct {
	res *Result
	err error
}

// batchItem is one queued Classify call.
type batchItem struct {
	id uint64
	ch chan batchOutcome
}

// laneKey identifies one coalescing lane: requests may only share a
// batch when they run the same exit pipeline, which is determined by
// the tenant (whose config picks the thresholds) and the shed level
// (which tightens them).
type laneKey struct {
	tenant string
	level  ShedLevel
}

// batchLane is one {tenant, shed level} pair's pending batch. Lanes
// exist because a coalesced session runs every sample over one exit
// pipeline: requests admitted at different shed levels — or for
// different tenants — must never share a batch, or a request would
// silently inherit another policy's pipeline.
type batchLane struct {
	key     laneKey
	pending []batchItem
	timer   *time.Timer
	// gen identifies the batch the armed timer belongs to; it advances
	// whenever the pending batch is taken, so a linger callback that
	// lost the race with a full-batch flush recognizes its batch is
	// gone and must not flush the successor early.
	gen uint64
}

// batchCollector coalesces concurrent Classify calls into multi-sample
// gateway sessions, one lane per {tenant, shed level}: a lane's batch
// flushes as soon as it reaches maxBatch samples, or maxLinger after
// its first sample arrived, whichever comes first. Callers that cancel
// while waiting detach immediately (the batch still classifies their
// sample; the result is dropped).
type batchCollector struct {
	eng      *Engine
	maxBatch int
	linger   time.Duration

	mu      sync.Mutex
	lanes   map[laneKey]*batchLane
	stopped bool
}

func newBatchCollector(e *Engine, cfg BatchConfig) *batchCollector {
	maxBatch := cfg.MaxBatch
	if maxBatch > wire.MaxBatch {
		maxBatch = wire.MaxBatch
	}
	return &batchCollector{
		eng:      e,
		maxBatch: maxBatch,
		linger:   cfg.linger(),
		lanes:    make(map[laneKey]*batchLane),
	}
}

// classify queues the sample on the {tenant, shed level} lane's current
// batch and waits for its verdict. The context governs only this
// caller's wait: the coalesced session itself is bounded by the
// gateway's per-stage timeouts, so one impatient caller cannot cancel a
// batch other callers share.
func (c *batchCollector) classify(ctx context.Context, sampleID uint64, tenant string, level ShedLevel) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	key := laneKey{tenant: tenant, level: level}
	item := batchItem{id: sampleID, ch: make(chan batchOutcome, 1)}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	lane := c.lanes[key]
	if lane == nil {
		lane = &batchLane{key: key}
		c.lanes[key] = lane
	}
	lane.pending = append(lane.pending, item)
	if len(lane.pending) >= c.maxBatch {
		batch := c.takeLocked(lane)
		c.mu.Unlock()
		c.flush(batch, key)
	} else {
		if lane.timer == nil {
			gen := lane.gen
			lane.timer = time.AfterFunc(c.linger, func() { c.flushAfterLinger(key, gen) })
		}
		c.mu.Unlock()
	}
	select {
	case out := <-item.ch:
		return out.res, out.err
	case <-ctx.Done():
		return nil, ctxErr(ctx.Err())
	}
}

// takeLocked detaches the lane's pending batch and advances its
// generation; the caller must hold c.mu.
func (c *batchCollector) takeLocked(lane *batchLane) []batchItem {
	batch := lane.pending
	lane.pending = nil
	lane.gen++
	if lane.timer != nil {
		lane.timer.Stop()
		lane.timer = nil
	}
	return batch
}

// flushAfterLinger is the linger-timer callback for the batch of
// generation gen on one lane. If that batch was already flushed (full,
// or taken by stop) the callback is stale and must leave the successor
// batch — and its own fresh timer — alone.
func (c *batchCollector) flushAfterLinger(key laneKey, gen uint64) {
	c.mu.Lock()
	lane := c.lanes[key]
	if lane == nil || lane.gen != gen {
		c.mu.Unlock()
		return
	}
	batch := c.takeLocked(lane)
	c.mu.Unlock()
	c.flush(batch, key)
}

// flush launches one multi-sample session for the batch under its
// lane's tenant pipeline and shed level. The session is registered with
// the engine's WaitGroup before flush returns, so Engine.Close cannot
// complete while a flushed batch is starting.
func (c *batchCollector) flush(batch []batchItem, key laneKey) {
	if len(batch) == 0 {
		return
	}
	if err := c.eng.beginSession(); err != nil {
		for _, item := range batch {
			item.ch <- batchOutcome{err: err}
		}
		return
	}
	go func() {
		defer c.eng.endSession()
		c.eng.sem <- struct{}{}
		defer func() { <-c.eng.sem }()
		ids := make([]uint64, len(batch))
		for i, item := range batch {
			ids[i] = item.id
		}
		results, err := c.eng.gw.ClassifyBatchTenantShed(context.Background(), ids, key.tenant, key.level)
		for i, item := range batch {
			out := batchOutcome{err: err}
			if i < len(results) && results[i] != nil {
				out = batchOutcome{res: results[i]}
			} else if out.err == nil {
				out.err = ErrNoSummaries
			}
			item.ch <- out
		}
	}()
}

// stop rejects new callers and flushes whatever is pending on every
// lane. It is called by Engine.Close before the close flag flips, so
// the final batches still run and queued callers get real results.
func (c *batchCollector) stop() {
	c.mu.Lock()
	c.stopped = true
	type takenBatch struct {
		items []batchItem
		key   laneKey
	}
	var taken []takenBatch
	for key, lane := range c.lanes {
		taken = append(taken, takenBatch{items: c.takeLocked(lane), key: key})
	}
	c.mu.Unlock()
	for _, t := range taken {
		c.flush(t.items, t.key)
	}
}
