package cluster

import (
	"context"
	"fmt"
	"sync"

	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// uploadIDBase marks the sample-ID space reserved for caller-uploaded
// samples: dataset samples are small indices, uploads set the top bit.
// Devices route IDs at or above the base to the shared upload store
// instead of their dataset feed.
const uploadIDBase = uint64(1) << 63

// uploadStore holds caller-uploaded multi-view samples for the duration
// of their classification session. It is shared by every in-process
// device node of a Sim, which is what lets an HTTP front door accept a
// raw tensor body: the uploaded views are staged here under a fresh
// sample ID, the session runs the normal staged pipeline against that
// ID, and the entry is removed when the session settles.
type uploadStore struct {
	mu      sync.Mutex
	nextID  uint64
	samples map[uint64][]*tensor.Tensor
}

func newUploadStore() *uploadStore {
	return &uploadStore{samples: make(map[uint64][]*tensor.Tensor)}
}

// add stages one uploaded sample (one [1, C, H, W] view per device) and
// returns its session-scoped sample ID.
func (s *uploadStore) add(views []*tensor.Tensor) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := uploadIDBase | s.nextID
	s.nextID++
	s.samples[id] = views
	return id
}

// view returns one device's view of a staged upload.
func (s *uploadStore) view(device int, id uint64) (*tensor.Tensor, error) {
	s.mu.Lock()
	views := s.samples[id]
	s.mu.Unlock()
	if views == nil {
		return nil, fmt.Errorf("cluster: upload %d not staged", id)
	}
	if device < 0 || device >= len(views) {
		return nil, fmt.Errorf("cluster: upload %d has no view for device %d", id, device)
	}
	return views[device], nil
}

// remove drops a staged upload once its session settled.
func (s *uploadStore) remove(id uint64) {
	s.mu.Lock()
	delete(s.samples, id)
	s.mu.Unlock()
}

// uploadFeed routes upload-space sample IDs to the shared store and
// everything else to the device's base feed.
func uploadFeed(store *uploadStore, base Feed, device int) Feed {
	return func(sampleID uint64) (*tensor.Tensor, error) {
		if sampleID >= uploadIDBase {
			return store.view(device, sampleID)
		}
		return base(sampleID)
	}
}

// ClassifyUpload classifies one caller-supplied sample instead of a
// dataset index: views holds one [1, C, H, W] sensor view per device
// (dataset.ImageC × ImageH × ImageW). The sample is staged in the
// cluster's shared upload store under a fresh ID, classified by the
// normal staged session (including micro-batching and the shed level's
// pipeline), and unstaged when the session settles; the returned
// Result.SampleID is the transient upload ID. Only in-process engines
// (NewEngine) support uploads — an engine attached to remote nodes
// returns ErrUploadUnsupported, since its devices own their sensors.
func (e *Engine) ClassifyUpload(ctx context.Context, views []*tensor.Tensor, level ShedLevel) (*Result, error) {
	if e.sim == nil || e.sim.uploads == nil {
		return nil, ErrUploadUnsupported
	}
	if len(views) != e.gw.model.Cfg.Devices {
		return nil, fmt.Errorf("cluster: upload has %d views, model has %d devices", len(views), e.gw.model.Cfg.Devices)
	}
	for d, v := range views {
		if v == nil || v.Dims() != 4 || v.Dim(0) != 1 || v.Dim(1) != dataset.ImageC || v.Dim(2) != dataset.ImageH || v.Dim(3) != dataset.ImageW {
			return nil, fmt.Errorf("cluster: upload view %d must be [1, %d, %d, %d]", d, dataset.ImageC, dataset.ImageH, dataset.ImageW)
		}
	}
	id := e.sim.uploads.add(views)
	defer e.sim.uploads.remove(id)
	return e.ClassifyShed(ctx, id, level)
}
