package cluster

import (
	"context"
	"testing"
	"time"

	"github.com/ddnn/ddnn-go/internal/transport"
)

// waitHealthy polls the pool until n replicas are healthy or the
// deadline passes.
func waitHealthy(t *testing.T, gw *Gateway, n int, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if gw.Upstream().Healthy() >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("pool never recovered to %d healthy replicas (have %d)", n, gw.Upstream().Healthy())
}

// TestCloudReplicaRestart hard-restarts a cloud replica (listener and
// links die, then a fresh node serves the same address) and checks that
// escalations keep answering bit-identically through the failover and
// that the pool re-admits the reborn replica.
func TestCloudReplicaRestart(t *testing.T) {
	model, test := fixture(t)
	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = 0 // force every sample through the cloud
	gcfg.CloudTimeout = 2 * time.Second
	sim, err := NewReplicatedSim(model, test, gcfg, Topology{CloudReplicas: 2}, transport.NewMem(), quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	ref := model.Evaluate(test, nil, 32)
	ctx := context.Background()

	check := func(id int) {
		t.Helper()
		res, err := sim.Gateway.Classify(ctx, uint64(id))
		if err != nil {
			t.Fatalf("sample %d: %v", id, err)
		}
		if want := argmaxRow(ref.CloudProbs[id]); res.Class != want {
			t.Fatalf("sample %d: class %d, staged reference says %d", id, res.Class, want)
		}
	}
	check(0)

	old := sim.CloudReplica(0)
	if err := sim.RestartCloud(0); err != nil {
		t.Fatal(err)
	}
	if sim.CloudReplica(0) == old {
		t.Fatal("restart kept the old node")
	}
	// Sessions right after the restart fail over to replica 1 and stay
	// bit-identical.
	for id := 1; id < 6; id++ {
		check(id)
	}
	// The reborn replica is re-admitted (trial session re-dial after the
	// fencing cooldown) and serves again.
	waitHealthy(t, sim.Gateway, 2, 5*time.Second)
	check(6)
}

// TestEdgeReplicaRestart is the edge-tier variant: the replacement edge
// node is rewired to the cloud pool before the old one dies.
func TestEdgeReplicaRestart(t *testing.T) {
	model, test := edgeFixture(t)
	gcfg := DefaultGatewayConfig()
	gcfg.Threshold = 0 // force escalation to the edge tier
	sim, err := NewReplicatedSim(model, test, gcfg, Topology{EdgeReplicas: 2, CloudReplicas: 1}, transport.NewMem(), quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	ctx := context.Background()

	classify := func(id int) {
		t.Helper()
		res, err := sim.Gateway.Classify(ctx, uint64(id))
		if err != nil {
			t.Fatalf("sample %d: %v", id, err)
		}
		if res.Class < 0 {
			t.Fatalf("sample %d: class %d", id, res.Class)
		}
	}
	classify(0)
	old := sim.EdgeReplica(1)
	if err := sim.RestartEdge(1); err != nil {
		t.Fatal(err)
	}
	if sim.EdgeReplica(1) == old {
		t.Fatal("restart kept the old node")
	}
	for id := 1; id < 6; id++ {
		classify(id)
	}
	waitHealthy(t, sim.Gateway, 2, 5*time.Second)
}
