package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// batchCapReply carries one device's response to a batched capture
// request: per-sample presence plus the present samples' summary rows.
type batchCapReply struct {
	device  int
	present []bool
	probs   []float32 // popcount(present) rows of classes values
	timeout bool
	err     error // session-fatal (context) error
}

// ClassifyBatch runs the full staged inference of §III-D for a whole
// micro-batch as one session: one capture round trip per device, one
// aggregated forward pass per device-mask group, and — for the samples
// that miss the local exit — one batched escalation carrying only the
// hard remainder upstream. Decisions and probabilities are bit-identical
// to per-sample Classify: every stage processes samples row-wise, so
// batching changes wire framing and dispatch overhead, never results.
//
// The returned slice always has len(sampleIDs) entries in input order.
// When some samples fail (e.g. no device produced a summary for them, or
// the upstream tier was unreachable) their entries are nil and the first
// such failure is returned alongside the successful results.
func (g *Gateway) ClassifyBatch(ctx context.Context, sampleIDs []uint64) ([]*Result, error) {
	return g.classifyBatch(ctx, sampleIDs, g.pipeline)
}

// ClassifyBatchShed is ClassifyBatch over the pipeline tightened for a
// shed level; see Gateway.ClassifyShed.
func (g *Gateway) ClassifyBatchShed(ctx context.Context, sampleIDs []uint64, level ShedLevel) ([]*Result, error) {
	return g.classifyBatch(ctx, sampleIDs, g.pipeline.Shed(level))
}

// ClassifyBatchTenantShed is ClassifyBatch under a tenant's
// exit-threshold pipeline tightened for a shed level; see
// Gateway.ClassifyTenantShed.
func (g *Gateway) ClassifyBatchTenantShed(ctx context.Context, sampleIDs []uint64, tenant string, level ShedLevel) ([]*Result, error) {
	return g.classifyBatch(ctx, sampleIDs, g.TenantPipeline(tenant).Shed(level))
}

// classifyBatch runs one multi-sample session over an explicit exit
// pipeline (the configured one, or a per-request shed override).
func (g *Gateway) classifyBatch(ctx context.Context, sampleIDs []uint64, pipeline Pipeline) ([]*Result, error) {
	n := len(sampleIDs)
	if n == 0 {
		return nil, nil
	}
	if n > wire.MaxBatch {
		return nil, fmt.Errorf("cluster: batch of %d samples exceeds wire.MaxBatch (%d)", n, wire.MaxBatch)
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	sid := g.nextSession.Add(1)
	start := time.Now()

	// Pin the session to the active model version (see Gateway.classify):
	// every sample of the batch, on every hop, computes on these weights.
	model, mv, _ := g.reg.resolve(0)
	classes := model.Cfg.Classes

	// Pin the session to the membership and config version current right
	// now (see Gateway.classify); every sample of the batch completes
	// under this one snapshot.
	snap := g.snapshotMembers()

	// Stage 1: every live device processes the whole batch in one forward
	// pass and sends a single summary frame.
	replies := make(chan batchCapReply, len(snap.links))
	inFlight := 0
	for d, l := range snap.links {
		if l == nil {
			continue
		}
		inFlight++
		go g.captureBatchFrom(ctx, d, l, sid, mv, sampleIDs, replies)
	}
	exitVecs := make([]*tensor.Tensor, len(g.devices))
	for d := range exitVecs {
		exitVecs[d] = tensor.New(n, classes)
	}
	present := make([][]bool, n) // per sample, per device
	for i := range present {
		present[i] = make([]bool, len(g.devices))
	}
	for i := 0; i < inFlight; i++ {
		r := <-replies
		if r.err != nil {
			return nil, r.err
		}
		if r.timeout {
			g.recordTimeout(r.device, snap.links[r.device])
			continue
		}
		g.recordSuccess(r.device, snap.links[r.device])
		row := 0
		for s := 0; s < n; s++ {
			if !r.present[s] {
				continue
			}
			copy(exitVecs[r.device].Row(s), r.probs[row*classes:(row+1)*classes])
			row++
			present[s][r.device] = true
			g.Meter.Add("local-summary", int64(wire.SummaryPayloadBytes(classes)))
		}
	}

	// Stage 2: aggregate and decide the first exit. Samples sharing a
	// device-presence mask aggregate in one masked forward pass, which is
	// the common whole-batch case when every device is up.
	results := make([]*Result, n)
	entropies := make([]float64, n)
	masks := make([]uint16, n)
	var firstErr error
	var escalate []int
	for i := range present {
		masks[i] = maskOf(present[i])
	}
	defer func() {
		// One exit observation per classified sample, after the session
		// settles (local exits and escalated verdicts alike).
		for _, r := range results {
			if r != nil {
				g.instr.observeExit(r.Exit, r.Latency)
			}
		}
	}()
	for _, grp := range groupByMask(masks, len(g.devices)) {
		if grp.mask == 0 {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: sample %d: %w", sampleIDs[grp.indices[0]], ErrNoSummaries)
			}
			continue
		}
		vecs := make([]*tensor.Tensor, len(g.devices))
		for d := range vecs {
			vecs[d] = exitVecs[d].SelectSamples(grp.indices)
		}
		logits := model.LocalAggregate(vecs, grp.present)
		probs := nn.Softmax(logits)
		for k, idx := range grp.indices {
			row := make([]float32, classes)
			copy(row, probs.Row(k))
			entropy := nn.NormalizedEntropy(row)
			entropies[idx] = entropy
			if entropy <= pipeline[0].Threshold {
				results[idx] = &Result{
					SampleID:      sampleIDs[idx],
					Class:         probs.ArgMaxRow(k),
					Exit:          wire.ExitLocal,
					Probs:         row,
					Entropy:       entropy,
					Present:       present[idx],
					ConfigVersion: snap.version,
					ModelVersion:  mv,
					Latency:       time.Since(start),
				}
			} else {
				escalate = append(escalate, idx)
			}
		}
	}
	g.instr.observeStage(wire.ExitLocal, time.Since(start))
	if len(escalate) == 0 {
		return results, firstErr
	}

	// Stage 3: the hard remainder — and only it — rides upstream as one
	// batched escalation (the paper's staged partial exit, batched).
	escStart := time.Now()
	err := g.escalateBatch(ctx, snap, sid, mv, model, sampleIDs, escalate, present, masks, entropies, results, start, pipeline)
	if err == nil {
		g.instr.observeStage(g.upstreamExit(), time.Since(escStart))
	}
	if err != nil && firstErr == nil {
		firstErr = err
	}
	return results, firstErr
}

func (g *Gateway) captureBatchFrom(ctx context.Context, device int, l *link, sid, mv uint64, sampleIDs []uint64, replies chan<- batchCapReply) {
	msg, err := l.request(ctx, sid, &wire.CaptureBatch{Session: sid, ModelVersion: mv, SampleIDs: sampleIDs}, g.cfg.DeviceTimeout)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			replies <- batchCapReply{device: device, err: ctxErr(cerr)}
			return
		}
		replies <- batchCapReply{device: device, timeout: true}
		return
	}
	switch m := msg.(type) {
	case *wire.SummaryBatch:
		if int(m.Count) != len(sampleIDs) || int(m.Classes) != g.model.Cfg.Classes {
			replies <- batchCapReply{device: device, timeout: true}
			return
		}
		replies <- batchCapReply{
			device:  device,
			present: wire.UnpackPresent(m.Present, len(sampleIDs)),
			probs:   m.Probs,
		}
	case *wire.Error:
		if m.Code == 426 {
			// See Gateway.captureFrom: a missing pinned version is a typed
			// session failure, not a silent absent frame.
			replies <- batchCapReply{device: device, err: fmt.Errorf("cluster: device %d: %w", device, ErrModelVersionUnknown)}
			return
		}
		// The device had no frame for any sample (feed failure).
		replies <- batchCapReply{device: device, present: make([]bool, len(sampleIDs))}
	default:
		replies <- batchCapReply{device: device, timeout: true}
	}
}

// escalateBatch fetches the escalating samples' feature maps from the
// devices that cover them — each device packs its whole subset into one
// frame — and relays them with a batched classify header to a
// pool-scheduled replica of the next tier, filling results for every
// escalating index from the returned ResultBatch. If the replica dies
// mid-session the whole batch is retried on another replica.
func (g *Gateway) escalateBatch(ctx context.Context, snap memberSnapshot, sid, mv uint64, model *core.Model, sampleIDs []uint64, escalate []int, present [][]bool, masks []uint16, entropies []float64, results []*Result, start time.Time, pipeline Pipeline) error {
	sentinel := g.upstreamSentinel()
	if g.upstream.Down() {
		return fmt.Errorf("cluster: batch of %d samples: %w: %w", len(escalate), sentinel, ErrNoHealthyReplica)
	}

	// Which escalating samples does each device cover?
	covered := make([][]int, len(g.devices)) // device → escalate positions
	for k, idx := range escalate {
		for d, p := range present[idx] {
			if p {
				covered[d] = append(covered[d], k)
			}
		}
	}
	type fetchReply struct {
		device int
		fb     *wire.FeatureBatch
		err    error
	}
	fetches := make(chan fetchReply, len(g.devices))
	inFlight := 0
	for d, ks := range covered {
		if len(ks) == 0 {
			continue
		}
		inFlight++
		ids := make([]uint64, len(ks))
		for i, k := range ks {
			ids[i] = sampleIDs[escalate[k]]
		}
		go func(device int, l *link, ids []uint64) {
			msg, err := l.request(ctx, sid, &wire.FeatureBatchRequest{Session: sid, ModelVersion: mv, SampleIDs: ids}, g.cfg.DeviceTimeout)
			if err != nil {
				fetches <- fetchReply{device: device, err: err}
				return
			}
			switch m := msg.(type) {
			case *wire.FeatureBatch:
				if int(m.Count) != len(ids) {
					fetches <- fetchReply{device: device, err: fmt.Errorf("cluster: device %d sent %d feature maps, want %d", device, m.Count, len(ids))}
					return
				}
				fetches <- fetchReply{device: device, fb: m}
			case *wire.Error:
				if m.Code == 426 {
					fetches <- fetchReply{device: device, err: fmt.Errorf("cluster: device %d: %w", device, ErrModelVersionUnknown)}
					return
				}
				fetches <- fetchReply{device: device, err: fmt.Errorf("cluster: device %d: %s", device, m.Msg)}
			default:
				fetches <- fetchReply{device: device, err: fmt.Errorf("cluster: expected FeatureBatch, got %v", msg.MsgType())}
			}
		}(d, snap.links[d], ids)
	}
	var frames []wire.Message
	for i := 0; i < inFlight; i++ {
		f := <-fetches
		if f.err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return ctxErr(cerr)
			}
			if errors.Is(f.err, ErrModelVersionUnknown) {
				return fmt.Errorf("cluster: batch of %d samples: %w", len(escalate), f.err)
			}
			// The device answered the capture but died before the feature
			// fetch; degrade to the remaining devices for the whole batch.
			g.logger.Warn("batch feature fetch failed", "device", f.device, "err", f.err)
			for _, idx := range escalate {
				present[idx][f.device] = false
				masks[idx] = maskOf(present[idx])
			}
			continue
		}
		f.fb.Session = sid
		frames = append(frames, f.fb)
		g.Meter.Add(g.uploadCategory(), int64(f.fb.Count)*int64(f.fb.SampleBytes()))
	}
	if len(frames) == 0 {
		return fmt.Errorf("cluster: no features collected for batch of %d samples: %w", len(escalate), ErrNoSummaries)
	}
	// Samples whose every covering device died before the fetch have no
	// features to escalate; drop them (their results stay nil) so the
	// header masks exactly describe the relayed frames. A sample covered
	// by any successful frame still has that device's mask bit set and is
	// kept, so frames and header stay consistent.
	var dropErr error
	kept := make([]int, 0, len(escalate))
	for _, idx := range escalate {
		if masks[idx] == 0 {
			if dropErr == nil {
				dropErr = fmt.Errorf("cluster: sample %d: %w", sampleIDs[idx], ErrNoSummaries)
			}
			continue
		}
		kept = append(kept, idx)
	}
	escalate = kept
	if len(escalate) == 0 {
		return dropErr
	}

	escIDs := make([]uint64, len(escalate))
	escMasks := make([]uint16, len(escalate))
	for k, idx := range escalate {
		escIDs[k] = sampleIDs[idx]
		escMasks[k] = masks[idx]
	}
	var hdr wire.Message
	if g.upstreamExit() == wire.ExitEdge {
		hdr = &wire.EdgeClassifyBatch{
			Session:      sid,
			ModelVersion: mv,
			Devices:      uint16(model.Cfg.Devices),
			SampleIDs:    escIDs,
			Masks:        escMasks,
			Thresholds:   pipeline.RelayThresholds(),
		}
	} else {
		hdr = &wire.CloudClassifyBatch{
			Session:      sid,
			ModelVersion: mv,
			Devices:      uint16(model.Cfg.Devices),
			SampleIDs:    escIDs,
			Masks:        escMasks,
		}
	}
	timeout := g.upstreamTimeout()
	msg, err := g.upstream.relay(ctx, sid, timeout, append([]wire.Message{hdr}, frames...)...)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return ctxErr(cerr)
		}
		return fmt.Errorf("cluster: %w: %w", sentinel, err)
	}
	rb, ok := msg.(*wire.ResultBatch)
	if !ok {
		if e, isErr := msg.(*wire.Error); isErr {
			if e.Code == 503 {
				return fmt.Errorf("cluster: %w: %v tier: %s", ErrCloudUnavailable, g.upstreamExit(), e.Msg)
			}
			if e.Code == 426 {
				return fmt.Errorf("cluster: %w: %v tier: %s", ErrModelVersionUnknown, g.upstreamExit(), e.Msg)
			}
			return fmt.Errorf("cluster: %w: %v error %d: %s", sentinel, g.upstreamExit(), e.Code, e.Msg)
		}
		return fmt.Errorf("cluster: expected ResultBatch, got %v", msg.MsgType())
	}
	if len(rb.Verdicts) != len(escalate) {
		return fmt.Errorf("cluster: %v tier answered %d verdicts for %d samples", g.upstreamExit(), len(rb.Verdicts), len(escalate))
	}
	for k, v := range rb.Verdicts {
		idx := escalate[k]
		if v.SampleID != sampleIDs[idx] {
			return fmt.Errorf("cluster: %v tier verdict %d is for sample %d, want %d", g.upstreamExit(), k, v.SampleID, sampleIDs[idx])
		}
		results[idx] = &Result{
			SampleID:      sampleIDs[idx],
			Class:         int(v.Class),
			Exit:          v.Exit,
			Probs:         v.Probs,
			Entropy:       entropies[idx],
			Present:       present[idx],
			ConfigVersion: snap.version,
			ModelVersion:  mv,
			Latency:       time.Since(start),
		}
	}
	return dropErr
}
