package cluster

import (
	"fmt"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// Stage is one exit point of the staged-inference pipeline (§III-D): a
// tier of the physical hierarchy with an early-exit head and the
// normalized-entropy threshold gating it.
type Stage struct {
	// Exit identifies the tier that classifies at this stage.
	Exit wire.ExitPoint
	// Threshold is the stage's exit criterion: a sample whose
	// normalized entropy is ≤ Threshold exits here. The final stage
	// always classifies regardless of its threshold.
	Threshold float64
}

// Pipeline is the ordered exit-stage list of a hierarchy, lowest tier
// first. The runtime routes escalations along it instead of hard-coding
// device/cloud pairs, so deeper hierarchies are a configuration change:
// the gateway evaluates the first stage locally and forwards the
// remaining thresholds up the chain, each tier peeling off its own.
type Pipeline []Stage

// BuildPipeline derives the exit pipeline from a model configuration
// and the per-tier thresholds: local(+edge)+cloud, where the cloud is
// the final stage and always classifies.
func BuildPipeline(cfg core.Config, localT, edgeT float64) Pipeline {
	p := Pipeline{{Exit: wire.ExitLocal, Threshold: localT}}
	if cfg.UseEdge {
		p = append(p, Stage{Exit: wire.ExitEdge, Threshold: edgeT})
	}
	return append(p, Stage{Exit: wire.ExitCloud, Threshold: 1})
}

// ShedLevel selects how much of the exit pipeline one session may use.
// It is the staged hierarchy acting as a load-shedding mechanism: under
// overload an admission controller raises the level, which answers
// requests at cheaper (lower) exits instead of queueing or refusing them
// — quality degrades before availability does.
type ShedLevel int

// Shed levels, cheapest-pipeline last.
const (
	// ShedNone runs the session over the full configured pipeline.
	ShedNone ShedLevel = iota
	// ShedPreferEdge forces every escalated sample to exit at the tier
	// directly below the final one — the edge of a three-tier hierarchy
	// — keeping the top tier idle. In a two-tier hierarchy (no edge) it
	// degenerates to ShedLocalOnly.
	ShedPreferEdge
	// ShedLocalOnly answers every sample at the local exit; nothing
	// escalates past the gateway.
	ShedLocalOnly
)

// String names the level for headers, logs and metric labels.
func (s ShedLevel) String() string {
	switch s {
	case ShedNone:
		return "normal"
	case ShedPreferEdge:
		return "prefer-edge"
	case ShedLocalOnly:
		return "device-only"
	default:
		return fmt.Sprintf("shed(%d)", int(s))
	}
}

// Shed returns a tightened copy of the pipeline for one session: the
// stage `level` tiers below the final one has its threshold raised to 1,
// so every sample that reaches it passes the normalized-entropy test
// (entropy is always ≤ 1) and the tiers above it never see the session.
// Shed(ShedNone) returns the pipeline unchanged; levels past the bottom
// of the pipeline clamp to the local exit. The receiver is never mutated.
func (p Pipeline) Shed(level ShedLevel) Pipeline {
	if level <= ShedNone || len(p) == 0 {
		return p
	}
	stop := len(p) - 1 - int(level)
	if stop < 0 {
		stop = 0
	}
	out := make(Pipeline, len(p))
	copy(out, p)
	out[stop].Threshold = 1
	return out
}

// Validate reports malformed pipelines.
func (p Pipeline) Validate() error {
	if len(p) < 2 {
		return fmt.Errorf("cluster: pipeline needs at least a local and a final stage, got %d", len(p))
	}
	if p[0].Exit != wire.ExitLocal {
		return fmt.Errorf("cluster: pipeline must start at the local exit, got %v", p[0].Exit)
	}
	return nil
}

// RelayThresholds returns the thresholds the gateway forwards with an
// escalation: every stage above the local exit except the final stage,
// which always classifies. Each intermediate tier consumes the first
// entry and relays the rest.
func (p Pipeline) RelayThresholds() []float64 {
	if len(p) <= 2 {
		return nil
	}
	ts := make([]float64, 0, len(p)-2)
	for _, s := range p[1 : len(p)-1] {
		ts = append(ts, s.Threshold)
	}
	return ts
}

// Exits returns the exit points in pipeline order.
func (p Pipeline) Exits() []wire.ExitPoint {
	out := make([]wire.ExitPoint, len(p))
	for i, s := range p {
		out[i] = s.Exit
	}
	return out
}
