package cluster

import (
	"fmt"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// Stage is one exit point of the staged-inference pipeline (§III-D): a
// tier of the physical hierarchy with an early-exit head and the
// normalized-entropy threshold gating it.
type Stage struct {
	// Exit identifies the tier that classifies at this stage.
	Exit wire.ExitPoint
	// Threshold is the stage's exit criterion: a sample whose
	// normalized entropy is ≤ Threshold exits here. The final stage
	// always classifies regardless of its threshold.
	Threshold float64
}

// Pipeline is the ordered exit-stage list of a hierarchy, lowest tier
// first. The runtime routes escalations along it instead of hard-coding
// device/cloud pairs, so deeper hierarchies are a configuration change:
// the gateway evaluates the first stage locally and forwards the
// remaining thresholds up the chain, each tier peeling off its own.
type Pipeline []Stage

// BuildPipeline derives the exit pipeline from a model configuration
// and the per-tier thresholds: local(+edge)+cloud, where the cloud is
// the final stage and always classifies.
func BuildPipeline(cfg core.Config, localT, edgeT float64) Pipeline {
	p := Pipeline{{Exit: wire.ExitLocal, Threshold: localT}}
	if cfg.UseEdge {
		p = append(p, Stage{Exit: wire.ExitEdge, Threshold: edgeT})
	}
	return append(p, Stage{Exit: wire.ExitCloud, Threshold: 1})
}

// Validate reports malformed pipelines.
func (p Pipeline) Validate() error {
	if len(p) < 2 {
		return fmt.Errorf("cluster: pipeline needs at least a local and a final stage, got %d", len(p))
	}
	if p[0].Exit != wire.ExitLocal {
		return fmt.Errorf("cluster: pipeline must start at the local exit, got %v", p[0].Exit)
	}
	return nil
}

// RelayThresholds returns the thresholds the gateway forwards with an
// escalation: every stage above the local exit except the final stage,
// which always classifies. Each intermediate tier consumes the first
// entry and relays the rest.
func (p Pipeline) RelayThresholds() []float64 {
	if len(p) <= 2 {
		return nil
	}
	ts := make([]float64, 0, len(p)-2)
	for _, s := range p[1 : len(p)-1] {
		ts = append(ts, s.Threshold)
	}
	return ts
}

// Exits returns the exit points in pipeline order.
func (p Pipeline) Exits() []wire.ExitPoint {
	out := make([]wire.ExitPoint, len(p))
	for i, s := range p {
		out[i] = s.Exit
	}
	return out
}
