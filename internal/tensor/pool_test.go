package tensor

import (
	"sync"
	"testing"
)

func TestPoolGetZeroesAndReshapes(t *testing.T) {
	p := NewPool()
	a := p.Get(2, 3)
	a.Fill(7)
	p.Put(a)
	b := p.Get(3, 2) // same element count, different shape
	if b.Dim(0) != 3 || b.Dim(1) != 2 {
		t.Fatalf("shape %v, want [3 2]", b.Shape())
	}
	for i, v := range b.Data() {
		if v != 0 {
			t.Fatalf("element %d = %g after Get, want 0", i, v)
		}
	}
}

func TestPoolNilIsPlainAllocation(t *testing.T) {
	var p *Pool
	a := p.Get(4)
	if a == nil || a.Size() != 4 {
		t.Fatal("nil pool Get failed")
	}
	p.Put(a) // must not panic
	if d := p.GetDirty(2, 2); d.Size() != 4 {
		t.Fatal("nil pool GetDirty failed")
	}
}

// TestPoolConcurrentSessions hammers one shared pool from many
// goroutines mixing sizes, a -race guard for the serving runtime where
// every session of a node shares the node's pool.
func TestPoolConcurrentSessions(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sizes := [][]int{{1, 4, 16, 16}, {4, 27}, {1, 3}, {2, 2, 8, 8}}
			for iter := 0; iter < 300; iter++ {
				shape := sizes[(seed+iter)%len(sizes)]
				a := p.Get(shape...)
				b := p.GetDirty(shape...)
				// Exclusive ownership: concurrent writes must not race.
				a.Fill(float32(seed))
				b.CopyFrom(a)
				for i, v := range a.Data() {
					if v != float32(seed) {
						t.Errorf("goroutine %d: element %d = %g, want %d", seed, i, v, seed)
						return
					}
				}
				p.Put(a)
				p.Put(b)
			}
		}(g)
	}
	wg.Wait()
}
