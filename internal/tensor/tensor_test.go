package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	tr := New(2, 3, 4)
	if got := tr.Size(); got != 24 {
		t.Fatalf("Size() = %d, want 24", got)
	}
	for i, v := range tr.Data() {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
	}{
		{"empty", nil},
		{"zero dim", []int{2, 0}},
		{"negative dim", []int{-1, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v) did not panic", tt.shape)
				}
			}()
			New(tt.shape...)
		})
	}
}

func TestFromSlice(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	tr := FromSlice(data, 2, 3)
	if got := tr.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %g, want 6", got)
	}
	tr.Set(9, 0, 1)
	if data[1] != 9 {
		t.Errorf("FromSlice must alias input slice; data[1] = %g, want 9", data[1])
	}
}

func TestFromSlicePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong size did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	tr := New(3, 4, 5)
	want := float32(0)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				tr.Set(want, i, j, k)
				want++
			}
		}
	}
	// Row-major layout means Data should be 0..59 in order.
	for i, v := range tr.Data() {
		if v != float32(i) {
			t.Fatalf("Data[%d] = %g, want %d", i, v, i)
		}
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	tr := New(2, 6)
	view := tr.Reshape(3, 4)
	view.Set(7, 2, 3)
	if got := tr.At(1, 5); got != 7 {
		t.Errorf("reshaped view did not share storage: At(1,5) = %g, want 7", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := Full(2, 2, 2)
	c := tr.Clone()
	c.Set(5, 0, 0)
	if tr.At(0, 0) != 2 {
		t.Error("Clone must not share storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)

	sum := a.Clone()
	sum.Add(b)
	wantSum := []float32{11, 22, 33, 44}
	for i, v := range sum.Data() {
		if v != wantSum[i] {
			t.Errorf("Add[%d] = %g, want %g", i, v, wantSum[i])
		}
	}

	diff := b.Clone()
	diff.Sub(a)
	wantDiff := []float32{9, 18, 27, 36}
	for i, v := range diff.Data() {
		if v != wantDiff[i] {
			t.Errorf("Sub[%d] = %g, want %g", i, v, wantDiff[i])
		}
	}

	prod := a.Clone()
	prod.Mul(b)
	wantProd := []float32{10, 40, 90, 160}
	for i, v := range prod.Data() {
		if v != wantProd[i] {
			t.Errorf("Mul[%d] = %g, want %g", i, v, wantProd[i])
		}
	}

	sc := a.Clone()
	sc.Scale(0.5)
	wantSc := []float32{0.5, 1, 1.5, 2}
	for i, v := range sc.Data() {
		if v != wantSc[i] {
			t.Errorf("Scale[%d] = %g, want %g", i, v, wantSc[i])
		}
	}

	axpy := a.Clone()
	axpy.AddScaled(2, b)
	wantAxpy := []float32{21, 42, 63, 84}
	for i, v := range axpy.Data() {
		if v != wantAxpy[i] {
			t.Errorf("AddScaled[%d] = %g, want %g", i, v, wantAxpy[i])
		}
	}
}

func TestClamp(t *testing.T) {
	tr := FromSlice([]float32{-5, -1, 0, 1, 5}, 5, 1)
	tr.Clamp(-1, 1)
	want := []float32{-1, -1, 0, 1, 1}
	for i, v := range tr.Data() {
		if v != want[i] {
			t.Errorf("Clamp[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestReductions(t *testing.T) {
	tr := FromSlice([]float32{-3, 1, 4, -2}, 2, 2)
	if got := tr.Sum(); got != 0 {
		t.Errorf("Sum = %g, want 0", got)
	}
	if got := tr.Mean(); got != 0 {
		t.Errorf("Mean = %g, want 0", got)
	}
	if got := tr.Max(); got != 4 {
		t.Errorf("Max = %g, want 4", got)
	}
	if got := tr.Min(); got != -3 {
		t.Errorf("Min = %g, want -3", got)
	}
	if got := tr.AbsMax(); got != 4 {
		t.Errorf("AbsMax = %g, want 4", got)
	}
	if got := tr.L2Norm(); math.Abs(got-math.Sqrt(30)) > 1e-9 {
		t.Errorf("L2Norm = %g, want sqrt(30)", got)
	}
}

func TestArgMaxRow(t *testing.T) {
	tr := FromSlice([]float32{0.1, 0.7, 0.2, 0.9, 0.05, 0.05}, 2, 3)
	if got := tr.ArgMaxRow(0); got != 1 {
		t.Errorf("ArgMaxRow(0) = %d, want 1", got)
	}
	if got := tr.ArgMaxRow(1); got != 0 {
		t.Errorf("ArgMaxRow(1) = %d, want 0", got)
	}
}

func TestRowView(t *testing.T) {
	tr := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	row := tr.Row(1)
	row[0] = 9
	if tr.At(1, 0) != 9 {
		t.Error("Row must return a live view")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Errorf("MatMul[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4)
	a.FillUniform(rng, -1, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	c := MatMul(a, id)
	for i, v := range c.Data() {
		if v != a.Data()[i] {
			t.Fatalf("A·I ≠ A at %d: %g vs %g", i, v, a.Data()[i])
		}
	}
}

func TestMatMulIntoAccumulate(t *testing.T) {
	a := FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	c := Full(10, 2, 2)
	MatMulInto(c, a, b, true)
	want := []float32{11, 12, 13, 14}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Errorf("accumulated MatMulInto[%d] = %g, want %g", i, v, want[i])
		}
	}
	MatMulInto(c, a, b, false)
	for i, v := range c.Data() {
		if v != b.Data()[i] {
			t.Errorf("overwriting MatMulInto[%d] = %g, want %g", i, v, b.Data()[i])
		}
	}
}

// matmulNaive is an independent reference implementation used by the
// property tests below.
func matmulNaive(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			c.Set(float32(s), i, j)
		}
	}
	return c
}

func approxEqual(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(mRaw, kRaw, nRaw uint8) bool {
		m, k, n := int(mRaw%6)+1, int(kRaw%6)+1, int(nRaw%6)+1
		a := New(m, k)
		b := New(k, n)
		a.FillUniform(rng, -2, 2)
		b.FillUniform(rng, -2, 2)
		got := MatMul(a, b)
		want := matmulNaive(a, b)
		for i := range got.Data() {
			if !approxEqual(got.Data()[i], want.Data()[i], 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(mRaw, kRaw, nRaw uint8) bool {
		m, k, n := int(mRaw%5)+1, int(kRaw%5)+1, int(nRaw%5)+1
		a := New(m, k)
		bT := New(n, k) // stored transposed
		a.FillUniform(rng, -1, 1)
		bT.FillUniform(rng, -1, 1)
		b := New(k, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				b.Set(bT.At(i, j), j, i)
			}
		}
		got := MatMulTransB(a, bT)
		want := matmulNaive(a, b)
		for i := range got.Data() {
			if !approxEqual(got.Data()[i], want.Data()[i], 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(mRaw, kRaw, nRaw uint8) bool {
		m, k, n := int(mRaw%5)+1, int(kRaw%5)+1, int(nRaw%5)+1
		aT := New(k, m) // stored transposed
		b := New(k, n)
		aT.FillUniform(rng, -1, 1)
		b.FillUniform(rng, -1, 1)
		a := New(m, k)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				a.Set(aT.At(i, j), j, i)
			}
		}
		got := MatMulTransA(aT, b)
		want := matmulNaive(a, b)
		for i := range got.Data() {
			if !approxEqual(got.Data()[i], want.Data()[i], 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestFillDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New(10000)

	tr.FillUniform(rng, -1, 1)
	if m := tr.Mean(); math.Abs(m) > 0.05 {
		t.Errorf("uniform mean = %g, want ≈0", m)
	}
	if tr.Max() > 1 || tr.Min() < -1 {
		t.Error("uniform samples out of range")
	}

	tr.FillNormal(rng, 2, 0.5)
	if m := tr.Mean(); math.Abs(m-2) > 0.05 {
		t.Errorf("normal mean = %g, want ≈2", m)
	}

	tr.FillHe(rng, 50)
	wantStd := math.Sqrt(2.0 / 50.0)
	var ss float64
	for _, v := range tr.Data() {
		ss += float64(v) * float64(v)
	}
	std := math.Sqrt(ss / float64(tr.Size()))
	if math.Abs(std-wantStd) > 0.02 {
		t.Errorf("He std = %g, want ≈%g", std, wantStd)
	}

	tr.FillGlorot(rng, 30, 70)
	limit := float32(math.Sqrt(6.0 / 100.0))
	if tr.Max() > limit || tr.Min() < -limit {
		t.Error("Glorot samples out of range")
	}
}

func TestStackAndSelectSamples(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 1, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 1, 2, 3)
	s := Stack([]*Tensor{a, b})
	if got := s.Shape(); got[0] != 2 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Stack shape = %v, want [2 2 3]", got)
	}
	if s.Sample(1)[0] != 7 {
		t.Errorf("Sample(1)[0] = %v, want 7", s.Sample(1)[0])
	}
	// Round trip: selecting each sample recovers the inputs.
	sel := s.SelectSamples([]int{1, 0})
	if sel.Sample(0)[0] != 7 || sel.Sample(1)[0] != 1 {
		t.Errorf("SelectSamples order wrong: %v / %v", sel.Sample(0), sel.Sample(1))
	}
	if s.SampleSize() != 6 {
		t.Errorf("SampleSize = %d, want 6", s.SampleSize())
	}
}
