package tensor

import (
	"math/rand"
	"testing"
)

// fillRandom fills a tensor with uniform values, including exact zeros
// occasionally so the kernels' zero-handling paths are exercised.
func fillRandom(t *Tensor, rng *rand.Rand) {
	d := t.Data()
	for i := range d {
		switch rng.Intn(10) {
		case 0:
			d[i] = 0
		default:
			d[i] = rng.Float32()*2 - 1
		}
	}
}

// TestMatMulBlockedMatchesNaive checks the register-tiled kernel against
// the naive ikj reference on randomized shapes, including row/column
// tails and the small-n specialization. Accumulation order is identical
// by construction, so results must be exactly equal.
func TestMatMulBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(17)
		k := 1 + rng.Intn(40)
		n := 1 + rng.Intn(21)
		a := New(m, k)
		b := New(k, n)
		fillRandom(a, rng)
		fillRandom(b, rng)
		want := MatMulNaive(a, b)
		got := MatMul(a, b)
		for i, w := range want.Data() {
			if got.Data()[i] != w {
				t.Fatalf("m=%d k=%d n=%d: element %d = %g, naive %g", m, k, n, i, got.Data()[i], w)
			}
		}
	}
}

// TestMatMulIntoAccumulateMatchesNaive checks the accumulate mode: C
// must end up exactly naive(C0 + A·B) with the same starting values.
func TestMatMulIntoAccumulateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(9)
		k := 1 + rng.Intn(24)
		n := 1 + rng.Intn(12)
		a := New(m, k)
		b := New(k, n)
		c0 := New(m, n)
		fillRandom(a, rng)
		fillRandom(b, rng)
		fillRandom(c0, rng)

		got := c0.Clone()
		MatMulInto(got, a, b, true)

		want := c0.Clone()
		matmulRows(want.Data(), a.Data(), b.Data(), 0, m, k, n)

		for i, w := range want.Data() {
			if got.Data()[i] != w {
				t.Fatalf("accumulate m=%d k=%d n=%d: element %d = %g, naive %g", m, k, n, i, got.Data()[i], w)
			}
		}
	}
}

// TestGemmSignMatchesGemm checks the add/sub sign kernel against the
// float kernel for ±1 A matrices: c ± b and c + (±1)·b are the same IEEE
// operations, so results must be bitwise-comparable (equal under ==).
func TestGemmSignMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(13)
		k := 1 + rng.Intn(40)
		n := 1 + rng.Intn(30)
		a := make([]float32, m*k)
		for i := range a {
			a[i] = float32(rng.Intn(2)*2 - 1)
		}
		b := make([]float32, k*n)
		for i := range b {
			b[i] = rng.Float32()*2 - 1
		}
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		Gemm(want, a, b, m, k, n)
		GemmSign(got, a, b, m, k, n)
		for i, w := range want {
			if got[i] != w {
				t.Fatalf("m=%d k=%d n=%d: element %d = %g, float kernel %g", m, k, n, i, got[i], w)
			}
		}
	}
}

// TestMatMulParallelMatchesSerial pins the worker bound high and low:
// row-split execution must produce exactly the serial result.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := New(64, 80)
	b := New(80, 96)
	fillRandom(a, rng)
	fillRandom(b, rng)

	SetMaxWorkers(1)
	serial := MatMul(a, b)
	SetMaxWorkers(8)
	parallel := MatMul(a, b)
	SetMaxWorkers(0)

	for i, w := range serial.Data() {
		if parallel.Data()[i] != w {
			t.Fatalf("element %d = %g parallel, %g serial", i, parallel.Data()[i], w)
		}
	}
}

// im2colReference gathers the matrix element by element straight from
// the definition: row (ci·K+ky)·K+kx, column oy·ow+ox holds
// x[s, ci, oy·stride+ky−pad, ox·stride+kx−pad], zero outside the input.
func im2colReference(x *Tensor, sample, kernel, stride, pad int) *Tensor {
	c, h, w := x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h+2*pad-kernel)/stride + 1
	ow := (w+2*pad-kernel)/stride + 1
	out := New(c*kernel*kernel, oh*ow)
	for ci := 0; ci < c; ci++ {
		for ky := 0; ky < kernel; ky++ {
			for kx := 0; kx < kernel; kx++ {
				row := (ci*kernel+ky)*kernel + kx
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						iy := oy*stride + ky - pad
						ix := ox*stride + kx - pad
						var v float32
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							v = x.At(sample, ci, iy, ix)
						}
						out.Set(v, row, oy*ow+ox)
					}
				}
			}
		}
	}
	return out
}

// TestIm2colMatchesReference sweeps kernel/stride/pad combinations,
// non-square spatial dims and multi-sample tensors against the direct
// gather.
func TestIm2colMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 120; trial++ {
		kernel := 1 + rng.Intn(4)
		stride := 1 + rng.Intn(3)
		pad := rng.Intn(3)
		c := 1 + rng.Intn(4)
		h := kernel + rng.Intn(9)
		w := kernel + rng.Intn(9)
		ns := 1 + rng.Intn(3)
		x := New(ns, c, h, w)
		fillRandom(x, rng)
		sample := rng.Intn(ns)

		want := im2colReference(x, sample, kernel, stride, pad)
		got := Im2col(x, sample, kernel, stride, pad)
		if !got.SameShape(want) {
			t.Fatalf("k=%d s=%d p=%d: shape %v, want %v", kernel, stride, pad, got.Shape(), want.Shape())
		}
		for i, wv := range want.Data() {
			if got.Data()[i] != wv {
				t.Fatalf("k=%d s=%d p=%d h=%d w=%d: element %d = %g, want %g", kernel, stride, pad, h, w, i, got.Data()[i], wv)
			}
		}

		// Im2colInto must also leave a dirty buffer fully correct.
		dirty := make([]float32, want.Size())
		for i := range dirty {
			dirty[i] = 999
		}
		Im2colInto(dirty, x, sample, kernel, stride, pad)
		for i, wv := range want.Data() {
			if dirty[i] != wv {
				t.Fatalf("k=%d s=%d p=%d: dirty-buffer element %d = %g, want %g", kernel, stride, pad, i, dirty[i], wv)
			}
		}
	}
}
