package tensor

import "sync"

// maxFreePerClass bounds how many retired tensors one size class keeps.
// Beyond it, Put drops the tensor for the garbage collector — the arena
// must never become an unbounded leak for bursty batch sizes.
const maxFreePerClass = 64

// Pool recycles tensor storage across inference calls: an arena of
// per-size free lists. Get returns a zero-filled tensor of the requested
// shape, reusing retired storage of the same element count when
// available, and Put retires a tensor for reuse.
//
// The free lists are deliberately not sync.Pool-backed: the garbage
// collector drains sync.Pools on every cycle, which turns "zero
// steady-state allocation" into periodic refill bursts. A bounded free
// list keeps the steady state genuinely allocation-free and caps the
// retained memory at maxFreePerClass tensors per size.
//
// A nil *Pool is valid and degrades to plain allocation, so code can be
// written against a pool unconditionally and run pool-less (e.g. during
// training, where tensors outlive the forward pass as cached
// activations).
//
// Rules for callers: only Put tensors whose storage nothing references
// anymore — in particular not tensors that still have live Reshape views
// — and never use a tensor after Put. All methods are safe for
// concurrent use; tensors obtained from a shared Pool are exclusively
// owned until Put back.
type Pool struct {
	// mu guards the class index; each class has its own lock so
	// concurrent sessions of one node contend only on same-sized
	// tensors, and only for a pointer swap.
	mu      sync.RWMutex
	classes map[int]*sizeClass
}

type sizeClass struct {
	mu   sync.Mutex
	free []*Tensor
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

func (p *Pool) class(n int) *sizeClass {
	p.mu.RLock()
	sc := p.classes[n]
	p.mu.RUnlock()
	if sc != nil {
		return sc
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.classes == nil {
		p.classes = make(map[int]*sizeClass)
	}
	if sc = p.classes[n]; sc == nil {
		sc = &sizeClass{}
		p.classes[n] = sc
	}
	return sc
}

func (p *Pool) get(shape []int) *Tensor {
	n := checkShape(shape)
	sc := p.class(n)
	sc.mu.Lock()
	var t *Tensor
	if last := len(sc.free) - 1; last >= 0 {
		t = sc.free[last]
		sc.free[last] = nil
		sc.free = sc.free[:last]
	}
	sc.mu.Unlock()
	if t == nil {
		return New(shape...)
	}
	t.shape = append(t.shape[:0], shape...)
	return t
}

// Get returns a zero-filled tensor of the given shape, reusing retired
// storage when a same-sized tensor is available. On a nil pool it simply
// allocates.
func (p *Pool) Get(shape ...int) *Tensor {
	if p == nil {
		return New(shape...)
	}
	t := p.get(shape)
	clear(t.data)
	return t
}

// GetDirty is Get without the zero fill, for destinations every element
// of which the caller overwrites (GEMM outputs, im2col scratch with
// padding cleared internally). The contents are unspecified.
func (p *Pool) GetDirty(shape ...int) *Tensor {
	if p == nil {
		return New(shape...)
	}
	return p.get(shape)
}

// Put retires a tensor for reuse by later Gets of the same element
// count. Put on a nil pool, or of a nil tensor, is a no-op.
func (p *Pool) Put(t *Tensor) {
	if p == nil || t == nil || len(t.data) == 0 {
		return
	}
	sc := p.class(len(t.data))
	sc.mu.Lock()
	if len(sc.free) < maxFreePerClass {
		sc.free = append(sc.free, t)
	}
	sc.mu.Unlock()
}
