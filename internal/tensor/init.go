package tensor

import (
	"math"
	"math/rand"
)

// FillUniform fills t with samples from U[lo, hi) drawn from rng.
func (t *Tensor) FillUniform(rng *rand.Rand, lo, hi float32) {
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*rng.Float32()
	}
}

// FillNormal fills t with samples from N(mean, std²) drawn from rng.
func (t *Tensor) FillNormal(rng *rand.Rand, mean, std float32) {
	for i := range t.data {
		t.data[i] = mean + std*float32(rng.NormFloat64())
	}
}

// FillGlorot fills t with the Glorot/Xavier uniform initialization for a
// layer with the given fan-in and fan-out.
func (t *Tensor) FillGlorot(rng *rand.Rand, fanIn, fanOut int) {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	t.FillUniform(rng, -limit, limit)
}

// FillHe fills t with the He/Kaiming normal initialization for a layer with
// the given fan-in.
func (t *Tensor) FillHe(rng *rand.Rand, fanIn int) {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	t.FillNormal(rng, 0, std)
}
