package tensor

// cpuid executes the CPUID instruction for the given leaf/subleaf
// (implemented in cpu_amd64.s).
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (implemented in
// cpu_amd64.s). Only meaningful after CPUID reports OSXSAVE.
func xgetbv() (eax, edx uint32)

// simdAvailable caches the one-time AVX2 capability probe.
var simdAvailable = detectAVX2()

// detectAVX2 reports whether both the CPU and the OS support AVX2:
// CPUID leaf 1 must advertise AVX and OSXSAVE, XCR0 must show the OS
// saving XMM+YMM state, and CPUID leaf 7 EBX bit 5 must advertise AVX2
// itself. This is the same probe golang.org/x/sys/cpu performs; it is
// inlined here because the repo carries no external dependencies.
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) mean the OS context-switches YMM
	// registers; without them AVX instructions fault.
	if eax, _ := xgetbv(); eax&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0
}

// hasSIMD reports whether the KernelSIMD path can run on this host.
func hasSIMD() bool { return simdAvailable }
