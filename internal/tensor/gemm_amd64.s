#include "textflag.h"

// AVX2 GEMM micro-kernels. Both kernels keep a 4-row × 16-column tile
// of C in eight YMM accumulators for the whole shared-dimension sweep.
// Multiplication and addition are separate roundings (VMULPS + VADDPS,
// never FMA) and every C element accumulates its products in ascending
// shared-dimension order with the accumulator as the addition's first
// source — exactly the scalar kernels' operation sequence — so results
// are bit-identical to the naive oracles, including NaN and Inf
// propagation.

// func gemmKernel4x16(c, a, b *float32, k, n int)
//
// C[r][j] += Σ_p A[r][p]·B[p][j] for r in [0,4), j in [0,16), with C
// and B row strides of n floats and an A row stride of k floats.
TEXT ·gemmKernel4x16(SB), NOSPLIT, $0-40
	MOVQ c+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ k+24(FP), CX
	MOVQ n+32(FP), DX
	SHLQ $2, DX           // C/B row stride in bytes

	MOVQ k+24(FP), R8
	SHLQ $2, R8           // A row stride in bytes
	MOVQ SI, R9           // A row 0
	LEAQ (SI)(R8*1), R10  // A row 1
	LEAQ (R10)(R8*1), R11 // A row 2
	LEAQ (R11)(R8*1), R12 // A row 3

	MOVQ DI, R13          // C row 0, kept for the store-back
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	ADDQ DX, DI
	VMOVUPS (DI), Y2
	VMOVUPS 32(DI), Y3
	ADDQ DX, DI
	VMOVUPS (DI), Y4
	VMOVUPS 32(DI), Y5
	ADDQ DX, DI
	VMOVUPS (DI), Y6
	VMOVUPS 32(DI), Y7

	TESTQ CX, CX
	JE gemmstore

gemmloop:
	VMOVUPS (BX), Y12     // B[p][j..j+7]
	VMOVUPS 32(BX), Y13   // B[p][j+8..j+15]

	VBROADCASTSS (R9), Y14
	VMULPS Y12, Y14, Y15
	VADDPS Y15, Y0, Y0
	VMULPS Y13, Y14, Y15
	VADDPS Y15, Y1, Y1

	VBROADCASTSS (R10), Y14
	VMULPS Y12, Y14, Y15
	VADDPS Y15, Y2, Y2
	VMULPS Y13, Y14, Y15
	VADDPS Y15, Y3, Y3

	VBROADCASTSS (R11), Y14
	VMULPS Y12, Y14, Y15
	VADDPS Y15, Y4, Y4
	VMULPS Y13, Y14, Y15
	VADDPS Y15, Y5, Y5

	VBROADCASTSS (R12), Y14
	VMULPS Y12, Y14, Y15
	VADDPS Y15, Y6, Y6
	VMULPS Y13, Y14, Y15
	VADDPS Y15, Y7, Y7

	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	ADDQ $4, R12
	ADDQ DX, BX
	DECQ CX
	JNE gemmloop

gemmstore:
	VMOVUPS Y0, (R13)
	VMOVUPS Y1, 32(R13)
	ADDQ DX, R13
	VMOVUPS Y2, (R13)
	VMOVUPS Y3, 32(R13)
	ADDQ DX, R13
	VMOVUPS Y4, (R13)
	VMOVUPS Y5, 32(R13)
	ADDQ DX, R13
	VMOVUPS Y6, (R13)
	VMOVUPS Y7, 32(R13)
	VZEROUPPER
	RET

// func gemmSignKernel4x16(c, a, b *float32, k, n int)
//
// The ±1 sign variant of gemmKernel4x16: where A[r][p] > 0 the B row is
// added; otherwise B's sign bits are flipped and the result added —
// s + (b XOR signbit) and s − b are the same IEEE-754 operation. The
// comparison uses the ordered GT predicate, so a NaN in A selects the
// subtract branch exactly like the scalar kernels' `av > 0` test.
TEXT ·gemmSignKernel4x16(SB), NOSPLIT, $0-40
	MOVQ c+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ k+24(FP), CX
	MOVQ n+32(FP), DX
	SHLQ $2, DX

	MOVQ k+24(FP), R8
	SHLQ $2, R8
	MOVQ SI, R9
	LEAQ (SI)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	LEAQ (R11)(R8*1), R12

	// Y10 = 0x80000000 in every lane, Y11 = +0.0 for the comparisons.
	VPCMPEQD Y10, Y10, Y10
	VPSLLD $31, Y10, Y10
	VXORPS Y11, Y11, Y11

	MOVQ DI, R13
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	ADDQ DX, DI
	VMOVUPS (DI), Y2
	VMOVUPS 32(DI), Y3
	ADDQ DX, DI
	VMOVUPS (DI), Y4
	VMOVUPS 32(DI), Y5
	ADDQ DX, DI
	VMOVUPS (DI), Y6
	VMOVUPS 32(DI), Y7

	TESTQ CX, CX
	JE signstore

signloop:
	VMOVUPS (BX), Y12
	VMOVUPS 32(BX), Y13

	VBROADCASTSS (R9), Y14
	VCMPPS $14, Y11, Y14, Y14 // av > 0, ordered (GT_OS)
	VPANDN Y10, Y14, Y14      // sign flip: 0 where av > 0, signbit elsewhere
	VPXOR Y12, Y14, Y15
	VADDPS Y15, Y0, Y0
	VPXOR Y13, Y14, Y15
	VADDPS Y15, Y1, Y1

	VBROADCASTSS (R10), Y14
	VCMPPS $14, Y11, Y14, Y14
	VPANDN Y10, Y14, Y14
	VPXOR Y12, Y14, Y15
	VADDPS Y15, Y2, Y2
	VPXOR Y13, Y14, Y15
	VADDPS Y15, Y3, Y3

	VBROADCASTSS (R11), Y14
	VCMPPS $14, Y11, Y14, Y14
	VPANDN Y10, Y14, Y14
	VPXOR Y12, Y14, Y15
	VADDPS Y15, Y4, Y4
	VPXOR Y13, Y14, Y15
	VADDPS Y15, Y5, Y5

	VBROADCASTSS (R12), Y14
	VCMPPS $14, Y11, Y14, Y14
	VPANDN Y10, Y14, Y14
	VPXOR Y12, Y14, Y15
	VADDPS Y15, Y6, Y6
	VPXOR Y13, Y14, Y15
	VADDPS Y15, Y7, Y7

	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	ADDQ $4, R12
	ADDQ DX, BX
	DECQ CX
	JNE signloop

signstore:
	VMOVUPS Y0, (R13)
	VMOVUPS Y1, 32(R13)
	ADDQ DX, R13
	VMOVUPS Y2, (R13)
	VMOVUPS Y3, 32(R13)
	ADDQ DX, R13
	VMOVUPS Y4, (R13)
	VMOVUPS Y5, 32(R13)
	ADDQ DX, R13
	VMOVUPS Y6, (R13)
	VMOVUPS Y7, 32(R13)
	VZEROUPPER
	RET
