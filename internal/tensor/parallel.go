package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps the goroutines any single ParallelFor may use. Zero
// means runtime.GOMAXPROCS(0).
var maxWorkers atomic.Int64

// SetMaxWorkers bounds the worker pool used to split batched inference
// work (per-sample convolutions, output-channel blocks of large matmuls)
// across cores. n <= 0 restores the default, GOMAXPROCS. The bound is
// process-wide: all models and serving engines share the same cores, so
// they share the same cap.
func SetMaxWorkers(n int) {
	if n < 0 {
		n = 0
	}
	maxWorkers.Store(int64(n))
}

// MaxWorkers returns the resolved worker bound (never less than 1).
func MaxWorkers() int {
	n := int(maxWorkers.Load())
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ParallelFor splits [0, n) into contiguous chunks of at least grain
// items and runs fn on each chunk, using up to MaxWorkers goroutines
// (one chunk runs on the calling goroutine). fn must be safe to call
// concurrently on disjoint ranges. With one worker, one chunk, or n <= 0
// the call degenerates to fn(0, n) inline, so callers need no special
// small-case path.
func ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	workers := MaxWorkers()
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	// Divide evenly across workers rather than handing out grain-sized
	// pieces: fewer goroutines, and chunk boundaries stay deterministic.
	per := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	if per > n {
		per = n
	}
	fn(0, per)
	wg.Wait()
}
