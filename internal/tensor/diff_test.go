package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// This file is the differential-testing harness that makes the kernel
// dispatch layer safe to grow: every optimized GEMM path (go, simd) is
// pinned bit-identical to the naive scalar oracle on randomized and
// adversarial shapes — dimensions of 0, 1, one-off-vector-width tails
// and primes — and on NaN/Inf inputs. Hand-written assembly only ships
// behind these tests.

// canonNaN32 is the canonical quiet float32 NaN. The harness injects
// only this NaN bit pattern: when two NaN operands meet in a multiply,
// IEEE implementations may return either one, so distinct payloads
// would make results depend on operand order rather than on kernel
// correctness.
var canonNaN32 = math.Float32frombits(0x7FC00000)

// sameBits32 is the harness equality: exact bit patterns, except that
// any NaN matches any NaN. NaN placement is fully pinned — a kernel
// may not turn a NaN into a number or vice versa — but payloads are
// not: when an already-NaN accumulator absorbs a NaN product, x86
// addition returns the first source operand's payload, and the Go
// compiler is free to emit either operand order (the memory-operand
// ADDSS in matmulRows and the register accumulators in the tiled
// kernels genuinely pick opposite ones). IEEE 754 and the Go spec both
// leave this unspecified, so pinning payloads would test the compiler's
// instruction selection, not the kernels.
func sameBits32(got, want float32) bool {
	if math.Float32bits(got) == math.Float32bits(want) {
		return true
	}
	return math.IsNaN(float64(got)) && math.IsNaN(float64(want))
}

// diffDims are the adversarial dimension values the harness draws m, k
// and n from: empty, single, register-tile widths and their one-off
// tails (the 2x4/4x4 scalar tiles and the 4x16 AVX2 tile), and primes
// that never align with any unrolling.
var diffDims = []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 15, 16, 17, 23, 31, 32, 33, 47, 48, 64, 67}

// forEachKernelPath runs fn once per supported dispatch path, forcing
// the path for the duration and restoring the previous one after.
func forEachKernelPath(t *testing.T, fn func(t *testing.T, p KernelPath)) {
	t.Helper()
	prev := CurrentKernelPath()
	defer func() {
		if err := SetKernelPath(prev); err != nil {
			t.Fatal(err)
		}
	}()
	for _, p := range KernelPaths() {
		if err := SetKernelPath(p); err != nil {
			t.Fatalf("SetKernelPath(%v): %v", p, err)
		}
		fn(t, p)
	}
}

// fillDiff fills dst with a mix of finite values, exact zeros and — when
// specials is true — ±Inf and the canonical NaN.
func fillDiff(dst []float32, rng *rand.Rand, specials bool) {
	for i := range dst {
		switch r := rng.Intn(20); {
		case r == 0:
			dst[i] = 0
		case specials && r == 1:
			dst[i] = float32(math.Inf(1))
		case specials && r == 2:
			dst[i] = float32(math.Inf(-1))
		case specials && r == 3:
			dst[i] = canonNaN32
		default:
			dst[i] = rng.Float32()*2 - 1
		}
	}
}

// guardLen pads destination buffers so out-of-bounds assembly stores
// land on sentinels instead of silently corrupting the heap.
const guardLen = 64

// makeGuarded returns a length-n slice backed by n+guardLen floats
// whose tail is filled with the sentinel, plus the full backing array
// for the guard check.
func makeGuarded(n int) (c, backing []float32) {
	backing = make([]float32, n+guardLen)
	for i := n; i < len(backing); i++ {
		backing[i] = 12345678
	}
	return backing[:n:n], backing
}

func checkGuard(t *testing.T, backing []float32, n int, what string) {
	t.Helper()
	for i := n; i < len(backing); i++ {
		if backing[i] != 12345678 {
			t.Fatalf("%s: wrote past the destination at offset %d", what, i-n)
		}
	}
}

// diffDim draws one dimension: usually from the adversarial set, with
// an occasional uniform draw to cover everything in between.
func diffDim(rng *rand.Rand) int {
	if rng.Intn(4) == 0 {
		return rng.Intn(70)
	}
	return diffDims[rng.Intn(len(diffDims))]
}

// TestGemmDiffAllPaths pins every Gemm dispatch path to the naive ikj
// oracle on randomized adversarial shapes with NaN/Inf inputs, bit-
// exact under sameBits32. NaNs go into A or B, never both in one
// trial: a NaN·NaN product's result payload is operand-order-dependent
// even between two correct scalar kernels.
func TestGemmDiffAllPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		m, k, n := diffDim(rng), diffDim(rng), diffDim(rng)
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		fillDiff(a, rng, trial%2 == 0)
		fillDiff(b, rng, trial%2 == 1)

		want := make([]float32, m*n)
		matmulRows(want, a, b, 0, m, k, n)

		forEachKernelPath(t, func(t *testing.T, p KernelPath) {
			got, backing := makeGuarded(m * n)
			Gemm(got, a, b, m, k, n)
			for i, w := range want {
				if !sameBits32(got[i], w) {
					t.Fatalf("path=%v m=%d k=%d n=%d: element %d = %g (%08x), oracle %g (%08x)",
						p, m, k, n, i, got[i], math.Float32bits(got[i]), w, math.Float32bits(w))
				}
			}
			checkGuard(t, backing, m*n, "Gemm "+p.String())
		})
	}
}

// TestGemmSignDiffAllPaths pins every GemmSign dispatch path to the
// naive add/sub oracle for ±1 sign matrices. B carries zeros and ±Inf
// but no NaNs: the contract covers c±b, and a NaN's sign bit after
// s+(b XOR signbit) versus s−b is the one case IEEE addition leaves
// unspecified relative to subtraction.
func TestGemmSignDiffAllPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		m, k, n := diffDim(rng), diffDim(rng), diffDim(rng)
		a := make([]float32, m*k)
		for i := range a {
			a[i] = float32(rng.Intn(2)*2 - 1)
		}
		b := make([]float32, k*n)
		for i := range b {
			switch rng.Intn(20) {
			case 0:
				b[i] = 0
			case 1:
				b[i] = float32(math.Inf(1))
			case 2:
				b[i] = float32(math.Inf(-1))
			default:
				b[i] = rng.Float32()*2 - 1
			}
		}

		want := make([]float32, m*n)
		gemmSignRows(want, a, b, 0, m, k, n)

		forEachKernelPath(t, func(t *testing.T, p KernelPath) {
			got, backing := makeGuarded(m * n)
			GemmSign(got, a, b, m, k, n)
			for i, w := range want {
				if math.Float32bits(got[i]) != math.Float32bits(w) {
					t.Fatalf("path=%v m=%d k=%d n=%d: element %d = %g (%08x), oracle %g (%08x)",
						p, m, k, n, i, got[i], math.Float32bits(got[i]), w, math.Float32bits(w))
				}
			}
			checkGuard(t, backing, m*n, "GemmSign "+p.String())
		})
	}
}

// TestMatMulIntoDiffAllPaths covers the accumulate entry point: every
// path must extend a dirty C exactly like the oracle, including with
// special values already in the accumulator.
func TestMatMulIntoDiffAllPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(12)
		k := 1 + rng.Intn(40)
		n := 1 + rng.Intn(36)
		a := New(m, k)
		b := New(k, n)
		c0 := New(m, n)
		fillDiff(a.Data(), rng, trial%2 == 0)
		fillDiff(b.Data(), rng, trial%2 == 1)
		fillDiff(c0.Data(), rng, false)

		want := c0.Clone()
		matmulRows(want.Data(), a.Data(), b.Data(), 0, m, k, n)

		forEachKernelPath(t, func(t *testing.T, p KernelPath) {
			got := c0.Clone()
			MatMulInto(got, a, b, true)
			for i, w := range want.Data() {
				if !sameBits32(got.Data()[i], w) {
					t.Fatalf("path=%v accumulate m=%d k=%d n=%d: element %d = %g, oracle %g", p, m, k, n, i, got.Data()[i], w)
				}
			}
		})
	}
}

// TestGemmParallelDiffAllPaths forces worker-pool row splitting above
// gemmParallelOps on every path and compares against the serial naive
// oracle — a dispatch bug in the ParallelFor row blocks cannot hide
// behind the serial case.
func TestGemmParallelDiffAllPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := New(67, 129)
	b := New(129, 47)
	fillDiff(a.Data(), rng, true)
	fillDiff(b.Data(), rng, false)

	want := New(67, 47)
	matmulRows(want.Data(), a.Data(), b.Data(), 0, 67, 129, 47)

	defer SetMaxWorkers(0)
	forEachKernelPath(t, func(t *testing.T, p KernelPath) {
		SetMaxWorkers(8)
		got := MatMul(a, b)
		for i, w := range want.Data() {
			if !sameBits32(got.Data()[i], w) {
				t.Fatalf("path=%v parallel: element %d = %g, oracle %g", p, i, got.Data()[i], w)
			}
		}
	})
}

// TestKernelPathSelection pins the dispatch plumbing itself: name
// parsing, rejection of unknown paths, support reporting and the
// naive→go→simd ordering of KernelPaths.
func TestKernelPathSelection(t *testing.T) {
	prev := CurrentKernelPath()
	defer SetKernelPath(prev)

	if err := SetKernelPathName("naive"); err != nil || CurrentKernelPath() != KernelNaive {
		t.Fatalf("naive: err=%v path=%v", err, CurrentKernelPath())
	}
	if err := SetKernelPathName("go"); err != nil || CurrentKernelPath() != KernelGo {
		t.Fatalf("go: err=%v path=%v", err, CurrentKernelPath())
	}
	if err := SetKernelPathName("bogus"); err == nil {
		t.Fatal("accepted unknown kernel path name")
	}
	if CurrentKernelPath() != KernelGo {
		t.Fatal("failed SetKernelPathName changed the active path")
	}
	if err := SetKernelPath(KernelPath(42)); err == nil {
		t.Fatal("accepted out-of-range kernel path")
	}
	if err := SetKernelPathName("auto"); err != nil {
		t.Fatalf("auto: %v", err)
	}
	best := KernelGo
	if KernelPathSupported(KernelSIMD) {
		best = KernelSIMD
	}
	if CurrentKernelPath() != best {
		t.Fatalf("auto selected %v, want %v", CurrentKernelPath(), best)
	}

	paths := KernelPaths()
	if len(paths) < 2 || paths[0] != KernelNaive || paths[1] != KernelGo {
		t.Fatalf("KernelPaths = %v", paths)
	}
	for _, p := range paths {
		if !KernelPathSupported(p) {
			t.Fatalf("KernelPaths lists unsupported %v", p)
		}
		if p.String() == "" {
			t.Fatalf("empty name for %d", p)
		}
	}
	if !KernelPathSupported(KernelSIMD) && len(paths) != 2 {
		t.Fatalf("simd unsupported but listed: %v", paths)
	}
}
