//go:build !amd64

package tensor

// hasSIMD reports whether the KernelSIMD path can run on this host. No
// non-amd64 SIMD kernels exist yet, so forcing DDNN_KERNELS=simd on
// other architectures is an error and auto-selection stops at KernelGo.
func hasSIMD() bool { return false }
