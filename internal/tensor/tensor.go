// Package tensor provides a minimal dense float32 N-dimensional tensor used
// by the neural-network substrate. Data is stored in row-major order.
//
// Shape mismatches are programmer errors, not runtime conditions, so the
// package follows the gonum convention: malformed calls panic with a
// descriptive message rather than returning errors.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense row-major float32 array with an explicit shape.
// The zero value is an empty tensor; use New or FromSlice to construct one.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. Every dimension
// must be positive.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the product of the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	t.Fill(v)
	return t
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	ok := true
	for _, d := range shape {
		if d <= 0 {
			ok = false
		}
		n *= d
	}
	if !ok {
		// Formatting in a helper on a copy keeps `shape` itself from
		// escaping: callers' variadic slices stay on their stacks, which
		// the zero-allocation serving path depends on.
		panicBadShape(append([]int(nil), shape...))
	}
	return n
}

func panicBadShape(shape []int) {
	panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated by the caller.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying storage. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Sizes must match; shapes may differ.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: copy size mismatch %d vs %d", len(t.data), len(src.data)))
	}
	copy(t.data, src.data)
}

// Reshape returns a view of t with a new shape of equal total size. The
// returned tensor shares storage with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v (size %d)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	clear(t.data)
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set assigns v to the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i, d := range t.shape {
		if d != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description, for debugging.
func (t *Tensor) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tensor%v", t.shape)
	if len(t.data) <= 8 {
		fmt.Fprintf(&sb, "%v", t.data)
	} else {
		fmt.Fprintf(&sb, "[%g %g %g ...]", t.data[0], t.data[1], t.data[2])
	}
	return sb.String()
}

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}
