package tensor

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzFill derives matrix elements from the fuzzer's raw byte pool:
// overlapping 4-byte windows reinterpreted as float32 bits, so the
// fuzzer can reach every bit pattern — denormals, ±0, ±Inf, any NaN
// payload — not just round numbers. Short pools fall back to a
// deterministic hash of the index.
func fuzzFill(dst []float32, raw []byte, off int) {
	for i := range dst {
		var u uint32
		if len(raw) >= 4 {
			u = binary.LittleEndian.Uint32(raw[(off+4*i)%(len(raw)-3):])
		} else {
			u = uint32(off+i) * 2654435761
		}
		dst[i] = math.Float32frombits(u)
	}
}

// FuzzGemmParity drives every Gemm and GemmSign dispatch path against
// the naive row oracles on fuzzer-chosen shapes and raw float bit
// patterns. Gemm is compared under sameBits32 (NaN placement pinned,
// payloads free); GemmSign — whose inputs exclude NaN in B by
// contract — must match to the exact bit.
func FuzzGemmParity(f *testing.F) {
	f.Add(uint8(4), uint8(16), uint8(32), []byte("gemm-seed-0123456789abcdefghijklmnopqrstuv"))
	f.Add(uint8(0), uint8(1), uint8(17), []byte{})
	f.Add(uint8(5), uint8(3), uint8(7), []byte("\x00\x00\xc0\x7f\x00\x00\x80\xff\x00\x00\x00\x80\x01\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, mr, kr, nr uint8, raw []byte) {
		m, k, n := int(mr)%24, int(kr)%24, int(nr)%40

		a := make([]float32, m*k)
		b := make([]float32, k*n)
		fuzzFill(a, raw, 0)
		fuzzFill(b, raw, 1)
		want := make([]float32, m*n)
		matmulRows(want, a, b, 0, m, k, n)

		// Sign-kernel inputs: A collapses to ±1, B keeps its values with
		// NaNs replaced (the one input class GemmSign's xor-sign trick
		// leaves unspecified relative to subtraction).
		sa := make([]float32, m*k)
		for i, v := range a {
			if v > 0 {
				sa[i] = 1
			} else {
				sa[i] = -1
			}
		}
		bs := make([]float32, len(b))
		for i, v := range b {
			if math.IsNaN(float64(v)) {
				bs[i] = float32(i%7) - 3
			} else {
				bs[i] = v
			}
		}
		wantSign := make([]float32, m*n)
		gemmSignRows(wantSign, sa, bs, 0, m, k, n)

		prev := CurrentKernelPath()
		defer SetKernelPath(prev)
		for _, p := range KernelPaths() {
			if err := SetKernelPath(p); err != nil {
				t.Fatal(err)
			}
			got := make([]float32, m*n)
			Gemm(got, a, b, m, k, n)
			for i, w := range want {
				if !sameBits32(got[i], w) {
					t.Fatalf("path=%v m=%d k=%d n=%d: Gemm element %d = %08x, oracle %08x",
						p, m, k, n, i, math.Float32bits(got[i]), math.Float32bits(w))
				}
			}
			gotSign := make([]float32, m*n)
			GemmSign(gotSign, sa, bs, m, k, n)
			for i, w := range wantSign {
				if math.Float32bits(gotSign[i]) != math.Float32bits(w) {
					t.Fatalf("path=%v m=%d k=%d n=%d: GemmSign element %d = %08x, oracle %08x",
						p, m, k, n, i, math.Float32bits(gotSign[i]), math.Float32bits(w))
				}
			}
		}
	})
}
