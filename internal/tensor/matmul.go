package tensor

import "fmt"

// MatMul computes C = A·B for 2-D tensors A [m,k] and B [k,n], returning a
// new [m,n] tensor. The inner loops are arranged for sequential access on
// both operands (ikj order), which is the fastest portable layout for
// row-major data.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := matmulDims(a, b)
	c := New(m, n)
	matmulInto(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulInto computes C = A·B, writing into an existing [m,n] tensor,
// avoiding an allocation. If accumulate is true the product is added to C
// instead of overwriting it.
func MatMulInto(c, a, b *Tensor, accumulate bool) {
	m, k, n := matmulDims(a, b)
	if len(c.shape) != 2 || c.shape[0] != m || c.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto destination shape %v, need [%d %d]", c.shape, m, n))
	}
	matmulInto(c.data, a.data, b.data, m, k, n, accumulate)
}

func matmulDims(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	if a.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v · %v", a.shape, b.shape))
	}
	return a.shape[0], a.shape[1], b.shape[1]
}

func matmulInto(c, a, b []float32, m, k, n int, accumulate bool) {
	if !accumulate {
		clear(c[:m*n])
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A·Bᵀ for A [m,k] and B [n,k], returning [m,n].
// This layout (dot products of rows) is used for the backward pass of
// linear layers.
func MatMulTransB(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransB requires 2-D tensors")
	}
	if a.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v · %vᵀ", a.shape, b.shape))
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		crow := c.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
	return c
}

// MatMulTransA computes C = Aᵀ·B for A [k,m] and B [k,n], returning [m,n].
// Used to accumulate weight gradients (xᵀ·dy).
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransA requires 2-D tensors")
	}
	if a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ · %v", a.shape, b.shape))
	}
	k, m, n := a.shape[0], a.shape[1], b.shape[1]
	c := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c.data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}
