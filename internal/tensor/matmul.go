package tensor

import "fmt"

// MatMul computes C = A·B for 2-D tensors A [m,k] and B [k,n], returning a
// new [m,n] tensor. The kernel is register-blocked (four rows of A share
// each streamed row of B) and splits large products across the package
// worker pool; per-element accumulation order is identical to the naive
// ikj kernel, so results match MatMulNaive exactly.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := matmulDims(a, b)
	c := New(m, n)
	matmulInto(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulNaive is the reference ikj kernel: one row of A at a time, B
// streamed per shared-dimension step. It is kept as the ground truth for
// the blocked kernel's parity tests and benchmarks.
func MatMulNaive(a, b *Tensor) *Tensor {
	m, k, n := matmulDims(a, b)
	c := New(m, n)
	matmulRows(c.data, a.data, b.data, 0, m, k, n)
	return c
}

// MatMulInto computes C = A·B, writing into an existing [m,n] tensor,
// avoiding an allocation. If accumulate is true the product is added to C
// instead of overwriting it.
func MatMulInto(c, a, b *Tensor, accumulate bool) {
	m, k, n := matmulDims(a, b)
	if len(c.shape) != 2 || c.shape[0] != m || c.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto destination shape %v, need [%d %d]", c.shape, m, n))
	}
	matmulInto(c.data, a.data, b.data, m, k, n, accumulate)
}

// Gemm computes C = A·B over raw row-major slices: A is [m,k], B is [k,n]
// and C is [m,n]. It is the allocation-free entry point used by the
// im2col convolution path, which views samples of larger tensors as
// matrices without wrapping them. Gemm never splits work itself — callers
// like the convolution layer own the parallelism decision. The kernel is
// selected by the active KernelPath; every path accumulates each C
// element in ascending shared-dimension order, so results are
// bit-identical across naive, go and simd.
func Gemm(c, a, b []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("tensor: Gemm slice sizes %d,%d,%d too small for [%d %d]·[%d %d]", len(c), len(a), len(b), m, k, k, n))
	}
	clear(c[:m*n])
	gemmRowsPath(CurrentKernelPath(), c, a, b, 0, m, k, n)
}

// gemmRowsPath computes C rows [i0,i1) with the kernel of the given
// dispatch path. The path is passed in (read once per public call)
// rather than re-read, so a concurrent SetKernelPath can never split
// one GEMM — or its parallel row blocks — across two implementations.
func gemmRowsPath(path KernelPath, c, a, b []float32, i0, i1, k, n int) {
	switch path {
	case KernelNaive:
		matmulRows(c, a, b, i0, i1, k, n)
	case KernelSIMD:
		gemmSIMD(c, a, b, i0, i1, k, n)
	default:
		matmulBlocked(c, a, b, i0, i1, k, n)
	}
}

// gemmSignRowsPath is gemmRowsPath for the ±1 sign kernel family.
func gemmSignRowsPath(path KernelPath, c, a, b []float32, i0, i1, k, n int) {
	switch path {
	case KernelNaive:
		gemmSignRows(c, a, b, i0, i1, k, n)
	case KernelSIMD:
		gemmSignSIMD(c, a, b, i0, i1, k, n)
	default:
		gemmSignBlocked(c, a, b, i0, i1, k, n)
	}
}

// GemmSign is Gemm for a sign matrix A whose every element is exactly +1
// or −1 (binarized weights): multiplies become adds and subtracts, which
// the scalar pipeline retires notably faster. The results are
// bit-identical to Gemm — c += 1·b and c += (−1)·b are exactly c += b
// and c −= b in IEEE arithmetic — and the per-element accumulation order
// is unchanged. Calling it with other A values silently computes
// C = sign(A)·B instead; the convolution layer gates it on binarized
// weights.
func GemmSign(c, a, b []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("tensor: GemmSign slice sizes %d,%d,%d too small for [%d %d]·[%d %d]", len(c), len(a), len(b), m, k, k, n))
	}
	clear(c[:m*n])
	gemmSignRowsPath(CurrentKernelPath(), c, a, b, 0, m, k, n)
}

// gemmSignBlocked is the portable optimized sign kernel over C rows
// [i0,i1): a 4×4 register tile of accumulators per sweep, adds and
// subtracts selected by the sign of A. Matrices with at most 4 output
// columns use the float small-n kernel instead — for ±1 A the multiply
// is exact, so the results are identical.
func gemmSignBlocked(c, a, b []float32, i0, i1, k, n int) {
	if n <= 4 {
		matmulSmallN(c, a, b, i0, i1, k, n)
		return
	}
	i := i0
	for ; i+4 <= i1; i += 4 {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a2 := a[(i+2)*k : (i+3)*k]
		a3 := a[(i+3)*k : (i+4)*k]
		c0 := c[(i+0)*n : (i+1)*n]
		c1 := c[(i+1)*n : (i+2)*n]
		c2 := c[(i+2)*n : (i+3)*n]
		c3 := c[(i+3)*n : (i+4)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			s00, s01, s02, s03 := c0[j], c0[j+1], c0[j+2], c0[j+3]
			s10, s11, s12, s13 := c1[j], c1[j+1], c1[j+2], c1[j+3]
			s20, s21, s22, s23 := c2[j], c2[j+1], c2[j+2], c2[j+3]
			s30, s31, s32, s33 := c3[j], c3[j+1], c3[j+2], c3[j+3]
			bi := j
			for p := 0; p < k; p++ {
				bp := b[bi : bi+4 : bi+4]
				b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
				if a0[p] > 0 {
					s00 += b0
					s01 += b1
					s02 += b2
					s03 += b3
				} else {
					s00 -= b0
					s01 -= b1
					s02 -= b2
					s03 -= b3
				}
				if a1[p] > 0 {
					s10 += b0
					s11 += b1
					s12 += b2
					s13 += b3
				} else {
					s10 -= b0
					s11 -= b1
					s12 -= b2
					s13 -= b3
				}
				if a2[p] > 0 {
					s20 += b0
					s21 += b1
					s22 += b2
					s23 += b3
				} else {
					s20 -= b0
					s21 -= b1
					s22 -= b2
					s23 -= b3
				}
				if a3[p] > 0 {
					s30 += b0
					s31 += b1
					s32 += b2
					s33 += b3
				} else {
					s30 -= b0
					s31 -= b1
					s32 -= b2
					s33 -= b3
				}
				bi += n
			}
			c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
			c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
			c2[j], c2[j+1], c2[j+2], c2[j+3] = s20, s21, s22, s23
			c3[j], c3[j+1], c3[j+2], c3[j+3] = s30, s31, s32, s33
		}
		for ; j < n; j++ {
			s0, s1, s2, s3 := c0[j], c1[j], c2[j], c3[j]
			bi := j
			for p := 0; p < k; p++ {
				bv := b[bi]
				if a0[p] > 0 {
					s0 += bv
				} else {
					s0 -= bv
				}
				if a1[p] > 0 {
					s1 += bv
				} else {
					s1 -= bv
				}
				if a2[p] > 0 {
					s2 += bv
				} else {
					s2 -= bv
				}
				if a3[p] > 0 {
					s3 += bv
				} else {
					s3 -= bv
				}
				bi += n
			}
			c0[j], c1[j], c2[j], c3[j] = s0, s1, s2, s3
		}
	}
	gemmSignRows(c, a, b, i, i1, k, n)
}

// gemmSignRows is the naive sign kernel over C rows [i0,i1): stream
// whole B rows, adding or subtracting per sign of A. It is the parity
// oracle for the blocked and SIMD sign kernels, and handles their row
// tails.
func gemmSignRows(c, a, b []float32, i0, i1, k, n int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n : (i+1)*n]
		for p, av := range arow {
			brow := b[p*n : (p+1)*n : (p+1)*n]
			if av > 0 {
				for j, bv := range brow {
					crow[j] += bv
				}
			} else {
				for j, bv := range brow {
					crow[j] -= bv
				}
			}
		}
	}
}

func matmulDims(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	if a.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v · %v", a.shape, b.shape))
	}
	return a.shape[0], a.shape[1], b.shape[1]
}

// gemmParallelOps is the m·k·n product above which a single matmul is
// split row-wise across the worker pool. Below it the goroutine handoff
// costs more than the multiply.
const gemmParallelOps = 1 << 18

func matmulInto(c, a, b []float32, m, k, n int, accumulate bool) {
	if !accumulate {
		clear(c[:m*n])
	}
	path := CurrentKernelPath()
	if m >= 8 && m*k*n >= gemmParallelOps && MaxWorkers() > 1 {
		// Row blocks of C are independent, and each element still
		// accumulates its products in ascending shared-dimension order, so
		// splitting changes nothing but wall-clock time.
		ParallelFor(m, 4, func(lo, hi int) {
			gemmRowsPath(path, c, a, b, lo, hi, k, n)
		})
		return
	}
	gemmRowsPath(path, c, a, b, 0, m, k, n)
}

// matmulBlocked processes C rows [i0,i1) with a 2×4 register-tiled
// micro-kernel: a 2-row × 4-column tile of C lives in registers for the
// whole shared-dimension sweep, so the inner loop does 8 multiply-adds
// per 6 loads and no stores. (Larger tiles need more accumulators than
// the scalar register file holds; 2×4 measured fastest.) Matrices with
// at most 4 columns — the class-logit exit heads — skip the tiling and
// accumulate whole rows in registers instead. Every C element still
// accumulates its products in ascending p order — exactly the naive
// kernel's order — so results are identical.
func matmulBlocked(c, a, b []float32, i0, i1, k, n int) {
	if n <= 4 {
		matmulSmallN(c, a, b, i0, i1, k, n)
		return
	}
	i := i0
	for ; i+2 <= i1; i += 2 {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		c0 := c[(i+0)*n : (i+1)*n]
		c1 := c[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			s00, s01, s02, s03 := c0[j], c0[j+1], c0[j+2], c0[j+3]
			s10, s11, s12, s13 := c1[j], c1[j+1], c1[j+2], c1[j+3]
			bi := j
			for p := 0; p < k; p++ {
				bp := b[bi : bi+4 : bi+4]
				b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
				av := a0[p]
				s00 += av * b0
				s01 += av * b1
				s02 += av * b2
				s03 += av * b3
				av = a1[p]
				s10 += av * b0
				s11 += av * b1
				s12 += av * b2
				s13 += av * b3
				bi += n
			}
			c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
			c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
		}
		for ; j < n; j++ {
			s0, s1 := c0[j], c1[j]
			bi := j
			for p := 0; p < k; p++ {
				bv := b[bi]
				s0 += a0[p] * bv
				s1 += a1[p] * bv
				bi += n
			}
			c0[j], c1[j] = s0, s1
		}
	}
	matmulRows(c, a, b, i, i1, k, n)
}

// matmulSmallN handles n ≤ 4 output columns (class-logit heads): each C
// row fits in registers, so one sweep of an A row does all columns with
// no C traffic. Accumulation order per element is p ascending, as
// everywhere else.
func matmulSmallN(c, a, b []float32, i0, i1, k, n int) {
	if n == 0 {
		return
	}
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		switch n {
		case 1:
			s0 := crow[0]
			for p, av := range arow {
				s0 += av * b[p]
			}
			crow[0] = s0
		case 2:
			s0, s1 := crow[0], crow[1]
			for p, av := range arow {
				s0 += av * b[2*p]
				s1 += av * b[2*p+1]
			}
			crow[0], crow[1] = s0, s1
		case 3:
			s0, s1, s2 := crow[0], crow[1], crow[2]
			for p, av := range arow {
				bp := b[3*p : 3*p+3 : 3*p+3]
				s0 += av * bp[0]
				s1 += av * bp[1]
				s2 += av * bp[2]
			}
			crow[0], crow[1], crow[2] = s0, s1, s2
		default:
			s0, s1, s2, s3 := crow[0], crow[1], crow[2], crow[3]
			for p, av := range arow {
				bp := b[4*p : 4*p+4 : 4*p+4]
				s0 += av * bp[0]
				s1 += av * bp[1]
				s2 += av * bp[2]
				s3 += av * bp[3]
			}
			crow[0], crow[1], crow[2], crow[3] = s0, s1, s2, s3
		}
	}
}

// matmulRows is the 1-row ikj kernel over C rows [i0,i1): the naive
// reference layout, also used for the tail rows of the blocked and SIMD
// kernels. It deliberately never skips zero A elements — 0·Inf and
// 0·NaN are NaN, so a zero-skip would make the oracle diverge from the
// tiled kernels exactly on the adversarial inputs the differential
// harness feeds them.
func matmulRows(c, a, b []float32, i0, i1, k, n int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for p, av := range arow {
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A·Bᵀ for A [m,k] and B [n,k], returning [m,n].
// This layout (dot products of rows) is used for the backward pass of
// linear layers.
func MatMulTransB(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransB requires 2-D tensors")
	}
	if a.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v · %vᵀ", a.shape, b.shape))
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		crow := c.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
	return c
}

// MatMulTransA computes C = Aᵀ·B for A [k,m] and B [k,n], returning [m,n].
// Used to accumulate weight gradients (xᵀ·dy).
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransA requires 2-D tensors")
	}
	if a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ · %v", a.shape, b.shape))
	}
	k, m, n := a.shape[0], a.shape[1], b.shape[1]
	c := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c.data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}
