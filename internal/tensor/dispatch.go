package tensor

import (
	"fmt"
	"os"
	"sync/atomic"
)

// KernelPath identifies one implementation tier of the compute kernels:
// float GEMM and sign GEMM here, XNOR-popcount dot products and sign
// packing in package bnn. Every path is bit-identical on its documented
// domain — the paths differ only in speed — and the naive kernels are
// the parity oracles the differential tests and fuzz targets pin the
// optimized paths against.
type KernelPath int32

const (
	// KernelNaive is the scalar reference path: one accumulator per
	// output element, ascending shared-dimension accumulation, no
	// tiling. It is the oracle every other path must match bit for bit.
	KernelNaive KernelPath = iota
	// KernelGo is the portable optimized path: register-tiled pure-Go
	// kernels (2x4 float GEMM tiles, 4x4 sign GEMM tiles, 64-bit-word
	// popcount, 8-wide unrolled sign packing).
	KernelGo
	// KernelSIMD is the arch-specific path: AVX2 assembly kernels on
	// amd64 (4x16 GEMM tiles without FMA, PSHUFB nibble popcount,
	// VMOVMSKPS sign packing). Selecting it on hardware without the
	// required features is an error.
	KernelSIMD
)

// String returns the path's DDNN_KERNELS spelling.
func (p KernelPath) String() string {
	switch p {
	case KernelNaive:
		return "naive"
	case KernelGo:
		return "go"
	case KernelSIMD:
		return "simd"
	}
	return fmt.Sprintf("KernelPath(%d)", int32(p))
}

// KernelEnv is the environment variable that forces a dispatch path at
// process start: "naive", "go" or "simd" (empty or "auto" selects the
// best supported path). A forced value the host cannot honour panics at
// init — a chaos run or CI matrix leg that asks for a specific path must
// get exactly that path or die loudly, never silently fall back.
const KernelEnv = "DDNN_KERNELS"

// kernelPath holds the active KernelPath; reads are a single atomic
// load, so the per-call dispatch cost is negligible against any kernel.
var kernelPath atomic.Int32

func init() {
	v := os.Getenv(KernelEnv)
	p, err := parseKernelPath(v)
	if err != nil {
		panic(fmt.Sprintf("tensor: %s=%q: %v", KernelEnv, v, err))
	}
	kernelPath.Store(int32(p))
}

// parseKernelPath maps a DDNN_KERNELS value to a path, validating
// hardware support for "simd".
func parseKernelPath(v string) (KernelPath, error) {
	switch v {
	case "", "auto":
		if hasSIMD() {
			return KernelSIMD, nil
		}
		return KernelGo, nil
	case "naive":
		return KernelNaive, nil
	case "go":
		return KernelGo, nil
	case "simd":
		if !hasSIMD() {
			return 0, fmt.Errorf("simd kernels not supported on this CPU/arch")
		}
		return KernelSIMD, nil
	}
	return 0, fmt.Errorf("unknown kernel path (want naive|go|simd|auto)")
}

// CurrentKernelPath returns the active dispatch path. Kernels read it
// once per call, so a concurrent SetKernelPath never tears a single
// GEMM between two implementations.
func CurrentKernelPath() KernelPath {
	return KernelPath(kernelPath.Load())
}

// SetKernelPath switches the active dispatch path at runtime (tests,
// benchmarks and the CI per-path matrix use it; production processes
// normally set it once via DDNN_KERNELS). It fails if the path is
// unknown or unsupported on this host, leaving the active path
// unchanged.
func SetKernelPath(p KernelPath) error {
	if !KernelPathSupported(p) {
		return fmt.Errorf("tensor: kernel path %v not supported on this CPU/arch", p)
	}
	kernelPath.Store(int32(p))
	return nil
}

// SetKernelPathName is SetKernelPath for a DDNN_KERNELS-style name
// ("naive", "go", "simd", "auto" or empty for the best supported path).
func SetKernelPathName(name string) error {
	p, err := parseKernelPath(name)
	if err != nil {
		return fmt.Errorf("tensor: %v", err)
	}
	kernelPath.Store(int32(p))
	return nil
}

// KernelPathSupported reports whether the host can execute the path.
func KernelPathSupported(p KernelPath) bool {
	switch p {
	case KernelNaive, KernelGo:
		return true
	case KernelSIMD:
		return hasSIMD()
	}
	return false
}

// KernelPaths returns every path the host supports, in naive→go→simd
// order. The differential tests, fuzz targets and the kernels benchmark
// iterate it so a host without AVX2 still exercises the portable paths.
func KernelPaths() []KernelPath {
	paths := []KernelPath{KernelNaive, KernelGo}
	if hasSIMD() {
		paths = append(paths, KernelSIMD)
	}
	return paths
}
