package tensor

import "fmt"

// Im2col lowers one sample of an NCHW tensor to the matrix form of its
// convolution: row p = (ci·K + ky)·K + kx of the result holds, for every
// output location (oy, ox), the input value the kernel tap (ci, ky, kx)
// reads there (zero where the tap falls into padding). A convolution then
// reduces to one GEMM: W [outC, inC·K·K] · cols [inC·K·K, oh·ow].
//
// Row order matches the tap-loop convolution's accumulation order
// (channel, then kernel row, then kernel column), so the GEMM sums each
// output element's products in exactly the order the tap loop does.

// Im2colShape returns the [rows, cols] dimensions of the im2col matrix
// for one sample of an [N, C, H, W] input.
func Im2colShape(x *Tensor, kernel, stride, pad int) (rows, cols int) {
	c, h, w := im2colDims(x, kernel, stride, pad)
	oh := (h+2*pad-kernel)/stride + 1
	ow := (w+2*pad-kernel)/stride + 1
	return c * kernel * kernel, oh * ow
}

// Im2col lowers sample i of x into a freshly allocated [rows, cols]
// tensor. Use Im2colInto with a reusable buffer on hot paths.
func Im2col(x *Tensor, sample, kernel, stride, pad int) *Tensor {
	rows, cols := Im2colShape(x, kernel, stride, pad)
	dst := New(rows, cols)
	Im2colInto(dst.data, x, sample, kernel, stride, pad)
	return dst
}

// Im2colInto lowers sample `sample` of x into dst, which must hold at
// least rows·cols elements (see Im2colShape). Contents beyond the matrix
// are left untouched.
func Im2colInto(dst []float32, x *Tensor, sample, kernel, stride, pad int) {
	c, h, w := im2colDims(x, kernel, stride, pad)
	if sample < 0 || sample >= x.shape[0] {
		panic(fmt.Sprintf("tensor: Im2colInto sample %d out of range for shape %v", sample, x.shape))
	}
	oh := (h+2*pad-kernel)/stride + 1
	ow := (w+2*pad-kernel)/stride + 1
	plane := oh * ow
	if need := c * kernel * kernel * plane; len(dst) < need {
		panic(fmt.Sprintf("tensor: Im2colInto dst has %d elements, need %d", len(dst), need))
	}
	xd := x.data[sample*c*h*w : (sample+1)*c*h*w]
	if pad > 0 {
		// Padding taps leave gaps; clear once instead of per-row.
		clear(dst[:c*kernel*kernel*plane])
	}
	p := 0
	for ci := 0; ci < c; ci++ {
		in := xd[ci*h*w : (ci+1)*h*w]
		for ky := 0; ky < kernel; ky++ {
			dy := ky - pad
			for kx := 0; kx < kernel; kx++ {
				dx := kx - pad
				drow := dst[p*plane : (p+1)*plane]
				ox0, ox1 := im2colColRange(ow, w, dx, stride)
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + dy
					if iy < 0 || iy >= h {
						continue
					}
					irow := in[iy*w : (iy+1)*w]
					if stride == 1 {
						copy(drow[oy*ow+ox0:oy*ow+ox1], irow[ox0+dx:ox1+dx])
						continue
					}
					for ox := ox0; ox < ox1; ox++ {
						drow[oy*ow+ox] = irow[ox*stride+dx]
					}
				}
				p++
			}
		}
	}
}

func im2colDims(x *Tensor, kernel, stride, pad int) (c, h, w int) {
	if len(x.shape) != 4 {
		panic(fmt.Sprintf("tensor: Im2col input shape %v, want [N C H W]", x.shape))
	}
	if kernel < 1 || stride < 1 || pad < 0 {
		panic(fmt.Sprintf("tensor: Im2col kernel=%d stride=%d pad=%d invalid", kernel, stride, pad))
	}
	c, h, w = x.shape[1], x.shape[2], x.shape[3]
	if h+2*pad < kernel || w+2*pad < kernel {
		panic(fmt.Sprintf("tensor: Im2col kernel %d exceeds padded input %d×%d", kernel, h+2*pad, w+2*pad))
	}
	return c, h, w
}

// im2colColRange returns the half-open range of output columns whose
// sampled input column ox·stride+dx lies within [0, w).
func im2colColRange(ow, w, dx, stride int) (int, int) {
	ox0 := 0
	if dx < 0 {
		ox0 = (-dx + stride - 1) / stride
	}
	ox1 := ow
	if maxOx := (w - 1 - dx) / stride; maxOx+1 < ox1 {
		ox1 = maxOx + 1
	}
	if ox1 < ox0 {
		ox1 = ox0
	}
	return ox0, ox1
}
