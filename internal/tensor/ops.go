package tensor

import (
	"fmt"
	"math"
)

// Add computes t += o elementwise.
func (t *Tensor) Add(o *Tensor) {
	assertSameShape("Add", t, o)
	td, od := t.data, o.data
	for i := range td {
		td[i] += od[i]
	}
}

// Sub computes t -= o elementwise.
func (t *Tensor) Sub(o *Tensor) {
	assertSameShape("Sub", t, o)
	td, od := t.data, o.data
	for i := range td {
		td[i] -= od[i]
	}
}

// Mul computes t *= o elementwise.
func (t *Tensor) Mul(o *Tensor) {
	assertSameShape("Mul", t, o)
	td, od := t.data, o.data
	for i := range td {
		td[i] *= od[i]
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	td := t.data
	for i := range td {
		td[i] *= s
	}
}

// AddScaled computes t += s*o elementwise (axpy).
func (t *Tensor) AddScaled(s float32, o *Tensor) {
	assertSameShape("AddScaled", t, o)
	td, od := t.data, o.data
	for i := range td {
		td[i] += s * od[i]
	}
}

// Apply replaces each element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	td := t.data
	for i := range td {
		td[i] = f(td[i])
	}
}

// Clamp limits every element to [lo, hi].
func (t *Tensor) Clamp(lo, hi float32) {
	td := t.data
	for i := range td {
		if td[i] < lo {
			td[i] = lo
		} else if td[i] > hi {
			td[i] = hi
		}
	}
}

// Sum returns the sum of all elements (accumulated in float64 for accuracy).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element value.
func (t *Tensor) Max() float32 {
	m := float32(math.Inf(-1))
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element value.
func (t *Tensor) Min() float32 {
	m := float32(math.Inf(1))
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// AbsMax returns the maximum absolute element value.
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of all elements.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// ArgMaxRow returns the index of the maximum value in row r, treating t as
// a [rows, cols] matrix.
func (t *Tensor) ArgMaxRow(r int) int {
	if len(t.shape) != 2 {
		panic("tensor: ArgMaxRow requires a 2-D tensor")
	}
	cols := t.shape[1]
	row := t.data[r*cols : (r+1)*cols]
	best := 0
	for i := 1; i < cols; i++ {
		if row[i] > row[best] {
			best = i
		}
	}
	return best
}

// Row returns a view of row r of a 2-D tensor as a slice.
func (t *Tensor) Row(r int) []float32 {
	if len(t.shape) != 2 {
		panic("tensor: Row requires a 2-D tensor")
	}
	cols := t.shape[1]
	return t.data[r*cols : (r+1)*cols]
}

// SampleSize returns the number of elements in one leading-dimension
// sample block: Size()/Dim(0).
func (t *Tensor) SampleSize() int { return len(t.data) / t.shape[0] }

// Sample returns a view of the i-th leading-dimension block as a slice
// (row-major, all trailing dimensions flattened).
func (t *Tensor) Sample(i int) []float32 {
	ss := t.SampleSize()
	return t.data[i*ss : (i+1)*ss]
}

// Stack concatenates tensors along the leading dimension into a new
// tensor: inputs of shape [n_i, d...] (identical trailing dimensions)
// produce [Σn_i, d...]. It is how the cluster runtime coalesces
// per-sample tensors into one micro-batch so conv/GEMM amortize setup
// across samples.
func Stack(ts []*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Stack of no tensors")
	}
	trailing := ts[0].shape[1:]
	n := 0
	for i, t := range ts {
		if len(t.shape) != len(trailing)+1 {
			panic(fmt.Sprintf("tensor: Stack input %d has %d dims, want %d", i, len(t.shape), len(trailing)+1))
		}
		for j, d := range trailing {
			if t.shape[j+1] != d {
				panic(fmt.Sprintf("tensor: Stack input %d shape %v, want trailing %v", i, t.shape, trailing))
			}
		}
		n += t.shape[0]
	}
	shape := append([]int{n}, trailing...)
	out := New(shape...)
	off := 0
	for _, t := range ts {
		off += copy(out.data[off:], t.data)
	}
	return out
}

// StackInto is Stack writing into a pre-sized destination (shape
// [Σn_i, d...]), so pooled batch assembly avoids the allocation.
func StackInto(dst *Tensor, ts []*Tensor) {
	if len(ts) == 0 {
		panic("tensor: StackInto of no tensors")
	}
	off := 0
	for _, t := range ts {
		off += copy(dst.data[off:], t.data)
	}
	if off != len(dst.data) {
		panic(fmt.Sprintf("tensor: StackInto wrote %d of %d elements", off, len(dst.data)))
	}
}

// SelectSamples gathers the listed leading-dimension blocks into a new
// tensor of shape [len(indices), d...], preserving order. The inverse
// operation for micro-batching: a subset of a batch (e.g. the samples
// that missed an exit) becomes its own smaller batch.
func (t *Tensor) SelectSamples(indices []int) *Tensor {
	if len(t.shape) < 2 {
		panic("tensor: SelectSamples requires at least 2 dims")
	}
	shape := append([]int{len(indices)}, t.shape[1:]...)
	out := New(shape...)
	t.SelectSamplesInto(out, indices)
	return out
}

// SelectSamplesInto is SelectSamples writing into a pre-sized
// destination of shape [len(indices), d...].
func (t *Tensor) SelectSamplesInto(dst *Tensor, indices []int) {
	ss := t.SampleSize()
	for k, i := range indices {
		copy(dst.data[k*ss:(k+1)*ss], t.Sample(i))
	}
}
