//go:build !amd64

package tensor

// gemmSIMD is unreachable on architectures without SIMD kernels —
// KernelSIMD cannot be selected when hasSIMD is false — but the
// dispatch table still links it, so fall through to the portable
// blocked kernel.
func gemmSIMD(c, a, b []float32, i0, i1, k, n int) {
	matmulBlocked(c, a, b, i0, i1, k, n)
}

// gemmSignSIMD is the sign-kernel analogue of gemmSIMD.
func gemmSignSIMD(c, a, b []float32, i0, i1, k, n int) {
	gemmSignBlocked(c, a, b, i0, i1, k, n)
}
