package tensor

// gemmKernel4x16 (gemm_amd64.s) accumulates a 4-row × 16-column tile of
// C over the full shared dimension k: C has row stride n floats, A row
// stride k floats, B row stride n floats. AVX2 without FMA; the
// per-element operation sequence equals the scalar kernels', so results
// are bit-identical.
//
//go:noescape
func gemmKernel4x16(c, a, b *float32, k, n int)

// gemmSignKernel4x16 (gemm_amd64.s) is the ±1 sign variant: B rows are
// added after conditionally flipping their sign bits, which is the same
// IEEE operation as the scalar add/sub kernel.
//
//go:noescape
func gemmSignKernel4x16(c, a, b *float32, k, n int)

// gemmSIMD computes C rows [i0,i1) with the AVX2 4x16 micro-kernel,
// handing row tails (fewer than 4 rows) and column tails (fewer than 16
// columns) to the scalar kernels. Every element still accumulates in
// ascending shared-dimension order, so the result is bit-identical to
// matmulRows.
func gemmSIMD(c, a, b []float32, i0, i1, k, n int) {
	if k == 0 || n == 0 {
		return
	}
	if n < 16 {
		matmulBlocked(c, a, b, i0, i1, k, n)
		return
	}
	i := i0
	for ; i+4 <= i1; i += 4 {
		j := 0
		for ; j+16 <= n; j += 16 {
			gemmKernel4x16(&c[i*n+j], &a[i*k], &b[j], k, n)
		}
		if j < n {
			gemmColsTail(c, a, b, i, i+4, j, k, n)
		}
	}
	matmulRows(c, a, b, i, i1, k, n)
}

// gemmSignSIMD is gemmSIMD for the ±1 sign kernel family.
func gemmSignSIMD(c, a, b []float32, i0, i1, k, n int) {
	if k == 0 || n == 0 {
		return
	}
	if n < 16 {
		gemmSignBlocked(c, a, b, i0, i1, k, n)
		return
	}
	i := i0
	for ; i+4 <= i1; i += 4 {
		j := 0
		for ; j+16 <= n; j += 16 {
			gemmSignKernel4x16(&c[i*n+j], &a[i*k], &b[j], k, n)
		}
		if j < n {
			gemmSignColsTail(c, a, b, i, i+4, j, k, n)
		}
	}
	gemmSignRows(c, a, b, i, i1, k, n)
}

// gemmColsTail finishes columns [j0,n) of C rows [r0,r1) element by
// element in ascending shared-dimension order.
func gemmColsTail(c, a, b []float32, r0, r1, j0, k, n int) {
	for i := r0; i < r1; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := j0; j < n; j++ {
			s := crow[j]
			bi := j
			for p := 0; p < k; p++ {
				s += arow[p] * b[bi]
				bi += n
			}
			crow[j] = s
		}
	}
}

// gemmSignColsTail is gemmColsTail with the sign add/sub in place of
// the multiply.
func gemmSignColsTail(c, a, b []float32, r0, r1, j0, k, n int) {
	for i := r0; i < r1; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := j0; j < n; j++ {
			s := crow[j]
			bi := j
			for p := 0; p < k; p++ {
				if arow[p] > 0 {
					s += b[bi]
				} else {
					s -= b[bi]
				}
				bi += n
			}
			crow[j] = s
		}
	}
}
