package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// MaxDevices is the largest device count the protocol can describe: the
// present-device masks of CloudClassify, EdgeClassify and the batched
// classify headers are uint16 bitmasks, so device indices above 15 would
// silently alias (1 << d overflows and corrupts the mask). Hierarchies
// with more devices must be rejected before any session opens; the
// cluster runtime does so at gateway construction time.
const MaxDevices = 16

// MaxBatch is the largest number of samples one batched session may
// carry; batch frame counts are encoded as uint16.
const MaxBatch = 1<<16 - 1

// appendSampleIDs encodes a uint16 count followed by the IDs.
func appendSampleIDs(dst []byte, ids []uint64) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(ids)))
	for _, id := range ids {
		dst = binary.LittleEndian.AppendUint64(dst, id)
	}
	return dst
}

// readSampleIDs decodes a uint16-counted ID list, returning the rest.
func readSampleIDs(src []byte) ([]uint64, []byte, error) {
	if len(src) < 2 {
		return nil, nil, ErrShortPayload
	}
	n := int(binary.LittleEndian.Uint16(src[0:2]))
	src = src[2:]
	if len(src) < 8*n {
		return nil, nil, ErrShortPayload
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint64(src[8*i:])
	}
	return ids, src[8*n:], nil
}

// PackPresent bit-packs a presence vector for the batch frames: bit i of
// the result marks sample i as present.
func PackPresent(present []bool) []byte {
	out := make([]byte, (len(present)+7)/8)
	for i, p := range present {
		if p {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// UnpackPresent expands a PackPresent bitmask back to n booleans.
func UnpackPresent(packed []byte, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		if i/8 < len(packed) && packed[i/8]&(1<<uint(i%8)) != 0 {
			out[i] = true
		}
	}
	return out
}

// CaptureBatch asks a device to process its sensor frames for a whole
// micro-batch of samples in one forward pass and reply with a
// SummaryBatch. It is the batched analogue of CaptureRequest.
type CaptureBatch struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// ModelVersion pins the session's weights; 0 means the active version.
	ModelVersion uint64
	// SampleIDs lists the batch's samples, in batch order.
	SampleIDs []uint64
}

// MsgType implements Message.
func (*CaptureBatch) MsgType() MsgType { return TypeCaptureBatch }

// SessionID implements Sessioned.
func (m *CaptureBatch) SessionID() uint64 { return m.Session }

func (m *CaptureBatch) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, m.ModelVersion)
	return appendSampleIDs(dst, m.SampleIDs)
}

func (m *CaptureBatch) decodePayload(src []byte) error {
	if len(src) < 16 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.ModelVersion = binary.LittleEndian.Uint64(src[8:16])
	ids, rest, err := readSampleIDs(src[16:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return ErrShortPayload
	}
	m.SampleIDs = ids
	return nil
}

// SummaryBatch is a device's reply to a CaptureBatch: one class-summary
// row per present sample of the batch, in batch order. Present has bit i
// set when the device produced a summary for the batch's i-th sample
// (absent frames — feed errors — clear the bit), and Probs holds exactly
// popcount(Present)·Classes float32 values. Each present row charges the
// same 4·|C| bytes of Eq. (1) as an unbatched LocalSummary.
type SummaryBatch struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// Device is the sending device's index.
	Device uint16
	// Classes is the model's class count (the width of each Probs row).
	Classes uint16
	// Count is the batch length (the number of samples in the
	// CaptureBatch this answers).
	Count uint16
	// Present is the PackPresent bitmask over batch positions.
	Present []byte
	// Probs holds the summary rows of present samples, batch order.
	Probs []float32
}

// MsgType implements Message.
func (*SummaryBatch) MsgType() MsgType { return TypeSummaryBatch }

// SessionID implements Sessioned.
func (m *SummaryBatch) SessionID() uint64 { return m.Session }

// PresentCount returns the number of samples with a summary row.
func (m *SummaryBatch) PresentCount() int {
	c := 0
	for _, b := range m.Present {
		c += bits.OnesCount8(b)
	}
	return c
}

func (m *SummaryBatch) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint16(dst, m.Device)
	dst = binary.LittleEndian.AppendUint16(dst, m.Classes)
	dst = binary.LittleEndian.AppendUint16(dst, m.Count)
	dst = append(dst, m.Present...)
	for _, p := range m.Probs {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(p))
	}
	return dst
}

func (m *SummaryBatch) decodePayload(src []byte) error {
	if len(src) < 14 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.Device = binary.LittleEndian.Uint16(src[8:10])
	m.Classes = binary.LittleEndian.Uint16(src[10:12])
	m.Count = binary.LittleEndian.Uint16(src[12:14])
	src = src[14:]
	pb := (int(m.Count) + 7) / 8
	if len(src) < pb {
		return ErrShortPayload
	}
	m.Present = append([]byte(nil), src[:pb]...)
	src = src[pb:]
	n := m.PresentCount() * int(m.Classes)
	if len(src) != 4*n {
		return ErrShortPayload
	}
	m.Probs = make([]float32, n)
	for i := range m.Probs {
		m.Probs[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return nil
}

// FeatureBatchRequest asks a device for the binarized feature maps of the
// listed samples — the subset of an earlier CaptureBatch that missed the
// local exit. The device answers with a FeatureBatch in the same order.
type FeatureBatchRequest struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// ModelVersion pins the session's weights; 0 means the active version.
	ModelVersion uint64
	// SampleIDs lists the batch's samples, in batch order.
	SampleIDs []uint64
}

// MsgType implements Message.
func (*FeatureBatchRequest) MsgType() MsgType { return TypeFeatureBatchRequest }

// SessionID implements Sessioned.
func (m *FeatureBatchRequest) SessionID() uint64 { return m.Session }

func (m *FeatureBatchRequest) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, m.ModelVersion)
	return appendSampleIDs(dst, m.SampleIDs)
}

func (m *FeatureBatchRequest) decodePayload(src []byte) error {
	if len(src) < 16 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.ModelVersion = binary.LittleEndian.Uint64(src[8:16])
	ids, rest, err := readSampleIDs(src[16:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return ErrShortPayload
	}
	m.SampleIDs = ids
	return nil
}

// FeatureBatch carries one device's bit-packed binarized feature maps for
// Count samples: Count independent PackFeature payloads of (F·H·W+7)/8
// bytes each, concatenated in the order of the request (FeatureBatchRequest
// on the device uplink, the batched classify header's per-sample masks on
// the relay upstream). Each sample charges the same f·o/8 bytes of Eq. (1)
// as an unbatched FeatureUpload.
type FeatureBatch struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// Device is the sending device's index.
	Device uint16
	// F, H, W give the packed feature map's shape: filters × height × width.
	F, H, W uint16
	// Count is the number of samples in the batch.
	Count uint16
	// Bits is the LSB-first bit-packed binarized feature payload.
	Bits []byte
}

// MsgType implements Message.
func (*FeatureBatch) MsgType() MsgType { return TypeFeatureBatch }

// SessionID implements Sessioned.
func (m *FeatureBatch) SessionID() uint64 { return m.Session }

// SampleBytes returns the packed size of one sample's feature map.
func (m *FeatureBatch) SampleBytes() int {
	return (int(m.F)*int(m.H)*int(m.W) + 7) / 8
}

// Sample returns the packed bits of the i-th sample.
func (m *FeatureBatch) Sample(i int) []byte {
	sb := m.SampleBytes()
	return m.Bits[i*sb : (i+1)*sb]
}

func (m *FeatureBatch) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint16(dst, m.Device)
	dst = binary.LittleEndian.AppendUint16(dst, m.F)
	dst = binary.LittleEndian.AppendUint16(dst, m.H)
	dst = binary.LittleEndian.AppendUint16(dst, m.W)
	dst = binary.LittleEndian.AppendUint16(dst, m.Count)
	return append(dst, m.Bits...)
}

func (m *FeatureBatch) decodePayload(src []byte) error {
	if len(src) < 18 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.Device = binary.LittleEndian.Uint16(src[8:10])
	m.F = binary.LittleEndian.Uint16(src[10:12])
	m.H = binary.LittleEndian.Uint16(src[12:14])
	m.W = binary.LittleEndian.Uint16(src[14:16])
	m.Count = binary.LittleEndian.Uint16(src[16:18])
	src = src[18:]
	want := int(m.Count) * m.SampleBytes()
	if len(src) != want {
		return fmt.Errorf("wire: feature batch has %d bytes for %d samples of %d×%d×%d bits (want %d)",
			len(src), m.Count, m.F, m.H, m.W, want)
	}
	m.Bits = append([]byte(nil), src...)
	return nil
}

// CloudClassifyBatch opens a batched cloud classification session: it
// lists the escalating samples and, per sample, the bitmask of devices
// whose features follow (masks may differ across samples — a device can
// drop out mid-batch). The gateway then relays one FeatureBatch per
// device in the union of the masks, each carrying that device's present
// samples in batch order, and the cloud answers with a single
// ResultBatch.
type CloudClassifyBatch struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// ModelVersion pins the session's weights; 0 means the active version.
	ModelVersion uint64
	// Devices is the total device count in the hierarchy.
	Devices uint16
	// SampleIDs lists the escalating samples, batch order.
	SampleIDs []uint64
	// Masks[i] has bit d set when device d's features cover sample i.
	Masks []uint16
}

// MsgType implements Message.
func (*CloudClassifyBatch) MsgType() MsgType { return TypeCloudClassifyBatch }

// SessionID implements Sessioned.
func (m *CloudClassifyBatch) SessionID() uint64 { return m.Session }

// appendIDMaskPairs encodes the shared (count, ids, masks) tail of the
// batched classify headers.
func appendIDMaskPairs(dst []byte, ids []uint64, masks []uint16) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(ids)))
	for i, id := range ids {
		dst = binary.LittleEndian.AppendUint64(dst, id)
		dst = binary.LittleEndian.AppendUint16(dst, masks[i])
	}
	return dst
}

func readIDMaskPairs(src []byte) ([]uint64, []uint16, []byte, error) {
	if len(src) < 2 {
		return nil, nil, nil, ErrShortPayload
	}
	n := int(binary.LittleEndian.Uint16(src[0:2]))
	src = src[2:]
	if len(src) < 10*n {
		return nil, nil, nil, ErrShortPayload
	}
	ids := make([]uint64, n)
	masks := make([]uint16, n)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint64(src[10*i:])
		masks[i] = binary.LittleEndian.Uint16(src[10*i+8:])
	}
	return ids, masks, src[10*n:], nil
}

func (m *CloudClassifyBatch) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, m.ModelVersion)
	dst = binary.LittleEndian.AppendUint16(dst, m.Devices)
	return appendIDMaskPairs(dst, m.SampleIDs, m.Masks)
}

func (m *CloudClassifyBatch) decodePayload(src []byte) error {
	if len(src) < 18 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.ModelVersion = binary.LittleEndian.Uint64(src[8:16])
	m.Devices = binary.LittleEndian.Uint16(src[16:18])
	ids, masks, rest, err := readIDMaskPairs(src[18:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return ErrShortPayload
	}
	m.SampleIDs, m.Masks = ids, masks
	return nil
}

// EdgeClassifyBatch opens a batched edge classification session: the
// batched analogue of EdgeClassify, carrying per-sample device masks like
// CloudClassifyBatch plus the remaining pipeline thresholds (nearest tier
// first). The edge answers the whole batch with one ResultBatch; samples
// confident at the edge exit carry ExitEdge, the rest ride an
// EdgeFeatureBatch to the cloud and come back with its verdicts.
type EdgeClassifyBatch struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// ModelVersion pins the session's weights; 0 means the active version.
	ModelVersion uint64
	// Devices is the total device count in the hierarchy.
	Devices uint16
	// SampleIDs lists the escalating samples, batch order.
	SampleIDs []uint64
	// Masks[i] has bit d set when device d's features cover sample i.
	Masks []uint16
	// Thresholds holds the remaining exit thresholds, nearest tier first,
	// at full float64 precision (see EdgeClassify).
	Thresholds []float64
}

// MsgType implements Message.
func (*EdgeClassifyBatch) MsgType() MsgType { return TypeEdgeClassifyBatch }

// SessionID implements Sessioned.
func (m *EdgeClassifyBatch) SessionID() uint64 { return m.Session }

func (m *EdgeClassifyBatch) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, m.ModelVersion)
	dst = binary.LittleEndian.AppendUint16(dst, m.Devices)
	dst = appendIDMaskPairs(dst, m.SampleIDs, m.Masks)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Thresholds)))
	for _, t := range m.Thresholds {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t))
	}
	return dst
}

func (m *EdgeClassifyBatch) decodePayload(src []byte) error {
	if len(src) < 18 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.ModelVersion = binary.LittleEndian.Uint64(src[8:16])
	m.Devices = binary.LittleEndian.Uint16(src[16:18])
	ids, masks, rest, err := readIDMaskPairs(src[18:])
	if err != nil {
		return err
	}
	if len(rest) < 2 {
		return ErrShortPayload
	}
	n := int(binary.LittleEndian.Uint16(rest[0:2]))
	rest = rest[2:]
	if len(rest) != 8*n {
		return ErrShortPayload
	}
	m.Thresholds = make([]float64, n)
	for i := range m.Thresholds {
		m.Thresholds[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	m.SampleIDs, m.Masks = ids, masks
	return nil
}

// EdgeFeatureBatch carries the bit-packed edge feature maps of the
// samples that missed the edge exit — the batched analogue of
// EdgeFeature. Bits concatenates one PackFeature payload of (F·H·W+7)/8
// bytes per sample, in SampleIDs order. The cloud answers with one
// ResultBatch.
type EdgeFeatureBatch struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// ModelVersion pins the session's weights; 0 means the active version.
	ModelVersion uint64
	// F, H, W give the packed feature map's shape: filters × height × width.
	F, H, W uint16
	// SampleIDs lists the batch's samples, in batch order.
	SampleIDs []uint64
	// Bits is the LSB-first bit-packed binarized feature payload.
	Bits []byte
}

// MsgType implements Message.
func (*EdgeFeatureBatch) MsgType() MsgType { return TypeEdgeFeatureBatch }

// SessionID implements Sessioned.
func (m *EdgeFeatureBatch) SessionID() uint64 { return m.Session }

// SampleBytes returns the packed size of one sample's feature map.
func (m *EdgeFeatureBatch) SampleBytes() int {
	return (int(m.F)*int(m.H)*int(m.W) + 7) / 8
}

// Sample returns the packed bits of the i-th sample.
func (m *EdgeFeatureBatch) Sample(i int) []byte {
	sb := m.SampleBytes()
	return m.Bits[i*sb : (i+1)*sb]
}

func (m *EdgeFeatureBatch) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, m.ModelVersion)
	dst = binary.LittleEndian.AppendUint16(dst, m.F)
	dst = binary.LittleEndian.AppendUint16(dst, m.H)
	dst = binary.LittleEndian.AppendUint16(dst, m.W)
	dst = appendSampleIDs(dst, m.SampleIDs)
	return append(dst, m.Bits...)
}

func (m *EdgeFeatureBatch) decodePayload(src []byte) error {
	if len(src) < 22 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.ModelVersion = binary.LittleEndian.Uint64(src[8:16])
	m.F = binary.LittleEndian.Uint16(src[16:18])
	m.H = binary.LittleEndian.Uint16(src[18:20])
	m.W = binary.LittleEndian.Uint16(src[20:22])
	ids, rest, err := readSampleIDs(src[22:])
	if err != nil {
		return err
	}
	want := len(ids) * m.SampleBytes()
	if len(rest) != want {
		return fmt.Errorf("wire: edge feature batch has %d bytes for %d samples of %d×%d×%d bits (want %d)",
			len(rest), len(ids), m.F, m.H, m.W, want)
	}
	m.SampleIDs = ids
	m.Bits = append([]byte(nil), rest...)
	return nil
}

// BatchVerdict is one sample's outcome inside a ResultBatch.
type BatchVerdict struct {
	// SampleID identifies the sample being classified.
	SampleID uint64
	// Exit names the tier that produced the verdict.
	Exit ExitPoint
	// Class is the predicted class index.
	Class uint16
	// Probs holds the per-class probabilities.
	Probs []float32
}

// ResultBatch reports the per-sample verdicts of one batched
// classification session in a single frame — the batched analogue of
// ClassifyResult. Verdicts may carry different exits: in a three-tier
// hierarchy the edge answers its confident samples at ExitEdge and relays
// cloud verdicts for the rest.
type ResultBatch struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// Verdicts are the per-sample results, in header order.
	Verdicts []BatchVerdict
}

// MsgType implements Message.
func (*ResultBatch) MsgType() MsgType { return TypeResultBatch }

// SessionID implements Sessioned.
func (m *ResultBatch) SessionID() uint64 { return m.Session }

func (m *ResultBatch) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Verdicts)))
	for _, v := range m.Verdicts {
		dst = binary.LittleEndian.AppendUint64(dst, v.SampleID)
		dst = append(dst, byte(v.Exit))
		dst = binary.LittleEndian.AppendUint16(dst, v.Class)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(v.Probs)))
		for _, p := range v.Probs {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(p))
		}
	}
	return dst
}

func (m *ResultBatch) decodePayload(src []byte) error {
	if len(src) < 10 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	n := int(binary.LittleEndian.Uint16(src[8:10]))
	src = src[10:]
	m.Verdicts = make([]BatchVerdict, 0, n)
	for i := 0; i < n; i++ {
		if len(src) < 13 {
			return ErrShortPayload
		}
		v := BatchVerdict{
			SampleID: binary.LittleEndian.Uint64(src[0:8]),
			Exit:     ExitPoint(src[8]),
			Class:    binary.LittleEndian.Uint16(src[9:11]),
		}
		np := int(binary.LittleEndian.Uint16(src[11:13]))
		src = src[13:]
		if len(src) < 4*np {
			return ErrShortPayload
		}
		v.Probs = make([]float32, np)
		for j := range v.Probs {
			v.Probs[j] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*j:]))
		}
		src = src[4*np:]
		m.Verdicts = append(m.Verdicts, v)
	}
	if len(src) != 0 {
		return ErrShortPayload
	}
	return nil
}
