package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// encodeFrame is a test helper returning the full wire frame of m.
func encodeFrame(tb testing.TB, m Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if _, err := Encode(&buf, m); err != nil {
		tb.Fatalf("encode seed %v: %v", m.MsgType(), err)
	}
	return buf.Bytes()
}

// seedMessages covers every message type of the protocol, so the fuzz
// corpus starts from one valid frame per decoder path.
func seedMessages() []Message {
	return []Message{
		&Hello{NodeID: "device-3", Role: RoleDevice, Device: 3},
		&LocalSummary{Session: 17, SampleID: 42, Device: 1, Probs: []float32{0.1, 0.7, 0.2}},
		&FeatureRequest{Session: 3, SampleID: 99, ModelVersion: 2},
		&FeatureUpload{Session: 9, SampleID: 7, Device: 2, F: 4, H: 16, W: 16, Bits: make([]byte, 4*16*16/8)},
		&ClassifyResult{Session: 1 << 40, SampleID: 5, Exit: ExitCloud, Class: 2, Probs: []float32{0.05, 0.05, 0.9}},
		&Heartbeat{NodeID: "edge-0", Seq: 12345},
		&Error{Session: 12, Code: 404, Msg: "no such sample"},
		&CaptureRequest{Session: 2, SampleID: 31337, ModelVersion: 1},
		&CloudClassify{Session: 6, SampleID: 8, ModelVersion: 3, Devices: 6, Mask: 0b101101},
		&EdgeClassify{Session: 11, SampleID: 9, ModelVersion: 4, Devices: 6, Mask: 0b011011, Thresholds: []float64{0.8, 0.5}},
		&EdgeFeature{Session: 13, SampleID: 21, ModelVersion: 5, F: 8, H: 8, W: 8, Bits: make([]byte, 64)},
		&CaptureBatch{Session: 14, ModelVersion: 2, SampleIDs: []uint64{3, 1, 4}},
		&SummaryBatch{Session: 15, Device: 2, Classes: 3, Count: 3,
			Present: PackPresent([]bool{true, false, true}),
			Probs:   []float32{0.1, 0.7, 0.2, 0.9, 0.05, 0.05}},
		&FeatureBatchRequest{Session: 16, ModelVersion: 2, SampleIDs: []uint64{7, 9}},
		&FeatureBatch{Session: 17, Device: 1, F: 4, H: 16, W: 16, Count: 2, Bits: make([]byte, 256)},
		&CloudClassifyBatch{Session: 18, ModelVersion: 6, Devices: 6, SampleIDs: []uint64{5, 6}, Masks: []uint16{0b111111, 0b101101}},
		&EdgeClassifyBatch{Session: 19, ModelVersion: 7, Devices: 6, SampleIDs: []uint64{5}, Masks: []uint16{0b011011}, Thresholds: []float64{0.8, 0.5}},
		&EdgeFeatureBatch{Session: 20, ModelVersion: 8, F: 8, H: 8, W: 8, SampleIDs: []uint64{11, 12}, Bits: make([]byte, 128)},
		&ResultBatch{Session: 21, Verdicts: []BatchVerdict{
			{SampleID: 5, Exit: ExitEdge, Class: 1, Probs: []float32{0.1, 0.8, 0.1}},
			{SampleID: 6, Exit: ExitCloud, Class: 0, Probs: []float32{0.9, 0.05, 0.05}},
		}},
		&DeviceHello{NodeID: "device-4", Slot: 4, Tenant: "tenant-a", Addr: "127.0.0.1:9104"},
		&DeviceWelcome{Slot: 4, Devices: 6, ConfigVersion: 17},
		&DeviceGoodbye{NodeID: "device-4", Slot: 4, Reason: "draining"},
	}
}

// FuzzDecode feeds arbitrary byte streams to the frame decoder. The
// decoder must never panic or over-allocate: it either returns an error
// or a message that survives a bit-exact re-encode/decode round trip.
func FuzzDecode(f *testing.F) {
	for _, m := range seedMessages() {
		frame := encodeFrame(f, m)
		f.Add(frame)
		// Truncations and corruptions of valid frames are the
		// interesting neighborhood; seed a few directly.
		if len(frame) > 1 {
			f.Add(frame[:len(frame)/2])
		}
		mut := append([]byte(nil), frame...)
		mut[len(mut)-1] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0x17, 0xDD, Version, byte(TypeHeartbeat), 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // malformed input must only ever yield an error
		}
		reenc := encodeFrame(t, msg)
		again, err := Decode(bytes.NewReader(reenc))
		if err != nil {
			t.Fatalf("re-decode of %v failed: %v", msg.MsgType(), err)
		}
		if !bytes.Equal(reenc, encodeFrame(t, again)) {
			t.Fatalf("%v not stable under encode/decode", msg.MsgType())
		}
		// The decoder must consume exactly one frame: the re-encoded
		// frame can never be longer than the input that produced it.
		if len(reenc) > len(data) {
			t.Fatalf("%v re-encodes to %d bytes from %d input bytes", msg.MsgType(), len(reenc), len(data))
		}
	})
}

// FuzzRoundTrip builds one message of every type from fuzzer-chosen
// fields and asserts a bit-exact encode→decode→encode round trip, so
// every encoder/decoder pair is exercised across its whole field space
// (including NaN probabilities and empty slices).
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint64(2), uint16(3), uint16(4), "node", []byte{1, 2, 3, 4})
	f.Add(uint8(3), uint64(9), uint64(7), uint16(2), uint16(0xFFFF), "", []byte{})
	f.Add(uint8(9), uint64(1<<63), uint64(0), uint16(6), uint16(0b101101), "edge", []byte{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, kind uint8, session, sample uint64, a, b uint16, s string, blob []byte) {
		m := buildMessage(kind, session, sample, a, b, s, blob)
		var buf bytes.Buffer
		if _, err := Encode(&buf, m); err != nil {
			t.Fatalf("encode %v: %v", m.MsgType(), err)
		}
		frame := append([]byte(nil), buf.Bytes()...)
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode %v: %v", m.MsgType(), err)
		}
		if got.MsgType() != m.MsgType() {
			t.Fatalf("round trip changed type %v → %v", m.MsgType(), got.MsgType())
		}
		// Compare re-encoded bytes rather than structs: bit-exact for
		// every field, and indifferent to NaN != NaN and nil vs empty.
		var buf2 bytes.Buffer
		if _, err := Encode(&buf2, got); err != nil {
			t.Fatalf("re-encode %v: %v", got.MsgType(), err)
		}
		if !bytes.Equal(frame, buf2.Bytes()) {
			t.Fatalf("%v round trip not bit-exact:\n in  %x\n out %x", m.MsgType(), frame, buf2.Bytes())
		}
	})
}

// buildMessage derives a structurally valid message of the kind-selected
// type from raw fuzz inputs.
func buildMessage(kind uint8, session, sample uint64, a, b uint16, s string, blob []byte) Message {
	if len(s) > 1024 {
		s = s[:1024]
	}
	probs := make([]float32, len(blob)/4%64)
	for i := range probs {
		probs[i] = math.Float32frombits(binary.LittleEndian.Uint32(blob[4*i:]))
	}
	// Feature shapes must be consistent with the bit payload; derive
	// small dimensions and size the payload to match.
	shape := func(x, y uint16) (uint16, uint16, uint16, []byte) {
		fDim := x%8 + 1
		h := y%16 + 1
		w := x/8%16 + 1
		bits := make([]byte, (int(fDim)*int(h)*int(w)+7)/8)
		copy(bits, blob)
		return fDim, h, w, bits
	}
	// Batched frames derive their variable-length lists from the blob.
	ids := make([]uint64, len(blob)/3%9)
	for i := range ids {
		ids[i] = sample + uint64(i)*uint64(a+1)
	}
	masks := make([]uint16, len(ids))
	for i := range masks {
		masks[i] = b + uint16(i)
	}
	// Model version pinning rides every session-opening frame.
	mv := session ^ sample
	switch kind % 22 {
	case 0:
		return &Hello{NodeID: s, Role: Role(a), Device: b}
	case 1:
		return &LocalSummary{Session: session, SampleID: sample, Device: a, Probs: probs}
	case 2:
		return &FeatureRequest{Session: session, SampleID: sample, ModelVersion: mv}
	case 3:
		fDim, h, w, bits := shape(a, b)
		return &FeatureUpload{Session: session, SampleID: sample, Device: b, F: fDim, H: h, W: w, Bits: bits}
	case 4:
		return &ClassifyResult{Session: session, SampleID: sample, Exit: ExitPoint(a), Class: b, Probs: probs}
	case 5:
		return &Heartbeat{NodeID: s, Seq: session}
	case 6:
		return &Error{Session: session, Code: a, Msg: s}
	case 7:
		return &CaptureRequest{Session: session, SampleID: sample, ModelVersion: mv}
	case 8:
		return &CloudClassify{Session: session, SampleID: sample, ModelVersion: mv, Devices: a, Mask: b}
	case 9:
		ts := make([]float64, len(blob)/8%16)
		for i := range ts {
			ts[i] = math.Float64frombits(binary.LittleEndian.Uint64(blob[8*i:]))
		}
		return &EdgeClassify{Session: session, SampleID: sample, ModelVersion: mv, Devices: a, Mask: b, Thresholds: ts}
	case 10:
		fDim, h, w, bits := shape(b, a)
		return &EdgeFeature{Session: session, SampleID: sample, ModelVersion: mv, F: fDim, H: h, W: w, Bits: bits}
	case 11:
		return &CaptureBatch{Session: session, ModelVersion: mv, SampleIDs: ids}
	case 12:
		classes := int(b%4) + 1
		count := int(a % 8)
		present := make([]bool, count)
		popcount := 0
		for i := range present {
			present[i] = i < len(blob) && blob[i]&1 != 0
			if present[i] {
				popcount++
			}
		}
		sProbs := make([]float32, popcount*classes)
		for i := range sProbs {
			sProbs[i] = float32(i) / 7
		}
		return &SummaryBatch{Session: session, Device: a, Classes: uint16(classes),
			Count: uint16(count), Present: PackPresent(present), Probs: sProbs}
	case 13:
		return &FeatureBatchRequest{Session: session, ModelVersion: mv, SampleIDs: ids}
	case 14:
		fDim, h, w, one := shape(a, b)
		count := int(b % 4)
		bits := make([]byte, 0, count*len(one))
		for i := 0; i < count; i++ {
			bits = append(bits, one...)
		}
		return &FeatureBatch{Session: session, Device: b, F: fDim, H: h, W: w, Count: uint16(count), Bits: bits}
	case 15:
		return &CloudClassifyBatch{Session: session, ModelVersion: mv, Devices: a, SampleIDs: ids, Masks: masks}
	case 16:
		ts := make([]float64, len(blob)/8%16)
		for i := range ts {
			ts[i] = math.Float64frombits(binary.LittleEndian.Uint64(blob[8*i:]))
		}
		return &EdgeClassifyBatch{Session: session, ModelVersion: mv, Devices: a, SampleIDs: ids, Masks: masks, Thresholds: ts}
	case 17:
		fDim, h, w, one := shape(b, a)
		bits := make([]byte, 0, len(ids)*len(one))
		for range ids {
			bits = append(bits, one...)
		}
		return &EdgeFeatureBatch{Session: session, ModelVersion: mv, F: fDim, H: h, W: w, SampleIDs: ids, Bits: bits}
	case 19:
		tenant := ""
		if len(blob) > 0 {
			tenant = s[:len(s)/2]
		}
		return &DeviceHello{NodeID: s, Slot: a, Tenant: tenant, Addr: s}
	case 20:
		return &DeviceWelcome{Slot: a, Devices: b, ConfigVersion: session}
	case 21:
		return &DeviceGoodbye{NodeID: s, Slot: b, Reason: s}
	default:
		vs := make([]BatchVerdict, len(ids))
		for i := range vs {
			vs[i] = BatchVerdict{SampleID: ids[i], Exit: ExitPoint(uint8(a) + uint8(i)), Class: b, Probs: probs}
		}
		return &ResultBatch{Session: session, Verdicts: vs}
	}
}
