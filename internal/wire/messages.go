package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Role identifies a node's position in the distributed computing
// hierarchy.
type Role uint8

// Node roles.
const (
	RoleDevice Role = iota + 1
	RoleEdge
	RoleCloud
	RoleGateway
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleDevice:
		return "device"
	case RoleEdge:
		return "edge"
	case RoleCloud:
		return "cloud"
	case RoleGateway:
		return "gateway"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Hello announces a node after connecting.
type Hello struct {
	// NodeID names the sending node.
	NodeID string
	// Role is the sender's role in the hierarchy.
	Role Role
	// Device is the device index for RoleDevice nodes.
	Device uint16
}

// MsgType implements Message.
func (*Hello) MsgType() MsgType { return TypeHello }

func (m *Hello) appendPayload(dst []byte) []byte {
	dst = appendString(dst, m.NodeID)
	dst = append(dst, byte(m.Role))
	return binary.LittleEndian.AppendUint16(dst, m.Device)
}

func (m *Hello) decodePayload(src []byte) error {
	s, rest, err := readString(src)
	if err != nil {
		return err
	}
	if len(rest) < 3 {
		return ErrShortPayload
	}
	m.NodeID = s
	m.Role = Role(rest[0])
	m.Device = binary.LittleEndian.Uint16(rest[1:3])
	return nil
}

// LocalSummary is the per-sample class-probability vector a device sends to
// the local aggregator. Its payload charges exactly 4 bytes per class, the
// first term of Eq. (1).
type LocalSummary struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// SampleID identifies the sample being classified.
	SampleID uint64
	// Device is the sending device's index.
	Device uint16
	// Probs holds the per-class probabilities.
	Probs []float32
}

// MsgType implements Message.
func (*LocalSummary) MsgType() MsgType { return TypeLocalSummary }

// SessionID implements Sessioned.
func (m *LocalSummary) SessionID() uint64 { return m.Session }

func (m *LocalSummary) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, m.SampleID)
	dst = binary.LittleEndian.AppendUint16(dst, m.Device)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Probs)))
	for _, p := range m.Probs {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(p))
	}
	return dst
}

func (m *LocalSummary) decodePayload(src []byte) error {
	if len(src) < 20 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.SampleID = binary.LittleEndian.Uint64(src[8:16])
	m.Device = binary.LittleEndian.Uint16(src[16:18])
	n := int(binary.LittleEndian.Uint16(src[18:20]))
	src = src[20:]
	if len(src) != 4*n {
		return ErrShortPayload
	}
	m.Probs = make([]float32, n)
	for i := range m.Probs {
		m.Probs[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return nil
}

// SummaryPayloadBytes returns the Eq. (1) accounting charge of a summary:
// 4·|C| bytes, excluding framing overhead.
func SummaryPayloadBytes(classes int) int { return 4 * classes }

// FeatureRequest asks a device to upload its binarized feature map for a
// session that missed the local exit.
type FeatureRequest struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// SampleID identifies the sample being classified.
	SampleID uint64
	// ModelVersion pins the session's weights; 0 means the active version.
	ModelVersion uint64
}

// MsgType implements Message.
func (*FeatureRequest) MsgType() MsgType { return TypeFeatureRequest }

// SessionID implements Sessioned.
func (m *FeatureRequest) SessionID() uint64 { return m.Session }

func (m *FeatureRequest) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, m.SampleID)
	return binary.LittleEndian.AppendUint64(dst, m.ModelVersion)
}

func (m *FeatureRequest) decodePayload(src []byte) error {
	if len(src) != 24 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.SampleID = binary.LittleEndian.Uint64(src[8:16])
	m.ModelVersion = binary.LittleEndian.Uint64(src[16:24])
	return nil
}

// FeatureUpload carries a device's bit-packed binarized feature map: f
// filters of h×w bits each, f·h·w/8 bytes — the second term of Eq. (1).
type FeatureUpload struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// SampleID identifies the sample being classified.
	SampleID uint64
	// Device is the sending device's index.
	Device uint16
	// F, H, W give the packed feature map's shape: filters × height × width.
	F, H, W uint16
	// Bits is the LSB-first bit-packed binarized feature payload.
	Bits []byte
}

// MsgType implements Message.
func (*FeatureUpload) MsgType() MsgType { return TypeFeatureUpload }

// SessionID implements Sessioned.
func (m *FeatureUpload) SessionID() uint64 { return m.Session }

func (m *FeatureUpload) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, m.SampleID)
	dst = binary.LittleEndian.AppendUint16(dst, m.Device)
	dst = binary.LittleEndian.AppendUint16(dst, m.F)
	dst = binary.LittleEndian.AppendUint16(dst, m.H)
	dst = binary.LittleEndian.AppendUint16(dst, m.W)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Bits)))
	return append(dst, m.Bits...)
}

func (m *FeatureUpload) decodePayload(src []byte) error {
	if len(src) < 28 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.SampleID = binary.LittleEndian.Uint64(src[8:16])
	m.Device = binary.LittleEndian.Uint16(src[16:18])
	m.F = binary.LittleEndian.Uint16(src[18:20])
	m.H = binary.LittleEndian.Uint16(src[20:22])
	m.W = binary.LittleEndian.Uint16(src[22:24])
	n := int(binary.LittleEndian.Uint32(src[24:28]))
	src = src[28:]
	if len(src) != n {
		return ErrShortPayload
	}
	want := (int(m.F)*int(m.H)*int(m.W) + 7) / 8
	if n != want {
		return fmt.Errorf("wire: feature upload has %d bytes for %d×%d×%d bits (want %d)", n, m.F, m.H, m.W, want)
	}
	m.Bits = append([]byte(nil), src...)
	return nil
}

// ExitPoint identifies where a sample was classified.
type ExitPoint uint8

// Exit points in hierarchy order.
const (
	ExitLocal ExitPoint = iota + 1
	ExitEdge
	ExitCloud
)

// String names the exit point.
func (e ExitPoint) String() string {
	switch e {
	case ExitLocal:
		return "local"
	case ExitEdge:
		return "edge"
	case ExitCloud:
		return "cloud"
	default:
		return fmt.Sprintf("ExitPoint(%d)", uint8(e))
	}
}

// ClassifyResult reports the classification of a sample.
type ClassifyResult struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// SampleID identifies the sample being classified.
	SampleID uint64
	// Exit names the tier that produced the verdict.
	Exit ExitPoint
	// Class is the predicted class index.
	Class uint16
	// Probs holds the per-class probabilities.
	Probs []float32
}

// MsgType implements Message.
func (*ClassifyResult) MsgType() MsgType { return TypeClassifyResult }

// SessionID implements Sessioned.
func (m *ClassifyResult) SessionID() uint64 { return m.Session }

func (m *ClassifyResult) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, m.SampleID)
	dst = append(dst, byte(m.Exit))
	dst = binary.LittleEndian.AppendUint16(dst, m.Class)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Probs)))
	for _, p := range m.Probs {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(p))
	}
	return dst
}

func (m *ClassifyResult) decodePayload(src []byte) error {
	if len(src) < 21 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.SampleID = binary.LittleEndian.Uint64(src[8:16])
	m.Exit = ExitPoint(src[16])
	m.Class = binary.LittleEndian.Uint16(src[17:19])
	n := int(binary.LittleEndian.Uint16(src[19:21]))
	src = src[21:]
	if len(src) != 4*n {
		return ErrShortPayload
	}
	m.Probs = make([]float32, n)
	for i := range m.Probs {
		m.Probs[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return nil
}

// Heartbeat is the liveness signal for failure detection.
type Heartbeat struct {
	// NodeID names the sending node.
	NodeID string
	// Seq is the probe sequence number the receiver echoes back.
	Seq uint64
}

// MsgType implements Message.
func (*Heartbeat) MsgType() MsgType { return TypeHeartbeat }

func (m *Heartbeat) appendPayload(dst []byte) []byte {
	dst = appendString(dst, m.NodeID)
	return binary.LittleEndian.AppendUint64(dst, m.Seq)
}

func (m *Heartbeat) decodePayload(src []byte) error {
	s, rest, err := readString(src)
	if err != nil {
		return err
	}
	if len(rest) != 8 {
		return ErrShortPayload
	}
	m.NodeID = s
	m.Seq = binary.LittleEndian.Uint64(rest)
	return nil
}

// Error reports a protocol or processing failure. Session routes the error
// to the inference session it aborts; zero means connection-scoped.
type Error struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// Code is an HTTP-style status (400 bad request, 426 unknown model
	// version, 503 tier above the responder unreachable).
	Code uint16
	// Msg is the human-readable error description.
	Msg string
}

// MsgType implements Message.
func (*Error) MsgType() MsgType { return TypeError }

// SessionID implements Sessioned.
func (m *Error) SessionID() uint64 { return m.Session }

func (m *Error) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint16(dst, m.Code)
	return appendString(dst, m.Msg)
}

func (m *Error) decodePayload(src []byte) error {
	if len(src) < 10 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.Code = binary.LittleEndian.Uint16(src[8:10])
	s, rest, err := readString(src[10:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return ErrShortPayload
	}
	m.Msg = s
	return nil
}

// CaptureRequest asks a device to process its sensor frame for a sample
// and reply with a LocalSummary.
type CaptureRequest struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// SampleID identifies the sample being classified.
	SampleID uint64
	// ModelVersion pins the session's weights; 0 means the active version.
	ModelVersion uint64
}

// MsgType implements Message.
func (*CaptureRequest) MsgType() MsgType { return TypeCaptureRequest }

// SessionID implements Sessioned.
func (m *CaptureRequest) SessionID() uint64 { return m.Session }

func (m *CaptureRequest) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, m.SampleID)
	return binary.LittleEndian.AppendUint64(dst, m.ModelVersion)
}

func (m *CaptureRequest) decodePayload(src []byte) error {
	if len(src) != 24 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.SampleID = binary.LittleEndian.Uint64(src[8:16])
	m.ModelVersion = binary.LittleEndian.Uint64(src[16:24])
	return nil
}

// CloudClassify opens a cloud classification session for a sample: it
// announces which devices are present (bitmask), after which the gateway
// relays exactly popcount(Mask) FeatureUploads and the cloud replies with a
// ClassifyResult.
type CloudClassify struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// SampleID identifies the sample being classified.
	SampleID uint64
	// ModelVersion pins the session's weights; 0 means the active version.
	ModelVersion uint64
	// Devices is the total device count in the hierarchy.
	Devices uint16
	// Mask has bit d set when device d's features follow.
	Mask uint16
}

// MsgType implements Message.
func (*CloudClassify) MsgType() MsgType { return TypeCloudClassify }

// SessionID implements Sessioned.
func (m *CloudClassify) SessionID() uint64 { return m.Session }

func (m *CloudClassify) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, m.SampleID)
	dst = binary.LittleEndian.AppendUint64(dst, m.ModelVersion)
	dst = binary.LittleEndian.AppendUint16(dst, m.Devices)
	return binary.LittleEndian.AppendUint16(dst, m.Mask)
}

func (m *CloudClassify) decodePayload(src []byte) error {
	if len(src) != 28 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.SampleID = binary.LittleEndian.Uint64(src[8:16])
	m.ModelVersion = binary.LittleEndian.Uint64(src[16:24])
	m.Devices = binary.LittleEndian.Uint16(src[24:26])
	m.Mask = binary.LittleEndian.Uint16(src[26:28])
	return nil
}

// PresentCount returns the number of devices whose features follow.
func (m *CloudClassify) PresentCount() int {
	return bits.OnesCount16(m.Mask)
}

// EdgeClassify opens an edge classification session for a sample: it
// announces which devices' FeatureUploads follow (exactly
// popcount(Mask) of them) and carries the remaining exit-stage
// thresholds of the escalation pipeline, nearest tier first —
// Thresholds[0] is the receiving edge's own exit threshold, and any
// further entries ride along to deeper tiers. An empty list means the
// receiving tier never exits and always escalates. The edge answers
// with a ClassifyResult (ExitEdge for confident samples, or the
// relayed upstream verdict).
type EdgeClassify struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// SampleID identifies the sample being classified.
	SampleID uint64
	// ModelVersion pins the session's weights; 0 means the active version.
	ModelVersion uint64
	// Devices is the total device count in the hierarchy.
	Devices uint16
	// Mask has bit d set when device d's features follow.
	Mask uint16
	// Thresholds holds normalized-entropy exit thresholds for this and
	// deeper tiers, encoded at full float64 precision so distributed
	// exit decisions are bit-identical to in-process staged inference.
	Thresholds []float64
}

// MsgType implements Message.
func (*EdgeClassify) MsgType() MsgType { return TypeEdgeClassify }

// SessionID implements Sessioned.
func (m *EdgeClassify) SessionID() uint64 { return m.Session }

func (m *EdgeClassify) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, m.SampleID)
	dst = binary.LittleEndian.AppendUint64(dst, m.ModelVersion)
	dst = binary.LittleEndian.AppendUint16(dst, m.Devices)
	dst = binary.LittleEndian.AppendUint16(dst, m.Mask)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Thresholds)))
	for _, t := range m.Thresholds {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t))
	}
	return dst
}

func (m *EdgeClassify) decodePayload(src []byte) error {
	if len(src) < 30 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.SampleID = binary.LittleEndian.Uint64(src[8:16])
	m.ModelVersion = binary.LittleEndian.Uint64(src[16:24])
	m.Devices = binary.LittleEndian.Uint16(src[24:26])
	m.Mask = binary.LittleEndian.Uint16(src[26:28])
	n := int(binary.LittleEndian.Uint16(src[28:30]))
	src = src[30:]
	if len(src) != 8*n {
		return ErrShortPayload
	}
	m.Thresholds = make([]float64, n)
	for i := range m.Thresholds {
		m.Thresholds[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return nil
}

// PresentCount returns the number of devices whose features follow.
func (m *EdgeClassify) PresentCount() int {
	return bits.OnesCount16(m.Mask)
}

// EdgeFeature carries the bit-packed binarized edge feature map an edge
// node escalates to the cloud when a sample misses the edge exit: f
// edge filters of h×w bits each, f·h·w/8 bytes — the edge-tier analogue
// of the device FeatureUpload. It is a complete escalation on its own
// (the edge has already aggregated the devices), so the cloud replies
// with a ClassifyResult directly.
type EdgeFeature struct {
	// Session tags the inference session this frame belongs to.
	Session uint64
	// SampleID identifies the sample being classified.
	SampleID uint64
	// ModelVersion pins the session's weights; 0 means the active version.
	ModelVersion uint64
	// F, H, W give the packed feature map's shape: filters × height × width.
	F, H, W uint16
	// Bits is the LSB-first bit-packed binarized feature payload.
	Bits []byte
}

// MsgType implements Message.
func (*EdgeFeature) MsgType() MsgType { return TypeEdgeFeature }

// SessionID implements Sessioned.
func (m *EdgeFeature) SessionID() uint64 { return m.Session }

func (m *EdgeFeature) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, m.SampleID)
	dst = binary.LittleEndian.AppendUint64(dst, m.ModelVersion)
	dst = binary.LittleEndian.AppendUint16(dst, m.F)
	dst = binary.LittleEndian.AppendUint16(dst, m.H)
	dst = binary.LittleEndian.AppendUint16(dst, m.W)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Bits)))
	return append(dst, m.Bits...)
}

func (m *EdgeFeature) decodePayload(src []byte) error {
	if len(src) < 34 {
		return ErrShortPayload
	}
	m.Session = binary.LittleEndian.Uint64(src[0:8])
	m.SampleID = binary.LittleEndian.Uint64(src[8:16])
	m.ModelVersion = binary.LittleEndian.Uint64(src[16:24])
	m.F = binary.LittleEndian.Uint16(src[24:26])
	m.H = binary.LittleEndian.Uint16(src[26:28])
	m.W = binary.LittleEndian.Uint16(src[28:30])
	n := int(binary.LittleEndian.Uint32(src[30:34]))
	src = src[34:]
	if len(src) != n {
		return ErrShortPayload
	}
	want := (int(m.F)*int(m.H)*int(m.W) + 7) / 8
	if n != want {
		return fmt.Errorf("wire: edge feature has %d bytes for %d×%d×%d bits (want %d)", n, m.F, m.H, m.W, want)
	}
	m.Bits = append([]byte(nil), src...)
	return nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func readString(src []byte) (string, []byte, error) {
	if len(src) < 2 {
		return "", nil, ErrShortPayload
	}
	n := int(binary.LittleEndian.Uint16(src[0:2]))
	src = src[2:]
	if len(src) < n {
		return "", nil, ErrShortPayload
	}
	return string(src[:n]), src[n:], nil
}
