//go:build ignore

// Regenerates the checked-in FuzzDecode seed corpus from the current
// codec, so the seeds stay valid frames across protocol version bumps:
//
//	cd internal/wire && go run gen_corpus.go
//
// Run it after any layout or version change, and add an entry here for
// every new message type (see docs/WIRE.md, "Evolving the protocol").
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/ddnn/ddnn-go/internal/wire"
)

func frame(m wire.Message) []byte {
	var buf bytes.Buffer
	if _, err := wire.Encode(&buf, m); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func main() {
	hello := frame(&wire.Hello{NodeID: "device-3", Role: wire.RoleDevice, Device: 3})
	summary := frame(&wire.LocalSummary{Session: 17, SampleID: 42, Device: 1, Probs: []float32{0.1, 0.7, 0.2}})
	badtype := append([]byte(nil), summary...)
	badtype[3] = 200
	oversize := append([]byte(nil), frame(&wire.Heartbeat{NodeID: "edge-0", Seq: 12345})[:8]...)
	oversize[4], oversize[5], oversize[6], oversize[7] = 0xFF, 0xFF, 0xFF, 0x7F

	seeds := map[string][]byte{
		"seed-hello":                   hello,
		"seed-local-summary":           summary,
		"seed-local-summary-badtype":   badtype,
		"seed-local-summary-truncated": summary[:20],
		"seed-feature-req":             frame(&wire.FeatureRequest{Session: 3, SampleID: 99, ModelVersion: 2}),
		"seed-feature-upload":          frame(&wire.FeatureUpload{Session: 9, SampleID: 7, Device: 2, F: 4, H: 16, W: 16, Bits: make([]byte, 4*16*16/8)}),
		"seed-classify":                frame(&wire.ClassifyResult{Session: 1 << 40, SampleID: 5, Exit: wire.ExitCloud, Class: 2, Probs: []float32{0.05, 0.05, 0.9}}),
		"seed-heartbeat":               frame(&wire.Heartbeat{NodeID: "edge-0", Seq: 12345}),
		"seed-error":                   frame(&wire.Error{Session: 12, Code: 404, Msg: "no such sample"}),
		"seed-error-model":             frame(&wire.Error{Session: 12, Code: 426, Msg: "model version 9 not in registry"}),
		"seed-capture":                 frame(&wire.CaptureRequest{Session: 2, SampleID: 31337, ModelVersion: 1}),
		"seed-cloud-classify":          frame(&wire.CloudClassify{Session: 6, SampleID: 8, ModelVersion: 3, Devices: 6, Mask: 0b101101}),
		"seed-edge-classify":           frame(&wire.EdgeClassify{Session: 11, SampleID: 9, ModelVersion: 4, Devices: 6, Mask: 0b011011, Thresholds: []float64{0.8, 0.5}}),
		"seed-edge-feature":            frame(&wire.EdgeFeature{Session: 13, SampleID: 21, ModelVersion: 5, F: 8, H: 8, W: 8, Bits: make([]byte, 64)}),
		"seed-device-hello":            frame(&wire.DeviceHello{NodeID: "device-4", Slot: 4, Tenant: "tenant-a", Addr: "127.0.0.1:9104"}),
		"seed-device-welcome":          frame(&wire.DeviceWelcome{Slot: 4, Devices: 6, ConfigVersion: 17}),
		"seed-device-goodbye":          frame(&wire.DeviceGoodbye{NodeID: "device-4", Slot: 4, Reason: "draining"}),
		"seed-empty":                   {},
		"seed-oversize-header":         oversize,
	}

	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", name, len(data))
	}
}
