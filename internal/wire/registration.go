package wire

import (
	"encoding/binary"
)

// DeviceHello opens a registration handshake: a device announces itself
// to the gateway's registration plane, naming the slot it wants to
// occupy, the tenant it serves, and the address of its data-plane
// listener. The gateway dials that address back to establish the
// capture/feature link (keeping the gateway→device dial direction of
// the data plane), installs the slot into the live topology, bumps the
// topology config version, and answers with a DeviceWelcome — or a
// wire.Error when the slot is out of range or already occupied by a
// different node.
type DeviceHello struct {
	// NodeID names the registering device.
	NodeID string
	// Slot is the device slot (index into the presence mask) being claimed.
	Slot uint16
	// Tenant optionally names the tenant/application the device serves.
	Tenant string
	// Addr is the device's data-plane listen address the gateway dials back.
	Addr string
}

// MsgType implements Message.
func (*DeviceHello) MsgType() MsgType { return TypeDeviceHello }

func (m *DeviceHello) appendPayload(dst []byte) []byte {
	dst = appendString(dst, m.NodeID)
	dst = binary.LittleEndian.AppendUint16(dst, m.Slot)
	dst = appendString(dst, m.Tenant)
	return appendString(dst, m.Addr)
}

func (m *DeviceHello) decodePayload(src []byte) error {
	node, rest, err := readString(src)
	if err != nil {
		return err
	}
	if len(rest) < 2 {
		return ErrShortPayload
	}
	slot := binary.LittleEndian.Uint16(rest[0:2])
	tenant, rest, err := readString(rest[2:])
	if err != nil {
		return err
	}
	addr, rest, err := readString(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return ErrShortPayload
	}
	m.NodeID = node
	m.Slot = slot
	m.Tenant = tenant
	m.Addr = addr
	return nil
}

// DeviceWelcome acknowledges a DeviceHello: the slot is installed in
// the live topology and the gateway reports the hierarchy size and the
// topology config version the admission produced, so the device knows
// which version of the world it joined.
type DeviceWelcome struct {
	// Slot is the device slot that was admitted.
	Slot uint16
	// Devices is the total device-slot count of the hierarchy.
	Devices uint16
	// ConfigVersion is the topology config version after this admission.
	ConfigVersion uint64
}

// MsgType implements Message.
func (*DeviceWelcome) MsgType() MsgType { return TypeDeviceWelcome }

func (m *DeviceWelcome) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, m.Slot)
	dst = binary.LittleEndian.AppendUint16(dst, m.Devices)
	return binary.LittleEndian.AppendUint64(dst, m.ConfigVersion)
}

func (m *DeviceWelcome) decodePayload(src []byte) error {
	if len(src) != 12 {
		return ErrShortPayload
	}
	m.Slot = binary.LittleEndian.Uint16(src[0:2])
	m.Devices = binary.LittleEndian.Uint16(src[2:4])
	m.ConfigVersion = binary.LittleEndian.Uint64(src[4:12])
	return nil
}

// DeviceGoodbye deregisters a device slot: the gateway removes the slot
// from the live topology and bumps the config version. Sessions already
// in flight complete under the membership snapshot they observed; new
// sessions no longer fan out to the departed slot. The gateway answers
// with a DeviceWelcome carrying the post-departure config version.
type DeviceGoodbye struct {
	// NodeID names the departing device.
	NodeID string
	// Slot is the device slot being vacated.
	Slot uint16
	// Reason optionally describes why the device is leaving.
	Reason string
}

// MsgType implements Message.
func (*DeviceGoodbye) MsgType() MsgType { return TypeDeviceGoodbye }

func (m *DeviceGoodbye) appendPayload(dst []byte) []byte {
	dst = appendString(dst, m.NodeID)
	dst = binary.LittleEndian.AppendUint16(dst, m.Slot)
	return appendString(dst, m.Reason)
}

func (m *DeviceGoodbye) decodePayload(src []byte) error {
	node, rest, err := readString(src)
	if err != nil {
		return err
	}
	if len(rest) < 2 {
		return ErrShortPayload
	}
	slot := binary.LittleEndian.Uint16(rest[0:2])
	reason, rest, err := readString(rest[2:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return ErrShortPayload
	}
	m.NodeID = node
	m.Slot = slot
	m.Reason = reason
	return nil
}
