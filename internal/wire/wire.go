// Package wire defines the binary message protocol spoken between DDNN
// cluster nodes (end devices, the local aggregator/gateway, the edge and
// the cloud). Frames are length-prefixed with a fixed header:
//
//	magic   uint16  0xDD17 ("DDNN ICDCS'17")
//	version uint8   3
//	type    uint8   message type
//	length  uint32  payload length in bytes
//
// followed by a type-specific little-endian payload. The protocol carries
// exactly the payloads of the paper's communication model (Eq. 1): the
// float32 class-summary vector each device sends to its local aggregator
// (4·|C| bytes), the bit-packed binarized feature map uploaded on a
// local-exit miss (f·o/8 bytes), and — for three-tier hierarchies (Fig. 2
// configs d/e) — the bit-packed edge feature map the edge escalates to the
// cloud on an edge-exit miss.
//
// Since version 2 every session-scoped message carries a Session tag, so a
// single connection can interleave frames from many concurrent inference
// sessions and each endpoint demultiplexes replies by session instead of
// assuming lock-step request/reply. Version 3 added a ModelVersion pin to
// every serving-path request, so a session started during a rolling model
// reload is answered by one model version at every hop (0 pins nothing and
// means "the responder's active version").
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Magic identifies DDNN protocol frames.
const Magic uint16 = 0xDD17

// Version is the protocol version this package speaks. Version 2 added
// the Session tag that multiplexes concurrent inference sessions over one
// connection; version 3 added the model-version pin on every serving-path
// request (rolling model reloads).
const Version uint8 = 3

// MaxPayload bounds frame payloads to guard against corrupt or hostile
// length fields. Feature maps in this system are tiny; 16 MiB is generous.
const MaxPayload = 16 << 20

// headerSize is the encoded frame-header length in bytes.
const headerSize = 8

// MsgType identifies a message's payload schema.
type MsgType uint8

// Message types.
const (
	// TypeHello announces a node and its role after connecting.
	TypeHello MsgType = iota + 1
	// TypeLocalSummary carries a device's per-class probability summary to
	// the local aggregator (the first term of Eq. 1).
	TypeLocalSummary
	// TypeFeatureRequest asks a device to upload its feature map for a
	// sample that missed the local exit.
	TypeFeatureRequest
	// TypeFeatureUpload carries a bit-packed binarized feature map (the
	// second term of Eq. 1).
	TypeFeatureUpload
	// TypeClassifyResult reports the final classification of a sample and
	// the exit that produced it.
	TypeClassifyResult
	// TypeHeartbeat is the liveness signal used for failure detection.
	TypeHeartbeat
	// TypeError reports a protocol or processing error.
	TypeError
	// TypeCaptureRequest asks a device to capture/process its current
	// sensor frame for a sample and reply with a LocalSummary.
	TypeCaptureRequest
	// TypeCloudClassify announces a cloud classification session: the
	// header that precedes the present devices' FeatureUploads.
	TypeCloudClassify
	// TypeEdgeClassify announces an edge classification session: the
	// header that precedes the present devices' FeatureUploads on the
	// gateway→edge hop, carrying the remaining pipeline thresholds.
	TypeEdgeClassify
	// TypeEdgeFeature carries the bit-packed edge feature map escalated
	// from an edge node to the cloud on an edge-exit miss.
	TypeEdgeFeature
	// TypeCaptureBatch asks a device to process a micro-batch of sensor
	// frames in one forward pass and reply with a SummaryBatch.
	TypeCaptureBatch
	// TypeSummaryBatch carries a device's per-sample class summaries for
	// a whole capture batch, with a presence bitmask for absent frames.
	TypeSummaryBatch
	// TypeFeatureBatchRequest asks a device for the feature maps of the
	// batch subset that missed the local exit.
	TypeFeatureBatchRequest
	// TypeFeatureBatch carries one device's bit-packed feature maps for
	// several samples in a single frame.
	TypeFeatureBatch
	// TypeCloudClassifyBatch announces a batched cloud classification
	// session with per-sample device masks.
	TypeCloudClassifyBatch
	// TypeEdgeClassifyBatch announces a batched edge classification
	// session with per-sample device masks and relayed thresholds.
	TypeEdgeClassifyBatch
	// TypeEdgeFeatureBatch carries the edge feature maps of the batch
	// subset that missed the edge exit.
	TypeEdgeFeatureBatch
	// TypeResultBatch reports the per-sample verdicts of one batched
	// session in a single frame.
	TypeResultBatch
	// TypeDeviceHello opens a registration handshake: a device asks the
	// gateway's registration plane to admit it into a device slot.
	TypeDeviceHello
	// TypeDeviceWelcome acknowledges an admission or departure and
	// reports the resulting topology config version.
	TypeDeviceWelcome
	// TypeDeviceGoodbye deregisters a device slot from the live topology.
	TypeDeviceGoodbye
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "Hello"
	case TypeLocalSummary:
		return "LocalSummary"
	case TypeFeatureRequest:
		return "FeatureRequest"
	case TypeFeatureUpload:
		return "FeatureUpload"
	case TypeClassifyResult:
		return "ClassifyResult"
	case TypeHeartbeat:
		return "Heartbeat"
	case TypeError:
		return "Error"
	case TypeCaptureRequest:
		return "CaptureRequest"
	case TypeCloudClassify:
		return "CloudClassify"
	case TypeEdgeClassify:
		return "EdgeClassify"
	case TypeEdgeFeature:
		return "EdgeFeature"
	case TypeCaptureBatch:
		return "CaptureBatch"
	case TypeSummaryBatch:
		return "SummaryBatch"
	case TypeFeatureBatchRequest:
		return "FeatureBatchRequest"
	case TypeFeatureBatch:
		return "FeatureBatch"
	case TypeCloudClassifyBatch:
		return "CloudClassifyBatch"
	case TypeEdgeClassifyBatch:
		return "EdgeClassifyBatch"
	case TypeEdgeFeatureBatch:
		return "EdgeFeatureBatch"
	case TypeResultBatch:
		return "ResultBatch"
	case TypeDeviceHello:
		return "DeviceHello"
	case TypeDeviceWelcome:
		return "DeviceWelcome"
	case TypeDeviceGoodbye:
		return "DeviceGoodbye"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is any DDNN protocol message.
type Message interface {
	// MsgType returns the frame type tag.
	MsgType() MsgType
	// appendPayload appends the encoded payload.
	appendPayload(dst []byte) []byte
	// decodePayload parses the payload.
	decodePayload(src []byte) error
}

// Sessioned is implemented by messages that belong to one classification
// session. Receivers route such frames to the session's waiter, which is
// what lets many sessions share a connection.
type Sessioned interface {
	SessionID() uint64
}

// Protocol errors.
var (
	ErrBadMagic      = errors.New("wire: bad frame magic")
	ErrBadVersion    = errors.New("wire: unsupported protocol version")
	ErrUnknownType   = errors.New("wire: unknown message type")
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxPayload")
	ErrShortPayload  = errors.New("wire: payload truncated")
)

// frameBufs recycles encode buffers: every io.Writer this package
// targets (net.Conn, net.Pipe, the link simulator) has released or
// copied the slice by the time Write returns, so frames can be reused.
var frameBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// Encode writes one framed message and returns the number of bytes
// written. The frame is assembled in a pooled buffer, so steady-state
// encoding does not allocate.
func Encode(w io.Writer, m Message) (int, error) {
	bp := frameBufs.Get().(*[]byte)
	defer func() {
		*bp = (*bp)[:0]
		frameBufs.Put(bp)
	}()
	frame := (*bp)[:headerSize] // pool's New caps at 1024 ≥ headerSize
	frame = m.appendPayload(frame)
	*bp = frame
	payloadLen := len(frame) - headerSize
	if payloadLen > MaxPayload {
		return 0, ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint16(frame[0:2], Magic)
	frame[2] = Version
	frame[3] = byte(m.MsgType())
	binary.LittleEndian.PutUint32(frame[4:8], uint32(payloadLen))
	n, err := w.Write(frame)
	if err != nil {
		return n, fmt.Errorf("wire: write frame: %w", err)
	}
	return n, nil
}

// Decode reads one framed message.
func Decode(r io.Reader) (Message, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	if binary.LittleEndian.Uint16(hdr[0:2]) != Magic {
		return nil, ErrBadMagic
	}
	if hdr[2] != Version {
		return nil, ErrBadVersion
	}
	length := binary.LittleEndian.Uint32(hdr[4:8])
	if length > MaxPayload {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: read payload: %w", err)
	}
	m, err := newMessage(MsgType(hdr[3]))
	if err != nil {
		return nil, err
	}
	if err := m.decodePayload(payload); err != nil {
		return nil, err
	}
	return m, nil
}

func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeLocalSummary:
		return &LocalSummary{}, nil
	case TypeFeatureRequest:
		return &FeatureRequest{}, nil
	case TypeFeatureUpload:
		return &FeatureUpload{}, nil
	case TypeClassifyResult:
		return &ClassifyResult{}, nil
	case TypeHeartbeat:
		return &Heartbeat{}, nil
	case TypeError:
		return &Error{}, nil
	case TypeCaptureRequest:
		return &CaptureRequest{}, nil
	case TypeCloudClassify:
		return &CloudClassify{}, nil
	case TypeEdgeClassify:
		return &EdgeClassify{}, nil
	case TypeEdgeFeature:
		return &EdgeFeature{}, nil
	case TypeCaptureBatch:
		return &CaptureBatch{}, nil
	case TypeSummaryBatch:
		return &SummaryBatch{}, nil
	case TypeFeatureBatchRequest:
		return &FeatureBatchRequest{}, nil
	case TypeFeatureBatch:
		return &FeatureBatch{}, nil
	case TypeCloudClassifyBatch:
		return &CloudClassifyBatch{}, nil
	case TypeEdgeClassifyBatch:
		return &EdgeClassifyBatch{}, nil
	case TypeEdgeFeatureBatch:
		return &EdgeFeatureBatch{}, nil
	case TypeResultBatch:
		return &ResultBatch{}, nil
	case TypeDeviceHello:
		return &DeviceHello{}, nil
	case TypeDeviceWelcome:
		return &DeviceWelcome{}, nil
	case TypeDeviceGoodbye:
		return &DeviceGoodbye{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
}

// EncodedSize returns the full frame size Encode would produce for m.
func EncodedSize(m Message) int {
	return headerSize + len(m.appendPayload(nil))
}
