package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	n, err := Encode(&buf, m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if n != buf.Len() {
		t.Errorf("Encode reported %d bytes, wrote %d", n, buf.Len())
	}
	if n != EncodedSize(m) {
		t.Errorf("EncodedSize = %d, Encode wrote %d", EncodedSize(m), n)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func TestRoundTripAllMessageTypes(t *testing.T) {
	tests := []struct {
		name string
		msg  Message
	}{
		{"Hello", &Hello{NodeID: "device-3", Role: RoleDevice, Device: 3}},
		{"Hello empty id", &Hello{NodeID: "", Role: RoleCloud}},
		{"LocalSummary", &LocalSummary{Session: 17, SampleID: 42, Device: 1, Probs: []float32{0.1, 0.7, 0.2}}},
		{"LocalSummary empty", &LocalSummary{SampleID: 1, Device: 0, Probs: []float32{}}},
		{"FeatureRequest", &FeatureRequest{Session: 3, SampleID: 99}},
		{"FeatureUpload", &FeatureUpload{Session: 9, SampleID: 7, Device: 2, F: 4, H: 16, W: 16, Bits: make([]byte, 4*16*16/8)}},
		{"ClassifyResult", &ClassifyResult{Session: 1 << 40, SampleID: 5, Exit: ExitCloud, Class: 2, Probs: []float32{0.05, 0.05, 0.9}}},
		{"Heartbeat", &Heartbeat{NodeID: "edge-0", Seq: 12345}},
		{"Error", &Error{Session: 12, Code: 404, Msg: "no such sample"}},
		{"CaptureRequest", &CaptureRequest{Session: 2, SampleID: 31337}},
		{"CloudClassify", &CloudClassify{Session: 6, SampleID: 8, Devices: 6, Mask: 0b101101}},
		{"EdgeClassify", &EdgeClassify{Session: 11, SampleID: 9, Devices: 6, Mask: 0b011011, Thresholds: []float64{0.8}}},
		{"EdgeClassify deep", &EdgeClassify{Session: 12, SampleID: 10, Devices: 4, Mask: 0b1111, Thresholds: []float64{0.8, 0.5, 0.3}}},
		{"EdgeFeature", &EdgeFeature{Session: 13, SampleID: 21, F: 8, H: 8, W: 8, Bits: make([]byte, 8*8*8/8)}},
		{"CaptureBatch", &CaptureBatch{Session: 14, SampleIDs: []uint64{3, 1, 4, 1 << 40}}},
		{"SummaryBatch", &SummaryBatch{Session: 15, Device: 2, Classes: 3, Count: 4,
			Present: PackPresent([]bool{true, false, true, true}),
			Probs:   []float32{0.1, 0.7, 0.2, 0.3, 0.3, 0.4, 0.9, 0.05, 0.05}}},
		{"SummaryBatch all absent", &SummaryBatch{Session: 15, Device: 2, Classes: 3, Count: 2,
			Present: PackPresent([]bool{false, false}), Probs: []float32{}}},
		{"FeatureBatchRequest", &FeatureBatchRequest{Session: 16, SampleIDs: []uint64{7, 9}}},
		{"FeatureBatch", &FeatureBatch{Session: 17, Device: 1, F: 4, H: 16, W: 16, Count: 2, Bits: make([]byte, 2*4*16*16/8)}},
		{"CloudClassifyBatch", &CloudClassifyBatch{Session: 18, Devices: 6,
			SampleIDs: []uint64{5, 6, 7}, Masks: []uint16{0b111111, 0b101101, 0b000001}}},
		{"EdgeClassifyBatch", &EdgeClassifyBatch{Session: 19, Devices: 6,
			SampleIDs: []uint64{5, 6}, Masks: []uint16{0b111111, 0b011011}, Thresholds: []float64{0.8, 0.5}}},
		{"EdgeFeatureBatch", &EdgeFeatureBatch{Session: 20, F: 8, H: 8, W: 8,
			SampleIDs: []uint64{11, 12, 13}, Bits: make([]byte, 3*8*8*8/8)}},
		{"ResultBatch", &ResultBatch{Session: 21, Verdicts: []BatchVerdict{
			{SampleID: 5, Exit: ExitLocal, Class: 1, Probs: []float32{0.1, 0.8, 0.1}},
			{SampleID: 6, Exit: ExitCloud, Class: 0, Probs: []float32{0.9, 0.05, 0.05}},
		}}},
		{"DeviceHello", &DeviceHello{NodeID: "device-2", Slot: 2, Tenant: "tenant-a", Addr: "127.0.0.1:9102"}},
		{"DeviceHello no tenant", &DeviceHello{NodeID: "device-0", Slot: 0, Addr: "device-0"}},
		{"DeviceWelcome", &DeviceWelcome{Slot: 2, Devices: 6, ConfigVersion: 41}},
		{"DeviceGoodbye", &DeviceGoodbye{NodeID: "device-2", Slot: 2, Reason: "draining"}},
		{"DeviceGoodbye bare", &DeviceGoodbye{NodeID: "device-5", Slot: 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := roundTrip(t, tt.msg)
			// Normalize nil-vs-empty slices before comparing.
			if ls, ok := got.(*LocalSummary); ok && len(ls.Probs) == 0 {
				ls.Probs = []float32{}
			}
			if !reflect.DeepEqual(got, tt.msg) {
				t.Errorf("round trip = %+v, want %+v", got, tt.msg)
			}
		})
	}
}

func TestSessionScopedMessagesImplementSessioned(t *testing.T) {
	// Every message the gateway demultiplexes by session must carry the
	// session tag; Hello and Heartbeat are connection-scoped.
	sessioned := []Message{
		&LocalSummary{Session: 7},
		&FeatureRequest{Session: 7},
		&FeatureUpload{Session: 7},
		&ClassifyResult{Session: 7},
		&Error{Session: 7},
		&CaptureRequest{Session: 7},
		&CloudClassify{Session: 7},
		&EdgeClassify{Session: 7},
		&EdgeFeature{Session: 7},
		&CaptureBatch{Session: 7},
		&SummaryBatch{Session: 7},
		&FeatureBatchRequest{Session: 7},
		&FeatureBatch{Session: 7},
		&CloudClassifyBatch{Session: 7},
		&EdgeClassifyBatch{Session: 7},
		&EdgeFeatureBatch{Session: 7},
		&ResultBatch{Session: 7},
	}
	for _, m := range sessioned {
		s, ok := m.(Sessioned)
		if !ok {
			t.Errorf("%v does not implement Sessioned", m.MsgType())
			continue
		}
		if s.SessionID() != 7 {
			t.Errorf("%v SessionID = %d, want 7", m.MsgType(), s.SessionID())
		}
	}
	for _, m := range []Message{&Hello{}, &Heartbeat{}, &DeviceHello{}, &DeviceWelcome{}, &DeviceGoodbye{}} {
		if _, ok := m.(Sessioned); ok {
			t.Errorf("%v must stay connection-scoped", m.MsgType())
		}
	}
}

func TestLocalSummaryPayloadChargesEq1(t *testing.T) {
	// Eq. (1) first term: 4 bytes per class.
	if got := SummaryPayloadBytes(3); got != 12 {
		t.Errorf("SummaryPayloadBytes(3) = %d, want 12", got)
	}
}

func TestFeatureUploadBitsMatchEq1(t *testing.T) {
	// Eq. (1) second term: f·o/8 bytes for f=4 filters of 16×16 bits.
	m := &FeatureUpload{F: 4, H: 16, W: 16, Bits: make([]byte, 128)}
	var buf bytes.Buffer
	if _, err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.(*FeatureUpload).Bits) != 128 {
		t.Errorf("decoded %d feature bytes, want 128 = 4·256/8", len(got.(*FeatureUpload).Bits))
	}
}

func TestFeatureUploadRejectsInconsistentBits(t *testing.T) {
	m := &FeatureUpload{F: 4, H: 16, W: 16, Bits: make([]byte, 100)} // wrong size
	var buf bytes.Buffer
	if _, err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err == nil {
		t.Error("Decode accepted feature upload with inconsistent bit count")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, &Heartbeat{NodeID: "x", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] = 0x00
	if _, err := Decode(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, &Heartbeat{NodeID: "x", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[2] = 99
	if _, err := Decode(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, &Heartbeat{NodeID: "x", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[3] = 200
	if _, err := Decode(bytes.NewReader(raw)); !errors.Is(err, ErrUnknownType) {
		t.Errorf("err = %v, want ErrUnknownType", err)
	}
}

func TestDecodeRejectsOversizeFrame(t *testing.T) {
	raw := make([]byte, 8)
	raw[0], raw[1] = byte(Magic&0xFF), byte(Magic>>8)
	raw[2] = Version
	raw[3] = byte(TypeHeartbeat)
	raw[4], raw[5], raw[6], raw[7] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := Decode(bytes.NewReader(raw)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestDecodeEOFOnEmptyStream(t *testing.T) {
	if _, err := Decode(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, &LocalSummary{SampleID: 1, Probs: []float32{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Decode(bytes.NewReader(raw[:len(raw)-4])); err == nil {
		t.Error("Decode accepted truncated stream")
	}
}

func TestStreamOfMessages(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Hello{NodeID: "d0", Role: RoleDevice},
		&LocalSummary{SampleID: 1, Probs: []float32{0.9, 0.05, 0.05}},
		&FeatureRequest{SampleID: 1},
		&FeatureUpload{SampleID: 1, F: 1, H: 4, W: 4, Bits: []byte{0xAB, 0xCD}},
		&ClassifyResult{SampleID: 1, Exit: ExitLocal, Class: 0, Probs: []float32{0.9, 0.05, 0.05}},
	}
	for _, m := range msgs {
		if _, err := Encode(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.MsgType() != want.MsgType() {
			t.Errorf("message %d type = %v, want %v", i, got.MsgType(), want.MsgType())
		}
	}
	if _, err := Decode(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("after stream end err = %v, want io.EOF", err)
	}
}

func TestLocalSummaryRoundTripProperty(t *testing.T) {
	f := func(id uint64, dev uint16, p0, p1, p2 float32) bool {
		in := &LocalSummary{SampleID: id, Device: dev, Probs: []float32{p0, p1, p2}}
		var buf bytes.Buffer
		if _, err := Encode(&buf, in); err != nil {
			return false
		}
		out, err := Decode(&buf)
		if err != nil {
			return false
		}
		got, ok := out.(*LocalSummary)
		if !ok {
			return false
		}
		if got.SampleID != id || got.Device != dev || len(got.Probs) != 3 {
			return false
		}
		for i, p := range []float32{p0, p1, p2} {
			// NaN round-trips bit-exactly but compares unequal; compare bits.
			if got.Probs[i] != p && !(p != p && got.Probs[i] != got.Probs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHeartbeatRoundTripProperty(t *testing.T) {
	f := func(id string, seq uint64) bool {
		if len(id) > 60000 {
			id = id[:60000]
		}
		in := &Heartbeat{NodeID: id, Seq: seq}
		var buf bytes.Buffer
		if _, err := Encode(&buf, in); err != nil {
			return false
		}
		out, err := Decode(&buf)
		if err != nil {
			return false
		}
		got, ok := out.(*Heartbeat)
		return ok && got.NodeID == id && got.Seq == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCloudClassifyPresentCount(t *testing.T) {
	tests := []struct {
		mask uint16
		want int
	}{
		{0, 0}, {1, 1}, {0b111111, 6}, {0b101010, 3}, {1 << 15, 1},
	}
	for _, tt := range tests {
		m := &CloudClassify{Mask: tt.mask}
		if got := m.PresentCount(); got != tt.want {
			t.Errorf("PresentCount(%b) = %d, want %d", tt.mask, got, tt.want)
		}
	}
}

func TestMsgTypeAndRoleStrings(t *testing.T) {
	for _, mt := range []MsgType{TypeHello, TypeLocalSummary, TypeFeatureRequest, TypeFeatureUpload, TypeClassifyResult, TypeHeartbeat, TypeError, TypeCaptureRequest, TypeCloudClassify, TypeEdgeClassify, TypeEdgeFeature} {
		if mt.String() == "" || mt.String()[0] == 'M' {
			t.Errorf("MsgType(%d) has no name", mt)
		}
	}
	for _, r := range []Role{RoleDevice, RoleEdge, RoleCloud, RoleGateway} {
		if r.String() == "" || r.String()[0] == 'R' {
			t.Errorf("Role(%d) has no name", r)
		}
	}
	for _, e := range []ExitPoint{ExitLocal, ExitEdge, ExitCloud} {
		if e.String() == "" || e.String()[0] == 'E' {
			t.Errorf("ExitPoint(%d) has no name", e)
		}
	}
}
