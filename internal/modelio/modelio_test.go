package modelio

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
)

func trainedModel(t *testing.T) *core.Model {
	t.Helper()
	dcfg := dataset.DefaultConfig()
	dcfg.Train, dcfg.Test = 60, 20
	train, _ := dataset.MustGenerate(dcfg)
	cfg := core.DefaultConfig()
	cfg.CloudFilters = 8
	m := core.MustNewModel(cfg)
	tc := core.DefaultTrainConfig()
	tc.Epochs = 2
	if _, err := m.Train(train, tc); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != m.Cfg {
		t.Errorf("config round trip: got %+v, want %+v", loaded.Cfg, m.Cfg)
	}
	want := m.StateDict()
	got := loaded.StateDict()
	if len(got) != len(want) {
		t.Fatalf("state dict sizes %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Fatalf("tensor %d name %q, want %q", i, got[i].Name, want[i].Name)
		}
		for j := range want[i].T.Data() {
			if got[i].T.Data()[j] != want[i].T.Data()[j] {
				t.Fatalf("tensor %q element %d differs", want[i].Name, j)
			}
		}
	}
}

func TestLoadedModelPredictsIdentically(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	dcfg := dataset.DefaultConfig()
	dcfg.Train, dcfg.Test = 60, 20
	_, test := dataset.MustGenerate(dcfg)
	xs := test.AllDeviceBatches(m.Cfg.Devices, []int{0, 1, 2, 3})

	a := m.Infer(xs, nil)
	b := loaded.Infer(xs, nil)
	for i, v := range a.Local.Data() {
		if b.Local.Data()[i] != v {
			t.Fatalf("local logits differ at %d: %g vs %g", i, v, b.Local.Data()[i])
		}
	}
	for i, v := range a.Cloud.Data() {
		if b.Cloud.Data()[i] != v {
			t.Fatalf("cloud logits differ at %d: %g vs %g", i, v, b.Cloud.Data()[i])
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := trainedModel(t)
	path := filepath.Join(t.TempDir(), "model.ddnn")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != m.Cfg {
		t.Error("file round trip changed config")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model file at all"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("err = %v, want ErrBadFormat", err)
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Load(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("Load accepted truncated file")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8] = 0xFF // version low byte
	if _, err := Load(bytes.NewReader(raw)); !errors.Is(err, ErrVersionUnsupported) {
		t.Errorf("err = %v, want ErrVersionUnsupported", err)
	}
}

func TestStateDictCoversBatchNormStats(t *testing.T) {
	m := trainedModel(t)
	foundMean, foundVar := false, false
	for _, nt := range m.StateDict() {
		switch {
		case len(nt.Name) > 12 && nt.Name[len(nt.Name)-12:] == "running_mean":
			foundMean = true
		case len(nt.Name) > 11 && nt.Name[len(nt.Name)-11:] == "running_var":
			foundVar = true
		}
	}
	if !foundMean || !foundVar {
		t.Error("state dict missing batch-norm running statistics")
	}
}

func TestRoundTripEdgeModel(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.UseEdge = true
	cfg.CloudFilters = 8
	cfg.LocalAgg, cfg.CloudAgg, cfg.EdgeAgg = agg.MP, agg.CC, agg.CC
	m := core.MustNewModel(cfg)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Cfg.UseEdge {
		t.Error("edge flag lost in round trip")
	}
}
