// Package modelio serializes trained DDNN models to a compact, versioned
// binary format, so a model trained once (in the cloud, §III-C) can be
// checkpointed and deployed onto the nodes of the hierarchy.
//
// Format version 2 stamps each artifact with a model version — the
// registry key a rolling reload pins sessions to — and protects every
// tensor with a CRC32C checksum, so a torn or bit-flipped checkpoint is
// rejected at the registry boundary (ErrCorruptModel) instead of serving
// silently wrong weights. Version-1 artifacts load unchanged and carry
// the implicit model version 1.
package modelio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// magic identifies DDNN model files.
var magic = [8]byte{'D', 'D', 'N', 'N', 'M', 'O', 'D', 'L'}

// version is the current file-format version. Version 2 added the model
// version stamp and per-tensor CRC32C checksums.
const version uint16 = 2

// maxTensorElems guards against corrupt headers.
const maxTensorElems = 64 << 20

// maxNameLen bounds a declared tensor-name length; real state-dict names
// are tens of bytes.
const maxNameLen = 4096

// Typed artifact errors.
var (
	// ErrCorruptModel reports an artifact whose bytes cannot be a valid
	// model: bad magic, a truncated or over-declared section, a tensor
	// the declared configuration does not contain, or a checksum
	// mismatch. It is the registry's reject-at-the-door error.
	ErrCorruptModel = errors.New("modelio: corrupt model artifact")
	// ErrVersionUnsupported reports an artifact written by a newer
	// format version than this build understands.
	ErrVersionUnsupported = errors.New("modelio: unsupported artifact format version")
	// ErrBadFormat is the legacy malformed-file sentinel; every
	// ErrBadFormat is also an ErrCorruptModel.
	ErrBadFormat = fmt.Errorf("modelio: bad model file: %w", ErrCorruptModel)
)

// castagnoli is the CRC32C table used for tensor checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Save writes the model's configuration and full state to w, stamped
// with model version 1 (the implicit version of an unversioned
// checkpoint).
func Save(w io.Writer, m *core.Model) error {
	return SaveVersion(w, m, 1)
}

// SaveVersion writes the model stamped with an explicit model version.
// The version must be nonzero: 0 is the wire sentinel for "whatever
// version is active".
func SaveVersion(w io.Writer, m *core.Model, modelVersion uint64) error {
	if modelVersion == 0 {
		return fmt.Errorf("modelio: model version 0 is reserved")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("modelio: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, version); err != nil {
		return fmt.Errorf("modelio: write version: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, modelVersion); err != nil {
		return fmt.Errorf("modelio: write model version: %w", err)
	}
	if err := writeConfig(bw, m.Cfg); err != nil {
		return err
	}
	state := m.StateDict()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(state))); err != nil {
		return fmt.Errorf("modelio: write tensor count: %w", err)
	}
	for _, nt := range state {
		if err := writeTensor(bw, nt); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("modelio: flush: %w", err)
	}
	return nil
}

// Load reads a model file and reconstructs the trained model.
func Load(r io.Reader) (*core.Model, error) {
	m, _, err := LoadVersioned(r)
	return m, err
}

// LoadVersioned reads a model artifact and returns the reconstructed
// model together with its model-version stamp (1 for version-1 files,
// which predate the stamp). Decoding is bounded: tensor headers are
// validated against the declared configuration's own state dict before
// any data-sized allocation, so a hostile header yields a typed error,
// never an OOM.
func LoadVersioned(r io.Reader) (*core.Model, uint64, error) {
	br := bufio.NewReader(r)
	var gotMagic [8]byte
	if _, err := io.ReadFull(br, gotMagic[:]); err != nil {
		return nil, 0, corrupt("read magic", err)
	}
	if gotMagic != magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	var v uint16
	if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
		return nil, 0, corrupt("read version", err)
	}
	if v == 0 || v > version {
		return nil, 0, fmt.Errorf("%w: %d (this build reads up to %d)", ErrVersionUnsupported, v, version)
	}
	modelVersion := uint64(1)
	if v >= 2 {
		if err := binary.Read(br, binary.LittleEndian, &modelVersion); err != nil {
			return nil, 0, corrupt("read model version", err)
		}
		if modelVersion == 0 {
			return nil, 0, fmt.Errorf("modelio: %w: model version 0 is reserved", ErrCorruptModel)
		}
	}
	cfg, err := readConfig(br)
	if err != nil {
		return nil, 0, err
	}
	if err := boundConfig(cfg); err != nil {
		return nil, 0, err
	}
	m, err := core.NewModel(cfg)
	if err != nil {
		return nil, 0, fmt.Errorf("modelio: rebuild model: %w: %w", err, ErrCorruptModel)
	}
	// The declared config fixes the complete set of tensor names and
	// sizes; every header is validated against it before its data is
	// read, bounding allocations to the model's true footprint.
	want := m.StateDict()
	expect := make(map[string]*tensor.Tensor, len(want))
	for _, nt := range want {
		expect[nt.Name] = nt.T
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, 0, corrupt("read tensor count", err)
	}
	if int(count) != len(want) {
		return nil, 0, fmt.Errorf("modelio: %w: artifact declares %d tensors, config needs %d", ErrCorruptModel, count, len(want))
	}
	state := make([]core.NamedTensor, 0, count)
	for i := uint32(0); i < count; i++ {
		nt, err := readTensor(br, v, expect)
		if err != nil {
			return nil, 0, err
		}
		state = append(state, nt)
	}
	if err := m.LoadStateDict(state); err != nil {
		return nil, 0, fmt.Errorf("modelio: %w: %w", err, ErrCorruptModel)
	}
	return m, modelVersion, nil
}

// SaveFile writes the model to a file path.
func SaveFile(path string, m *core.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("modelio: %w", err)
	}
	if err := Save(f, m); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("modelio: close %s: %w", path, err)
	}
	return nil
}

// SaveFileAtomic writes the model to path via a temp file in the same
// directory, fsyncs, then renames into place — a crash mid-save can
// leave a stale or absent file but never a torn artifact for the
// registry to load.
func SaveFileAtomic(path string, m *core.Model, modelVersion uint64) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("modelio: %w", err)
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	if err := SaveVersion(f, m, modelVersion); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("modelio: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("modelio: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("modelio: rename %s: %w", path, err)
	}
	// Persist the rename itself; best-effort on filesystems that do not
	// support directory fsync.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// corrupt wraps a read failure as a typed corrupt-artifact error: any
// truncation of a structurally valid prefix is corruption.
func corrupt(what string, err error) error {
	return fmt.Errorf("modelio: %s: %w: %w", what, err, ErrCorruptModel)
}

// boundConfig rejects declared configurations whose reconstruction
// would allocate far beyond any real DDNN, before core.NewModel runs.
// Legitimate configs are nowhere near these ceilings.
func boundConfig(cfg core.Config) error {
	switch {
	case cfg.Devices > 16:
		return fmt.Errorf("modelio: %w: %d devices", ErrCorruptModel, cfg.Devices)
	case cfg.Classes > 4096:
		return fmt.Errorf("modelio: %w: %d classes", ErrCorruptModel, cfg.Classes)
	case cfg.InputC > 16 || cfg.InputH > 512 || cfg.InputW > 512:
		return fmt.Errorf("modelio: %w: input shape %d×%d×%d", ErrCorruptModel, cfg.InputC, cfg.InputH, cfg.InputW)
	case cfg.DeviceFilters > 128 || cfg.CloudFilters > 128 || cfg.EdgeFilters > 128:
		return fmt.Errorf("modelio: %w: filter counts %d/%d/%d", ErrCorruptModel, cfg.DeviceFilters, cfg.CloudFilters, cfg.EdgeFilters)
	}
	// The cloud section pools its input twice (and the edge tier halves
	// it first); inputs too small for that panic in core.NewModel, so
	// reject them here with a typed error instead.
	minInput := 8
	if cfg.UseEdge {
		minInput = 16
	}
	if cfg.InputH < minInput || cfg.InputW < minInput {
		return fmt.Errorf("modelio: %w: input %d×%d too small for the cloud section", ErrCorruptModel, cfg.InputH, cfg.InputW)
	}
	// The dominant tensors are the exit-head weights (features × classes,
	// once per device) and the aggregated conv inputs upstream; bound the
	// per-tensor and whole-model estimates before core.NewModel allocates.
	featIn := cfg.DeviceFilters * cfg.FeatureH() * cfg.FeatureW()
	if featIn*cfg.Classes > 1<<24 {
		return fmt.Errorf("modelio: %w: exit head of %d×%d elements", ErrCorruptModel, featIn, cfg.Classes)
	}
	if cfg.Devices*featIn*cfg.Classes > 1<<25 {
		return fmt.Errorf("modelio: %w: model of ~%d device-exit elements", ErrCorruptModel, cfg.Devices*featIn*cfg.Classes)
	}
	return nil
}

func writeConfig(w io.Writer, cfg core.Config) error {
	useEdge := uint8(0)
	if cfg.UseEdge {
		useEdge = 1
	}
	floatCloud := uint8(0)
	if cfg.FloatCloud {
		floatCloud = 1
	}
	fields := []any{
		uint32(cfg.Devices), uint32(cfg.Classes),
		uint32(cfg.InputC), uint32(cfg.InputH), uint32(cfg.InputW),
		uint32(cfg.DeviceFilters), uint32(cfg.CloudFilters),
		uint8(cfg.LocalAgg), uint8(cfg.CloudAgg),
		useEdge, uint32(cfg.EdgeFilters), uint8(cfg.EdgeAgg),
		floatCloud, cfg.Seed,
	}
	for _, f := range fields {
		if err := binary.Write(w, binary.LittleEndian, f); err != nil {
			return fmt.Errorf("modelio: write config: %w", err)
		}
	}
	return nil
}

func readConfig(r io.Reader) (core.Config, error) {
	var (
		devices, classes, inC, inH, inW, devF, cloudF, edgeF uint32
		localAgg, cloudAgg, useEdge, edgeAgg, floatCloud     uint8
		seed                                                 int64
	)
	fields := []any{
		&devices, &classes, &inC, &inH, &inW, &devF, &cloudF,
		&localAgg, &cloudAgg, &useEdge, &edgeF, &edgeAgg, &floatCloud, &seed,
	}
	for _, f := range fields {
		if err := binary.Read(r, binary.LittleEndian, f); err != nil {
			return core.Config{}, corrupt("read config", err)
		}
	}
	return core.Config{
		Devices: int(devices), Classes: int(classes),
		InputC: int(inC), InputH: int(inH), InputW: int(inW),
		DeviceFilters: int(devF), CloudFilters: int(cloudF),
		LocalAgg: agg.Scheme(localAgg), CloudAgg: agg.Scheme(cloudAgg),
		UseEdge: useEdge != 0, EdgeFilters: int(edgeF), EdgeAgg: agg.Scheme(edgeAgg),
		FloatCloud: floatCloud != 0, Seed: seed,
	}, nil
}

func writeTensor(w io.Writer, nt core.NamedTensor) error {
	name := []byte(nt.Name)
	if err := binary.Write(w, binary.LittleEndian, uint16(len(name))); err != nil {
		return fmt.Errorf("modelio: write tensor name len: %w", err)
	}
	if _, err := w.Write(name); err != nil {
		return fmt.Errorf("modelio: write tensor name: %w", err)
	}
	shape := nt.T.Shape()
	if err := binary.Write(w, binary.LittleEndian, uint8(len(shape))); err != nil {
		return fmt.Errorf("modelio: write tensor rank: %w", err)
	}
	for _, d := range shape {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return fmt.Errorf("modelio: write tensor dim: %w", err)
		}
	}
	buf := make([]byte, 4*len(nt.T.Data()))
	for i, v := range nt.T.Data() {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	if err := binary.Write(w, binary.LittleEndian, crc32.Checksum(buf, castagnoli)); err != nil {
		return fmt.Errorf("modelio: write tensor checksum: %w", err)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("modelio: write tensor data: %w", err)
	}
	return nil
}

// readTensor decodes one tensor record of format version v. expect maps
// the declared configuration's tensor names to their true shapes; a
// header naming an unknown tensor or declaring a mismatched size is
// rejected before the data allocation.
func readTensor(r io.Reader, v uint16, expect map[string]*tensor.Tensor) (core.NamedTensor, error) {
	var nameLen uint16
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return core.NamedTensor{}, corrupt("read tensor name len", err)
	}
	if nameLen > maxNameLen {
		return core.NamedTensor{}, fmt.Errorf("modelio: %w: tensor name of %d bytes", ErrCorruptModel, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return core.NamedTensor{}, corrupt("read tensor name", err)
	}
	var rank uint8
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return core.NamedTensor{}, corrupt("read tensor rank", err)
	}
	if rank == 0 || rank > 8 {
		return core.NamedTensor{}, fmt.Errorf("%w: tensor %q has rank %d", ErrBadFormat, name, rank)
	}
	shape := make([]int, rank)
	elems := 1
	for i := range shape {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return core.NamedTensor{}, corrupt("read tensor dim", err)
		}
		if d == 0 || int(d) > maxTensorElems {
			return core.NamedTensor{}, fmt.Errorf("%w: tensor %q has dim %d", ErrBadFormat, name, d)
		}
		shape[i] = int(d)
		elems *= int(d)
		if elems > maxTensorElems {
			return core.NamedTensor{}, fmt.Errorf("%w: tensor %q too large", ErrBadFormat, name)
		}
	}
	dst, ok := expect[string(name)]
	if !ok {
		return core.NamedTensor{}, fmt.Errorf("modelio: %w: config has no tensor %q", ErrCorruptModel, name)
	}
	if elems != dst.Size() {
		return core.NamedTensor{}, fmt.Errorf("modelio: %w: tensor %q declares %d elements, config needs %d", ErrCorruptModel, name, elems, dst.Size())
	}
	var wantSum uint32
	if v >= 2 {
		if err := binary.Read(r, binary.LittleEndian, &wantSum); err != nil {
			return core.NamedTensor{}, corrupt("read tensor checksum", err)
		}
	}
	buf := make([]byte, 4*elems)
	if _, err := io.ReadFull(r, buf); err != nil {
		return core.NamedTensor{}, corrupt("read tensor data", err)
	}
	if v >= 2 {
		if got := crc32.Checksum(buf, castagnoli); got != wantSum {
			return core.NamedTensor{}, fmt.Errorf("modelio: %w: tensor %q checksum %08x, want %08x", ErrCorruptModel, name, got, wantSum)
		}
	}
	t := tensor.New(shape...)
	for i := range t.Data() {
		t.Data()[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return core.NamedTensor{Name: string(name), T: t}, nil
}
