// Package modelio serializes trained DDNN models to a compact, versioned
// binary format, so a model trained once (in the cloud, §III-C) can be
// checkpointed and deployed onto the nodes of the hierarchy.
package modelio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// magic identifies DDNN model files.
var magic = [8]byte{'D', 'D', 'N', 'N', 'M', 'O', 'D', 'L'}

// version is the current file-format version.
const version uint16 = 1

// maxTensorElems guards against corrupt headers.
const maxTensorElems = 64 << 20

// ErrBadFormat reports a malformed model file.
var ErrBadFormat = errors.New("modelio: bad model file")

// Save writes the model's configuration and full state to w.
func Save(w io.Writer, m *core.Model) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("modelio: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, version); err != nil {
		return fmt.Errorf("modelio: write version: %w", err)
	}
	if err := writeConfig(bw, m.Cfg); err != nil {
		return err
	}
	state := m.StateDict()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(state))); err != nil {
		return fmt.Errorf("modelio: write tensor count: %w", err)
	}
	for _, nt := range state {
		if err := writeTensor(bw, nt); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("modelio: flush: %w", err)
	}
	return nil
}

// Load reads a model file and reconstructs the trained model.
func Load(r io.Reader) (*core.Model, error) {
	br := bufio.NewReader(r)
	var gotMagic [8]byte
	if _, err := io.ReadFull(br, gotMagic[:]); err != nil {
		return nil, fmt.Errorf("modelio: read magic: %w", err)
	}
	if gotMagic != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	var v uint16
	if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
		return nil, fmt.Errorf("modelio: read version: %w", err)
	}
	if v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	cfg, err := readConfig(br)
	if err != nil {
		return nil, err
	}
	m, err := core.NewModel(cfg)
	if err != nil {
		return nil, fmt.Errorf("modelio: rebuild model: %w", err)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("modelio: read tensor count: %w", err)
	}
	state := make([]core.NamedTensor, 0, count)
	for i := uint32(0); i < count; i++ {
		nt, err := readTensor(br)
		if err != nil {
			return nil, err
		}
		state = append(state, nt)
	}
	if err := m.LoadStateDict(state); err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	return m, nil
}

// SaveFile writes the model to a file path.
func SaveFile(path string, m *core.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("modelio: %w", err)
	}
	if err := Save(f, m); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("modelio: close %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	return Load(f)
}

func writeConfig(w io.Writer, cfg core.Config) error {
	useEdge := uint8(0)
	if cfg.UseEdge {
		useEdge = 1
	}
	floatCloud := uint8(0)
	if cfg.FloatCloud {
		floatCloud = 1
	}
	fields := []any{
		uint32(cfg.Devices), uint32(cfg.Classes),
		uint32(cfg.InputC), uint32(cfg.InputH), uint32(cfg.InputW),
		uint32(cfg.DeviceFilters), uint32(cfg.CloudFilters),
		uint8(cfg.LocalAgg), uint8(cfg.CloudAgg),
		useEdge, uint32(cfg.EdgeFilters), uint8(cfg.EdgeAgg),
		floatCloud, cfg.Seed,
	}
	for _, f := range fields {
		if err := binary.Write(w, binary.LittleEndian, f); err != nil {
			return fmt.Errorf("modelio: write config: %w", err)
		}
	}
	return nil
}

func readConfig(r io.Reader) (core.Config, error) {
	var (
		devices, classes, inC, inH, inW, devF, cloudF, edgeF uint32
		localAgg, cloudAgg, useEdge, edgeAgg, floatCloud     uint8
		seed                                                 int64
	)
	fields := []any{
		&devices, &classes, &inC, &inH, &inW, &devF, &cloudF,
		&localAgg, &cloudAgg, &useEdge, &edgeF, &edgeAgg, &floatCloud, &seed,
	}
	for _, f := range fields {
		if err := binary.Read(r, binary.LittleEndian, f); err != nil {
			return core.Config{}, fmt.Errorf("modelio: read config: %w", err)
		}
	}
	return core.Config{
		Devices: int(devices), Classes: int(classes),
		InputC: int(inC), InputH: int(inH), InputW: int(inW),
		DeviceFilters: int(devF), CloudFilters: int(cloudF),
		LocalAgg: agg.Scheme(localAgg), CloudAgg: agg.Scheme(cloudAgg),
		UseEdge: useEdge != 0, EdgeFilters: int(edgeF), EdgeAgg: agg.Scheme(edgeAgg),
		FloatCloud: floatCloud != 0, Seed: seed,
	}, nil
}

func writeTensor(w io.Writer, nt core.NamedTensor) error {
	name := []byte(nt.Name)
	if err := binary.Write(w, binary.LittleEndian, uint16(len(name))); err != nil {
		return fmt.Errorf("modelio: write tensor name len: %w", err)
	}
	if _, err := w.Write(name); err != nil {
		return fmt.Errorf("modelio: write tensor name: %w", err)
	}
	shape := nt.T.Shape()
	if err := binary.Write(w, binary.LittleEndian, uint8(len(shape))); err != nil {
		return fmt.Errorf("modelio: write tensor rank: %w", err)
	}
	for _, d := range shape {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return fmt.Errorf("modelio: write tensor dim: %w", err)
		}
	}
	buf := make([]byte, 4*len(nt.T.Data()))
	for i, v := range nt.T.Data() {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("modelio: write tensor data: %w", err)
	}
	return nil
}

func readTensor(r io.Reader) (core.NamedTensor, error) {
	var nameLen uint16
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return core.NamedTensor{}, fmt.Errorf("modelio: read tensor name len: %w", err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return core.NamedTensor{}, fmt.Errorf("modelio: read tensor name: %w", err)
	}
	var rank uint8
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return core.NamedTensor{}, fmt.Errorf("modelio: read tensor rank: %w", err)
	}
	if rank == 0 || rank > 8 {
		return core.NamedTensor{}, fmt.Errorf("%w: tensor %q has rank %d", ErrBadFormat, name, rank)
	}
	shape := make([]int, rank)
	elems := 1
	for i := range shape {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return core.NamedTensor{}, fmt.Errorf("modelio: read tensor dim: %w", err)
		}
		if d == 0 || int(d) > maxTensorElems {
			return core.NamedTensor{}, fmt.Errorf("%w: tensor %q has dim %d", ErrBadFormat, name, d)
		}
		shape[i] = int(d)
		elems *= int(d)
		if elems > maxTensorElems {
			return core.NamedTensor{}, fmt.Errorf("%w: tensor %q too large", ErrBadFormat, name)
		}
	}
	buf := make([]byte, 4*elems)
	if _, err := io.ReadFull(r, buf); err != nil {
		return core.NamedTensor{}, fmt.Errorf("modelio: read tensor data: %w", err)
	}
	t := tensor.New(shape...)
	for i := range t.Data() {
		t.Data()[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return core.NamedTensor{Name: string(name), T: t}, nil
}
