package modelio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/core"
)

// tinyConfig is the smallest valid DDNN — fast enough to rebuild inside
// a fuzz iteration.
func tinyConfig() core.Config {
	return core.Config{
		Devices: 2, Classes: 2,
		InputC: 1, InputH: 8, InputW: 8,
		DeviceFilters: 1, CloudFilters: 1,
		LocalAgg: agg.MP, CloudAgg: agg.CC,
		EdgeFilters: 1, EdgeAgg: agg.CC,
		Seed: 7,
	}
}

func tinyArtifact(tb testing.TB, modelVersion uint64) []byte {
	tb.Helper()
	m := core.MustNewModel(tinyConfig())
	var buf bytes.Buffer
	if err := SaveVersion(&buf, m, modelVersion); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func TestVersionStampRoundTrip(t *testing.T) {
	raw := tinyArtifact(t, 42)
	m, v, err := LoadVersioned(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("model version = %d, want 42", v)
	}
	if m.Cfg != tinyConfig() {
		t.Errorf("config round trip changed: %+v", m.Cfg)
	}
}

func TestSaveVersionRejectsZero(t *testing.T) {
	m := core.MustNewModel(tinyConfig())
	if err := SaveVersion(new(bytes.Buffer), m, 0); err == nil {
		t.Error("SaveVersion accepted the reserved version 0")
	}
}

func TestV1ArtifactLoadsAsVersionOne(t *testing.T) {
	// A version-1 artifact is a v2 artifact with the format version
	// rewritten to 1, the model-version stamp removed, and per-tensor
	// checksums stripped; synthesize one from the v2 writer's output.
	raw := tinyArtifact(t, 1)
	v1 := stripToV1(t, raw)
	m, v, err := LoadVersioned(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("v1 artifact loaded as model version %d, want 1", v)
	}
	if m.Cfg != tinyConfig() {
		t.Errorf("v1 config round trip changed: %+v", m.Cfg)
	}
}

// stripToV1 rewrites a v2 artifact into the legacy v1 layout.
func stripToV1(tb testing.TB, raw []byte) []byte {
	tb.Helper()
	var out bytes.Buffer
	out.Write(raw[:8])
	binary.Write(&out, binary.LittleEndian, uint16(1))
	// Skip format version (2) + model version (8).
	p := 10 + 8
	const cfgBytes = 7*4 + 2 + 1 + 4 + 1 + 1 + 8
	out.Write(raw[p : p+cfgBytes+4]) // config + tensor count
	count := binary.LittleEndian.Uint32(raw[p+cfgBytes:])
	p += cfgBytes + 4
	for i := uint32(0); i < count; i++ {
		nameLen := int(binary.LittleEndian.Uint16(raw[p:]))
		rank := int(raw[p+2+nameLen])
		hdr := 2 + nameLen + 1 + 4*rank
		out.Write(raw[p : p+hdr])
		elems := 1
		for d := 0; d < rank; d++ {
			elems *= int(binary.LittleEndian.Uint32(raw[p+2+nameLen+1+4*d:]))
		}
		p += hdr + 4 // skip the checksum
		out.Write(raw[p : p+4*elems])
		p += 4 * elems
	}
	return out.Bytes()
}

func TestLoadRejectsFlippedBit(t *testing.T) {
	raw := tinyArtifact(t, 3)
	// Flip a bit in the last tensor's data; the checksum must catch it.
	mut := append([]byte(nil), raw...)
	mut[len(mut)-3] ^= 0x10
	if _, _, err := LoadVersioned(bytes.NewReader(mut)); !errors.Is(err, ErrCorruptModel) {
		t.Errorf("err = %v, want ErrCorruptModel", err)
	}
}

func TestLoadRejectsHostileTensorHeader(t *testing.T) {
	raw := tinyArtifact(t, 3)
	// Find the first tensor record (right after the count) and inflate
	// its first dimension; Load must reject on the config mismatch
	// before allocating the declared size.
	p := 10 + 8 + (7*4 + 2 + 1 + 4 + 1 + 1 + 8) + 4
	nameLen := int(binary.LittleEndian.Uint16(raw[p:]))
	dimOff := p + 2 + nameLen + 1
	mut := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(mut[dimOff:], 1<<20)
	if _, _, err := LoadVersioned(bytes.NewReader(mut)); !errors.Is(err, ErrCorruptModel) {
		t.Errorf("err = %v, want ErrCorruptModel", err)
	}
}

func TestLoadRejectsHostileConfig(t *testing.T) {
	raw := tinyArtifact(t, 3)
	mut := append([]byte(nil), raw...)
	// Config starts after magic+format version+model version; first
	// field is Devices.
	binary.LittleEndian.PutUint32(mut[18:], 1<<30)
	if _, _, err := LoadVersioned(bytes.NewReader(mut)); !errors.Is(err, ErrCorruptModel) {
		t.Errorf("err = %v, want ErrCorruptModel", err)
	}
}

func TestSaveFileAtomicLeavesNoTemp(t *testing.T) {
	m := core.MustNewModel(tinyConfig())
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ddnn")
	if err := SaveFileAtomic(path, m, 5); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, v, err := LoadVersioned(f)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Errorf("model version = %d, want 5", v)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

// FuzzModelDecode feeds arbitrary bytes to the artifact decoder. The
// decoder must never panic or allocate beyond the declared config's own
// footprint: it either returns a typed error or a model that survives a
// re-save/re-load round trip under the same version stamp.
func FuzzModelDecode(f *testing.F) {
	valid := tinyArtifact(f, 9)
	f.Add(valid)
	f.Add(stripToV1(f, tinyArtifact(f, 1)))
	f.Add(valid[:len(valid)/2])
	mut := append([]byte(nil), valid...)
	mut[len(mut)-1] ^= 0xFF
	f.Add(mut)
	hdr := append([]byte(nil), valid[:64]...)
	f.Add(hdr)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, v, err := LoadVersioned(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptModel) && !errors.Is(err, ErrVersionUnsupported) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := SaveVersion(&buf, m, v); err != nil {
			t.Fatalf("re-save of decoded model: %v", err)
		}
		again, v2, err := LoadVersioned(&buf)
		if err != nil {
			t.Fatalf("re-load of re-saved model: %v", err)
		}
		if v2 != v || again.Cfg != m.Cfg {
			t.Fatalf("round trip changed version %d→%d or config", v, v2)
		}
	})
}
