package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(raw [6]int8) bool {
		logits := tensor.New(2, 3)
		for i, v := range raw {
			logits.Data()[i] = float32(v) / 16
		}
		_ = rng
		p := Softmax(logits)
		for r := 0; r < 2; r++ {
			var s float64
			for _, v := range p.Row(r) {
				if v < 0 || v > 1 {
					return false
				}
				s += float64(v)
			}
			if math.Abs(s-1) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStableForLargeLogits(t *testing.T) {
	logits := tensor.FromSlice([]float32{1000, 999, -1000}, 1, 3)
	p := Softmax(logits)
	for _, v := range p.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax produced %g for large logits", v)
		}
	}
	if p.At(0, 0) <= p.At(0, 1) {
		t.Error("softmax ordering not preserved")
	}
}

func TestNormalizedEntropyBounds(t *testing.T) {
	tests := []struct {
		name  string
		probs []float32
		want  float64
		tol   float64
	}{
		{"one-hot is 0", []float32{1, 0, 0}, 0, 1e-9},
		{"uniform is 1", []float32{1. / 3, 1. / 3, 1. / 3}, 1, 1e-6},
		{"uniform 10-way is 1", []float32{.1, .1, .1, .1, .1, .1, .1, .1, .1, .1}, 1, 1e-5},
		{"degenerate single class", []float32{1}, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NormalizedEntropy(tt.probs)
			if math.Abs(got-tt.want) > tt.tol {
				t.Errorf("NormalizedEntropy(%v) = %g, want %g", tt.probs, got, tt.want)
			}
		})
	}
}

func TestNormalizedEntropyInUnitIntervalProperty(t *testing.T) {
	f := func(a, b, c uint16) bool {
		s := float64(a) + float64(b) + float64(c) + 3
		probs := []float32{
			float32((float64(a) + 1) / s),
			float32((float64(b) + 1) / s),
			float32((float64(c) + 1) / s),
		}
		h := NormalizedEntropy(probs)
		return h >= 0 && h <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBatchNormNormalizesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bn := NewBatchNorm("bn", 4)
	x := tensor.New(64, 4)
	x.FillNormal(rng, 5, 3)
	y := bn.Forward(x, true)
	for c := 0; c < 4; c++ {
		var sum, ssq float64
		for n := 0; n < 64; n++ {
			v := float64(y.At(n, c))
			sum += v
			ssq += v * v
		}
		mean := sum / 64
		variance := ssq/64 - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Errorf("channel %d mean = %g, want ≈0", c, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Errorf("channel %d variance = %g, want ≈1", c, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bn := NewBatchNorm("bn", 2)
	// Train on many batches so the running stats converge to the data
	// distribution N(3, 4).
	for i := 0; i < 200; i++ {
		x := tensor.New(32, 2)
		x.FillNormal(rng, 3, 2)
		bn.Forward(x, true)
	}
	x := tensor.New(1, 2)
	x.Fill(3) // at the running mean, output should be ≈ β = 0
	y := bn.Forward(x, false)
	for _, v := range y.Data() {
		if math.Abs(float64(v)) > 0.1 {
			t.Errorf("eval output at running mean = %g, want ≈0", v)
		}
	}
}

func TestMaxPoolHalvesSpatialDims(t *testing.T) {
	p := NewMaxPool2D(3, 2, 1)
	for _, in := range []int{32, 16, 8, 4} {
		if got := p.OutSize(in); got != in/2 {
			t.Errorf("OutSize(%d) = %d, want %d", in, got, in/2)
		}
	}
}

func TestMaxPoolSelectsMaximum(t *testing.T) {
	x := tensor.New(1, 1, 4, 4)
	for i := 0; i < 16; i++ {
		x.Data()[i] = float32(i)
	}
	p := NewMaxPool2D(2, 2, 0)
	y := p.Forward(x, false)
	want := []float32{5, 7, 13, 15}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Errorf("pool[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestMaxPoolPaddingNeverWins(t *testing.T) {
	x := tensor.New(1, 1, 2, 2)
	x.Fill(-5) // all negative: zero-padding must not beat real values
	p := NewMaxPool2D(3, 2, 1)
	y := p.Forward(x, false)
	for i, v := range y.Data() {
		if v != -5 {
			t.Errorf("pool[%d] = %g, want -5 (padding must be -inf, not 0)", i, v)
		}
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewConv2D(rng, "c", 1, 1, 3, 1, 1, false)
	c.Weight.Value.Zero()
	c.Weight.Value.Set(1, 0, 0, 1, 1) // center tap = identity
	x := tensor.New(1, 1, 5, 5)
	x.FillUniform(rng, -1, 1)
	y := c.Forward(x, false)
	for i, v := range y.Data() {
		if v != x.Data()[i] {
			t.Fatalf("identity conv[%d] = %g, want %g", i, v, x.Data()[i])
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv2D(rng, "c", 1, 1, 3, 1, 1, false)
	c.Weight.Value.Fill(1) // box filter: output = sum of 3×3 neighbourhood
	x := tensor.New(1, 1, 3, 3)
	x.Fill(1)
	y := c.Forward(x, false)
	// Corners see 4 ones, edges 6, center 9.
	want := []float32{4, 6, 4, 6, 9, 6, 4, 6, 4}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Errorf("box conv[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestConv2DOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tests := []struct {
		name                string
		inC, outC           int
		kernel, stride, pad int
		h, w                int
		wantH, wantW        int
	}{
		{"paper 3x3 s1 p1", 3, 4, 3, 1, 1, 32, 32, 32, 32},
		{"stride 2", 3, 8, 3, 2, 1, 32, 32, 16, 16},
		{"no pad", 1, 1, 3, 1, 0, 8, 8, 6, 6},
		{"5x5 kernel", 2, 2, 5, 1, 2, 10, 10, 10, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := NewConv2D(rng, "c", tt.inC, tt.outC, tt.kernel, tt.stride, tt.pad, false)
			x := tensor.New(2, tt.inC, tt.h, tt.w)
			y := c.Forward(x, false)
			wantShape := []int{2, tt.outC, tt.wantH, tt.wantW}
			for i, d := range wantShape {
				if y.Dim(i) != d {
					t.Fatalf("output shape %v, want %v", y.Shape(), wantShape)
				}
			}
		})
	}
}

func TestAdamConvergesOnLinearRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Learn y = 2x₁ - 3x₂ + 1 with a linear layer.
	l := NewLinear(rng, "fc", 2, 1, true)
	opt := NewAdam(0.05)
	for step := 0; step < 400; step++ {
		x := tensor.New(16, 2)
		x.FillUniform(rng, -1, 1)
		target := make([]float32, 16)
		for i := 0; i < 16; i++ {
			target[i] = 2*x.At(i, 0) - 3*x.At(i, 1) + 1
		}
		y := l.Forward(x, true)
		grad := tensor.New(16, 1)
		for i := 0; i < 16; i++ {
			grad.Data()[i] = (y.Data()[i] - target[i]) / 16
		}
		ZeroGrads(l.Params())
		l.Backward(grad)
		opt.Step(l.Params())
	}
	if w := l.Weight.Value; math.Abs(float64(w.At(0, 0))-2) > 0.05 || math.Abs(float64(w.At(1, 0))+3) > 0.05 {
		t.Errorf("learned weights %v, want ≈[2, -3]", w.Data())
	}
	if b := l.Bias.Value.Data()[0]; math.Abs(float64(b)-1) > 0.05 {
		t.Errorf("learned bias %g, want ≈1", b)
	}
}

func TestSGDMatchesAdamDirectionOnQuadratic(t *testing.T) {
	p := NewParam("w", 1)
	p.Value.Data()[0] = 4
	sgd := NewSGD(0.1, 0.9)
	for i := 0; i < 200; i++ {
		p.ZeroGrad()
		p.Grad.Data()[0] = 2 * p.Value.Data()[0] // d/dw w² = 2w
		sgd.Step([]*Param{p})
	}
	if w := p.Value.Data()[0]; math.Abs(float64(w)) > 1e-3 {
		t.Errorf("SGD did not minimize w²: w = %g", w)
	}
}

func TestPostStepHookRunsAfterUpdate(t *testing.T) {
	p := NewParam("w", 2)
	p.Value.Fill(5)
	hookRan := false
	p.PostStep = func(p *Param) {
		hookRan = true
		p.Value.Clamp(-1, 1)
	}
	p.Grad.Fill(1)
	NewSGD(0.1, 0).Step([]*Param{p})
	if !hookRan {
		t.Fatal("PostStep hook did not run")
	}
	for _, v := range p.Value.Data() {
		if v != 1 {
			t.Errorf("clamped weight = %g, want 1", v)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		2, 1, 0,
		0, 3, 1,
		1, 0, 2,
		5, 4, 4,
	}, 4, 3)
	if got := Accuracy(logits, []int{0, 1, 2, 0}); got != 1 {
		t.Errorf("Accuracy = %g, want 1", got)
	}
	if got := Accuracy(logits, []int{1, 1, 2, 0}); got != 0.75 {
		t.Errorf("Accuracy = %g, want 0.75", got)
	}
}

func TestTrainTinyClassifierEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Two well separated Gaussian blobs must be perfectly classifiable.
	model := NewSequential(
		NewLinear(rng, "fc1", 2, 8, true),
		NewReLU(),
		NewLinear(rng, "fc2", 8, 2, true),
	)
	opt := NewAdam(0.01)
	sample := func() (*tensor.Tensor, []int) {
		x := tensor.New(32, 2)
		labels := make([]int, 32)
		for i := 0; i < 32; i++ {
			c := rng.Intn(2)
			labels[i] = c
			cx := float32(3*c*2 - 3) // -3 or +3
			x.Set(cx+float32(rng.NormFloat64()), i, 0)
			x.Set(cx+float32(rng.NormFloat64()), i, 1)
		}
		return x, labels
	}
	for step := 0; step < 200; step++ {
		x, labels := sample()
		logits := model.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(logits, labels, 1)
		ZeroGrads(model.Params())
		model.Backward(grad)
		opt.Step(model.Params())
	}
	x, labels := sample()
	if acc := Accuracy(model.Forward(x, false), labels); acc < 0.97 {
		t.Errorf("tiny classifier accuracy = %g, want ≥0.97", acc)
	}
}

func TestCountParams(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLinear(rng, "fc", 10, 5, true)
	if got := CountParams(l.Params()); got != 55 {
		t.Errorf("CountParams = %d, want 55", got)
	}
}
