package nn

import (
	"math/rand"
	"testing"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// The tests in this file validate every layer's analytic backward pass
// against central finite differences of the forward pass. The scalar
// objective is J = Σ y⊙R for a fixed random R, so dJ/dy = R.

const (
	gradEps = 1e-2
	gradTol = 6e-2
)

// objective evaluates J = Σ forward(x)·R in float64.
func objective(l Layer, x *tensor.Tensor, r []float64) float64 {
	y := l.Forward(x, true)
	var j float64
	for i, v := range y.Data() {
		j += float64(v) * r[i]
	}
	return j
}

// checkGrads runs the layer forward+backward once and compares the analytic
// input and parameter gradients to finite differences.
func checkGrads(t *testing.T, l Layer, x *tensor.Tensor, rng *rand.Rand) {
	t.Helper()
	y := l.Forward(x, true)
	r := make([]float64, y.Size())
	rT := tensor.New(y.Shape()...)
	for i := range r {
		r[i] = rng.Float64()*2 - 1
		rT.Data()[i] = float32(r[i])
	}
	ZeroGrads(l.Params())
	dx := l.Backward(rT)

	// Input gradient.
	xd := x.Data()
	for _, i := range sampleIndices(len(xd), 40, rng) {
		orig := xd[i]
		xd[i] = orig + gradEps
		jp := objective(l, x, r)
		xd[i] = orig - gradEps
		jm := objective(l, x, r)
		xd[i] = orig
		num := (jp - jm) / (2 * gradEps)
		got := float64(dx.Data()[i])
		if !closeGrad(got, num) {
			t.Errorf("input grad[%d] = %g, finite diff %g", i, got, num)
		}
	}

	// Parameter gradients.
	for _, p := range l.Params() {
		pd := p.Value.Data()
		for _, i := range sampleIndices(len(pd), 25, rng) {
			orig := pd[i]
			pd[i] = orig + gradEps
			jp := objective(l, x, r)
			pd[i] = orig - gradEps
			jm := objective(l, x, r)
			pd[i] = orig
			num := (jp - jm) / (2 * gradEps)
			got := float64(p.Grad.Data()[i])
			if !closeGrad(got, num) {
				t.Errorf("param %s grad[%d] = %g, finite diff %g", p.Name, i, got, num)
			}
		}
	}
}

func closeGrad(got, want float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if w := abs64(want); w > scale {
		scale = w
	}
	return d <= gradTol*scale
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func sampleIndices(n, k int, rng *rand.Rand) []int {
	if n <= k {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	seen := make(map[int]bool, k)
	idx := make([]int, 0, k)
	for len(idx) < k {
		i := rng.Intn(n)
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	return idx
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, "fc", 7, 5, true)
	x := tensor.New(4, 7)
	x.FillUniform(rng, -1, 1)
	checkGrads(t, l, x, rng)
}

func TestLinearNoBiasGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, "fc", 6, 3, false)
	x := tensor.New(3, 6)
	x.FillUniform(rng, -1, 1)
	checkGrads(t, l, x, rng)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewConv2D(rng, "conv", 2, 3, 3, 1, 1, true)
	x := tensor.New(2, 2, 6, 6)
	x.FillUniform(rng, -1, 1)
	checkGrads(t, l, x, rng)
}

func TestConv2DStride2Gradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewConv2D(rng, "conv", 2, 2, 3, 2, 1, false)
	x := tensor.New(2, 2, 7, 7)
	x.FillUniform(rng, -1, 1)
	checkGrads(t, l, x, rng)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewMaxPool2D(3, 2, 1)
	x := tensor.New(2, 2, 8, 8)
	// Distinct values so that argmax ties cannot flip under perturbation.
	perm := rng.Perm(x.Size())
	for i, p := range perm {
		x.Data()[i] = float32(p) * 0.01
	}
	checkGrads(t, l, x, rng)
}

func TestBatchNorm2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewBatchNorm("bn", 5)
	x := tensor.New(8, 5)
	x.FillUniform(rng, -2, 2)
	checkGrads(t, l, x, rng)
}

func TestBatchNorm4DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewBatchNorm("bn", 3)
	x := tensor.New(4, 3, 5, 5)
	x.FillUniform(rng, -2, 2)
	checkGrads(t, l, x, rng)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewReLU()
	x := tensor.New(4, 10)
	x.FillUniform(rng, -1, 1)
	// Keep inputs away from the kink at 0 where finite differences break.
	x.Apply(func(v float32) float32 {
		if v >= 0 && v < 0.1 {
			return v + 0.1
		}
		if v < 0 && v > -0.1 {
			return v - 0.1
		}
		return v
	})
	checkGrads(t, l, x, rng)
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := NewSequential(
		NewConv2D(rng, "c1", 1, 2, 3, 1, 1, false),
		NewBatchNorm("bn1", 2),
		NewMaxPool2D(3, 2, 1),
		NewFlatten(),
		NewLinear(rng, "fc1", 2*3*3, 4, true),
	)
	x := tensor.New(2, 1, 6, 6)
	x.FillUniform(rng, -1, 1)
	checkGrads(t, seq, x, rng)
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	logits := tensor.New(5, 3)
	logits.FillUniform(rng, -2, 2)
	labels := []int{0, 2, 1, 1, 0}

	_, grad := SoftmaxCrossEntropy(logits, labels, 1)
	for _, i := range sampleIndices(logits.Size(), 15, rng) {
		ld := logits.Data()
		orig := ld[i]
		ld[i] = orig + gradEps
		jp, _ := SoftmaxCrossEntropy(logits, labels, 1)
		ld[i] = orig - gradEps
		jm, _ := SoftmaxCrossEntropy(logits, labels, 1)
		ld[i] = orig
		num := (jp - jm) / (2 * gradEps)
		if !closeGrad(float64(grad.Data()[i]), num) {
			t.Errorf("loss grad[%d] = %g, finite diff %g", i, grad.Data()[i], num)
		}
	}
}

func TestSoftmaxCrossEntropyWeightScalesGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := tensor.New(3, 4)
	logits.FillUniform(rng, -1, 1)
	labels := []int{1, 3, 0}
	l1, g1 := SoftmaxCrossEntropy(logits, labels, 1)
	l2, g2 := SoftmaxCrossEntropy(logits, labels, 0.5)
	if !closeGrad(l2, l1*0.5) {
		t.Errorf("weighted loss = %g, want %g", l2, l1*0.5)
	}
	for i := range g1.Data() {
		if !closeGrad(float64(g2.Data()[i]), float64(g1.Data()[i])*0.5) {
			t.Fatalf("weighted grad[%d] = %g, want %g", i, g2.Data()[i], g1.Data()[i]*0.5)
		}
	}
}
