package nn

import (
	"math/rand"
	"testing"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

func TestConvPoolBlockShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewConvPoolBlock(rng, "cpb", 3, 8)
	x := tensor.New(2, 3, 16, 16)
	x.FillUniform(rng, -1, 1)
	y := b.Forward(x, true)
	wantShape := []int{2, 8, 8, 8}
	for i, d := range wantShape {
		if y.Dim(i) != d {
			t.Fatalf("output shape %v, want %v", y.Shape(), wantShape)
		}
	}
	for _, v := range y.Data() {
		if v < 0 {
			t.Fatal("ReLU output must be non-negative")
		}
	}
}

func TestConvPoolBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := NewConvPoolBlock(rng, "cpb", 2, 3)
	x := tensor.New(2, 2, 8, 8)
	// Distinct values to keep max-pool argmax stable under perturbation.
	perm := rng.Perm(x.Size())
	for i, p := range perm {
		x.Data()[i] = float32(p)*0.01 - 1.2
	}
	checkGrads(t, b, x, rng)
}

func TestConvPoolBlockParamsAndMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewConvPoolBlock(rng, "cpb", 3, 4)
	if got := len(b.Params()); got != 3 { // conv weight + γ + β
		t.Errorf("Params() = %d entries, want 3", got)
	}
	// 4·3·9 weights × 32 bits + 2·32·4 BN bits.
	if got, want := b.MemoryBits(), 32*108+256; got != want {
		t.Errorf("MemoryBits = %d, want %d", got, want)
	}
}
