package nn

import (
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// ReLU is the rectified-linear activation. It is used by the optional
// floating-point cloud variants (§VI future work); the binary blocks use
// bnn.BinaryActivation instead.
type ReLU struct {
	mask []bool
}

var _ Layer = (*ReLU)(nil)

// NewReLU constructs a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Forward computes max(x, 0).
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone()
	yd := y.Data()
	if train {
		r.mask = make([]bool, len(yd))
	}
	for i, v := range yd {
		if v <= 0 {
			yd[i] = 0
		} else if train {
			r.mask[i] = true
		}
	}
	return y
}

// ForwardPooled is the inference forward against a tensor pool; the
// caller owns the returned tensor and should Put it back when done.
func (r *ReLU) ForwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	y := p.GetDirty(x.Shape()...)
	yd, xd := y.Data(), x.Data()
	for i, v := range xd {
		if v <= 0 {
			v = 0
		}
		yd[i] = v
	}
	return y
}

// Backward passes gradient only where the input was positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward called before Forward(train=true)")
	}
	dx := grad.Clone()
	dxd := dx.Data()
	for i := range dxd {
		if !r.mask[i] {
			dxd[i] = 0
		}
	}
	return dx
}

// Params returns nil.
func (r *ReLU) Params() []*Param { return nil }

// Flatten reshapes [N, ...] inputs to [N, D] and restores the original
// shape on the backward pass.
type Flatten struct {
	inShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten constructs a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward returns a [N, D] view of x.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = x.Shape()
	}
	n := x.Dim(0)
	return x.Reshape(n, x.Size()/n)
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten.Backward called before Forward(train=true)")
	}
	return grad.Reshape(f.inShape...)
}

// Params returns nil.
func (f *Flatten) Params() []*Param { return nil }
