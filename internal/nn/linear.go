package nn

import (
	"fmt"
	"math/rand"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// Linear is a fully connected layer computing y = x·W + b for x of shape
// [N, in] and W of shape [in, out].
type Linear struct {
	In, Out int
	Weight  *Param
	Bias    *Param // nil when the layer has no bias

	x *tensor.Tensor // cached input for backward
}

var _ Layer = (*Linear)(nil)

// NewLinear constructs a fully connected layer with Glorot-initialized
// weights and zero bias.
func NewLinear(rng *rand.Rand, name string, in, out int, withBias bool) *Linear {
	l := &Linear{
		In:     in,
		Out:    out,
		Weight: NewParam(name+".weight", in, out),
	}
	l.Weight.Value.FillGlorot(rng, in, out)
	if withBias {
		l.Bias = NewParam(name+".bias", out)
	}
	return l
}

// Forward computes x·W + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear %s input shape %v, want [N %d]", l.Weight.Name, x.Shape(), l.In))
	}
	if train {
		l.x = x
	}
	y := tensor.MatMul(x, l.Weight.Value)
	if l.Bias != nil {
		n := y.Dim(0)
		bd := l.Bias.Value.Data()
		for i := 0; i < n; i++ {
			row := y.Row(i)
			for j := range row {
				row[j] += bd[j]
			}
		}
	}
	return y
}

// ForwardPooled is the inference forward against a tensor pool; the
// caller owns the returned tensor and should Put it back when done.
// Unlike Forward it accepts any input whose per-sample element count is
// In — a [N, F, H, W] feature map flattens implicitly, sparing callers
// the Reshape view (an allocation on the serving hot path).
func (l *Linear) ForwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	n := x.Dim(0)
	if x.Size()/n != l.In {
		panic(fmt.Sprintf("nn: Linear %s input shape %v, want %d elements per sample", l.Weight.Name, x.Shape(), l.In))
	}
	y := p.GetDirty(n, l.Out)
	tensor.Gemm(y.Data(), x.Data(), l.Weight.Value.Data(), n, l.In, l.Out)
	if l.Bias != nil {
		bd := l.Bias.Value.Data()
		for i := 0; i < n; i++ {
			row := y.Row(i)
			for j := range row {
				row[j] += bd[j]
			}
		}
	}
	return y
}

// Backward accumulates dW = xᵀ·dy and db = Σ dy, and returns dx = dy·Wᵀ.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("nn: Linear.Backward called before Forward(train=true)")
	}
	dW := tensor.MatMulTransA(l.x, grad)
	l.Weight.Grad.Add(dW)
	if l.Bias != nil {
		gb := l.Bias.Grad.Data()
		n := grad.Dim(0)
		for i := 0; i < n; i++ {
			row := grad.Row(i)
			for j := range row {
				gb[j] += row[j]
			}
		}
	}
	// dx [N,in] = dy [N,out] · Wᵀ; W is stored [in,out], and
	// MatMulTransB(dy, W) computes dy·Wᵀ without materializing the
	// transpose.
	return tensor.MatMulTransB(grad, l.Weight.Value)
}

// Params returns the layer parameters.
func (l *Linear) Params() []*Param {
	if l.Bias == nil {
		return []*Param{l.Weight}
	}
	return []*Param{l.Weight, l.Bias}
}
