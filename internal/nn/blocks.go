package nn

import (
	"math/rand"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// ConvPoolBlock is the floating-point counterpart of the paper's fused
// binary ConvP block: a 3×3 convolution (stride 1, padding 1), a 3×3 max
// pool (stride 2, padding 1), batch normalization and a ReLU activation.
// The paper's §VI proposes mixed-precision DDNNs where end devices keep
// binary layers but the cloud uses floating-point ones; this block is that
// cloud-side building unit.
type ConvPoolBlock struct {
	Conv *Conv2D
	Pool *MaxPool2D
	BN   *BatchNorm
	Act  *ReLU
}

var _ Layer = (*ConvPoolBlock)(nil)

// NewConvPoolBlock constructs a float conv-pool block with f filters.
func NewConvPoolBlock(rng *rand.Rand, name string, inC, f int) *ConvPoolBlock {
	return &ConvPoolBlock{
		Conv: NewConv2D(rng, name+".conv", inC, f, 3, 1, 1, false),
		Pool: NewMaxPool2D(3, 2, 1),
		BN:   NewBatchNorm(name+".bn", f),
		Act:  NewReLU(),
	}
}

// Forward applies conv → pool → batch norm → ReLU.
func (b *ConvPoolBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := b.Conv.Forward(x, train)
	y = b.Pool.Forward(y, train)
	y = b.BN.Forward(y, train)
	return b.Act.Forward(y, train)
}

// ForwardPooled is the inference forward against a tensor pool:
// intermediates are returned to the pool as soon as the next stage has
// consumed them, and the caller owns the returned tensor.
func (b *ConvPoolBlock) ForwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	y1 := b.Conv.ForwardPooled(x, p)
	y2 := b.Pool.ForwardPooled(y1, p)
	p.Put(y1)
	y3 := b.BN.ForwardPooled(y2, p)
	p.Put(y2)
	y4 := b.Act.ForwardPooled(y3, p)
	p.Put(y3)
	return y4
}

// Backward propagates through the block in reverse.
func (b *ConvPoolBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	grad = b.Act.Backward(grad)
	grad = b.BN.Backward(grad)
	grad = b.Pool.Backward(grad)
	return b.Conv.Backward(grad)
}

// Params returns the block's learnable parameters.
func (b *ConvPoolBlock) Params() []*Param {
	return append(b.Conv.Params(), b.BN.Params()...)
}

// MemoryBits returns the deployed footprint: 32 bits per weight plus the
// fused batch-norm scale/shift pairs.
func (b *ConvPoolBlock) MemoryBits() int {
	return 32*b.Conv.Weight.Value.Size() + 2*32*b.BN.C
}
