package nn

import (
	"math/rand"
	"testing"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// TestConvForwardMatchesTapLoop checks the im2col+GEMM forward against
// the retained tap-loop reference on randomized shapes — kernel sizes,
// strides, paddings (including pad 0 and pad > kernel/2), non-square
// inputs, batches, and bias. The GEMM accumulates every output element's
// taps in the tap loop's exact order, so outputs must be equal.
func TestConvForwardMatchesTapLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 80; trial++ {
		kernel := 1 + rng.Intn(4)
		stride := 1 + rng.Intn(3)
		pad := rng.Intn(3)
		inC := 1 + rng.Intn(4)
		outC := 1 + rng.Intn(9)
		h := kernel + rng.Intn(12)
		w := kernel + rng.Intn(12)
		n := 1 + rng.Intn(3)
		withBias := rng.Intn(2) == 0

		conv := NewConv2D(rng, "t", inC, outC, kernel, stride, pad, withBias)
		if withBias {
			conv.Bias.Value.FillUniform(rng, -1, 1)
		}
		x := tensor.New(n, inC, h, w)
		x.FillUniform(rng, -1, 1)

		want := conv.forwardTaps(x)
		got := conv.Forward(x, false)
		if !got.SameShape(want) {
			t.Fatalf("k=%d s=%d p=%d: shape %v, want %v", kernel, stride, pad, got.Shape(), want.Shape())
		}
		for i, wv := range want.Data() {
			if got.Data()[i] != wv {
				t.Fatalf("k=%d s=%d p=%d inC=%d outC=%d %dx%d n=%d bias=%v: element %d = %g, taps %g",
					kernel, stride, pad, inC, outC, h, w, n, withBias, i, got.Data()[i], wv)
			}
		}
	}
}

// TestConvForwardSignKernelMatchesTapLoop is the same contract for
// binarized ±1 weights, which take the add/sub sign-GEMM path.
func TestConvForwardSignKernelMatchesTapLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		kernel := 1 + rng.Intn(4)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		inC := 1 + rng.Intn(4)
		outC := 1 + rng.Intn(9)
		h := kernel + rng.Intn(10)
		w := kernel + rng.Intn(10)
		n := 1 + rng.Intn(3)

		conv := NewConv2D(rng, "t", inC, outC, kernel, stride, pad, false)
		wd := conv.Weight.Value.Data()
		for i := range wd {
			wd[i] = float32(rng.Intn(2)*2 - 1)
		}
		conv.SignWeights = true
		x := tensor.New(n, inC, h, w)
		x.FillUniform(rng, -1, 1)

		want := conv.forwardTaps(x)
		got := conv.Forward(x, false)
		for i, wv := range want.Data() {
			if got.Data()[i] != wv {
				t.Fatalf("k=%d s=%d p=%d inC=%d outC=%d %dx%d n=%d: element %d = %g, taps %g",
					kernel, stride, pad, inC, outC, h, w, n, i, got.Data()[i], wv)
			}
		}
	}
}

// TestConvForwardPooledMatchesForward checks that the pooled inference
// forward (pool-provided output and scratch) produces exactly the plain
// forward's result, including when the pool recycles dirty buffers.
func TestConvForwardPooledMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := NewConv2D(rng, "t", 3, 4, 3, 1, 1, false)
	pool := tensor.NewPool()
	for trial := 0; trial < 5; trial++ {
		x := tensor.New(2, 3, 8, 8)
		x.FillUniform(rng, -1, 1)
		want := conv.Forward(x, false)
		got := conv.ForwardPooled(x, pool)
		for i, wv := range want.Data() {
			if got.Data()[i] != wv {
				t.Fatalf("trial %d: element %d = %g, want %g", trial, i, got.Data()[i], wv)
			}
		}
		pool.Put(got)
	}
}

// TestMaxPoolInferenceMatchesTraining checks the unrolled inference scan
// against the argmax-tracking training scan across shapes and strides.
func TestMaxPoolInferenceMatchesTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		kernel := 1 + rng.Intn(4)
		stride := 1 + rng.Intn(3)
		pad := rng.Intn(kernel) // pad < kernel keeps windows non-empty
		h := kernel + rng.Intn(12)
		w := kernel + rng.Intn(12)
		p := NewMaxPool2D(kernel, stride, pad)
		x := tensor.New(2, 3, h, w)
		x.FillUniform(rng, -1, 1)

		want := p.Forward(x, true) // training scan
		got := p.Forward(x, false) // inference scan
		for i, wv := range want.Data() {
			if got.Data()[i] != wv {
				t.Fatalf("k=%d s=%d p=%d %dx%d: element %d = %g, training scan %g",
					kernel, stride, pad, h, w, i, got.Data()[i], wv)
			}
		}
	}
}
