// Package nn implements the neural-network substrate used by the DDNN
// reproduction: a layer-wise framework with explicit forward and backward
// passes, standard layers (linear, convolution, pooling, batch
// normalization), the softmax cross-entropy loss, and the Adam and SGD
// optimizers. All math is float32 and single-threaded deterministic given a
// fixed seed.
package nn

import (
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// Param is a single learnable parameter with its accumulated gradient.
type Param struct {
	// Name identifies the parameter for serialization and debugging, e.g.
	// "conv1.weight".
	Name string
	// Value holds the parameter data. For binarized layers this is the
	// real-valued latent weight; the binarized view is derived at forward
	// time.
	Value *tensor.Tensor
	// Grad accumulates the gradient of the loss with respect to Value. It
	// always has the same shape as Value.
	Grad *tensor.Tensor
	// PostStep, if non-nil, runs after every optimizer step. Binary layers
	// use it to clip latent weights to [-1, 1] as in BinaryConnect.
	PostStep func(p *Param)
}

// NewParam allocates a parameter and its gradient with the given shape.
func NewParam(name string, shape ...int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(shape...),
		Grad:  tensor.New(shape...),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward computes the output for an
// input batch; Backward consumes the gradient of the loss with respect to
// the layer output and returns the gradient with respect to the layer
// input, accumulating parameter gradients as a side effect.
//
// Backward must be called after Forward with train=true; layers may cache
// activations between the two calls. Layers are not safe for concurrent
// use.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// PooledLayer is implemented by layers whose inference forward can draw
// its output (and internal scratch) from a tensor.Pool instead of the
// heap. The returned tensor comes from the pool: the caller owns it and
// should Put it back once consumed. ForwardPooled is always
// inference-mode (no activation caching) and, like inference Forward,
// never writes to layer state, so it is safe for concurrent sessions.
type PooledLayer interface {
	ForwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor
}

// ForwardPooled runs l's pooled inference forward when it has one and
// falls back to a plain inference Forward otherwise (the fallback's
// output is heap-allocated; Put-ting it into the pool afterwards is
// still valid and lets it recycle).
func ForwardPooled(l Layer, x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	if pl, ok := l.(PooledLayer); ok {
		return pl.ForwardPooled(x, p)
	}
	return l.Forward(x, false)
}

// Sequential chains layers, feeding each layer's output to the next.
type Sequential struct {
	layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential builds a sequential container over the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{layers: layers}
}

// Append adds layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) {
	s.layers = append(s.layers, layers...)
}

// Layers returns the contained layers in order.
func (s *Sequential) Layers() []Layer { return s.layers }

// Forward applies every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the gradient through every layer in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad = s.layers[i].Backward(grad)
	}
	return grad
}

// Params returns the parameters of all contained layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears the gradients of every parameter in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// CountParams returns the total number of scalar parameters in ps.
func CountParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.Value.Size()
	}
	return n
}
