package nn

import (
	"fmt"
	"math/rand"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs with square kernels. The
// DDNN paper uses 3×3 kernels with stride 1 and padding 1 everywhere; the
// implementation supports general kernel/stride/padding so the cloud
// sections can differ if desired.
type Conv2D struct {
	InC, OutC              int
	Kernel, Stride, Pad    int
	Weight                 *Param // [OutC, InC, K, K]
	Bias                   *Param // [OutC], nil when disabled
	x                      *tensor.Tensor
	cachedInH, cachedInW   int
	cachedOutH, cachedOutW int

	// SignWeights declares that every weight is exactly ±1 (binarized
	// layers), switching the GEMM to the add/sub sign kernel. Results
	// are bit-identical to the float kernel; see tensor.GemmSign.
	SignWeights bool

	// w2d views the weights as the [OutC, InC·K·K] GEMM operand of the
	// im2col forward. It shares storage with Weight.Value, so weight
	// updates (and binarization syncs) need no re-pack.
	w2d *tensor.Tensor

	// scratch recycles per-sample im2col buffers across forward calls;
	// each concurrent sample borrows its own buffer.
	scratch tensor.Pool
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D constructs a convolution layer with He-initialized weights.
func NewConv2D(rng *rand.Rand, name string, inC, outC, kernel, stride, pad int, withBias bool) *Conv2D {
	c := &Conv2D{
		InC:    inC,
		OutC:   outC,
		Kernel: kernel,
		Stride: stride,
		Pad:    pad,
		Weight: NewParam(name+".weight", outC, inC, kernel, kernel),
	}
	c.Weight.Value.FillHe(rng, inC*kernel*kernel)
	c.w2d = c.Weight.Value.Reshape(outC, inC*kernel*kernel)
	if withBias {
		c.Bias = NewParam(name+".bias", outC)
	}
	return c
}

// OutSize returns the spatial output size for an input of size in.
func (c *Conv2D) OutSize(in int) int {
	return (in+2*c.Pad-c.Kernel)/c.Stride + 1
}

// Forward computes the convolution for x of shape [N, InC, H, W] by
// lowering each sample to its im2col matrix and running one blocked GEMM
// per sample (see forwardInto). Results match the tap-loop reference
// (forwardTaps) exactly.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, h, w := c.checkInput(x)
	oh, ow := c.OutSize(h), c.OutSize(w)
	// Cache only during training: backward needs the shapes, and inference
	// must stay free of writes so concurrent sessions can share the layer.
	if train {
		c.x = x
		c.cachedInH, c.cachedInW, c.cachedOutH, c.cachedOutW = h, w, oh, ow
	}
	y := tensor.New(n, c.OutC, oh, ow)
	c.forwardInto(y, x, nil)
	return y
}

// ForwardPooled is the inference forward against a tensor pool: the
// returned tensor comes from p (the caller owns it and should Put it
// back when done). A nil pool falls back to plain allocation.
func (c *Conv2D) ForwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	n, h, w := c.checkInput(x)
	y := p.GetDirty(n, c.OutC, c.OutSize(h), c.OutSize(w))
	c.forwardInto(y, x, p)
	return y
}

func (c *Conv2D) checkInput(x *tensor.Tensor) (n, h, w int) {
	if x.Dims() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D %s input shape %v, want [N %d H W]", c.Weight.Name, x.Shape(), c.InC))
	}
	return x.Dim(0), x.Dim(2), x.Dim(3)
}

// convParallelOps is the per-GEMM multiply-add count above which a
// forward is split across the worker pool: over samples when the batch
// has several, over output-channel row blocks for big single-sample
// convolutions (the cloud section). Small convolutions stay serial —
// goroutine handoff would dominate.
const convParallelOps = 1 << 15

// forwardInto computes the convolution into y. Each sample's input is
// lowered to a [InC·K·K, oh·ow] im2col matrix (borrowed from p, or from
// the layer's own scratch pool when p is nil) and multiplied by the
// [OutC, InC·K·K] weight view. The im2col row order equals the tap
// loop's (channel, kernel-row, kernel-column) accumulation order and the
// GEMM accumulates rows in ascending order, so every output element sums
// its products in exactly the tap loop's sequence.
func (c *Conv2D) forwardInto(y, x *tensor.Tensor, p *tensor.Pool) {
	n := x.Dim(0)
	oh, ow := y.Dim(2), y.Dim(3)
	rows := c.InC * c.Kernel * c.Kernel
	cols := oh * ow
	scratch := p
	if scratch == nil {
		scratch = &c.scratch
	}
	wd := c.w2d.Data()
	outPlane := c.OutC * cols
	gemm := tensor.Gemm
	if c.SignWeights {
		gemm = tensor.GemmSign
	}

	ops := c.OutC * rows * cols
	switch {
	case n > 1 && ops >= convParallelOps && tensor.MaxWorkers() > 1:
		// Intra-batch parallelism: samples are independent, each worker
		// borrows its own im2col buffer.
		tensor.ParallelFor(n, 1, func(lo, hi int) {
			buf := scratch.GetDirty(rows, cols)
			defer scratch.Put(buf)
			for ni := lo; ni < hi; ni++ {
				tensor.Im2colInto(buf.Data(), x, ni, c.Kernel, c.Stride, c.Pad)
				gemm(y.Data()[ni*outPlane:(ni+1)*outPlane], wd, buf.Data(), c.OutC, rows, cols)
			}
		})
	case n == 1 && c.OutC >= 8 && ops >= convParallelOps && tensor.MaxWorkers() > 1:
		// Single big sample (cloud-section convs): lower once, then split
		// the GEMM over output-channel row blocks.
		buf := scratch.GetDirty(rows, cols)
		defer scratch.Put(buf)
		tensor.Im2colInto(buf.Data(), x, 0, c.Kernel, c.Stride, c.Pad)
		yd := y.Data()
		tensor.ParallelFor(c.OutC, 4, func(lo, hi int) {
			gemm(yd[lo*cols:hi*cols], wd[lo*rows:hi*rows], buf.Data(), hi-lo, rows, cols)
		})
	default:
		buf := scratch.GetDirty(rows, cols)
		for ni := 0; ni < n; ni++ {
			tensor.Im2colInto(buf.Data(), x, ni, c.Kernel, c.Stride, c.Pad)
			gemm(y.Data()[ni*outPlane:(ni+1)*outPlane], wd, buf.Data(), c.OutC, rows, cols)
		}
		scratch.Put(buf)
	}

	if c.Bias != nil {
		yd, bd := y.Data(), c.Bias.Value.Data()
		for ni := 0; ni < n; ni++ {
			for f := 0; f < c.OutC; f++ {
				out := yd[ni*outPlane+f*cols : ni*outPlane+(f+1)*cols]
				bv := bd[f]
				for i := range out {
					out[i] += bv
				}
			}
		}
	}
}

// forwardTaps is the scalar per-tap reference convolution the GEMM path
// replaced. It is retained as the ground truth for the im2col+GEMM
// parity tests.
func (c *Conv2D) forwardTaps(x *tensor.Tensor) *tensor.Tensor {
	n, h, w := c.checkInput(x)
	oh, ow := c.OutSize(h), c.OutSize(w)
	y := tensor.New(n, c.OutC, oh, ow)
	xd, yd, wd := x.Data(), y.Data(), c.Weight.Value.Data()
	k, st, pad := c.Kernel, c.Stride, c.Pad
	inPlane := h * w
	outPlane := oh * ow
	for ni := 0; ni < n; ni++ {
		xBase := ni * c.InC * inPlane
		yBase := ni * c.OutC * outPlane
		for f := 0; f < c.OutC; f++ {
			out := yd[yBase+f*outPlane : yBase+(f+1)*outPlane]
			for ci := 0; ci < c.InC; ci++ {
				in := xd[xBase+ci*inPlane : xBase+(ci+1)*inPlane]
				wBase := (f*c.InC + ci) * k * k
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						wv := wd[wBase+ky*k+kx]
						if wv == 0 {
							continue
						}
						convAccum(out, in, wv, oh, ow, h, w, ky-pad, kx-pad, st)
					}
				}
			}
			if c.Bias != nil {
				bv := c.Bias.Value.Data()[f]
				for i := range out {
					out[i] += bv
				}
			}
		}
	}
	return y
}

// convAccum adds wv * shifted(in) into out for one kernel tap. dy/dx are the
// spatial offsets of the tap relative to the output origin; st is the
// stride. Out-of-bounds input locations contribute zero (zero padding).
func convAccum(out, in []float32, wv float32, oh, ow, ih, iw, dy, dx, st int) {
	for oy := 0; oy < oh; oy++ {
		iy := oy*st + dy
		if iy < 0 || iy >= ih {
			continue
		}
		orow := out[oy*ow : (oy+1)*ow]
		irow := in[iy*iw : (iy+1)*iw]
		// Valid output columns: 0 <= ox*st+dx < iw.
		ox0, ox1 := colRange(ow, iw, dx, st)
		if st == 1 {
			// Contiguous fast path: orow[ox] += wv * irow[ox+dx].
			src := irow[ox0+dx : ox1+dx]
			dst := orow[ox0:ox1]
			for i, sv := range src {
				dst[i] += wv * sv
			}
			continue
		}
		for ox := ox0; ox < ox1; ox++ {
			orow[ox] += wv * irow[ox*st+dx]
		}
	}
}

// colRange returns the half-open range of output columns whose sampled
// input column ox*st+dx lies within [0, iw).
func colRange(ow, iw, dx, st int) (int, int) {
	ox0 := 0
	if dx < 0 {
		ox0 = (-dx + st - 1) / st
	}
	ox1 := ow
	if maxOx := (iw - 1 - dx) / st; maxOx+1 < ox1 {
		ox1 = maxOx + 1
	}
	if ox1 < ox0 {
		ox1 = ox0
	}
	return ox0, ox1
}

// Backward accumulates weight/bias gradients and returns the input
// gradient.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.x == nil {
		panic("nn: Conv2D.Backward called before Forward(train=true)")
	}
	n := c.x.Dim(0)
	h, w, oh, ow := c.cachedInH, c.cachedInW, c.cachedOutH, c.cachedOutW
	k, st, pad := c.Kernel, c.Stride, c.Pad
	dx := tensor.New(n, c.InC, h, w)
	xd, gd, dxd := c.x.Data(), grad.Data(), dx.Data()
	wd, dwd := c.Weight.Value.Data(), c.Weight.Grad.Data()
	inPlane, outPlane := h*w, oh*ow

	for ni := 0; ni < n; ni++ {
		xBase := ni * c.InC * inPlane
		gBase := ni * c.OutC * outPlane
		for f := 0; f < c.OutC; f++ {
			gout := gd[gBase+f*outPlane : gBase+(f+1)*outPlane]
			if c.Bias != nil {
				var s float32
				for _, v := range gout {
					s += v
				}
				c.Bias.Grad.Data()[f] += s
			}
			for ci := 0; ci < c.InC; ci++ {
				in := xd[xBase+ci*inPlane : xBase+(ci+1)*inPlane]
				din := dxd[xBase+ci*inPlane : xBase+(ci+1)*inPlane]
				wBase := (f*c.InC + ci) * k * k
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						widx := wBase + ky*k + kx
						dy, dxo := ky-pad, kx-pad
						// dW[f,ci,ky,kx] += Σ gout[oy,ox] * in[oy*st+dy, ox*st+dxo]
						// dIn[iy,ix]     += Σ gout[oy,ox] * w  (scatter)
						dwd[widx] += convTapGradW(gout, in, oh, ow, h, w, dy, dxo, st)
						convTapGradX(din, gout, wd[widx], oh, ow, h, w, dy, dxo, st)
					}
				}
			}
		}
	}
	return dx
}

func convTapGradW(gout, in []float32, oh, ow, ih, iw, dy, dx, st int) float32 {
	var s float32
	for oy := 0; oy < oh; oy++ {
		iy := oy*st + dy
		if iy < 0 || iy >= ih {
			continue
		}
		grow := gout[oy*ow : (oy+1)*ow]
		irow := in[iy*iw : (iy+1)*iw]
		ox0, ox1 := colRange(ow, iw, dx, st)
		if st == 1 {
			src := irow[ox0+dx : ox1+dx]
			g := grow[ox0:ox1]
			for i, gv := range g {
				s += gv * src[i]
			}
			continue
		}
		for ox := ox0; ox < ox1; ox++ {
			s += grow[ox] * irow[ox*st+dx]
		}
	}
	return s
}

func convTapGradX(din, gout []float32, wv float32, oh, ow, ih, iw, dy, dx, st int) {
	if wv == 0 {
		return
	}
	for oy := 0; oy < oh; oy++ {
		iy := oy*st + dy
		if iy < 0 || iy >= ih {
			continue
		}
		grow := gout[oy*ow : (oy+1)*ow]
		drow := din[iy*iw : (iy+1)*iw]
		ox0, ox1 := colRange(ow, iw, dx, st)
		if st == 1 {
			dst := drow[ox0+dx : ox1+dx]
			g := grow[ox0:ox1]
			for i, gv := range g {
				dst[i] += wv * gv
			}
			continue
		}
		for ox := ox0; ox < ox1; ox++ {
			drow[ox*st+dx] += wv * grow[ox]
		}
	}
}

// Params returns the layer parameters.
func (c *Conv2D) Params() []*Param {
	if c.Bias == nil {
		return []*Param{c.Weight}
	}
	return []*Param{c.Weight, c.Bias}
}
