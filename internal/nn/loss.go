package nn

import (
	"fmt"
	"math"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// Softmax converts a [N, C] logit matrix to row-wise probabilities using
// the numerically stable max-shift formulation.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("nn: Softmax input %v, want [N C]", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, c)
	for i := 0; i < n; i++ {
		src, dst := logits.Row(i), out.Row(i)
		maxv := src[0]
		for _, v := range src[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range src {
			e := math.Exp(float64(v - maxv))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
	return out
}

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss over a
// batch of logits [N, C] with integer class labels, and the gradient of the
// loss with respect to the logits. weight scales both loss and gradient and
// implements the per-exit weights w_n of the paper's joint objective
// (equal weights, i.e. 1, in all paper experiments).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int, weight float32) (loss float64, grad *tensor.Tensor) {
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy got %d labels for batch of %d", len(labels), n))
	}
	probs := Softmax(logits)
	grad = tensor.New(n, c)
	invN := float32(1) / float32(n)
	for i := 0; i < n; i++ {
		lbl := labels[i]
		if lbl < 0 || lbl >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", lbl, c))
		}
		p := probs.Row(i)
		g := grad.Row(i)
		loss += -math.Log(math.Max(float64(p[lbl]), 1e-12))
		for j := range g {
			g[j] = p[j] * invN * weight
		}
		g[lbl] -= invN * weight
	}
	loss = loss / float64(n) * float64(weight)
	return loss, grad
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n := logits.Dim(0)
	correct := 0
	for i := 0; i < n; i++ {
		if logits.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// NormalizedEntropy computes the paper's confidence criterion
// η(x) = −Σᵢ xᵢ·log xᵢ / log|C| for a probability vector x. The result is
// in [0, 1]: values near 0 mean the prediction is confident, values near 1
// mean it is not (§III-D).
func NormalizedEntropy(probs []float32) float64 {
	if len(probs) < 2 {
		return 0
	}
	var h float64
	for _, p := range probs {
		if p > 0 {
			h -= float64(p) * math.Log(float64(p))
		}
	}
	return h / math.Log(float64(len(probs)))
}
