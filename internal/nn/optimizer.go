package nn

import (
	"math"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and then runs each
	// parameter's PostStep hook.
	Step(params []*Param)
}

// Adam implements the Adam optimizer (Kingma & Ba, 2014) with the paper's
// hyper-parameters as defaults: α=0.001, β₁=0.9, β₂=0.999, ε=1e-8 (§IV-A).
type Adam struct {
	LR, Beta1, Beta2, Eps float32

	t     int
	state map[*Param]*adamState
}

type adamState struct {
	m, v *tensor.Tensor
}

var _ Optimizer = (*Adam)(nil)

// NewAdam constructs an Adam optimizer with the paper's hyper-parameters.
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, state: make(map[*Param]*adamState)}
}

// Step applies one Adam update.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for _, p := range params {
		st, ok := a.state[p]
		if !ok {
			st = &adamState{m: tensor.New(p.Value.Shape()...), v: tensor.New(p.Value.Shape()...)}
			a.state[p] = st
		}
		vd, gd := p.Value.Data(), p.Grad.Data()
		md, sd := st.m.Data(), st.v.Data()
		for i := range vd {
			g := gd[i]
			md[i] = a.Beta1*md[i] + (1-a.Beta1)*g
			sd[i] = a.Beta2*sd[i] + (1-a.Beta2)*g*g
			mHat := md[i] / bc1
			vHat := sd[i] / bc2
			vd[i] -= a.LR * mHat / (float32(math.Sqrt(float64(vHat))) + a.Eps)
		}
		if p.PostStep != nil {
			p.PostStep(p)
		}
	}
}

// SGD is plain stochastic gradient descent with optional momentum, provided
// as a baseline optimizer for ablations.
type SGD struct {
	LR       float32
	Momentum float32

	vel map[*Param]*tensor.Tensor
}

var _ Optimizer = (*SGD)(nil)

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param]*tensor.Tensor)}
}

// Step applies one SGD update.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		vd, gd := p.Value.Data(), p.Grad.Data()
		if s.Momentum == 0 {
			for i := range vd {
				vd[i] -= s.LR * gd[i]
			}
		} else {
			v, ok := s.vel[p]
			if !ok {
				v = tensor.New(p.Value.Shape()...)
				s.vel[p] = v
			}
			velD := v.Data()
			for i := range vd {
				velD[i] = s.Momentum*velD[i] + gd[i]
				vd[i] -= s.LR * velD[i]
			}
		}
		if p.PostStep != nil {
			p.PostStep(p)
		}
	}
}
