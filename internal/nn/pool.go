package nn

import (
	"fmt"
	"math"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// MaxPool2D is a max-pooling layer over NCHW inputs. The DDNN paper's ConvP
// block uses a 3×3 pool with stride 2 and padding 1, halving each spatial
// dimension of a power-of-two input.
type MaxPool2D struct {
	Kernel, Stride, Pad int

	argmax   []int32 // flat input index of each output's max, for backward
	inShape  []int
	outShape []int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D constructs a max-pooling layer.
func NewMaxPool2D(kernel, stride, pad int) *MaxPool2D {
	return &MaxPool2D{Kernel: kernel, Stride: stride, Pad: pad}
}

// OutSize returns the spatial output size for an input of size in.
func (p *MaxPool2D) OutSize(in int) int {
	return (in+2*p.Pad-p.Kernel)/p.Stride + 1
}

// Forward computes the max pool for x of shape [N, C, H, W]. Padded
// locations never win the max (they are treated as -inf).
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := p.checkInput(x)
	y := tensor.New(n, c, p.OutSize(h), p.OutSize(w))
	if train {
		p.argmax = make([]int32, y.Size())
		p.inShape = x.Shape()
		p.outShape = y.Shape()
	}
	p.forwardInto(y, x, train)
	return y
}

// ForwardPooled is the inference forward against a tensor pool; the
// caller owns the returned tensor and should Put it back when done.
func (p *MaxPool2D) ForwardPooled(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor {
	n, c, h, w := p.checkInput(x)
	y := pool.GetDirty(n, c, p.OutSize(h), p.OutSize(w))
	p.forwardInto(y, x, false)
	return y
}

// inferInto is the inference-only scan: no argmax bookkeeping, and
// outputs whose 3×3 window lies fully inside the input take an unrolled
// branch-light path. Max is order-independent over the window (NaNs
// never win, exactly as in the clipped scan), so outputs are identical
// to the training path's.
func (p *MaxPool2D) inferInto(y, x *tensor.Tensor) {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := y.Dim(2), y.Dim(3)
	k, st, pad := p.Kernel, p.Stride, p.Pad
	xd, yd := x.Data(), y.Data()
	inPlane, outPlane := h*w, oh*ow
	negInf := float32(math.Inf(-1))

	// Interior output columns: window fully inside [0, w).
	oxLo := (pad + st - 1) / st
	oxHi := (w - k + pad) / st // inclusive
	if oxHi > ow-1 {
		oxHi = ow - 1
	}

	general := func(in, orow []float32, iy0, iy1, ox0, ox1 int) {
		for ox := ox0; ox < ox1; ox++ {
			x0 := ox*st - pad
			ix0, ix1 := x0, x0+k
			if ix0 < 0 {
				ix0 = 0
			}
			if ix1 > w {
				ix1 = w
			}
			best := negInf
			for iy := iy0; iy < iy1; iy++ {
				row := in[iy*w+ix0 : iy*w+ix1]
				for _, v := range row {
					if v > best {
						best = v
					}
				}
			}
			orow[ox] = best
		}
	}

	for plane := 0; plane < n*c; plane++ {
		in := xd[plane*inPlane : (plane+1)*inPlane]
		out := yd[plane*outPlane : (plane+1)*outPlane]
		for oy := 0; oy < oh; oy++ {
			y0 := oy*st - pad
			iy0, iy1 := y0, y0+k
			if iy0 < 0 {
				iy0 = 0
			}
			if iy1 > h {
				iy1 = h
			}
			orow := out[oy*ow : (oy+1)*ow]
			general(in, orow, iy0, iy1, 0, min(oxLo, ow))
			if k == 3 && iy1-iy0 == 3 && oxLo <= oxHi {
				r0 := in[(iy0+0)*w : (iy0+1)*w]
				r1 := in[(iy0+1)*w : (iy0+2)*w]
				r2 := in[(iy0+2)*w : (iy0+3)*w]
				for ox := oxLo; ox <= oxHi; ox++ {
					x0 := ox*st - pad
					m := r0[x0]
					if v := r0[x0+1]; v > m {
						m = v
					}
					if v := r0[x0+2]; v > m {
						m = v
					}
					if v := r1[x0]; v > m {
						m = v
					}
					if v := r1[x0+1]; v > m {
						m = v
					}
					if v := r1[x0+2]; v > m {
						m = v
					}
					if v := r2[x0]; v > m {
						m = v
					}
					if v := r2[x0+1]; v > m {
						m = v
					}
					if v := r2[x0+2]; v > m {
						m = v
					}
					orow[ox] = m
				}
			} else if oxLo <= oxHi {
				general(in, orow, iy0, iy1, oxLo, oxHi+1)
			}
			general(in, orow, iy0, iy1, max(oxHi+1, oxLo), ow)
		}
	}
}

func (p *MaxPool2D) checkInput(x *tensor.Tensor) (n, c, h, w int) {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D input shape %v, want 4-D", x.Shape()))
	}
	return x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
}

// forwardInto scans each output's pooling window with the bounds hoisted
// out of the inner loops: the window's valid row/column ranges are
// clipped once, so the hot loop is branch-free apart from the compare.
// The scan order (window row-major) matches the original per-element
// bounds-checked loop, so the winning index on ties is unchanged.
func (p *MaxPool2D) forwardInto(y, x *tensor.Tensor, train bool) {
	if !train {
		p.inferInto(y, x)
		return
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := y.Dim(2), y.Dim(3)
	xd, yd := x.Data(), y.Data()
	inPlane, outPlane := h*w, oh*ow
	negInf := float32(math.Inf(-1))
	for plane := 0; plane < n*c; plane++ {
		in := xd[plane*inPlane : (plane+1)*inPlane]
		out := yd[plane*outPlane : (plane+1)*outPlane]
		for oy := 0; oy < oh; oy++ {
			y0 := oy*p.Stride - p.Pad
			iy0, iy1 := y0, y0+p.Kernel
			if iy0 < 0 {
				iy0 = 0
			}
			if iy1 > h {
				iy1 = h
			}
			orow := out[oy*ow : (oy+1)*ow]
			for ox := 0; ox < ow; ox++ {
				x0 := ox*p.Stride - p.Pad
				ix0, ix1 := x0, x0+p.Kernel
				if ix0 < 0 {
					ix0 = 0
				}
				if ix1 > w {
					ix1 = w
				}
				best := negInf
				bestIdx := int32(-1)
				for iy := iy0; iy < iy1; iy++ {
					row := in[iy*w+ix0 : iy*w+ix1]
					for i, v := range row {
						if v > best {
							best = v
							bestIdx = int32(iy*w + ix0 + i)
						}
					}
				}
				orow[ox] = best
				if train {
					p.argmax[plane*outPlane+oy*ow+ox] = int32(plane*inPlane) + bestIdx
				}
			}
		}
	}
}

// Backward scatters each output gradient to the input location that won the
// max during the forward pass.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic("nn: MaxPool2D.Backward called before Forward(train=true)")
	}
	dx := tensor.New(p.inShape...)
	dxd, gd := dx.Data(), grad.Data()
	for i, src := range p.argmax {
		dxd[src] += gd[i]
	}
	return dx
}

// Params returns nil: pooling has no learnable parameters.
func (p *MaxPool2D) Params() []*Param { return nil }
