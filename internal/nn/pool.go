package nn

import (
	"fmt"
	"math"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// MaxPool2D is a max-pooling layer over NCHW inputs. The DDNN paper's ConvP
// block uses a 3×3 pool with stride 2 and padding 1, halving each spatial
// dimension of a power-of-two input.
type MaxPool2D struct {
	Kernel, Stride, Pad int

	argmax   []int32 // flat input index of each output's max, for backward
	inShape  []int
	outShape []int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D constructs a max-pooling layer.
func NewMaxPool2D(kernel, stride, pad int) *MaxPool2D {
	return &MaxPool2D{Kernel: kernel, Stride: stride, Pad: pad}
}

// OutSize returns the spatial output size for an input of size in.
func (p *MaxPool2D) OutSize(in int) int {
	return (in+2*p.Pad-p.Kernel)/p.Stride + 1
}

// Forward computes the max pool for x of shape [N, C, H, W]. Padded
// locations never win the max (they are treated as -inf).
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D input shape %v, want 4-D", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := p.OutSize(h), p.OutSize(w)
	y := tensor.New(n, c, oh, ow)
	if train {
		p.argmax = make([]int32, y.Size())
		p.inShape = x.Shape()
		p.outShape = y.Shape()
	}
	xd, yd := x.Data(), y.Data()
	inPlane, outPlane := h*w, oh*ow
	negInf := float32(math.Inf(-1))
	for plane := 0; plane < n*c; plane++ {
		in := xd[plane*inPlane : (plane+1)*inPlane]
		out := yd[plane*outPlane : (plane+1)*outPlane]
		for oy := 0; oy < oh; oy++ {
			y0 := oy*p.Stride - p.Pad
			for ox := 0; ox < ow; ox++ {
				x0 := ox*p.Stride - p.Pad
				best := negInf
				bestIdx := int32(-1)
				for ky := 0; ky < p.Kernel; ky++ {
					iy := y0 + ky
					if iy < 0 || iy >= h {
						continue
					}
					rowOff := iy * w
					for kx := 0; kx < p.Kernel; kx++ {
						ix := x0 + kx
						if ix < 0 || ix >= w {
							continue
						}
						v := in[rowOff+ix]
						if v > best {
							best = v
							bestIdx = int32(rowOff + ix)
						}
					}
				}
				out[oy*ow+ox] = best
				if train {
					p.argmax[plane*outPlane+oy*ow+ox] = int32(plane*inPlane) + bestIdx
				}
			}
		}
	}
	return y
}

// Backward scatters each output gradient to the input location that won the
// max during the forward pass.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic("nn: MaxPool2D.Backward called before Forward(train=true)")
	}
	dx := tensor.New(p.inShape...)
	dxd, gd := dx.Data(), grad.Data()
	for i, src := range p.argmax {
		dxd[src] += gd[i]
	}
	return dx
}

// Params returns nil: pooling has no learnable parameters.
func (p *MaxPool2D) Params() []*Param { return nil }
