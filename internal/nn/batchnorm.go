package nn

import (
	"fmt"
	"math"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// BatchNorm normalizes activations per channel. For 4-D [N, C, H, W] inputs
// statistics are computed per channel over N·H·W elements; for 2-D [N, D]
// inputs per feature over the batch. Running statistics are tracked with
// exponential smoothing for use at inference time, following the standard
// batch-normalization recipe used by the BNN blocks in the paper (Fig. 3).
type BatchNorm struct {
	C     int
	Eps   float32
	Gamma *Param
	Beta  *Param
	// Momentum is the smoothing factor applied to the previous running
	// statistic (0.9 keeps 90% of the old value each batch).
	Momentum float32
	// RunningMean and RunningVar are the inference-time statistics. They
	// are exported for serialization.
	RunningMean *tensor.Tensor
	RunningVar  *tensor.Tensor

	xhat   *tensor.Tensor
	invStd []float32
	shape  []int
}

var _ Layer = (*BatchNorm)(nil)

// NewBatchNorm constructs a batch-normalization layer over c channels with
// γ=1, β=0 and unit running variance.
func NewBatchNorm(name string, c int) *BatchNorm {
	bn := &BatchNorm{
		C:           c,
		Eps:         1e-5,
		Momentum:    0.9,
		Gamma:       NewParam(name+".gamma", c),
		Beta:        NewParam(name+".beta", c),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.New(c),
	}
	bn.Gamma.Value.Fill(1)
	bn.RunningVar.Fill(1)
	return bn
}

// dims splits an input shape into (batch, channels, spatial) sizes.
func (bn *BatchNorm) dims(x *tensor.Tensor) (n, s int) {
	switch x.Dims() {
	case 2:
		if x.Dim(1) != bn.C {
			panic(fmt.Sprintf("nn: BatchNorm %s input %v, want [N %d]", bn.Gamma.Name, x.Shape(), bn.C))
		}
		return x.Dim(0), 1
	case 4:
		if x.Dim(1) != bn.C {
			panic(fmt.Sprintf("nn: BatchNorm %s input %v, want [N %d H W]", bn.Gamma.Name, x.Shape(), bn.C))
		}
		return x.Dim(0), x.Dim(2) * x.Dim(3)
	default:
		panic(fmt.Sprintf("nn: BatchNorm input must be 2-D or 4-D, got %v", x.Shape()))
	}
}

// Forward normalizes x. With train=true batch statistics are used and the
// running statistics updated; otherwise the running statistics are applied.
func (bn *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, s := bn.dims(x)
	c := bn.C
	y := tensor.New(x.Shape()...)
	xd, yd := x.Data(), y.Data()
	g, b := bn.Gamma.Value.Data(), bn.Beta.Value.Data()

	if !train {
		bn.inferInto(yd, xd, n, s)
		return y
	}

	m := float32(n * s)
	bn.xhat = tensor.New(x.Shape()...)
	bn.invStd = make([]float32, c)
	bn.shape = x.Shape()
	xh := bn.xhat.Data()
	rm, rv := bn.RunningMean.Data(), bn.RunningVar.Data()
	for ci := 0; ci < c; ci++ {
		var sum float64
		iterChannel(n, c, s, ci, func(off int) {
			sum += float64(xd[off])
		})
		mean := float32(sum / float64(m))
		var ssq float64
		iterChannel(n, c, s, ci, func(off int) {
			d := xd[off] - mean
			ssq += float64(d) * float64(d)
		})
		variance := float32(ssq / float64(m))
		inv := float32(1 / math.Sqrt(float64(variance)+float64(bn.Eps)))
		bn.invStd[ci] = inv
		iterChannel(n, c, s, ci, func(off int) {
			h := (xd[off] - mean) * inv
			xh[off] = h
			yd[off] = g[ci]*h + b[ci]
		})
		rm[ci] = bn.Momentum*rm[ci] + (1-bn.Momentum)*mean
		rv[ci] = bn.Momentum*rv[ci] + (1-bn.Momentum)*variance
	}
	return y
}

// ForwardPooled is the inference forward against a tensor pool; the
// caller owns the returned tensor and should Put it back when done.
func (bn *BatchNorm) ForwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	n, s := bn.dims(x)
	y := p.GetDirty(x.Shape()...)
	bn.inferInto(y.Data(), x.Data(), n, s)
	return y
}

// inferInto applies the running statistics as a fused per-channel
// multiply-add: y = scale·x + shift with scale = γ/√(var+ε) and
// shift = β − scale·mean, the same arithmetic as the per-element closure
// form it replaces.
func (bn *BatchNorm) inferInto(yd, xd []float32, n, s int) {
	c := bn.C
	g, b := bn.Gamma.Value.Data(), bn.Beta.Value.Data()
	rm, rv := bn.RunningMean.Data(), bn.RunningVar.Data()
	for ci := 0; ci < c; ci++ {
		inv := float32(1 / math.Sqrt(float64(rv[ci])+float64(bn.Eps)))
		scale, shift := g[ci]*inv, b[ci]-g[ci]*inv*rm[ci]
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * s
			seg := xd[base : base+s]
			out := yd[base : base+s]
			for i, v := range seg {
				out[i] = scale*v + shift
			}
		}
	}
}

// Backward implements the standard batch-norm gradient.
func (bn *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if bn.xhat == nil {
		panic("nn: BatchNorm.Backward called before Forward(train=true)")
	}
	var n, s int
	switch len(bn.shape) {
	case 2:
		n, s = bn.shape[0], 1
	default:
		n, s = bn.shape[0], bn.shape[2]*bn.shape[3]
	}
	c := bn.C
	m := float32(n * s)
	dx := tensor.New(bn.shape...)
	gd, dxd, xh := grad.Data(), dx.Data(), bn.xhat.Data()
	g := bn.Gamma.Value.Data()
	dg, db := bn.Gamma.Grad.Data(), bn.Beta.Grad.Data()
	for ci := 0; ci < c; ci++ {
		var sumDy, sumDyXh float64
		iterChannel(n, c, s, ci, func(off int) {
			sumDy += float64(gd[off])
			sumDyXh += float64(gd[off]) * float64(xh[off])
		})
		dg[ci] += float32(sumDyXh)
		db[ci] += float32(sumDy)
		meanDy := float32(sumDy / float64(m))
		meanDyXh := float32(sumDyXh / float64(m))
		k := g[ci] * bn.invStd[ci]
		iterChannel(n, c, s, ci, func(off int) {
			dxd[off] = k * (gd[off] - meanDy - xh[off]*meanDyXh)
		})
	}
	return dx
}

// iterChannel visits every flat offset belonging to channel ci of an
// [n, c, s] layout.
func iterChannel(n, c, s, ci int, fn func(off int)) {
	for ni := 0; ni < n; ni++ {
		base := (ni*c + ci) * s
		for si := 0; si < s; si++ {
			fn(base + si)
		}
	}
}

// Params returns γ and β.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }
