// Package branchy implements the BranchyNet substrate the DDNN builds on
// (Teerapittayanon et al., ICPR 2016): early-exit decision policies based
// on the normalized entropy of an exit's class-probability vector, joint
// multi-exit loss weighting, and threshold search/sweep utilities used to
// produce the paper's Table II and Fig. 7.
package branchy

import (
	"fmt"
	"sort"

	"github.com/ddnn/ddnn-go/internal/nn"
)

// Policy holds one entropy threshold per exit point, ordered from the
// lowest exit (device/local) to the final exit (cloud). The final exit
// always classifies, so its threshold is irrelevant and conventionally 1.
type Policy struct {
	Thresholds []float64
}

// NewPolicy builds a policy from per-exit thresholds.
func NewPolicy(thresholds ...float64) Policy {
	return Policy{Thresholds: thresholds}
}

// ShouldExit reports whether a sample with probability vector probs may
// exit at exit point i: the normalized entropy must not exceed the exit's
// threshold (η ≤ T means confident, §III-D). The last exit always accepts.
func (p Policy) ShouldExit(i int, probs []float32) bool {
	if i >= len(p.Thresholds)-1 {
		return true
	}
	return nn.NormalizedEntropy(probs) <= p.Thresholds[i]
}

// Exits returns the number of exit points.
func (p Policy) Exits() int { return len(p.Thresholds) }

// JointLossWeights returns the per-exit loss weights w_n of the joint
// training objective. The paper uses equal weights for every experiment
// (§III-C, §IV-A).
func JointLossWeights(exits int) []float32 {
	w := make([]float32, exits)
	for i := range w {
		w[i] = 1
	}
	return w
}

// ExitOutcome records, for one validation sample, the confidence at a
// lower exit and the correctness of both that exit and the exit above it.
// It is the raw material for threshold search.
type ExitOutcome struct {
	// Entropy is the normalized entropy of the lower exit's probability
	// vector.
	Entropy float64
	// LocalCorrect reports whether the lower exit classifies the sample
	// correctly.
	LocalCorrect bool
	// UpperCorrect reports whether the exit above classifies the sample
	// correctly when it is forwarded.
	UpperCorrect bool
}

// SweepPoint is one row of the paper's Table II: a threshold, the fraction
// of samples exiting at the lower exit, and the resulting overall accuracy.
type SweepPoint struct {
	Threshold float64
	ExitFrac  float64
	Accuracy  float64
}

// Sweep evaluates the exit policy at each threshold in grid, returning one
// SweepPoint per threshold. A sample exits locally when its entropy does
// not exceed T; otherwise the upper exit classifies it.
func Sweep(outcomes []ExitOutcome, grid []float64) []SweepPoint {
	points := make([]SweepPoint, 0, len(grid))
	for _, t := range grid {
		exited, correct := 0, 0
		for _, o := range outcomes {
			if o.Entropy <= t {
				exited++
				if o.LocalCorrect {
					correct++
				}
			} else if o.UpperCorrect {
				correct++
			}
		}
		n := len(outcomes)
		points = append(points, SweepPoint{
			Threshold: t,
			ExitFrac:  float64(exited) / float64(n),
			Accuracy:  float64(correct) / float64(n),
		})
	}
	return points
}

// SearchThreshold returns the threshold from grid with the best overall
// accuracy, breaking ties toward the threshold that exits more samples
// locally (lower communication, §IV-D). An empty grid is an error.
func SearchThreshold(outcomes []ExitOutcome, grid []float64) (SweepPoint, error) {
	if len(grid) == 0 {
		return SweepPoint{}, fmt.Errorf("branchy: empty threshold grid")
	}
	points := Sweep(outcomes, grid)
	best := points[0]
	for _, p := range points[1:] {
		if p.Accuracy > best.Accuracy ||
			(p.Accuracy == best.Accuracy && p.ExitFrac > best.ExitFrac) {
			best = p
		}
	}
	return best, nil
}

// ThresholdForExitFraction returns the smallest threshold from grid whose
// local-exit fraction is at least frac. Fig. 9 configures T so that ≈75% of
// samples exit locally; this helper performs that calibration. If no
// threshold reaches frac the largest is returned.
func ThresholdForExitFraction(outcomes []ExitOutcome, grid []float64, frac float64) SweepPoint {
	points := Sweep(outcomes, grid)
	sort.Slice(points, func(i, j int) bool { return points[i].Threshold < points[j].Threshold })
	for _, p := range points {
		if p.ExitFrac >= frac {
			return p
		}
	}
	return points[len(points)-1]
}

// Grid returns an evenly spaced threshold grid over [0, 1] with n+1 points.
func Grid(n int) []float64 {
	g := make([]float64, n+1)
	for i := range g {
		g[i] = float64(i) / float64(n)
	}
	return g
}
