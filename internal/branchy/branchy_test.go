package branchy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPolicyShouldExit(t *testing.T) {
	p := NewPolicy(0.5, 1.0)
	confident := []float32{0.98, 0.01, 0.01} // low entropy
	uncertain := []float32{0.34, 0.33, 0.33} // high entropy

	if !p.ShouldExit(0, confident) {
		t.Error("confident sample refused at local exit")
	}
	if p.ShouldExit(0, uncertain) {
		t.Error("uncertain sample exited at local exit")
	}
	// Final exit always accepts, even an uncertain sample.
	if !p.ShouldExit(1, uncertain) {
		t.Error("final exit refused a sample")
	}
	// Out-of-range exit index behaves as final.
	if !p.ShouldExit(5, uncertain) {
		t.Error("beyond-final exit refused a sample")
	}
}

func TestPolicyThresholdZeroExitsNothing(t *testing.T) {
	p := NewPolicy(0, 1)
	// Even a fairly confident vector has entropy > 0.
	if p.ShouldExit(0, []float32{0.9, 0.05, 0.05}) {
		t.Error("T=0 must exit no (non-degenerate) samples")
	}
	// A perfectly one-hot vector has entropy exactly 0 and may exit.
	if !p.ShouldExit(0, []float32{1, 0, 0}) {
		t.Error("one-hot sample should exit even at T=0")
	}
}

func TestJointLossWeightsEqual(t *testing.T) {
	w := JointLossWeights(3)
	if len(w) != 3 {
		t.Fatalf("got %d weights, want 3", len(w))
	}
	for i, v := range w {
		if v != 1 {
			t.Errorf("weight %d = %g, want 1 (paper uses equal weights)", i, v)
		}
	}
}

func mkOutcomes() []ExitOutcome {
	// 10 samples: 4 confident & locally correct, 2 confident but locally
	// wrong (cloud would be right), 4 uncertain (cloud right on 3).
	return []ExitOutcome{
		{0.1, true, true}, {0.1, true, true}, {0.2, true, false}, {0.2, true, true},
		{0.3, false, true}, {0.3, false, true},
		{0.9, false, true}, {0.9, false, true}, {0.9, false, true}, {0.9, false, false},
	}
}

func TestSweepEndpoints(t *testing.T) {
	outcomes := mkOutcomes()
	points := Sweep(outcomes, []float64{0, 1})

	// T=0: nothing exits locally; accuracy = upper accuracy = 8/10.
	if points[0].ExitFrac != 0 {
		t.Errorf("T=0 exit fraction = %g, want 0", points[0].ExitFrac)
	}
	if points[0].Accuracy != 0.8 {
		t.Errorf("T=0 accuracy = %g, want 0.8", points[0].Accuracy)
	}
	// T=1: everything exits locally; accuracy = local accuracy = 4/10.
	if points[1].ExitFrac != 1 {
		t.Errorf("T=1 exit fraction = %g, want 1", points[1].ExitFrac)
	}
	if points[1].Accuracy != 0.4 {
		t.Errorf("T=1 accuracy = %g, want 0.4", points[1].Accuracy)
	}
}

func TestSweepMonotoneExitFraction(t *testing.T) {
	f := func(seed int64) bool {
		outcomes := mkOutcomes()
		grid := Grid(10)
		points := Sweep(outcomes, grid)
		for i := 1; i < len(points); i++ {
			if points[i].ExitFrac < points[i-1].ExitFrac {
				return false
			}
		}
		_ = seed
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSearchThresholdFindsSweetSpot(t *testing.T) {
	// With these outcomes, exiting the four entropy≤0.2 samples locally and
	// sending the rest up scores 3/4·... compute: T=0.2 → local exits 4
	// (3 correct), upper handles 6 (5 correct) = 8/10. T=0.1 → local 2 (2
	// correct), upper 8 correct on {0.2:T,T... } = 2 + (of 8: entries with
	// UpperCorrect: 0.2(false),0.2(true),0.3,0.3,0.9×3) = 2+6 = 8/10.
	// T=0: 8/10 as well. The search must break ties toward more local
	// exits.
	best, err := SearchThreshold(mkOutcomes(), Grid(10))
	if err != nil {
		t.Fatal(err)
	}
	if best.Accuracy < 0.8 {
		t.Errorf("best accuracy = %g, want ≥ 0.8", best.Accuracy)
	}
	// Among equal-accuracy thresholds, prefer the one exiting more locally.
	pts := Sweep(mkOutcomes(), Grid(10))
	for _, p := range pts {
		if p.Accuracy == best.Accuracy && p.ExitFrac > best.ExitFrac {
			t.Errorf("tie broken wrong: chose exit frac %g, available %g", best.ExitFrac, p.ExitFrac)
		}
	}
}

func TestSearchThresholdEmptyGrid(t *testing.T) {
	if _, err := SearchThreshold(mkOutcomes(), nil); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestThresholdForExitFraction(t *testing.T) {
	outcomes := mkOutcomes()
	p := ThresholdForExitFraction(outcomes, Grid(20), 0.55)
	if p.ExitFrac < 0.55 {
		t.Errorf("calibrated exit fraction %g, want ≥ 0.55", p.ExitFrac)
	}
	// Unreachable fraction returns the largest threshold (exit everything).
	p = ThresholdForExitFraction(outcomes, Grid(20), 2)
	if p.ExitFrac != 1 {
		t.Errorf("unreachable fraction: exit frac = %g, want 1", p.ExitFrac)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(10)
	if len(g) != 11 {
		t.Fatalf("Grid(10) has %d points, want 11", len(g))
	}
	if g[0] != 0 || g[10] != 1 {
		t.Errorf("grid endpoints %g..%g, want 0..1", g[0], g[10])
	}
	if math.Abs(g[5]-0.5) > 1e-12 {
		t.Errorf("grid midpoint = %g, want 0.5", g[5])
	}
}
