package chaos

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// newTestVerifier builds a verifier over the two-tier fixture.
func newTestVerifier(t *testing.T) (*Verifier, *Report) {
	t.Helper()
	model, test := twoTier(t)
	rep := newReport(0, time.Second)
	return newVerifier(model, test, rep), rep
}

// goodResult builds a classification that matches the staged reference
// for sample id at the local exit under the full mask.
func goodResult(v *Verifier, id int) *cluster.Result {
	er := v.reference(fullPresence(v.devices), 1)
	probs := append([]float32(nil), er.LocalProbs[id]...)
	return &cluster.Result{
		SampleID:      uint64(id),
		Class:         argmax(probs),
		Exit:          wire.ExitLocal,
		Probs:         probs,
		Entropy:       0.5,
		Present:       fullPresence(v.devices),
		ConfigVersion: 1,
		ModelVersion:  1,
	}
}

func fullPresence(n int) []bool {
	p := make([]bool, n)
	for i := range p {
		p[i] = true
	}
	return p
}

// TestVerifierAcceptsReferenceResult: a bit-identical result produces
// no violations — the harness's green path is actually reachable.
func TestVerifierAcceptsReferenceResult(t *testing.T) {
	v, rep := newTestVerifier(t)
	v.CheckResult("test", goodResult(v, 0), cluster.ShedNone, 0)
	if got := rep.Violations(); len(got) != 0 {
		t.Fatalf("reference result flagged: %v", got)
	}
	if rep.Checked() != 1 {
		t.Fatalf("checked = %d, want 1", rep.Checked())
	}
}

// TestVerifierCatchesTamperedProbs: flipping one mantissa bit in one
// probability must trip the bit-identity invariant. If this test
// fails, every "verified" chaos run was vacuous.
func TestVerifierCatchesTamperedProbs(t *testing.T) {
	v, rep := newTestVerifier(t)
	res := goodResult(v, 1)
	res.Probs[0] += 1e-7
	v.CheckResult("test", res, cluster.ShedNone, 1)
	if !hasViolation(rep, "diverge") {
		t.Fatalf("tampered probs not flagged; violations: %v", rep.Violations())
	}
}

// TestVerifierCatchesMissingConfigVersion: a completed classification
// without a topology config version stamp means the session lost its
// pinned version somewhere along the serving path.
func TestVerifierCatchesMissingConfigVersion(t *testing.T) {
	v, rep := newTestVerifier(t)
	res := goodResult(v, 1)
	res.ConfigVersion = 0
	v.CheckResult("test", res, cluster.ShedNone, 1)
	if !hasViolation(rep, "missing topology config version") {
		t.Fatalf("zero config version not flagged; violations: %v", rep.Violations())
	}
}

// TestVerifierCatchesMissingModelVersion: a completed classification
// without a model version stamp means a hop dropped the session's
// pinned version.
func TestVerifierCatchesMissingModelVersion(t *testing.T) {
	v, rep := newTestVerifier(t)
	res := goodResult(v, 1)
	res.ModelVersion = 0
	v.CheckResult("test", res, cluster.ShedNone, 1)
	if !hasViolation(rep, "missing model version") {
		t.Fatalf("zero model version not flagged; violations: %v", rep.Violations())
	}
}

// TestVerifierCatchesVersionConfusion: an answer stamped with a version
// the verifier never saw is flagged, and genuine answers from a second
// registered version verify against that version's weights — not the
// base model's.
func TestVerifierCatchesVersionConfusion(t *testing.T) {
	v, rep := newTestVerifier(t)
	res := goodResult(v, 0)
	res.ModelVersion = 42
	v.CheckResult("test", res, cluster.ShedNone, 0)
	if !hasViolation(rep, "unknown model version") {
		t.Fatalf("unknown model version not flagged; violations: %v", rep.Violations())
	}

	vcfg := v.model.Cfg
	vcfg.Seed = vcfg.Seed + 7777
	variant := core.MustNewModel(vcfg)
	v.AddModel(2, variant)
	er2 := v.reference(fullPresence(v.devices), 2)
	good := &cluster.Result{
		SampleID:      0,
		Class:         argmax(er2.LocalProbs[0]),
		Exit:          wire.ExitLocal,
		Probs:         append([]float32(nil), er2.LocalProbs[0]...),
		Entropy:       0.5,
		Present:       fullPresence(v.devices),
		ConfigVersion: 1,
		ModelVersion:  2,
	}
	before := len(rep.Violations())
	v.CheckResult("test", good, cluster.ShedNone, 0)
	if got := rep.Violations(); len(got) != before {
		t.Fatalf("version-2 result against version-2 reference flagged: %v", got[before:])
	}
	// The same numbers claimed under version 1 must diverge.
	bad := *good
	bad.ModelVersion = 1
	bad.Probs = append([]float32(nil), good.Probs...)
	v.CheckResult("test", &bad, cluster.ShedNone, 0)
	if !hasViolation(rep, "diverge") {
		t.Fatalf("version-2 probs under a version-1 claim not flagged; violations: %v", rep.Violations())
	}
}

// TestVerifierCatchesWrongArgmax: a class that is not the argmax of
// its own probabilities is flagged even when the probs are genuine.
func TestVerifierCatchesWrongArgmax(t *testing.T) {
	v, rep := newTestVerifier(t)
	res := goodResult(v, 2)
	res.Class = (res.Class + 1) % len(res.Probs)
	v.CheckResult("test", res, cluster.ShedNone, 2)
	if !hasViolation(rep, "argmax") {
		t.Fatalf("wrong argmax not flagged; violations: %v", rep.Violations())
	}
}

// TestVerifierCatchesShedViolation: a cloud exit under a local-only
// shed grant is a contract breach regardless of the numbers.
func TestVerifierCatchesShedViolation(t *testing.T) {
	v, rep := newTestVerifier(t)
	res := goodResult(v, 3)
	v.CheckResult("test", res, cluster.ShedLocalOnly, 3)
	if len(rep.Violations()) != 0 {
		t.Fatalf("local exit under local-only flagged: %v", rep.Violations())
	}
	er := v.reference(fullPresence(v.devices), 1)
	res = goodResult(v, 3)
	res.Exit = wire.ExitCloud
	res.Probs = append([]float32(nil), er.CloudProbs[3]...)
	res.Class = argmax(res.Probs)
	v.CheckResult("test", res, cluster.ShedLocalOnly, 3)
	if !hasViolation(rep, "local-only") {
		t.Fatalf("cloud exit under local-only not flagged; violations: %v", rep.Violations())
	}
}

// TestVerifierChecksMaskedReference: results under a partial mask are
// verified against the masked evaluation, not the full one.
func TestVerifierCatchesMaskConfusion(t *testing.T) {
	v, rep := newTestVerifier(t)
	mask := fullPresence(v.devices)
	mask[1] = false
	masked := v.reference(mask, 1)
	full := v.reference(fullPresence(v.devices), 1)
	// Find a sample whose masked and unmasked local aggregates genuinely
	// differ, so the two claims below are distinguishable.
	id := -1
	for i := range masked.LocalProbs {
		if !probsEqual(full.LocalProbs[i], masked.LocalProbs[i]) {
			id = i
			break
		}
	}
	if id < 0 {
		t.Fatal("masked and unmasked probs coincide for every sample; fixture too degenerate to test masking")
	}
	res := &cluster.Result{
		SampleID:      uint64(id),
		Class:         argmax(masked.LocalProbs[id]),
		Exit:          wire.ExitLocal,
		Probs:         append([]float32(nil), masked.LocalProbs[id]...),
		Entropy:       0.5,
		Present:       mask,
		ConfigVersion: 1,
		ModelVersion:  1,
	}
	v.CheckResult("test", res, cluster.ShedNone, id)
	if len(rep.Violations()) != 0 {
		t.Fatalf("correct masked result flagged: %v", rep.Violations())
	}
	// The same numbers claimed under the full mask must fail.
	res2 := &cluster.Result{
		SampleID:      uint64(id),
		Class:         argmax(masked.LocalProbs[id]),
		Exit:          wire.ExitLocal,
		Probs:         append([]float32(nil), masked.LocalProbs[id]...),
		Entropy:       0.5,
		Present:       fullPresence(v.devices),
		ConfigVersion: 1,
		ModelVersion:  1,
	}
	v.CheckResult("test", res2, cluster.ShedNone, id)
	if !hasViolation(rep, "diverge") {
		t.Fatalf("masked probs under a full-mask claim not flagged; violations: %v", rep.Violations())
	}
}

func probsEqual(a, b []float32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestVerifierCatchesUntypedError: ad-hoc error strings from the
// engine are contract breaches; typed sentinels (wrapped arbitrarily
// deep) are not.
func TestVerifierCatchesUntypedError(t *testing.T) {
	v, rep := newTestVerifier(t)
	v.CheckError("test", cluster.ErrCloudUnavailable)
	v.CheckError("test", errors.Join(errors.New("wrap"), cluster.ErrDeadlineExceeded))
	if len(rep.Violations()) != 0 {
		t.Fatalf("typed errors flagged: %v", rep.Violations())
	}
	v.CheckError("test", errors.New("socket exploded"))
	if !hasViolation(rep, "untyped") {
		t.Fatalf("untyped error not flagged; violations: %v", rep.Violations())
	}
	v.CheckError("test", cluster.ErrClosed)
	if !hasViolation(rep, "engine closed") {
		t.Fatalf("mid-run ErrClosed not flagged; violations: %v", rep.Violations())
	}
}

// TestVerifierCatchesHTTP500: a 500 anywhere is an escaped invariant
// violation; expected-status mismatches are flagged too.
func TestVerifierCatchesHTTP500(t *testing.T) {
	v, rep := newTestVerifier(t)
	v.CheckStatus("test", 503)
	v.CheckStatus("test", 400, 400)
	if len(rep.Violations()) != 0 {
		t.Fatalf("documented statuses flagged: %v", rep.Violations())
	}
	v.CheckStatus("test", 500)
	if !hasViolation(rep, "undocumented HTTP status 500") {
		t.Fatalf("500 not flagged; violations: %v", rep.Violations())
	}
	v.CheckStatus("test", 200, 401)
	if !hasViolation(rep, "want one of") {
		t.Fatalf("expected-status mismatch not flagged; violations: %v", rep.Violations())
	}
}

// TestWatchdogDetectsWedge: the drain watchdog must report a WaitGroup
// that never finishes — the harness's deadlock detector.
func TestWatchdogDetectsWedge(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	if waitTimeout(&wg, 50*time.Millisecond) {
		t.Fatal("watchdog reported a wedged group as done")
	}
	wg.Done()
	if !waitTimeout(&wg, time.Second) {
		t.Fatal("watchdog never saw the group finish")
	}
}

// TestMutateFrameAlwaysChanges: mutations never return the input
// unchanged-by-construction cases (byte flips can no-op only on empty
// frames, which the corpus never contains).
func TestMutateFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	valid := validFrame()
	for i := 0; i < 100; i++ {
		m := mutateFrame(rng, valid)
		if len(m) == 0 {
			t.Fatal("mutation produced an empty frame")
		}
	}
	if got := string(validFrame()); got != string(valid) {
		t.Fatal("mutateFrame corrupted its input")
	}
}

func hasViolation(rep *Report, substr string) bool {
	for _, v := range rep.Violations() {
		if strings.Contains(v, substr) {
			return true
		}
	}
	return false
}
