// Package chaos is a seeded, randomized fault-injection harness over a
// complete replicated DDNN serving topology: device nodes, edge and
// cloud replica tiers, the gateway, and the HTTP front door, all
// in-process over an in-memory transport wrapped with switchable link
// faults.
//
// While seeded traffic drivers push mixed load through both the HTTP
// API and the engine directly, seeded fault actors concurrently kill
// and restart replicas, silently fail devices, partition and degrade
// links, flap the health monitor, and write corrupt wire frames at
// live nodes. A verifier holds the run to the serving system's
// contract the whole time: every completed classification bit-identical
// to the staged core reference under the observed device-presence
// mask, typed errors only, documented HTTP statuses only, and — after
// the faults stop — full recovery, drained admission counters and no
// wedged sessions.
//
// Every run is reproducible from its seed: the same seed replays the
// same fault schedule (modulo goroutine scheduling). Failures print
// the seed; replay it with `ddnn-chaos -seed N` or via the fixed-seed
// regression test.
package chaos

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/api"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/modelio"
	"github.com/ddnn/ddnn-go/internal/transport"
)

// chaosToken authenticates the traffic drivers; a slice of traffic
// deliberately presents a bad token to exercise the 401 path.
const chaosToken = "chaos-token"

// chaosAdminToken authenticates the model-rollout actor against the
// admin plane's separate token class.
const chaosAdminToken = "chaos-admin-token"

// Config sizes and arms one chaos run.
type Config struct {
	// Seed reproduces the run's fault and traffic schedule.
	Seed int64
	// FaultWindow is how long faults and traffic run before the heal,
	// recovery and drain phases. 0 means 2s.
	FaultWindow time.Duration
	// EdgeReplicas and CloudReplicas size the upper tiers; 0 means 2.
	EdgeReplicas int
	// CloudReplicas is the cloud tier's replica count; 0 means 2.
	CloudReplicas int
	// Workers is the number of concurrent traffic drivers; 0 means 4.
	Workers int
	// MaxInFlight is the front door's admission bound; 0 means 8 —
	// deliberately small so chaos traffic exercises shedding and 503s.
	MaxInFlight int
	// DeviceKills arms the actor that kills and restarts devices.
	DeviceKills bool
	// ReplicaKills arms the actor that silently fails and hard-restarts
	// edge and cloud replicas.
	ReplicaKills bool
	// LinkFaults arms the actor that partitions and degrades links.
	LinkFaults bool
	// HealthFlaps arms the actor that flaps device probes and the
	// health monitor itself.
	HealthFlaps bool
	// FrameCorruption arms the actor that writes corrupt wire frames
	// from the fuzz corpus into live listeners.
	FrameCorruption bool
	// DeviceChurn arms the actor that removes and re-admits device
	// slots through the versioned-membership plane — true leave/join
	// cycles that bump the topology config version, unlike DeviceKills'
	// silent failures.
	DeviceChurn bool
	// ModelRollout arms the actor that drives the model lifecycle admin
	// plane under live traffic: registering versioned artifacts
	// (including deliberately corrupt ones), rolling the fleet across
	// versions, and planting canary failures that must trigger automatic
	// full-fleet rollbacks. Every completed classification still has to
	// verify bit-identical against the reference weights of the model
	// version its session pinned.
	ModelRollout bool
	// Logger receives node logs; nil discards them (chaos runs are
	// noisy by design).
	Logger *slog.Logger
}

// DefaultConfig arms every fault actor at the default scale.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		FaultWindow:     2 * time.Second,
		EdgeReplicas:    2,
		CloudReplicas:   2,
		Workers:         4,
		MaxInFlight:     8,
		DeviceKills:     true,
		ReplicaKills:    true,
		LinkFaults:      true,
		HealthFlaps:     true,
		FrameCorruption: true,
		DeviceChurn:     true,
		ModelRollout:    true,
	}
}

func (c Config) withDefaults() Config {
	if c.FaultWindow <= 0 {
		c.FaultWindow = 2 * time.Second
	}
	if c.EdgeReplicas <= 0 {
		c.EdgeReplicas = 2
	}
	if c.CloudReplicas <= 0 {
		c.CloudReplicas = 2
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Harness owns one chaos topology: the replicated in-process cluster
// over the fault transport, the HTTP front door on top of it, the
// verifier and the report.
type Harness struct {
	cfg      Config
	model    *core.Model
	ds       *dataset.Dataset
	ft       *faultTransport
	eng      *cluster.Engine
	srv      *api.Server
	ts       *httptest.Server
	client   *http.Client
	verifier *Verifier
	report   *Report
	corpus   [][]byte

	// faultAddrs are every node address faults may target.
	faultAddrs []string
	// sampleN bounds the dataset rows traffic draws from.
	sampleN int

	// artifacts are the pre-generated versioned model artifacts the
	// rollout actor registers and rolls to; badModel is the wrong-weights
	// copy its tamper hook plants to force canary failures.
	artifacts []modelArtifact
	badModel  *core.Model

	// monMu guards the health monitor handle, which the flapper stops
	// and restarts mid-run.
	monMu sync.Mutex
	mon   *cluster.HealthMonitor
}

// New builds the topology: model.Cfg decides two or three tiers. The
// gateway runs with chaos-tuned timeouts (hundreds of milliseconds, so
// a fault window of seconds spans many failure-detection cycles) and
// micro-batching on, the front door with authentication and a small
// admission bound.
func New(model *core.Model, ds *dataset.Dataset, cfg Config) (*Harness, error) {
	cfg = cfg.withDefaults()
	h := &Harness{
		cfg:     cfg,
		model:   model,
		ds:      ds,
		ft:      newFaultTransport(transport.NewMem()),
		report:  newReport(cfg.Seed, 500*time.Millisecond),
		corpus:  loadCorpus(),
		sampleN: min(ds.Len(), 40),
	}
	h.verifier = newVerifier(model, ds, h.report)

	gcfg := cluster.DefaultGatewayConfig()
	gcfg.DeviceTimeout = 300 * time.Millisecond
	gcfg.EdgeTimeout = 1500 * time.Millisecond
	gcfg.CloudTimeout = 1000 * time.Millisecond
	gcfg.MaxFailures = 2
	ecfg := cluster.EdgeConfig{CloudTimeout: 700 * time.Millisecond, CloudFallback: true}
	eng, err := cluster.NewEngine(model, ds, cluster.EngineConfig{
		Gateway:        gcfg,
		MaxConcurrency: 12,
		Batch:          cluster.BatchConfig{MaxBatch: 4},
		EdgeReplicas:   cfg.EdgeReplicas,
		CloudReplicas:  cfg.CloudReplicas,
		Edge:           &ecfg,
		Logger:         cfg.Logger,
	}, h.ft)
	if err != nil {
		return nil, fmt.Errorf("chaos: building cluster: %w", err)
	}
	h.eng = eng

	for d := 0; d < model.Cfg.Devices; d++ {
		h.faultAddrs = append(h.faultAddrs, fmt.Sprintf("device-%d", d))
	}
	if model.Cfg.UseEdge {
		for i := 0; i < cfg.EdgeReplicas; i++ {
			h.faultAddrs = append(h.faultAddrs, fmt.Sprintf("edge-%d", i))
		}
	}
	for i := 0; i < cfg.CloudReplicas; i++ {
		h.faultAddrs = append(h.faultAddrs, fmt.Sprintf("cloud-%d", i))
	}

	acfg := api.Config{
		Engine:      &engineAdapter{eng: eng},
		Devices:     model.Cfg.Devices,
		Auth:        api.NewAuthenticator(map[string]string{"chaos": chaosToken}),
		MaxInFlight: cfg.MaxInFlight,
		MaxBatch:    32,
		Logger:      cfg.Logger,
	}
	if cfg.ModelRollout {
		acfg.AdminAuth = api.NewAuthenticator(map[string]string{"chaos-admin": chaosAdminToken})
		acfg.ModelAdmin = eng
		if err := h.buildArtifacts(); err != nil {
			eng.Close()
			return nil, fmt.Errorf("chaos: building model artifacts: %w", err)
		}
	}
	srv, err := api.NewServer(acfg)
	if err != nil {
		eng.Close()
		return nil, fmt.Errorf("chaos: building front door: %w", err)
	}
	h.srv = srv
	h.ts = httptest.NewServer(srv.Handler())
	h.client = &http.Client{Timeout: 15 * time.Second}
	return h, nil
}

// modelArtifact is one pre-generated versioned model: the decoded
// weights (for the verifier's reference) and the serialized modelio v2
// artifact the rollout actor uploads.
type modelArtifact struct {
	version uint64
	model   *core.Model
	data    []byte
}

// buildArtifacts pre-generates the rollout actor's model inventory:
// seed-variant models of the base architecture under versions 2..6 —
// within the registry's retention bound — serialized as modelio v2
// artifacts, plus the never-registered wrong-weights model the tamper
// hook plants. Each variant is registered with the verifier up front so
// results stamped with its version verify against the right reference.
func (h *Harness) buildArtifacts() error {
	for v := uint64(2); v <= 6; v++ {
		mcfg := h.model.Cfg
		mcfg.Seed = h.model.Cfg.Seed + 1000*int64(v) + 17
		m := core.MustNewModel(mcfg)
		var buf bytes.Buffer
		if err := modelio.SaveVersion(&buf, m, v); err != nil {
			return err
		}
		h.artifacts = append(h.artifacts, modelArtifact{version: v, model: m, data: buf.Bytes()})
		h.verifier.AddModel(v, m)
	}
	bcfg := h.model.Cfg
	bcfg.Seed = h.model.Cfg.Seed + 999983
	h.badModel = core.MustNewModel(bcfg)
	return nil
}

// engineAdapter satisfies api.Classifier over the in-process cluster
// engine (the public facade's job, re-done here because the harness
// needs the cluster-level engine for its restart and replica hooks).
type engineAdapter struct{ eng *cluster.Engine }

func (a *engineAdapter) ClassifyTenantShed(ctx context.Context, sampleID uint64, tenant string, level ddnn.ShedLevel) (ddnn.Result, error) {
	res, err := a.eng.ClassifyTenantShed(ctx, sampleID, tenant, level)
	if err != nil {
		return ddnn.Result{}, err
	}
	return *res, nil
}

func (a *engineAdapter) ClassifyBatchTenantShed(ctx context.Context, sampleIDs []uint64, tenant string, level ddnn.ShedLevel) ([]ddnn.Result, error) {
	inner, err := a.eng.ClassifyBatchTenantShed(ctx, sampleIDs, tenant, level)
	if err != nil {
		return nil, err
	}
	out := make([]ddnn.Result, len(inner))
	for i, r := range inner {
		out[i] = *r
	}
	return out, nil
}

func (a *engineAdapter) ClassifyUpload(ctx context.Context, views []*ddnn.Tensor, level ddnn.ShedLevel) (ddnn.Result, error) {
	res, err := a.eng.ClassifyUpload(ctx, views, level)
	if err != nil {
		return ddnn.Result{}, err
	}
	return *res, nil
}

func (a *engineAdapter) UpstreamReplicas() (total, healthy int) {
	pool := a.eng.Gateway().Upstream()
	return pool.Size(), pool.Healthy()
}

func (a *engineAdapter) SetInstrumentation(in ddnn.Instrumentation) {
	a.eng.Gateway().SetInstrumentation(in)
}

func (a *engineAdapter) Topology() ddnn.TopologyConfig {
	return a.eng.Topology()
}

// startMonitor (re)starts the health monitor unless one is running.
func (h *Harness) startMonitor(ctx context.Context) {
	h.monMu.Lock()
	defer h.monMu.Unlock()
	if h.mon != nil {
		return
	}
	mon, err := h.eng.StartHealthMonitor(ctx, 50*time.Millisecond, 2)
	if err != nil {
		// A replica can be mid-restart (its listener briefly down); the
		// flapper and the heal phase retry.
		return
	}
	h.mon = mon
}

func (h *Harness) stopMonitor() {
	h.monMu.Lock()
	mon := h.mon
	h.mon = nil
	h.monMu.Unlock()
	if mon != nil {
		mon.Stop()
	}
}

func (h *Harness) monitorRunning() bool {
	h.monMu.Lock()
	defer h.monMu.Unlock()
	return h.mon != nil
}

// Run executes the full protocol — fault window, heal, recovery wait,
// full-fidelity sweep, drain — and returns the report. The error is
// non-nil only for harness-level failures (e.g. the monitor never
// started); invariant violations live on the report.
func (h *Harness) Run(ctx context.Context) (*Report, error) {
	defer h.ts.Close()
	defer h.closeEngine()
	defer h.stopMonitor()

	h.startMonitor(ctx)
	if !h.monitorRunning() {
		return h.report, fmt.Errorf("chaos: health monitor never started")
	}

	base := rand.New(rand.NewSource(h.cfg.Seed))
	faultCtx, stopFaults := context.WithTimeout(ctx, h.cfg.FaultWindow)
	defer stopFaults()

	var faults sync.WaitGroup
	runActor := func(armed bool, actor func(context.Context, *rand.Rand)) {
		// Draw the seed even when disarmed so arming one actor never
		// reshuffles the others' schedules for the same master seed.
		seed := base.Int63()
		if !armed {
			return
		}
		faults.Add(1)
		go func() {
			defer faults.Done()
			actor(faultCtx, rand.New(rand.NewSource(seed)))
		}()
	}
	runActor(h.cfg.DeviceKills, h.deviceKiller)
	runActor(h.cfg.ReplicaKills, h.replicaKiller)
	runActor(h.cfg.LinkFaults, h.linkFaulter)
	runActor(h.cfg.HealthFlaps, h.healthFlapper)
	runActor(h.cfg.FrameCorruption, h.frameCorrupter)
	// The churner's seed draw comes after the original five so arming it
	// never reshuffles pre-existing fixed-seed fault schedules.
	runActor(h.cfg.DeviceChurn, h.deviceChurner)
	// Likewise the model roller draws after the churner.
	runActor(h.cfg.ModelRollout, h.modelRoller)

	var traffic sync.WaitGroup
	for w := 0; w < h.cfg.Workers; w++ {
		seed := base.Int63()
		traffic.Add(1)
		go func() {
			defer traffic.Done()
			h.trafficWorker(faultCtx, rand.New(rand.NewSource(seed)))
		}()
	}

	// The watchdog bound is generous: every actor iteration is bounded
	// by request timeouts well under a second.
	if !waitTimeout(&traffic, h.cfg.FaultWindow+30*time.Second) {
		h.report.violate("traffic drivers wedged after the fault window:\n%s", stackDump())
		return h.report, nil
	}
	if !waitTimeout(&faults, 30*time.Second) {
		h.report.violate("fault actors wedged after the fault window:\n%s", stackDump())
		return h.report, nil
	}

	h.heal()
	h.awaitRecovery(15 * time.Second)
	if h.cfg.ModelRollout {
		h.awaitModelConvergence(10 * time.Second)
	}
	h.sweep(ctx)
	h.awaitQuiescence(5 * time.Second)
	return h.report, nil
}

// awaitModelConvergence waits out any rollout still finishing
// server-side (the actor's canceled request aborts it, but the rollback
// runs to completion in the handler goroutine), then asserts every node
// in the hierarchy converged on the engine's active model version.
func (h *Harness) awaitModelConvergence(deadline time.Duration) {
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) && h.eng.RolloutState() == cluster.RolloutRolling {
		time.Sleep(20 * time.Millisecond)
	}
	if h.eng.RolloutState() == cluster.RolloutRolling {
		h.report.violate("a model rollout never finished after the fault window")
		return
	}
	if err := h.eng.VerifyModelConvergence(); err != nil {
		h.report.violate("fleet diverged on model versions after healing: %v", err)
	}
}

// heal clears every standing fault, restores full device membership and
// makes sure the monitor runs.
func (h *Harness) heal() {
	// Disarm any planted canary tamper so late rollouts cannot corrupt
	// the convergence and sweep phases' expectations.
	h.eng.SetRolloutTamper(nil)
	h.ft.Heal()
	for _, d := range h.eng.Devices() {
		d.SetFailed(false)
	}
	// Re-admit any slot the churner left absent: the sweep phase demands
	// full-fidelity answers, which need the full membership back.
	for slot, present := range h.eng.Topology().Present {
		if present {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, err := h.eng.AdmitDevice(ctx, slot)
		cancel()
		if err != nil {
			h.report.violate("heal: device slot %d could not be re-admitted: %v", slot, err)
		}
	}
	if h.model.Cfg.UseEdge {
		for i := 0; i < h.cfg.EdgeReplicas; i++ {
			if e := h.eng.EdgeReplica(i); e != nil {
				e.SetFailed(false)
			}
		}
	}
	for i := 0; i < h.cfg.CloudReplicas; i++ {
		if c := h.eng.CloudReplica(i); c != nil {
			c.SetFailed(false)
		}
	}
	for i := 0; i < 100 && !h.monitorRunning(); i++ {
		h.startMonitor(context.Background())
		if !h.monitorRunning() {
			time.Sleep(100 * time.Millisecond)
		}
	}
	if !h.monitorRunning() {
		h.report.violate("health monitor could not be restarted after the fault window")
	}
}

// awaitRecovery waits for the failure detectors to re-admit everything:
// no device down, the full upstream pool healthy.
func (h *Harness) awaitRecovery(deadline time.Duration) {
	gw := h.eng.Gateway()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		down := gw.DownDevices()
		total, healthy := gw.Upstream().Size(), gw.Upstream().Healthy()
		if len(down) == 0 && healthy == total {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	total, healthy := gw.Upstream().Size(), gw.Upstream().Healthy()
	h.report.violate("cluster never recovered after the faults healed: devices down %v, upstream %d/%d healthy",
		gw.DownDevices(), healthy, total)
}

// sweep classifies a slice of the dataset at full fidelity after
// recovery: every sample must complete with the full presence mask and
// verify bit-identical against the unmasked reference. Transient
// partial-mask answers (e.g. an edge cloud pool still re-admitting a
// replica via half-open trials) are retried until the deadline.
func (h *Harness) sweep(ctx context.Context) {
	n := min(h.sampleN, 20)
	for id := 0; id < n; id++ {
		deadline := time.Now().Add(10 * time.Second)
		for {
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			res, err := h.eng.ClassifyShed(cctx, uint64(id), cluster.ShedNone)
			cancel()
			if err == nil && fullMask(res.Present) {
				h.verifier.CheckResult("sweep", res, cluster.ShedNone, id)
				break
			}
			if err != nil {
				h.verifier.CheckError("sweep", err)
			}
			if !time.Now().Before(deadline) {
				h.report.violate("sweep sample %d never completed at full fidelity: err=%v", id, err)
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}

func fullMask(present []bool) bool {
	for _, p := range present {
		if !p {
			return false
		}
	}
	return len(present) > 0
}

// awaitQuiescence asserts the front door's admission accounting
// returned to zero once traffic stopped.
func (h *Harness) awaitQuiescence(deadline time.Duration) {
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if h.srv.Metrics().InFlight.Value() == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	h.report.violate("admission in-flight gauge stuck at %d after traffic drained", h.srv.Metrics().InFlight.Value())
}

// closeEngine tears the cluster down under a deadlock watchdog: a
// wedged session turns Close into a hang, which is exactly the class
// of bug the harness exists to catch.
func (h *Harness) closeEngine() {
	done := make(chan struct{})
	go func() {
		h.eng.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		h.report.violate("engine close wedged (leaked session?):\n%s", stackDump())
	}
}

// waitTimeout waits for the group and reports whether it finished
// before the deadline.
func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

// stackDump captures every goroutine for wedge diagnostics.
func stackDump() string {
	buf := make([]byte, 1<<20)
	return string(buf[:runtime.Stack(buf, true)])
}

// trafficWorker drives one seeded stream of mixed operations at the
// topology until the context ends.
func (h *Harness) trafficWorker(ctx context.Context, rng *rand.Rand) {
	for ctx.Err() == nil {
		switch p := rng.Intn(100); {
		case p < 30:
			h.opHTTPClassify(ctx, rng)
		case p < 45:
			h.opHTTPBatch(ctx, rng)
		case p < 55:
			h.opHTTPUpload(ctx, rng)
		case p < 75:
			h.opEngine(ctx, rng)
		case p < 82:
			h.opMalformed(ctx, rng)
		case p < 88:
			h.opBadAuth(ctx, rng)
		case p < 94:
			h.opProbes(ctx)
		default:
			h.opCanceled(ctx, rng)
		}
		sleepCtx(ctx, time.Duration(rng.Intn(5))*time.Millisecond)
	}
}

// do sends one HTTP request with the chaos bearer token.
func (h *Harness) do(ctx context.Context, method, path, contentType string, body []byte, token string) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, h.ts.URL+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	return h.client.Do(req)
}

// httpResult mirrors the front door's classify response body.
type httpResult struct {
	SampleID      uint64    `json:"sample_id"`
	Class         int       `json:"class"`
	Exit          string    `json:"exit"`
	Probs         []float32 `json:"probs"`
	Entropy       float64   `json:"entropy"`
	Present       []bool    `json:"present"`
	ShedLevel     string    `json:"shed_level"`
	ConfigVersion uint64    `json:"config_version"`
	ModelVersion  uint64    `json:"model_version"`
}

type httpBatchResult struct {
	Results   []httpResult `json:"results"`
	ShedLevel string       `json:"shed_level"`
}

// verifyHTTPResult converts one HTTP result into a cluster result and
// runs the full verifier over it. refID is the dataset row; wantID the
// expected echoed sample ID (refID for dataset traffic; uploads check
// the ID space separately).
func (h *Harness) verifyHTTPResult(src string, hr httpResult, refID int) Outcome {
	exit, ok := parseExit(hr.Exit)
	if !ok {
		h.report.violate("%s: unknown exit %q in response", src, hr.Exit)
		return OutcomeFailed
	}
	level, ok := parseShedLevel(hr.ShedLevel)
	if !ok {
		h.report.violate("%s: unknown shed level %q in response", src, hr.ShedLevel)
		return OutcomeFailed
	}
	res := &cluster.Result{
		SampleID:      hr.SampleID,
		Class:         hr.Class,
		Exit:          exit,
		Probs:         hr.Probs,
		Entropy:       hr.Entropy,
		Present:       append([]bool(nil), hr.Present...),
		ConfigVersion: hr.ConfigVersion,
		ModelVersion:  hr.ModelVersion,
	}
	h.verifier.CheckResult(src, res, level, refID)
	if level == cluster.ShedNone && fullMask(hr.Present) {
		return OutcomeOK
	}
	return OutcomeDegraded
}

// classifyOutcomeForStatus buckets a non-200 front-door answer.
func classifyOutcomeForStatus(code int) Outcome {
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return OutcomeRejected
	default:
		return OutcomeFailed
	}
}

func (h *Harness) opHTTPClassify(ctx context.Context, rng *rand.Rand) {
	id := rng.Intn(h.sampleN)
	body, _ := json.Marshal(map[string]uint64{"sample_id": uint64(id)})
	resp, err := h.do(ctx, http.MethodPost, "/v1/classify", "application/json", body, chaosToken)
	if err != nil {
		h.report.Record(OutcomeFailed)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.verifier.CheckStatus("http classify", resp.StatusCode)
		h.report.Record(classifyOutcomeForStatus(resp.StatusCode))
		return
	}
	var hr httpResult
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		h.report.violate("http classify: malformed 200 body: %v", err)
		h.report.Record(OutcomeFailed)
		return
	}
	if hr.SampleID != uint64(id) {
		h.report.violate("http classify: sample %d echoed as %d", id, hr.SampleID)
	}
	h.report.Record(h.verifyHTTPResult("http classify", hr, id))
}

func (h *Harness) opHTTPBatch(ctx context.Context, rng *rand.Rand) {
	ids := make([]uint64, 1+rng.Intn(5))
	for i := range ids {
		ids[i] = uint64(rng.Intn(h.sampleN))
	}
	body, _ := json.Marshal(map[string][]uint64{"sample_ids": ids})
	resp, err := h.do(ctx, http.MethodPost, "/v1/classify/batch", "application/json", body, chaosToken)
	if err != nil {
		h.report.Record(OutcomeFailed)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.verifier.CheckStatus("http batch", resp.StatusCode)
		h.report.Record(classifyOutcomeForStatus(resp.StatusCode))
		return
	}
	var br httpBatchResult
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		h.report.violate("http batch: malformed 200 body: %v", err)
		h.report.Record(OutcomeFailed)
		return
	}
	if len(br.Results) != len(ids) {
		h.report.violate("http batch: %d results for %d sample_ids", len(br.Results), len(ids))
		h.report.Record(OutcomeFailed)
		return
	}
	for i, hr := range br.Results {
		if hr.SampleID != ids[i] {
			h.report.violate("http batch: position %d echoed sample %d, want %d", i, hr.SampleID, ids[i])
			continue
		}
		h.report.Record(h.verifyHTTPResult("http batch", hr, int(ids[i])))
	}
}

func (h *Harness) opHTTPUpload(ctx context.Context, rng *rand.Rand) {
	id := rng.Intn(min(h.sampleN, 8))
	resp, err := h.do(ctx, http.MethodPost, "/v1/classify", "application/octet-stream", h.uploadBody(id), chaosToken)
	if err != nil {
		h.report.Record(OutcomeFailed)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.verifier.CheckStatus("http upload", resp.StatusCode)
		h.report.Record(classifyOutcomeForStatus(resp.StatusCode))
		return
	}
	var hr httpResult
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		h.report.violate("http upload: malformed 200 body: %v", err)
		h.report.Record(OutcomeFailed)
		return
	}
	// Uploaded samples answer under IDs from the reserved upload space,
	// never a dataset index.
	if hr.SampleID < uint64(1)<<63 {
		h.report.violate("http upload: result ID %d is not in the upload ID space", hr.SampleID)
	}
	// The uploaded views are byte-identical to dataset row id (float32
	// survives the JSON and LE round trips exactly), so the result must
	// verify against that row's reference.
	h.report.Record(h.verifyHTTPResult("http upload", hr, id))
}

// uploadBody encodes dataset row id's device views as the raw
// little-endian tensor body the front door accepts.
func (h *Harness) uploadBody(id int) []byte {
	viewVals := dataset.ImageC * dataset.ImageH * dataset.ImageW
	out := make([]byte, h.model.Cfg.Devices*viewVals*4)
	for d := 0; d < h.model.Cfg.Devices; d++ {
		data := h.ds.DeviceView(d, id).Data()
		base := d * viewVals * 4
		for i, f := range data {
			binary.LittleEndian.PutUint32(out[base+i*4:], math.Float32bits(f))
		}
	}
	return out
}

// opEngine drives the engine directly — no front door — at a random
// shed level, covering the in-process API the HTTP layer wraps.
func (h *Harness) opEngine(ctx context.Context, rng *rand.Rand) {
	level := []cluster.ShedLevel{cluster.ShedNone, cluster.ShedPreferEdge, cluster.ShedLocalOnly}[rng.Intn(3)]
	cctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	if rng.Intn(4) == 0 {
		ids := make([]uint64, 1+rng.Intn(4))
		for i := range ids {
			ids[i] = uint64(rng.Intn(h.sampleN))
		}
		results, err := h.eng.ClassifyBatchShed(cctx, ids, level)
		if err != nil {
			h.verifier.CheckError("engine batch", err)
			h.report.Record(OutcomeFailed)
			return
		}
		for i, res := range results {
			if res.SampleID != ids[i] {
				h.report.violate("engine batch: position %d echoed sample %d, want %d", i, res.SampleID, ids[i])
				continue
			}
			h.verifier.CheckResult("engine batch", res, level, int(ids[i]))
			h.report.Record(engineOutcome(res.Present, level))
		}
		return
	}
	id := rng.Intn(h.sampleN)
	res, err := h.eng.ClassifyShed(cctx, uint64(id), level)
	if err != nil {
		h.verifier.CheckError("engine classify", err)
		h.report.Record(OutcomeFailed)
		return
	}
	if res.SampleID != uint64(id) {
		h.report.violate("engine classify: sample %d echoed as %d", id, res.SampleID)
	}
	h.verifier.CheckResult("engine classify", res, level, id)
	h.report.Record(engineOutcome(res.Present, level))
}

func engineOutcome(present []bool, level cluster.ShedLevel) Outcome {
	if level == cluster.ShedNone && fullMask(present) {
		return OutcomeOK
	}
	return OutcomeDegraded
}

// opMalformed sends bodies the front door must reject cleanly — never
// with a 500, never holding an admission slot.
func (h *Harness) opMalformed(ctx context.Context, rng *rand.Rand) {
	switch rng.Intn(4) {
	case 0:
		resp, err := h.do(ctx, http.MethodPost, "/v1/classify", "application/json", []byte("{nonsense"), chaosToken)
		h.expectStatus("malformed json", resp, err, http.StatusBadRequest)
	case 1:
		resp, err := h.do(ctx, http.MethodPost, "/v1/classify", "application/octet-stream", []byte{1, 2, 3}, chaosToken)
		h.expectStatus("short tensor body", resp, err, http.StatusBadRequest)
	case 2:
		resp, err := h.do(ctx, http.MethodGet, "/v1/classify", "", nil, chaosToken)
		h.expectStatus("wrong method", resp, err, http.StatusMethodNotAllowed)
	default:
		body, _ := json.Marshal(map[string][]uint64{"sample_ids": {}})
		resp, err := h.do(ctx, http.MethodPost, "/v1/classify/batch", "application/json", body, chaosToken)
		h.expectStatus("empty batch", resp, err, http.StatusBadRequest)
	}
}

func (h *Harness) opBadAuth(ctx context.Context, rng *rand.Rand) {
	body, _ := json.Marshal(map[string]uint64{"sample_id": uint64(rng.Intn(h.sampleN))})
	resp, err := h.do(ctx, http.MethodPost, "/v1/classify", "application/json", body, "wrong-token")
	h.expectStatus("bad token", resp, err, http.StatusUnauthorized)
}

// expectStatus checks an error-path response and files the outcome;
// client-side transport errors under chaos are failures, not
// violations.
func (h *Harness) expectStatus(src string, resp *http.Response, err error, want int) {
	if err != nil {
		h.report.Record(OutcomeFailed)
		return
	}
	defer resp.Body.Close()
	h.verifier.CheckStatus(src, resp.StatusCode, want)
	h.report.Record(OutcomeOK) // an orderly rejection of bad input is correct behavior
}

// opProbes polls the observability endpoints, which must answer under
// any fault load.
func (h *Harness) opProbes(ctx context.Context) {
	for path, want := range map[string][]int{
		"/healthz": {http.StatusOK},
		"/readyz":  {http.StatusOK, http.StatusServiceUnavailable},
		"/metrics": {http.StatusOK},
	} {
		resp, err := h.do(ctx, http.MethodGet, path, "", nil, chaosToken)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		h.verifier.CheckStatus("probe "+path, resp.StatusCode, want...)
	}
}

// opCanceled races a classification against a context that dies within
// a few milliseconds; whatever happens must be a result or a typed
// cancellation error.
func (h *Harness) opCanceled(ctx context.Context, rng *rand.Rand) {
	cctx, cancel := context.WithTimeout(ctx, time.Duration(1+rng.Intn(20))*time.Millisecond)
	defer cancel()
	id := rng.Intn(h.sampleN)
	res, err := h.eng.ClassifyShed(cctx, uint64(id), cluster.ShedNone)
	if err != nil {
		h.verifier.CheckError("engine canceled", err)
		h.report.Record(OutcomeFailed)
		return
	}
	h.verifier.CheckResult("engine canceled", res, cluster.ShedNone, id)
	h.report.Record(engineOutcome(res.Present, cluster.ShedNone))
}
