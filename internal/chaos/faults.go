package chaos

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// faultTransport wraps a transport with runtime-switchable link faults,
// keyed by the listener address of the node whose links are faulted:
// partitioning an address silently discards every frame written to or
// from that node (the connections stay open, exactly like a network
// partition), and degrading it delays each write. Whole Writes are
// dropped, never split — wire.Encode emits one Write per frame, so a
// partition loses frames but never desynchronizes the stream framing.
type faultTransport struct {
	inner transport.Transport

	mu    sync.Mutex
	cut   map[string]bool
	delay map[string]time.Duration
}

func newFaultTransport(inner transport.Transport) *faultTransport {
	return &faultTransport{
		inner: inner,
		cut:   make(map[string]bool),
		delay: make(map[string]time.Duration),
	}
}

// Partition switches frame blackholing for every link of addr.
func (t *faultTransport) Partition(addr string, on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if on {
		t.cut[addr] = true
	} else {
		delete(t.cut, addr)
	}
}

// Degrade delays every write on addr's links by d; 0 clears the fault.
func (t *faultTransport) Degrade(addr string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d > 0 {
		t.delay[addr] = d
	} else {
		delete(t.delay, addr)
	}
}

// Heal clears every partition and degradation at once.
func (t *faultTransport) Heal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cut = make(map[string]bool)
	t.delay = make(map[string]time.Duration)
}

func (t *faultTransport) state(addr string) (cut bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cut[addr], t.delay[addr]
}

func (t *faultTransport) Listen(addr string) (net.Listener, error) {
	l, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &faultListener{Listener: l, addr: addr, ft: t}, nil
}

func (t *faultTransport) Dial(ctx context.Context, addr string) (net.Conn, error) {
	c, err := t.inner.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: c, addr: addr, ft: t}, nil
}

// faultListener wraps accepted connections so the faulted node's own
// writes are subject to its address's faults too — a partition cuts
// both directions of every link touching the node.
type faultListener struct {
	net.Listener
	addr string
	ft   *faultTransport
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: c, addr: l.addr, ft: l.ft}, nil
}

type faultConn struct {
	net.Conn
	addr string
	ft   *faultTransport
}

func (c *faultConn) Write(b []byte) (int, error) {
	cut, delay := c.ft.state(c.addr)
	if delay > 0 {
		time.Sleep(delay)
	}
	if cut {
		// Swallow the frame: the peer sees silence, not a closed link.
		return len(b), nil
	}
	return c.Conn.Write(b)
}

// sleepCtx sleeps for d or until the context is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// jitter returns a duration uniform in [min, max).
func jitter(rng *rand.Rand, min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	return min + time.Duration(rng.Int63n(int64(max-min)))
}

// deviceKiller flips random devices into silent failure (SetFailed) and
// back — the sensor process wedged, its link still open.
func (h *Harness) deviceKiller(ctx context.Context, rng *rand.Rand) {
	devices := h.eng.Devices()
	for ctx.Err() == nil {
		d := rng.Intn(len(devices))
		devices[d].SetFailed(true)
		h.report.countFault("device-kill")
		sleepCtx(ctx, jitter(rng, 40*time.Millisecond, 250*time.Millisecond))
		devices[d].SetFailed(false)
		sleepCtx(ctx, jitter(rng, 20*time.Millisecond, 150*time.Millisecond))
	}
	// Leave every device healthy for the heal phase.
	for _, d := range devices {
		d.SetFailed(false)
	}
}

// deviceChurner removes and re-admits device slots through the
// versioned-membership plane — true leave/join cycles, not silent
// failures: the slot's link closes, the topology config version bumps,
// sessions in flight complete under the membership snapshot they
// observed, and new sessions fan out to the new membership. At most one
// slot is absent at a time (the actor re-admits before moving on), so
// churn composes with the device killer without starving sessions of
// summaries.
func (h *Harness) deviceChurner(ctx context.Context, rng *rand.Rand) {
	slots := h.model.Cfg.Devices
	for ctx.Err() == nil {
		d := rng.Intn(slots)
		if _, err := h.eng.RemoveDevice(d); err != nil {
			return // gateway closing
		}
		h.report.countFault("device-leave")
		sleepCtx(ctx, jitter(rng, 40*time.Millisecond, 250*time.Millisecond))
		actx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, err := h.eng.AdmitDevice(actx, d)
		cancel()
		if err == nil {
			h.report.countFault("device-join")
		}
		sleepCtx(ctx, jitter(rng, 20*time.Millisecond, 150*time.Millisecond))
	}
	// Leave full membership behind for the heal phase (it re-checks, but
	// an admit here shortens recovery). Occupied slots are left alone —
	// re-admitting one would needlessly cut its live link.
	for d, present := range h.eng.Topology().Present {
		if present {
			continue
		}
		actx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, _ = h.eng.AdmitDevice(actx, d)
		cancel()
	}
}

// replicaKiller alternates between silently failing an upper-tier
// replica for a while and hard-restarting one (listener and links die,
// a fresh node reclaims the address). A single actor owns every replica
// fault so kills never overlap restarts of the same node.
func (h *Harness) replicaKiller(ctx context.Context, rng *rand.Rand) {
	edges := h.cfg.EdgeReplicas
	if !h.model.Cfg.UseEdge {
		edges = 0
	}
	clouds := h.cfg.CloudReplicas
	for ctx.Err() == nil {
		useEdge := edges > 0 && rng.Intn(2) == 0
		switch {
		case rng.Intn(3) != 0: // silent failure, then recover
			if useEdge {
				i := rng.Intn(edges)
				if e := h.eng.EdgeReplica(i); e != nil {
					e.SetFailed(true)
					h.report.countFault("edge-fail")
					sleepCtx(ctx, jitter(rng, 80*time.Millisecond, 350*time.Millisecond))
					// The node may have been restarted meanwhile; unfailing
					// the current holder of the address is always safe.
					if e := h.eng.EdgeReplica(i); e != nil {
						e.SetFailed(false)
					}
				}
			} else {
				i := rng.Intn(clouds)
				if c := h.eng.CloudReplica(i); c != nil {
					c.SetFailed(true)
					h.report.countFault("cloud-fail")
					sleepCtx(ctx, jitter(rng, 80*time.Millisecond, 350*time.Millisecond))
					if c := h.eng.CloudReplica(i); c != nil {
						c.SetFailed(false)
					}
				}
			}
		case useEdge:
			if err := h.eng.RestartEdgeReplica(rng.Intn(edges)); err == nil {
				h.report.countFault("edge-restart")
			}
		default:
			if err := h.eng.RestartCloudReplica(rng.Intn(clouds)); err == nil {
				h.report.countFault("cloud-restart")
			}
		}
		sleepCtx(ctx, jitter(rng, 50*time.Millisecond, 300*time.Millisecond))
	}
}

// linkFaulter partitions and degrades random node addresses.
func (h *Harness) linkFaulter(ctx context.Context, rng *rand.Rand) {
	addrs := h.faultAddrs
	for ctx.Err() == nil {
		addr := addrs[rng.Intn(len(addrs))]
		if rng.Intn(3) == 0 {
			h.ft.Degrade(addr, jitter(rng, 2*time.Millisecond, 25*time.Millisecond))
			h.report.countFault("degrade")
			sleepCtx(ctx, jitter(rng, 50*time.Millisecond, 250*time.Millisecond))
			h.ft.Degrade(addr, 0)
		} else {
			h.ft.Partition(addr, true)
			h.report.countFault("partition")
			sleepCtx(ctx, jitter(rng, 50*time.Millisecond, 300*time.Millisecond))
			h.ft.Partition(addr, false)
		}
		sleepCtx(ctx, jitter(rng, 20*time.Millisecond, 150*time.Millisecond))
	}
	h.ft.Heal()
}

// healthFlapper stops and restarts the health monitor so recovery
// ownership bounces between probe verdicts and the pool's half-open
// trial sessions, and briefly flaps devices so probe verdicts churn.
func (h *Harness) healthFlapper(ctx context.Context, rng *rand.Rand) {
	devices := h.eng.Devices()
	for ctx.Err() == nil {
		switch rng.Intn(3) {
		case 0:
			h.stopMonitor()
			h.report.countFault("monitor-flap")
			sleepCtx(ctx, jitter(rng, 50*time.Millisecond, 250*time.Millisecond))
			h.startMonitor(ctx)
		default:
			d := rng.Intn(len(devices))
			devices[d].SetFailed(true)
			h.report.countFault("probe-flap")
			sleepCtx(ctx, jitter(rng, 10*time.Millisecond, 60*time.Millisecond))
			devices[d].SetFailed(false)
		}
		sleepCtx(ctx, jitter(rng, 50*time.Millisecond, 250*time.Millisecond))
	}
	// The monitor must be running again when the heal phase starts; a
	// replica may be mid-restart, so retry briefly.
	for i := 0; i < 50 && !h.monitorRunning(); i++ {
		h.startMonitor(context.Background())
		if !h.monitorRunning() {
			time.Sleep(100 * time.Millisecond)
		}
	}
}

// frameCorrupter dials nodes directly — never touching the cluster's
// own session links — and writes corrupt, truncated or fuzz-corpus
// frames at them, asserting nothing ever takes a node down for good.
func (h *Harness) frameCorrupter(ctx context.Context, rng *rand.Rand) {
	frames := h.corpus
	addrs := h.faultAddrs
	for ctx.Err() == nil {
		addr := addrs[rng.Intn(len(addrs))]
		dctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
		conn, err := h.ft.Dial(dctx, addr)
		cancel()
		if err == nil {
			frame := frames[rng.Intn(len(frames))]
			if rng.Intn(2) == 0 {
				frame = mutateFrame(rng, frame)
			}
			_ = conn.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
			_, _ = conn.Write(frame)
			conn.Close()
			h.report.countFault("corrupt-frame")
		}
		sleepCtx(ctx, jitter(rng, 10*time.Millisecond, 80*time.Millisecond))
	}
}

// modelRoller drives the model lifecycle admin plane under live
// traffic: registering pre-generated versioned artifacts (and
// deliberately corrupt ones, which must bounce off the integrity
// checks), rolling the fleet across versions, and occasionally planting
// a canary-failing tamper that must trigger an automatic full-fleet
// rollback. Traffic keeps flowing the whole time; the verifier holds
// every answer to the reference weights of the version it pinned.
func (h *Harness) modelRoller(ctx context.Context, rng *rand.Rand) {
	for ctx.Err() == nil {
		switch rng.Intn(10) {
		case 0:
			h.opCorruptRegister(ctx, rng)
		case 1, 2, 3:
			h.opRegisterModel(ctx, rng)
		case 4:
			h.opRolloutUnknown(ctx, rng)
		case 5:
			h.opTamperedRollout(ctx, rng)
		default:
			h.opRollout(ctx, rng)
		}
		sleepCtx(ctx, jitter(rng, 30*time.Millisecond, 200*time.Millisecond))
	}
	// Never leave a planted tamper armed for the heal phase.
	h.eng.SetRolloutTamper(nil)
}

// adminDo sends one admin-plane request and checks the status against
// the expected set. ok is false on a client-side transport error —
// under chaos that is a failed operation, never a violation.
func (h *Harness) adminDo(ctx context.Context, method, path, contentType string, body []byte, src string, expected ...int) (int, []byte, bool) {
	resp, err := h.do(ctx, method, path, contentType, body, chaosAdminToken)
	if err != nil {
		return 0, nil, false
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	h.verifier.CheckStatus(src, resp.StatusCode, expected...)
	return resp.StatusCode, data, true
}

// opRegisterModel uploads a pre-generated artifact: 201 on first
// registration, 409 on every re-upload of the same version.
func (h *Harness) opRegisterModel(ctx context.Context, rng *rand.Rand) {
	art := h.artifacts[rng.Intn(len(h.artifacts))]
	_, _, ok := h.adminDo(ctx, http.MethodPost, "/v1/admin/models", "application/octet-stream", art.data,
		"model register", http.StatusCreated, http.StatusConflict)
	if ok {
		h.report.countFault("model-register")
	}
}

// opCorruptRegister uploads an artifact with its last byte flipped —
// a tensor CRC failure — which must answer 400 without touching the
// registry.
func (h *Harness) opCorruptRegister(ctx context.Context, rng *rand.Rand) {
	art := h.artifacts[rng.Intn(len(h.artifacts))]
	bad := append([]byte(nil), art.data...)
	bad[len(bad)-1] ^= 0xFF
	_, _, ok := h.adminDo(ctx, http.MethodPost, "/v1/admin/models", "application/octet-stream", bad,
		"corrupt model upload", http.StatusBadRequest)
	if ok {
		h.report.countFault("model-corrupt-upload")
	}
}

// opRolloutUnknown asks for a version nobody registered: 404 (or 409
// while a canceled earlier rollout is still finishing server-side).
func (h *Harness) opRolloutUnknown(ctx context.Context, rng *rand.Rand) {
	body, _ := json.Marshal(map[string]uint64{"version": 100 + uint64(rng.Intn(100))})
	_, _, ok := h.adminDo(ctx, http.MethodPost, "/v1/admin/rollout", "application/json", body,
		"unknown rollout", http.StatusNotFound, http.StatusConflict)
	if ok {
		h.report.countFault("model-rollout-unknown")
	}
}

// inventory fetches the admin plane's registered-version listing.
func (h *Harness) inventory(ctx context.Context) (versions []uint64, active uint64, ok bool) {
	code, data, ok := h.adminDo(ctx, http.MethodGet, "/v1/admin/models", "", nil, "admin inventory", http.StatusOK)
	if !ok || code != http.StatusOK {
		return nil, 0, false
	}
	var inv struct {
		Versions      []uint64 `json:"versions"`
		ActiveVersion uint64   `json:"active_version"`
	}
	if err := json.Unmarshal(data, &inv); err != nil {
		h.report.violate("admin inventory: malformed 200 body: %v", err)
		return nil, 0, false
	}
	return inv.Versions, inv.ActiveVersion, true
}

// opRollout rolls the fleet to a random registered version. 200 covers
// both a completed rollout and a no-op onto the active version; under
// concurrent replica restarts and partitions the rollout may also roll
// back (422) or collide with a still-finishing one (409).
func (h *Harness) opRollout(ctx context.Context, rng *rand.Rand) {
	versions, _, ok := h.inventory(ctx)
	if !ok || len(versions) == 0 {
		return
	}
	v := versions[rng.Intn(len(versions))]
	body, _ := json.Marshal(map[string]uint64{"version": v})
	code, _, ok := h.adminDo(ctx, http.MethodPost, "/v1/admin/rollout", "application/json", body,
		"model rollout", http.StatusOK, http.StatusConflict, http.StatusUnprocessableEntity)
	if !ok {
		return
	}
	switch code {
	case http.StatusOK:
		h.report.countFault("model-rollout")
	case http.StatusUnprocessableEntity:
		h.report.countFault("model-rollback")
	}
}

// opTamperedRollout plants a wrong-weights copy on one upstream replica
// and rolls to a non-active version: the canary must catch the tampered
// replica and roll the whole fleet back (422) — the tampered weights
// must never answer traffic, which the verifier proves by holding every
// response to its pinned version's reference.
func (h *Harness) opTamperedRollout(ctx context.Context, rng *rand.Rand) {
	versions, active, ok := h.inventory(ctx)
	if !ok {
		return
	}
	targets := versions[:0:0]
	for _, v := range versions {
		if v != active {
			targets = append(targets, v)
		}
	}
	if len(targets) == 0 {
		return
	}
	tier, replicas := wire.ExitCloud, h.cfg.CloudReplicas
	if h.model.Cfg.UseEdge && rng.Intn(2) == 0 {
		tier, replicas = wire.ExitEdge, h.cfg.EdgeReplicas
	}
	target := rng.Intn(replicas)
	h.eng.SetRolloutTamper(func(t wire.ExitPoint, i int) *core.Model {
		if t == tier && i == target {
			return h.badModel
		}
		return nil
	})
	defer h.eng.SetRolloutTamper(nil)

	v := targets[rng.Intn(len(targets))]
	body, _ := json.Marshal(map[string]uint64{"version": v})
	code, _, ok := h.adminDo(ctx, http.MethodPost, "/v1/admin/rollout", "application/json", body,
		"tampered rollout", http.StatusUnprocessableEntity, http.StatusConflict)
	if ok && code == http.StatusUnprocessableEntity {
		h.report.countFault("model-rollback")
	}
}
