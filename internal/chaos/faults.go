package chaos

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/ddnn/ddnn-go/internal/transport"
)

// faultTransport wraps a transport with runtime-switchable link faults,
// keyed by the listener address of the node whose links are faulted:
// partitioning an address silently discards every frame written to or
// from that node (the connections stay open, exactly like a network
// partition), and degrading it delays each write. Whole Writes are
// dropped, never split — wire.Encode emits one Write per frame, so a
// partition loses frames but never desynchronizes the stream framing.
type faultTransport struct {
	inner transport.Transport

	mu    sync.Mutex
	cut   map[string]bool
	delay map[string]time.Duration
}

func newFaultTransport(inner transport.Transport) *faultTransport {
	return &faultTransport{
		inner: inner,
		cut:   make(map[string]bool),
		delay: make(map[string]time.Duration),
	}
}

// Partition switches frame blackholing for every link of addr.
func (t *faultTransport) Partition(addr string, on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if on {
		t.cut[addr] = true
	} else {
		delete(t.cut, addr)
	}
}

// Degrade delays every write on addr's links by d; 0 clears the fault.
func (t *faultTransport) Degrade(addr string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d > 0 {
		t.delay[addr] = d
	} else {
		delete(t.delay, addr)
	}
}

// Heal clears every partition and degradation at once.
func (t *faultTransport) Heal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cut = make(map[string]bool)
	t.delay = make(map[string]time.Duration)
}

func (t *faultTransport) state(addr string) (cut bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cut[addr], t.delay[addr]
}

func (t *faultTransport) Listen(addr string) (net.Listener, error) {
	l, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &faultListener{Listener: l, addr: addr, ft: t}, nil
}

func (t *faultTransport) Dial(ctx context.Context, addr string) (net.Conn, error) {
	c, err := t.inner.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: c, addr: addr, ft: t}, nil
}

// faultListener wraps accepted connections so the faulted node's own
// writes are subject to its address's faults too — a partition cuts
// both directions of every link touching the node.
type faultListener struct {
	net.Listener
	addr string
	ft   *faultTransport
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: c, addr: l.addr, ft: l.ft}, nil
}

type faultConn struct {
	net.Conn
	addr string
	ft   *faultTransport
}

func (c *faultConn) Write(b []byte) (int, error) {
	cut, delay := c.ft.state(c.addr)
	if delay > 0 {
		time.Sleep(delay)
	}
	if cut {
		// Swallow the frame: the peer sees silence, not a closed link.
		return len(b), nil
	}
	return c.Conn.Write(b)
}

// sleepCtx sleeps for d or until the context is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// jitter returns a duration uniform in [min, max).
func jitter(rng *rand.Rand, min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	return min + time.Duration(rng.Int63n(int64(max-min)))
}

// deviceKiller flips random devices into silent failure (SetFailed) and
// back — the sensor process wedged, its link still open.
func (h *Harness) deviceKiller(ctx context.Context, rng *rand.Rand) {
	devices := h.eng.Devices()
	for ctx.Err() == nil {
		d := rng.Intn(len(devices))
		devices[d].SetFailed(true)
		h.report.countFault("device-kill")
		sleepCtx(ctx, jitter(rng, 40*time.Millisecond, 250*time.Millisecond))
		devices[d].SetFailed(false)
		sleepCtx(ctx, jitter(rng, 20*time.Millisecond, 150*time.Millisecond))
	}
	// Leave every device healthy for the heal phase.
	for _, d := range devices {
		d.SetFailed(false)
	}
}

// deviceChurner removes and re-admits device slots through the
// versioned-membership plane — true leave/join cycles, not silent
// failures: the slot's link closes, the topology config version bumps,
// sessions in flight complete under the membership snapshot they
// observed, and new sessions fan out to the new membership. At most one
// slot is absent at a time (the actor re-admits before moving on), so
// churn composes with the device killer without starving sessions of
// summaries.
func (h *Harness) deviceChurner(ctx context.Context, rng *rand.Rand) {
	slots := h.model.Cfg.Devices
	for ctx.Err() == nil {
		d := rng.Intn(slots)
		if _, err := h.eng.RemoveDevice(d); err != nil {
			return // gateway closing
		}
		h.report.countFault("device-leave")
		sleepCtx(ctx, jitter(rng, 40*time.Millisecond, 250*time.Millisecond))
		actx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, err := h.eng.AdmitDevice(actx, d)
		cancel()
		if err == nil {
			h.report.countFault("device-join")
		}
		sleepCtx(ctx, jitter(rng, 20*time.Millisecond, 150*time.Millisecond))
	}
	// Leave full membership behind for the heal phase (it re-checks, but
	// an admit here shortens recovery). Occupied slots are left alone —
	// re-admitting one would needlessly cut its live link.
	for d, present := range h.eng.Topology().Present {
		if present {
			continue
		}
		actx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, _ = h.eng.AdmitDevice(actx, d)
		cancel()
	}
}

// replicaKiller alternates between silently failing an upper-tier
// replica for a while and hard-restarting one (listener and links die,
// a fresh node reclaims the address). A single actor owns every replica
// fault so kills never overlap restarts of the same node.
func (h *Harness) replicaKiller(ctx context.Context, rng *rand.Rand) {
	edges := h.cfg.EdgeReplicas
	if !h.model.Cfg.UseEdge {
		edges = 0
	}
	clouds := h.cfg.CloudReplicas
	for ctx.Err() == nil {
		useEdge := edges > 0 && rng.Intn(2) == 0
		switch {
		case rng.Intn(3) != 0: // silent failure, then recover
			if useEdge {
				i := rng.Intn(edges)
				if e := h.eng.EdgeReplica(i); e != nil {
					e.SetFailed(true)
					h.report.countFault("edge-fail")
					sleepCtx(ctx, jitter(rng, 80*time.Millisecond, 350*time.Millisecond))
					// The node may have been restarted meanwhile; unfailing
					// the current holder of the address is always safe.
					if e := h.eng.EdgeReplica(i); e != nil {
						e.SetFailed(false)
					}
				}
			} else {
				i := rng.Intn(clouds)
				if c := h.eng.CloudReplica(i); c != nil {
					c.SetFailed(true)
					h.report.countFault("cloud-fail")
					sleepCtx(ctx, jitter(rng, 80*time.Millisecond, 350*time.Millisecond))
					if c := h.eng.CloudReplica(i); c != nil {
						c.SetFailed(false)
					}
				}
			}
		case useEdge:
			if err := h.eng.RestartEdgeReplica(rng.Intn(edges)); err == nil {
				h.report.countFault("edge-restart")
			}
		default:
			if err := h.eng.RestartCloudReplica(rng.Intn(clouds)); err == nil {
				h.report.countFault("cloud-restart")
			}
		}
		sleepCtx(ctx, jitter(rng, 50*time.Millisecond, 300*time.Millisecond))
	}
}

// linkFaulter partitions and degrades random node addresses.
func (h *Harness) linkFaulter(ctx context.Context, rng *rand.Rand) {
	addrs := h.faultAddrs
	for ctx.Err() == nil {
		addr := addrs[rng.Intn(len(addrs))]
		if rng.Intn(3) == 0 {
			h.ft.Degrade(addr, jitter(rng, 2*time.Millisecond, 25*time.Millisecond))
			h.report.countFault("degrade")
			sleepCtx(ctx, jitter(rng, 50*time.Millisecond, 250*time.Millisecond))
			h.ft.Degrade(addr, 0)
		} else {
			h.ft.Partition(addr, true)
			h.report.countFault("partition")
			sleepCtx(ctx, jitter(rng, 50*time.Millisecond, 300*time.Millisecond))
			h.ft.Partition(addr, false)
		}
		sleepCtx(ctx, jitter(rng, 20*time.Millisecond, 150*time.Millisecond))
	}
	h.ft.Heal()
}

// healthFlapper stops and restarts the health monitor so recovery
// ownership bounces between probe verdicts and the pool's half-open
// trial sessions, and briefly flaps devices so probe verdicts churn.
func (h *Harness) healthFlapper(ctx context.Context, rng *rand.Rand) {
	devices := h.eng.Devices()
	for ctx.Err() == nil {
		switch rng.Intn(3) {
		case 0:
			h.stopMonitor()
			h.report.countFault("monitor-flap")
			sleepCtx(ctx, jitter(rng, 50*time.Millisecond, 250*time.Millisecond))
			h.startMonitor(ctx)
		default:
			d := rng.Intn(len(devices))
			devices[d].SetFailed(true)
			h.report.countFault("probe-flap")
			sleepCtx(ctx, jitter(rng, 10*time.Millisecond, 60*time.Millisecond))
			devices[d].SetFailed(false)
		}
		sleepCtx(ctx, jitter(rng, 50*time.Millisecond, 250*time.Millisecond))
	}
	// The monitor must be running again when the heal phase starts; a
	// replica may be mid-restart, so retry briefly.
	for i := 0; i < 50 && !h.monitorRunning(); i++ {
		h.startMonitor(context.Background())
		if !h.monitorRunning() {
			time.Sleep(100 * time.Millisecond)
		}
	}
}

// frameCorrupter dials nodes directly — never touching the cluster's
// own session links — and writes corrupt, truncated or fuzz-corpus
// frames at them, asserting nothing ever takes a node down for good.
func (h *Harness) frameCorrupter(ctx context.Context, rng *rand.Rand) {
	frames := h.corpus
	addrs := h.faultAddrs
	for ctx.Err() == nil {
		addr := addrs[rng.Intn(len(addrs))]
		dctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
		conn, err := h.ft.Dial(dctx, addr)
		cancel()
		if err == nil {
			frame := frames[rng.Intn(len(frames))]
			if rng.Intn(2) == 0 {
				frame = mutateFrame(rng, frame)
			}
			_ = conn.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
			_, _ = conn.Write(frame)
			conn.Close()
			h.report.countFault("corrupt-frame")
		}
		sleepCtx(ctx, jitter(rng, 10*time.Millisecond, 80*time.Millisecond))
	}
}
