package chaos

import (
	"errors"
	"strconv"
	"strings"
	"sync"

	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// Verifier checks every observation the traffic drivers make against
// the harness's correctness invariants:
//
//   - every completed classification is bit-identical to the staged
//     core reference (core.Model.Evaluate) under the observed
//     device-presence mask, at the observed exit;
//   - the class is the argmax of the returned probabilities and the
//     exit obeys the granted shed level;
//   - engine errors are typed sentinels, never ad-hoc strings;
//   - HTTP responses stay inside the documented status set — a 500 is
//     an escaped invariant violation by definition.
//
// Violations accumulate on the run's Report. All methods are safe for
// concurrent use.
type Verifier struct {
	model   *core.Model
	ds      *dataset.Dataset
	devices int
	report  *Report

	mu     sync.Mutex
	cache  map[string]*core.EvalResult
	models map[uint64]*core.Model
}

// maskCacheLimit bounds the reference cache; the fault actors keep only
// a couple of devices dead at once and the rollout actor only a handful
// of versions, so the observed (mask, version) set is tiny, and a
// runaway would recompute rather than grow without bound.
const maskCacheLimit = 256

func newVerifier(model *core.Model, ds *dataset.Dataset, report *Report) *Verifier {
	return &Verifier{
		model:   model,
		ds:      ds,
		devices: model.Cfg.Devices,
		report:  report,
		cache:   make(map[string]*core.EvalResult),
		models:  map[uint64]*core.Model{1: model},
	}
}

// AddModel registers the weights behind a model version, so results
// stamped with that version verify against the right reference. The
// base model is pre-registered as version 1.
func (v *Verifier) AddModel(version uint64, m *core.Model) {
	v.mu.Lock()
	v.models[version] = m
	v.mu.Unlock()
}

// reference returns the staged evaluation of the whole dataset under
// the device-presence mask by the given model version, cached per
// (mask, version). A nil return means the version is unknown to the
// verifier — itself a violation the caller reports.
func (v *Verifier) reference(present []bool, version uint64) *core.EvalResult {
	key := maskKey(present) + ":" + strconv.FormatUint(version, 10)
	v.mu.Lock()
	if er, ok := v.cache[key]; ok {
		v.mu.Unlock()
		return er
	}
	m := v.models[version]
	v.mu.Unlock()
	if m == nil {
		return nil
	}
	// Evaluate outside the lock — it is the expensive part — and let a
	// concurrent duplicate win the race benignly.
	mask := append([]bool(nil), present...)
	er := m.Evaluate(v.ds, mask, 32)
	v.mu.Lock()
	if len(v.cache) < maskCacheLimit {
		v.cache[key] = er
	}
	v.mu.Unlock()
	return er
}

func maskKey(present []bool) string {
	var b strings.Builder
	for _, p := range present {
		if p {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// CheckResult verifies one completed classification. refID is the
// dataset row the sample's views came from — the sample ID itself for
// dataset traffic, the staged row for raw uploads (whose result IDs
// live in the upload space).
func (v *Verifier) CheckResult(src string, res *cluster.Result, level cluster.ShedLevel, refID int) {
	defer v.report.countChecked()
	if refID < 0 || refID >= v.ds.Len() {
		v.report.violate("%s: reference id %d out of range [0,%d)", src, refID, v.ds.Len())
		return
	}
	if len(res.Present) != v.devices {
		v.report.violate("%s sample %d: presence mask has %d entries, want %d", src, refID, len(res.Present), v.devices)
		return
	}
	anyPresent := false
	for _, p := range res.Present {
		anyPresent = anyPresent || p
	}
	if !anyPresent {
		v.report.violate("%s sample %d: completed with an empty presence mask", src, refID)
		return
	}
	// Every session pins the topology config version it started under;
	// versions start at 1, so a zero means the stamp was dropped somewhere
	// between the gateway and this observation.
	if res.ConfigVersion == 0 {
		v.report.violate("%s sample %d: missing topology config version", src, refID)
	}
	// Likewise every session pins the model version it ran under; a zero
	// means a hop dropped the stamp.
	if res.ModelVersion == 0 {
		v.report.violate("%s sample %d: missing model version", src, refID)
		return
	}
	if len(res.Probs) != dataset.NumClasses {
		v.report.violate("%s sample %d: %d probabilities, want %d", src, refID, len(res.Probs), dataset.NumClasses)
		return
	}
	if got := argmax(res.Probs); res.Class != got {
		v.report.violate("%s sample %d: class %d is not the argmax %d of its probabilities", src, refID, res.Class, got)
	}
	if res.Entropy < 0 || res.Entropy > 1.0001 {
		v.report.violate("%s sample %d: normalized entropy %v outside [0,1]", src, refID, res.Entropy)
	}
	v.checkShedExit(src, res, level, refID)
	er := v.reference(res.Present, res.ModelVersion)
	if er == nil {
		v.report.violate("%s sample %d: answered under unknown model version %d", src, refID, res.ModelVersion)
		return
	}
	var want []float32
	switch res.Exit {
	case wire.ExitLocal:
		want = er.LocalProbs[refID]
	case wire.ExitEdge:
		if er.EdgeProbs == nil {
			v.report.violate("%s sample %d: edge exit from a model without an edge tier", src, refID)
			return
		}
		want = er.EdgeProbs[refID]
	case wire.ExitCloud:
		want = er.CloudProbs[refID]
	default:
		v.report.violate("%s sample %d: unknown exit %v", src, refID, res.Exit)
		return
	}
	for i := range want {
		if res.Probs[i] != want[i] {
			v.report.violate("%s sample %d: %v-exit probs diverge from the staged reference under mask %s version %d: got %v, want %v",
				src, refID, res.Exit, maskKey(res.Present), res.ModelVersion, res.Probs, want)
			return
		}
	}
}

// checkShedExit asserts the exit honors the granted shed level.
func (v *Verifier) checkShedExit(src string, res *cluster.Result, level cluster.ShedLevel, refID int) {
	switch level {
	case cluster.ShedLocalOnly:
		if res.Exit != wire.ExitLocal {
			v.report.violate("%s sample %d: %v exit under a local-only shed level", src, refID, res.Exit)
		}
	case cluster.ShedPreferEdge:
		if res.Exit == wire.ExitCloud {
			v.report.violate("%s sample %d: cloud exit under a prefer-edge shed level", src, refID)
		}
		if !v.model.Cfg.UseEdge && res.Exit != wire.ExitLocal {
			v.report.violate("%s sample %d: %v exit under prefer-edge on a two-tier model (degenerates to local-only)", src, refID, res.Exit)
		}
	}
}

// allowedErrors is the full set of sentinels a live engine may surface
// while chaos runs. ErrClosed is deliberately absent: the harness only
// closes the engine after traffic drains, so a closed-engine error
// mid-run means a session escaped the drain accounting. So is
// ErrUploadUnsupported — the harness always serves an in-process
// cluster.
var allowedErrors = []error{
	cluster.ErrCanceled,
	cluster.ErrDeadlineExceeded,
	cluster.ErrCloudUnavailable,
	cluster.ErrEdgeUnavailable,
	cluster.ErrNoHealthyReplica,
	cluster.ErrNoSummaries,
	cluster.ErrModelVersionUnknown,
}

// CheckError verifies a failed engine call surfaced a typed sentinel.
func (v *Verifier) CheckError(src string, err error) {
	for _, sentinel := range allowedErrors {
		if errors.Is(err, sentinel) {
			return
		}
	}
	v.report.violate("%s: untyped engine error: %v", src, err)
}

// allowedStatuses is every HTTP status the front door documents. 500
// means a panic or an unmapped engine error escaped — always a bug.
var allowedStatuses = map[int]bool{
	200: true, 201: true, 400: true, 401: true, 404: true,
	405: true, 409: true, 413: true, 422: true, 429: true,
	499: true, 501: true, 502: true, 503: true, 504: true,
}

// CheckStatus verifies an HTTP status. With expected codes given the
// status must be one of them; otherwise it must be in the documented
// set.
func (v *Verifier) CheckStatus(src string, code int, expected ...int) {
	if len(expected) > 0 {
		for _, want := range expected {
			if code == want {
				return
			}
		}
		v.report.violate("%s: HTTP %d, want one of %v", src, code, expected)
		return
	}
	if !allowedStatuses[code] {
		v.report.violate("%s: undocumented HTTP status %d", src, code)
	}
}

func argmax(row []float32) int {
	best := 0
	for i := 1; i < len(row); i++ {
		if row[i] > row[best] {
			best = i
		}
	}
	return best
}

// parseExit maps a wire exit name from an HTTP response back to its
// ExitPoint; ok is false for unknown names.
func parseExit(s string) (wire.ExitPoint, bool) {
	switch s {
	case wire.ExitLocal.String():
		return wire.ExitLocal, true
	case wire.ExitEdge.String():
		return wire.ExitEdge, true
	case wire.ExitCloud.String():
		return wire.ExitCloud, true
	}
	return 0, false
}

// parseShedLevel maps a shed-level name from an HTTP response back to
// its ShedLevel.
func parseShedLevel(s string) (cluster.ShedLevel, bool) {
	for _, l := range []cluster.ShedLevel{cluster.ShedNone, cluster.ShedPreferEdge, cluster.ShedLocalOnly} {
		if l.String() == s {
			return l, true
		}
	}
	return 0, false
}
