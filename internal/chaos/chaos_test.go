package chaos

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
)

var (
	twoTierOnce   sync.Once
	twoTierModel  *core.Model
	twoTierTest   *dataset.Dataset
	threeTierOnce sync.Once
	threeTierMod  *core.Model
	threeTierTest *dataset.Dataset
)

func trainFixture(useEdge bool) (*core.Model, *dataset.Dataset) {
	dcfg := dataset.DefaultConfig()
	dcfg.Train, dcfg.Test = 120, 40
	train, test := dataset.MustGenerate(dcfg)
	cfg := core.DefaultConfig()
	cfg.UseEdge = useEdge
	cfg.CloudFilters = 8
	m := core.MustNewModel(cfg)
	tc := core.DefaultTrainConfig()
	tc.Epochs = 3
	if _, err := m.Train(train, tc); err != nil {
		panic(err)
	}
	return m, test
}

func twoTier(t *testing.T) (*core.Model, *dataset.Dataset) {
	t.Helper()
	twoTierOnce.Do(func() { twoTierModel, twoTierTest = trainFixture(false) })
	return twoTierModel, twoTierTest
}

func threeTier(t *testing.T) (*core.Model, *dataset.Dataset) {
	t.Helper()
	threeTierOnce.Do(func() { threeTierMod, threeTierTest = trainFixture(true) })
	return threeTierMod, threeTierTest
}

// faultWindow scales the chaos window down under -short so the -race
// CI run stays inside its budget while still spanning many
// failure-detection cycles.
func faultWindow() time.Duration {
	if testing.Short() {
		return 1200 * time.Millisecond
	}
	return 3 * time.Second
}

// runSeed executes one full chaos run and fails the test with the
// reproducing seed on any invariant violation.
func runSeed(t *testing.T, model *core.Model, ds *dataset.Dataset, seed int64) *Report {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.FaultWindow = faultWindow()
	h, err := New(model, ds, cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	rep, err := h.Run(context.Background())
	if err != nil {
		t.Fatalf("seed %d: %v\n%s", seed, err, rep)
	}
	if v := rep.Violations(); len(v) > 0 {
		t.Fatalf("seed %d: %d invariant violations (replay: go test ./internal/chaos -run TestChaos -v, or ddnn-chaos -seed %d)\n%s",
			seed, len(v), seed, rep)
	}
	if rep.Checked() == 0 {
		t.Fatalf("seed %d: verifier checked no classifications — traffic never flowed\n%s", seed, rep)
	}
	if rep.Faults() == 0 {
		t.Fatalf("seed %d: no faults were injected\n%s", seed, rep)
	}
	t.Logf("seed %d: %d classifications verified, %d faults across %d kinds", seed, rep.Checked(), rep.Faults(), rep.FaultKinds())
	return rep
}

// TestChaosSeededThreeTier runs the full fault mix — device kills,
// replica kills and restarts, partitions, degraded links, health-probe
// flaps, corrupt frames — over the three-tier replicated topology with
// two fixed seeds.
func TestChaosSeededThreeTier(t *testing.T) {
	model, test := threeTier(t)
	for _, seed := range []int64{1, 2} {
		runSeed(t, model, test, seed)
	}
}

// TestChaosSeededTwoTier covers the edge-less hierarchy, where the
// gateway escalates straight to the cloud pool.
func TestChaosSeededTwoTier(t *testing.T) {
	model, test := twoTier(t)
	runSeed(t, model, test, 3)
}

// TestChaosSeededMembershipChurn pushes the versioned-membership plane
// specifically: devices leave and rejoin through RemoveDevice/AdmitDevice
// cycles while the rest of the fault mix runs, and every completed
// classification must still verify bit-identical under the presence mask
// and config version its session pinned.
func TestChaosSeededMembershipChurn(t *testing.T) {
	model, test := threeTier(t)
	rep := runSeed(t, model, test, 5)
	if rep.FaultCount("device-leave") == 0 {
		t.Fatalf("seed 5 injected no membership churn; faults: %d kinds", rep.FaultKinds())
	}
}

// TestChaosSeededModelRollout pushes the model lifecycle plane
// specifically: the rollout actor registers versioned artifacts
// (including corrupt uploads that must bounce), rolls the fleet across
// versions and plants canary-failing tampers while the full fault mix
// runs. Every completed classification must verify bit-identical
// against the weights of the model version its session pinned, and the
// fleet must converge on one version after healing.
func TestChaosSeededModelRollout(t *testing.T) {
	model, test := threeTier(t)
	rep := runSeed(t, model, test, 8)
	if rep.FaultCount("model-register") == 0 {
		t.Fatalf("seed 8 registered no model artifacts; faults: %d kinds", rep.FaultKinds())
	}
	if rep.FaultCount("model-rollout")+rep.FaultCount("model-rollback") == 0 {
		t.Fatalf("seed 8 completed no rollouts or rollbacks; faults: %d kinds", rep.FaultKinds())
	}
}

// TestChaosRandomSeed explores a fresh schedule every run; the seed is
// logged so any failure is replayable bit-for-bit.
func TestChaosRandomSeed(t *testing.T) {
	seed := time.Now().UnixNano()
	t.Logf("random chaos seed %d (replay: ddnn-chaos -seed %d, or hardcode it in runSeed)", seed, seed)
	model, test := twoTier(t)
	runSeed(t, model, test, seed)
}

// TestReportCurve pins the availability bucketing arithmetic.
func TestReportCurve(t *testing.T) {
	r := newReport(7, time.Hour) // one bucket
	r.Record(OutcomeOK)
	r.Record(OutcomeOK)
	r.Record(OutcomeDegraded)
	r.Record(OutcomeRejected)
	r.mu.Lock()
	c := r.buckets[0]
	r.mu.Unlock()
	if c.OK != 2 || c.Degraded != 1 || c.Rejected != 1 || c.Failed != 0 {
		t.Fatalf("bucket = %+v", c)
	}
	if got := c.available(); got != 0.75 {
		t.Fatalf("availability = %v, want 0.75", got)
	}
}

// TestCorpusLoads asserts the corrupter always has frames: the wire
// fuzz corpus when testdata is reachable, the builtin set regardless.
func TestCorpusLoads(t *testing.T) {
	frames := loadCorpus()
	if len(frames) < len(builtinCorpus()) {
		t.Fatalf("corpus has %d frames, want at least the %d builtin ones", len(frames), len(builtinCorpus()))
	}
	if len(frames) == len(builtinCorpus()) {
		t.Log("wire fuzz corpus not found; running on the builtin frames only")
	}
}
