package chaos

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Outcome classifies one observed request for the availability curve.
type Outcome int

const (
	// OutcomeOK is a full-fidelity answer: every device present, no
	// shedding.
	OutcomeOK Outcome = iota
	// OutcomeDegraded is a correct answer at reduced fidelity — devices
	// missing from the presence mask or a shed exit pipeline.
	OutcomeDegraded
	// OutcomeRejected is an orderly refusal (429/503 admission or rate
	// rejection).
	OutcomeRejected
	// OutcomeFailed is a typed serving failure (tier unreachable,
	// deadline, canceled) or a client-side transport error.
	OutcomeFailed
)

// counts is one availability bucket.
type counts struct {
	OK, Degraded, Rejected, Failed int
}

func (c counts) total() int { return c.OK + c.Degraded + c.Rejected + c.Failed }

// available is the fraction of requests that got an answer (full or
// degraded) out of everything attempted in the bucket.
func (c counts) available() float64 {
	t := c.total()
	if t == 0 {
		return 1
	}
	return float64(c.OK+c.Degraded) / float64(t)
}

// Report accumulates the run's availability curve, injected-fault
// census and invariant violations. All methods are safe for concurrent
// use.
type Report struct {
	// Seed reproduces the run: ddnn-chaos -seed N.
	Seed int64

	start  time.Time
	bucket time.Duration

	mu         sync.Mutex
	buckets    []counts
	faults     map[string]int
	violations []string
	checked    int
}

// maxViolations bounds how many violation strings a run stores; one is
// enough to fail it, and a systemic bug would otherwise flood memory.
const maxViolations = 64

func newReport(seed int64, bucket time.Duration) *Report {
	return &Report{
		Seed:   seed,
		start:  time.Now(),
		bucket: bucket,
		faults: make(map[string]int),
	}
}

// Record files one request outcome into the current time bucket.
func (r *Report) Record(o Outcome) {
	i := int(time.Since(r.start) / r.bucket)
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.buckets) <= i {
		r.buckets = append(r.buckets, counts{})
	}
	switch o {
	case OutcomeOK:
		r.buckets[i].OK++
	case OutcomeDegraded:
		r.buckets[i].Degraded++
	case OutcomeRejected:
		r.buckets[i].Rejected++
	default:
		r.buckets[i].Failed++
	}
}

// countFault tallies one injected fault by kind.
func (r *Report) countFault(kind string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faults[kind]++
}

// countChecked tallies one verifier-checked classification.
func (r *Report) countChecked() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checked++
}

// violate files one invariant violation.
func (r *Report) violate(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.violations) < maxViolations {
		r.violations = append(r.violations, fmt.Sprintf(format, args...))
	}
}

// Violations returns the invariant violations observed so far.
func (r *Report) Violations() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.violations...)
}

// Checked returns how many completed classifications the verifier
// compared against the staged core reference.
func (r *Report) Checked() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.checked
}

// Faults returns how many faults of any kind were injected.
func (r *Report) Faults() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.faults {
		n += c
	}
	return n
}

// FaultKinds returns how many distinct fault kinds fired.
func (r *Report) FaultKinds() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.faults)
}

// FaultCount returns how many faults of one kind were injected.
func (r *Report) FaultCount(kind string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.faults[kind]
}

// jsonBucket is one availability bucket in the JSON report.
type jsonBucket struct {
	// T is the bucket's start offset in seconds from the run start.
	T         float64 `json:"t"`
	OK        int     `json:"ok"`
	Degraded  int     `json:"degraded"`
	Rejected  int     `json:"rejected"`
	Failed    int     `json:"failed"`
	Available float64 `json:"available"`
}

// jsonReport is the machine-readable run summary `ddnn-chaos -soak`
// emits: the per-bucket availability curve plus the fault census and
// verdict.
type jsonReport struct {
	Seed       int64          `json:"seed"`
	BucketMs   int64          `json:"bucket_ms"`
	Buckets    []jsonBucket   `json:"buckets"`
	Total      jsonBucket     `json:"total"`
	Faults     map[string]int `json:"faults"`
	Checked    int            `json:"checked"`
	Violations []string       `json:"violations"`
}

// JSON renders the report as one machine-readable document: the
// availability curve bucket by bucket, total counts, injected faults by
// kind, the verified-classification count and any invariant violations.
func (r *Report) JSON() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := jsonReport{
		Seed:       r.Seed,
		BucketMs:   r.bucket.Milliseconds(),
		Buckets:    make([]jsonBucket, 0, len(r.buckets)),
		Faults:     make(map[string]int, len(r.faults)),
		Checked:    r.checked,
		Violations: append([]string{}, r.violations...),
	}
	var total counts
	for i, c := range r.buckets {
		total.OK += c.OK
		total.Degraded += c.Degraded
		total.Rejected += c.Rejected
		total.Failed += c.Failed
		out.Buckets = append(out.Buckets, jsonBucket{
			T:         (time.Duration(i) * r.bucket).Seconds(),
			OK:        c.OK,
			Degraded:  c.Degraded,
			Rejected:  c.Rejected,
			Failed:    c.Failed,
			Available: c.available(),
		})
	}
	out.Total = jsonBucket{
		OK:        total.OK,
		Degraded:  total.Degraded,
		Rejected:  total.Rejected,
		Failed:    total.Failed,
		Available: total.available(),
	}
	for k, v := range r.faults {
		out.Faults[k] = v
	}
	return json.MarshalIndent(out, "", "  ")
}

// String renders the availability curve and run summary.
func (r *Report) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "chaos run seed=%d (replay: ddnn-chaos -seed %d)\n", r.Seed, r.Seed)
	var total counts
	for i, c := range r.buckets {
		total.OK += c.OK
		total.Degraded += c.Degraded
		total.Rejected += c.Rejected
		total.Failed += c.Failed
		fmt.Fprintf(&b, "  t=%5.1fs ok=%-4d degraded=%-4d rejected=%-4d failed=%-4d avail=%5.1f%%\n",
			(time.Duration(i) * r.bucket).Seconds(), c.OK, c.Degraded, c.Rejected, c.Failed, 100*c.available())
	}
	fmt.Fprintf(&b, "  total ok=%d degraded=%d rejected=%d failed=%d avail=%.1f%% (answered %d of %d attempts)\n",
		total.OK, total.Degraded, total.Rejected, total.Failed, 100*total.available(), total.OK+total.Degraded, total.total())
	kinds := make([]string, 0, len(r.faults))
	for k := range r.faults {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(&b, "  faults:")
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s=%d", k, r.faults[k])
	}
	fmt.Fprintf(&b, "\n  verified %d classifications bit-identical to the staged reference\n", r.checked)
	if len(r.violations) == 0 {
		fmt.Fprintf(&b, "  invariant violations: none\n")
	} else {
		fmt.Fprintf(&b, "  INVARIANT VIOLATIONS (%d):\n", len(r.violations))
		for _, v := range r.violations {
			fmt.Fprintf(&b, "    - %s\n", v)
		}
	}
	return b.String()
}
