package chaos

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/ddnn/ddnn-go/internal/wire"
)

// fuzzCorpusDir is where the wire package's fuzz findings live,
// relative to this package's directory (the working directory under
// `go test`). The chaos harness replays them against live nodes.
const fuzzCorpusDir = "../wire/testdata/fuzz/FuzzDecode"

// loadCorpus returns the attack frames the corrupter injects: the wire
// package's fuzz corpus when its testdata is reachable, plus a built-in
// set of handcrafted corruptions so the harness never runs unarmed
// (e.g. inside a compiled binary with no testdata nearby).
func loadCorpus() [][]byte {
	frames := builtinCorpus()
	entries, err := os.ReadDir(fuzzCorpusDir)
	if err != nil {
		return frames
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(fuzzCorpusDir, e.Name()))
		if err != nil {
			continue
		}
		if b, ok := parseFuzzFile(raw); ok && len(b) > 0 {
			frames = append(frames, b)
		}
	}
	return frames
}

// parseFuzzFile extracts the []byte argument from a "go test fuzz v1"
// corpus file.
func parseFuzzFile(raw []byte) ([]byte, bool) {
	lines := strings.Split(string(raw), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "go test fuzz v1") {
		return nil, false
	}
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "[]byte(") || !strings.HasSuffix(line, ")") {
			continue
		}
		quoted := strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")")
		s, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, false
		}
		return []byte(s), true
	}
	return nil, false
}

// builtinCorpus covers the classic frame corruptions: garbage where the
// magic goes, a frame cut mid-payload, a lone zero byte, and a valid
// heartbeat to seed mutations from.
func builtinCorpus() [][]byte {
	valid := validFrame()
	truncated := valid[:len(valid)/2]
	return [][]byte{
		bytes.Repeat([]byte{0xff}, 64),
		truncated,
		{0x00},
		valid,
	}
}

// validFrame encodes one well-formed heartbeat frame.
func validFrame() []byte {
	var buf bytes.Buffer
	if _, err := wire.Encode(&buf, &wire.Heartbeat{NodeID: "chaos", Seq: 1}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// mutateFrame returns a corrupted copy of frame: random byte flips
// (which hit magic, type, length and payload bytes alike), a truncation
// or trailing junk.
func mutateFrame(rng *rand.Rand, frame []byte) []byte {
	out := append([]byte(nil), frame...)
	switch rng.Intn(3) {
	case 0:
		for i, n := 0, 1+rng.Intn(4); i < n && len(out) > 0; i++ {
			out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
		}
	case 1:
		if len(out) > 1 {
			out = out[:1+rng.Intn(len(out)-1)]
		}
	default:
		junk := make([]byte, 1+rng.Intn(32))
		rng.Read(junk)
		out = append(out, junk...)
	}
	return out
}
