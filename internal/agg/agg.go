// Package agg implements the DDNN aggregation schemes of §III-B: max
// pooling (MP), average pooling (AP) and concatenation (CC) over the
// outputs of multiple end devices, with full gradient routing so the
// aggregators can participate in joint training, and presence masks so the
// system keeps working when devices fail (§IV-G).
package agg

import (
	"fmt"
	"math"

	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// Scheme identifies an aggregation method.
type Scheme int

// Aggregation schemes from §III-B of the paper.
const (
	MP Scheme = iota + 1 // max pooling
	AP                   // average pooling
	CC                   // concatenation
)

// String returns the paper's two-letter code for the scheme.
func (s Scheme) String() string {
	switch s {
	case MP:
		return "MP"
	case AP:
		return "AP"
	case CC:
		return "CC"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme converts a two-letter code to a Scheme.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "MP", "mp":
		return MP, nil
	case "AP", "ap":
		return AP, nil
	case "CC", "cc":
		return CC, nil
	default:
		return 0, fmt.Errorf("agg: unknown aggregation scheme %q", s)
	}
}

// Schemes lists all aggregation schemes.
func Schemes() []Scheme { return []Scheme{MP, AP, CC} }

// Aggregator combines per-device tensors of identical shape into a single
// tensor for the next stage of a DDNN. mask[i] reports whether device i is
// present; a nil mask means all devices are present. Backward returns one
// gradient per device (zero tensors for absent devices).
type Aggregator interface {
	Forward(inputs []*tensor.Tensor, mask []bool, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) []*tensor.Tensor
	Params() []*nn.Param
}

// PooledAggregator is implemented by aggregators whose inference forward
// can draw the output from a tensor.Pool; the caller owns the returned
// tensor and should Put it back once consumed.
type PooledAggregator interface {
	ForwardPooled(inputs []*tensor.Tensor, mask []bool, p *tensor.Pool) *tensor.Tensor
}

// ForwardPooled runs a's pooled inference forward when it has one,
// falling back to a plain inference Forward otherwise.
func ForwardPooled(a Aggregator, inputs []*tensor.Tensor, mask []bool, p *tensor.Pool) *tensor.Tensor {
	if pa, ok := a.(PooledAggregator); ok {
		return pa.ForwardPooled(inputs, mask, p)
	}
	return a.Forward(inputs, mask, false)
}

func checkInputs(inputs []*tensor.Tensor, mask []bool) {
	if len(inputs) == 0 {
		panic("agg: no inputs")
	}
	if mask != nil && len(mask) != len(inputs) {
		panic(fmt.Sprintf("agg: mask length %d for %d inputs", len(mask), len(inputs)))
	}
	for i := 1; i < len(inputs); i++ {
		if !inputs[i].SameShape(inputs[0]) {
			panic(fmt.Sprintf("agg: input %d shape %v differs from %v", i, inputs[i].Shape(), inputs[0].Shape()))
		}
	}
}

func present(mask []bool, i int) bool { return mask == nil || mask[i] }

func presentCount(mask []bool, n int) int {
	if mask == nil {
		return n
	}
	c := 0
	for _, m := range mask {
		if m {
			c++
		}
	}
	return c
}

// Max implements MP: the elementwise maximum over present devices. The
// backward pass routes each gradient element to the single device that won
// the max, which is why (per §IV-C) MP-MP trains fewer devices per step
// than MP-CC.
type Max struct {
	n      int
	shape  []int
	winner []int32 // device index per element, -1 when no device present
}

var _ Aggregator = (*Max)(nil)

// NewMax constructs an MP aggregator.
func NewMax() *Max { return &Max{} }

// Forward computes the elementwise max over present inputs.
func (a *Max) Forward(inputs []*tensor.Tensor, mask []bool, train bool) *tensor.Tensor {
	checkInputs(inputs, mask)
	out := tensor.New(inputs[0].Shape()...)
	size := out.Size()
	winner := make([]int32, size)
	for i := range winner {
		winner[i] = -1
	}
	od := out.Data()
	for i := range od {
		od[i] = float32(math.Inf(-1))
	}
	for d, in := range inputs {
		if !present(mask, d) {
			continue
		}
		id := in.Data()
		for i, v := range id {
			if v > od[i] {
				od[i] = v
				winner[i] = int32(d)
			}
		}
	}
	// With every device absent, fall back to zeros rather than -inf.
	for i := range od {
		if winner[i] < 0 {
			od[i] = 0
		}
	}
	if train {
		a.n = len(inputs)
		a.shape = inputs[0].Shape()
		a.winner = winner
	}
	return out
}

// ForwardPooled is the inference forward against a tensor pool. It skips
// the winner bookkeeping (only backward needs it) but reproduces
// Forward's values exactly: elements no present device raised above -inf
// fall back to zero.
func (a *Max) ForwardPooled(inputs []*tensor.Tensor, mask []bool, p *tensor.Pool) *tensor.Tensor {
	checkInputs(inputs, mask)
	out := p.GetDirty(inputs[0].Shape()...)
	od := out.Data()
	negInf := float32(math.Inf(-1))
	for i := range od {
		od[i] = negInf
	}
	for d, in := range inputs {
		if !present(mask, d) {
			continue
		}
		id := in.Data()
		for i, v := range id {
			if v > od[i] {
				od[i] = v
			}
		}
	}
	for i := range od {
		if od[i] == negInf {
			od[i] = 0
		}
	}
	return out
}

// Backward routes each gradient element to the winning device.
func (a *Max) Backward(grad *tensor.Tensor) []*tensor.Tensor {
	if a.winner == nil {
		panic("agg: Max.Backward called before Forward(train=true)")
	}
	grads := make([]*tensor.Tensor, a.n)
	for d := range grads {
		grads[d] = tensor.New(a.shape...)
	}
	gd := grad.Data()
	for i, w := range a.winner {
		if w >= 0 {
			grads[w].Data()[i] += gd[i]
		}
	}
	return grads
}

// Params returns nil: MP has no learnable parameters.
func (a *Max) Params() []*nn.Param { return nil }

// Avg implements AP: the elementwise mean over present devices. Averaging
// can damp noise but, as §IV-C observes, it also dilutes strong responses
// when the object is absent from some views.
type Avg struct {
	n     int
	shape []int
	mask  []bool
	count int
}

var _ Aggregator = (*Avg)(nil)

// NewAvg constructs an AP aggregator.
func NewAvg() *Avg { return &Avg{} }

// Forward computes the elementwise mean over present inputs.
func (a *Avg) Forward(inputs []*tensor.Tensor, mask []bool, train bool) *tensor.Tensor {
	checkInputs(inputs, mask)
	out := tensor.New(inputs[0].Shape()...)
	k := presentCount(mask, len(inputs))
	if k == 0 {
		return out
	}
	od := out.Data()
	for d, in := range inputs {
		if !present(mask, d) {
			continue
		}
		id := in.Data()
		for i, v := range id {
			od[i] += v
		}
	}
	out.Scale(1 / float32(k))
	if train {
		a.n = len(inputs)
		a.shape = inputs[0].Shape()
		a.mask = mask
		a.count = k
	}
	return out
}

// ForwardPooled is the inference forward against a tensor pool.
func (a *Avg) ForwardPooled(inputs []*tensor.Tensor, mask []bool, p *tensor.Pool) *tensor.Tensor {
	checkInputs(inputs, mask)
	out := p.Get(inputs[0].Shape()...)
	k := presentCount(mask, len(inputs))
	if k == 0 {
		return out
	}
	od := out.Data()
	for d, in := range inputs {
		if !present(mask, d) {
			continue
		}
		id := in.Data()
		for i, v := range id {
			od[i] += v
		}
	}
	out.Scale(1 / float32(k))
	return out
}

// Backward distributes grad/k to every present device.
func (a *Avg) Backward(grad *tensor.Tensor) []*tensor.Tensor {
	if a.shape == nil {
		panic("agg: Avg.Backward called before Forward(train=true)")
	}
	grads := make([]*tensor.Tensor, a.n)
	for d := range grads {
		grads[d] = tensor.New(a.shape...)
		if present(a.mask, d) && a.count > 0 {
			grads[d].CopyFrom(grad)
			grads[d].Scale(1 / float32(a.count))
		}
	}
	return grads
}

// Params returns nil: AP has no learnable parameters.
func (a *Avg) Params() []*nn.Param { return nil }
