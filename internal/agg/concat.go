package agg

import (
	"fmt"
	"math/rand"

	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// ConcatVec implements CC for exit vectors (§III-B): the per-device
// [N, C] vectors are concatenated to [N, n·C] and an additional linear
// layer maps the result back to C dimensions, exactly as the paper
// specifies ("we add an additional linear layer").
type ConcatVec struct {
	n, c   int
	linear *nn.Linear
	mask   []bool
}

var _ Aggregator = (*ConcatVec)(nil)

// NewConcatVec constructs a CC aggregator for n devices emitting C-wide
// vectors.
func NewConcatVec(rng *rand.Rand, name string, n, c int) *ConcatVec {
	return &ConcatVec{
		n:      n,
		c:      c,
		linear: nn.NewLinear(rng, name+".proj", n*c, c, true),
	}
}

// Forward concatenates present inputs (absent devices contribute zeros) and
// applies the projection.
func (a *ConcatVec) Forward(inputs []*tensor.Tensor, mask []bool, train bool) *tensor.Tensor {
	checkInputs(inputs, mask)
	if len(inputs) != a.n {
		panic(fmt.Sprintf("agg: ConcatVec built for %d devices, got %d", a.n, len(inputs)))
	}
	batch := inputs[0].Dim(0)
	cat := tensor.New(batch, a.n*a.c)
	for d, in := range inputs {
		if !present(mask, d) {
			continue
		}
		for b := 0; b < batch; b++ {
			copy(cat.Row(b)[d*a.c:(d+1)*a.c], in.Row(b))
		}
	}
	if train {
		a.mask = mask
	}
	return a.linear.Forward(cat, train)
}

// ForwardPooled is the inference forward against a tensor pool: the
// concatenation buffer is borrowed and returned, and the projection
// output comes from the pool.
func (a *ConcatVec) ForwardPooled(inputs []*tensor.Tensor, mask []bool, p *tensor.Pool) *tensor.Tensor {
	checkInputs(inputs, mask)
	if len(inputs) != a.n {
		panic(fmt.Sprintf("agg: ConcatVec built for %d devices, got %d", a.n, len(inputs)))
	}
	batch := inputs[0].Dim(0)
	cat := p.Get(batch, a.n*a.c)
	for d, in := range inputs {
		if !present(mask, d) {
			continue
		}
		for b := 0; b < batch; b++ {
			copy(cat.Row(b)[d*a.c:(d+1)*a.c], in.Row(b))
		}
	}
	out := a.linear.ForwardPooled(cat, p)
	p.Put(cat)
	return out
}

// Backward propagates through the projection and splits the gradient back
// into per-device slices.
func (a *ConcatVec) Backward(grad *tensor.Tensor) []*tensor.Tensor {
	dcat := a.linear.Backward(grad)
	batch := dcat.Dim(0)
	grads := make([]*tensor.Tensor, a.n)
	for d := range grads {
		grads[d] = tensor.New(batch, a.c)
		if !present(a.mask, d) {
			continue
		}
		for b := 0; b < batch; b++ {
			copy(grads[d].Row(b), dcat.Row(b)[d*a.c:(d+1)*a.c])
		}
	}
	return grads
}

// Params returns the projection parameters.
func (a *ConcatVec) Params() []*nn.Param { return a.linear.Params() }

// ConcatFeat implements CC for feature maps: per-device [N, F, H, W] maps
// are concatenated along the channel axis to [N, n·F, H, W]. The NN layers
// above the aggregator (the cloud convolutions) consume the widened tensor,
// so no projection is needed here.
type ConcatFeat struct {
	n     int
	shape []int // per-device shape
	mask  []bool
}

var _ Aggregator = (*ConcatFeat)(nil)

// NewConcatFeat constructs a channel-concatenating CC aggregator for n
// devices.
func NewConcatFeat(n int) *ConcatFeat { return &ConcatFeat{n: n} }

// OutChannels returns the channel count of the aggregated tensor for
// per-device channel count f.
func (a *ConcatFeat) OutChannels(f int) int { return a.n * f }

// Forward concatenates along the channel axis; absent devices contribute
// zero channels.
func (a *ConcatFeat) Forward(inputs []*tensor.Tensor, mask []bool, train bool) *tensor.Tensor {
	checkInputs(inputs, mask)
	if len(inputs) != a.n {
		panic(fmt.Sprintf("agg: ConcatFeat built for %d devices, got %d", a.n, len(inputs)))
	}
	in0 := inputs[0]
	if in0.Dims() != 4 {
		panic(fmt.Sprintf("agg: ConcatFeat input shape %v, want 4-D", in0.Shape()))
	}
	batch, f, h, w := in0.Dim(0), in0.Dim(1), in0.Dim(2), in0.Dim(3)
	out := tensor.New(batch, a.n*f, h, w)
	plane := f * h * w
	od := out.Data()
	for d, in := range inputs {
		if !present(mask, d) {
			continue
		}
		id := in.Data()
		for b := 0; b < batch; b++ {
			dst := od[(b*a.n+d)*plane : (b*a.n+d+1)*plane]
			copy(dst, id[b*plane:(b+1)*plane])
		}
	}
	if train {
		a.shape = in0.Shape()
		a.mask = mask
	}
	return out
}

// ForwardPooled is the inference forward against a tensor pool.
func (a *ConcatFeat) ForwardPooled(inputs []*tensor.Tensor, mask []bool, p *tensor.Pool) *tensor.Tensor {
	checkInputs(inputs, mask)
	if len(inputs) != a.n {
		panic(fmt.Sprintf("agg: ConcatFeat built for %d devices, got %d", a.n, len(inputs)))
	}
	in0 := inputs[0]
	if in0.Dims() != 4 {
		panic(fmt.Sprintf("agg: ConcatFeat input shape %v, want 4-D", in0.Shape()))
	}
	batch, f, h, w := in0.Dim(0), in0.Dim(1), in0.Dim(2), in0.Dim(3)
	// Zero-filled Get: absent devices must contribute zero channels.
	out := p.Get(batch, a.n*f, h, w)
	plane := f * h * w
	od := out.Data()
	for d, in := range inputs {
		if !present(mask, d) {
			continue
		}
		id := in.Data()
		for b := 0; b < batch; b++ {
			dst := od[(b*a.n+d)*plane : (b*a.n+d+1)*plane]
			copy(dst, id[b*plane:(b+1)*plane])
		}
	}
	return out
}

// Backward splits the channel-concatenated gradient back per device.
func (a *ConcatFeat) Backward(grad *tensor.Tensor) []*tensor.Tensor {
	if a.shape == nil {
		panic("agg: ConcatFeat.Backward called before Forward(train=true)")
	}
	batch, f, h, w := a.shape[0], a.shape[1], a.shape[2], a.shape[3]
	plane := f * h * w
	gd := grad.Data()
	grads := make([]*tensor.Tensor, a.n)
	for d := range grads {
		grads[d] = tensor.New(a.shape...)
		if !present(a.mask, d) {
			continue
		}
		dd := grads[d].Data()
		for b := 0; b < batch; b++ {
			copy(dd[b*plane:(b+1)*plane], gd[(b*a.n+d)*plane:(b*a.n+d+1)*plane])
		}
	}
	return grads
}

// Params returns nil: feature concatenation has no learnable parameters.
func (a *ConcatFeat) Params() []*nn.Param { return nil }

// NewVector returns the vector aggregator for a scheme, used at the local
// (and edge) exit points where devices emit |C|-wide probability summaries.
func NewVector(rng *rand.Rand, name string, s Scheme, n, c int) Aggregator {
	switch s {
	case MP:
		return NewMax()
	case AP:
		return NewAvg()
	case CC:
		return NewConcatVec(rng, name, n, c)
	default:
		panic(fmt.Sprintf("agg: unknown scheme %v", s))
	}
}

// NewFeature returns the feature-map aggregator for a scheme, used at the
// cloud where devices upload binarized activation maps.
func NewFeature(s Scheme, n int) Aggregator {
	switch s {
	case MP:
		return NewMax()
	case AP:
		return NewAvg()
	case CC:
		return NewConcatFeat(n)
	default:
		panic(fmt.Sprintf("agg: unknown scheme %v", s))
	}
}

// FeatureOutChannels returns the channel count the cloud sees for a scheme
// given n devices with f channels each.
func FeatureOutChannels(s Scheme, n, f int) int {
	if s == CC {
		return n * f
	}
	return f
}
