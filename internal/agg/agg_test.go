package agg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

func vecs(rows ...[]float32) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(rows))
	for i, r := range rows {
		out[i] = tensor.FromSlice(r, 1, len(r))
	}
	return out
}

func TestSchemeString(t *testing.T) {
	tests := []struct {
		s    Scheme
		want string
	}{{MP, "MP"}, {AP, "AP"}, {CC, "CC"}}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Scheme.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestParseScheme(t *testing.T) {
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("XX"); err == nil {
		t.Error("ParseScheme accepted unknown scheme")
	}
}

func TestMaxForward(t *testing.T) {
	a := NewMax()
	out := a.Forward(vecs(
		[]float32{0.1, 0.9, 0.2},
		[]float32{0.5, 0.3, 0.1},
		[]float32{0.4, 0.2, 0.8},
	), nil, false)
	want := []float32{0.5, 0.9, 0.8}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Errorf("max[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestMaxBackwardRoutesToWinner(t *testing.T) {
	a := NewMax()
	a.Forward(vecs(
		[]float32{0.1, 0.9},
		[]float32{0.5, 0.3},
	), nil, true)
	grads := a.Backward(tensor.FromSlice([]float32{1, 2}, 1, 2))
	// Element 0 won by device 1, element 1 by device 0.
	if grads[0].Data()[0] != 0 || grads[0].Data()[1] != 2 {
		t.Errorf("device 0 grads = %v, want [0 2]", grads[0].Data())
	}
	if grads[1].Data()[0] != 1 || grads[1].Data()[1] != 0 {
		t.Errorf("device 1 grads = %v, want [1 0]", grads[1].Data())
	}
}

func TestMaxRespectsMask(t *testing.T) {
	a := NewMax()
	out := a.Forward(vecs(
		[]float32{0.9, 0.9},
		[]float32{0.5, 0.3},
	), []bool{false, true}, true)
	if out.Data()[0] != 0.5 || out.Data()[1] != 0.3 {
		t.Errorf("masked max = %v, want [0.5 0.3]", out.Data())
	}
	grads := a.Backward(tensor.FromSlice([]float32{1, 1}, 1, 2))
	if grads[0].L2Norm() != 0 {
		t.Error("absent device received gradient")
	}
}

func TestMaxAllAbsentIsZero(t *testing.T) {
	a := NewMax()
	out := a.Forward(vecs([]float32{3, 4}), []bool{false}, false)
	for i, v := range out.Data() {
		if v != 0 {
			t.Errorf("all-absent max[%d] = %g, want 0", i, v)
		}
	}
}

func TestAvgForward(t *testing.T) {
	a := NewAvg()
	out := a.Forward(vecs(
		[]float32{1, 2},
		[]float32{3, 6},
	), nil, false)
	if out.Data()[0] != 2 || out.Data()[1] != 4 {
		t.Errorf("avg = %v, want [2 4]", out.Data())
	}
}

func TestAvgMaskExcludesAbsent(t *testing.T) {
	a := NewAvg()
	out := a.Forward(vecs(
		[]float32{1, 2},
		[]float32{3, 6},
		[]float32{100, 100},
	), []bool{true, true, false}, true)
	if out.Data()[0] != 2 || out.Data()[1] != 4 {
		t.Errorf("masked avg = %v, want [2 4]", out.Data())
	}
	grads := a.Backward(tensor.FromSlice([]float32{1, 1}, 1, 2))
	if grads[2].L2Norm() != 0 {
		t.Error("absent device received gradient")
	}
	if grads[0].Data()[0] != 0.5 {
		t.Errorf("present grad = %g, want 0.5 (1/k with k=2)", grads[0].Data()[0])
	}
}

func TestAvgGradientSumsToOne(t *testing.T) {
	// AP backward must conserve gradient mass: Σ_d grad_d = grad.
	a := NewAvg()
	a.Forward(vecs(
		[]float32{1, 2},
		[]float32{3, 4},
		[]float32{5, 6},
	), nil, true)
	grads := a.Backward(tensor.FromSlice([]float32{3, 9}, 1, 2))
	var s0, s1 float32
	for _, g := range grads {
		s0 += g.Data()[0]
		s1 += g.Data()[1]
	}
	if s0 != 3 || s1 != 9 {
		t.Errorf("gradient mass = [%g %g], want [3 9]", s0, s1)
	}
}

func TestConcatVecShapeAndBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewConcatVec(rng, "cc", 2, 3)
	out := a.Forward(vecs(
		[]float32{1, 2, 3},
		[]float32{4, 5, 6},
	), nil, true)
	if out.Dim(0) != 1 || out.Dim(1) != 3 {
		t.Fatalf("ConcatVec output %v, want [1 3] (projected back to C dims)", out.Shape())
	}
	grads := a.Backward(tensor.FromSlice([]float32{1, 1, 1}, 1, 3))
	if len(grads) != 2 {
		t.Fatalf("got %d gradients, want 2", len(grads))
	}
	for d, g := range grads {
		if g.Dim(0) != 1 || g.Dim(1) != 3 {
			t.Errorf("device %d grad shape %v, want [1 3]", d, g.Shape())
		}
		if g.L2Norm() == 0 {
			t.Errorf("device %d received zero gradient through CC", d)
		}
	}
}

func TestConcatVecHasLearnableProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewConcatVec(rng, "cc", 3, 2)
	if len(a.Params()) != 2 { // weight + bias
		t.Errorf("ConcatVec params = %d, want 2", len(a.Params()))
	}
}

func TestConcatFeatChannelLayout(t *testing.T) {
	a := NewConcatFeat(2)
	x0 := tensor.New(1, 2, 2, 2)
	x0.Fill(1)
	x1 := tensor.New(1, 2, 2, 2)
	x1.Fill(2)
	out := a.Forward([]*tensor.Tensor{x0, x1}, nil, true)
	wantShape := []int{1, 4, 2, 2}
	for i, d := range wantShape {
		if out.Dim(i) != d {
			t.Fatalf("ConcatFeat output %v, want %v", out.Shape(), wantShape)
		}
	}
	// First two channels from device 0, last two from device 1.
	if out.At(0, 0, 0, 0) != 1 || out.At(0, 3, 1, 1) != 2 {
		t.Error("ConcatFeat channel ordering wrong")
	}
}

func TestConcatFeatBackwardSplitsChannels(t *testing.T) {
	a := NewConcatFeat(2)
	x := tensor.New(2, 1, 2, 2)
	a.Forward([]*tensor.Tensor{x, x.Clone()}, nil, true)
	g := tensor.New(2, 2, 2, 2)
	for i := range g.Data() {
		g.Data()[i] = float32(i)
	}
	grads := a.Backward(g)
	// Batch 0: device 0 gets channels 0, device 1 gets channel 1.
	if grads[0].At(0, 0, 0, 0) != 0 || grads[1].At(0, 0, 0, 0) != 4 {
		t.Errorf("ConcatFeat backward wrong: %v / %v", grads[0].Data(), grads[1].Data())
	}
}

func TestConcatFeatMaskZeroesAbsent(t *testing.T) {
	a := NewConcatFeat(2)
	x0 := tensor.New(1, 1, 2, 2)
	x0.Fill(5)
	x1 := tensor.New(1, 1, 2, 2)
	x1.Fill(7)
	out := a.Forward([]*tensor.Tensor{x0, x1}, []bool{true, false}, false)
	if out.At(0, 0, 0, 0) != 5 {
		t.Error("present device channels missing")
	}
	if out.At(0, 1, 0, 0) != 0 {
		t.Error("absent device channels must be zero")
	}
}

func TestNewVectorAndNewFeatureFactories(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range Schemes() {
		if got := NewVector(rng, "v", s, 4, 3); got == nil {
			t.Errorf("NewVector(%v) = nil", s)
		}
		if got := NewFeature(s, 4); got == nil {
			t.Errorf("NewFeature(%v) = nil", s)
		}
	}
}

func TestFeatureOutChannels(t *testing.T) {
	tests := []struct {
		s          Scheme
		n, f, want int
	}{
		{MP, 6, 4, 4},
		{AP, 6, 4, 4},
		{CC, 6, 4, 24},
	}
	for _, tt := range tests {
		if got := FeatureOutChannels(tt.s, tt.n, tt.f); got != tt.want {
			t.Errorf("FeatureOutChannels(%v, %d, %d) = %d, want %d", tt.s, tt.n, tt.f, got, tt.want)
		}
	}
}

func TestMaxEqualsAvgForSingleDeviceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(raw [4]int8) bool {
		x := tensor.New(1, 4)
		for i, v := range raw {
			x.Data()[i] = float32(v) / 8
		}
		_ = rng
		mx := NewMax().Forward([]*tensor.Tensor{x}, nil, false)
		av := NewAvg().Forward([]*tensor.Tensor{x}, nil, false)
		for i := range mx.Data() {
			if mx.Data()[i] != av.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxDominatesAvgProperty(t *testing.T) {
	// For any inputs, elementwise max ≥ elementwise average.
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inputs := make([]*tensor.Tensor, 3)
		for d := range inputs {
			inputs[d] = tensor.New(2, 3)
			inputs[d].FillUniform(r, -1, 1)
		}
		_ = rng
		mx := NewMax().Forward(inputs, nil, false)
		av := NewAvg().Forward(inputs, nil, false)
		for i := range mx.Data() {
			if mx.Data()[i] < av.Data()[i]-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAggregatorsPanicOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched shapes did not panic")
		}
	}()
	NewMax().Forward([]*tensor.Tensor{tensor.New(1, 2), tensor.New(1, 3)}, nil, false)
}
