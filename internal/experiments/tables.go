package experiments

import (
	"fmt"
	"strings"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/branchy"
)

// TableIRow is one row of Table I: local/cloud aggregation schemes and the
// accuracy of each exit when 100% of samples exit there.
type TableIRow struct {
	Local, Cloud agg.Scheme
	LocalAcc     float64
	CloudAcc     float64
}

// Schemes renders the row's scheme pair in the paper's notation, e.g.
// "MP-CC".
func (r TableIRow) Schemes() string {
	return fmt.Sprintf("%v-%v", r.Local, r.Cloud)
}

// TableI trains one DDNN per aggregation-scheme combination and reports
// local and cloud exit accuracy over the full test set (E1). The paper's
// ordering has MP-CC best overall, which is why the remaining experiments
// use it.
func (r *Runner) TableI() ([]TableIRow, error) {
	// Order as in the paper's Table I.
	pairs := [][2]agg.Scheme{
		{agg.MP, agg.MP}, {agg.MP, agg.CC}, {agg.AP, agg.AP},
		{agg.AP, agg.CC}, {agg.CC, agg.CC}, {agg.AP, agg.MP},
		{agg.MP, agg.AP}, {agg.CC, agg.MP}, {agg.CC, agg.AP},
	}
	rows := make([]TableIRow, 0, len(pairs))
	for _, p := range pairs {
		m, err := r.model(p[0], p[1], r.opts.Model.DeviceFilters)
		if err != nil {
			return nil, fmt.Errorf("experiments: Table I %v-%v: %w", p[0], p[1], err)
		}
		res := m.Evaluate(r.test, nil, r.opts.BatchSize)
		rows = append(rows, TableIRow{
			Local:    p[0],
			Cloud:    p[1],
			LocalAcc: res.LocalAccuracy(),
			CloudAcc: res.CloudAccuracy(),
		})
		r.logf("Table I %s: local %.3f cloud %.3f", rows[len(rows)-1].Schemes(), res.LocalAccuracy(), res.CloudAccuracy())
	}
	return rows, nil
}

// FormatTableI renders Table I in the paper's layout.
func FormatTableI(rows []TableIRow) string {
	var sb strings.Builder
	sb.WriteString("Schemes  Local Acc. (%)  Cloud Acc. (%)\n")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-8s %14.0f  %14.0f\n", row.Schemes(), row.LocalAcc*100, row.CloudAcc*100)
	}
	return sb.String()
}

// ThresholdRow is one row of Table II / one x-position of Fig. 7.
type ThresholdRow struct {
	T            float64
	LocalExitPct float64 // percentage of samples exiting locally
	OverallAcc   float64 // percentage
	CommBytes    float64 // Eq. (1) expected bytes per sample
}

// ThresholdSweep evaluates the MP-CC DDNN at each threshold in grid,
// reporting local exit percentage, overall accuracy and the Eq. (1)
// communication cost (E2/E4; Table II uses a coarse grid, Fig. 7 a dense
// one).
func (r *Runner) ThresholdSweep(grid []float64) ([]ThresholdRow, error) {
	m, err := r.model(agg.MP, agg.CC, r.opts.Model.DeviceFilters)
	if err != nil {
		return nil, fmt.Errorf("experiments: threshold sweep: %w", err)
	}
	res := m.Evaluate(r.test, nil, r.opts.BatchSize)
	rows := make([]ThresholdRow, 0, len(grid))
	for _, T := range grid {
		pol := branchy.NewPolicy(T, 1)
		l := res.LocalExitFraction(pol)
		rows = append(rows, ThresholdRow{
			T:            T,
			LocalExitPct: l * 100,
			OverallAcc:   res.OverallAccuracy(pol) * 100,
			CommBytes:    m.Cfg.CommCostBytes(l),
		})
	}
	return rows, nil
}

// FormatTableII renders the sweep in the paper's Table II layout.
func FormatTableII(rows []ThresholdRow) string {
	var sb strings.Builder
	sb.WriteString("T     Local Exit (%)  Overall Acc. (%)  Comm. (B)\n")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%.1f %15.2f %17.0f %10.0f\n", row.T, row.LocalExitPct, row.OverallAcc, row.CommBytes)
	}
	return sb.String()
}

// BestThreshold returns the sweep row with the best overall accuracy,
// breaking ties toward more local exits (the paper's T=0.8 sweet spot).
func BestThreshold(rows []ThresholdRow) ThresholdRow {
	best := rows[0]
	for _, row := range rows[1:] {
		if row.OverallAcc > best.OverallAcc ||
			(row.OverallAcc == best.OverallAcc && row.LocalExitPct > best.LocalExitPct) {
			best = row
		}
	}
	return best
}
