// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) on the synthetic MVMC stand-in:
//
//	Table I  — accuracy of the nine aggregation-scheme combinations
//	Table II / Fig. 7 — exit-threshold sweep: local exit %, overall
//	           accuracy and Eq. (1) communication cost
//	Fig. 6   — per-device class distribution of the dataset
//	Fig. 8   — accuracy scaling as end devices are added worst→best
//	Fig. 9   — accuracy vs. communication as device filters grow
//	Fig. 10  — fault tolerance under single-device failure
//	§IV-H    — >20× communication reduction vs. raw offloading
//
// A Runner caches trained models so experiments sharing a configuration
// (e.g. Table II reusing Table I's MP-CC model) train once.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
)

// Options control experiment scale. The paper trains every DDNN for 100
// epochs; reduced epoch counts preserve the qualitative shapes at a
// fraction of the single-core wall-clock cost.
type Options struct {
	// Epochs trains each DDNN variant.
	Epochs int
	// IndividualEpochs trains each per-device baseline model.
	IndividualEpochs int
	// BatchSize for all training.
	BatchSize int
	// Data configures the synthetic MVMC generator.
	Data dataset.Config
	// Model is the base DDNN configuration (aggregation schemes and
	// filter counts are overridden per experiment).
	Model core.Config
	// Verbose, when non-nil, receives progress lines.
	Verbose io.Writer
}

// DefaultOptions returns the configuration used for the recorded results
// in EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{
		Epochs:           50,
		IndividualEpochs: 30,
		BatchSize:        32,
		Data:             dataset.DefaultConfig(),
		Model:            core.DefaultConfig(),
	}
}

// QuickOptions returns a reduced configuration for smoke tests and
// benchmarks: same code paths, far less training.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Epochs = 6
	o.IndividualEpochs = 5
	data := dataset.DefaultConfig()
	data.Train, data.Test = 200, 60
	o.Data = data
	return o
}

// Runner executes experiments over one dataset, caching trained models.
type Runner struct {
	opts  Options
	train *dataset.Dataset
	test  *dataset.Dataset

	mu          sync.Mutex
	models      map[string]*core.Model
	individuals map[int]*core.IndividualModel
	indAcc      []float64 // individual accuracy per device, computed once
}

// NewRunner generates the dataset and prepares an empty model cache.
func NewRunner(opts Options) (*Runner, error) {
	train, test, err := dataset.Generate(opts.Data)
	if err != nil {
		return nil, err
	}
	return &Runner{
		opts:        opts,
		train:       train,
		test:        test,
		models:      make(map[string]*core.Model),
		individuals: make(map[int]*core.IndividualModel),
	}, nil
}

// Train and Test expose the generated splits.
func (r *Runner) Train() *dataset.Dataset { return r.train }

// Test returns the held-out split.
func (r *Runner) Test() *dataset.Dataset { return r.test }

func (r *Runner) logf(format string, args ...any) {
	if r.opts.Verbose != nil {
		fmt.Fprintf(r.opts.Verbose, format+"\n", args...)
	}
}

// model trains (or returns a cached) DDNN with the given overrides on the
// full training set.
func (r *Runner) model(local, cloud agg.Scheme, filters int) (*core.Model, error) {
	key := fmt.Sprintf("%v-%v-f%d", local, cloud, filters)
	r.mu.Lock()
	m, ok := r.models[key]
	r.mu.Unlock()
	if ok {
		return m, nil
	}
	cfg := r.opts.Model
	cfg.LocalAgg, cfg.CloudAgg, cfg.DeviceFilters = local, cloud, filters
	m, err := core.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	r.logf("training DDNN %s (%d epochs)", key, r.opts.Epochs)
	tc := core.DefaultTrainConfig()
	tc.Epochs = r.opts.Epochs
	tc.BatchSize = r.opts.BatchSize
	if _, err := m.Train(r.train, tc); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.models[key] = m
	r.mu.Unlock()
	return m, nil
}

// individual trains (or returns a cached) per-device baseline model.
func (r *Runner) individual(device int) (*core.IndividualModel, error) {
	r.mu.Lock()
	im, ok := r.individuals[device]
	r.mu.Unlock()
	if ok {
		return im, nil
	}
	im, err := core.NewIndividualModel(r.opts.Model, device)
	if err != nil {
		return nil, err
	}
	r.logf("training individual model for device %d (%d epochs)", device, r.opts.IndividualEpochs)
	tc := core.DefaultTrainConfig()
	tc.Epochs = r.opts.IndividualEpochs
	tc.BatchSize = r.opts.BatchSize
	if _, err := im.Train(r.train, tc); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.individuals[device] = im
	r.mu.Unlock()
	return im, nil
}

// IndividualAccuracies returns the test accuracy of each device's
// separately trained model (the "Individual" measure of §III-F).
func (r *Runner) IndividualAccuracies() ([]float64, error) {
	r.mu.Lock()
	cached := r.indAcc
	r.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	accs := make([]float64, r.opts.Model.Devices)
	for d := range accs {
		im, err := r.individual(d)
		if err != nil {
			return nil, err
		}
		accs[d] = im.Accuracy(r.test, r.opts.BatchSize)
		r.logf("individual device %d accuracy: %.3f", d, accs[d])
	}
	r.mu.Lock()
	r.indAcc = accs
	r.mu.Unlock()
	return accs, nil
}

// devicesWorstToBest returns device indices sorted by individual accuracy
// ascending, the order Fig. 8 adds devices in.
func (r *Runner) devicesWorstToBest() ([]int, error) {
	accs, err := r.IndividualAccuracies()
	if err != nil {
		return nil, err
	}
	order := make([]int, len(accs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return accs[order[a]] < accs[order[b]] })
	return order, nil
}
