package experiments

import (
	"fmt"
	"strings"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/branchy"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
)

// ClassDistribution returns the per-device class histogram of the training
// split (Fig. 6).
func (r *Runner) ClassDistribution() []dataset.DeviceStats {
	return r.train.Stats()
}

// FormatClassDistribution renders the Fig. 6 histogram as text.
func FormatClassDistribution(stats []dataset.DeviceStats) string {
	var sb strings.Builder
	sb.WriteString("Device  Car  Bus  Person  Not-present\n")
	for d, st := range stats {
		fmt.Fprintf(&sb, "%6d %4d %4d %7d %12d\n", d+1, st.PerClass[0], st.PerClass[1], st.PerClass[2], st.NotPresent)
	}
	return sb.String()
}

// ScalingPoint is one x-position of Fig. 8: the system accuracies with the
// k worst devices (by individual accuracy) participating.
type ScalingPoint struct {
	Devices    int
	Individual float64 // individual accuracy of the k-th added device
	Local      float64 // accuracy exiting 100% at the local exit
	Cloud      float64 // accuracy exiting 100% at the cloud exit
	Overall    float64 // staged accuracy at T=0.8
}

// DeviceScaling reproduces Fig. 8: devices are added in worst-to-best
// individual-accuracy order; for each count k a DDNN over those k devices
// is jointly trained and evaluated (E5).
func (r *Runner) DeviceScaling() ([]ScalingPoint, error) {
	order, err := r.devicesWorstToBest()
	if err != nil {
		return nil, err
	}
	accs, err := r.IndividualAccuracies()
	if err != nil {
		return nil, err
	}
	points := make([]ScalingPoint, 0, len(order))
	for k := 1; k <= len(order); k++ {
		m, err := r.scalingModel(order[:k])
		if err != nil {
			return nil, fmt.Errorf("experiments: Fig 8 k=%d: %w", k, err)
		}
		testK := r.test.ReorderDevices(order[:k])
		res := m.Evaluate(testK, nil, r.opts.BatchSize)
		pol := branchy.NewPolicy(0.8, 1)
		p := ScalingPoint{
			Devices:    k,
			Individual: accs[order[k-1]],
			Local:      res.LocalAccuracy(),
			Cloud:      res.CloudAccuracy(),
			Overall:    res.OverallAccuracy(pol),
		}
		points = append(points, p)
		r.logf("Fig 8 k=%d: individual %.3f local %.3f cloud %.3f overall %.3f",
			k, p.Individual, p.Local, p.Cloud, p.Overall)
	}
	return points, nil
}

// scalingModel trains a DDNN over a device subset (in the given order).
func (r *Runner) scalingModel(order []int) (*core.Model, error) {
	key := fmt.Sprintf("scaling-%v", order)
	r.mu.Lock()
	m, ok := r.models[key]
	r.mu.Unlock()
	if ok {
		return m, nil
	}
	cfg := r.opts.Model
	cfg.Devices = len(order)
	cfg.LocalAgg, cfg.CloudAgg = agg.MP, agg.CC
	m, err := core.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	trainK := r.train.ReorderDevices(order)
	r.logf("training DDNN over devices %v (%d epochs)", order, r.opts.Epochs)
	tc := core.DefaultTrainConfig()
	tc.Epochs = r.opts.Epochs
	tc.BatchSize = r.opts.BatchSize
	if _, err := m.Train(trainK, tc); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.models[key] = m
	r.mu.Unlock()
	return m, nil
}

// FormatScaling renders the Fig. 8 series as text.
func FormatScaling(points []ScalingPoint) string {
	var sb strings.Builder
	sb.WriteString("Devices  Individual  Local  Cloud  Overall (%)\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%7d %11.1f %6.1f %6.1f %8.1f\n",
			p.Devices, p.Individual*100, p.Local*100, p.Cloud*100, p.Overall*100)
	}
	return sb.String()
}

// OffloadPoint is one x-position of Fig. 9: a device-filter count, the
// resulting communication cost and accuracies with the threshold tuned so
// ≈75% of samples exit locally.
type OffloadPoint struct {
	Filters       int
	Threshold     float64
	LocalExitPct  float64
	CommBytes     float64
	LocalAcc      float64
	CloudAcc      float64
	OverallAcc    float64
	DeviceMemByte int
}

// CloudOffloading reproduces Fig. 9: for each device-filter count, the
// exit threshold is calibrated so ≈75% of samples exit locally, and the
// accuracy/communication trade-off is recorded (E6). The paper's claim:
// offloading the hard ≈25% to the cloud buys ≈5% accuracy over the local
// exit alone, at every device model size.
func (r *Runner) CloudOffloading(filters []int) ([]OffloadPoint, error) {
	points := make([]OffloadPoint, 0, len(filters))
	for _, f := range filters {
		m, err := r.model(agg.MP, agg.CC, f)
		if err != nil {
			return nil, fmt.Errorf("experiments: Fig 9 f=%d: %w", f, err)
		}
		res := m.Evaluate(r.test, nil, r.opts.BatchSize)
		sweet := branchy.ThresholdForExitFraction(res.Outcomes(), branchy.Grid(100), 0.75)
		pol := branchy.NewPolicy(sweet.Threshold, 1)
		p := OffloadPoint{
			Filters:       f,
			Threshold:     sweet.Threshold,
			LocalExitPct:  sweet.ExitFrac * 100,
			CommBytes:     m.Cfg.CommCostBytes(sweet.ExitFrac),
			LocalAcc:      res.LocalAccuracy(),
			CloudAcc:      res.CloudAccuracy(),
			OverallAcc:    res.OverallAccuracy(pol),
			DeviceMemByte: m.DeviceMemoryBytes(),
		}
		points = append(points, p)
		r.logf("Fig 9 f=%d: T=%.2f exit %.1f%% comm %.0fB local %.3f cloud %.3f overall %.3f mem %dB",
			f, p.Threshold, p.LocalExitPct, p.CommBytes, p.LocalAcc, p.CloudAcc, p.OverallAcc, p.DeviceMemByte)
	}
	return points, nil
}

// FormatOffloading renders the Fig. 9 series as text.
func FormatOffloading(points []OffloadPoint) string {
	var sb strings.Builder
	sb.WriteString("Filters  Comm (B)  Local  Cloud  Overall (%)  DeviceMem (B)\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%7d %9.0f %6.1f %6.1f %8.1f %10d\n",
			p.Filters, p.CommBytes, p.LocalAcc*100, p.CloudAcc*100, p.OverallAcc*100, p.DeviceMemByte)
	}
	return sb.String()
}

// FaultPoint is one bar group of Fig. 10: system accuracies when one
// specific device has failed.
type FaultPoint struct {
	FailedDevice int
	Individual   float64 // individual accuracy of the failed device
	Local        float64
	Cloud        float64
	Overall      float64
}

// FaultTolerance reproduces Fig. 10: the MP-CC DDNN is evaluated with each
// single device masked out in turn (E7). The paper's claim: accuracy stays
// high regardless of which device fails, dropping only ≈3% even when the
// best device fails.
func (r *Runner) FaultTolerance() ([]FaultPoint, error) {
	m, err := r.model(agg.MP, agg.CC, r.opts.Model.DeviceFilters)
	if err != nil {
		return nil, err
	}
	accs, err := r.IndividualAccuracies()
	if err != nil {
		return nil, err
	}
	pol := branchy.NewPolicy(0.8, 1)
	points := make([]FaultPoint, 0, m.Cfg.Devices)
	for d := 0; d < m.Cfg.Devices; d++ {
		mask := make([]bool, m.Cfg.Devices)
		for i := range mask {
			mask[i] = i != d
		}
		res := m.Evaluate(r.test, mask, r.opts.BatchSize)
		p := FaultPoint{
			FailedDevice: d,
			Individual:   accs[d],
			Local:        res.LocalAccuracy(),
			Cloud:        res.CloudAccuracy(),
			Overall:      res.OverallAccuracy(pol),
		}
		points = append(points, p)
		r.logf("Fig 10 fail dev %d: local %.3f cloud %.3f overall %.3f", d, p.Local, p.Cloud, p.Overall)
	}
	return points, nil
}

// FormatFaultTolerance renders the Fig. 10 series as text.
func FormatFaultTolerance(points []FaultPoint) string {
	var sb strings.Builder
	sb.WriteString("Failed  Individual  Local  Cloud  Overall (%)\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%6d %11.1f %6.1f %6.1f %8.1f\n",
			p.FailedDevice+1, p.Individual*100, p.Local*100, p.Cloud*100, p.Overall*100)
	}
	return sb.String()
}

// MultiFailure is an extension of §IV-G: it fails the k best devices (the
// reverse of Fig. 8's growth order) and reports the staged accuracy, to
// show graceful degradation under multiple simultaneous failures.
func (r *Runner) MultiFailure(maxFailures int) ([]FaultPoint, error) {
	m, err := r.model(agg.MP, agg.CC, r.opts.Model.DeviceFilters)
	if err != nil {
		return nil, err
	}
	order, err := r.devicesWorstToBest()
	if err != nil {
		return nil, err
	}
	pol := branchy.NewPolicy(0.8, 1)
	var points []FaultPoint
	for k := 0; k <= maxFailures && k < m.Cfg.Devices; k++ {
		mask := make([]bool, m.Cfg.Devices)
		for i := range mask {
			mask[i] = true
		}
		// Fail the k best devices (hardest case).
		for i := 0; i < k; i++ {
			mask[order[len(order)-1-i]] = false
		}
		res := m.Evaluate(r.test, mask, r.opts.BatchSize)
		points = append(points, FaultPoint{
			FailedDevice: k, // here: number of failed devices
			Local:        res.LocalAccuracy(),
			Cloud:        res.CloudAccuracy(),
			Overall:      res.OverallAccuracy(pol),
		})
	}
	return points, nil
}
