package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/metrics"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// LatencyReport quantifies the vertical-scaling latency claim of §V:
// samples exiting locally avoid every upstream round trip, samples
// exiting at the edge of a three-tier hierarchy pay only the nearby edge
// hop, and cloud-exited samples pay the feature upload over the full
// path including the WAN link.
type LatencyReport struct {
	Threshold     float64
	EdgeThreshold float64 // meaningful only when Exits == 3
	Exits         int     // 2 for device→cloud, 3 for device→edge→cloud
	Samples       int
	LocalCount    int
	EdgeCount     int
	CloudCount    int
	LocalMean     time.Duration
	LocalP95      time.Duration
	EdgeMean      time.Duration
	EdgeP95       time.Duration
	CloudMean     time.Duration
	CloudP95      time.Duration
	DeviceLink    transport.LinkProfile
	EdgeLink      transport.LinkProfile // zero for two-tier hierarchies
	CloudLink     transport.LinkProfile
	RawTransfer   time.Duration // time to move one raw image over every hop
	RawOffloadB   int
}

// LatencyByExit runs the trained two-tier MP-CC DDNN on an in-process
// cluster whose links simulate a constrained device wireless uplink and
// a WAN path to the cloud, and reports response latency separately for
// locally exited and cloud-exited samples (E9, §V vertical scaling).
func (r *Runner) LatencyByExit(threshold float64, maxSamples int) (*LatencyReport, error) {
	m, err := r.model(agg.MP, agg.CC, r.opts.Model.DeviceFilters)
	if err != nil {
		return nil, err
	}
	gcfg := cluster.DefaultGatewayConfig()
	gcfg.Threshold = threshold
	return r.latencyOnCluster(m, gcfg, maxSamples)
}

// EdgeLatencyByExit is LatencyByExit over the three-tier hierarchy: the
// gateway↔edge hop carries the nearby-edge profile, so edge-exited
// samples land between local and cloud latency — the three-stage
// escalation cost staircase of §III-C.
func (r *Runner) EdgeLatencyByExit(localT, edgeT float64, maxSamples int) (*LatencyReport, error) {
	m, err := r.edgeModel()
	if err != nil {
		return nil, err
	}
	gcfg := cluster.DefaultGatewayConfig()
	gcfg.Threshold = localT
	gcfg.EdgeThreshold = edgeT
	return r.latencyOnCluster(m, gcfg, maxSamples)
}

// latencyOnCluster classifies samples one at a time on a link-simulated
// in-process cluster and groups session latencies by exit point.
func (r *Runner) latencyOnCluster(m *core.Model, gcfg cluster.GatewayConfig, maxSamples int) (*LatencyReport, error) {
	quiet := slog.New(slog.NewTextHandler(discardWriter{}, &slog.HandlerOptions{Level: slog.LevelError}))
	eng, err := cluster.NewEngine(m, r.test, cluster.EngineConfig{
		Gateway:        gcfg,
		MaxConcurrency: 1, // serial sessions: latency, not throughput
		Logger:         quiet,
		DeviceLink:     transport.DeviceToGateway,
		EdgeLink:       transport.GatewayToEdge,
		CloudLink:      transport.GatewayToCloud,
	}, transport.NewMem())
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	n := r.test.Len()
	if maxSamples > 0 && maxSamples < n {
		n = maxSamples
	}
	recorders := map[wire.ExitPoint]*metrics.LatencyRecorder{
		wire.ExitLocal: metrics.NewLatencyRecorder(),
		wire.ExitEdge:  metrics.NewLatencyRecorder(),
		wire.ExitCloud: metrics.NewLatencyRecorder(),
	}
	for id := 0; id < n; id++ {
		res, err := eng.Classify(context.Background(), uint64(id))
		if err != nil {
			return nil, fmt.Errorf("experiments: latency sample %d: %w", id, err)
		}
		if rec, ok := recorders[res.Exit]; ok {
			rec.Record(res.Latency)
		}
	}

	raw := m.Cfg.RawOffloadBytes()
	rep := &LatencyReport{
		Threshold:     gcfg.Threshold,
		EdgeThreshold: gcfg.EdgeThreshold,
		Exits:         m.Cfg.ExitCount(),
		Samples:       n,
		LocalCount:    recorders[wire.ExitLocal].Count(),
		EdgeCount:     recorders[wire.ExitEdge].Count(),
		CloudCount:    recorders[wire.ExitCloud].Count(),
		LocalMean:     recorders[wire.ExitLocal].Mean(),
		LocalP95:      recorders[wire.ExitLocal].Percentile(95),
		EdgeMean:      recorders[wire.ExitEdge].Mean(),
		EdgeP95:       recorders[wire.ExitEdge].Percentile(95),
		CloudMean:     recorders[wire.ExitCloud].Mean(),
		CloudP95:      recorders[wire.ExitCloud].Percentile(95),
		DeviceLink:    transport.DeviceToGateway,
		CloudLink:     transport.GatewayToCloud,
		RawOffloadB:   raw,
	}
	rawTransfer := transport.DeviceToGateway.TransferTime(raw) + transport.GatewayToCloud.TransferTime(raw)
	if m.Cfg.UseEdge {
		rep.EdgeLink = transport.GatewayToEdge
		rawTransfer += transport.GatewayToEdge.TransferTime(raw)
	}
	rep.RawTransfer = rawTransfer
	return rep, nil
}

// FormatLatencyReport renders the per-exit latency comparison.
func FormatLatencyReport(rep *LatencyReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "links: device %v+%dB/s, cloud %v+%dB/s",
		rep.DeviceLink.Latency, rep.DeviceLink.BandwidthBps, rep.CloudLink.Latency, rep.CloudLink.BandwidthBps)
	if rep.Exits > 2 {
		fmt.Fprintf(&sb, ", edge %v+%dB/s", rep.EdgeLink.Latency, rep.EdgeLink.BandwidthBps)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "local exits: %d/%d samples, mean %v, p95 %v\n",
		rep.LocalCount, rep.Samples, rep.LocalMean.Round(time.Microsecond), rep.LocalP95.Round(time.Microsecond))
	if rep.Exits > 2 {
		fmt.Fprintf(&sb, "edge exits:  %d/%d samples, mean %v, p95 %v\n",
			rep.EdgeCount, rep.Samples, rep.EdgeMean.Round(time.Microsecond), rep.EdgeP95.Round(time.Microsecond))
	}
	fmt.Fprintf(&sb, "cloud exits: %d/%d samples, mean %v, p95 %v\n",
		rep.CloudCount, rep.Samples, rep.CloudMean.Round(time.Microsecond), rep.CloudP95.Round(time.Microsecond))
	fmt.Fprintf(&sb, "raw offload of one %d-B frame would serialize for %v before any compute\n",
		rep.RawOffloadB, rep.RawTransfer.Round(time.Microsecond))
	return sb.String()
}
