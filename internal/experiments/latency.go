package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/metrics"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// LatencyReport quantifies the vertical-scaling latency claim of §V:
// samples exiting locally avoid the WAN round trip entirely, so their
// response time is bounded by the local wireless link, while cloud-exited
// samples pay the feature upload over both links.
type LatencyReport struct {
	Threshold    float64
	Samples      int
	LocalCount   int
	CloudCount   int
	LocalMean    time.Duration
	LocalP95     time.Duration
	CloudMean    time.Duration
	CloudP95     time.Duration
	DeviceLink   transport.LinkProfile
	CloudLink    transport.LinkProfile
	RawTransfer  time.Duration // time to move one raw image over both links
	RawOffloadB  int
	MeanAnalytic time.Duration // reference only
}

// LatencyByExit runs the trained MP-CC DDNN on an in-process cluster whose
// links simulate a constrained device wireless uplink and a WAN path to
// the cloud, and reports response latency separately for locally exited
// and cloud-exited samples (E9, §V vertical scaling).
func (r *Runner) LatencyByExit(threshold float64, maxSamples int) (*LatencyReport, error) {
	m, err := r.model(agg.MP, agg.CC, r.opts.Model.DeviceFilters)
	if err != nil {
		return nil, err
	}
	deviceLink := transport.DeviceToGateway
	cloudLink := transport.GatewayToCloud

	mem := transport.NewMem()
	quiet := slog.New(slog.NewTextHandler(discardWriter{}, &slog.HandlerOptions{Level: slog.LevelError}))

	// Serve the nodes on the plain in-memory transport; the gateway dials
	// through link simulators so each uplink gets its profile.
	addrs := make([]string, m.Cfg.Devices)
	var devices []*cluster.Device
	for d := 0; d < m.Cfg.Devices; d++ {
		dev := cluster.NewDevice(m, d, cluster.DatasetFeed(r.test, d), quiet)
		addrs[d] = fmt.Sprintf("lat-device-%d", d)
		if err := dev.Serve(mem, addrs[d]); err != nil {
			return nil, err
		}
		devices = append(devices, dev)
	}
	defer func() {
		for _, dev := range devices {
			dev.Close()
		}
	}()
	cloud := cluster.NewCloud(m, quiet)
	if err := cloud.Serve(mem, "lat-cloud"); err != nil {
		return nil, err
	}
	defer cloud.Close()

	gcfg := cluster.DefaultGatewayConfig()
	gcfg.Threshold = threshold
	gw, err := cluster.NewGateway(context.Background(), m, gcfg, transport.RouteSim{
		Inner: mem,
		Pick: func(addr string) transport.LinkProfile {
			if addr == "lat-cloud" {
				return cloudLink
			}
			return deviceLink
		},
	}, addrs, "lat-cloud", quiet)
	if err != nil {
		return nil, err
	}
	defer gw.Close()

	n := r.test.Len()
	if maxSamples > 0 && maxSamples < n {
		n = maxSamples
	}
	localLat := metrics.NewLatencyRecorder()
	cloudLat := metrics.NewLatencyRecorder()
	for id := 0; id < n; id++ {
		res, err := gw.Classify(context.Background(), uint64(id))
		if err != nil {
			return nil, fmt.Errorf("experiments: latency sample %d: %w", id, err)
		}
		if res.Exit == wire.ExitLocal {
			localLat.Record(res.Latency)
		} else {
			cloudLat.Record(res.Latency)
		}
	}
	raw := m.Cfg.RawOffloadBytes()
	return &LatencyReport{
		Threshold:   threshold,
		Samples:     n,
		LocalCount:  localLat.Count(),
		CloudCount:  cloudLat.Count(),
		LocalMean:   localLat.Mean(),
		LocalP95:    localLat.Percentile(95),
		CloudMean:   cloudLat.Mean(),
		CloudP95:    cloudLat.Percentile(95),
		DeviceLink:  deviceLink,
		CloudLink:   cloudLink,
		RawTransfer: deviceLink.TransferTime(raw) + cloudLink.TransferTime(raw),
		RawOffloadB: raw,
	}, nil
}

// FormatLatencyReport renders the per-exit latency comparison.
func FormatLatencyReport(rep *LatencyReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "links: device %v+%dB/s, cloud %v+%dB/s\n",
		rep.DeviceLink.Latency, rep.DeviceLink.BandwidthBps, rep.CloudLink.Latency, rep.CloudLink.BandwidthBps)
	fmt.Fprintf(&sb, "local exits: %d/%d samples, mean %v, p95 %v\n",
		rep.LocalCount, rep.Samples, rep.LocalMean.Round(time.Microsecond), rep.LocalP95.Round(time.Microsecond))
	fmt.Fprintf(&sb, "cloud exits: %d/%d samples, mean %v, p95 %v\n",
		rep.CloudCount, rep.Samples, rep.CloudMean.Round(time.Microsecond), rep.CloudP95.Round(time.Microsecond))
	fmt.Fprintf(&sb, "raw offload of one %d-B frame would serialize for %v before any compute\n",
		rep.RawOffloadB, rep.RawTransfer.Round(time.Microsecond))
	return sb.String()
}
