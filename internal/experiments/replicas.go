package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// replicaWAN is the per-replica WAN profile of the replica-scaling
// experiment: the same 30 ms propagation as transport.GatewayToCloud but
// a scarcer 256 KB/s uplink, so the cloud tier's ingress — the resource
// each added replica genuinely multiplies, since every replica brings
// its own WAN path — is the system bottleneck rather than in-process
// compute, which all replicas of a single-machine simulation share.
var replicaWAN = transport.LinkProfile{Latency: 30 * time.Millisecond, BandwidthBps: 256 << 10}

// ReplicaPoint is one row of the cloud-replica throughput sweep.
type ReplicaPoint struct {
	// Replicas is the number of cloud replicas behind the gateway.
	Replicas int
	// Samples classified during the measurement.
	Samples int
	// Elapsed wall-clock time.
	Elapsed time.Duration
	// Throughput in samples per second.
	Throughput float64
	// Speedup relative to the single-replica baseline (first row).
	Speedup float64
}

// FailoverPoint summarizes the kill-a-replica availability run: one
// cloud replica is crashed while a cloud-bound classification stream is
// in flight, and the replica pool must fail every affected session over
// to the survivors with zero failed and zero changed classifications.
type FailoverPoint struct {
	// Replicas is the pool size the run started with.
	Replicas int
	// Samples classified across the whole run.
	Samples int
	// KillAfter is how far into the run replica 0 was crashed.
	KillAfter time.Duration
	// Errors counts sessions that returned an error; failover demands 0.
	Errors int
	// FirstError is the first session error, empty when Errors is 0 —
	// without it a failed run would be undebuggable from the report.
	FirstError string
	// Mismatches counts classifications that differ from the staged
	// single-process reference; determinism demands 0.
	Mismatches int
	// Elapsed wall-clock time, including the failover stall.
	Elapsed time.Duration
	// Throughput in samples per second.
	Throughput float64
}

// ReplicaReport is the scale-out evaluation of the replicated cloud
// tier: throughput versus replica count at a fixed load, plus the
// kill-a-replica availability result.
type ReplicaReport struct {
	// Concurrency is the number of in-flight sessions at every point.
	Concurrency int
	// Batch is the micro-batch size at every point.
	Batch int
	// Points is the replica sweep, in replicas order.
	Points []ReplicaPoint
	// Failover is the kill-a-replica run (2 replicas).
	Failover FailoverPoint
}

// ReplicaScaling measures serving throughput of the two-tier MP-CC DDNN
// as the cloud tier scales out from one replica to many, then runs the
// kill-a-replica availability experiment. The local exit is disabled
// (threshold -1) so every sample escalates: the sweep measures the
// cloud-bound operating point, which is exactly the regime where the
// upper tier is the throughput ceiling and the single point of failure
// the replica pool exists to remove. Each gateway→replica connection
// carries its own constrained WAN profile, so added replicas add
// aggregate WAN capacity just as physically separate replicas would.
func (r *Runner) ReplicaScaling(replicas []int, samples, concurrency, batch int) (*ReplicaReport, error) {
	m, err := r.model(agg.MP, agg.CC, r.opts.Model.DeviceFilters)
	if err != nil {
		return nil, err
	}
	// The sweep needs enough concurrent batch sessions to occupy every
	// replica, so by default it streams several passes over the test set
	// (sample IDs wrap around); throughput is per classification.
	if samples <= 0 {
		samples = 8 * r.test.Len()
		if samples > 960 {
			samples = 960
		}
	}
	if len(replicas) == 0 {
		replicas = []int{1, 2, 4}
	}
	quiet := slog.New(slog.NewTextHandler(discardWriter{}, &slog.HandlerOptions{Level: slog.LevelError}))
	gcfg := cluster.DefaultGatewayConfig()
	gcfg.Threshold = -1 // cloud-bound: every sample escalates
	rep := &ReplicaReport{Concurrency: concurrency, Batch: batch}

	ids := make([]uint64, samples)
	for i := range ids {
		ids[i] = uint64(i % r.test.Len())
	}
	for _, n := range replicas {
		eng, err := cluster.NewEngine(m, r.test, cluster.EngineConfig{
			Gateway:        gcfg,
			MaxConcurrency: concurrency,
			Batch:          cluster.BatchConfig{MaxBatch: batch},
			CloudReplicas:  n,
			Logger:         quiet,
			DeviceLink:     transport.DeviceToGateway,
			CloudLink:      replicaWAN,
		}, transport.NewMem())
		if err != nil {
			return nil, fmt.Errorf("experiments: start engine with %d replicas: %w", n, err)
		}
		start := time.Now()
		if _, err := eng.ClassifyBatch(context.Background(), ids); err != nil {
			eng.Close()
			return nil, fmt.Errorf("experiments: replica sweep at %d replicas: %w", n, err)
		}
		elapsed := time.Since(start)
		eng.Close()
		p := ReplicaPoint{
			Replicas:   n,
			Samples:    samples,
			Elapsed:    elapsed,
			Throughput: float64(samples) / elapsed.Seconds(),
		}
		if len(rep.Points) == 0 {
			p.Speedup = 1
		} else {
			p.Speedup = p.Throughput / rep.Points[0].Throughput
		}
		rep.Points = append(rep.Points, p)
	}

	// Crash the replica roughly a third of the way into a run the size
	// of the 2-replica sweep point.
	killAfter := rep.Points[0].Elapsed / 3
	for _, p := range rep.Points {
		if p.Replicas == 2 {
			killAfter = p.Elapsed / 3
		}
	}
	fo, err := r.replicaFailover(m, gcfg, samples, concurrency, batch, killAfter, quiet)
	if err != nil {
		return nil, err
	}
	rep.Failover = *fo
	return rep, nil
}

// replicaFailover runs the availability experiment: a 2-replica cloud
// pool serves a cloud-bound stream, replica 0 is crashed mid-flight, and
// every sample must still be classified — with the exact class the
// staged single-process reference assigns, since a failed-over
// escalation re-sends the same bit-packed features to a replica holding
// the same frozen model.
func (r *Runner) replicaFailover(m *core.Model, gcfg cluster.GatewayConfig, samples, concurrency, batch int, killAfter time.Duration, quiet *slog.Logger) (*FailoverPoint, error) {
	// Staged reference: with the local exit disabled every sample exits
	// at the cloud, so the reference class is the cloud head's argmax.
	ref := m.Evaluate(r.test, nil, 32)

	fcfg := gcfg
	fcfg.CloudTimeout = 500 * time.Millisecond // detect the crash quickly
	eng, err := cluster.NewEngine(m, r.test, cluster.EngineConfig{
		Gateway:        fcfg,
		MaxConcurrency: concurrency,
		Batch:          cluster.BatchConfig{MaxBatch: batch},
		CloudReplicas:  2,
		Logger:         quiet,
		DeviceLink:     transport.DeviceToGateway,
		CloudLink:      replicaWAN,
	}, transport.NewMem())
	if err != nil {
		return nil, fmt.Errorf("experiments: start failover engine: %w", err)
	}
	defer eng.Close()

	fo := &FailoverPoint{Replicas: 2, Samples: samples, KillAfter: killAfter}
	ids := make([]uint64, samples)
	for i := range ids {
		ids[i] = uint64(i % r.test.Len())
	}
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(killAfter)
		eng.Clouds()[0].SetFailed(true)
	}()
	start := time.Now()
	results, runErr := eng.ClassifyBatch(context.Background(), ids)
	if runErr != nil {
		fo.FirstError = runErr.Error()
	}
	fo.Elapsed = time.Since(start)
	fo.Throughput = float64(samples) / fo.Elapsed.Seconds()
	<-killed
	for i, res := range results {
		if res == nil {
			fo.Errors++
			continue
		}
		if res.Exit != wire.ExitCloud || res.Class != argmax32(ref.CloudProbs[ids[i]]) {
			fo.Mismatches++
		}
	}
	return fo, nil
}

// argmax32 returns the index of the row's largest value.
func argmax32(row []float32) int {
	best := 0
	for i := 1; i < len(row); i++ {
		if row[i] > row[best] {
			best = i
		}
	}
	return best
}

// FormatReplicaReport renders the replica sweep and the failover run.
func FormatReplicaReport(rep *ReplicaReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cloud-bound serving (T disabled), concurrency %d, micro-batch %d, %v+%dKB/s WAN per replica\n",
		rep.Concurrency, rep.Batch, replicaWAN.Latency, replicaWAN.BandwidthBps>>10)
	sb.WriteString("Replicas  Samples    Elapsed  Samples/s  Speedup\n")
	for _, p := range rep.Points {
		fmt.Fprintf(&sb, "%8d %8d %10v %10.1f %7.2fx\n",
			p.Replicas, p.Samples, p.Elapsed.Round(time.Millisecond), p.Throughput, p.Speedup)
	}
	f := rep.Failover
	fmt.Fprintf(&sb, "failover: killed 1 of %d replicas %v into a %d-sample run: %d errors, %d mismatches vs staged reference (%.1f samples/s, %v)\n",
		f.Replicas, f.KillAfter.Round(time.Millisecond), f.Samples, f.Errors, f.Mismatches, f.Throughput, f.Elapsed.Round(time.Millisecond))
	if f.Errors == 0 && f.Mismatches == 0 {
		sb.WriteString("failover: PASS — every sample classified, bit-identical to the reference\n")
	} else if f.FirstError != "" {
		fmt.Fprintf(&sb, "failover: FAIL (first error: %s)\n", f.FirstError)
	} else {
		sb.WriteString("failover: FAIL\n")
	}
	return sb.String()
}
